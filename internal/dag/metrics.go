package dag

// Work returns T1, the total number of nodes in the dag. Since each node
// represents a single instruction, T1 is the time a single process needs to
// execute the computation.
func (g *Graph) Work() int { return len(g.nodes) }

// CriticalPath returns Tinf, the number of nodes on a longest directed path
// of the dag (so a serial chain of n nodes has critical-path length n, as in
// the paper, where the Figure 1 example with a longest path of k nodes has
// Tinf = k).
func (g *Graph) CriticalPath() int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err) // validated graphs are acyclic
	}
	depth := make([]int32, len(g.nodes))
	best := int32(0)
	for _, u := range order {
		d := depth[u] + 1 // path length counted in nodes
		if d > best {
			best = d
		}
		for _, e := range g.nodes[u].Succs {
			if d > depth[e.To] {
				depth[e.To] = d
			}
		}
	}
	return int(best)
}

// Parallelism returns T1/Tinf, the average parallelism of the computation.
func (g *Graph) Parallelism() float64 {
	return float64(g.Work()) / float64(g.CriticalPath())
}

// Levels partitions the nodes by longest-path depth from the root: level 0
// holds the root, and a node is at level d if the longest path from the
// root to it contains d edges. Level-by-level (Brent) schedules execute the
// levels in order.
func (g *Graph) Levels() [][]NodeID {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	depth := make([]int32, len(g.nodes))
	maxDepth := int32(0)
	for _, u := range order {
		for _, e := range g.nodes[u].Succs {
			if depth[u]+1 > depth[e.To] {
				depth[e.To] = depth[u] + 1
			}
		}
		if depth[u] > maxDepth {
			maxDepth = depth[u]
		}
	}
	levels := make([][]NodeID, maxDepth+1)
	for _, u := range order {
		levels[depth[u]] = append(levels[depth[u]], u)
	}
	return levels
}
