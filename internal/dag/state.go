package dag

import "fmt"

// State tracks the progress of one execution of a dag: which nodes have
// executed, which are ready, and the enabling tree built along the way.
//
// A node is ready when all of its ancestors have executed. Executing a node
// u enables every successor v for which u was the last unexecuted
// predecessor; the edge (u, v) is then an enabling edge and u becomes v's
// designated parent (Section 3.4 of the paper). Because out-degree is at
// most two, an execution enables zero, one or two children.
//
// State is used by both the offline schedulers and the simulator. It is not
// safe for concurrent use; the simulator serializes node executions, which
// matches the paper's convention that each step's instructions behave as
// some serial order chosen by the kernel.
type State struct {
	g         *Graph
	remaining []int32 // unexecuted predecessor count per node
	executed  []bool
	parent    []NodeID // designated parent in the enabling tree, None for root
	depth     []int32  // depth in the enabling tree, -1 if not yet enabled
	numExec   int
	numReady  int
}

// NewState returns a fresh execution state in which only the root is ready.
func NewState(g *Graph) *State {
	n := g.NumNodes()
	s := &State{
		g:         g,
		remaining: make([]int32, n),
		executed:  make([]bool, n),
		parent:    make([]NodeID, n),
		depth:     make([]int32, n),
	}
	for i := 0; i < n; i++ {
		s.remaining[i] = int32(len(g.nodes[i].Preds))
		s.parent[i] = None
		s.depth[i] = -1
	}
	s.depth[g.root] = 0
	s.numReady = 1
	return s
}

// Graph returns the graph being executed.
func (s *State) Graph() *Graph { return s.g }

// Ready reports whether node u is ready: all predecessors executed and u
// itself not yet executed.
func (s *State) Ready(u NodeID) bool {
	return !s.executed[u] && s.remaining[u] == 0
}

// Executed reports whether node u has been executed.
func (s *State) Executed(u NodeID) bool { return s.executed[u] }

// NumExecuted returns how many nodes have executed so far.
func (s *State) NumExecuted() int { return s.numExec }

// NumReady returns how many nodes are currently ready.
func (s *State) NumReady() int { return s.numReady }

// Done reports whether every node has executed.
func (s *State) Done() bool { return s.numExec == s.g.NumNodes() }

// Execute marks ready node u as executed and returns the children it
// enables, in successor order (the continuation edge's target first, when
// present). It panics if u is not ready, making scheduler bugs loud.
func (s *State) Execute(u NodeID) []NodeID {
	var buf [2]NodeID
	return s.ExecuteInto(u, buf[:0])
}

// ExecuteInto is Execute appending into the provided slice to avoid
// allocation in hot scheduler loops.
func (s *State) ExecuteInto(u NodeID, enabled []NodeID) []NodeID {
	if s.executed[u] {
		panic(fmt.Sprintf("dag: node %d executed twice", u))
	}
	if s.remaining[u] != 0 {
		panic(fmt.Sprintf("dag: node %d executed before ready (%d predecessors pending)", u, s.remaining[u]))
	}
	s.executed[u] = true
	s.numExec++
	s.numReady--
	for _, e := range s.g.nodes[u].Succs {
		s.remaining[e.To]--
		if s.remaining[e.To] == 0 {
			// (u, e.To) is an enabling edge; u is the designated parent.
			s.parent[e.To] = u
			s.depth[e.To] = s.depth[u] + 1
			s.numReady++
			enabled = append(enabled, e.To)
		}
	}
	return enabled
}

// DesignatedParent returns node u's designated parent in the enabling tree,
// or None if u is the root or has not been enabled yet.
func (s *State) DesignatedParent(u NodeID) NodeID { return s.parent[u] }

// Depth returns u's depth in the enabling tree, or -1 if u has not been
// enabled yet. The root has depth 0.
func (s *State) Depth(u NodeID) int { return int(s.depth[u]) }

// Weight returns w(u) = Tinf - depth(u), the node weight used by the
// potential-function analysis (Section 3.4). It panics if u has not been
// enabled, since its enabling-tree depth is then undefined.
func (s *State) Weight(tinf int, u NodeID) int {
	if s.depth[u] < 0 {
		panic(fmt.Sprintf("dag: weight of un-enabled node %d is undefined", u))
	}
	return tinf - int(s.depth[u])
}

// ReadyNodes returns all currently ready nodes in increasing id order.
// It is O(n) and intended for offline schedulers and tests, not hot loops.
func (s *State) ReadyNodes() []NodeID {
	var out []NodeID
	for i := range s.remaining {
		if s.remaining[i] == 0 && !s.executed[i] {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// IsEnablingAncestor reports whether node a is an ancestor of node b in the
// enabling tree built so far (a node is an ancestor of itself).
func (s *State) IsEnablingAncestor(a, b NodeID) bool {
	for u := b; u != None; u = s.parent[u] {
		if u == a {
			return true
		}
	}
	return false
}
