package lint

import (
	"go/ast"
	"go/types"
)

// OwnerOnly enforces the deque ownership contract of paper Section 3.2: a
// "good set of invocations" has PushBottom and PopBottom called only by the
// deque's single owner. Ownership is not a property go/types can see, so it
// is declared: a function carrying the //abp:owner directive is an audited
// owner context (the worker loop that owns its deque, or a quiescent phase
// such as the between-runs drain). The analyzer flags every reference to a
// PushBottom or PopBottom method — call or method value — whose innermost
// enclosing function is neither annotated nor reachable from an annotated
// function along the package call graph (callgraph.go).
//
// Reachability is goroutine-aware: ownership extends along plain calls and
// defers (the callee runs on the owner's goroutine) but never across a `go`
// statement — `go helper(d)` hands the deque to a NEW goroutine, which is
// by definition not the single owner, so helper needs its own audited
// annotation. Function literals are separate call-graph nodes: one that is
// invoked in place (or deferred) inherits the enclosing owner context,
// while one that is launched via `go` or escapes as a value (stored,
// passed, sent) inherits nothing. Dynamic dispatch and cross-package calls
// likewise do not extend the reachable set. That is deliberate — every new
// owner context should be written down and reviewed, exactly as TR-99-11
// reviews the good-set assumption.
var OwnerOnly = &Analyzer{
	Name: "owneronly",
	Doc:  "requires PushBottom/PopBottom references to be reachable from an //abp:owner-annotated function",
	Run:  runOwnerOnly,
}

func runOwnerOnly(pass *Pass) error {
	cg := newCallGraph(pass.TypesInfo, pass.Files)
	owned := cg.ownedNodes()

	for _, node := range cg.nodes {
		if owned[node] {
			continue
		}
		node.inspectOwn(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "PushBottom" && sel.Sel.Name != "PopBottom" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() == nil {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s called outside an owner context: %s is not reachable from any //abp:owner function (single-owner contract, paper §3.2)",
				sel.Sel.Name, node.name())
			return true
		})
	}
	return nil
}
