package sched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"worksteal/internal/atomicx"
	"worksteal/internal/dag"
	"worksteal/internal/deque"
)

// GraphConfig configures a native execution of an explicit computation dag.
// Because the dag's work T1 and critical-path length Tinf are known exactly,
// these runs are what the hardware experiments use to check the paper's
// bound on real processors.
type GraphConfig struct {
	Graph *dag.Graph
	// Workers is the number of worker goroutines (default GOMAXPROCS).
	Workers int
	// Deque selects the deque implementation (default DequeABP).
	Deque DequeKind
	// DisableYield removes the runtime.Gosched between steal attempts.
	DisableYield bool
	// NodeWork is the synthetic cost of executing one node, in iterations
	// of a small arithmetic loop; 0 means nodes are nearly free and
	// scheduling overhead dominates.
	NodeWork int
	// NodeFunc, if non-nil, is invoked when a node executes (after the
	// NodeWork spin). It runs exactly once per node, and all of the node's
	// dag predecessors have completed before it runs, so it can implement
	// real computations structured as dags (see examples/wavefront).
	// NodeFunc must be safe for concurrent invocation on different nodes.
	NodeFunc func(u dag.NodeID)
	// Seed seeds victim selection.
	Seed int64
	// Pin locks each worker to an OS thread.
	Pin bool
	// RelaxedAtomics enables the proof-gated owner-side deque downgrades
	// (see Config.RelaxedAtomics); the E15 ablation toggles it.
	RelaxedAtomics bool
}

// GraphResult reports a native dag execution.
type GraphResult struct {
	Elapsed       time.Duration
	NodesExecuted int64
	Steals        int64
	StealAttempts int64
	Yields        int64
	// NodesPerWorker shows the work distribution.
	NodesPerWorker []int64
}

// graphRun holds the shared state of one native dag execution. The join
// counters (remaining) are sc — the decrement result is consumed, and
// exactly one decrementer enables each node — while the statistics and the
// done flag are blind publications read after the join (or, for done, a
// gate whose ordering the enabling decrements already provide).
type graphRun struct {
	cfg       GraphConfig
	g         *dag.Graph
	remaining []atomicx.SCInt32
	executed  atomicx.Publish64
	done      atomicx.PublishBool
	ids       []dag.NodeID // stable backing storage for deque pointers
	deques    []deque.Dequer[dag.NodeID]
	perWorker []atomicx.Publish64
	steals    atomicx.Publish64
	attempts  atomicx.Publish64
	yields    atomicx.Publish64
}

// RunGraph executes the dag with the Figure 3 scheduling loop on native
// goroutine workers and returns timing and distribution statistics. It
// panics if the execution ends without every node executed (which would
// indicate a scheduler bug; this cannot happen).
func RunGraph(cfg GraphConfig) GraphResult {
	if cfg.Graph == nil {
		panic("sched: GraphConfig.Graph is nil")
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", cfg.Workers))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xAB9
	}
	n := cfg.Graph.NumNodes()
	r := &graphRun{
		cfg:       cfg,
		g:         cfg.Graph,
		remaining: make([]atomicx.SCInt32, n),
		ids:       make([]dag.NodeID, n),
		perWorker: make([]atomicx.Publish64, cfg.Workers),
	}
	for i := 0; i < n; i++ {
		r.remaining[i].Store(int32(cfg.Graph.InDegree(dag.NodeID(i))))
		r.ids[i] = dag.NodeID(i)
	}
	for i := 0; i < cfg.Workers; i++ {
		// The bounded deques can hold at most the number of nodes.
		switch cfg.Deque {
		case DequeMutex:
			r.deques = append(r.deques, deque.NewMutexWithCapacity[dag.NodeID](n+1))
		case DequeChaseLev:
			cl := deque.NewChaseLev[dag.NodeID]()
			cl.SetRelaxed(cfg.RelaxedAtomics)
			r.deques = append(r.deques, cl)
		default:
			abp := deque.NewWithCapacity[dag.NodeID](n + 1)
			abp.SetRelaxed(cfg.RelaxedAtomics)
			r.deques = append(r.deques, abp)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker(i, seed+int64(i)*7_919, &wg)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if got := r.executed.Load(); got != int64(n) {
		panic(fmt.Sprintf("sched: graph run executed %d of %d nodes", got, n))
	}
	res := GraphResult{
		Elapsed:       elapsed,
		NodesExecuted: r.executed.Load(),
		Steals:        r.steals.Load(),
		StealAttempts: r.attempts.Load(),
		Yields:        r.yields.Load(),
	}
	for i := range r.perWorker {
		res.NodesPerWorker = append(res.NodesPerWorker, r.perWorker[i].Load())
	}
	return res
}

// worker runs the Figure 3 loop: execute the assigned node, then pop, push
// or steal according to how many children the execution enabled.
//
//abp:owner the worker goroutine is deques[id]'s single owner for the run
func (r *graphRun) worker(id int, seed int64, wg *sync.WaitGroup) {
	defer wg.Done()
	if r.cfg.Pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	rng := rand.New(rand.NewSource(seed))
	dq := r.deques[id]
	assigned := dag.None
	if id == 0 {
		assigned = r.g.Root() // root node assigned to process zero
	}
	var localSteals, localAttempts, localYields, localNodes int64
	defer func() {
		r.steals.Add(localSteals)
		r.attempts.Add(localAttempts)
		r.yields.Add(localYields)
		r.perWorker[id].Add(localNodes)
	}()

	for !r.done.Load() {
		if assigned != dag.None {
			u := assigned
			assigned = dag.None
			c0, c1 := r.execute(u)
			localNodes++
			switch {
			case c0 == dag.None: // died or blocked: pop
				if t := dq.PopBottom(); t != nil {
					assigned = *t
				}
			case c1 == dag.None: // one child: continue into it
				assigned = c0
			default: // two children: push one, run the other
				if !dq.PushBottom(&r.ids[c1]) {
					// Full deque cannot happen (capacity = n), but stay safe:
					// run both in sequence by keeping c1 ready via c0 path.
					panic("sched: graph deque overflow")
				}
				assigned = c0
			}
			continue
		}
		// Thief: yield, then one steal attempt on a random victim.
		if !r.cfg.DisableYield {
			localYields++
			runtime.Gosched()
		}
		if len(r.deques) == 1 {
			continue
		}
		v := rng.Intn(len(r.deques) - 1)
		if v >= id {
			v++
		}
		localAttempts++
		if t := r.deques[v].PopTop(); t != nil {
			localSteals++
			assigned = *t
		}
	}
}

// execute performs node u's synthetic work, then enables children by
// decrementing successor join counters; the last decrementer of a node
// enables it (exactly-once, via atomics). Returns up to two enabled
// children (c0 filled first).
func (r *graphRun) execute(u dag.NodeID) (c0, c1 dag.NodeID) {
	c0, c1 = dag.None, dag.None
	spin(r.cfg.NodeWork)
	if r.cfg.NodeFunc != nil {
		r.cfg.NodeFunc(u)
	}
	r.executed.Add(1)
	for _, e := range r.g.Succs(u) {
		if r.remaining[e.To].Add(-1) == 0 {
			if c0 == dag.None {
				c0 = e.To
			} else {
				c1 = e.To
			}
		}
	}
	if u == r.g.Final() {
		r.done.Store(true)
	}
	return c0, c1
}

// spinSink defeats dead-code elimination of the spin loop. Publication
// ordering suffices: nothing ever reads it back.
var spinSink atomicx.PublishUint64

// spin burns roughly n iterations of integer work.
func spin(n int) {
	if n <= 0 {
		return
	}
	x := uint64(n) | 1
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Store(x)
}
