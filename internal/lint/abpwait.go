// abpwait: whole-package liveness analysis — the wait/signal counterpart
// to abprace's happens-before machinery. Where the other eleven analyzers
// guard safety properties (no races, no ABA, no false sharing), abpwait
// guards the property the paper's §3.2/§6 bounds actually assert:
// *progress*. Both historical shipped bugs in the park/wake machinery were
// liveness bugs — the PR-1 lost wakeup (a worker blocked on a token nobody
// could deposit) and the PR-6 invisible backoff nap (a bare time.Sleep a
// signal could not cut short) — and neither violated any safety contract.
//
// The analysis builds a wait/signal graph over the package:
//
//   - WAIT sites: bare channel receives, range-over-channel loops,
//     blocking selects (no default), Wait/Join-shaped calls
//     (sync.WaitGroup.Wait and body-less or cross-package Wait/Join
//     methods), and bare time.Sleep naps. Each is attributed to the
//     goroutine roots (abprace's inference) that can be blocked there.
//   - SIGNAL sites: channel sends (including token deposits inside
//     select-with-default), close calls, and WaitGroup Add/Done.
//
// and reports four finding classes:
//
//  1. naked-wait — a blocking wait whose awaited object has no signal
//     site reachable from any root that can run concurrently with the
//     waiter (nobody can ever wake it). Matching is by identity variable
//     first (abprace's leafVar); a variable with no signal entries at all
//     falls back to channel-type matching, so a channel that travels
//     through locals or parameters (Group.Wait's *ch) still finds its
//     close. The type fallback over-approximates liveness — that is the
//     conservative direction for a liveness check.
//  2. missed-signal — a bare time.Sleep on a non-external goroutine root
//     inside a loop (its own CFG cycle, or transitively called from a
//     call site on one). A sleeping poller is invisible to signallers: a
//     wake arriving mid-nap silently waits out the remaining sleep, the
//     exact PR-6 bug. The fix shape is park's register→re-check→block
//     select on a wake token with a timer case (lifecycle.go).
//  3. wait-cycle — a cycle in the inter-root wait-for graph in which
//     every signal that could release each wait is itself sequenced
//     after the signaller's own escape-less wait, and no timeout/quit/
//     abort case breaks any edge: a static deadlock shape. An edge
//     A →(obj) B exists only when every one of B's signal sites for obj
//     is dominated by one of B's own hard waits in the same function
//     (a deferred signal counts as blocked when its function hard-waits
//     at all) — the send-then-Wait idiom therefore never edges.
//  4. unbounded-block — a blocking select on a non-external root with no
//     escape case (quit/abort/stop-named channel, ctx.Done()-shaped
//     call, timer, or default): a stopped pool strands the goroutine
//     forever. park, Future.Join, and the watchdog all carry such a
//     case; this check turns that convention into a contract.
//
// Escape channels are recognised by shape, not provenance: a receive from
// a method call named Done (context.Context, Handle), a time.Timer/Ticker
// .C field or time.After/Tick call, or a channel whose identity variable's
// name contains quit/stop/abort/cancel/done/fail/finish/exit/kill/close/
// term. Those channels are also exempt from naked-wait — they are
// runtime- or shutdown-signalled by construction.
//
// Over-approximations, both deliberate (DESIGN.md §13): waits inside
// function literals that only escape as values have no goroutine context
// and are skipped (abprace's silence rule); signals in such literals
// conservatively count as present for naked-wait (their eventual caller
// is unknown, so they may well fire). Findings are waived with a
// justified //abp:wait-ignore directive.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AbpWait reports statically detectable liveness hazards: waits nobody
// can signal, polling sleeps invisible to signallers, inter-goroutine
// wait cycles, and escape-less blocking selects on worker roots.
var AbpWait = &Analyzer{
	Name: "abpwait",
	Doc: "report liveness hazards over the package's wait/signal graph: naked-wait " +
		"(no concurrent root can signal the awaited object), missed-signal (bare " +
		"time.Sleep polling loops, the PR-6 nap bug shape), wait-cycle (static " +
		"deadlock among goroutine roots), and unbounded-block (blocking select " +
		"with no quit/abort/ctx.Done escape on a worker root)",
	Run: runAbpWait,
}

// waitKind classifies a blocking site.
type waitKind uint8

const (
	waitRecv   waitKind = iota // <-ch outside a select
	waitRange                  // for range ch
	waitSelect                 // select without default
	waitWG                     // sync.WaitGroup.Wait
	waitOpaque                 // body-less/cross-package Wait/Join call
	waitSleep                  // bare time.Sleep
)

// A waitObj is one object a wait site blocks on. exempt marks escape
// channels (timers, Done()-shaped calls, quit/stop-named channels):
// signalled by the runtime or the shutdown path by construction, they are
// excluded from naked-wait and never form wait-cycle edges.
type waitObj struct {
	v      *types.Var // identity variable; nil when unresolvable
	typ    types.Type // channel type, for fallback matching
	name   string     // rendered for diagnostics
	exempt bool
}

// A waitSite is one blocking site, attributed to the function containing
// it (goroutine roots come from the inference, per function).
type waitSite struct {
	fn     *funcNode
	node   ast.Node // the recv/range/select/call node
	kind   waitKind
	objs   []waitObj
	escape bool // some case/object lets the blocked goroutine out
	desc   string
}

// A signalSite is one send/close/WaitGroup-counter operation.
type signalSite struct {
	fn   *funcNode
	node ast.Node
	v    *types.Var // identity variable of the signalled object; may be nil
	typ  types.Type
	wg   bool // WaitGroup Add/Done: identity-matched only, never by type
	// deferred signals run at their function's return — after every wait
	// in its body, whatever the lexical order says.
	deferred bool
	op       string
}

// waitAnalysis is the whole-package wait/signal graph.
type waitAnalysis struct {
	pass    *Pass
	graph   *callGraph
	gs      *goroutineSet
	cfgs    map[*funcNode]*funcCFG
	waits   []*waitSite
	signals []*signalSite
	byVar   map[*types.Var][]*signalSite
	// loopy marks functions whose every execution may repeat: called
	// from a call site on a caller's CFG cycle, transitively.
	loopy map[*funcNode]bool
}

func runAbpWait(pass *Pass) error {
	a := newWaitAnalysis(pass)
	a.reportNakedWaits()
	a.reportMissedSignals()
	a.reportWaitCycles()
	a.reportUnboundedBlocks()
	return nil
}

// newWaitAnalysis builds the graph: call graph, goroutine roots, and the
// wait/signal site collections over every function node (declarations and
// literals alike — a signal in an escaping literal still counts).
func newWaitAnalysis(pass *Pass) *waitAnalysis {
	g := newCallGraph(pass.TypesInfo, pass.Files)
	a := &waitAnalysis{
		pass:  pass,
		graph: g,
		cfgs:  map[*funcNode]*funcCFG{},
		byVar: map[*types.Var][]*signalSite{},
	}
	a.gs = inferGoroutines(g, a.cfg)
	for _, n := range g.nodes {
		a.collect(n)
	}
	for _, s := range a.signals {
		if s.v != nil {
			a.byVar[s.v] = append(a.byVar[s.v], s)
		}
	}
	a.computeLoopy()
	return a
}

func (a *waitAnalysis) cfg(fn *funcNode) *funcCFG {
	if g, ok := a.cfgs[fn]; ok {
		return g
	}
	body := fn.body()
	if body == nil {
		return nil
	}
	g := buildCFG(body)
	a.cfgs[fn] = g
	return g
}

// roots returns the goroutine roots that can be executing fn.
func (a *waitAnalysis) roots(fn *funcNode) []*gRoot { return a.gs.ctx[fn] }

// escapeNameParts are the substrings that mark a channel as a shutdown/
// completion escape by naming convention (quitCh, stopAux, abort, failCh,
// finished, cancel, exitC, ...).
var escapeNameParts = []string{
	"quit", "stop", "abort", "cancel", "done", "fail", "finish",
	"exit", "kill", "close", "term",
}

func escapeName(name string) bool {
	l := strings.ToLower(name)
	for _, p := range escapeNameParts {
		if strings.Contains(l, p) {
			return true
		}
	}
	return false
}

// timerChan reports whether e denotes a runtime-signalled timer channel:
// the C field of a time.Timer/Ticker, or a time.After/time.Tick call.
func (a *waitAnalysis) timerChan(e ast.Expr) bool {
	info := a.pass.TypesInfo
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v := leafVar(info, x); v != nil && v.Name() == "C" &&
			v.Pkg() != nil && v.Pkg().Path() == "time" {
			return true
		}
	case *ast.CallExpr:
		if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "time" {
			switch fn.Name() {
			case "After", "Tick":
				return true
			}
		}
	}
	return false
}

// doneCall reports whether e is a call to a method named Done — the
// ctx.Done() / Handle.Done() shape, a channel whose closer is the
// runtime's cancellation machinery or the completion path.
func (a *waitAnalysis) doneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(a.pass.TypesInfo, call)
	return fn != nil && fn.Name() == "Done" &&
		fn.Type().(*types.Signature).Recv() != nil
}

// chanObj resolves the channel expression of a receive into a waitObj.
func (a *waitAnalysis) chanObj(e ast.Expr) waitObj {
	info := a.pass.TypesInfo
	o := waitObj{typ: info.TypeOf(e), name: renderExpr(e)}
	if a.timerChan(e) || a.doneCall(e) {
		o.exempt = true
		return o
	}
	o.v = leafVar(info, e)
	if o.v != nil {
		o.name = o.v.Name()
		if escapeName(o.v.Name()) {
			o.exempt = true
		}
	}
	return o
}

// renderExpr prints a short source-ish form of an expression for
// diagnostics when no identity variable resolves.
func renderExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "()"
	case *ast.StarExpr:
		return renderExpr(x.X)
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// isChanType reports whether t's core type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// collect walks fn's own body (nested literals are their own nodes) and
// records its wait and signal sites.
func (a *waitAnalysis) collect(fn *funcNode) {
	if fn.body() == nil {
		return
	}
	info := a.pass.TypesInfo
	// Receives that are comm clauses of a select belong to the select's
	// site, not to a standalone recv site; deferred calls are signals that
	// fire at return, not at their lexical position.
	inSelect := map[ast.Node]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	fn.inspectOwn(func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferCalls[d.Call] = true
		}
		return true
	})
	fn.inspectOwn(func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			a.collectSelect(fn, x, inSelect)
		case *ast.UnaryExpr:
			if x.Op != token.ARROW || inSelect[x] {
				return true
			}
			obj := a.chanObj(x.X)
			a.waits = append(a.waits, &waitSite{
				fn: fn, node: x, kind: waitRecv, objs: []waitObj{obj},
				escape: obj.exempt,
				desc:   "receive on " + obj.name,
			})
		case *ast.RangeStmt:
			if !isChanType(info.TypeOf(x.X)) {
				return true
			}
			obj := a.chanObj(x.X)
			a.waits = append(a.waits, &waitSite{
				fn: fn, node: x, kind: waitRange, objs: []waitObj{obj},
				escape: obj.exempt,
				desc:   "range over " + obj.name,
			})
		case *ast.SendStmt:
			a.signals = append(a.signals, &signalSite{
				fn: fn, node: x, v: leafVar(info, x.Chan),
				typ: info.TypeOf(x.Chan), op: "send",
			})
		case *ast.CallExpr:
			a.classifyCall(fn, x, deferCalls[x])
		}
		return true
	})
}

// collectSelect records one select statement: with a default clause it is
// non-blocking (its sends still register via the SendStmt walk); without
// one it is a wait on every received object, escaped when any case is an
// escape channel.
func (a *waitAnalysis) collectSelect(fn *funcNode, sel *ast.SelectStmt, inSelect map[ast.Node]bool) {
	hasDefault := false
	var objs []waitObj
	escape := false
	for _, c := range sel.Body.List {
		clause, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm == nil {
			hasDefault = true
			continue
		}
		var recv ast.Expr
		switch s := clause.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		if u, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			inSelect[u] = true
			obj := a.chanObj(u.X)
			objs = append(objs, obj)
			if obj.exempt {
				escape = true
			}
		}
	}
	if hasDefault {
		return // non-blocking: a token deposit / poll, not a wait
	}
	a.waits = append(a.waits, &waitSite{
		fn: fn, node: sel, kind: waitSelect, objs: objs, escape: escape,
		desc: "select",
	})
}

// classifyCall records close(), time.Sleep, WaitGroup Wait/Add/Done, and
// opaque Wait/Join-shaped calls.
func (a *waitAnalysis) classifyCall(fn *funcNode, call *ast.CallExpr, deferred bool) {
	info := a.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
			a.signals = append(a.signals, &signalSite{
				fn: fn, node: call, v: leafVar(info, call.Args[0]),
				typ: info.TypeOf(call.Args[0]), deferred: deferred, op: "close",
			})
		}
		return
	}
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	sig := callee.Type().(*types.Signature)
	if callee.Pkg().Path() == "time" && sig.Recv() == nil && callee.Name() == "Sleep" {
		a.waits = append(a.waits, &waitSite{
			fn: fn, node: call, kind: waitSleep, desc: "time.Sleep",
		})
		return
	}
	if sig.Recv() == nil {
		return
	}
	named := recvNamed(callee)
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
		var v *types.Var
		if sel != nil {
			v = leafVar(info, sel.X)
		}
		switch callee.Name() {
		case "Wait":
			a.waits = append(a.waits, &waitSite{
				fn: fn, node: call, kind: waitWG,
				objs: []waitObj{{v: v, name: renderExpr(sel.X)}},
				desc: renderExpr(sel.X) + ".Wait",
			})
		case "Add", "Done":
			a.signals = append(a.signals, &signalSite{
				fn: fn, node: call, v: v, wg: true, deferred: deferred, op: callee.Name(),
			})
		}
		return
	}
	// Wait/Join-shaped methods whose body this package cannot see: they
	// block on state the receiver owns. They participate in the wait-for
	// graph (identity-matched), but carry no naked-wait/unbounded claim —
	// their signal side is invisible by construction.
	if callee.Name() != "Wait" && callee.Name() != "Join" {
		return
	}
	if node, ok := a.graph.declNode[callee]; ok && node.body() != nil {
		return // in-package with a body: its own waits are analyzed directly
	}
	var obj waitObj
	if sel != nil {
		obj = waitObj{v: leafVar(info, sel.X), name: renderExpr(sel.X)}
	}
	a.waits = append(a.waits, &waitSite{
		fn: fn, node: call, kind: waitOpaque, objs: []waitObj{obj},
		desc: renderExpr(call.Fun),
	})
}

// computeLoopy finds functions that can be invoked repeatedly within one
// goroutine: a static or defer call site on a cycle of the caller's CFG,
// or any static call from a function already loopy. go edges do not
// count — a launch site in a loop multiplies roots (gRoot.multi), not
// iterations within one goroutine.
func (a *waitAnalysis) computeLoopy() {
	a.loopy = map[*funcNode]bool{}
	for _, from := range a.graph.nodes {
		g := a.cfg(from)
		if g == nil {
			continue
		}
		for _, e := range a.graph.edges[from] {
			if e.kind == callGo || e.site == nil {
				continue
			}
			if a.nodeInCycle(g, e.site.Pos()) {
				a.loopy[e.to] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, from := range a.graph.nodes {
			if !a.loopy[from] {
				continue
			}
			for _, e := range a.graph.edges[from] {
				if e.kind != callGo && !a.loopy[e.to] {
					a.loopy[e.to] = true
					changed = true
				}
			}
		}
	}
}

// nodeInCycle reports whether the innermost CFG node at pos lies on a
// cycle of g.
func (a *waitAnalysis) nodeInCycle(g *funcCFG, pos token.Pos) bool {
	n := g.blockNodeAt(pos)
	if n == nil {
		return false
	}
	blk, ok := g.nodeBlock[n]
	if !ok {
		return false
	}
	return g.reachability()[blk.index][blk.index]
}

// --- Class 1: naked-wait ---

// signalsFor returns the signal sites that can release a wait on obj:
// identity matches first; a LOCAL variable or parameter with no identity-
// matched signals is an alias of a channel created elsewhere, so it falls
// back to channel-type matching (Group.Wait's *ch finds done()'s close).
// Struct fields and package-level channels are their own canonical
// identity — signals on them would have matched by identity, so an
// unsignalled one stays naked rather than being excused by any same-typed
// close in the package. WaitGroup waits never fall back.
func (a *waitAnalysis) signalsFor(w *waitSite, obj waitObj) []*signalSite {
	if obj.v != nil {
		if sigs := a.byVar[obj.v]; len(sigs) > 0 {
			return sigs
		}
		if obj.v.IsField() || (obj.v.Parent() != nil && obj.v.Parent() == a.pass.Pkg.Scope()) {
			return nil
		}
	}
	if w.kind == waitWG || obj.typ == nil {
		return nil
	}
	var out []*signalSite
	for _, s := range a.signals {
		if !s.wg && s.typ != nil && types.Identical(s.typ, obj.typ) {
			out = append(out, s)
		}
	}
	return out
}

// releasableBy reports whether some signal in sigs can fire while a
// goroutine of waitRoots is blocked: the signal's function has no known
// context (its eventual caller may be anyone), or some root executing it
// is concurrent with some waiting root. Concurrency is adversarial —
// proving a wake CAN arrive must not lean on the external-serialization
// assumption.
func releasableBy(sigs []*signalSite, a *waitAnalysis, waitRoots []*gRoot) bool {
	for _, s := range sigs {
		sigRoots := a.roots(s.fn)
		if len(sigRoots) == 0 {
			return true // unknown context: conservatively assume it fires
		}
		for _, sr := range sigRoots {
			for _, wr := range waitRoots {
				if sr.concurrentAdversarial(wr) {
					return true
				}
			}
		}
	}
	return false
}

func (a *waitAnalysis) reportNakedWaits() {
	for _, w := range a.waits {
		if w.kind == waitSleep || w.kind == waitOpaque || w.escape {
			continue
		}
		waitRoots := a.roots(w.fn)
		if len(waitRoots) == 0 {
			continue // escaping literal: no context, deliberate silence
		}
		// A select is released by ANY of its cases; other kinds have one
		// object. Unresolvable objects (nil v and nil type) stay silent.
		naked := len(w.objs) > 0
		var dead []string
		for _, obj := range w.objs {
			if obj.exempt || releasableBy(a.signalsFor(w, obj), a, waitRoots) {
				naked = false
				break
			}
			dead = append(dead, obj.name)
		}
		if !naked {
			continue
		}
		a.pass.Reportf(w.node.Pos(),
			"naked wait: %s in %s blocks %s on %s, but no send or close of it is reachable from any concurrent goroutine root — nothing can ever deliver this wakeup (the PR-1 lost-wakeup shape; //abp:wait-ignore with a justification to waive)",
			w.desc, w.fn.name(), rootNames(waitRoots), strings.Join(dead, ", "))
	}
}

// --- Class 2: missed-signal ---

func (a *waitAnalysis) reportMissedSignals() {
	for _, w := range a.waits {
		if w.kind != waitSleep {
			continue
		}
		roots := a.roots(w.fn)
		var goRoot *gRoot
		for _, r := range roots {
			if !r.external {
				goRoot = r
				break
			}
		}
		if goRoot == nil {
			continue // only external callers nap here: their latency, their call
		}
		g := a.cfg(w.fn)
		if g == nil {
			continue
		}
		if !a.nodeInCycle(g, w.node.Pos()) && !a.loopy[w.fn] {
			continue // a one-shot delay, not a polling loop
		}
		a.pass.Reportf(w.node.Pos(),
			"missed signal: bare time.Sleep in a polling loop on %s — a wake arriving mid-nap silently waits out the remaining sleep (the PR-6 invisible-nap bug); select on a wake token with a timer case instead (the park pattern, internal/sched/lifecycle.go) (//abp:wait-ignore with a justification to waive)",
			goRoot.name())
	}
}

// --- Class 3: wait-cycle ---

// A waitEdge connects two wait SITES: from can only be released by a
// signal of obj that is itself sequenced behind to — the blocked goroutine
// at to must advance before from's wakeup can fire. The graph is over
// sites, not roots, precisely so a wait that has already completed (a
// probe earlier in the same function) never counts as still blocking a
// later signal.
type waitEdge struct {
	from, to *waitSite
	obj      string
}

func (a *waitAnalysis) reportWaitCycles() {
	// hard: per function, the escape-less blocking sites (selects with no
	// escape case, bare receives on non-escape channels, WaitGroup and
	// opaque waits) of functions with known goroutine context.
	hard := map[*funcNode][]*waitSite{}
	for _, w := range a.waits {
		if w.kind == waitSleep || w.escape || len(a.roots(w.fn)) == 0 {
			continue
		}
		hard[w.fn] = append(hard[w.fn], w)
	}

	// blockers returns the hard waits of s's own function that are
	// sequenced before s — the waits the signal is stuck behind. A
	// deferred signal runs at return, after every wait in the body. An
	// empty result means the signal can fire unimpeded (release edge
	// impossible); cross-function ordering is unknowable and treated the
	// same way — the direction that avoids false deadlock reports.
	blockers := func(s *signalSite) []*waitSite {
		g := a.cfg(s.fn)
		if g == nil {
			return nil
		}
		if s.deferred {
			return hard[s.fn]
		}
		var out []*waitSite
		for _, w := range hard[s.fn] {
			if g.dominates(cfgNodeAt(g, w.node), cfgNodeAt(g, s.node)) {
				out = append(out, w)
			}
		}
		return out
	}

	adj := map[*waitSite][]waitEdge{}
	for _, w := range a.waits {
		if w.kind == waitSleep || w.escape || len(a.roots(w.fn)) == 0 {
			continue
		}
		for _, obj := range w.objs {
			if obj.exempt || obj.v == nil {
				continue
			}
			// Identity matches only — a type fallback would fake edges.
			// WaitGroup.Add is excluded: it raises the counter, it cannot
			// release a Wait.
			var sigs []*signalSite
			for _, s := range a.byVar[obj.v] {
				if s.op != "Add" {
					sigs = append(sigs, s)
				}
			}
			if len(sigs) == 0 {
				continue // naked-wait's domain
			}
			var edges []waitEdge
			releasable := false
			for _, s := range sigs {
				if len(a.roots(s.fn)) == 0 {
					releasable = true // unknown context: assume it fires
					break
				}
				bs := blockers(s)
				if len(bs) == 0 {
					releasable = true
					break
				}
				for _, b := range bs {
					edges = append(edges, waitEdge{from: w, to: b, obj: obj.name})
				}
			}
			if !releasable {
				adj[w] = append(adj[w], edges...)
			}
		}
	}
	if len(adj) == 0 {
		return
	}
	for _, es := range adj {
		sort.SliceStable(es, func(i, j int) bool { return es[i].to.node.Pos() < es[j].to.node.Pos() })
	}
	sites := make([]*waitSite, 0, len(adj))
	for w := range adj {
		sites = append(sites, w)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].node.Pos() < sites[j].node.Pos() })

	seen := map[string]bool{}
	var dfs func(w *waitSite, path []waitEdge, onPath map[*waitSite]int)
	dfs = func(w *waitSite, path []waitEdge, onPath map[*waitSite]int) {
		for _, e := range adj[w] {
			if i, ok := onPath[e.to]; ok {
				cycle := append(append([]waitEdge(nil), path[i:]...), e)
				a.reportCycle(cycle, seen)
				continue
			}
			onPath[e.to] = len(path) + 1
			dfs(e.to, append(path, e), onPath)
			delete(onPath, e.to)
		}
	}
	for _, w := range sites {
		dfs(w, nil, map[*waitSite]int{w: 0})
	}
}

func (a *waitAnalysis) reportCycle(cycle []waitEdge, seen map[string]bool) {
	keys := make([]string, 0, len(cycle))
	for _, e := range cycle {
		keys = append(keys, fmt.Sprint(e.from.node.Pos()))
	}
	sort.Strings(keys)
	key := strings.Join(keys, "|")
	if seen[key] {
		return
	}
	seen[key] = true
	var b strings.Builder
	for i, e := range cycle {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s in %s awaiting %s", e.from.desc, e.from.fn.name(), e.obj)
	}
	first := cycle[0].from
	a.pass.Reportf(first.node.Pos(),
		"wait cycle: %s -> back to the first wait — every signal that could release each wait is sequenced behind the next wait in the cycle, and no timeout/quit/abort case breaks it (//abp:wait-ignore with a justification to waive)",
		b.String())
}

// cfgNodeAt maps an AST node to its innermost registered CFG node (the
// node itself when registered, else the enclosing block-level statement).
func cfgNodeAt(g *funcCFG, n ast.Node) ast.Node {
	if _, ok := g.nodeBlock[n]; ok {
		return n
	}
	return g.blockNodeAt(n.Pos())
}

// --- Class 4: unbounded-block ---

func (a *waitAnalysis) reportUnboundedBlocks() {
	for _, w := range a.waits {
		if w.kind != waitSelect || w.escape {
			continue
		}
		roots := a.roots(w.fn)
		var goRoot *gRoot
		for _, r := range roots {
			if !r.external {
				goRoot = r
				break
			}
		}
		if goRoot == nil {
			continue // external callers choose their own blocking discipline
		}
		a.pass.Reportf(w.node.Pos(),
			"unbounded block: select in %s on %s has no escape case — no quit/stop/abort channel, ctx.Done(), timer, or default — so a stopped pool strands this goroutine forever (//abp:wait-ignore with a justification to waive)",
			w.fn.name(), goRoot.name())
	}
}

// rootNames renders a root list for diagnostics.
func rootNames(roots []*gRoot) string {
	names := make([]string, 0, len(roots))
	for _, r := range roots {
		names = append(names, r.name())
	}
	return strings.Join(names, ", ")
}
