// Stall watchdog: surfacing frozen workers instead of hanging silently.
//
// The paper's non-blocking claim means a stalled process cannot block the
// *others* — it says nothing about noticing that a process has stalled.
// In production that observability gap is what turns a wedged worker (a
// task stuck in a syscall, a goroutine suspended by a fault injection, a
// deadlocked user callback) into an unexplained hang of the whole job. The
// watchdog closes the gap: when Config.StallTimeout is set, a monitor
// goroutine runs alongside each session — a batch Run or a whole Serve —
// and reports any worker goroutine that makes no scheduler-visible
// progress for a full window while unparked. In serve mode one watchdog
// covers every submission at once: a stall is a property of a worker, not
// of any particular submission, and the report carries the worker index.
//
// Progress is the per-worker progress counter, ticked on every loop
// iteration and every task completion. Parked workers are exempt (waiting
// for work is the healthy idle state, and the Dekker handshake in
// lifecycle.go guarantees they cannot be waiting on lost work). What
// remains — unparked and motionless — is either a worker frozen
// mid-operation (the chaos scenario) or a single task running (or blocked
// in a Join) longer than the window; both are exactly what an operator
// wants surfaced. Detection is intentionally report-only: the watchdog
// never kills or unwinds anything, it increments Stats.StallsDetected and
// invokes Config.OnStall once per stall episode (re-arming when the worker
// makes progress again).
package sched

import "time"

// StallReport describes one detected stall episode.
type StallReport struct {
	// Worker is the index of the stalled worker goroutine.
	Worker int
	// Stalled is how long the worker had made no progress at detection
	// time; at least Config.StallTimeout.
	Stalled time.Duration
}

// watchdog polls worker progress until stop closes, reporting stalls per
// the package comment. It runs on its own goroutine, started by the
// session controller (RunContext or Serve) when Config.StallTimeout > 0.
func (p *Pool) watchdog(stop <-chan struct{}) {
	window := p.cfg.StallTimeout
	interval := window / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	n := len(p.workers)
	last := make([]int64, n)
	since := make([]time.Time, n)
	reported := make([]bool, n)
	now := time.Now()
	for i, w := range p.workers {
		last[i] = w.progress.Load()
		since[i] = now
	}
	for {
		select {
		case <-stop:
			return
		case now = <-ticker.C:
		}
		for i, w := range p.workers {
			cur := w.progress.Load()
			// Retiring and retired workers are exempt like parked ones: a
			// retired slot has no goroutine to make progress, and a
			// retiring worker may legitimately sit motionless at the
			// retire safe point (e.g. suspended by the kernel adversary at
			// sched.resize.beforeRetire) without that being a stall of the
			// serving fleet.
			if cur != last[i] || w.parked.Load() || w.state.Load() != workerActive {
				last[i] = cur
				since[i] = now
				reported[i] = false
				continue
			}
			if stalled := now.Sub(since[i]); !reported[i] && stalled >= window {
				reported[i] = true
				p.stalls.Add(1)
				if cb := p.cfg.OnStall; cb != nil {
					cb(StallReport{Worker: i, Stalled: stalled})
				}
			}
		}
	}
}
