package workload

import "worksteal/internal/dag"

// Spec names a dag workload and constructs it on demand. The experiment
// harnesses iterate over catalogs of Specs.
type Spec struct {
	Name  string
	Build func() *dag.Graph
}

// Catalog returns the standard dag workloads used by the experiment
// harnesses, spanning parallelism from 1 (chain) to hundreds (fib), and
// including non-fully-strict dags (grid, strands).
func Catalog() []Spec {
	return []Spec{
		{"chain", func() *dag.Graph { return Chain(2000) }},
		{"spine", func() *dag.Graph { return SpawnSpine(32, 64) }},
		{"fib", func() *dag.Graph { return FibDag(16) }},
		{"grid", func() *dag.Graph { return Grid(32, 64) }},
		{"strands", func() *dag.Graph { return Strands(24, 41) }},
		{"randomSP", func() *dag.Graph { return RandomSP(42, 3000) }},
		{"treesum", func() *dag.Graph { return TreeSum(9) }},
		{"uts", func() *dag.Graph { return UnbalancedTree(7, 3000) }},
	}
}

// SmallCatalog returns quick-running variants for unit tests.
func SmallCatalog() []Spec {
	return []Spec{
		{"chain", func() *dag.Graph { return Chain(50) }},
		{"spine", func() *dag.Graph { return SpawnSpine(6, 8) }},
		{"fib", func() *dag.Graph { return FibDag(8) }},
		{"grid", func() *dag.Graph { return Grid(6, 9) }},
		{"strands", func() *dag.Graph { return Strands(5, 7) }},
		{"randomSP", func() *dag.Graph { return RandomSP(7, 200) }},
		{"treesum", func() *dag.Graph { return TreeSum(4) }},
		{"uts", func() *dag.Graph { return UnbalancedTree(7, 150) }},
	}
}
