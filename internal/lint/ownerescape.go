package lint

import (
	"go/ast"
	"go/types"
)

// OwnerEscape closes the loophole OwnerOnly's reachability argument leaves
// open: OwnerOnly audits who CALLS the owner-only operations, but an
// audited owner function can still leak the deque itself to a context the
// call graph never sees — hand it to a new goroutine, send it down a
// channel, or store it into a struct another goroutine reads. Any of those
// silently manufactures a second "owner", voiding the good-set premise of
// paper Section 3.2 that every safety property of the Figure 5 deque is
// conditional on.
//
// Inside every //abp:owner function (and the function literals it owns, per
// the callgraph's goroutine-aware propagation), the analyzer flags a
// deque-typed value — any type whose method set has PushBottom+PopBottom or
// startPushBottom+startPopBottom — that escapes via:
//
//   - a go statement (argument, receiver, or a closure capturing it),
//   - a channel send, or
//   - a store to a struct field, slice/map element, composite literal, or
//     package-level variable.
//
// Locals, parameter passing to statically resolved calls (OwnerOnly audits
// those callees), and returns are not escapes: the single-owner argument
// for them is the caller's obligation.
var OwnerEscape = &Analyzer{
	Name: "ownerescape",
	Doc:  "forbids an //abp:owner function's deque (or a closure capturing it) from escaping via go statements, channel sends, or stores",
	Run:  runOwnerEscape,
}

func runOwnerEscape(pass *Pass) error {
	cg := newCallGraph(pass.TypesInfo, pass.Files)
	owned := cg.ownedNodes()
	if len(owned) == 0 {
		return nil
	}

	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := pass.TypesInfo.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	// escapes reports why e escaping matters: the expression is itself
	// deque-typed, or a function literal capturing a deque-typed variable.
	describe := func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		if isDequeLike(typeOf(e), pass.Pkg) {
			return "deque " + exprString(e), true
		}
		if lit, ok := e.(*ast.FuncLit); ok {
			for _, v := range cg.captures(lit) {
				if isDequeLike(v.Type(), pass.Pkg) {
					return "closure capturing deque " + v.Name(), true
				}
			}
		}
		return "", false
	}

	for _, node := range cg.nodes {
		if !owned[node] {
			continue
		}
		node.inspectOwn(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// The launched callee's receiver and arguments all move to
				// the new goroutine.
				if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
					if what, bad := describe(sel.X); bad {
						pass.Reportf(n.Pos(),
							"%s escapes %s into a go statement: the new goroutine is not the deque's single owner (paper §3.2)",
							node.name(), what)
					}
				}
				if what, bad := describe(n.Call.Fun); bad {
					pass.Reportf(n.Pos(),
						"%s launches a %s on a new goroutine, which is not the deque's single owner (paper §3.2)",
						node.name(), what)
				}
				for _, arg := range n.Call.Args {
					if what, bad := describe(arg); bad {
						pass.Reportf(arg.Pos(),
							"%s passes %s to a go statement: the new goroutine is not the deque's single owner (paper §3.2)",
							node.name(), what)
					}
				}
			case *ast.SendStmt:
				if what, bad := describe(n.Value); bad {
					pass.Reportf(n.Pos(),
						"%s sends %s on a channel: the receiver is not the deque's single owner (paper §3.2)",
						node.name(), what)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // tuple assignment: RHS is a single call, not a deque
					}
					if !isEscapingLValue(pass.TypesInfo, lhs) {
						continue
					}
					if what, bad := describe(n.Rhs[i]); bad {
						pass.Reportf(n.Rhs[i].Pos(),
							"%s stores %s into %s: a context outside the audited owner call graph could reach it (paper §3.2)",
							node.name(), what, exprString(lhs))
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if what, bad := describe(v); bad {
						pass.Reportf(v.Pos(),
							"%s embeds %s in a composite literal: the containing value may escape the owner context (paper §3.2)",
							node.name(), what)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isEscapingLValue reports whether assigning to lhs publishes the value
// beyond the current function: struct fields, slice/map/array elements,
// pointer dereferences, and package-level variables. Plain locals do not
// escape by assignment.
func isEscapingLValue(info *types.Info, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true // field store (package-qualified idents are not assignable fields here)
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		v, ok := info.Uses[lhs].(*types.Var)
		if !ok {
			if v, ok = info.Defs[lhs].(*types.Var); !ok {
				return false
			}
		}
		// Package-level variables are shared state.
		return v.Parent() != nil && v.Parent().Parent() == types.Universe
	}
	return false
}

// isDequeLike reports whether t's method set (value or pointer) carries the
// owner-only deque operations, in either the production naming
// (PushBottom/PopBottom: package deque and its Dequer interface) or the
// simulator naming (startPushBottom/startPopBottom: package sim's
// dequeOps). from scopes unexported-method lookup to the analyzed package.
func isDequeLike(t types.Type, from *types.Package) bool {
	if t == nil {
		return false
	}
	has := func(name string) bool {
		obj, _, _ := types.LookupFieldOrMethod(t, true, from, name)
		_, ok := obj.(*types.Func)
		return ok
	}
	return (has("PushBottom") && has("PopBottom")) ||
		(has("startPushBottom") && has("startPopBottom"))
}

// exprString renders a short expression for diagnostics (identifiers and
// selector chains; anything else becomes "value").
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "value"
	}
}
