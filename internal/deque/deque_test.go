package deque

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func intp(v int) *int { x := v; return &x }

func TestPackUnpackAge(t *testing.T) {
	cases := []struct{ tag, top uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {7, 42}, {^uint32(0), ^uint32(0)}, {1 << 31, 1 << 30},
	}
	for _, c := range cases {
		tag, top := unpackAge(packAge(c.tag, c.top))
		if tag != c.tag || top != c.top {
			t.Errorf("pack/unpack(%d,%d) = (%d,%d)", c.tag, c.top, tag, top)
		}
	}
}

func TestQuickPackAgeRoundTrip(t *testing.T) {
	prop := func(tag, top uint32) bool {
		a, b := unpackAge(packAge(tag, top))
		return a == tag && b == top
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// sequential LIFO/FIFO semantics against a reference model, for both
// implementations.
func testSequentialSemantics(t *testing.T, mk func() Dequer[int]) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := mk()
		var model []*int // model[0] is top
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // pushBottom
				v := intp(next)
				next++
				if d.PushBottom(v) {
					model = append(model, v)
				} else if len(model) < DefaultCapacity {
					t.Fatalf("PushBottom failed below capacity")
				}
			case 1: // popBottom
				got := d.PopBottom()
				var want *int
				if len(model) > 0 {
					want = model[len(model)-1]
					model = model[:len(model)-1]
				}
				if got != want {
					t.Fatalf("trial %d op %d: PopBottom = %v, want %v", trial, op, got, want)
				}
			case 2: // popTop (no concurrency: must behave ideally)
				got := d.PopTop()
				var want *int
				if len(model) > 0 {
					want = model[0]
					model = model[1:]
				}
				if got != want {
					t.Fatalf("trial %d op %d: PopTop = %v, want %v", trial, op, got, want)
				}
			}
			if d.Len() != len(model) {
				t.Fatalf("trial %d op %d: Len = %d, want %d", trial, op, d.Len(), len(model))
			}
		}
	}
}

func TestABPSequentialSemantics(t *testing.T) {
	testSequentialSemantics(t, func() Dequer[int] { return New[int]() })
}

func TestMutexSequentialSemantics(t *testing.T) {
	testSequentialSemantics(t, func() Dequer[int] { return NewMutex[int]() })
}

func TestEmptyDeque(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    Dequer[int]
	}{{"abp", New[int]()}, {"mutex", NewMutex[int]()}} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.d.PopBottom(); got != nil {
				t.Errorf("PopBottom on empty = %v", got)
			}
			if got := tc.d.PopTop(); got != nil {
				t.Errorf("PopTop on empty = %v", got)
			}
			if tc.d.Len() != 0 {
				t.Errorf("Len on empty = %d", tc.d.Len())
			}
		})
	}
}

func TestCapacityBound(t *testing.T) {
	d := NewWithCapacity[int](4)
	if d.Cap() != 4 {
		t.Fatalf("Cap = %d", d.Cap())
	}
	for i := 0; i < 4; i++ {
		if !d.PushBottom(intp(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if d.PushBottom(intp(99)) {
		t.Fatalf("push beyond capacity succeeded")
	}
	// Draining from the top does NOT free slots in the ABP deque until the
	// owner's popBottom crosses empty and resets the indices.
	if got := d.PopTop(); got == nil || *got != 0 {
		t.Fatalf("PopTop = %v, want 0", got)
	}
	if d.PushBottom(intp(99)) {
		t.Fatalf("push should still fail: bot index unchanged by steals")
	}
	// Draining from the bottom resets the indices at empty.
	for i := 3; i >= 1; i-- {
		if got := d.PopBottom(); got == nil || *got != i {
			t.Fatalf("PopBottom = %v, want %d", got, i)
		}
	}
	if got := d.PopBottom(); got != nil {
		t.Fatalf("PopBottom on drained deque = %v", got)
	}
	for i := 0; i < 4; i++ {
		if !d.PushBottom(intp(i)) {
			t.Fatalf("push %d after reset failed", i)
		}
	}
}

func TestMutexCapacityBound(t *testing.T) {
	d := NewMutexWithCapacity[int](2)
	if d.Cap() != 2 {
		t.Fatalf("Cap = %d", d.Cap())
	}
	if !d.PushBottom(intp(1)) || !d.PushBottom(intp(2)) {
		t.Fatal("push failed")
	}
	if d.PushBottom(intp(3)) {
		t.Fatal("push beyond capacity succeeded")
	}
	if got := d.PopTop(); got == nil || *got != 1 {
		t.Fatalf("PopTop = %v", got)
	}
	if !d.PushBottom(intp(3)) {
		t.Fatal("push after popTop failed (mutex deque frees slots)")
	}
}

func TestNewPanics(t *testing.T) {
	for _, capacity := range []int{0, -1, 1 << 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithCapacity(%d) did not panic", capacity)
				}
			}()
			NewWithCapacity[int](capacity)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("NewMutexWithCapacity(0) did not panic")
			}
		}()
		NewMutexWithCapacity[int](0)
	}()
}

func TestReset(t *testing.T) {
	d := NewWithCapacity[int](8)
	for i := 0; i < 5; i++ {
		d.PushBottom(intp(i))
	}
	tagBefore, _ := unpackAge(d.age.Load())
	d.Reset()
	if d.Len() != 0 || !d.Empty() {
		t.Fatalf("Len after Reset = %d", d.Len())
	}
	tagAfter, top := unpackAge(d.age.Load())
	if tagAfter != tagBefore+1 || top != 0 {
		t.Fatalf("age after Reset = (%d,%d), want (%d,0)", tagAfter, top, tagBefore+1)
	}
	if got := d.PopBottom(); got != nil {
		t.Fatalf("PopBottom after Reset = %v", got)
	}
	if !d.PushBottom(intp(42)) {
		t.Fatal("push after Reset failed")
	}
	if got := d.PopTop(); got == nil || *got != 42 {
		t.Fatalf("PopTop after Reset = %v", got)
	}
}

// TestOwnerThiefRace exercises the popBottom/popTop race for the last item:
// every item must be taken exactly once, by exactly one process.
func testOwnerThiefRace(t *testing.T, mk func() Dequer[uint64], thieves int) {
	const items = 20000
	d := mk()
	taken := make([]atomic.Uint32, items)
	var stolen, popped atomic.Uint64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v := d.PopTop(); v != nil {
					if taken[*v].Add(1) != 1 {
						t.Errorf("item %d taken twice", *v)
						return
					}
					stolen.Add(1)
				}
				select {
				case <-stop:
					// Drain what's left so the count balances.
					for {
						v := d.PopTop()
						if v == nil {
							return
						}
						if taken[*v].Add(1) != 1 {
							t.Errorf("item %d taken twice", *v)
							return
						}
						stolen.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: pushes in bursts, pops some back, keeping the deque short so
	// the last-item race is hit constantly.
	next := uint64(0)
	vals := make([]uint64, items)
	for next < items {
		burst := 1 + int(next%3)
		for b := 0; b < burst && next < items; b++ {
			vals[next] = next
			for !d.PushBottom(&vals[next]) {
				runtime.Gosched()
			}
			next++
		}
		if v := d.PopBottom(); v != nil {
			if taken[*v].Add(1) != 1 {
				t.Fatalf("item %d taken twice (owner)", *v)
			}
			popped.Add(1)
		}
	}
	close(stop)
	wg.Wait()
	// Owner drains any remainder after thieves exited.
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		if taken[*v].Add(1) != 1 {
			t.Fatalf("item %d taken twice (final drain)", *v)
		}
		popped.Add(1)
	}
	if got := stolen.Load() + popped.Load(); got != items {
		t.Fatalf("items accounted = %d, want %d (stolen %d, popped %d)",
			got, items, stolen.Load(), popped.Load())
	}
	for i := range taken {
		if taken[i].Load() != 1 {
			t.Fatalf("item %d taken %d times", i, taken[i].Load())
		}
	}
}

func TestABPOwnerThiefRace(t *testing.T) {
	for _, thieves := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("thieves=%d", thieves), func(t *testing.T) {
			testOwnerThiefRace(t, func() Dequer[uint64] { return New[uint64]() }, thieves)
		})
	}
}

func TestMutexOwnerThiefRace(t *testing.T) {
	testOwnerThiefRace(t, func() Dequer[uint64] { return NewMutex[uint64]() }, 4)
}

// TestStructuralOrderUnderSteals checks the FIFO property of steals: thieves
// observe items in push order (top-to-bottom order is oldest-first), a
// consequence of linearizability of non-NIL popTop invocations when the
// owner only pushes.
func TestStructuralOrderUnderSteals(t *testing.T) {
	d := NewWithCapacity[uint64](1 << 12)
	const items = 1 << 12
	vals := make([]uint64, items)
	for i := range vals {
		vals[i] = uint64(i)
		if !d.PushBottom(&vals[i]) {
			t.Fatal("push failed")
		}
	}
	const thieves = 4
	var wg sync.WaitGroup
	results := make([][]uint64, thieves)
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				v := d.PopTop()
				if v == nil {
					if d.Len() == 0 {
						return
					}
					continue
				}
				results[i] = append(results[i], *v)
			}
		}(i)
	}
	wg.Wait()
	seen := make([]bool, items)
	total := 0
	for i := 0; i < thieves; i++ {
		// Each thief individually observes strictly increasing values.
		for j := 1; j < len(results[i]); j++ {
			if results[i][j] <= results[i][j-1] {
				t.Fatalf("thief %d saw out-of-order steals: %d then %d", i, results[i][j-1], results[i][j])
			}
		}
		for _, v := range results[i] {
			if seen[v] {
				t.Fatalf("item %d stolen twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != items {
		t.Fatalf("stole %d items, want %d", total, items)
	}
}

// Property test: any random interleaving of owner ops against a model, with
// occasional full drains, matches the ideal semantics (owner-only usage is
// strictly sequential, so the ideal semantics must hold exactly).
func TestQuickOwnerOnlyMatchesModel(t *testing.T) {
	prop := func(ops []byte) bool {
		d := NewWithCapacity[int](64)
		var model []*int
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				v := intp(next)
				next++
				if d.PushBottom(v) {
					model = append(model, v)
				} else if len(model) < 64 {
					return false
				}
			case 2:
				got := d.PopBottom()
				var want *int
				if len(model) > 0 {
					want = model[len(model)-1]
					model = model[:len(model)-1]
				}
				if got != want {
					return false
				}
			case 3:
				got := d.PopTop()
				var want *int
				if len(model) > 0 {
					want = model[0]
					model = model[1:]
				}
				if got != want {
					return false
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The tag must change whenever the owner resets top, so that stale thief
// CASes fail (the mechanism behind the paper's tag field).
func TestTagBumpsOnReset(t *testing.T) {
	d := NewWithCapacity[int](8)
	tag0, _ := unpackAge(d.age.Load())
	d.PushBottom(intp(1))
	d.PopBottom() // crosses empty: must bump tag
	tag1, top1 := unpackAge(d.age.Load())
	if tag1 == tag0 {
		t.Fatalf("tag not bumped on empty reset: %d -> %d", tag0, tag1)
	}
	if top1 != 0 {
		t.Fatalf("top not reset: %d", top1)
	}
	// popTop path does not bump the tag.
	d.PushBottom(intp(2))
	d.PushBottom(intp(3))
	d.PopTop()
	tag2, top2 := unpackAge(d.age.Load())
	if tag2 != tag1 || top2 != 1 {
		t.Fatalf("after popTop age = (%d,%d), want (%d,1)", tag2, top2, tag1)
	}
}
