// Package abpwait exercises the liveness analyzer's four finding classes,
// each with flagged, accepted, and (where it matters) suppressed cases.
// Channel element types are deliberately varied so the local-alias
// type-fallback never cross-talks between scenarios.
package abpwait

import (
	"sync"
	"sync/atomic"
	"time"
)

// --- Class 1: naked-wait ---

// quiet's channels have no send or close anywhere in the package: both
// are struct fields, so the type fallback does not excuse them.
type quiet struct {
	a chan int8
	b chan int8
}

func (q *quiet) recvNaked() {
	<-q.a // want `naked wait`
}

func (q *quiet) selectNaked() {
	select { // want `naked wait` `unbounded block`
	case <-q.a:
	case <-q.b:
	}
}

func (q *quiet) recvWaived() {
	//abp:wait-ignore the test harness injects tokens through unsafe plumbing the analyzer cannot see
	<-q.a
}

func StartQuiet(q *quiet) {
	go q.recvNaked()
	go q.selectNaked()
	go q.recvWaived()
}

// feed's source channel is likewise never signalled: the blocked range
// loop can never advance and never terminate.
type feed struct{ src chan int64 }

func (f *feed) drain() {
	for v := range f.src { // want `naked wait`
		_ = v
	}
}

func StartFeed(f *feed) { go f.drain() }

// registry documents the accepted local-alias shape: the receive resolves
// to a local copy of the channel, which has no identity-matched signal,
// so the analyzer falls back to type matching and finds finish's close.
type registry struct{ done chan uint8 }

func (r *registry) snapshotWait() {
	ch := r.done
	<-ch
}

func (r *registry) finish() { close(r.done) }

func StartRegistry(r *registry) {
	go r.snapshotWait()
	go r.finish()
}

// cbHolder documents the unknown-context rule: the signalling literal
// only escapes as a value, so its eventual caller is unknown and the
// signal conservatively counts as deliverable.
type cbHolder struct {
	ev         chan uint16
	unsignaled chan uint32
	cb         func()
}

func (h *cbHolder) waitEv() { <-h.ev }

func Register(h *cbHolder) {
	h.cb = func() { h.ev <- 1 }
	go h.waitEv()
}

// MakeWaiter's literal escapes as a value: its wait has no goroutine
// context, and the analyzer deliberately stays silent about it even
// though unsignaled has no signal anywhere.
func MakeWaiter(h *cbHolder) func() {
	return func() { <-h.unsignaled }
}

// --- Class 2: missed-signal ---

type poller struct {
	ready atomic.Bool
	stop  atomic.Bool
}

// pollLoop is the PR-6 bug shape: a bare sleep in a polling loop on a
// goroutine root — a wake arriving mid-nap waits out the remaining sleep.
func (p *poller) pollLoop() {
	for {
		if p.ready.Load() {
			return
		}
		time.Sleep(time.Millisecond) // want `missed signal`
	}
}

// napHelper is the interprocedural variant: the sleep sits in a helper
// whose call site is on the caller's loop.
func (p *poller) napHelper() {
	time.Sleep(time.Microsecond) // want `missed signal`
}

func (p *poller) pollLoop2() {
	for !p.ready.Load() {
		p.napHelper()
	}
}

func (p *poller) jitterLoop() {
	for !p.stop.Load() {
		//abp:wait-ignore deliberate fixed-cadence sampling loop; wake latency is not a concern here
		time.Sleep(time.Millisecond)
	}
}

// warmSleep is a one-shot delay, not a polling loop: accepted.
func (p *poller) warmSleep() {
	time.Sleep(time.Millisecond)
	for !p.ready.Load() {
		_ = p.stop.Load()
	}
}

func StartPollers(p *poller) {
	go p.pollLoop()
	go p.pollLoop2()
	go p.jitterLoop()
	go p.warmSleep()
}

// RetryExternal naps in a loop but only ever on the external root: the
// caller chose to poll, and its latency is its own.
func RetryExternal(f func() bool) {
	for !f() {
		time.Sleep(time.Millisecond)
	}
}

// --- Class 3: wait-cycle ---

// pipeline deadlocks: the producer waits for an ack the consumer only
// sends after receiving data, which the producer only sends after the ack.
type pipeline struct {
	data chan int32
	ack  chan int32
}

func (p *pipeline) producer() {
	<-p.ack // want `wait cycle`
	p.data <- 1
}

func (p *pipeline) consumer() {
	<-p.data
	p.ack <- 1
}

func StartPipeline(p *pipeline) {
	go p.producer()
	go p.consumer()
}

// okPipeline breaks the cycle: the consumer acks before waiting, so the
// producer's wakeup is never sequenced behind the consumer's wait.
type okPipeline struct {
	data chan int32
	ack  chan int32
}

func (p *okPipeline) producer() {
	<-p.ack
	p.data <- 1
}

func (p *okPipeline) consumer() {
	p.ack <- 1
	<-p.data
}

func StartOKPipeline(p *okPipeline) {
	go p.producer()
	go p.consumer()
}

// WGDeadlock is the Wait-then-close ordering bug: the waited goroutine's
// deferred Done is stuck behind a gate only closed after Wait returns.
func WGDeadlock() {
	var wg sync.WaitGroup
	wg.Add(1)
	gate := make(chan int64)
	go func() {
		defer wg.Done()
		<-gate // want `wait cycle`
	}()
	wg.Wait()
	close(gate)
}

// WGOk is the idiomatic close-then-Wait: the gate close fires unimpeded,
// so no release edge forms.
func WGOk() {
	var wg sync.WaitGroup
	wg.Add(1)
	gate := make(chan int64)
	go func() {
		defer wg.Done()
		<-gate
	}()
	close(gate)
	wg.Wait()
}

// --- Class 4: unbounded-block ---

type looper struct {
	jobs   chan int16
	other  chan int16
	quitCh chan struct{}
}

// run blocks a worker root with no way out: no quit case, no timer, no
// default — a stopped pool strands it forever.
func (l *looper) run() {
	for {
		select { // want `unbounded block`
		case j := <-l.jobs:
			_ = j
		case <-l.other:
		}
	}
}

// runOK escapes through the session quit channel, the park shape.
func (l *looper) runOK() {
	for {
		select {
		case j := <-l.jobs:
			_ = j
		case <-l.quitCh:
			return
		}
	}
}

// runTimer escapes through a runtime-signalled timer case.
func (l *looper) runTimer() {
	for {
		select {
		case <-l.jobs:
		case <-time.After(time.Millisecond):
			return
		}
	}
}

func (l *looper) runWaived() {
	for {
		//abp:wait-ignore demo looper torn down with the process; no shutdown path by design
		select {
		case <-l.jobs:
		case <-l.other:
		}
	}
}

func StartLoopers(l *looper) {
	go l.run()
	go l.runOK()
	go l.runTimer()
	go l.runWaived()
	go l.feedLoop()
}

// feedLoop signals every looper channel, keeping the selects above out of
// naked-wait's reach; its sends block but sends are not modelled as waits.
func (l *looper) feedLoop() {
	l.jobs <- 1
	l.other <- 1
	close(l.quitCh)
}

// BlockUntilEither blocks with no escape, but only on the external root:
// the blocking discipline of an exported entry point is the caller's
// choice, exactly as Handle.Wait's contract says.
func BlockUntilEither(l *looper) {
	select {
	case <-l.jobs:
	case <-l.other:
	}
}
