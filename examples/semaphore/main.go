// Semaphore: the paper's Figure 1 computation written as a real program
// against the Hood-style threads layer (internal/hood): two user-level
// threads, a spawn, a semaphore (x6 signals, x4 waits) and a join (x9
// enables x10). Every transition of Section 3.1 — Spawn, Block, Enable,
// Die — happens live on the work-stealing pool.
//
// Run with:
//
//	go run ./examples/semaphore -workers 3
package main

import (
	"flag"
	"fmt"
	"sync"

	"worksteal/internal/hood"
	"worksteal/internal/sched"
)

func main() {
	workers := flag.Int("workers", 3, "worker count")
	flag.Parse()

	var mu sync.Mutex
	var order []string
	log := func(node, what string) {
		mu.Lock()
		order = append(order, node)
		fmt.Printf("  %-4s %s\n", node, what)
		mu.Unlock()
	}

	sem := hood.NewSemaphore(0) // x6 -> x4
	join := hood.NewJoin(1)     // x9 -> x10

	child := func(w *sched.Worker) hood.Action { // x5
		log("x5", "child thread starts")
		return hood.Continue(func(w *sched.Worker) hood.Action { // x6
			log("x6", "V: signal the semaphore (Enable)")
			sem.Signal(w)
			return hood.Continue(func(w *sched.Worker) hood.Action { // x7
				log("x7", "child works")
				return hood.Continue(func(w *sched.Worker) hood.Action { // x8
					log("x8", "child works")
					return hood.Continue(func(w *sched.Worker) hood.Action { // x9
						log("x9", "child joins the root and dies (Enable + Die)")
						join.Done(w)
						return hood.Die()
					})
				})
			})
		})
	}

	root := func(w *sched.Worker) hood.Action { // x1
		log("x1", "root thread starts")
		return hood.Continue(func(w *sched.Worker) hood.Action { // x2
			log("x2", "spawn the child thread (Spawn)")
			return hood.Spawn(child, func(w *sched.Worker) hood.Action { // x3
				log("x3", "root works")
				return hood.Wait(sem, func(w *sched.Worker) hood.Action { // x4
					log("x4", "P: past the semaphore (was Blocked if x6 had not run)")
					return join.Wait(func(w *sched.Worker) hood.Action { // x10
						log("x10", "past the join")
						return hood.Continue(func(w *sched.Worker) hood.Action { // x11
							log("x11", "root finishes")
							return hood.Die()
						})
					})
				})
			})
		})
	}

	fmt.Printf("running Figure 1 on %d workers:\n", *workers)
	hood.Run(sched.New(sched.Config{Workers: *workers}), root)

	fmt.Printf("\nexecution order: %v\n", order)
	if len(order) != 11 {
		panic(fmt.Sprintf("expected 11 node executions, saw %d", len(order)))
	}
	fmt.Println("all 11 nodes executed; dependencies were respected by construction.")
}
