// Package seededorder seeds the over-synchronization blind spot abporder
// exists to close and abprace, by construction, cannot see: a limit that
// a single coordinator goroutine stores once BEFORE forking the workers
// that read it. Every conflicting pair is ordered by the fork edge, so
// the seq-cst atomic on the hot worker path buys nothing — but to abprace
// both sides are atomic accesses, which its pair rules skip as safe by
// definition. abporder proves the fork/join ordering adversarially and
// flags the declaration; abprace stays silent (asserted by
// TestSeededOrder, which runs both analyzers over this package).
package seededorder

import "sync/atomic"

// A server runs a fixed fleet of workers against a request budget.
type server struct {
	limit atomic.Int64 // want `plain access suffices`
	hits  atomic.Int64
}

// Start forks the coordinator, which configures the server and launches
// the worker fleet.
func Start() *server {
	s := &server{}
	go s.coordinator()
	return s
}

// coordinator stores the budget once, then forks the workers: the store
// is ordered before every worker's loads by the go-statement edge.
func (s *server) coordinator() {
	s.limit.Store(8)
	for i := 0; i < 4; i++ {
		go s.work()
	}
}

// work burns budget on the hot path, reloading limit through a seq-cst
// atomic although the fork edge already ordered the only store. hits, by
// contrast, is a genuinely concurrent arbitration (the Add result is
// consumed), so it earns no finding.
func (s *server) work() {
	for s.hits.Add(1) <= s.limit.Load() {
	}
}
