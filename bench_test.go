// Package worksteal's root benchmark harness: one benchmark per experiment
// row in DESIGN.md's per-experiment index (E1-E14 regenerate the paper's
// figure/table analogues; D1 are the Figure 5 deque microbenchmarks; N1 are
// the native Hood-style application benchmarks; Ablation* are the design
// choices DESIGN.md section 5 calls out).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package worksteal

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"worksteal/internal/analysis"
	"worksteal/internal/apps"
	"worksteal/internal/dag"
	"worksteal/internal/deque"
	"worksteal/internal/experiments"
	"worksteal/internal/sched"
	"worksteal/internal/sim"
	"worksteal/internal/workload"
)

// --- E1-E14: the paper's figures, theorems and claims -----------------------

func BenchmarkE1_Figure1Dag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1Figure1(io.Discard)
	}
}

func BenchmarkE2_GreedySchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2Greedy(io.Discard)
	}
}

func BenchmarkE3_LowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3LowerBound(io.Discard)
	}
}

func BenchmarkE4_GreedyBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E4GreedyBound(io.Discard)
	}
}

func BenchmarkE5_Dedicated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5Dedicated(io.Discard)
	}
}

func BenchmarkE6_Adversaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6Adversaries(io.Discard)
	}
}

func BenchmarkE7_ConstantFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.E5Dedicated(io.Discard)
		pts = append(pts, experiments.E6Adversaries(io.Discard)...)
		experiments.E7Fit(io.Discard, pts)
		if i == 0 {
			if fit, err := analysis.FitBound(pts); err == nil {
				b.ReportMetric(fit.C1, "C1")
				b.ReportMetric(fit.Cinf, "Cinf")
			}
		}
	}
}

func BenchmarkE8_Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8Ablations(io.Discard)
	}
}

func BenchmarkE9_Potential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E9Potential(io.Discard)
	}
}

func BenchmarkE10_StructuralLemma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E10Structural(io.Discard)
	}
}

// --- D1: Figure 5 deque microbenchmarks -------------------------------------

func BenchmarkDequePushPopBottom(b *testing.B) {
	for _, impl := range []string{"abp", "mutex"} {
		b.Run(impl, func(b *testing.B) {
			var d deque.Dequer[int]
			if impl == "abp" {
				d = deque.NewWithCapacity[int](1 << 10)
			} else {
				d = deque.NewMutexWithCapacity[int](1 << 10)
			}
			v := 7
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PushBottom(&v)
				if d.PopBottom() == nil {
					b.Fatal("lost item")
				}
			}
		})
	}
}

func BenchmarkDequeOwnerVsThieves(b *testing.B) {
	for _, impl := range []string{"abp", "mutex"} {
		b.Run(impl, func(b *testing.B) {
			var d deque.Dequer[int]
			if impl == "abp" {
				d = deque.New[int]()
			} else {
				d = deque.NewMutex[int]()
			}
			stop := make(chan struct{})
			var stolen atomic.Int64
			for t := 0; t < 2; t++ {
				go func() {
					for {
						select {
						case <-stop:
							return
						default:
							if d.PopTop() != nil {
								stolen.Add(1)
							}
						}
					}
				}()
			}
			v := 3
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PushBottom(&v)
				d.PopBottom()
			}
			b.StopTimer()
			close(stop)
			b.ReportMetric(float64(stolen.Load())/float64(b.N), "stolen/op")
		})
	}
}

func BenchmarkDequeStealThroughput(b *testing.B) {
	d := deque.NewWithCapacity[int](1 << 16)
	vals := make([]int, 1<<16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if d.PopTop() == nil {
				// Refill opportunistically; only one goroutine's pushes
				// matter for throughput measurement purposes.
				for j := 0; j < 64 && d.PushBottom(&vals[j]); j++ {
				}
			}
			i++
		}
	})
}

// --- N1: native Hood-style application benchmarks ---------------------------

func fibSerialBench(n int) int {
	if n < 2 {
		return n
	}
	return fibSerialBench(n-1) + fibSerialBench(n-2)
}

func fibParBench(w *sched.Worker, n, cutoff int) int {
	if n < cutoff {
		return fibSerialBench(n)
	}
	a, c := sched.Join2(w,
		func(w2 *sched.Worker) int { return fibParBench(w2, n-1, cutoff) },
		func(w2 *sched.Worker) int { return fibParBench(w2, n-2, cutoff) })
	return a + c
}

func BenchmarkNativeFib(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := sched.New(sched.Config{Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var got int
				p.Run(func(w *sched.Worker) { got = fibParBench(w, 22, 10) })
				if got != 17711 {
					b.Fatalf("fib(22) = %d", got)
				}
			}
		})
	}
}

func BenchmarkNativeParallelFor(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := sched.New(sched.Config{Workers: workers})
			data := make([]float64, 1<<16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Run(func(w *sched.Worker) {
					sched.ParallelFor(w, 0, len(data), 1<<10, func(j int) {
						data[j] = float64(j) * 1.0001
					})
				})
			}
		})
	}
}

func BenchmarkNativeGraphRun(b *testing.B) {
	graphs := map[string]*dag.Graph{
		"fib16": workload.FibDag(16),
		"grid":  workload.Grid(32, 64),
	}
	for name, g := range graphs {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := sched.RunGraph(sched.GraphConfig{Graph: g, Workers: workers,
						NodeWork: 50, Seed: int64(i + 1)})
					if res.NodesExecuted != int64(g.NumNodes()) {
						b.Fatal("incomplete")
					}
				}
			})
		}
	}
}

// BenchmarkNativeMultiprogrammed emulates multiprogramming: P workers on a
// single shared processor slot (the Go scheduler as kernel). The paper's
// bound predicts the cost of extra workers is only the Tinf*P/P_A term.
func BenchmarkNativeMultiprogrammed(b *testing.B) {
	g := workload.FibDag(14)
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := sched.RunGraph(sched.GraphConfig{Graph: g, Workers: workers,
					NodeWork: 100, Seed: int64(i + 1)})
				if res.NodesExecuted != int64(g.NumNodes()) {
					b.Fatal("incomplete")
				}
			}
		})
	}
}

// --- Ablation benchmarks for the design choices in DESIGN.md §5 -------------

// BenchmarkAblationDeque compares ABP and mutex deques inside the native
// graph runner (design choice 1).
func BenchmarkAblationDeque(b *testing.B) {
	g := workload.FibDag(15)
	for _, kind := range []sched.DequeKind{sched.DequeABP, sched.DequeMutex} {
		name := "abp"
		if kind == sched.DequeMutex {
			name = "mutex"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched.RunGraph(sched.GraphConfig{Graph: g, Workers: 4, Deque: kind,
					NodeWork: 20, Seed: int64(i + 1)})
			}
		})
	}
}

// BenchmarkAblationYield compares yield vs no-yield in the native runner
// (design choice 2). The dramatic version of this ablation — unbounded
// starvation — lives in the simulator (E8), since Go's preemptive runtime
// bounds the damage here.
func BenchmarkAblationYield(b *testing.B) {
	g := workload.FibDag(15)
	for _, disable := range []bool{false, true} {
		name := "yield"
		if disable {
			name = "noyield"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched.RunGraph(sched.GraphConfig{Graph: g, Workers: 8, DisableYield: disable,
					NodeWork: 20, Seed: int64(i + 1)})
			}
		})
	}
}

// BenchmarkAblationSpawnOrder compares run-child against run-parent in the
// simulator (design choice 3; the paper proves the bounds for both).
func BenchmarkAblationSpawnOrder(b *testing.B) {
	g := workload.FibDag(14)
	for _, pol := range []sim.SpawnPolicy{sim.RunChild, sim.RunParent} {
		b.Run(pol.String(), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				res := sim.NewEngine(sim.Config{Graph: g, P: 4,
					Kernel: sim.DedicatedKernel{NumProcs: 4}, Policy: pol, Seed: int64(i + 1)}).Run()
				if !res.Completed {
					b.Fatal("incomplete")
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "simsteps/op")
		})
	}
}

// BenchmarkAblationRoundLength sweeps the round instruction budget (design
// choice 4: the paper's 2C..3C window).
func BenchmarkAblationRoundLength(b *testing.B) {
	g := workload.FibDag(14)
	for _, c := range []int{4, 14, 56} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				res := sim.NewEngine(sim.Config{Graph: g, P: 4,
					Kernel: sim.DedicatedKernel{NumProcs: 4}, Seed: int64(i + 1),
					InstrLo: 2 * c, InstrHi: 3 * c}).Run()
				if !res.Completed {
					b.Fatal("incomplete")
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "simsteps/op")
		})
	}
}

// --- sanity: the E-suite completes under `go test` too ----------------------

func TestExperimentSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	experiments.All(io.Discard)
}

func BenchmarkE11_RelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E11RelatedWork(io.Discard)
	}
}

// BenchmarkAblationVictim compares random victims (the paper's policy,
// required by the balls-and-bins analysis) against deterministic
// round-robin rotation (design choice 5).
func BenchmarkAblationVictim(b *testing.B) {
	g := workload.FibDag(14)
	for _, pol := range []sim.VictimPolicy{sim.VictimRandom, sim.VictimRoundRobin} {
		b.Run(pol.String(), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				res := sim.NewEngine(sim.Config{Graph: g, P: 8,
					Kernel: sim.ConstBenign(8, 4), Victim: pol, Seed: int64(i + 1)}).Run()
				if !res.Completed {
					b.Fatal("incomplete")
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "simsteps/op")
		})
	}
}

// BenchmarkIdleOverhead measures what the pool's idle workers cost while a
// single long serial task holds the run: with the parking lifecycle (the
// default) steal attempts per op stay near the park threshold, while the
// spinning ablation (DisableParking, the paper's literal Figure 3 loop)
// accumulates millions — one full core per idle worker. The wall-clock
// column should be ~identical (both wait out the same sleep); the
// stealattempts/op and yields/op metrics are the CPU-burn proxies.
func BenchmarkIdleOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"parking", false},
		{"spinning", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p := sched.New(sched.Config{Workers: 8, DisableParking: mode.disable})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Run(func(w *sched.Worker) { time.Sleep(5 * time.Millisecond) })
			}
			b.StopTimer()
			s := p.Stats()
			b.ReportMetric(float64(s.StealAttempts)/float64(b.N), "stealattempts/op")
			b.ReportMetric(float64(s.Yields)/float64(b.N), "yields/op")
			b.ReportMetric(float64(s.Parks)/float64(b.N), "parks/op")
		})
	}
}

// BenchmarkNativeQuicksort exercises the apps kernels end to end.
func BenchmarkNativeQuicksort(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := make([]int, 1<<17)
	for i := range src {
		src[i] = rng.Int()
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := sched.New(sched.Config{Workers: workers})
			data := make([]int, len(src))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(data, src)
				p.Run(func(w *sched.Worker) { apps.Quicksort(w, data, 1024) })
			}
		})
	}
}

func BenchmarkNativeIntegrate(b *testing.B) {
	p := sched.New(sched.Config{})
	for i := 0; i < b.N; i++ {
		p.Run(func(w *sched.Worker) {
			apps.Integrate(w, math.Sin, 0, 3, 1e-9)
		})
	}
}

func BenchmarkE12_SpeedupVsPA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E12SpeedupVsPA(io.Discard)
	}
}

func BenchmarkE13_Schedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E13Schedulers(io.Discard)
	}
}

func BenchmarkE14_Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E14Space(io.Discard)
	}
}
