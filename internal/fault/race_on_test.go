//go:build race

package fault

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
