// Adversary: runs one computation through the instruction-level simulator
// under all four kernel adversary classes of the paper (dedicated, benign,
// oblivious, adaptive), each with the yield discipline its theorem
// requires, and shows the measured time landing within the
// O(T1/P_A + Tinf*P/P_A) bound every time — plus what happens to the
// ablated schedulers (no yields, locked deques) under the same adversaries.
//
// Run with:
//
//	go run ./examples/adversary -n 14 -p 8
package main

import (
	"flag"
	"fmt"
	"os"

	"worksteal/internal/sim"
	"worksteal/internal/table"
	"worksteal/internal/workload"
)

func main() {
	n := flag.Int("n", 14, "fib workload size")
	p := flag.Int("p", 8, "number of processes")
	flag.Parse()

	g := workload.FibDag(*n)
	fmt.Printf("workload %s: T1=%d, Tinf=%d, parallelism %.1f, P=%d\n\n",
		g.Label(), g.Work(), g.CriticalPath(), g.Parallelism(), *p)

	tb := table.New("the work stealer vs the four adversaries (Theorems 9-12)",
		"adversary", "yield", "completed", "steps", "P_A", "steps/((T1+Tinf*P)/P_A)")
	cases := []struct {
		name string
		k    sim.Kernel
		y    sim.YieldKind
	}{
		{"dedicated (Thm 9)", sim.DedicatedKernel{NumProcs: *p}, sim.YieldNone},
		{"benign (Thm 10)", sim.ConstBenign(*p, 2), sim.YieldNone},
		{"oblivious (Thm 11)", sim.NewSeededOblivious(*p, 2, 9), sim.YieldToRandom},
		{"adaptive (Thm 12)", sim.StarveWorkersKernel{NumProcs: *p}, sim.YieldToAll},
	}
	for _, c := range cases {
		res := sim.NewEngine(sim.Config{Graph: g, P: *p, Kernel: c.k, Yield: c.y, Seed: 3}).Run()
		norm := 0.0
		if res.PA > 0 {
			bound := (float64(g.Work()) + float64(g.CriticalPath()**p)) / res.PA
			norm = float64(res.Steps) / bound
		}
		tb.Row(c.name, c.y.String(), res.Completed, res.Steps, res.PA, norm)
	}
	tb.Render(os.Stdout)

	tb2 := table.New("the same adversaries against ablated schedulers",
		"config", "adversary", "completed", "rounds")
	const cap = 20000
	abl := []struct {
		label string
		cfg   sim.Config
	}{
		{"no yield vs adaptive", sim.Config{Kernel: sim.StarveWorkersKernel{NumProcs: *p},
			Yield: sim.YieldNone, Graph: workload.Chain(200)}},
		{"locked deque vs lock-preemptor", sim.Config{Kernel: sim.PreemptLockHolderKernel{NumProcs: *p},
			Deque: sim.DequeLocked, Graph: g}},
	}
	for _, a := range abl {
		a.cfg.P = *p
		a.cfg.Seed = 3
		a.cfg.MaxRounds = cap
		res := sim.NewEngine(a.cfg).Run()
		status := fmt.Sprintf("%d", res.Rounds)
		if !res.Completed {
			status += " (gave up: livelocked)"
		}
		tb2.Row(a.label, fmt.Sprintf("%T", a.cfg.Kernel), res.Completed, status)
	}
	tb2.Render(os.Stdout)
}
