// Package atomicx provides ordering-annotated atomic wrappers: every type
// names the weakest memory-ordering discipline its clients may rely on,
// so a shared field's declaration states the synchronization role it plays
// and the abporder analyzer (internal/lint) can cross-check that role
// against the happens-before edges the code actually needs.
//
// The three disciplines mirror the needs of the paper's deque (Arora,
// Blumofe, Plaxton, "Thread Scheduling for Multiprogrammed
// Multiprocessors", Section 3.2):
//
//   - SC (sequentially consistent): the operation arbitrates between
//     processes — a CAS like the age word's tag/top update, or one side of
//     a Dekker store→load handshake (store own flag, load the other's)
//     where neither store may pass the opposing load. Nothing weaker is
//     sound.
//   - Publish (release/acquire): a single logical event made visible to
//     readers — a flag flip, a counter a monitor samples, a pointer to an
//     initialized structure. The write releases what preceded it, the read
//     acquires it; no cross-variable store/load ordering is promised.
//   - Plain: no concurrent access at all — every conflicting pair is
//     ordered by fork/join or other real happens-before edges. The type
//     exists so the discipline is declared and auditable, not implied.
//
// Go's sync/atomic exposes only sequentially consistent operations, so SC
// and Publish compile to identical instructions today: the distinction is
// declarative, kept honest by abporder, and ready for a future runtime
// with weaker orderings. The relaxations that are real at runtime are the
// *Owner methods (LoadOwner, AddOwner): on their relaxed path they replace
// an atomic read with a plain one, which is sound only under the paper's
// owner contract — the calling goroutine is the sole writer of the word,
// so it reads back its own last store. The race detector agrees: a plain
// read may race an atomic write, but the sole writer's own reads cannot,
// and concurrent atomic readers of the same word are unaffected. abporder
// rejects any *Owner call site it cannot prove is receiver-direct inside
// an audited //abp:owner context with all writers owned.
//
// Every method is small enough for the inliner (verified by the package
// test), so declaring a discipline costs nothing over raw sync/atomic.
// Like sync/atomic's own types, the word-sized wrappers must be 64-bit
// aligned on 32-bit platforms; embedding them first in a struct or in a
// slice of wrappers (as the deques do) satisfies this everywhere the
// repository targets.
package atomicx

import (
	"sync/atomic"
	"unsafe"
)

// CacheLineSize is the coherence granule the layout discipline assumes:
// 64 bytes on every architecture this repository targets (x86-64, and
// arm64 server cores; Apple M-series L2 lines are 128B, for which one
// line of slack is an accepted approximation). The abplayout analyzer
// and the layout pin tests both derive from this one constant.
const CacheLineSize = 64

// CacheLinePad is a full cache line of padding. Declared between two
// struct fields it guarantees they can never share a line — the two
// fields end up at least CacheLineSize bytes apart regardless of their
// own sizes or alignment — which is a stronger and simpler invariant
// than a hand-counted `_ [56]byte` complement that silently stops
// isolating when a neighbor changes size. abplayout treats a blank
// CacheLinePad (or any blank pad of at least CacheLineSize bytes) as an
// always-valid separator and flags smaller hand-counted pads whose
// arithmetic has gone stale.
type CacheLinePad struct{ _ [CacheLineSize]byte }

// SCUint32 is a sequentially consistent uint32 (e.g. the ABP deque's bot
// index: its store→load ordering against the age word is load-bearing).
type SCUint32 struct{ v uint32 }

// Load atomically loads the value.
func (x *SCUint32) Load() uint32 { return atomic.LoadUint32(&x.v) }

// Store atomically stores v.
func (x *SCUint32) Store(v uint32) { atomic.StoreUint32(&x.v, v) }

// Add atomically adds delta and returns the new value.
func (x *SCUint32) Add(delta uint32) uint32 { return atomic.AddUint32(&x.v, delta) }

// CompareAndSwap executes the compare-and-swap operation.
func (x *SCUint32) CompareAndSwap(old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&x.v, old, new)
}

// LoadOwner is the owner's read: with relaxed set it is a plain load,
// sound only when the caller is the word's sole writer (it reads back its
// own last store); otherwise it is the full atomic load.
func (x *SCUint32) LoadOwner(relaxed bool) uint32 {
	if relaxed {
		return x.v
	}
	return atomic.LoadUint32(&x.v)
}

// SCUint64 is a sequentially consistent uint64 (e.g. the ABP age word and
// the injector's CAS-arbitrated positions).
type SCUint64 struct{ v uint64 }

// Load atomically loads the value.
func (x *SCUint64) Load() uint64 { return atomic.LoadUint64(&x.v) }

// Store atomically stores v.
func (x *SCUint64) Store(v uint64) { atomic.StoreUint64(&x.v, v) }

// Add atomically adds delta and returns the new value.
func (x *SCUint64) Add(delta uint64) uint64 { return atomic.AddUint64(&x.v, delta) }

// CompareAndSwap executes the compare-and-swap operation.
func (x *SCUint64) CompareAndSwap(old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&x.v, old, new)
}

// LoadOwner is the owner's read (see SCUint32.LoadOwner).
func (x *SCUint64) LoadOwner(relaxed bool) uint64 {
	if relaxed {
		return x.v
	}
	return atomic.LoadUint64(&x.v)
}

// SCInt32 is a sequentially consistent int32 (e.g. the pool's idle count,
// whose publication the park/signal Dekker argument reads).
type SCInt32 struct{ v int32 }

// Load atomically loads the value.
func (x *SCInt32) Load() int32 { return atomic.LoadInt32(&x.v) }

// Store atomically stores v.
func (x *SCInt32) Store(v int32) { atomic.StoreInt32(&x.v, v) }

// Add atomically adds delta and returns the new value.
func (x *SCInt32) Add(delta int32) int32 { return atomic.AddInt32(&x.v, delta) }

// CompareAndSwap executes the compare-and-swap operation.
func (x *SCInt32) CompareAndSwap(old, new int32) bool {
	return atomic.CompareAndSwapInt32(&x.v, old, new)
}

// SCInt64 is a sequentially consistent int64 (e.g. RMW join counters that
// arbitrate "last decrementer acts").
type SCInt64 struct{ v int64 }

// Load atomically loads the value.
func (x *SCInt64) Load() int64 { return atomic.LoadInt64(&x.v) }

// Store atomically stores v.
func (x *SCInt64) Store(v int64) { atomic.StoreInt64(&x.v, v) }

// Add atomically adds delta and returns the new value.
func (x *SCInt64) Add(delta int64) int64 { return atomic.AddInt64(&x.v, delta) }

// CompareAndSwap executes the compare-and-swap operation.
func (x *SCInt64) CompareAndSwap(old, new int64) bool {
	return atomic.CompareAndSwapInt64(&x.v, old, new)
}

// LoadOwner is the owner's read (see SCUint32.LoadOwner).
func (x *SCInt64) LoadOwner(relaxed bool) int64 {
	if relaxed {
		return x.v
	}
	return atomic.LoadInt64(&x.v)
}

// SCBool is a sequentially consistent bool (e.g. the parked flag: its
// store must not pass the work re-scan that follows it).
type SCBool struct{ v uint32 }

// Load atomically loads the value.
func (x *SCBool) Load() bool { return atomic.LoadUint32(&x.v) != 0 }

// Store atomically stores v.
func (x *SCBool) Store(v bool) { atomic.StoreUint32(&x.v, b32(v)) }

// CompareAndSwap executes the compare-and-swap operation.
func (x *SCBool) CompareAndSwap(old, new bool) bool {
	return atomic.CompareAndSwapUint32(&x.v, b32(old), b32(new))
}

func b32(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

// SCPointer is a sequentially consistent typed pointer (e.g. deque cells,
// whose steal-side read is ordered inside the age-CAS arbitration window).
type SCPointer[T any] struct{ p ptr[T] }

// Load atomically loads the pointer.
func (x *SCPointer[T]) Load() *T { return x.p.load() }

// Store atomically stores v.
func (x *SCPointer[T]) Store(v *T) { x.p.store(v) }

// Swap atomically stores v and returns the previous value.
func (x *SCPointer[T]) Swap(v *T) *T { return x.p.swap(v) }

// CompareAndSwap executes the compare-and-swap operation.
func (x *SCPointer[T]) CompareAndSwap(old, new *T) bool { return x.p.cas(old, new) }

// LoadOwner is the owner's read (see SCUint32.LoadOwner).
func (x *SCPointer[T]) LoadOwner(relaxed bool) *T {
	if relaxed {
		return x.p.v
	}
	return x.p.load()
}

// Publish32 is a release/acquire int32: a value one side writes and the
// other observes, with no cross-variable ordering claim (e.g. a run's
// state word, whose readers rely only on seeing the writes that preceded
// the state store).
type Publish32 struct{ v int32 }

// Load atomically loads the value (acquire).
func (x *Publish32) Load() int32 { return atomic.LoadInt32(&x.v) }

// Store atomically stores v (release).
func (x *Publish32) Store(v int32) { atomic.StoreInt32(&x.v, v) }

// Publish64 is a release/acquire int64 (e.g. per-worker statistics
// counters: a single owner writes, monitors sample).
type Publish64 struct{ v int64 }

// Load atomically loads the value (acquire).
func (x *Publish64) Load() int64 { return atomic.LoadInt64(&x.v) }

// Store atomically stores v (release).
func (x *Publish64) Store(v int64) { atomic.StoreInt64(&x.v, v) }

// Add atomically adds delta and returns the new value.
func (x *Publish64) Add(delta int64) int64 { return atomic.AddInt64(&x.v, delta) }

// AddOwner is the owner's increment: with relaxed set it is a plain read
// of the caller's own last store followed by an atomic store, replacing
// the locked RMW — sound only when the caller is the word's sole writer.
// Concurrent atomic readers still see each published value. Without
// relaxed it is the full atomic add.
func (x *Publish64) AddOwner(relaxed bool, delta int64) {
	if relaxed {
		atomic.StoreInt64(&x.v, x.v+delta)
		return
	}
	atomic.AddInt64(&x.v, delta)
}

// LoadOwner is the owner's read (see SCUint32.LoadOwner).
func (x *Publish64) LoadOwner(relaxed bool) int64 {
	if relaxed {
		return x.v
	}
	return atomic.LoadInt64(&x.v)
}

// PublishUint64 is a release/acquire uint64 (e.g. the injector's per-cell
// sequence words: Vyukov's design needs exactly release on publication and
// acquire on the consumer's check).
type PublishUint64 struct{ v uint64 }

// Load atomically loads the value (acquire).
func (x *PublishUint64) Load() uint64 { return atomic.LoadUint64(&x.v) }

// Store atomically stores v (release).
func (x *PublishUint64) Store(v uint64) { atomic.StoreUint64(&x.v, v) }

// PublishBool is a release/acquire bool (e.g. a shutdown or completion
// flag whose observers rely only on seeing the writes before the flip).
type PublishBool struct{ v uint32 }

// Load atomically loads the value (acquire).
func (x *PublishBool) Load() bool { return atomic.LoadUint32(&x.v) != 0 }

// Store atomically stores v (release).
func (x *PublishBool) Store(v bool) { atomic.StoreUint32(&x.v, b32(v)) }

// PublishPointer is a release/acquire typed pointer (e.g. the Chase-Lev
// ring pointer: the owner publishes a grown ring, thieves acquire it).
type PublishPointer[T any] struct{ p ptr[T] }

// Load atomically loads the pointer (acquire).
func (x *PublishPointer[T]) Load() *T { return x.p.load() }

// Store atomically stores v (release).
func (x *PublishPointer[T]) Store(v *T) { x.p.store(v) }

// LoadOwner is the owner's read (see SCUint32.LoadOwner).
func (x *PublishPointer[T]) LoadOwner(relaxed bool) *T {
	if relaxed {
		return x.p.v
	}
	return x.p.load()
}

// PlainPointer is a declared-unsynchronized typed pointer: every
// conflicting access pair is ordered by real happens-before edges
// (fork/join, channel, lock), which abporder verifies. Its accessors are
// deliberately plain loads and stores — the type exists to make the
// "plain is enough here" claim explicit and mechanically checkable, not
// to synchronize anything.
type PlainPointer[T any] struct{ p *T }

// Get returns the pointer with a plain load.
func (x *PlainPointer[T]) Get() *T { return x.p }

// Set stores v with a plain store.
func (x *PlainPointer[T]) Set(v *T) { x.p = v }

// ptr is the shared representation of the atomic pointer wrappers. Like
// sync/atomic's own Pointer it is a single pointer word routed through
// the atomic pointer intrinsics; unlike it, the word keeps its typed form
// so the owner's relaxed read is a plain typed load with no conversion.
type ptr[T any] struct{ v *T }

func (p *ptr[T]) word() *unsafe.Pointer { return (*unsafe.Pointer)(unsafe.Pointer(&p.v)) }
func (p *ptr[T]) load() *T              { return (*T)(atomic.LoadPointer(p.word())) }
func (p *ptr[T]) store(v *T)            { atomic.StorePointer(p.word(), unsafe.Pointer(v)) }
func (p *ptr[T]) swap(v *T) *T          { return (*T)(atomic.SwapPointer(p.word(), unsafe.Pointer(v))) }
func (p *ptr[T]) cas(old, new *T) bool {
	return atomic.CompareAndSwapPointer(p.word(), unsafe.Pointer(old), unsafe.Pointer(new))
}
