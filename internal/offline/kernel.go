// Package offline implements the off-line scheduling side of Section 2 of
// the paper: kernel schedules, execution schedules, greedy and level-by-level
// (Brent) schedulers, the Theorem 1 lower-bound kernel construction, and
// bound checkers for Theorems 1 and 2.
package offline

import "fmt"

// Kernel describes a kernel schedule: for each step i (0-based here; the
// paper numbers steps from 1), the number p_i of processes the kernel
// schedules, with 0 <= p_i <= P. Kernel schedules are conceptually infinite;
// implementations must answer for any step.
type Kernel interface {
	// ProcsAt returns p_i, the number of processes scheduled at step i.
	ProcsAt(i int) int
	// P returns the total number of processes.
	P() int
}

// Dedicated is the kernel of a dedicated environment: all P processes are
// scheduled at every step.
type Dedicated struct{ NumProcs int }

// ProcsAt returns P for every step.
func (d Dedicated) ProcsAt(int) int { return d.NumProcs }

// P returns the number of processes.
func (d Dedicated) P() int { return d.NumProcs }

// Fixed is a kernel schedule given by an explicit finite prefix; beyond the
// prefix it schedules all P processes (so every computation eventually
// finishes, as the paper's schedules implicitly guarantee).
type Fixed struct {
	NumProcs int
	Prefix   []int
}

// ProcsAt returns the prefix value, or P beyond the prefix.
func (f Fixed) ProcsAt(i int) int {
	if i < len(f.Prefix) {
		return f.Prefix[i]
	}
	return f.NumProcs
}

// P returns the number of processes.
func (f Fixed) P() int { return f.NumProcs }

// Figure2Kernel returns the kernel schedule of Figure 2(a): P = 3 processes
// and the step counts (2,3,0,2,2,3,1,2,3,2) over the first ten steps, whose
// processor average over those ten steps is 20/10 = 2.
func Figure2Kernel() Fixed {
	return Fixed{NumProcs: 3, Prefix: []int{2, 3, 0, 2, 2, 3, 1, 2, 3, 2}}
}

// LowerBound is the Theorem 1 adversarial kernel: it schedules all P
// processes at one step out of every Gap+1, and zero processes otherwise.
// Since the critical path can advance only at steps where at least one
// process is scheduled, every execution schedule has length at least
// (Tinf-1)*(Gap+1) + 1, while the processor average tends to P/(Gap+1), so
// the length is at least about Tinf*P/P_A. Gap = 0 is the dedicated kernel.
type LowerBound struct {
	NumProcs int
	Gap      int
}

// ProcsAt returns P at steps 0, Gap+1, 2(Gap+1), ... and 0 elsewhere.
func (l LowerBound) ProcsAt(i int) int {
	if i%(l.Gap+1) == 0 {
		return l.NumProcs
	}
	return 0
}

// P returns the number of processes.
func (l LowerBound) P() int { return l.NumProcs }

// MinLength returns the Theorem 1 length lower bound forced by this kernel
// on any computation with critical-path length tinf.
func (l LowerBound) MinLength(tinf int) int {
	return (tinf-1)*(l.Gap+1) + 1
}

// ProcessorAverage returns the average of ProcsAt(0..length-1). It panics if
// length < 1.
func ProcessorAverage(k Kernel, length int) float64 {
	if length < 1 {
		panic(fmt.Sprintf("offline: processor average over %d steps", length))
	}
	total := 0
	for i := 0; i < length; i++ {
		total += k.ProcsAt(i)
	}
	return float64(total) / float64(length)
}
