package deque

import (
	"testing"
	"unsafe"

	"worksteal/internal/atomicx"
)

// The layout pin tests are the dynamic mirror of the abplayout analyzer:
// the analyzer proves line isolation from go/types Sizes models, these
// assert it with unsafe.Offsetof on the host architecture, so a layout
// regression fails even where the static suite does not run.

func lineOf(off uintptr) uintptr { return off / atomicx.CacheLineSize }

func TestCacheLinePadPins(t *testing.T) {
	if atomicx.CacheLineSize != 64 {
		t.Fatalf("CacheLineSize = %d, want 64 (the coherence granule the layout discipline assumes)", atomicx.CacheLineSize)
	}
	if s := unsafe.Sizeof(atomicx.CacheLinePad{}); s != atomicx.CacheLineSize {
		t.Fatalf("Sizeof(CacheLinePad) = %d, want %d", s, atomicx.CacheLineSize)
	}
}

// TestDequeLayoutPins asserts the ABP deque's declared isolation: the
// thieves' CAS target (age), the owner's store target (bot), and the
// remaining cold words each on their own cache line (paper §3.2's two
// contending parties must not invalidate each other's lines).
func TestDequeLayoutPins(t *testing.T) {
	var d Deque[int]
	age := unsafe.Offsetof(d.age)
	bot := unsafe.Offsetof(d.bot)
	deq := unsafe.Offsetof(d.deq)
	if lineOf(age) == lineOf(bot) {
		t.Errorf("age (offset %d) and bot (offset %d) share a cache line", age, bot)
	}
	if lineOf(bot) == lineOf(deq) || lineOf(age) == lineOf(deq) {
		t.Errorf("deq header (offset %d) shares a line with age (%d) or bot (%d)", deq, age, bot)
	}
}

// TestChaseLevLayoutPins asserts the Chase-Lev isolation PR 8 added: the
// thief-CAS'd top, the owner-stored bottom, and the thief-read ring
// pointer pairwise on distinct lines (the pre-PR adjacency is the seeded
// abplayout fixture).
func TestChaseLevLayoutPins(t *testing.T) {
	var d ChaseLev[int]
	top := unsafe.Offsetof(d.top)
	bottom := unsafe.Offsetof(d.bottom)
	array := unsafe.Offsetof(d.array)
	if lineOf(top) == lineOf(bottom) {
		t.Errorf("top (offset %d) and bottom (offset %d) share a cache line", top, bottom)
	}
	if lineOf(bottom) == lineOf(array) {
		t.Errorf("bottom (offset %d) and array (offset %d) share a cache line", bottom, array)
	}
	if lineOf(top) == lineOf(array) {
		t.Errorf("top (offset %d) and array (offset %d) share a cache line", top, array)
	}
}
