package table

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tb := New("demo", "name", "value", "ratio")
	tb.Row("alpha", 42, 1.23456789)
	tb.Row("b", 7, 0.5)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## demo", "name", "alpha", "1.235", "0.5", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + rule + 2 rows = 5 lines.
	if len(lines) != 5 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.Row(1)
	var sb strings.Builder
	tb.Render(&sb)
	if strings.Contains(sb.String(), "##") {
		t.Errorf("unexpected title marker:\n%s", sb.String())
	}
}

func TestRenderRaggedRow(t *testing.T) {
	tb := New("x", "a", "b")
	tb.Row(1, 2, 3) // extra cell must not panic
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "3") {
		t.Errorf("extra cell dropped:\n%s", sb.String())
	}
}
