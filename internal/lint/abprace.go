package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// abprace is a whole-package static happens-before race detector. It is
// the layer the single-contract analyzers do not occupy: they each check one
// function-local contract, while abprace reasons about WHICH goroutine
// reaches an access and WHAT orders it against conflicting accesses
// elsewhere. The pipeline:
//
//  1. goroutine-context inference (goroutine.go): every function/closure
//     is tagged with the goroutine roots that can be executing it.
//  2. field-sensitive shared-access collection: every read/write of a
//     struct field or package-level variable in a context-tagged
//     function, classified plain vs sync/atomic (the same operand
//     machinery atomicmix uses).
//  3. happens-before fact extraction, per function along its CFG:
//     channel sends/closes vs receives, WaitGroup deferred-Done -> Wait
//     joins, mutex locksets (dominating Lock not killed by a dominated
//     Unlock, inherited across static call edges), atomic release/
//     acquire pairs, go-statement fork edges, and //abp:handshake
//     declarations as trusted edges (that protocol is audited by the
//     handshake analyzer, not re-derived here).
//  4. conflict reporting: for each shared location, the first pair of
//     accesses on concurrent roots where at least one side writes, not
//     both are atomic, and no extracted fact orders them — printed with
//     both goroutine provenance chains and suppressible by a justified
//     //abp:race-ignore comment.
//
// Deliberate approximations (DESIGN.md §8 discusses each): locations are
// identified by their field/variable object, not by object instance; the
// external root is assumed to serialize its calls per the package's
// documented contracts; receiver-direct accesses in //abp:owner functions
// are trusted to the audited single-owner discipline; escaping function
// literals with no invocation edge get no context and are not analyzed;
// fork edges order an access against launches of the same activation.

// AbpRace reports pairs of conflicting shared-memory accesses reachable
// from two concurrent goroutine contexts with no happens-before edge.
var AbpRace = &Analyzer{
	Name: "abprace",
	Doc:  "reports unsynchronized conflicting accesses to shared fields or package variables reachable from two concurrent goroutine contexts",
	Run:  runAbpRace,
}

// A raceAccess is one read or write of a shared location.
type raceAccess struct {
	v      *types.Var // the field or package-level variable
	fn     *funcNode
	node   ast.Node // containing CFG block node; nil when unindexed
	pos    token.Pos
	write  bool
	atomic bool
	// recvDirect marks a one-hop selection on the enclosing method's
	// receiver (w.bot, not w.pool.done).
	recvDirect bool
	// op is the operation name at the access site ("Load", "Store",
	// "Add", "CompareAndSwap", "LoadOwner", ...) when the access goes
	// through sync/atomic or atomicx; "" for plain accesses.
	op string
	// ownerOp marks a relaxable atomicx owner accessor call site
	// (LoadOwner/AddOwner), which abporder holds to the owner proof.
	ownerOp bool
	// onceVar identifies the sync.Once whose Do runs the enclosing
	// literal, if any: Do bodies are mutually excluded and one-shot.
	onceVar *types.Var
	desc    string // "field bot of deque.Deque" / "package variable spinSink"
}

func (x *raceAccess) kind() string {
	k := "plain"
	if x.atomic {
		k = "atomic"
	}
	if x.write {
		return k + " write"
	}
	return k + " read"
}

// A syncOp is one synchronization operation, located by its CFG node and
// identified by the leaf variable of its operand chain (the field
// `done` in close(w.pool.done), the local `wg` in wg.Wait()).
type syncOp struct {
	v    *types.Var
	node ast.Node
	read bool // RLock/RUnlock (shared mode)
}

// funcFacts are the per-function happens-before facts.
type funcFacts struct {
	trusted      bool // declared //abp:handshake: ordering audited elsewhere
	sends        []syncOp
	recvs        []syncOp
	waits        []syncOp
	locks        []syncOp
	unlocks      []syncOp
	atomicW      []syncOp
	atomicR      []syncOp
	deferredDone []*types.Var
}

type callerEdge struct {
	from *funcNode
	kind callKind
	site ast.Node
}

type raceAnalysis struct {
	pass  *Pass
	graph *callGraph
	gs    *goroutineSet
	owned map[*funcNode]bool

	cfgs    map[*funcNode]*funcCFG
	reaches map[*funcNode]*reachInfo
	facts   map[*funcNode]*funcFacts
	callers map[*funcNode][]callerEdge

	// escaped holds locals captured by a function literal or referenced
	// in a go statement: their pointees may be shared, so the fresh-
	// object rule must not apply to them.
	escaped map[*types.Var]bool

	accesses map[*types.Var][]*raceAccess

	preMemo  map[*gRoot]map[*funcNode]bool
	postMemo map[*gRoot]map[*funcNode]bool
	joinMemo map[*gRoot]map[*types.Var]bool
	onceMemo map[*funcNode]*types.Var

	inhMemo       map[*funcNode]map[*types.Var]uint8
	inhInProgress map[*funcNode]bool
}

// newRaceAnalysis builds the whole-package analysis state — call graph,
// goroutine contexts, owner set, caller index, escape set — that abprace
// and abporder both run their collection and happens-before machinery on.
func newRaceAnalysis(pass *Pass) *raceAnalysis {
	g := newCallGraph(pass.TypesInfo, pass.Files)
	a := &raceAnalysis{
		pass:          pass,
		graph:         g,
		cfgs:          map[*funcNode]*funcCFG{},
		reaches:       map[*funcNode]*reachInfo{},
		facts:         map[*funcNode]*funcFacts{},
		callers:       map[*funcNode][]callerEdge{},
		escaped:       map[*types.Var]bool{},
		accesses:      map[*types.Var][]*raceAccess{},
		preMemo:       map[*gRoot]map[*funcNode]bool{},
		postMemo:      map[*gRoot]map[*funcNode]bool{},
		joinMemo:      map[*gRoot]map[*types.Var]bool{},
		onceMemo:      map[*funcNode]*types.Var{},
		inhMemo:       map[*funcNode]map[*types.Var]uint8{},
		inhInProgress: map[*funcNode]bool{},
	}
	a.gs = inferGoroutines(g, a.cfg)
	a.owned = g.ownedNodes()
	for _, from := range g.nodes {
		for _, e := range g.edges[from] {
			a.callers[e.to] = append(a.callers[e.to], callerEdge{from: from, kind: e.kind, site: e.site})
		}
	}
	a.collectEscapes()
	return a
}

func runAbpRace(pass *Pass) error {
	a := newRaceAnalysis(pass)
	if len(a.gs.roots) < 2 {
		return nil // no go statements: one context, nothing is concurrent
	}
	for _, n := range a.gs.sharedNodes(a.graph) {
		a.collect(n)
	}
	a.report()
	return nil
}

func (a *raceAnalysis) cfg(fn *funcNode) *funcCFG {
	if g, ok := a.cfgs[fn]; ok {
		return g
	}
	body := fn.body()
	if body == nil {
		body = &ast.BlockStmt{}
	}
	g := buildCFG(body)
	a.cfgs[fn] = g
	return g
}

func (a *raceAnalysis) reach(fn *funcNode) *reachInfo {
	if r, ok := a.reaches[fn]; ok {
		return r
	}
	var params []*types.Var
	if fn.decl != nil {
		params = funcParams(a.pass.TypesInfo, fn.decl.Type, fn.decl.Recv)
	} else {
		params = funcParams(a.pass.TypesInfo, fn.lit.Type, nil)
	}
	r := a.cfg(fn).reachingDefs(a.pass.TypesInfo, params)
	a.reaches[fn] = r
	return r
}

func (a *raceAnalysis) factsOf(fn *funcNode) *funcFacts {
	if f, ok := a.facts[fn]; ok {
		return f
	}
	f := &funcFacts{trusted: fn.decl != nil && hasDirective(fn.decl.Doc, "//abp:handshake")}
	a.facts[fn] = f
	return f
}

// collectEscapes records every local whose pointee may be shared with
// another goroutine: captured by any function literal, or mentioned in a
// go statement's call (receiver or argument).
func (a *raceAnalysis) collectEscapes() {
	for _, n := range a.graph.nodes {
		if n.lit != nil {
			for _, v := range a.graph.captures(n.lit) {
				a.escaped[v] = true
			}
		}
	}
	for _, f := range a.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			ast.Inspect(g.Call, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok && !v.IsField() {
						a.escaped[v] = true
					}
				}
				return true
			})
			return true
		})
	}
}

// --- access and fact collection ---

// accessMarks carries collect's Pass-A classification of expressions to
// Pass B: which expressions sit in write position, which are operands of
// atomic (or atomicx) operations and under what operation name, which are
// relaxable owner-accessor receivers, and which are sync primitives.
type accessMarks struct {
	writes       map[ast.Expr]bool   // exprs in write position
	atomicTarget map[ast.Expr]bool   // exprs accessed through sync/atomic or atomicx
	atomicWrite  map[ast.Expr]bool   // ... and the op stores
	atomicOp     map[ast.Expr]string // ... and the op's name
	ownerOp      map[ast.Expr]bool   // receivers of atomicx LoadOwner/AddOwner
	syncRecv     map[ast.Expr]bool   // receivers of sync.* method calls
}

func (a *raceAnalysis) collect(fn *funcNode) {
	body := fn.body()
	if body == nil {
		return
	}
	info := a.pass.TypesInfo
	cfg := a.cfg(fn)
	facts := a.factsOf(fn)

	m := &accessMarks{
		writes:       map[ast.Expr]bool{},
		atomicTarget: map[ast.Expr]bool{},
		atomicWrite:  map[ast.Expr]bool{},
		atomicOp:     map[ast.Expr]string{},
		ownerOp:      map[ast.Expr]bool{},
		syncRecv:     map[ast.Expr]bool{},
	}
	addrTaken := map[*ast.UnaryExpr]ast.Expr{}
	consumed := map[*ast.UnaryExpr]bool{} // &x operands consumed by atomic calls

	var markWrite func(e ast.Expr)
	markWrite = func(e ast.Expr) {
		e = ast.Unparen(e)
		m.writes[e] = true
		// Writing an element or through a pointer is modeled as a write
		// of the container field: field-granular, object-insensitive.
		switch x := e.(type) {
		case *ast.IndexExpr:
			markWrite(x.X)
		case *ast.StarExpr:
			markWrite(x.X)
		case *ast.SliceExpr:
			markWrite(x.X)
		}
	}
	node := func(at ast.Node) ast.Node { return cfg.blockNodeAt(at.Pos()) }
	isDeferred := func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	}

	// Pass A: classify write positions, atomic operands, and sync ops.
	fn.inspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.SendStmt:
			if v := leafVar(info, x.Chan); v != nil {
				facts.sends = append(facts.sends, syncOp{v: v, node: node(x)})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if v := leafVar(info, x.X); v != nil {
						facts.recvs = append(facts.recvs, syncOp{v: v, node: node(x)})
					}
				}
			}
		case *ast.UnaryExpr:
			switch x.Op {
			case token.AND:
				addrTaken[x] = x.X
			case token.ARROW:
				if v := leafVar(info, x.X); v != nil {
					facts.recvs = append(facts.recvs, syncOp{v: v, node: node(x)})
				}
			}
		case *ast.CallExpr:
			a.classifyCall(fn, x, facts, m, consumed, node, isDeferred)
		}
		return true
	})

	// An address-taken field not consumed by an atomic call escapes as a
	// pointer: treat it as a write (the pointee may be mutated anywhere).
	for ue, target := range addrTaken {
		if !consumed[ue] {
			markWrite(target)
		}
	}

	// Pass B: collect the accesses themselves.
	selSel := map[*ast.Ident]bool{}
	fn.inspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SelectorExpr:
			selSel[x.Sel] = true
			a.fieldAccess(fn, cfg, x, m)
		case *ast.Ident:
			if !selSel[x] {
				a.globalAccess(fn, cfg, x, m)
			}
		}
		return true
	})
}

// classifyCall sorts one call into the atomic / sync-primitive / channel
// fact buckets.
func (a *raceAnalysis) classifyCall(fn *funcNode, call *ast.CallExpr, facts *funcFacts,
	m *accessMarks, consumed map[*ast.UnaryExpr]bool, node func(ast.Node) ast.Node, isDeferred func(ast.Node) bool) {

	info := a.pass.TypesInfo
	callee := calleeFunc(info, call)
	switch {
	case isAtomicFunc(callee):
		// atomic.AddUint64(&w.steals, 1): the &field operand is an
		// atomic access of the field (atomicmix's operand rule).
		if len(call.Args) > 0 {
			if ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				t := elemBase(ast.Unparen(ue.X))
				w := !strings.HasPrefix(callee.Name(), "Load")
				m.atomicTarget[t] = true
				m.atomicWrite[t] = w
				m.atomicOp[t] = callee.Name()
				consumed[ue] = true
				if v := leafVar(info, t); v != nil {
					op := syncOp{v: v, node: node(call)}
					if w {
						facts.atomicW = append(facts.atomicW, op)
					} else {
						facts.atomicR = append(facts.atomicR, op)
					}
				}
			}
		}
	case isAtomicMethod(callee):
		// w.parked.Store(true): the receiver chain is the atomic access.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			t := elemBase(ast.Unparen(sel.X))
			w := callee.Name() != "Load"
			m.atomicTarget[t] = true
			m.atomicWrite[t] = w
			m.atomicOp[t] = callee.Name()
			if v := leafVar(info, t); v != nil {
				op := syncOp{v: v, node: node(call)}
				if w {
					facts.atomicW = append(facts.atomicW, op)
				} else {
					facts.atomicR = append(facts.atomicR, op)
				}
			}
		}
	case isAtomicxOwnerMethod(callee):
		// d.bot.LoadOwner(relaxed): a relaxable owner accessor. AddOwner
		// writes (plain read of own last store + atomic store), LoadOwner
		// reads. Both are atomic accesses for pair purposes — abporder
		// separately demands the single-writer owner proof at every such
		// site, which is what makes the relaxed plain read sound. Only
		// AddOwner's (genuinely atomic) store yields a release fact; a
		// relaxed LoadOwner provides no acquire semantics, so no fact.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			t := elemBase(ast.Unparen(sel.X))
			w := callee.Name() == "AddOwner"
			m.atomicTarget[t] = true
			m.atomicWrite[t] = w
			m.atomicOp[t] = callee.Name()
			m.ownerOp[t] = true
			if v := leafVar(info, t); v != nil && w {
				facts.atomicW = append(facts.atomicW, syncOp{v: v, node: node(call)})
			}
		}
	case isAtomicxPlainMethod(callee):
		// h.handoff.Set(t): a declared-plain access — the receiver chain
		// is a plain write (Set) or plain read (Get), checked by the pair
		// machinery exactly as a raw field access would be.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			t := elemBase(ast.Unparen(sel.X))
			if callee.Name() == "Set" {
				m.writes[t] = true
			}
			m.atomicOp[t] = callee.Name()
		}
	case syncMethodRecv(callee) != "":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		recv := ast.Unparen(sel.X)
		m.syncRecv[recv] = true
		v := leafVar(info, recv)
		if v == nil {
			return
		}
		n := node(call)
		recvType := syncMethodRecv(callee)
		switch callee.Name() {
		case "Lock", "RLock":
			if (recvType == "Mutex" || recvType == "RWMutex") && n != nil && !isDeferred(n) {
				facts.locks = append(facts.locks, syncOp{v: v, node: n, read: callee.Name() == "RLock"})
			}
		case "Unlock", "RUnlock":
			// A deferred unlock releases at return: it never kills the
			// lockset of statements inside the function.
			if (recvType == "Mutex" || recvType == "RWMutex") && n != nil && !isDeferred(n) {
				facts.unlocks = append(facts.unlocks, syncOp{v: v, node: n, read: callee.Name() == "RUnlock"})
			}
		case "Wait":
			if recvType == "WaitGroup" && n != nil && !isDeferred(n) {
				facts.waits = append(facts.waits, syncOp{v: v, node: n})
			}
		case "Done":
			if recvType == "WaitGroup" && n != nil && isDeferred(n) {
				facts.deferredDone = append(facts.deferredDone, v)
			}
		}
	default:
		// close(ch) publishes like a send.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				if v := leafVar(info, call.Args[0]); v != nil {
					facts.sends = append(facts.sends, syncOp{v: v, node: node(call)})
				}
			}
		}
	}
}

// elemBase unwraps an index expression: an element access like
// d.deq[i].Store(x) is, at this analysis' field-level granularity, an
// atomic access of the slice/array field itself (the marks must land on
// the base selector fieldAccess will visit, or the element op degrades
// to a plain read of the field).
func elemBase(t ast.Expr) ast.Expr {
	if ix, ok := t.(*ast.IndexExpr); ok {
		return ast.Unparen(ix.X)
	}
	return t
}

func (a *raceAnalysis) fieldAccess(fn *funcNode, cfg *funcCFG, sel *ast.SelectorExpr, m *accessMarks) {
	info := a.pass.TypesInfo
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	if m.syncRecv[sel] {
		return // the sync primitive itself; its ops became facts
	}
	isAtomic := m.atomicTarget[sel]
	write := m.writes[sel] || (isAtomic && m.atomicWrite[sel])
	if !isAtomic && !write && isSyncPkgType(v.Type()) {
		return // e.g. passing &wg around; not a data access
	}
	at := cfg.blockNodeAt(sel.Pos())

	// Fresh-object rule: accesses through a local whose every reaching
	// definition allocates a fresh object in this very function cannot be
	// shared — unless the local escaped to another goroutine.
	if base := baseIdent(sel.X); base != nil && !isAtomic {
		if bv, ok := info.Uses[base].(*types.Var); ok && a.isUnescapedLocal(fn, bv) && at != nil {
			defs := a.reach(fn).defsReaching(at, bv)
			if len(defs) > 0 && a.allFresh(defs, bv) {
				return
			}
		}
	}

	recvDirect := false
	if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if rv := recvVarOf(info, fn); rv != nil && info.Uses[base] == rv {
			recvDirect = true
		}
	}
	recvType := s.Recv()
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	typeName := types.TypeString(recvType, func(p *types.Package) string { return p.Name() })
	a.addAccess(&raceAccess{
		v: v, fn: fn, node: at, pos: sel.Pos(),
		write: write, atomic: isAtomic, recvDirect: recvDirect,
		op: m.atomicOp[sel], ownerOp: m.ownerOp[sel],
		onceVar: a.onceVarOf(fn),
		desc:    fmt.Sprintf("field %s of %s", v.Name(), typeName),
	})
}

func (a *raceAnalysis) globalAccess(fn *funcNode, cfg *funcCFG, id *ast.Ident, m *accessMarks) {
	info := a.pass.TypesInfo
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Name() == "_" {
		return
	}
	if a.pass.Pkg == nil || v.Parent() != a.pass.Pkg.Scope() {
		return // locals, params, and cross-package vars are out of scope
	}
	if m.syncRecv[id] {
		return
	}
	isAtomic := m.atomicTarget[id]
	write := m.writes[id] || (isAtomic && m.atomicWrite[id])
	if !isAtomic && !write && isSyncPkgType(v.Type()) {
		return
	}
	a.addAccess(&raceAccess{
		v: v, fn: fn, node: cfg.blockNodeAt(id.Pos()), pos: id.Pos(),
		write: write, atomic: isAtomic,
		op: m.atomicOp[id], ownerOp: m.ownerOp[id],
		onceVar: a.onceVarOf(fn),
		desc:    fmt.Sprintf("package variable %s", v.Name()),
	})
}

func (a *raceAnalysis) addAccess(acc *raceAccess) {
	a.accesses[acc.v] = append(a.accesses[acc.v], acc)
}

// isUnescapedLocal reports whether v is declared inside fn's body and its
// pointee never escapes to another goroutine (not captured by a literal,
// not mentioned in a go statement).
func (a *raceAnalysis) isUnescapedLocal(fn *funcNode, v *types.Var) bool {
	body := fn.body()
	if body == nil || a.escaped[v] {
		return false
	}
	return v.Pos() >= body.Pos() && v.Pos() < body.End()
}

// allFresh reports whether every reaching definition of v allocates a
// fresh object: v := &T{...}, v := T{...} (composite), or v := new(T).
func (a *raceAnalysis) allFresh(defs []*definition, v *types.Var) bool {
	for _, d := range defs {
		if d.node == nil || d.weak || !a.freshDef(d.node, v) {
			return false
		}
	}
	return true
}

func (a *raceAnalysis) freshDef(n ast.Node, v *types.Var) bool {
	info := a.pass.TypesInfo
	isVar := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		return info.Defs[id] == v || info.Uses[id] == v
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		for i, lhs := range s.Lhs {
			if isVar(lhs) {
				return a.freshRHS(s.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if info.Defs[name] == v {
					return i < len(vs.Values) && a.freshRHS(vs.Values[i])
				}
			}
		}
	}
	return false
}

func (a *raceAnalysis) freshRHS(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

// onceVarOf resolves the sync.Once whose Do invokes fn, when fn is a
// literal passed directly to (*sync.Once).Do.
func (a *raceAnalysis) onceVarOf(fn *funcNode) *types.Var {
	if v, ok := a.onceMemo[fn]; ok {
		return v
	}
	var result *types.Var
	if fn.lit != nil {
		for _, e := range a.callers[fn] {
			call, ok := e.site.(*ast.CallExpr)
			if !ok || e.kind != callStatic {
				continue
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !isOnceDo(calleeFunc(a.pass.TypesInfo, call)) {
				continue
			}
			if len(call.Args) == 1 && ast.Unparen(call.Args[0]) == fn.lit {
				result = leafVar(a.pass.TypesInfo, sel.X)
			}
		}
	}
	a.onceMemo[fn] = result
	return result
}

// --- conflict detection ---

func (a *raceAnalysis) report() {
	vars := make([]*types.Var, 0, len(a.accesses))
	for v := range a.accesses {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })

	for _, v := range vars {
		accs := a.accesses[v]
		sort.SliceStable(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		a.checkVar(accs)
	}
}

// checkVar reports the first unordered conflicting pair for one location
// (one finding per location keeps output and baselines stable).
func (a *raceAnalysis) checkVar(accs []*raceAccess) {
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			x, y := accs[i], accs[j]
			if !x.write && !y.write {
				continue
			}
			if x.atomic && y.atomic {
				continue
			}
			for _, rx := range a.gs.ctx[x.fn] {
				for _, ry := range a.gs.ctx[y.fn] {
					if !rx.concurrent(ry) {
						continue
					}
					if a.suppressed(x, y, rx, ry) {
						continue
					}
					a.reportPair(x, y, rx, ry)
					return
				}
			}
		}
	}
}

func (a *raceAnalysis) suppressed(x, y *raceAccess, rx, ry *gRoot) bool {
	// Trusted edge: both sides declared //abp:handshake — the Dekker
	// protocol between them is audited by the handshake analyzer.
	if a.factsOf(x.fn).trusted && a.factsOf(y.fn).trusted {
		return true
	}
	// Owner discipline: receiver-direct accesses inside the audited
	// //abp:owner closure operate on per-instance state.
	if x.recvDirect && y.recvDirect && a.owned[x.fn] && a.owned[y.fn] {
		return true
	}
	// sync.Once: both accesses inside Do bodies of the same Once are
	// mutually excluded and execute at most once.
	if x.onceVar != nil && x.onceVar == y.onceVar {
		return true
	}
	if a.lockExcluded(x, y) {
		return true
	}
	return a.ordered(x, rx, y, ry) || a.ordered(y, ry, x, rx)
}

// ordered reports whether an extracted happens-before fact places x (on
// root rx) before y (on root ry).
func (a *raceAnalysis) ordered(x *raceAccess, rx *gRoot, y *raceAccess, ry *gRoot) bool {
	// Fork: x is sequenced before every launch of ry's goroutine.
	if !ry.external && rx != ry && a.beforeLaunch(x, ry) {
		return true
	}
	// Join: rx's goroutine defers a WaitGroup Done that y's function
	// Waits for before the access.
	if !rx.external && rx != ry && a.afterJoin(y, rx) {
		return true
	}
	// Channel: x precedes a send/close whose receive precedes y.
	if a.pairedVia(x, y, a.factsOf(x.fn).sends, a.factsOf(y.fn).recvs) {
		return true
	}
	// Atomic release/acquire: x precedes an atomic store whose load
	// precedes y (branch polarity is not verified: over-approximation).
	if a.pairedVia(x, y, a.factsOf(x.fn).atomicW, a.factsOf(y.fn).atomicR) {
		return true
	}
	return false
}

// pairedVia implements the shared release/acquire shape: some release op
// (send, close, atomic store) of variable v in x's function cannot run
// before x, and a matching acquire op (receive, atomic load) of v
// dominates y.
func (a *raceAnalysis) pairedVia(x, y *raceAccess, releases, acquires []syncOp) bool {
	if x.node == nil || y.node == nil {
		return false
	}
	cgx, cgy := a.cfg(x.fn), a.cfg(y.fn)
	for _, rel := range releases {
		if rel.node == nil || cgx.canReach(rel.node, x.node) {
			continue // some execution runs x after the release
		}
		for _, acq := range acquires {
			if acq.v != rel.v || acq.node == nil {
				continue
			}
			if acq.node == y.node || cgy.dominates(acq.node, y.node) {
				return true
			}
		}
	}
	return false
}

// beforeLaunch reports whether x is sequenced before every go statement
// launching r: directly (all launch sites in x's function, none able to
// flow back to x) or transitively (x's function only ever called before
// the launch, the pre(r) closure).
func (a *raceAnalysis) beforeLaunch(x *raceAccess, r *gRoot) bool {
	if x.node != nil && a.allSitesIn(r, x.fn) {
		cfg := a.cfg(x.fn)
		ok := true
		for _, l := range r.sites {
			if l.stmt == nil || cfg.canReach(l.stmt, x.node) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return a.preSet(r)[x.fn]
}

func (a *raceAnalysis) allSitesIn(r *gRoot, fn *funcNode) bool {
	if len(r.sites) == 0 {
		return false
	}
	for _, l := range r.sites {
		if l.fn != fn {
			return false
		}
	}
	return true
}

// preSet computes the functions whose every activation completes before
// any launch of r: F qualifies when every incoming call edge either comes
// from a qualifying caller or is a static call in the launching function
// that no launch site can flow to.
func (a *raceAnalysis) preSet(r *gRoot) map[*funcNode]bool {
	if s, ok := a.preMemo[r]; ok {
		return s
	}
	pre := map[*funcNode]bool{}
	for changed := true; changed; {
		changed = false
		for _, n := range a.graph.nodes {
			if pre[n] {
				continue
			}
			edges := a.callers[n]
			if len(edges) == 0 {
				continue
			}
			ok := true
			for _, e := range edges {
				if pre[e.from] {
					continue
				}
				if e.kind == callStatic && a.allSitesIn(r, e.from) && a.siteBeforeLaunches(r, e) {
					continue
				}
				ok = false
				break
			}
			if ok {
				pre[n] = true
				changed = true
			}
		}
	}
	a.preMemo[r] = pre
	return pre
}

func (a *raceAnalysis) siteBeforeLaunches(r *gRoot, e callerEdge) bool {
	cfg := a.cfg(e.from)
	siteNode := cfg.blockNodeAt(e.site.Pos())
	if siteNode == nil {
		return false
	}
	for _, l := range r.sites {
		if l.stmt == nil || cfg.canReach(l.stmt, siteNode) {
			return false
		}
	}
	return true
}

// afterJoin reports whether y is sequenced after a Wait on a WaitGroup
// that every instance of root r signals via a deferred Done.
func (a *raceAnalysis) afterJoin(y *raceAccess, r *gRoot) bool {
	jv := a.joinVars(r)
	if len(jv) == 0 {
		return false
	}
	if y.node != nil {
		cfg := a.cfg(y.fn)
		for _, w := range a.factsOf(y.fn).waits {
			if jv[w.v] && w.node != nil && cfg.dominates(w.node, y.node) {
				return true
			}
		}
	}
	return a.postSet(r)[y.fn]
}

// joinVars resolves the WaitGroups root r's entry function Done()s via
// defer. A Done on a parameter is threaded back through the launch-site
// arguments (go r.worker(i, &wg): the deferred wg.Done() joins the
// caller's wg).
func (a *raceAnalysis) joinVars(r *gRoot) map[*types.Var]bool {
	if s, ok := a.joinMemo[r]; ok {
		return s
	}
	out := map[*types.Var]bool{}
	if r.fn != nil {
		info := a.pass.TypesInfo
		for _, dv := range a.factsOf(r.fn).deferredDone {
			if k := paramIndex(info, r.fn, dv); k >= 0 {
				var resolved *types.Var
				ok := len(r.sites) > 0
				for _, l := range r.sites {
					if l.stmt == nil || k >= len(l.stmt.Call.Args) {
						ok = false
						break
					}
					arg := ast.Unparen(l.stmt.Call.Args[k])
					if ue, isAddr := arg.(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
						arg = ast.Unparen(ue.X)
					}
					v := leafVar(info, arg)
					if v == nil || (resolved != nil && v != resolved) {
						ok = false
						break
					}
					resolved = v
				}
				if ok && resolved != nil {
					out[resolved] = true
				}
			} else {
				out[dv] = true
			}
		}
	}
	a.joinMemo[r] = out
	return out
}

// postSet computes the functions whose every activation starts after r is
// joined: every incoming edge is a static call dominated by a Wait on one
// of r's join variables, or comes from a qualifying caller.
func (a *raceAnalysis) postSet(r *gRoot) map[*funcNode]bool {
	if s, ok := a.postMemo[r]; ok {
		return s
	}
	post := map[*funcNode]bool{}
	jv := a.joinVars(r)
	if len(jv) > 0 {
		for changed := true; changed; {
			changed = false
			for _, n := range a.graph.nodes {
				if post[n] {
					continue
				}
				edges := a.callers[n]
				if len(edges) == 0 {
					continue
				}
				ok := true
				for _, e := range edges {
					if post[e.from] {
						continue
					}
					if e.kind == callStatic && a.waitDominatesSite(jv, e) {
						continue
					}
					ok = false
					break
				}
				if ok {
					post[n] = true
					changed = true
				}
			}
		}
	}
	a.postMemo[r] = post
	return post
}

func (a *raceAnalysis) waitDominatesSite(jv map[*types.Var]bool, e callerEdge) bool {
	cfg := a.cfg(e.from)
	siteNode := cfg.blockNodeAt(e.site.Pos())
	if siteNode == nil {
		return false
	}
	for _, w := range a.factsOf(e.from).waits {
		if jv[w.v] && w.node != nil && cfg.dominates(w.node, siteNode) {
			return true
		}
	}
	return false
}

// --- locksets ---

// lockExcluded reports whether x and y hold a common mutex with at least
// one side in exclusive mode.
func (a *raceAnalysis) lockExcluded(x, y *raceAccess) bool {
	hx := a.locksAtNode(x.fn, x.node)
	if len(hx) == 0 {
		return false
	}
	hy := a.locksAtNode(y.fn, y.node)
	for m, bx := range hx {
		by := hy[m]
		if by == 0 {
			continue
		}
		if bx&1 != 0 || by&1 != 0 { // not both merely read-locked
			return true
		}
	}
	return false
}

// locksAtNode computes the locks held at a CFG node: the function's
// inherited set plus every Lock that dominates the node and is not killed
// by an Unlock on the path (a dominated Unlock that itself dominates the
// node). Bits: 1 = exclusive, 2 = shared (RLock). Deferred Unlocks never
// kill; conditional Unlocks off the dominating path are missed — an
// accepted over-approximation noted in DESIGN.md.
func (a *raceAnalysis) locksAtNode(fn *funcNode, node ast.Node) map[*types.Var]uint8 {
	held := map[*types.Var]uint8{}
	for k, v := range a.inheritedLocks(fn) {
		held[k] = v
	}
	if node == nil {
		return held
	}
	f := a.factsOf(fn)
	cfg := a.cfg(fn)
	for _, l := range f.locks {
		if l.node == nil || !cfg.dominates(l.node, node) {
			continue
		}
		killed := false
		for _, u := range f.unlocks {
			if u.v != l.v || u.read != l.read || u.node == nil {
				continue
			}
			if cfg.dominates(l.node, u.node) && cfg.dominates(u.node, node) {
				killed = true
				break
			}
		}
		if !killed {
			if l.read {
				held[l.v] |= 2
			} else {
				held[l.v] |= 1
			}
		}
	}
	return held
}

// inheritedLocks is the must-intersection of the locks held at every
// static call site of fn. Any go/defer caller, absence of callers, or a
// recursion cycle yields the empty set (the conservative answer).
func (a *raceAnalysis) inheritedLocks(fn *funcNode) map[*types.Var]uint8 {
	if s, ok := a.inhMemo[fn]; ok {
		return s
	}
	if a.inhInProgress[fn] {
		return nil
	}
	a.inhInProgress[fn] = true
	defer delete(a.inhInProgress, fn)

	var result map[*types.Var]uint8
	edges := a.callers[fn]
	if len(edges) > 0 {
		allStatic := true
		for _, e := range edges {
			if e.kind != callStatic {
				allStatic = false
				break
			}
		}
		if allStatic {
			for i, e := range edges {
				siteNode := a.cfg(e.from).blockNodeAt(e.site.Pos())
				s := a.locksAtNode(e.from, siteNode)
				if i == 0 {
					result = s
					continue
				}
				for k, v := range result {
					if nv := v & s[k]; nv == 0 {
						delete(result, k)
					} else {
						result[k] = nv
					}
				}
			}
		}
	}
	a.inhMemo[fn] = result
	return result
}

// --- reporting ---

func (a *raceAnalysis) reportPair(x, y *raceAccess, rx, ry *gRoot) {
	ctx := func(r *gRoot, fn *funcNode) string {
		if r.external {
			return fmt.Sprintf("%s: %s", r.name(), r.chain(fn))
		}
		return fmt.Sprintf("%s launched in %s: %s", r.name(), r.launchedIn(), r.chain(fn))
	}
	cy := ctx(ry, y.fn)
	if rx == ry {
		cy = "another instance, " + cy
	}
	a.pass.Reportf(x.pos,
		"possible data race on %s: %s in %s [%s] conflicts with %s in %s [%s]; no happens-before edge orders the accesses (suppress with //abp:race-ignore <justification>)",
		x.desc, x.kind(), x.fn.name(), ctx(rx, x.fn), y.kind(), y.fn.name(), cy)
}

// --- small helpers ---

// leafVar resolves the identity variable of an operand chain: the field
// for w.pool.done, the local or package variable for bare identifiers.
// Index and deref steps identify the element by its container.
func leafVar(info *types.Info, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.StarExpr:
		return leafVar(info, x.X)
	case *ast.IndexExpr:
		return leafVar(info, x.X)
	}
	return nil
}

// baseIdent unwraps a selector base chain to its root identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// recvVarOf returns the receiver variable of a method declaration node.
func recvVarOf(info *types.Info, fn *funcNode) *types.Var {
	if fn.decl == nil || fn.decl.Recv == nil || len(fn.decl.Recv.List) == 0 {
		return nil
	}
	names := fn.decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := info.Defs[names[0]].(*types.Var)
	return v
}

// syncMethodRecv returns the receiver type name when fn is a method of a
// package sync type (Mutex, RWMutex, WaitGroup, Once, Cond, Map, Pool),
// or "".
func syncMethodRecv(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return ""
	}
	return named.Obj().Name()
}

// isSyncPkgType reports whether t is (a pointer to) a named type of
// package sync: those values are synchronization primitives, not data.
func isSyncPkgType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// paramIndex returns dv's positional index among fn's declared
// parameters, or -1.
func paramIndex(info *types.Info, fn *funcNode, dv *types.Var) int {
	var ft *ast.FuncType
	if fn.decl != nil {
		ft = fn.decl.Type
	} else {
		ft = fn.lit.Type
	}
	if ft.Params == nil {
		return -1
	}
	i := 0
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			if info.Defs[name] == dv {
				return i
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return -1
}
