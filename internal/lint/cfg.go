package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the flow-aware half of the abpvet engine: a per-function
// control-flow graph (CFG), a dominator computation over it, and a
// reaching-definitions pass. PR 2's analyzers were pure AST walks, which is
// enough for "does this call appear here" questions but not for ordering
// ("does the handshake store precede every load?", analyzer handshake) or
// dataflow ("is this tag freshly loaded?", analyzer tagaba; "does this
// boolean result ever reach a use?", analyzer mustcheck). The CFG is
// intraprocedural and intentionally modest: blocks hold the statements (and
// extracted condition expressions) of one straight-line region, edges
// follow Go's structured control flow plus goto/labeled break/continue.
// Panics and calls are treated as non-terminating, which errs on the side
// of more paths — the conservative direction for every current client.

// A block is one straight-line region of a function body. Nodes holds the
// statements and extracted condition/iteration expressions in execution
// order; Succs the possible successors.
type block struct {
	index int
	nodes []ast.Node
	succs []*block
	preds []*block
}

// A funcCFG is the control-flow graph of one function body. Entry is the
// first block executed; parameters and named results are considered
// defined at entry (see reachingDefs).
type funcCFG struct {
	entry  *block
	blocks []*block

	// nodeBlock and nodeIndex locate each block node for position queries.
	nodeBlock map[ast.Node]*block
	nodeIndex map[ast.Node]int

	dom   [][]bool // dom[i][j]: block j dominates block i (lazily built)
	reach [][]bool // reach[i][j]: an edge path leads from block i to j (lazy)
}

// buildCFG constructs the CFG of body. It never returns nil: an empty body
// yields a single empty entry block.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g: &funcCFG{
			nodeBlock: map[ast.Node]*block{},
			nodeIndex: map[ast.Node]int{},
		},
		labels: map[string]*labelInfo{},
	}
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	b.patchGotos()
	return b.g
}

type loopFrame struct {
	label          string
	breakTo        *block
	continueTo     *block
	isSwitchSelect bool // break applies, continue does not
}

type labelInfo struct {
	target *block // resolved goto target (first block of the labeled stmt)
}

type pendingGoto struct {
	from  *block
	label string
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *block
	frames []loopFrame
	labels map[string]*labelInfo
	gotos  []pendingGoto

	// pendingLabel is set while building the statement a label names, so
	// loops can register their break/continue targets under it.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// add appends a node to the current block and indexes it.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil || b.cur == nil {
		return
	}
	b.g.nodeBlock[n] = b.cur
	b.g.nodeIndex[n] = len(b.cur.nodes)
	b.cur.nodes = append(b.cur.nodes, n)
}

// startBlock makes blk current; a nil cur means the previous statement
// ended control flow (return/branch), so blk starts unreachable unless an
// edge is added elsewhere (e.g. a loop back edge or goto).
func (b *cfgBuilder) startBlock(blk *block) { b.cur = blk }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		join := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.startBlock(thenBlk)
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, exit)
		}
		b.edge(head, body)
		b.pushFrame(loopFrame{label: label, breakTo: exit, continueTo: post})
		b.startBlock(body)
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, post)
		b.startBlock(post)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.startBlock(exit)

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		// The per-iteration key/value bindings happen at the head.
		b.startBlock(head)
		b.add(s)
		b.edge(head, body)
		b.edge(head, exit)
		b.pushFrame(loopFrame{label: label, breakTo: exit, continueTo: head})
		b.startBlock(body)
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, head)
		b.startBlock(exit)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		exit := b.newBlock()
		b.pushFrame(loopFrame{label: label, breakTo: exit, isSwitchSelect: true})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.startBlock(blk)
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, exit)
		}
		b.popFrame()
		// A select with no clauses blocks forever: exit keeps no edges and
		// stays unreachable, which is the right model.
		b.startBlock(exit)

	case *ast.LabeledStmt:
		// Start a fresh block so the label has a well-defined target for
		// goto and labeled break/continue.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.startBlock(target)
		b.labels[s.Label.Name] = &labelInfo{target: target}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(b.cur, f.breakTo)
			}
			b.startBlock(nil)
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(b.cur, f.continueTo)
			}
			b.startBlock(nil)
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.startBlock(nil)
		case token.FALLTHROUGH:
			// Handled by caseClauses via fallthrough detection; as a node in
			// the block it needs no extra edge here (caseClauses adds it).
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.startBlock(nil)

	default:
		// Simple statements: assignments, declarations, expression/send/
		// inc-dec/go/defer statements.
		b.add(s)
	}
}

// caseClauses builds the blocks of a switch or type-switch body.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, _ *block) {
	head := b.cur
	exit := b.newBlock()
	b.pushFrame(loopFrame{label: label, breakTo: exit, isSwitchSelect: true})
	var prev *block // previous clause body, for fallthrough
	var prevFellThrough bool
	hasDefault := false
	for _, c := range list {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		if prevFellThrough {
			b.edge(prev, blk)
		}
		b.startBlock(blk)
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		prev = b.cur
		prevFellThrough = endsInFallthrough(cc.Body)
		if !prevFellThrough {
			b.edge(b.cur, exit)
		}
	}
	b.popFrame()
	if !hasDefault {
		b.edge(head, exit)
	}
	b.startBlock(exit)
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(f loopFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

// findFrame resolves the frame a break/continue targets. continue skips
// switch/select frames.
func (b *cfgBuilder) findFrame(label *ast.Ident, isContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if isContinue && f.isSwitchSelect {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) patchGotos() {
	for _, g := range b.gotos {
		if info, ok := b.labels[g.label]; ok {
			b.edge(g.from, info.target)
		}
	}
}

// dominators lazily computes the dominator sets with the classic iterative
// dataflow: dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds). Unreachable
// blocks keep the full set (vacuously dominated), which is the conservative
// answer for dead code.
func (g *funcCFG) dominators() [][]bool {
	if g.dom != nil {
		return g.dom
	}
	n := len(g.blocks)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		if i == g.entry.index {
			dom[i][i] = true
		} else {
			for j := range dom[i] {
				dom[i][j] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.blocks {
			if blk == g.entry {
				continue
			}
			i := blk.index
			next := make([]bool, n)
			first := true
			for _, p := range blk.preds {
				if first {
					copy(next, dom[p.index])
					first = false
				} else {
					for j := range next {
						next[j] = next[j] && dom[p.index][j]
					}
				}
			}
			if first { // no predecessors: unreachable, keep full set
				continue
			}
			next[i] = true
			for j := range next {
				if next[j] != dom[i][j] {
					dom[i] = next
					changed = true
					break
				}
			}
		}
	}
	g.dom = dom
	return dom
}

// dominates reports whether every path from entry to node b passes through
// node a first: a and b in the same block with a earlier, or a's block
// strictly dominating b's. Nodes not indexed in the CFG (inside nested
// function literals, for instance) are never dominated — the conservative
// answer for ordering claims.
func (g *funcCFG) dominates(a, b ast.Node) bool {
	ba, oka := g.nodeBlock[a]
	bb, okb := g.nodeBlock[b]
	if !oka || !okb {
		return false
	}
	if ba == bb {
		return g.nodeIndex[a] < g.nodeIndex[b]
	}
	return g.dominators()[bb.index][ba.index]
}

// reachability lazily computes the successor-transitive closure:
// reachability()[i][j] holds when a path of at least one edge leads from
// block i to block j (so reach[i][i] means block i lies on a cycle).
func (g *funcCFG) reachability() [][]bool {
	if g.reach != nil {
		return g.reach
	}
	n := len(g.blocks)
	reach := make([][]bool, n)
	for i, blk := range g.blocks {
		reach[i] = make([]bool, n)
		frontier := append([]*block(nil), blk.succs...)
		for len(frontier) > 0 {
			s := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if reach[i][s.index] {
				continue
			}
			reach[i][s.index] = true
			frontier = append(frontier, s.succs...)
		}
	}
	g.reach = reach
	return reach
}

// canReach reports whether control can flow from block node a to block node
// b — that is, some execution runs b after a. Within one block the node
// order decides (later nodes are reachable; earlier ones only when the
// block lies on a cycle). Nodes the CFG did not index are conservatively
// reachable both ways: absence of ordering evidence is not an ordering.
func (g *funcCFG) canReach(a, b ast.Node) bool {
	ba, oka := g.nodeBlock[a]
	bb, okb := g.nodeBlock[b]
	if !oka || !okb {
		return true
	}
	if ba == bb && g.nodeIndex[a] < g.nodeIndex[b] {
		return true
	}
	return g.reachability()[ba.index][bb.index]
}

// blockNodeAt returns the block node lexically containing pos, or nil. A
// node "contains" pos when pos lies in [Pos, End); the innermost (latest
// appended, smallest) match wins because blocks never hold overlapping
// statements except via extracted sub-expressions, which are preferred.
func (g *funcCFG) blockNodeAt(pos token.Pos) ast.Node {
	var best ast.Node
	for n := range g.nodeBlock {
		if n.Pos() <= pos && pos < n.End() {
			if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
				best = n
			}
		}
	}
	return best
}

// --- Reaching definitions ---

// A definition is one assignment (or declaration, inc/dec, range binding,
// address-taken escape, or closure write) of a variable. Entry definitions
// (parameters, receivers, named results) have a nil node.
type definition struct {
	v    *types.Var
	node ast.Node // the block node performing the definition; nil at entry
	// weak definitions (address taken, closure writes) generate without
	// killing: the variable MAY be redefined through the alias.
	weak bool
}

// reachInfo answers "which definitions of v can reach this program point".
type reachInfo struct {
	g    *funcCFG
	defs []*definition
	// in[block index] is the bitset of definitions reaching block entry.
	in [][]bool
	// genAt[node] lists definitions the node generates, killAt the
	// definition indexes it kills (all other defs of the same vars).
	genAt map[ast.Node][]int
}

// reachingDefs runs the classic forward may-analysis over the CFG. The
// declared set of variables is discovered from info; fn's parameters,
// receiver, and named results (params) are defined at entry.
func (g *funcCFG) reachingDefs(info *types.Info, params []*types.Var) *reachInfo {
	r := &reachInfo{g: g, genAt: map[ast.Node][]int{}}
	defIdx := map[*definition]int{}
	byVar := map[*types.Var][]int{}
	addDef := func(d *definition) int {
		i := len(r.defs)
		r.defs = append(r.defs, d)
		defIdx[d] = i
		byVar[d.v] = append(byVar[d.v], i)
		return i
	}
	var entryDefs []int
	for _, p := range params {
		entryDefs = append(entryDefs, addDef(&definition{v: p}))
	}
	// Collect per-node definitions in block order.
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			for _, d := range nodeDefs(info, n) {
				i := addDef(d)
				r.genAt[n] = append(r.genAt[n], i)
			}
		}
	}

	n := len(g.blocks)
	nd := len(r.defs)
	r.in = make([][]bool, n)
	out := make([][]bool, n)
	for i := range r.in {
		r.in[i] = make([]bool, nd)
		out[i] = make([]bool, nd)
	}
	for _, i := range entryDefs {
		r.in[g.entry.index][i] = true
	}

	transfer := func(blk *block, set []bool) {
		for _, node := range blk.nodes {
			for _, di := range r.genAt[node] {
				d := r.defs[di]
				if !d.weak {
					for _, other := range byVar[d.v] {
						set[other] = false
					}
				}
				set[di] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.blocks {
			i := blk.index
			set := make([]bool, nd)
			if blk == g.entry {
				for _, di := range entryDefs {
					set[di] = true
				}
			}
			for _, p := range blk.preds {
				for j, b := range out[p.index] {
					if b {
						set[j] = true
					}
				}
			}
			copy(r.in[i], set)
			transfer(blk, set)
			if !boolsEqual(set, out[i]) {
				copy(out[i], set)
				changed = true
			}
		}
	}
	return r
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// defsReaching returns the definitions of v that can reach the program
// point just before block node at. Returns nil when at is not a block node.
func (r *reachInfo) defsReaching(at ast.Node, v *types.Var) []*definition {
	blk, ok := r.g.nodeBlock[at]
	if !ok {
		return nil
	}
	set := make([]bool, len(r.defs))
	copy(set, r.in[blk.index])
	stop := r.g.nodeIndex[at]
	for _, node := range blk.nodes[:stop] {
		for _, di := range r.genAt[node] {
			d := r.defs[di]
			if !d.weak {
				for j, other := range r.defs {
					if other.v == d.v {
						set[j] = false
					}
				}
			}
			set[di] = true
		}
	}
	var out []*definition
	for i, b := range set {
		if b && r.defs[i].v == v {
			out = append(out, r.defs[i])
		}
	}
	return out
}

// nodeDefs extracts the definitions a single block node performs. Nested
// function literals are not descended into for strong definitions — a
// closure assigning an outer variable is recorded as a weak definition of
// it (the write happens at an unknown time), as is taking its address.
func nodeDefs(info *types.Info, n ast.Node) []*definition {
	var out []*definition
	varOf := func(e ast.Expr) *types.Var {
		ident, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o, ok := info.Defs[ident].(*types.Var); ok {
			return o
		}
		o, _ := info.Uses[ident].(*types.Var)
		return o
	}
	var walk func(node ast.Node, weak bool)
	walk = func(node ast.Node, weak bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				// Closure writes are weak defs of the outer variables.
				walk(x.Body, true)
				return false
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if v := varOf(lhs); v != nil {
						out = append(out, &definition{v: v, node: n, weak: weak})
					}
				}
			case *ast.IncDecStmt:
				if v := varOf(x.X); v != nil {
					out = append(out, &definition{v: v, node: n, weak: weak})
				}
			case *ast.ValueSpec:
				for _, name := range x.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out = append(out, &definition{v: v, node: n, weak: weak})
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if v := varOf(x.X); v != nil {
						out = append(out, &definition{v: v, node: n, weak: true})
					}
				}
			case *ast.RangeStmt:
				if v := varOf(x.Key); v != nil {
					out = append(out, &definition{v: v, node: n, weak: weak})
				}
				if x.Value != nil {
					if v := varOf(x.Value); v != nil {
						out = append(out, &definition{v: v, node: n, weak: weak})
					}
				}
				// Only the header bindings belong to this node; the body's
				// statements are separate block nodes.
				if x.X != nil {
					walk(x.X, weak)
				}
				return false
			}
			return true
		})
	}
	// Compound statements contribute only their header: their inner
	// statements are distinct block nodes walked on their own.
	switch s := n.(type) {
	case *ast.RangeStmt:
		walk(s, false)
	case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
		// Never appended as block nodes (their parts are); nothing to do.
	default:
		walk(n, false)
	}
	return out
}

// funcParams collects the receiver, parameters, and named results of a
// function declaration as entry-defined variables.
func funcParams(info *types.Info, ft *ast.FuncType, recv *ast.FieldList) []*types.Var {
	var out []*types.Var
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
	}
	collect(recv)
	collect(ft.Params)
	collect(ft.Results)
	return out
}
