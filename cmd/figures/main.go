// Command figures regenerates every figure and table analogue of the paper
// (experiments E1-E10 of DESIGN.md) and writes the report to stdout, or to a
// file with -o. EXPERIMENTS.md embeds this output.
//
// Usage:
//
//	figures [-o report.txt] [-only E5]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"worksteal/internal/experiments"
)

func main() {
	out := flag.String("o", "", "write the report to this file instead of stdout")
	only := flag.String("only", "", "run a single experiment (E1..E14), e.g. -only E5")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch strings.ToUpper(*only) {
	case "":
		experiments.All(w)
	case "E1":
		experiments.E1Figure1(w)
	case "E2":
		experiments.E2Greedy(w)
	case "E3":
		experiments.E3LowerBound(w)
	case "E4":
		experiments.E4GreedyBound(w)
	case "E5":
		experiments.E5Dedicated(w)
	case "E6":
		experiments.E6Adversaries(w)
	case "E7":
		pts := experiments.E5Dedicated(io.Discard)
		pts = append(pts, experiments.E6Adversaries(io.Discard)...)
		experiments.E7Fit(w, pts)
	case "E8":
		experiments.E8Ablations(w)
	case "E9":
		experiments.E9Potential(w)
	case "E10":
		experiments.E10Structural(w)
	case "E11":
		experiments.E11RelatedWork(w)
	case "E12":
		experiments.E12SpeedupVsPA(w)
	case "E13":
		experiments.E13Schedulers(w)
	case "E14":
		experiments.E14Space(w)
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
