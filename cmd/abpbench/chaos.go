package main

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"worksteal/internal/fault"
	"worksteal/internal/sched"
	"worksteal/internal/table"
)

// chaosPoint is the failpoint the sweep freezes workers at. Loop-level
// steals only, so the root task helping inside Group.Wait can never freeze
// itself — it is the one that must stay alive to resume the others.
const chaosPoint = "sched.loop.beforeSteal"

var chaosSink atomic.Uint64

func chaosSpin(n int) {
	x := uint64(n) | 1
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	chaosSink.Store(x)
}

// chaos is the native fault-injection experiment (the dynamic mirror of the
// simulator's adversary experiment E8). It prints the compiled-in failpoint
// catalog, arms any user-supplied fault spec (-faults flag or the
// ABP_FAULTS environment variable), and runs a throughput sweep against the
// number of worker goroutines suspended indefinitely mid-steal: the paper's
// non-blocking claim, quantified — k frozen workers cost at most their k
// processors and never wedge the rest.
func chaos(reps int, spec string, showStats bool) {
	fmt.Println("registered failpoints (arm via -faults or ABP_FAULTS, grammar in internal/fault/spec.go):")
	for _, pt := range fault.Catalog() {
		fmt.Printf("  %-28s %s\n", pt.Name, pt.Desc)
	}
	fmt.Println()

	if spec == "" {
		spec = os.Getenv(fault.EnvVar)
	}
	if spec != "" {
		if err := fault.EnableSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "abpbench: %v\n", err)
			os.Exit(2)
		}
		defer fault.Reset()
		fmt.Printf("faults armed: %s\n\n", spec)
	}

	const workers = 8
	const tasks = 4000
	const taskWork = 2000
	tb := table.New(fmt.Sprintf("chaos: throughput vs workers frozen mid-steal (workers=%d, tasks=%d, GOMAXPROCS=%d)",
		workers, tasks, runtime.GOMAXPROCS(0)),
		"frozen", "time", "vs 0 frozen", "tasks/ms")
	var base time.Duration
	for _, frozen := range []int{0, 1, 2, 4, 7} {
		p := sched.New(sched.Config{Workers: workers})
		var best time.Duration
		for r := 0; r < reps; r++ {
			if frozen > 0 {
				fault.Enable(chaosPoint, fault.Rule{Action: fault.ActionSuspend, Times: frozen})
			}
			start := time.Now()
			p.Run(func(w *sched.Worker) {
				g := sched.NewGroup()
				for i := 0; i < tasks; i++ {
					g.Spawn(w, func(*sched.Worker) { chaosSpin(taskWork) })
				}
				g.Wait(w)
				// Every task is done; release the frozen workers so the run
				// can terminate.
				fault.Resume(chaosPoint)
			})
			d := time.Since(start)
			fault.Disable(chaosPoint)
			if r == 0 || d < best {
				best = d
			}
		}
		if frozen == 0 {
			base = best
		}
		tb.Row(frozen, best.Round(time.Microsecond), float64(best)/float64(base),
			float64(tasks)/(float64(best)/float64(time.Millisecond)))
		if showStats {
			fmt.Printf("-- stats: frozen=%d\n%s", frozen, p.Stats())
		}
	}
	tb.Render(os.Stdout)
	fmt.Println("A suspended worker costs at most its own processor: the non-blocking deque")
	fmt.Println("lets the rest steal around it (§3.2/§6; E8 is the simulator's version).")
	fmt.Println("The mutex-deque control lives in internal/sched's chaos tests: the same")
	fmt.Println("adversary freezing a thief inside the locked PopTop wedges the whole pool.")
}
