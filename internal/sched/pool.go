// Package sched is the production side of the reproduction: a work-stealing
// task scheduler for Go built on the paper's non-blocking ABP deque
// (package deque). Each worker is one of the paper's "processes": it owns a
// deque, pops work from the bottom, and when idle yields the processor and
// steals from the top of a uniformly random victim's deque — exactly the
// Figure 3 scheduling loop, with Go's runtime playing the kernel.
//
// Two APIs are provided:
//
//   - a task API (Spawn, Fork/Join futures, ParallelFor/Reduce) in the style
//     of the Hood threads library the authors built on this scheduler, and
//   - a dag runner (RunGraph) that executes an explicit computation dag with
//     known work and critical-path length, for benchmark experiments that
//     check the paper's T1/P_A + Tinf*P/P_A bound on real hardware.
//
// For the paper's ablations, the pool can be configured with a mutex-guarded
// deque instead of the non-blocking one, and with yields disabled.
package sched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"worksteal/internal/deque"
)

// DequeKind selects the deque implementation workers use.
type DequeKind uint8

const (
	// DequeABP is the paper's non-blocking deque (the default).
	DequeABP DequeKind = iota
	// DequeMutex is the blocking baseline for ablation benchmarks.
	DequeMutex
	// DequeChaseLev is the unbounded growable successor design (Chase and
	// Lev, SPAA 2005) — the paper's natural extension: no capacity bound,
	// no tag needed. Spawns never fall back to inline execution.
	DequeChaseLev
)

// Config configures a Pool.
type Config struct {
	// Workers is the number of worker goroutines (the paper's P processes).
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// Deque selects the deque implementation (default DequeABP).
	Deque DequeKind
	// DequeCapacity bounds each worker's deque; when a push finds the deque
	// full the task runs inline, which preserves correctness and depth-first
	// order at the cost of stealable parallelism. Defaults to
	// deque.DefaultCapacity.
	DequeCapacity int
	// DisableYield removes the runtime.Gosched call between steal attempts
	// (the paper's yield ablation). Only for experiments: under
	// multiprogramming (more workers than GOMAXPROCS) disabling yields lets
	// spinning thieves starve workers that hold all the work.
	DisableYield bool
	// Seed seeds victim selection; 0 means a fixed default.
	Seed int64
	// Pin calls runtime.LockOSThread in each worker, approximating the
	// paper's one-process-per-kernel-thread model.
	Pin bool
	// RoundRobinVictim replaces uniformly random victim selection with a
	// deterministic rotation (the design-choice-5 ablation; the paper's
	// analysis requires random victims).
	RoundRobinVictim bool
}

// Task is the unit of work handled by the scheduler.
type Task struct {
	fn func(*Worker)
}

// Stats aggregates per-run scheduler counters.
type Stats struct {
	TasksRun      int64
	Spawns        int64
	InlineRuns    int64 // spawns executed inline because a deque was full
	Steals        int64
	StealAttempts int64
	Yields        int64
}

// Pool is a work-stealing scheduler instance. Create one with New, then use
// Run (possibly several times in sequence). A Pool must not be used by two
// Runs concurrently.
type Pool struct {
	cfg     Config
	workers []*Worker
	pending atomic.Int64
	stopped atomic.Bool
	wg      sync.WaitGroup

	// Panic plumbing: the first panicking task aborts the run; Run re-panics
	// with its value after all workers exit. abort is closed to wake any
	// Join parked on a future that will never complete.
	panicOnce sync.Once
	panicVal  any
	abort     chan struct{}
}

// Worker is the execution context passed to every task; it identifies the
// worker goroutine running the task and provides the spawning operations.
type Worker struct {
	pool *Pool
	id   int
	dq   deque.Dequer[Task]
	rng  *rand.Rand
	rr   int // round-robin victim cursor

	tasksRun      int64
	spawns        int64
	inlineRuns    int64
	steals        int64
	stealAttempts int64
	yields        int64
}

// New builds a pool. The zero Config is valid.
func New(cfg Config) *Pool {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", cfg.Workers))
	}
	if cfg.DequeCapacity == 0 {
		cfg.DequeCapacity = deque.DefaultCapacity
	}
	if cfg.DequeCapacity < 1 {
		panic(fmt.Sprintf("sched: deque capacity %d", cfg.DequeCapacity))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	p := &Pool{cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		var dq deque.Dequer[Task]
		switch cfg.Deque {
		case DequeMutex:
			dq = deque.NewMutexWithCapacity[Task](cfg.DequeCapacity)
		case DequeChaseLev:
			dq = deque.NewChaseLev[Task]()
		default:
			dq = deque.NewWithCapacity[Task](cfg.DequeCapacity)
		}
		p.workers = append(p.workers, &Worker{
			pool: p,
			id:   i,
			dq:   dq,
			rng:  rand.New(rand.NewSource(seed + int64(i)*1_000_003)),
		})
	}
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Run executes root on worker 0 and returns once root and every task
// transitively spawned from it have completed.
// If a task panics, the run aborts: remaining workers stop, and Run
// re-panics with the original value (tasks already stolen may still finish;
// tasks still in deques are dropped).
func (p *Pool) Run(root func(*Worker)) {
	p.stopped.Store(false)
	p.panicOnce = sync.Once{}
	p.panicVal = nil
	p.abort = make(chan struct{})
	p.pending.Store(1)
	p.workers[0].dq.PushBottom(&Task{fn: root})
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		go w.loop()
	}
	p.wg.Wait()
	if p.panicVal != nil {
		panic(p.panicVal)
	}
}

// recordPanic notes the first task panic and aborts the run.
func (p *Pool) recordPanic(v any) {
	p.panicOnce.Do(func() {
		p.panicVal = v
		p.stopped.Store(true)
		close(p.abort)
	})
}

// Stats sums the per-worker counters accumulated so far (across runs).
func (p *Pool) Stats() Stats {
	var s Stats
	for _, w := range p.workers {
		s.TasksRun += w.tasksRun
		s.Spawns += w.spawns
		s.InlineRuns += w.inlineRuns
		s.Steals += w.steals
		s.StealAttempts += w.stealAttempts
		s.Yields += w.yields
	}
	return s
}

// loop is the Figure 3 scheduling loop: pop the bottom of the local deque;
// when empty, yield and steal from the top of a random victim.
func (w *Worker) loop() {
	defer w.pool.wg.Done()
	if w.pool.cfg.Pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for !w.pool.stopped.Load() {
		t := w.dq.PopBottom()
		if t == nil {
			if !w.pool.cfg.DisableYield {
				w.yields++
				runtime.Gosched()
			}
			t = w.stealOnce()
			if t == nil {
				continue
			}
		}
		w.exec(t)
	}
}

// stealOnce performs one steal attempt against a victim chosen per the
// configured policy (uniformly random by default, Figure 3 line 16).
func (w *Worker) stealOnce() *Task {
	n := len(w.pool.workers)
	if n == 1 {
		return nil
	}
	var v int
	if w.pool.cfg.RoundRobinVictim {
		w.rr++
		v = w.rr % (n - 1)
	} else {
		v = w.rng.Intn(n - 1)
	}
	if v >= w.id {
		v++
	}
	w.stealAttempts++
	t := w.pool.workers[v].dq.PopTop()
	if t != nil {
		w.steals++
	}
	return t
}

// exec runs a task and performs termination accounting. A panicking task
// aborts the whole run; the panic value surfaces from Pool.Run.
func (w *Worker) exec(t *Task) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
		}
		w.tasksRun++
		if w.pool.pending.Add(-1) == 0 {
			w.pool.stopped.Store(true)
		}
	}()
	t.fn(w)
}

// ID returns the worker's index in [0, Workers).
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Spawn schedules fn to run asynchronously. It pushes the task onto the
// bottom of the caller's deque, where it is available to thieves; if the
// deque is full the task runs inline instead (correct, just not stealable).
func (w *Worker) Spawn(fn func(*Worker)) {
	w.spawns++
	w.pool.pending.Add(1)
	t := &Task{fn: fn}
	if !w.dq.PushBottom(t) {
		w.inlineRuns++
		w.exec(t)
	}
}

// tryGetTask pops local work, or failing that makes one steal attempt.
// Used by Future.Join to make progress while waiting.
func (w *Worker) tryGetTask() *Task {
	if t := w.dq.PopBottom(); t != nil {
		return t
	}
	return w.stealOnce()
}

// anyVisibleWork reports whether any deque in the pool appears non-empty.
// A false return together with an incomplete future means the future's task
// is currently running on some worker, so blocking is safe.
func (w *Worker) anyVisibleWork() bool {
	for _, o := range w.pool.workers {
		if o.dq.Len() > 0 {
			return true
		}
	}
	return false
}
