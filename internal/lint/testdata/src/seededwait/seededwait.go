// Package seededwait permanently replays the two liveness bugs this
// repository actually shipped, in the miniature Pool/Worker shape the
// other seeded fixtures use. If abpwait ever stops flagging either, the
// analyzer has regressed below the bar that history set:
//
//   - PR-1 lost wakeup: a parked worker blocks on its per-worker token
//     channel, but no producer path deposits a token — work submitted
//     while every worker slept was never executed. (The production fix is
//     signalWork's select-with-default send plus the Dekker re-check;
//     lifecycle.go.)
//   - PR-6 invisible nap: backoff slept with a bare time.Sleep, so a
//     napping worker was invisible to signalWork and a submission
//     arriving mid-nap silently waited out the remaining sleep — up to
//     ~127µs of wake latency. (The production fix selects on the wake
//     token with a timer case; park in lifecycle.go.)
package seededwait

import (
	"sync/atomic"
	"time"
)

// Pool is the PR-1-era scheduler skeleton.
type Pool struct {
	workers []*Worker
	stopped atomic.Bool
}

// Worker parks on a token channel nobody fills.
type Worker struct {
	pool   *Pool
	parkCh chan struct{}
	parked atomic.Bool
}

// Start launches the worker fleet.
func (p *Pool) Start() {
	for _, w := range p.workers {
		go w.loop()
	}
}

func (w *Worker) loop() {
	fails := 0
	for !w.pool.stopped.Load() {
		if w.steal() {
			fails = 0
			continue
		}
		fails++
		if fails < 8 {
			w.napBackoff(time.Microsecond << fails)
			continue
		}
		w.park()
	}
}

func (w *Worker) steal() bool { return false }

// park is the PR-1 bug: the worker publishes its parked flag and blocks
// on its token channel — but no send or close of parkCh exists anywhere,
// so the wakeup this wait needs can never be delivered.
func (w *Worker) park() {
	w.parked.Store(true)
	<-w.parkCh // want `naked wait`
	w.parked.Store(false)
}

// napBackoff is the PR-6 bug: the backoff nap is a bare sleep inside the
// worker's polling loop, invisible to any signaller for its full length.
func (w *Worker) napBackoff(d time.Duration) {
	time.Sleep(d) // want `missed signal`
}
