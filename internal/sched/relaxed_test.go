package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"worksteal/internal/workload"
)

// The RelaxedAtomics tests exercise every proof-gated downgrade — the
// owner-side deque reloads (deque.LoadOwner) and the per-worker counter
// AddOwners — under load that forces steals, parks, and injector traffic.
// Run under -race they are the dynamic check backing abporder's static
// owner proofs: if a "relaxed" site were ever not owner-private, the race
// detector sees the plain access conflict immediately.

func TestRelaxedAtomicsSpawnTree(t *testing.T) {
	for _, kind := range []DequeKind{DequeABP, DequeChaseLev} {
		p := New(Config{Workers: 4, Deque: kind, RelaxedAtomics: true})
		var count atomic.Int64
		var spawnTree func(w *Worker, depth int)
		spawnTree = func(w *Worker, depth int) {
			count.Add(1)
			if depth == 0 {
				return
			}
			w.Spawn(func(w2 *Worker) { spawnTree(w2, depth-1) })
			w.Spawn(func(w2 *Worker) { spawnTree(w2, depth-1) })
		}
		p.Run(func(w *Worker) { spawnTree(w, 10) })
		if want := int64(1<<11 - 1); count.Load() != want {
			t.Fatalf("deque=%d: count = %d, want %d", kind, count.Load(), want)
		}
		if s := p.Stats(); s.TasksRun != 1<<11-1 {
			t.Fatalf("deque=%d: TasksRun = %d, want %d", kind, s.TasksRun, 1<<11-1)
		}
	}
}

func TestRelaxedAtomicsServe(t *testing.T) {
	p := New(Config{Workers: 4, RelaxedAtomics: true})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Serve(ctx) }()
	waitFor(t, 10*time.Second, "pool to start serving", p.serving.Load)
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h, err := p.Submit(func(w *Worker) {
					w.Spawn(func(*Worker) { total.Add(1) })
					total.Add(1)
				})
				if err != nil {
					continue // not serving yet, or overloaded: both fine here
				}
				if err := h.Wait(); err != nil {
					t.Errorf("submission failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Serve returned %v, want context.Canceled", err)
	}
}

func TestRelaxedAtomicsGraphRun(t *testing.T) {
	g := workload.FibDag(16)
	for _, kind := range []DequeKind{DequeABP, DequeChaseLev} {
		res := RunGraph(GraphConfig{
			Graph:          g,
			Workers:        4,
			Deque:          kind,
			NodeWork:       32,
			RelaxedAtomics: true,
		})
		if res.NodesExecuted != int64(g.NumNodes()) {
			t.Fatalf("deque=%d: executed %d of %d nodes", kind, res.NodesExecuted, g.NumNodes())
		}
	}
}
