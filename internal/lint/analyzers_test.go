package lint

import (
	"strings"
	"testing"
)

func TestAtomicMix(t *testing.T)   { runAnalyzerTest(t, AtomicMix, "atomicmix") }
func TestOwnerOnly(t *testing.T)   { runAnalyzerTest(t, OwnerOnly, "owneronly") }
func TestNonBlocking(t *testing.T) { runAnalyzerTest(t, NonBlocking, "nonblocking") }
func TestCASLoop(t *testing.T)     { runAnalyzerTest(t, CASLoop, "casloop") }
func TestOwnerEscape(t *testing.T) { runAnalyzerTest(t, OwnerEscape, "ownerescape") }
func TestHandshake(t *testing.T)   { runAnalyzerTest(t, Handshake, "handshake") }
func TestMustCheck(t *testing.T)   { runAnalyzerTest(t, MustCheck, "mustcheck") }
func TestTagABA(t *testing.T)      { runAnalyzerTest(t, TagABA, "tagaba") }
func TestAbpRace(t *testing.T)     { runAnalyzerTest(t, AbpRace, "abprace") }
func TestAbpOrder(t *testing.T)    { runAnalyzerTest(t, AbpOrder, "abporder") }
func TestAbpLayout(t *testing.T)   { runAnalyzerTest(t, AbpLayout, "abplayout") }
func TestAbpWait(t *testing.T)     { runAnalyzerTest(t, AbpWait, "abpwait") }

// TestSeededWait replays the two liveness bugs this repository shipped —
// the PR-1 lost wakeup (a parked worker's token channel with no sender)
// and the PR-6 invisible backoff nap (a bare time.Sleep a signal cannot
// cut short) — and asserts abpwait reports both classes. The per-class
// counts keep the fixture from degrading into a vacuously passing one:
// if either reaches zero, that historical bug shape would ship unflagged
// again.
func TestSeededWait(t *testing.T) {
	runAnalyzerTest(t, AbpWait, "seededwait")

	pkgs, err := NewLoader().Load("testdata/src/seededwait", ".")
	if err != nil {
		t.Fatal(err)
	}
	naked, missed := 0, 0
	for _, pkg := range pkgs {
		diags, err := Run(AbpWait, pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			switch {
			case strings.Contains(d.Message, "naked wait"):
				naked++
			case strings.Contains(d.Message, "missed signal"):
				missed++
			}
			if !strings.Contains(d.Message, "goroutine (*Worker).loop") {
				t.Errorf("finding not attributed to the worker root:\n%s", d.Message)
			}
		}
	}
	if naked == 0 {
		t.Fatal("abpwait reported no naked wait on the seeded senderless parkCh: the PR-1 lost-wakeup class would ship again")
	}
	if missed == 0 {
		t.Fatal("abpwait reported no missed signal on the seeded bare-sleep backoff: the PR-6 invisible-nap class would ship again")
	}
}

// TestSeededLayout replays the pre-PR-8 Chase-Lev layout — the
// thief-CAS'd top packed against the owner-stored bottom and the ring
// pointer — and asserts abplayout flags the false sharing. The explicit
// count below keeps the fixture from degrading into a vacuously passing
// one: if this reports nothing, the padding in internal/deque/chaselev.go
// is no longer guarded against reverts.
func TestSeededLayout(t *testing.T) {
	runAnalyzerTest(t, AbpLayout, "seededlayout")

	pkgs, err := NewLoader().Load("testdata/src/seededlayout", ".")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := Run(AbpLayout, pkg)
		if err != nil {
			t.Fatal(err)
		}
		total += len(diags)
	}
	if total == 0 {
		t.Fatal("abplayout reported nothing on the seeded pre-PR Chase-Lev layout: the top/bottom false-sharing class would ship again")
	}
}

// TestSeededPR1Bug replays, in miniature, the discarded-PushBottom bug that
// PR 1 fixed in sched.(*Pool).submitRoot and asserts that mustcheck now
// catches that bug class mechanically. The // want assertions run through
// the standard harness; the explicit check below additionally guarantees
// the fixture never degrades into an empty (vacuously passing) one.
func TestSeededPR1Bug(t *testing.T) {
	runAnalyzerTest(t, MustCheck, "seeded")

	pkgs, err := NewLoader().Load("testdata/src/seeded", ".")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := Run(MustCheck, pkg)
		if err != nil {
			t.Fatal(err)
		}
		total += len(diags)
	}
	if total == 0 {
		t.Fatal("mustcheck reported nothing on the seeded PR-1 bug: the submitRoot deadlock class would ship again")
	}
}

// TestSeededRace replays the PR 1 Pool.Stats plain-counter race and
// asserts abprace reports it with both goroutine provenance chains: the
// worker loop's call chain and the external caller's. The explicit checks
// below keep the fixture from degrading into a vacuously passing one.
func TestSeededRace(t *testing.T) {
	runAnalyzerTest(t, AbpRace, "seededrace")

	pkgs, err := NewLoader().Load("testdata/src/seededrace", ".")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := Run(AbpRace, pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			total++
			for _, wantSub := range []string{
				"goroutine (*Worker).loop",
				"(*Worker).loop -> (*Worker).record",
				"external caller",
				"(*Pool).Stats",
			} {
				if !strings.Contains(d.Message, wantSub) {
					t.Errorf("finding lacks provenance %q:\n%s", wantSub, d.Message)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("abprace reported nothing on the seeded Pool.Stats race: the PR-1 stats bug class would ship again")
	}
}

// TestSeededOrder seeds the over-synchronization blind spot abporder was
// built to close: a gratuitous seq-cst load on a worker hot path whose
// only store is ordered before every fork. abprace must stay SILENT (both
// sides are atomic, which its pair rules accept by definition) while
// abporder must flag the declaration — the two assertions together pin
// the division of labor between the analyzers.
func TestSeededOrder(t *testing.T) {
	runAnalyzerTest(t, AbpOrder, "seededorder")

	pkgs, err := NewLoader().Load("testdata/src/seededorder", ".")
	if err != nil {
		t.Fatal(err)
	}
	orderFindings := 0
	for _, pkg := range pkgs {
		diags, err := Run(AbpOrder, pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			orderFindings++
			if !strings.Contains(d.Message, "plain access suffices") {
				t.Errorf("unexpected abporder finding: %s", d.Message)
			}
		}
		raceDiags, err := Run(AbpRace, pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range raceDiags {
			t.Errorf("abprace should accept the all-atomic fixture, got: %s", d.Message)
		}
	}
	if orderFindings == 0 {
		t.Fatal("abporder reported nothing on the seeded over-synchronization: the gratuitous hot-path seq-cst class would ship again")
	}
}

// TestSuiteCleanOnOwnPackage dogfoods the loader and the full suite on the
// lint package itself: zero findings expected.
func TestSuiteCleanOnOwnPackage(t *testing.T) {
	pkgs, err := NewLoader().Load(".", ".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			diags, err := Run(a, pkg)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, pkg.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}
