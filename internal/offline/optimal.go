package offline

import (
	"fmt"

	"worksteal/internal/dag"
)

// This file implements exhaustive off-line scheduling for tiny instances.
// Section 2 of the paper notes that the off-line decision problem is
// NP-complete [Ullman 1975], that greedy schedules are within a factor of
// two of optimal, and asserts (without proof) that "for any kernel
// schedule, some greedy execution schedule is optimal". OptimalLength and
// BestGreedyLength make that assertion checkable: tests verify they agree
// on every random small instance.
//
// Both searches are exponential in the number of nodes and are guarded by a
// node-count limit.

// maxOptimalNodes bounds the exhaustive searches (bitmask state).
const maxOptimalNodes = 18

// searchSpace precomputes per-node predecessor/successor masks.
type searchSpace struct {
	g        *dag.Graph
	n        int
	predMask []uint32
	memo     map[uint64]int
	kernel   Kernel
	maxSteps int
}

func newSearchSpace(g *dag.Graph, k Kernel, maxSteps int) *searchSpace {
	n := g.NumNodes()
	if n > maxOptimalNodes {
		panic(fmt.Sprintf("offline: exhaustive search limited to %d nodes, got %d", maxOptimalNodes, n))
	}
	s := &searchSpace{g: g, n: n, predMask: make([]uint32, n),
		memo: make(map[uint64]int), kernel: k, maxSteps: maxSteps}
	for i := 0; i < n; i++ {
		for _, e := range g.Preds(dag.NodeID(i)) {
			s.predMask[i] |= 1 << uint(e.From)
		}
	}
	return s
}

// ready returns the bitmask of ready nodes given the executed mask.
func (s *searchSpace) ready(mask uint32) uint32 {
	var r uint32
	for i := 0; i < s.n; i++ {
		bit := uint32(1) << uint(i)
		if mask&bit == 0 && mask&s.predMask[i] == s.predMask[i] {
			r |= bit
		}
	}
	return r
}

// popcount counts set bits.
func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

const unreachable = 1 << 30

// solve returns the minimum number of additional steps needed to finish
// from the executed-set mask at step t. greedyOnly restricts the search to
// maximal-size subsets (greedy schedules).
func (s *searchSpace) solve(mask uint32, t int, greedyOnly bool) int {
	full := uint32(1)<<uint(s.n) - 1
	if mask == full {
		return 0
	}
	if t >= s.maxSteps {
		return unreachable
	}
	key := uint64(mask)<<32 | uint64(uint32(t))
	if v, ok := s.memo[key]; ok {
		return v
	}
	s.memo[key] = unreachable // cycle guard (t always advances, so unused)
	p := s.kernel.ProcsAt(t)
	r := s.ready(mask)
	nready := popcount(r)
	take := p
	if nready < take {
		take = nready
	}
	best := unreachable
	if take == 0 {
		best = s.addStep(s.solve(mask, t+1, greedyOnly))
	} else {
		// Enumerate subsets of the ready set. For greedy schedules only
		// subsets of exactly `take` nodes are allowed; the optimal search
		// also tries smaller subsets (and the empty one), which the
		// dominance argument says cannot help — the tests confirm it.
		lo := 0
		if greedyOnly {
			lo = take
		}
		for sub := r; ; sub = (sub - 1) & r {
			c := popcount(sub)
			if c <= take && c >= lo {
				if v := s.addStep(s.solve(mask|sub, t+1, greedyOnly)); v < best {
					best = v
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	s.memo[key] = best
	return best
}

func (s *searchSpace) addStep(v int) int {
	if v >= unreachable {
		return unreachable
	}
	return v + 1
}

// OptimalLength returns the minimum possible execution-schedule length for
// g under kernel k, searching all schedules up to maxSteps. It returns
// (length, true), or (0, false) if no schedule of at most maxSteps exists.
// Exponential: g must have at most 18 nodes.
func OptimalLength(g *dag.Graph, k Kernel, maxSteps int) (int, bool) {
	s := newSearchSpace(g, k, maxSteps)
	v := s.solve(0, 0, false)
	if v >= unreachable {
		return 0, false
	}
	return v, true
}

// BestGreedyLength returns the minimum length over greedy execution
// schedules (at each step, executes exactly min(p_t, ready) nodes, but may
// choose WHICH ready nodes). Same limits as OptimalLength.
func BestGreedyLength(g *dag.Graph, k Kernel, maxSteps int) (int, bool) {
	s := newSearchSpace(g, k, maxSteps)
	v := s.solve(0, 0, true)
	if v >= unreachable {
		return 0, false
	}
	return v, true
}

// WorstGreedyLength returns the maximum length over greedy execution
// schedules: the most unlucky choice of WHICH ready nodes to run at each
// step. Theorem 2 bounds even this worst case by T1/P_A + Tinf*P/P_A.
// Same size limits as OptimalLength.
func WorstGreedyLength(g *dag.Graph, k Kernel, maxSteps int) (int, bool) {
	s := newSearchSpace(g, k, maxSteps)
	v := s.solveWorst(0, 0)
	if v >= unreachable {
		return 0, false
	}
	return v, true
}

// solveWorst mirrors solve but maximizes over maximal-size subsets.
func (s *searchSpace) solveWorst(mask uint32, t int) int {
	full := uint32(1)<<uint(s.n) - 1
	if mask == full {
		return 0
	}
	if t >= s.maxSteps {
		return unreachable
	}
	key := uint64(mask)<<32 | uint64(uint32(t)) | 1<<63
	if v, ok := s.memo[key]; ok {
		return v
	}
	p := s.kernel.ProcsAt(t)
	r := s.ready(mask)
	take := p
	if n := popcount(r); n < take {
		take = n
	}
	worst := 0
	if take == 0 {
		worst = s.addStep(s.solveWorst(mask, t+1))
	} else {
		for sub := r; ; sub = (sub - 1) & r {
			if popcount(sub) == take {
				if v := s.addStep(s.solveWorst(mask|sub, t+1)); v > worst {
					worst = v
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	s.memo[key] = worst
	return worst
}
