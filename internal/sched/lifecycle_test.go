package sched

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"worksteal/internal/deque"
)

// A panic-aborted run drops its un-run tasks; the next Run must drain
// them, or they execute in (and decrement the pending counter of) the
// wrong run. Workers=1 makes it deterministic: with no thief, every
// spawned task is still in worker 0's deque when the root panics.
func TestPoolReuseAfterPanicDropsStaleTasks(t *testing.T) {
	p := New(Config{Workers: 1})
	var stale atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		p.Run(func(w *Worker) {
			for i := 0; i < 100; i++ {
				w.Spawn(func(*Worker) { stale.Add(1) })
			}
			panic("abort mid-run")
		})
	}()
	ranInAbortedRun := stale.Load()

	var count atomic.Int64
	for round := 0; round < 3; round++ {
		p.Run(func(w *Worker) {
			ParallelFor(w, 0, 50, 4, func(int) { count.Add(1) })
		})
	}
	if count.Load() != 150 {
		t.Fatalf("post-panic runs executed %d of 150 tasks", count.Load())
	}
	if got := stale.Load(); got != ranInAbortedRun {
		t.Fatalf("%d stale tasks from the aborted run executed in later runs", got-ranInAbortedRun)
	}
	if s := p.Stats(); s.TasksDropped != 100 {
		t.Fatalf("TasksDropped = %d, want 100", s.TasksDropped)
	}
}

// rejectFirstPush wraps a deque and refuses exactly one PushBottom,
// simulating a full deque at root-submission time.
type rejectFirstPush struct {
	deque.Dequer[Task]
	rejected atomic.Bool
}

func (r *rejectFirstPush) PushBottom(t *Task) bool {
	if r.rejected.CompareAndSwap(false, true) {
		return false
	}
	return r.Dequer.PushBottom(t)
}

// Run used to ignore PushBottom's boolean for the root task; a refusal
// left pending stuck at 1 and wg.Wait deadlocked. The handoff fallback
// must run the root anyway.
func TestRootPushRefusalFallsBackToHandoff(t *testing.T) {
	p := New(Config{Workers: 2})
	p.workers[0].dq = &rejectFirstPush{Dequer: p.workers[0].dq}
	var count atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(func(w *Worker) {
			ParallelFor(w, 0, 20, 2, func(int) { count.Add(1) })
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after a refused root push")
	}
	if count.Load() != 20 {
		t.Fatalf("root ran %d of 20 iterations", count.Load())
	}
}

// Stats must be callable while a run is in flight (the counters are
// atomics); under -race this test fails if any counter is a plain int64.
func TestStatsConcurrentWithRun(t *testing.T) {
	p := New(Config{Workers: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := p.Stats()
				if s.Steals > s.StealAttempts {
					t.Error("steals exceed attempts in a mid-run snapshot")
					return
				}
			}
		}
	}()
	for i := 0; i < 3; i++ {
		p.Run(func(w *Worker) { _ = fibPar(w, 18, 5) })
	}
	close(stop)
	wg.Wait()
}

// While one worker runs a long serial task, the rest must park rather
// than spin: a spinning worker makes millions of steal attempts per
// second, a parked one makes roughly parkThreshold + backoffSteps.
func TestParkedWorkersDoNotSpin(t *testing.T) {
	p := New(Config{Workers: 4})
	p.Run(func(w *Worker) { time.Sleep(50 * time.Millisecond) })
	s := p.Stats()
	if s.Parks == 0 {
		t.Fatal("no worker parked during a 50ms idle window")
	}
	if s.StealAttempts > 100_000 {
		t.Fatalf("%d steal attempts during an idle run: workers are spinning, not parking", s.StealAttempts)
	}
	if s.BackoffNanos == 0 {
		t.Fatal("no backoff recorded before parking")
	}
}

// Spawning after the other workers have parked must wake them and the
// spawned work must still all run.
func TestParkedWorkersWakeForNewWork(t *testing.T) {
	p := New(Config{Workers: 4})
	var count atomic.Int64
	p.Run(func(w *Worker) {
		time.Sleep(50 * time.Millisecond) // every other worker parks
		for i := 0; i < 100; i++ {
			w.Spawn(func(*Worker) {
				time.Sleep(time.Millisecond)
				count.Add(1)
			})
		}
	})
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks spawned after workers parked", count.Load())
	}
	s := p.Stats()
	if s.Parks == 0 {
		t.Fatal("no worker parked before the spawn burst")
	}
	if s.Wakes == 0 {
		t.Fatal("no parked worker was woken by Spawn")
	}
}

// DisableParking preserves the paper's pure spinning loop for ablations.
func TestDisableParkingNeverParks(t *testing.T) {
	p := New(Config{Workers: 4, DisableParking: true})
	p.Run(func(w *Worker) { time.Sleep(5 * time.Millisecond) })
	if s := p.Stats(); s.Parks != 0 || s.BackoffNanos != 0 {
		t.Fatalf("parks=%d backoff=%d with DisableParking", s.Parks, s.BackoffNanos)
	}
}

// A joiner blocked on f.ch when another task panics must surface
// poolAbortedError, and parked workers must wake on the abort so Run
// returns. The channel handshake makes the schedule deterministic: the
// forked task is guaranteed stolen, the joiner guaranteed blocked.
func TestJoinAbortSurfacesWhileWorkersParked(t *testing.T) {
	p := New(Config{Workers: 4})
	var recovered any
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recovered = recover() }()
		p.Run(func(w *Worker) {
			release := make(chan struct{})
			stolen := make(chan struct{})
			f := Fork(w, func(*Worker) int {
				close(stolen) // only a thief can reach here while root blocks below
				<-release
				panic("inner")
			})
			<-stolen
			close(release)
			_ = f.Join(w) // no visible work: blocks on f.ch until the abort
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after an abort with parked workers")
	}
	if recovered != "inner" {
		t.Fatalf("recovered %v, want the inner panic value", recovered)
	}
}

func TestStatsString(t *testing.T) {
	p := New(Config{Workers: 2})
	p.Run(func(w *Worker) { _ = fibPar(w, 15, 5) })
	out := p.Stats().String()
	for _, field := range []string{"tasks-run", "spawns", "steals", "parks", "wakes", "backoff", "tasks-dropped", "tasks-cancelled", "stalls"} {
		if !strings.Contains(out, field) {
			t.Fatalf("Stats.String missing %q:\n%s", field, out)
		}
	}
}

// signalWork used to scan the fleet from index zero on every call, so a
// trickle of submissions — each arriving with the whole fleet parked —
// woke worker 0 every single time while the rest slept cold. The rotating
// cursor spreads wakes; this test submits one task per fully-parked
// round and asserts the wakes land on (nearly) the whole fleet. The
// tolerance of one worker absorbs timer-expiry races: a napping worker
// whose timer fires just before the token arrives leaves the token to be
// absorbed by its own next park rather than the rotation's choice.
func TestSignalWorkWakeFairness(t *testing.T) {
	const workers = 4
	p := New(Config{Workers: workers, ParkThreshold: 2})
	stop := startServing(t, p)
	allParked := func() bool {
		for _, w := range p.workers {
			if !w.parked.Load() {
				return false
			}
		}
		return true
	}
	for round := 0; round < 12*workers; round++ {
		waitFor(t, 10*time.Second, "the whole fleet to park", allParked)
		h, err := p.Submit(func(*Worker) {})
		if err != nil {
			t.Fatalf("round %d: Submit: %v", round, err)
		}
		if err := h.Wait(); err != nil {
			t.Fatalf("round %d: Wait: %v", round, err)
		}
	}
	woken := 0
	for i, w := range p.workers {
		if n := w.wakes.Load(); n > 0 {
			woken++
		} else {
			t.Logf("worker %d: zero wakes", i)
		}
	}
	if woken < workers-1 {
		t.Fatalf("wakes landed on %d of %d workers: signalWork is scanning from a fixed start, not rotating", woken, workers)
	}
	if err := stop(); err == nil {
		t.Fatal("Serve returned nil after cancellation")
	}
}

func TestParkThresholdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a negative park threshold")
		}
	}()
	New(Config{Workers: 2, ParkThreshold: -1})
}
