package deque

import (
	"sync"

	"worksteal/internal/fault"
)

// fpMutexPopTopLocked sits inside PopTop's critical section: a goroutine
// suspended here holds the deque's mutex, so every other process that
// touches this deque blocks behind it — the falsifying control for the
// non-blocking chaos tests (the paper's §6 claim is exactly that a locking
// deque collapses under such a stall while the ABP deque does not).
var fpMutexPopTopLocked = fault.Register("mutexdeque.popTop.locked",
	"mutex popTop: inside the critical section, lock held (falsifying control)")

// Dequer is the common interface of the work-stealing deques in this
// package: the non-blocking ABP Deque and the lock-based MutexDeque used as
// the ablation baseline. All items are pointers, matching the paper's "array
// of nodes (or pointers to threads)".
type Dequer[T any] interface {
	// PushBottom pushes onto the bottom; owner only. Returns false if full.
	PushBottom(*T) bool
	// PopBottom pops from the bottom; owner only. Returns nil if empty.
	PopBottom() *T
	// PopTop steals from the top; any process. Returns nil if empty or if
	// the implementation's relaxed semantics allow a spurious failure.
	PopTop() *T
	// Len estimates the current number of items. Implementations must
	// read their indices with atomic (or lock-protected) loads: the
	// scheduler's parking protocol calls Len concurrently with owner
	// pushes and relies on sequentially consistent visibility of a
	// PushBottom that precedes a parked-flag read (see Deque.Len).
	Len() int
}

var (
	_ Dequer[int] = (*Deque[int])(nil)
	_ Dequer[int] = (*MutexDeque[int])(nil)
)

// MutexDeque is a deque guarded by a single mutex. It meets the ideal deque
// semantics but is blocking: a process preempted while holding the lock
// stalls every other process that touches this deque. The paper's empirical
// claim — reproduced in experiment E8 — is that such blocking degrades
// performance dramatically in multiprogrammed environments (P_A < P).
type MutexDeque[T any] struct {
	mu    sync.Mutex
	items []*T
	cap   int
}

// NewMutex returns an empty MutexDeque with DefaultCapacity slots.
func NewMutex[T any]() *MutexDeque[T] { return NewMutexWithCapacity[T](DefaultCapacity) }

// NewMutexWithCapacity returns an empty MutexDeque with the given bound.
func NewMutexWithCapacity[T any](capacity int) *MutexDeque[T] {
	if capacity < 1 {
		panic("deque: capacity < 1")
	}
	return &MutexDeque[T]{items: make([]*T, 0, capacity), cap: capacity}
}

// PushBottom pushes node onto the bottom. Returns false when full.
func (d *MutexDeque[T]) PushBottom(node *T) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) >= d.cap {
		return false
	}
	d.items = append(d.items, node)
	return true
}

// PopBottom pops the bottommost item, or nil when empty.
func (d *MutexDeque[T]) PopBottom() *T {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	node := d.items[len(d.items)-1]
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return node
}

// PopTop removes the topmost item, or nil when empty.
func (d *MutexDeque[T]) PopTop() *T {
	d.mu.Lock()
	defer d.mu.Unlock()
	fault.Point(fpMutexPopTopLocked)
	if len(d.items) == 0 {
		return nil
	}
	node := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return node
}

// Len returns the current number of items.
func (d *MutexDeque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// Cap returns the deque's capacity bound.
func (d *MutexDeque[T]) Cap() int { return d.cap }
