package hood

import (
	"sync"
	"sync/atomic"
	"testing"

	"worksteal/internal/sched"
)

func pool(workers int) *sched.Pool { return sched.New(sched.Config{Workers: workers}) }

func TestSingleThreadDies(t *testing.T) {
	var ran atomic.Int32
	Run(pool(2), func(w *sched.Worker) Action {
		ran.Add(1)
		return Die()
	})
	if ran.Load() != 1 {
		t.Fatalf("ran = %d", ran.Load())
	}
}

func TestContinueChain(t *testing.T) {
	var trace []int
	var seg func(k int) Segment
	seg = func(k int) Segment {
		return func(w *sched.Worker) Action {
			trace = append(trace, k)
			if k == 5 {
				return Die()
			}
			return Continue(seg(k + 1))
		}
	}
	Run(pool(1), seg(1))
	if len(trace) != 5 {
		t.Fatalf("trace = %v", trace)
	}
	for i, v := range trace {
		if v != i+1 {
			t.Fatalf("trace = %v", trace)
		}
	}
}

func TestSpawnRunsChildFirstWhenUnstolen(t *testing.T) {
	// With one worker, Spawn pushes the parent continuation and runs the
	// child: serial depth-first order.
	var trace []string
	var mu sync.Mutex
	log := func(s string) {
		mu.Lock()
		trace = append(trace, s)
		mu.Unlock()
	}
	Run(pool(1), func(w *sched.Worker) Action {
		log("parent-pre")
		return Spawn(
			func(w *sched.Worker) Action { log("child"); return Die() },
			func(w *sched.Worker) Action { log("parent-post"); return Die() },
		)
	})
	want := []string{"parent-pre", "child", "parent-post"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSpawnAndDie(t *testing.T) {
	var count atomic.Int32
	Run(pool(2), func(w *sched.Worker) Action {
		return Spawn(func(w *sched.Worker) Action {
			count.Add(1)
			return Die()
		}, nil) // spawn and die
	})
	if count.Load() != 1 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestSemaphoreHandoff(t *testing.T) {
	sem := NewSemaphore(0)
	var order []string
	var mu sync.Mutex
	log := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }

	Run(pool(2), func(w *sched.Worker) Action {
		return Spawn(
			// Child: waits on the semaphore.
			func(w *sched.Worker) Action {
				log("child-wait")
				return Wait(sem, func(w *sched.Worker) Action {
					log("child-resumed")
					return Die()
				})
			},
			// Parent: signals.
			func(w *sched.Worker) Action {
				log("parent-signal")
				sem.Signal(w)
				return Die()
			},
		)
	})
	if sem.Waiters() != 0 {
		t.Fatalf("waiters = %d after run", sem.Waiters())
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, s := range order {
		if s == "child-resumed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("child never resumed: %v", order)
	}
}

func TestSemaphorePreSignaled(t *testing.T) {
	sem := NewSemaphore(2)
	var resumed atomic.Int32
	Run(pool(2), func(w *sched.Worker) Action {
		return Wait(sem, func(w *sched.Worker) Action {
			resumed.Add(1)
			return Wait(sem, func(w *sched.Worker) Action {
				resumed.Add(1)
				return Die()
			})
		})
	})
	if resumed.Load() != 2 {
		t.Fatalf("resumed = %d", resumed.Load())
	}
	if sem.Units() != 0 {
		t.Fatalf("units = %d", sem.Units())
	}
}

func TestDeadlockLeavesWaiters(t *testing.T) {
	sem := NewSemaphore(0)
	Run(pool(2), func(w *sched.Worker) Action {
		return Wait(sem, func(w *sched.Worker) Action { return Die() })
	})
	// Run returned even though the thread is parked forever: the paper's
	// model has no deadlock detection either; the thread just never becomes
	// ready. The semaphore exposes it.
	if sem.Waiters() != 1 {
		t.Fatalf("waiters = %d, want 1", sem.Waiters())
	}
}

func TestJoin(t *testing.T) {
	const children = 8
	j := NewJoin(children)
	var childRuns, joined atomic.Int32
	Run(pool(4), func(w *sched.Worker) Action {
		// Spawn children, then wait for all of them.
		var spawnK func(k int) Action
		spawnK = func(k int) Action {
			if k == 0 {
				return j.Wait(func(w *sched.Worker) Action {
					joined.Add(1)
					return Die()
				})
			}
			return Spawn(
				func(w *sched.Worker) Action {
					childRuns.Add(1)
					j.Done(w)
					return Die()
				},
				func(w *sched.Worker) Action { return spawnK(k - 1) },
			)
		}
		return spawnK(children)
	})
	if childRuns.Load() != children {
		t.Fatalf("children ran %d times", childRuns.Load())
	}
	if joined.Load() != 1 {
		t.Fatalf("join continuation ran %d times", joined.Load())
	}
}

func TestJoinZero(t *testing.T) {
	j := NewJoin(0)
	var ran atomic.Int32
	Run(pool(1), func(w *sched.Worker) Action {
		return j.Wait(func(w *sched.Worker) Action {
			ran.Add(1)
			return Die()
		})
	})
	if ran.Load() != 1 {
		t.Fatal("zero-join continuation did not run")
	}
}

// TestFigure1Program runs the paper's Figure 1 computation as a real Hood
// program: the root thread executes x1..x4, x10, x11; x2 spawns the child
// thread x5..x9; x4 P's the semaphore that x6 V's; x10 joins the child.
func TestFigure1Program(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		sem := NewSemaphore(0) // the x6 -> x4 semaphore
		join := NewJoin(1)     // the x9 -> x10 join
		var mu sync.Mutex
		executed := map[string]bool{}
		mark := func(s string) {
			mu.Lock()
			executed[s] = true
			mu.Unlock()
		}

		child := func(w *sched.Worker) Action { // x5
			mark("x5")
			return Continue(func(w *sched.Worker) Action { // x6: V
				mark("x6")
				sem.Signal(w)
				return Continue(func(w *sched.Worker) Action { // x7
					mark("x7")
					return Continue(func(w *sched.Worker) Action { // x8
						mark("x8")
						return Continue(func(w *sched.Worker) Action { // x9: enable+die
							mark("x9")
							join.Done(w)
							return Die()
						})
					})
				})
			})
		}

		root := func(w *sched.Worker) Action { // x1
			mark("x1")
			return Continue(func(w *sched.Worker) Action { // x2: spawn
				mark("x2")
				return Spawn(child, func(w *sched.Worker) Action { // x3
					mark("x3")
					return Wait(sem, func(w *sched.Worker) Action { // x4: P
						mark("x4")
						return join.Wait(func(w *sched.Worker) Action { // x10
							mark("x10")
							return Continue(func(w *sched.Worker) Action { // x11
								mark("x11")
								return Die()
							})
						})
					})
				})
			})
		}

		Run(pool(workers), root)
		for _, x := range []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11"} {
			if !executed[x] {
				t.Fatalf("workers=%d: node %s never executed", workers, x)
			}
		}
		if sem.Waiters() != 0 {
			t.Fatalf("workers=%d: semaphore has stranded waiters", workers)
		}
	}
}

// A larger stress: a pipeline of semaphores, like workload.Strands.
func TestSemaphorePipeline(t *testing.T) {
	const stages = 50
	sems := make([]*Semaphore, stages+1)
	for i := range sems {
		sems[i] = NewSemaphore(0)
	}
	sems[0].units = 1 // stage 0 can start immediately
	var completed atomic.Int32

	Run(pool(4), func(w *sched.Worker) Action {
		var spawnStage func(k int) Action
		spawnStage = func(k int) Action {
			if k == stages {
				return Die()
			}
			stage := k
			return Spawn(
				func(w *sched.Worker) Action {
					return Wait(sems[stage], func(w *sched.Worker) Action {
						completed.Add(1)
						sems[stage+1].Signal(w)
						return Die()
					})
				},
				func(w *sched.Worker) Action { return spawnStage(k + 1) },
			)
		}
		return spawnStage(0)
	})
	if completed.Load() != stages {
		t.Fatalf("completed %d of %d stages", completed.Load(), stages)
	}
}

func TestNewSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative semaphore")
		}
	}()
	NewSemaphore(-1)
}

func TestNewJoinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative join")
		}
	}()
	NewJoin(-1)
}

func TestBarrier(t *testing.T) {
	const n = 6
	b := NewBarrier(n)
	var before, after atomic.Int32
	Run(pool(3), func(w *sched.Worker) Action {
		var spawnK func(k int) Action
		body := func(w *sched.Worker) Action {
			before.Add(1)
			return b.Arrive(func(w *sched.Worker) Action {
				// Every thread must observe all n arrivals happened.
				if got := before.Load(); got != n {
					t.Errorf("past barrier with only %d arrivals", got)
				}
				after.Add(1)
				return Die()
			})
		}
		spawnK = func(k int) Action {
			if k == 1 {
				return body(w)
			}
			return Spawn(body, func(w *sched.Worker) Action { return spawnK(k - 1) })
		}
		return spawnK(n)
	})
	if after.Load() != n {
		t.Fatalf("%d threads passed the barrier, want %d", after.Load(), n)
	}
	if b.Waiting() != 0 {
		t.Fatalf("%d threads stranded at the barrier", b.Waiting())
	}
}

func TestBarrierSingle(t *testing.T) {
	b := NewBarrier(1)
	var ran atomic.Int32
	Run(pool(1), func(w *sched.Worker) Action {
		return b.Arrive(func(w *sched.Worker) Action {
			ran.Add(1)
			return Die()
		})
	})
	if ran.Load() != 1 {
		t.Fatal("single-thread barrier did not pass through")
	}
}

func TestBarrierIncompleteStrands(t *testing.T) {
	b := NewBarrier(3)
	Run(pool(2), func(w *sched.Worker) Action {
		return Spawn(
			func(w *sched.Worker) Action {
				return b.Arrive(func(w *sched.Worker) Action { return Die() })
			},
			func(w *sched.Worker) Action {
				return b.Arrive(func(w *sched.Worker) Action { return Die() })
			},
		)
	})
	if b.Waiting() != 2 {
		t.Fatalf("waiting = %d, want 2 (third thread never arrived)", b.Waiting())
	}
}

func TestNewBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBarrier(0)
}

func BenchmarkHoodFigure1(b *testing.B) {
	p := pool(3)
	for i := 0; i < b.N; i++ {
		sem := NewSemaphore(0)
		join := NewJoin(1)
		child := func(w *sched.Worker) Action {
			sem.Signal(w)
			return Continue(func(w *sched.Worker) Action {
				join.Done(w)
				return Die()
			})
		}
		Run(p, func(w *sched.Worker) Action {
			return Spawn(child, func(w *sched.Worker) Action {
				return Wait(sem, func(w *sched.Worker) Action {
					return join.Wait(func(w *sched.Worker) Action { return Die() })
				})
			})
		})
	}
}
