// Package experiments implements the E1-E10 reproduction experiments listed
// in DESIGN.md: each function runs one experiment and renders the table or
// figure analogue the paper's artefact corresponds to. The cmd/figures
// binary runs them all to regenerate EXPERIMENTS.md, and the root
// bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"worksteal/internal/analysis"
	"worksteal/internal/dag"
	"worksteal/internal/offline"
	"worksteal/internal/sim"
	"worksteal/internal/table"
	"worksteal/internal/workload"
)

// Graphs returns the experiment workload suite: computation dags spanning
// parallelism 1 (chain) to several hundred (fib), including two
// non-fully-strict dags (grid, strands).
func Graphs() []workload.Spec {
	return []workload.Spec{
		{Name: "chain", Build: func() *dag.Graph { return workload.Chain(2000) }},
		{Name: "spine", Build: func() *dag.Graph { return workload.SpawnSpine(32, 64) }},
		{Name: "fib", Build: func() *dag.Graph { return workload.FibDag(16) }},
		{Name: "grid", Build: func() *dag.Graph { return workload.Grid(32, 64) }},
		{Name: "strands", Build: func() *dag.Graph { return workload.Strands(24, 41) }},
		{Name: "randomSP", Build: func() *dag.Graph { return workload.RandomSP(42, 3000) }},
		{Name: "uts", Build: func() *dag.Graph { return workload.UnbalancedTree(7, 3000) }},
	}
}

// E1Figure1 regenerates Figure 1: the example computation dag with its two
// threads, spawn edge, semaphore edge, and join edge, and reports its work,
// critical-path length and parallelism.
func E1Figure1(w io.Writer) {
	g := dag.Figure1()
	fmt.Fprintln(w, "## E1: Figure 1 — example computation dag")
	fmt.Fprintln(w, "root thread:  x1 -> x2 -> x3 -> x4 -> x10 -> x11")
	fmt.Fprintln(w, "child thread: x5 -> x6 -> x7 -> x8 -> x9")
	fmt.Fprintln(w, "edges beyond continuations:")
	for _, e := range g.Edges() {
		if e.Kind != dag.Continuation {
			fmt.Fprintf(w, "  x%d -> x%d (%s)\n", e.From+1, e.To+1, e.Kind)
		}
	}
	fmt.Fprintf(w, "work T1 = %d, critical-path length Tinf = %d, parallelism T1/Tinf = %.3f\n\n",
		g.Work(), g.CriticalPath(), g.Parallelism())
}

// E2Greedy regenerates Figure 2: the example kernel schedule (P = 3,
// processor average 2 over ten steps) and a greedy execution schedule of
// the Figure 1 dag against it, then checks Theorems 1 and 2 on it.
func E2Greedy(w io.Writer) {
	g := dag.Figure1()
	k := offline.Figure2Kernel()
	fmt.Fprintln(w, "## E2: Figure 2 — kernel schedule and greedy execution schedule")
	fmt.Fprintf(w, "kernel schedule (P=%d): p_i =", k.P())
	for i := 0; i < 10; i++ {
		fmt.Fprintf(w, " %d", k.ProcsAt(i))
	}
	fmt.Fprintf(w, "  (P_A over 10 steps = %.2f)\n", offline.ProcessorAverage(k, 10))
	e := offline.Greedy(g, k, 1000)
	fmt.Fprint(w, e)
	check := func(name string, err error) {
		status := "holds"
		if err != nil {
			status = "VIOLATED: " + err.Error()
		}
		fmt.Fprintf(w, "%s: %s\n", name, status)
	}
	check("Theorem 1 (length >= T1/P_A)", offline.CheckTheorem1(e))
	check("Theorem 2 (tokens <= T1 + Tinf(P-1))", offline.CheckTheorem2(e, k.P()))
	fmt.Fprintln(w)
}

// E3LowerBound demonstrates Theorem 1's adversarial kernel: for processor
// averages stepping down from P, the forced schedule length meets the
// Tinf*P/P_A lower bound.
func E3LowerBound(w io.Writer) {
	tb := table.New("E3: Theorem 1 lower-bound kernel (greedy scheduler, P=4)",
		"workload", "gap", "T1", "Tinf", "length", "P_A", "Tinf*P/P_A", "len/bound")
	const p = 4
	for _, spec := range Graphs() {
		g := spec.Build()
		for _, gap := range []int{0, 1, 3, 7} {
			k := offline.LowerBound{NumProcs: p, Gap: gap}
			e := offline.Greedy(g, k, (gap+1)*(g.Work()+g.CriticalPath())*2+100)
			pa := e.ProcessorAverage()
			bound := float64(g.CriticalPath()*p) / pa
			tb.Row(spec.Name, gap, g.Work(), g.CriticalPath(), e.Length(), pa, bound,
				float64(e.Length())/bound)
		}
	}
	tb.Render(w)
}

// E4GreedyBound sweeps random kernel schedules and verifies the Theorem 2
// upper bound on every greedy schedule, reporting how tight it is.
func E4GreedyBound(w io.Writer) {
	tb := table.New("E4: Theorem 2 greedy upper bound (random kernels)",
		"workload", "P", "length", "P_A", "bound", "len/bound", "holds")
	rng := rand.New(rand.NewSource(4))
	for _, spec := range Graphs() {
		g := spec.Build()
		for _, p := range []int{2, 4, 8} {
			prefix := make([]int, 4*g.Work()/p+64)
			for i := range prefix {
				prefix[i] = rng.Intn(p + 1)
			}
			k := offline.Fixed{NumProcs: p, Prefix: prefix}
			e := offline.Greedy(g, k, 100*g.Work()+1000)
			pa := e.ProcessorAverage()
			bound := (float64(g.Work()) + float64(g.CriticalPath()*(p-1))) / pa
			holds := offline.CheckTheorem2(e, p) == nil
			tb.Row(spec.Name, p, e.Length(), pa, bound, float64(e.Length())/bound, holds)
		}
	}
	tb.Render(w)
}

// simPoint runs one simulation and converts it to an analysis.RunPoint.
func simPoint(g *dag.Graph, p int, k sim.Kernel, y sim.YieldKind, seed int64) (sim.Result, analysis.RunPoint) {
	res := sim.NewEngine(sim.Config{Graph: g, P: p, Kernel: k, Yield: y, Seed: seed}).Run()
	pt := analysis.RunPoint{T1: g.Work(), Tinf: g.CriticalPath(), P: p, Steps: res.Steps, PA: res.PA}
	return res, pt
}

// E5Dedicated reproduces the Theorem 9 experiment: dedicated kernel, P from
// 1 to 16, reporting time (mean of 3 seeds), speedup and throws for each
// workload.
func E5Dedicated(w io.Writer) []analysis.RunPoint {
	tb := table.New("E5: dedicated environment (Theorem 9; mean of 3 seeds)",
		"workload", "T1", "Tinf", "P", "steps", "speedup", "throws", "throws/(Tinf*P)")
	const seeds = 3
	var points []analysis.RunPoint
	for _, spec := range Graphs() {
		g := spec.Build()
		base := 0.0
		for _, p := range []int{1, 2, 4, 8, 16} {
			var steps, pa, throws float64
			for sd := int64(0); sd < seeds; sd++ {
				res, _ := simPoint(g, p, sim.DedicatedKernel{NumProcs: p}, sim.YieldNone, 100+int64(p)+sd*997)
				if !res.Completed {
					panic(fmt.Sprintf("E5 %s P=%d did not complete", spec.Name, p))
				}
				steps += float64(res.Steps)
				pa += res.PA
				throws += float64(res.Throws)
			}
			steps /= seeds
			pa /= seeds
			throws /= seeds
			points = append(points, analysis.RunPoint{T1: g.Work(), Tinf: g.CriticalPath(),
				P: p, Steps: int(steps), PA: pa})
			if p == 1 {
				base = steps
			}
			tb.Row(spec.Name, g.Work(), g.CriticalPath(), p, int(steps),
				base/steps, int(throws),
				throws/float64(g.CriticalPath()*p))
		}
	}
	tb.Render(w)
	return points
}

// E6Adversaries reproduces the Theorems 10-12 experiments: each adversary
// class with its sufficient yield discipline, at P = 8 with roughly 2
// processors' worth of service, reporting measured time against the
// T1/P_A + Tinf*P/P_A bound shape.
func E6Adversaries(w io.Writer) []analysis.RunPoint {
	tb := table.New("E6: multiprogrammed adversaries (Theorems 10-12, P=8, ~2 procs of service)",
		"workload", "adversary", "yield", "steps", "P_A", "normalized", "subst")
	const p = 8
	var points []analysis.RunPoint
	for _, spec := range Graphs() {
		g := spec.Build()
		cases := []struct {
			name string
			k    sim.Kernel
			y    sim.YieldKind
		}{
			{"benign", sim.ConstBenign(p, 2), sim.YieldNone},
			{"oblivious", sim.NewSeededOblivious(p, 2, 61), sim.YieldToRandom},
			{"adaptive", sim.StarveWorkersKernel{NumProcs: p}, sim.YieldToAll},
		}
		for _, c := range cases {
			res, pt := simPoint(g, p, c.k, c.y, 7)
			if !res.Completed {
				panic(fmt.Sprintf("E6 %s/%s did not complete", spec.Name, c.name))
			}
			points = append(points, pt)
			// normalized = steps * PA / (T1 + Tinf*P): the per-unit cost of
			// the bound; constant across workloads when the bound is tight.
			norm := float64(res.Steps) * res.PA / (float64(g.Work()) + float64(g.CriticalPath()*p))
			tb.Row(spec.Name, c.name, c.y.String(), res.Steps, res.PA, norm, res.Substitutions)
		}
	}
	tb.Render(w)
	return points
}

// E7Fit fits the constants of T = (C1*T1 + Cinf*Tinf*P)/P_A over the E5 and
// E6 measurement grids: the Hood studies' "constant hidden in the big-Oh is
// small" claim, with C1 here absorbing the scheduling loop's instructions
// per node.
func E7Fit(w io.Writer, points []analysis.RunPoint) {
	fit, err := analysis.FitBound(points)
	fmt.Fprintln(w, "## E7: fitted bound constants over the E5+E6 grid")
	if err != nil {
		fmt.Fprintf(w, "fit failed: %v\n\n", err)
		return
	}
	fmt.Fprintf(w, "T*P_A ~= C1*T1 + Cinf*Tinf*P with C1 = %.3f, Cinf = %.3f\n", fit.C1, fit.Cinf)
	fmt.Fprintf(w, "(C1 counts simulator instructions per node: the scheduling loop costs ~4-6;\n")
	fmt.Fprintf(w, " Cinf is per critical-path node per process, in units of one instruction)\n")
	fmt.Fprintf(w, "max measured/fitted ratio = %.3f, mean relative error = %.3f, runs = %d\n\n",
		fit.MaxRatio, fit.MeanAbs, len(points))
}

// E8Ablations reproduces the Hood claim that the non-blocking deques and
// the yields are both essential when P_A < P: removing either causes
// dramatic degradation (here: livelock until the round limit) under the
// matching adversary, while the full implementation sails through.
func E8Ablations(w io.Writer) {
	tb := table.New("E8: ablations — non-blocking deques and yields are essential",
		"config", "workload", "adversary", "completed", "rounds", "steps", "spin/subst")
	const p = 8
	const roundCap = 20000

	run := func(label string, g *dag.Graph, cfg sim.Config) {
		cfg.Graph, cfg.P, cfg.MaxRounds = g, p, roundCap
		res := sim.NewEngine(cfg).Run()
		extra := res.SpinSteps + res.Substitutions
		tb.Row(label, g.Label(), fmt.Sprintf("%T", cfg.Kernel), res.Completed, res.Rounds, res.Steps, extra)
	}

	// Deque ablation: the adversary preempts any process the moment it
	// holds a deque lock. The ABP deque has no locks and is unaffected; the
	// locked deque stops dead at the first preempted acquisition.
	fib := workload.FibDag(13)
	lockAdv := sim.PreemptLockHolderKernel{NumProcs: p}
	run("ABP deque", fib, sim.Config{Kernel: lockAdv, Seed: 1})
	run("locked deque", fib, sim.Config{Kernel: lockAdv, Deque: sim.DequeLocked, Seed: 1})

	// Yield ablation on a serial chain, where all work is always inside one
	// process: adversaries that starve work-holders stop all progress unless
	// the yield discipline forces them back in.
	chain := workload.Chain(500)
	starve := sim.StarveWorkersKernel{NumProcs: p}
	run("yieldToAll", chain, sim.Config{Kernel: starve, Yield: sim.YieldToAll, Seed: 1})
	// yieldToRandom also survives this adaptive adversary in our engine
	// (each yield has a 1/(P-1) chance of targeting the starved worker),
	// just more slowly — the theorems only PROVE it sufficient against
	// oblivious adversaries.
	run("yieldToRandom (adaptive)", chain, sim.Config{Kernel: starve, Yield: sim.YieldToRandom, Seed: 1})
	run("no yield (adaptive)", chain, sim.Config{Kernel: starve, Yield: sim.YieldNone, Seed: 1})

	fixed := sim.FixedSetKernel{NumProcs: p, Set: []int{1, 2, 3, 4}}
	run("yieldToRandom", chain, sim.Config{Kernel: fixed, Yield: sim.YieldToRandom, Seed: 1})
	run("no yield (oblivious)", chain, sim.Config{Kernel: fixed, Yield: sim.YieldNone, Seed: 1})

	tb.Render(w)
}

// E9Potential reproduces the potential-function machinery: Lemma 7's balls
// and weighted bins bound (Monte Carlo) and Lemma 8's per-phase potential
// drop statistics.
func E9Potential(w io.Writer) {
	rng := rand.New(rand.NewSource(9))
	tb := table.New("E9a: Lemma 7 Monte Carlo (beta = 1/2, bound = 1 - 2/e = 0.264)",
		"bins", "weights", "Pr[X >= W/2]", "bound")
	for _, n := range []int{8, 64} {
		uniform := make([]float64, n)
		skewed := make([]float64, n)
		for i := range uniform {
			uniform[i] = 1
			skewed[i] = 1 / float64(i+1)
		}
		tb.Row(n, "uniform", analysis.BallsInBinsEstimate(uniform, 0.5, 20000, rng), analysis.Lemma7Bound(0.5))
		tb.Row(n, "1/i", analysis.BallsInBinsEstimate(skewed, 0.5, 20000, rng), analysis.Lemma7Bound(0.5))
	}
	tb.Render(w)

	tb2 := table.New("E9b: Lemma 8 phase statistics (dedicated, P=8; success = drop >= 1/4, proven Pr > 1/4)",
		"workload", "phases", "success rate", "mean log-drop", "monotone")
	for _, spec := range Graphs() {
		g := spec.Build()
		tr := analysis.NewPotentialTracker(g.CriticalPath())
		res := sim.NewEngine(sim.Config{Graph: g, P: 8,
			Kernel: sim.DedicatedKernel{NumProcs: 8}, Seed: 23, Observer: tr}).Run()
		if !res.Completed {
			panic("E9 run incomplete")
		}
		st := analysis.AnalyzePhases(tr.Points, 8)
		tb2.Row(spec.Name, st.Phases, st.SuccessRate(), st.MeanLogDrop, st.NeverIncreased)
	}
	tb2.Render(w)
}

// E10Structural verifies the structural lemma (Lemma 3 / Corollary 4) at
// every instruction of runs across kernels and spawn policies.
func E10Structural(w io.Writer) {
	tb := table.New("E10: structural lemma checked at every instruction",
		"workload", "kernel", "policy", "states checked", "violations")
	for _, spec := range Graphs()[:4] {
		g := spec.Build()
		for _, c := range []struct {
			name string
			k    sim.Kernel
			y    sim.YieldKind
			pol  sim.SpawnPolicy
		}{
			{"dedicated", sim.DedicatedKernel{NumProcs: 4}, sim.YieldNone, sim.RunChild},
			{"benign", sim.BenignKernel{NumProcs: 4}, sim.YieldNone, sim.RunParent},
			{"adaptive", sim.StarveWorkersKernel{NumProcs: 4}, sim.YieldToAll, sim.RunChild},
		} {
			chk := analysis.NewStructuralChecker(g.CriticalPath())
			res := sim.NewEngine(sim.Config{Graph: g, P: 4, Kernel: c.k, Yield: c.y,
				Policy: c.pol, Seed: 13, Observer: chk}).Run()
			if !res.Completed {
				panic("E10 run incomplete")
			}
			tb.Row(spec.Name, c.name, c.pol.String(), chk.Checks, len(chk.Violations))
			if !chk.Ok() {
				fmt.Fprintf(w, "VIOLATIONS in %s/%s: %v\n", spec.Name, c.name, chk.Violations)
			}
		}
	}
	tb.Render(w)
}

// All runs every simulator-side experiment in order, writing the full
// report to w.
func All(w io.Writer) {
	E1Figure1(w)
	E2Greedy(w)
	E3LowerBound(w)
	E4GreedyBound(w)
	pts := E5Dedicated(w)
	pts = append(pts, E6Adversaries(w)...)
	E7Fit(w, pts)
	E8Ablations(w)
	E9Potential(w)
	E10Structural(w)
	E11RelatedWork(w)
	E12SpeedupVsPA(w)
	E13Schedulers(w)
	E14Space(w)
}

// E11RelatedWork compares the kernel disciplines of the paper's Section 5
// related work — coscheduling (gang scheduling) and static space
// partitioning — against the multiprogrammed kernels, all running the same
// non-blocking work stealer. Work stealing meets its bound under every
// discipline; the differences are in how much service (P_A) each discipline
// actually delivers for the same machine share.
func E11RelatedWork(w io.Writer) {
	tb := table.New("E11: related-work kernel disciplines (P=8, ~1/4 machine share)",
		"workload", "discipline", "steps", "P_A", "normalized")
	const p = 8
	for _, spec := range []workload.Spec{Graphs()[2], Graphs()[3]} { // fib, grid
		g := spec.Build()
		cases := []struct {
			name string
			k    sim.Kernel
			y    sim.YieldKind
		}{
			{"dedicated", sim.DedicatedKernel{NumProcs: p}, sim.YieldNone},
			{"coscheduled 1/4", sim.CoschedulingKernel{NumProcs: p, OnRounds: 1, OffRounds: 3}, sim.YieldNone},
			{"space partition 2", sim.SpacePartitionKernel{NumProcs: p, Avail: 2}, sim.YieldNone},
			{"benign 2", sim.ConstBenign(p, 2), sim.YieldNone},
		}
		for _, c := range cases {
			res, _ := simPoint(g, p, c.k, c.y, 19)
			if !res.Completed {
				panic(fmt.Sprintf("E11 %s/%s did not complete", spec.Name, c.name))
			}
			norm := float64(res.Steps) * res.PA / (float64(g.Work()) + float64(g.CriticalPath()*p))
			tb.Row(spec.Name, c.name, res.Steps, res.PA, norm)
		}
	}
	tb.Render(w)
}

// E12SpeedupVsPA reproduces the canonical Hood measurement: speedup as a
// function of the processor average P_A. The kernel grants avail = 1..P
// processors' worth of service; the work stealer's speedup over its own
// serial execution should track P_A (efficiency near 1) until the
// workload's parallelism saturates. Each row averages several seeds.
func E12SpeedupVsPA(w io.Writer) {
	tb := table.New("E12: speedup vs processor average (fib(16), P=8, mean of 3 seeds)",
		"avail", "P_A", "steps", "speedup", "efficiency (speedup/P_A)")
	const p = 8
	const seeds = 3
	g := workload.FibDag(16)

	serial := 0.0
	for s := int64(0); s < seeds; s++ {
		res := sim.NewEngine(sim.Config{Graph: g, P: 1,
			Kernel: sim.DedicatedKernel{NumProcs: 1}, Seed: 300 + s}).Run()
		serial += float64(res.Steps)
	}
	serial /= seeds

	for avail := 1; avail <= p; avail++ {
		var steps, pa float64
		for s := int64(0); s < seeds; s++ {
			res := sim.NewEngine(sim.Config{Graph: g, P: p,
				Kernel: sim.ConstBenign(p, avail), Seed: 300 + s}).Run()
			if !res.Completed {
				panic("E12 run incomplete")
			}
			steps += float64(res.Steps)
			pa += res.PA
		}
		steps /= seeds
		pa /= seeds
		speedup := serial / steps
		tb.Row(avail, pa, int(steps), speedup, speedup/pa)
	}
	tb.Render(w)
}

// E13Schedulers compares the three offline scheduling disciplines the paper
// situates itself among — lowest-id greedy, level-by-level (Brent), and
// parallel depth-first (Blelloch et al., the Section 5 "open question") —
// under dedicated and multiprogrammed kernel schedules, reporting both time
// and ready-set space.
func E13Schedulers(w io.Writer) {
	tb := table.New("E13: offline scheduler comparison (P=4; len = time, maxReady = space)",
		"workload", "kernel", "greedy len", "brent len", "pdf len", "greedy spc", "brent spc", "pdf spc", "serial spc")
	const p = 4
	rng := rand.New(rand.NewSource(13))
	for _, spec := range Graphs() {
		g := spec.Build()
		serialSpc := offline.PDF(g, offline.Dedicated{NumProcs: 1}, 10*g.Work()+100).MaxReady()
		kernels := map[string]offline.Kernel{
			"dedicated": offline.Dedicated{NumProcs: p},
		}
		prefix := make([]int, 4*g.Work())
		for i := range prefix {
			prefix[i] = rng.Intn(p + 1)
		}
		kernels["random"] = offline.Fixed{NumProcs: p, Prefix: prefix}
		for _, kname := range []string{"dedicated", "random"} {
			k := kernels[kname]
			maxSteps := 100*g.Work() + 1000
			ge := offline.Greedy(g, k, maxSteps)
			be := offline.Brent(g, k, maxSteps)
			pe := offline.PDF(g, k, maxSteps)
			tb.Row(spec.Name, kname, ge.Length(), be.Length(), pe.Length(),
				ge.MaxReady(), be.MaxReady(), pe.MaxReady(), serialSpc)
		}
	}
	tb.Render(w)
}

// E14Space checks the space behaviour of the work stealer itself: for the
// fully strict fib dag, the maximum total deque occupancy should stay
// within S1 * P (Blumofe-Leiserson, the paper's reference [8]), where S1 is
// the occupancy of the serial execution.
func E14Space(w io.Writer) {
	tb := table.New("E14: work-stealer space vs S1*P (fib(16), dedicated)",
		"P", "max space", "S1", "S1*P", "space/(S1*P)")
	g := workload.FibDag(16)
	s1 := 0
	for _, p := range []int{1, 2, 4, 8, 16} {
		st := &analysis.SpaceTracker{}
		res := sim.NewEngine(sim.Config{Graph: g, P: p,
			Kernel: sim.DedicatedKernel{NumProcs: p}, Seed: 41, Observer: st}).Run()
		if !res.Completed {
			panic("E14 run incomplete")
		}
		if p == 1 {
			s1 = st.Max
		}
		tb.Row(p, st.Max, s1, s1*p, float64(st.Max)/float64(s1*p))
	}
	tb.Render(w)
}
