package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPoolRunsRoot(t *testing.T) {
	p := New(Config{Workers: 4})
	var ran atomic.Bool
	p.Run(func(w *Worker) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("root did not run")
	}
	if s := p.Stats(); s.TasksRun != 1 {
		t.Fatalf("TasksRun = %d, want 1", s.TasksRun)
	}
}

func TestPoolSpawnAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(Config{Workers: workers})
		const n = 5000
		var count atomic.Int64
		p.Run(func(w *Worker) {
			for i := 0; i < n; i++ {
				w.Spawn(func(*Worker) { count.Add(1) })
			}
		})
		if count.Load() != n {
			t.Fatalf("workers=%d: ran %d of %d spawns", workers, count.Load(), n)
		}
	}
}

func TestPoolNestedSpawns(t *testing.T) {
	p := New(Config{Workers: 4})
	var count atomic.Int64
	var spawnTree func(w *Worker, depth int)
	spawnTree = func(w *Worker, depth int) {
		count.Add(1)
		if depth == 0 {
			return
		}
		w.Spawn(func(w2 *Worker) { spawnTree(w2, depth-1) })
		w.Spawn(func(w2 *Worker) { spawnTree(w2, depth-1) })
	}
	p.Run(func(w *Worker) { spawnTree(w, 10) })
	if want := int64(1<<11 - 1); count.Load() != want {
		t.Fatalf("count = %d, want %d", count.Load(), want)
	}
}

func TestPoolReusable(t *testing.T) {
	p := New(Config{Workers: 3})
	for round := 0; round < 5; round++ {
		var count atomic.Int64
		p.Run(func(w *Worker) {
			ParallelFor(w, 0, 100, 4, func(int) { count.Add(1) })
		})
		if count.Load() != 100 {
			t.Fatalf("round %d: count = %d", round, count.Load())
		}
	}
}

func fibSerial(n int) int {
	if n < 2 {
		return n
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

func fibPar(w *Worker, n, cutoff int) int {
	if n < cutoff {
		return fibSerial(n)
	}
	a, b := Join2(w,
		func(w2 *Worker) int { return fibPar(w2, n-1, cutoff) },
		func(w2 *Worker) int { return fibPar(w2, n-2, cutoff) })
	return a + b
}

func TestForkJoinFib(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, deq := range []DequeKind{DequeABP, DequeMutex} {
			t.Run(fmt.Sprintf("workers=%d/deque=%d", workers, deq), func(t *testing.T) {
				p := New(Config{Workers: workers, Deque: deq})
				var got int
				p.Run(func(w *Worker) { got = fibPar(w, 20, 5) })
				if want := fibSerial(20); got != want {
					t.Fatalf("fib(20) = %d, want %d", got, want)
				}
			})
		}
	}
}

func TestFutureDoneAndValue(t *testing.T) {
	p := New(Config{Workers: 2})
	p.Run(func(w *Worker) {
		f := Fork(w, func(*Worker) string { return "hello" })
		if got := f.Join(w); got != "hello" {
			t.Errorf("Join = %q", got)
		}
		if !f.Done() {
			t.Error("Done false after Join")
		}
		if got := f.Join(w); got != "hello" {
			t.Errorf("second Join = %q", got)
		}
	})
}

func TestParallelFor(t *testing.T) {
	p := New(Config{Workers: 4})
	const n = 10000
	hits := make([]atomic.Int32, n)
	p.Run(func(w *Worker) {
		ParallelFor(w, 0, n, 16, func(i int) { hits[i].Add(1) })
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	p := New(Config{Workers: 2})
	var ran atomic.Int32
	p.Run(func(w *Worker) {
		ParallelFor(w, 5, 5, 4, func(int) { ran.Add(1) }) // empty range
		if ran.Load() != 0 {
			t.Errorf("empty range ran %d times", ran.Load())
		}
		ParallelFor(w, 0, 3, 0, func(int) { ran.Add(1) }) // grain clamped to 1
		if got := ran.Load(); got != 3 {
			t.Errorf("ran = %d, want 3", got)
		}
	})
}

func TestReduce(t *testing.T) {
	p := New(Config{Workers: 4})
	var got int
	p.Run(func(w *Worker) {
		got = Reduce(w, 1, 1001, 8, func(i int) int { return i }, func(a, b int) int { return a + b })
	})
	if want := 1000 * 1001 / 2; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestReduceEmptyAndSingle(t *testing.T) {
	p := New(Config{Workers: 2})
	p.Run(func(w *Worker) {
		if got := Reduce(w, 3, 3, 4, func(i int) int { return i }, func(a, b int) int { return a + b }); got != 0 {
			t.Errorf("empty Reduce = %d", got)
		}
		if got := Reduce(w, 7, 8, 4, func(i int) int { return i * i }, func(a, b int) int { return a + b }); got != 49 {
			t.Errorf("single Reduce = %d", got)
		}
	})
}

func TestQuickReduceMatchesSerial(t *testing.T) {
	p := New(Config{Workers: 4})
	prop := func(vals []int32, grain uint8) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		var got int64
		p.Run(func(w *Worker) {
			got = Reduce(w, 0, len(vals), 1+int(grain)%8,
				func(i int) int64 { return int64(vals[i]) },
				func(a, b int64) int64 { return a + b })
		})
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Inline execution on deque overflow keeps Spawn correct.
func TestSpawnInlineOnFullDeque(t *testing.T) {
	p := New(Config{Workers: 1, DequeCapacity: 4})
	var count atomic.Int64
	p.Run(func(w *Worker) {
		for i := 0; i < 100; i++ {
			w.Spawn(func(*Worker) { count.Add(1) })
		}
	})
	if count.Load() != 100 {
		t.Fatalf("count = %d", count.Load())
	}
	if p.Stats().InlineRuns == 0 {
		t.Fatal("expected inline runs with a capacity-4 deque and 100 spawns")
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(Config{Workers: 4})
	p.Run(func(w *Worker) { _ = fibPar(w, 18, 4) })
	s := p.Stats()
	if s.TasksRun == 0 || s.Spawns == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
	if s.Steals > s.StealAttempts {
		t.Fatalf("steals %d > attempts %d", s.Steals, s.StealAttempts)
	}
	if runtime.GOMAXPROCS(0) > 1 && s.Steals == 0 {
		t.Log("no steals observed (possible on a loaded machine, but unusual)")
	}
}

func TestWorkerIdentity(t *testing.T) {
	p := New(Config{Workers: 3})
	ids := make(chan int, 1)
	p.Run(func(w *Worker) {
		if w.Pool() != p {
			t.Error("Pool() mismatch")
		}
		ids <- w.ID()
	})
	if id := <-ids; id < 0 || id >= 3 {
		t.Fatalf("worker id %d out of range", id)
	}
}

func TestNewPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"negative workers":  {Workers: -1},
		"negative capacity": {Workers: 2, DequeCapacity: -5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDisableYieldStillCompletes(t *testing.T) {
	p := New(Config{Workers: 4, DisableYield: true})
	var got int
	p.Run(func(w *Worker) { got = fibPar(w, 18, 5) })
	if want := fibSerial(18); got != want {
		t.Fatalf("fib = %d, want %d", got, want)
	}
	if p.Stats().Yields != 0 {
		t.Fatalf("yields = %d with DisableYield", p.Stats().Yields)
	}
}

func TestPinnedWorkers(t *testing.T) {
	p := New(Config{Workers: 2, Pin: true})
	var got int
	p.Run(func(w *Worker) { got = fibPar(w, 15, 5) })
	if got != fibSerial(15) {
		t.Fatal("wrong result with pinned workers")
	}
}

func TestChaseLevPool(t *testing.T) {
	// The unbounded deque never runs tasks inline, even with a flood of
	// spawns from one worker.
	p := New(Config{Workers: 2, Deque: DequeChaseLev})
	var count atomic.Int64
	p.Run(func(w *Worker) {
		for i := 0; i < 50000; i++ {
			w.Spawn(func(*Worker) { count.Add(1) })
		}
	})
	if count.Load() != 50000 {
		t.Fatalf("count = %d", count.Load())
	}
	if s := p.Stats(); s.InlineRuns != 0 {
		t.Fatalf("InlineRuns = %d on an unbounded deque", s.InlineRuns)
	}
}

func TestChaseLevPoolFib(t *testing.T) {
	p := New(Config{Workers: 4, Deque: DequeChaseLev})
	var got int
	p.Run(func(w *Worker) { got = fibPar(w, 20, 5) })
	if want := fibSerial(20); got != want {
		t.Fatalf("fib(20) = %d, want %d", got, want)
	}
}

func TestTaskPanicPropagates(t *testing.T) {
	p := New(Config{Workers: 4})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(w *Worker) {
			w.Spawn(func(*Worker) { panic("boom") })
			// Spawn more work so other workers are busy when the panic hits.
			ParallelFor(w, 0, 100, 4, func(int) {})
		})
	}()
	if recovered == nil {
		t.Fatal("panic did not propagate from Run")
	}
	// The pool is reusable after an aborted run.
	var ok atomic.Bool
	p.Run(func(w *Worker) { ok.Store(true) })
	if !ok.Load() {
		t.Fatal("pool unusable after panic")
	}
}

func TestJoinUnblocksOnAbort(t *testing.T) {
	p := New(Config{Workers: 2})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(w *Worker) {
			// Fork a task that panics; Join must not hang.
			f := Fork(w, func(*Worker) int { panic("inner") })
			_ = f.Join(w)
		})
	}()
	if recovered == nil {
		t.Fatal("no panic surfaced")
	}
}

func TestRoundRobinVictims(t *testing.T) {
	p := New(Config{Workers: 4, RoundRobinVictim: true})
	var got int
	p.Run(func(w *Worker) { got = fibPar(w, 18, 5) })
	if want := fibSerial(18); got != want {
		t.Fatalf("fib = %d, want %d", got, want)
	}
}

func TestMap(t *testing.T) {
	p := New(Config{Workers: 4})
	out := make([]int, 1000)
	p.Run(func(w *Worker) {
		Map(w, out, 16, func(i int) int { return i * i })
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestGroupWaitsForAll(t *testing.T) {
	p := New(Config{Workers: 4})
	var count atomic.Int64
	p.Run(func(w *Worker) {
		g := NewGroup()
		for i := 0; i < 500; i++ {
			g.Spawn(w, func(*Worker) { count.Add(1) })
		}
		g.Wait(w)
		if got := count.Load(); got != 500 {
			t.Errorf("after Wait: %d of 500 tasks done", got)
		}
	})
}

func TestGroupNestedSpawns(t *testing.T) {
	p := New(Config{Workers: 4})
	var count atomic.Int64
	p.Run(func(w *Worker) {
		g := NewGroup()
		var rec func(w *Worker, depth int)
		rec = func(w *Worker, depth int) {
			count.Add(1)
			if depth > 0 {
				g.Spawn(w, func(w2 *Worker) { rec(w2, depth-1) })
				g.Spawn(w, func(w2 *Worker) { rec(w2, depth-1) })
			}
		}
		rec(w, 7)
		g.Wait(w)
		if got := count.Load(); got != 1<<8-1 {
			t.Errorf("count = %d, want %d", got, 1<<8-1)
		}
	})
}

func TestGroupReuse(t *testing.T) {
	p := New(Config{Workers: 2})
	p.Run(func(w *Worker) {
		g := NewGroup()
		for round := 0; round < 3; round++ {
			var n atomic.Int32
			for i := 0; i < 50; i++ {
				g.Spawn(w, func(*Worker) { n.Add(1) })
			}
			g.Wait(w)
			if n.Load() != 50 {
				t.Errorf("round %d: %d of 50", round, n.Load())
			}
		}
	})
}

func TestGroupEmptyWait(t *testing.T) {
	p := New(Config{Workers: 1})
	p.Run(func(w *Worker) {
		NewGroup().Wait(w) // must not hang
	})
}

func TestGroupPanicPropagates(t *testing.T) {
	p := New(Config{Workers: 2})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(w *Worker) {
			g := NewGroup()
			g.Spawn(w, func(*Worker) { panic("group boom") })
			g.Wait(w)
		})
	}()
	if recovered == nil {
		t.Fatal("panic did not surface")
	}
}

func TestInvoke(t *testing.T) {
	p := New(Config{Workers: 3})
	var a, b, c atomic.Bool
	p.Run(func(w *Worker) {
		Invoke(w,
			func(*Worker) { a.Store(true) },
			func(*Worker) { b.Store(true) },
			func(*Worker) { c.Store(true) },
		)
		if !a.Load() || !b.Load() || !c.Load() {
			t.Error("Invoke returned before all functions completed")
		}
	})
	p.Run(func(w *Worker) { Invoke(w) }) // empty invoke is a no-op
}

func TestJoinBlocksOnSlowTask(t *testing.T) {
	// Force Join's blocking path: the forked task sleeps while the joiner
	// has no other work to help with.
	p := New(Config{Workers: 2})
	p.Run(func(w *Worker) {
		f := Fork(w, func(*Worker) int {
			time.Sleep(20 * time.Millisecond)
			return 99
		})
		if got := f.Join(w); got != 99 {
			t.Errorf("Join = %d", got)
		}
	})
}

func TestGroupWaitBlocksOnSlowTask(t *testing.T) {
	p := New(Config{Workers: 2})
	var done atomic.Bool
	p.Run(func(w *Worker) {
		g := NewGroup()
		g.Spawn(w, func(*Worker) {
			time.Sleep(20 * time.Millisecond)
			done.Store(true)
		})
		g.Wait(w)
		if !done.Load() {
			t.Error("Wait returned before the slow task finished")
		}
	})
}

func TestPoolWorkersAccessor(t *testing.T) {
	if got := New(Config{Workers: 5}).Workers(); got != 5 {
		t.Fatalf("Workers = %d", got)
	}
}
