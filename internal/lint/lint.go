// Package lint implements abpvet, a static-analysis suite that mechanically
// enforces the concurrency contracts this repository's correctness rests on:
// the deque's "good set of invocations" (owner-only PushBottom/PopBottom,
// paper Section 3.2), the non-blocking property of the Figure 5 operations,
// the all-atomic access discipline the parking handshake's Dekker argument
// needs, and the reload-inside-the-loop discipline that keeps CAS retry
// loops ABA-safe. DESIGN.md section 8 maps each analyzer to the paper claim
// it guards.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built purely on the standard library
// (go/ast, go/types, `go list`), so the module stays dependency-free and the
// vet suite runs offline. Should x/tools ever become a dependency, each
// Analyzer.Run ports mechanically.
//
// Two comment directives put code in scope:
//
//	//abp:owner        the function is an audited deque-owner context; the
//	                   owner-only operations may be called from it and from
//	                   any function it (transitively, statically) calls.
//	//abp:nonblocking  the function must not perform blocking operations.
//
// And these take findings out of scope:
//
//	//abp:ignore <analyzer> <justification>
//	//abp:race-ignore <justification>
//	//abp:order-ignore <justification>
//	//abp:layout-ignore <justification>
//	//abp:wait-ignore <justification>
//
// placed on (or on the line directly above) the flagged line. The last
// four forms are shorthands scoped to the abprace, abporder, abplayout
// and abpwait analyzers respectively. The justification text is
// mandatory in every form: a bare ignore does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one abpvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //abp:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description shown by `abpvet -help`.
	Doc string
	// Run performs the check on one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the abpvet analyzer suite: PR 2's four syntactic analyzers,
// PR 3's four flow-aware ones, PR 4's whole-package race detector, PR 7's
// memory-ordering necessity analyzer, PR 8's cache-layout analyzer, and
// PR 9's liveness analyzer, in alphabetical order.
func All() []*Analyzer {
	return []*Analyzer{AbpLayout, AbpOrder, AbpRace, AbpWait, AtomicMix, CASLoop, Handshake, MustCheck, NonBlocking, OwnerEscape, OwnerOnly, TagABA}
}

// Run applies one analyzer to a loaded package and returns its findings,
// with //abp:ignore-suppressed diagnostics removed and the rest sorted by
// position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunWith(a, pkg, CollectIgnores(pkg))
}

// RunWith is Run with a caller-held ignore index, so one index can span a
// whole suite run over the package and afterwards report which directives
// never suppressed anything (Ignores.Unused).
func RunWith(a *Analyzer, pkg *Package, ignores *Ignores) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		pos := pkg.Fset.Position(d.Pos)
		if ignores.suppress(pos.Filename, pos.Line, a.Name) {
			continue
		}
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// An IgnoreDirective is one justified //abp:ignore or //abp:race-ignore
// comment.
type IgnoreDirective struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	// Form is the directive as written ("//abp:ignore casloop" or
	// "//abp:race-ignore"), so unused-ignore findings quote the right
	// spelling.
	Form string
	used bool
}

// Ignores indexes a package's //abp:ignore directives and records which of
// them actually suppressed a finding.
type Ignores struct {
	byKey map[ignoreKey]*IgnoreDirective
	all   []*IgnoreDirective
}

// CollectIgnores indexes every justified //abp:ignore and //abp:race-ignore
// directive by the file and line it appears on. Directives without a
// justification are inert and not indexed (and so can never be reported as
// unused either: they already do not suppress).
func CollectIgnores(pkg *Package) *Ignores {
	ig := &Ignores{byKey: map[ignoreKey]*IgnoreDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				var analyzer, form string
				if rest, ok := strings.CutPrefix(c.Text, "//abp:race-ignore"); ok {
					if len(strings.Fields(rest)) < 1 {
						continue // no justification: directive is inert
					}
					analyzer, form = AbpRace.Name, "//abp:race-ignore"
				} else if rest, ok := strings.CutPrefix(c.Text, "//abp:order-ignore"); ok {
					if len(strings.Fields(rest)) < 1 {
						continue // no justification: directive is inert
					}
					analyzer, form = AbpOrder.Name, "//abp:order-ignore"
				} else if rest, ok := strings.CutPrefix(c.Text, "//abp:layout-ignore"); ok {
					if len(strings.Fields(rest)) < 1 {
						continue // no justification: directive is inert
					}
					analyzer, form = AbpLayout.Name, "//abp:layout-ignore"
				} else if rest, ok := strings.CutPrefix(c.Text, "//abp:wait-ignore"); ok {
					if len(strings.Fields(rest)) < 1 {
						continue // no justification: directive is inert
					}
					analyzer, form = AbpWait.Name, "//abp:wait-ignore"
				} else if rest, ok := strings.CutPrefix(c.Text, "//abp:ignore"); ok {
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						continue // no justification: directive is inert
					}
					analyzer, form = fields[0], "//abp:ignore "+fields[0]
				} else {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &IgnoreDirective{Pos: c.Pos(), File: pos.Filename, Line: pos.Line, Analyzer: analyzer, Form: form}
				ig.byKey[ignoreKey{pos.Filename, pos.Line, analyzer}] = d
				ig.all = append(ig.all, d)
			}
		}
	}
	return ig
}

// suppress reports whether a directive covers a finding by analyzer at
// file:line (same line or the line above), marking the directive used.
func (ig *Ignores) suppress(file string, line int, analyzer string) bool {
	if ig == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if d, ok := ig.byKey[ignoreKey{file, l, analyzer}]; ok {
			d.used = true
			return true
		}
	}
	return false
}

// Unused returns the directives that suppressed nothing across every
// RunWith sharing this index — stale suppressions that should be deleted
// before they hide a future regression. Callers must scope the result to
// the analyzers that actually ran (each directive names its analyzer): a
// directive for an analyzer that did not run is unjudgeable, not stale —
// the Tool driver applies exactly that filter for -unused-ignores.
func (ig *Ignores) Unused() []*IgnoreDirective {
	var out []*IgnoreDirective
	for _, d := range ig.all {
		if !d.used {
			out = append(out, d)
		}
	}
	return out
}

// hasDirective reports whether doc contains the exact comment directive
// (for example "//abp:owner"), alone or followed by explanatory text.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function values, built-ins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isAtomicFunc reports whether fn is a package-level function of
// sync/atomic (LoadInt64, CompareAndSwapUint32, ...).
func isAtomicFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isAtomicMethod reports whether fn is a fully atomic method of one of
// sync/atomic's wrapper types (atomic.Int64, atomic.Pointer, ...) or of
// the ordering-annotated atomicx wrappers (internal/atomicx; matched by
// package name so testdata fixture copies resolve too). atomicx's
// owner/plain accessors (LoadOwner, AddOwner, Get, Set) are deliberately
// excluded: their read/write classification differs from the name-based
// rule the atomic analyzers use (LoadOwner is a read despite not being
// named "Load" exactly; Set is a plain write, not an atomic one) — see
// isAtomicxOwnerMethod and isAtomicxPlainMethod.
func isAtomicMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	if named.Obj().Pkg().Path() == "sync/atomic" {
		return true
	}
	if named.Obj().Pkg().Name() == "atomicx" {
		switch fn.Name() {
		case "Load", "Store", "Add", "Swap", "CompareAndSwap":
			return true
		}
	}
	return false
}

// isAtomicxOwnerMethod reports whether fn is one of atomicx's relaxable
// owner accessors (LoadOwner, AddOwner): reads (and, for AddOwner, a
// read-modify-write) that are sound only when the calling goroutine is the
// word's sole writer. abporder demands a proof at every call site.
func isAtomicxOwnerMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg().Name() != "atomicx" {
		return false
	}
	switch fn.Name() {
	case "LoadOwner", "AddOwner":
		return true
	}
	return false
}

// isAtomicxPlainMethod reports whether fn is an accessor of an atomicx
// Plain* type (Get, Set): deliberate plain loads and stores whose safety
// rests on real happens-before edges, which abprace and abporder check
// exactly as they would a raw field access.
func isAtomicxPlainMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg().Name() != "atomicx" {
		return false
	}
	switch fn.Name() {
	case "Get", "Set":
		return true
	}
	return false
}

// recvNamed returns the named type of fn's receiver (after stripping one
// pointer), or nil for nil/receiverless/unnamed-receiver functions.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	return named
}

// declsOf returns every top-level function declaration in the package;
// analyzers attribute call sites inside closures to the FuncDecl that
// lexically contains them.
func declsOf(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// funcName renders a FuncDecl's name with its receiver type, matching how
// diagnostics refer to methods.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteByte('(')
	writeRecvType(&b, fd.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeRecvType(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		writeRecvType(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver Deque[T]
		writeRecvType(b, t.X)
	case *ast.IndexListExpr:
		writeRecvType(b, t.X)
	default:
		fmt.Fprintf(b, "%T", e)
	}
}
