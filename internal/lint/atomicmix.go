package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the all-atomic access discipline on shared struct
// fields. The parking handshake (sched/lifecycle.go) and the deque's
// correctness argument both lean on Go atomics' sequential consistency; a
// single plain access to a field that is elsewhere touched through
// sync/atomic silently forfeits that guarantee. The analyzer reports
//
//   - any struct field passed by address to a sync/atomic function while
//     also being read or written plainly somewhere in the package, and
//   - any raw integer/pointer field manipulated through the function-style
//     API (atomic.AddInt64(&s.f, 1)) at all: the codebase standardizes on
//     the atomic.Int64-style wrapper types, which make plain access a
//     compile error instead of a latent race.
//
// Composite-literal keys are not treated as plain accesses (zero-value
// construction precedes sharing), and access through the wrapper types is
// by definition atomic, so idiomatic code is never flagged.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags struct fields accessed both atomically and plainly, and raw fields used with function-style atomics instead of atomic wrapper types",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// The atomicx package IS the wrapper layer: its method bodies are the
	// one place function-style atomics on raw fields are the point (each
	// wrapper routes every access of its word through them, and the owner
	// accessors' relaxed plain reads are the audited exception the package
	// exists to declare). Exempt it rather than litter it with ignores.
	if pass.Pkg.Name() == "atomicx" {
		return nil
	}
	type fieldUse struct {
		pos token.Pos // first atomic use, for the cross-reference
		fn  string    // the sync/atomic function involved
	}
	atomicFields := map[*types.Var]fieldUse{}
	consumed := map[ast.Node]bool{} // selectors that ARE the atomic operand

	// Pass 1: find &s.f operands of sync/atomic function calls.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !isAtomicFunc(fn) || len(call.Args) == 0 {
				return true
			}
			switch {
			case strings.HasPrefix(fn.Name(), "Load"),
				strings.HasPrefix(fn.Name(), "Store"),
				strings.HasPrefix(fn.Name(), "Add"),
				strings.HasPrefix(fn.Name(), "Swap"),
				strings.HasPrefix(fn.Name(), "CompareAndSwap"),
				strings.HasPrefix(fn.Name(), "And"),
				strings.HasPrefix(fn.Name(), "Or"):
			default:
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field := s.Obj().(*types.Var)
			consumed[sel] = true
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = fieldUse{pos: call.Pos(), fn: fn.Name()}
			}
			pass.Reportf(call.Pos(),
				"field %s is manipulated with atomic.%s; use a sync/atomic wrapper type (atomic.Int64 et al.) so plain access is impossible",
				field.Name(), fn.Name())
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selection of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if use, isAtomic := atomicFields[field]; isAtomic {
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed atomically at %s; every access must go through sync/atomic",
					field.Name(), pass.Fset.Position(use.pos))
			}
			return true
		})
	}
	return nil
}
