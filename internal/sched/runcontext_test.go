// Tests for the crash/stall-tolerant lifecycle additions to Pool:
// RunContext cancellation, the concurrent-run guard, and the guarantee
// that cancellation (like a panic abort) unwinds blocked Joins instead of
// waiting on them.
package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Cancelling mid-run must abort promptly, return ctx.Err, account every
// spawned task as either run or cancelled, and leave the pool reusable.
func TestRunContextCancelMidRun(t *testing.T) {
	p := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const tasks = 400
	var count atomic.Int64
	errCh := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		errCh <- p.RunContext(ctx, func(w *Worker) {
			for i := 0; i < tasks; i++ {
				w.Spawn(func(*Worker) {
					count.Add(1)
					time.Sleep(2 * time.Millisecond)
				})
			}
			close(started)
		})
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	cancel()
	var err error
	select {
	case err = <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ran, cancelled := count.Load(), p.Stats().TasksCancelled
	if cancelled == 0 {
		t.Fatalf("cancellation 380ms before the backlog could drain discarded no tasks (ran %d of %d)", ran, tasks)
	}
	// Conservation: every spawned task either executed (workers finish the
	// task in hand before stopping) or was drained and counted.
	if ran+cancelled != tasks {
		t.Fatalf("ran %d + cancelled %d != %d spawned", ran, cancelled, tasks)
	}
	var again atomic.Int64
	p.Run(func(w *Worker) {
		for i := 0; i < 50; i++ {
			w.Spawn(func(*Worker) { again.Add(1) })
		}
	})
	if again.Load() != 50 {
		t.Fatalf("pool ran %d of 50 tasks after a cancelled run", again.Load())
	}
}

// A deadline behaves like a cancel: the running task cannot be preempted,
// but work it spawns after the deadline never runs and is counted.
func TestRunContextDeadlineExpires(t *testing.T) {
	p := New(Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var ran atomic.Int64
	err := p.RunContext(ctx, func(w *Worker) {
		time.Sleep(120 * time.Millisecond) // outlives the deadline
		for i := 0; i < 100; i++ {
			w.Spawn(func(*Worker) { ran.Add(1) })
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d tasks spawned after the deadline still executed", got)
	}
	if got := p.Stats().TasksCancelled; got != 100 {
		t.Fatalf("TasksCancelled = %d, want 100", got)
	}
}

// A context that is already cancelled must abort before any worker runs
// anything: the root is discarded and counted, whether it landed in the
// deque or (via a refused push) in the handoff slot.
func TestRunContextPreCancelled(t *testing.T) {
	cases := []struct {
		name  string
		setup func(p *Pool)
	}{
		{"root-in-deque", func(*Pool) {}},
		{"root-in-handoff", func(p *Pool) {
			p.workers[0].dq = &rejectFirstPush{Dequer: p.workers[0].dq}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(Config{Workers: 2})
			tc.setup(p)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			var ran atomic.Bool
			err := p.RunContext(ctx, func(*Worker) { ran.Store(true) })
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if ran.Load() {
				t.Fatal("root executed under a pre-cancelled context")
			}
			if got := p.Stats().TasksCancelled; got != 1 {
				t.Fatalf("TasksCancelled = %d, want 1 (the discarded root)", got)
			}
			var count atomic.Int64
			p.Run(func(w *Worker) { count.Add(1) })
			if count.Load() != 1 {
				t.Fatal("pool unusable after a pre-cancelled RunContext")
			}
		})
	}
}

// The happy path: a context that is never cancelled changes nothing.
func TestRunContextCompletesReturnsNil(t *testing.T) {
	p := New(Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got int
	if err := p.RunContext(ctx, func(w *Worker) { got = fibPar(w, 15, 5) }); err != nil {
		t.Fatalf("err = %v for an uncancelled run", err)
	}
	if want := fibSerial(15); got != want {
		t.Fatalf("fib(15) = %d, want %d", got, want)
	}
}

// A task panic under a live context re-panics from RunContext exactly as
// it does from Run; the context machinery must not swallow it.
func TestRunContextTaskPanicRePanics(t *testing.T) {
	p := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = p.RunContext(ctx, func(*Worker) { panic("task failure") })
	}()
	if recovered != "task failure" {
		t.Fatalf("recovered %v, want the task panic", recovered)
	}
}

// Two overlapping runs on one pool must panic loudly instead of corrupting
// the pending counter.
func TestConcurrentRunPanics(t *testing.T) {
	p := New(Config{Workers: 2})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(func(*Worker) { <-release })
	}()
	waitFor(t, 10*time.Second, "first run in flight", func() bool { return p.running.Load() })
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(*Worker) {})
	}()
	close(release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("first run did not finish")
	}
	if recovered == nil || !strings.Contains(fmt.Sprint(recovered), "concurrently") {
		t.Fatalf("recovered %v, want the concurrent-run panic", recovered)
	}
}

// Cancellation must unwind a Join that is blocked on a future whose task
// is stuck on another worker — the joiner observes poolAbortedError while
// the stuck task is still blocked, exactly like a panic abort.
func TestRunContextCancelUnblocksJoin(t *testing.T) {
	p := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	stolen := make(chan struct{})
	var joinUnwound atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.RunContext(ctx, func(w *Worker) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(poolAbortedError); ok {
						joinUnwound.Store(true)
					}
					panic(r) // re-raise; exec's recover feeds recordPanic, which the cancel already won
				}
			}()
			f := Fork(w, func(*Worker) int {
				close(stolen) // only a thief can get here while root blocks below
				<-release
				return 1
			})
			<-stolen
			_ = f.Join(w) // no visible work anywhere: blocks until the abort
		})
	}()
	select {
	case <-stolen:
	case <-time.After(10 * time.Second):
		t.Fatal("forked task was never stolen")
	}
	time.Sleep(10 * time.Millisecond) // let the root block inside Join
	cancel()
	// The joiner must unwind while the forked task is still blocked: proof
	// that cancellation does not wait on stuck tasks it cannot preempt.
	waitFor(t, 10*time.Second, "Join unwound with poolAbortedError", joinUnwound.Load)
	close(release) // now let the stuck task finish so the run can terminate
	var err error
	select {
	case err = <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after the stuck task was released")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelUnwindsHelpingWaiter pins the between-tasks abort
// check in the Group.Wait/Join help loops: a root waiting on a deep
// backlog of its own tasks must unwind at the next task boundary when the
// run is cancelled, not help-drain the whole backlog first (which would
// return context.Canceled with TasksCancelled == 0 after the full run
// time).
func TestRunContextCancelUnwindsHelpingWaiter(t *testing.T) {
	p := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const tasks = 300
	var ran atomic.Int64
	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.RunContext(ctx, func(w *Worker) {
			g := NewGroup()
			for i := 0; i < tasks; i++ {
				g.Spawn(w, func(*Worker) {
					ran.Add(1)
					time.Sleep(2 * time.Millisecond)
				})
			}
			close(started)
			g.Wait(w) // helps: pops and runs the backlog itself
		})
	}()
	<-started
	time.Sleep(15 * time.Millisecond)
	cancel()
	var err error
	select {
	case err = <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancelling a helping waiter")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cancelled := p.Stats().TasksCancelled
	if cancelled == 0 {
		t.Fatalf("helping waiter drained its whole backlog after cancel (ran %d of %d, cancelled 0)", ran.Load(), tasks)
	}
	if got := ran.Load() + int64(cancelled); got != tasks {
		t.Fatalf("ran %d + cancelled %d != %d spawned", ran.Load(), cancelled, tasks)
	}
}
