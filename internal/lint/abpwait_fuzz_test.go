package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// FuzzWaitGraph feeds arbitrary goroutine/channel programs to abpwait's
// wait/signal graph builder and asserts its contract: newWaitAnalysis and
// the four report passes never panic, the graph and the findings are
// deterministic (two builds serialize identically), every collected site
// is well-formed (attributed to a function node, with a registered node
// and a known kind/op), and a select carrying a default clause is never
// collected as a blocking wait — it is a token deposit or a poll by
// definition. Programs are typechecked hermetically with the same harness
// the other lint fuzz targets use, so import-bearing inputs (time, sync)
// are skipped; the channel/select/go-statement machinery is the
// deterministic core this fuzz pins.
func FuzzWaitGraph(f *testing.F) {
	seeds := []string{
		// Naked wait: a field channel nobody signals, on a launched root.
		"type W struct{ ch chan int }\nfunc (w *W) wait() { <-w.ch }\nfunc Start(w *W) { go w.wait() }",
		// Released wait: close on a concurrent root.
		"type W struct{ ch chan int }\nfunc (w *W) wait() { <-w.ch }\nfunc (w *W) fire() { close(w.ch) }\nfunc Start(w *W) {\n\tgo w.wait()\n\tgo w.fire()\n}",
		// Select with default: never a blocking wait, send still a signal.
		"type P struct{ tok chan struct{} }\nfunc (p *P) deposit() {\n\tselect {\n\tcase p.tok <- struct{}{}:\n\tdefault:\n\t}\n}",
		// Blocking select with and without an escape-named case.
		"type L struct {\n\tjobs chan int\n\tquitCh chan struct{}\n}\nfunc (l *L) run() {\n\tfor {\n\t\tselect {\n\t\tcase <-l.jobs:\n\t\tcase <-l.quitCh:\n\t\t\treturn\n\t\t}\n\t}\n}\nfunc (l *L) bad() {\n\tselect {\n\tcase <-l.jobs:\n\t}\n}\nfunc Start(l *L) {\n\tgo l.run()\n\tgo l.bad()\n}",
		// Wait cycle: each root's release signal sits behind its own wait.
		"type C struct{ a, b chan int }\nfunc (c *C) left() {\n\t<-c.a\n\tc.b <- 1\n}\nfunc (c *C) right() {\n\t<-c.b\n\tc.a <- 1\n}\nfunc Start(c *C) {\n\tgo c.left()\n\tgo c.right()\n}",
		// Range over a channel, closed elsewhere; plus a local alias.
		"type F struct{ src chan int }\nfunc (f *F) drain() {\n\tfor range f.src {\n\t}\n}\nfunc (f *F) alias() {\n\tch := f.src\n\t<-ch\n}\nfunc (f *F) finish() { close(f.src) }\nfunc Start(f *F) {\n\tgo f.drain()\n\tgo f.alias()\n\tgo f.finish()\n}",
		// Escaping literal: waits silent, signals conservatively present.
		"type H struct{ ev chan int }\nfunc Make(h *H) func() {\n\treturn func() { <-h.ev }\n}\nfunc Hook(h *H) func() {\n\treturn func() { h.ev <- 1 }\n}",
		// Defer close behind a wait, nested launches, send in select case.
		"type D struct {\n\tgate chan int\n\tout chan int\n}\nfunc (d *D) run() {\n\tdefer close(d.out)\n\t<-d.gate\n}\nfunc (d *D) pump() {\n\tselect {\n\tcase d.gate <- 1:\n\tcase <-d.out:\n\t}\n}\nfunc Start(d *D) {\n\tgo d.run()\n\tgo func() {\n\t\td.pump()\n\t}()\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		src := "package waitfuzz\n\n" + body
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil || len(file.Imports) > 0 {
			// Not valid Go, or needs an importer this hermetic harness
			// does not wire up.
			return
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Instances:  map[*ast.Ident]types.Instance{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Error: func(error) {}}
		pkg, _ := conf.Check("worksteal/fuzz/wait", fset, []*ast.File{file}, info)
		if pkg == nil {
			return
		}

		build := func() (*waitAnalysis, []string) {
			pass := &Pass{
				Analyzer:  AbpWait,
				Fset:      fset,
				Files:     []*ast.File{file},
				Pkg:       pkg,
				TypesInfo: info,
			}
			a := newWaitAnalysis(pass) // must not panic
			a.reportNakedWaits()
			a.reportMissedSignals()
			a.reportWaitCycles()
			a.reportUnboundedBlocks()
			var shape []string
			for _, w := range a.waits {
				objs := make([]string, 0, len(w.objs))
				for _, o := range w.objs {
					objs = append(objs, fmt.Sprintf("%s/%v", o.name, o.exempt))
				}
				shape = append(shape, fmt.Sprintf("wait %v %d %q %v [%s]",
					fset.Position(w.node.Pos()), w.kind, w.desc, w.escape,
					strings.Join(objs, ",")))
			}
			for _, s := range a.signals {
				shape = append(shape, fmt.Sprintf("signal %v %s wg=%v defer=%v",
					fset.Position(s.node.Pos()), s.op, s.wg, s.deferred))
			}
			diags := pass.diags
			sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
			for _, d := range diags {
				shape = append(shape, fmt.Sprintf("diag %v %s", fset.Position(d.Pos), d.Message))
			}
			return a, shape
		}

		a, shape := build()
		_, again := build()
		if strings.Join(shape, "\n") != strings.Join(again, "\n") {
			t.Fatalf("nondeterministic wait graph:\n--- first ---\n%s\n--- second ---\n%s",
				strings.Join(shape, "\n"), strings.Join(again, "\n"))
		}

		// Well-formedness: every site is attributed and classified.
		for _, w := range a.waits {
			if w.fn == nil || w.node == nil {
				t.Fatalf("wait site with missing attribution: %+v", w)
			}
			if w.kind > waitSleep {
				t.Fatalf("wait site with unknown kind %d at %v", w.kind, fset.Position(w.node.Pos()))
			}
			if w.desc == "" {
				t.Fatalf("wait site with empty description at %v", fset.Position(w.node.Pos()))
			}
		}
		for _, s := range a.signals {
			if s.fn == nil || s.node == nil {
				t.Fatalf("signal site with missing attribution: %+v", s)
			}
			switch s.op {
			case "send", "close", "Add", "Done":
			default:
				t.Fatalf("signal site with unknown op %q at %v", s.op, fset.Position(s.node.Pos()))
			}
			if s.wg != (s.op == "Add" || s.op == "Done") {
				t.Fatalf("signal wg flag %v inconsistent with op %q at %v",
					s.wg, s.op, fset.Position(s.node.Pos()))
			}
		}

		// A select with a default clause is non-blocking by definition and
		// must never appear as a wait site.
		defaulted := map[ast.Node]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, c := range sel.Body.List {
				if clause, ok := c.(*ast.CommClause); ok && clause.Comm == nil {
					defaulted[sel] = true
				}
			}
			return true
		})
		for _, w := range a.waits {
			if defaulted[w.node] {
				t.Fatalf("select with default collected as a blocking wait at %v",
					fset.Position(w.node.Pos()))
			}
		}
	})
}
