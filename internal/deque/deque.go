// Package deque implements the non-blocking work-stealing deque of Arora,
// Blumofe and Plaxton (Figures 4 and 5 of the paper), plus a mutex-based
// deque used as the ablation baseline.
//
// The deque has a bottom, operated on only by its owner (pushBottom,
// popBottom), and a top, from which thief processes steal (popTop). There is
// deliberately no pushTop, since the work-stealing algorithm never needs it.
//
// The implementation meets the paper's relaxed semantics on any good set of
// invocations (no two owner invocations concurrent): owner invocations and
// non-NIL thief invocations are linearizable, and a popTop invocation may
// return NIL if at some point during the invocation the deque is empty or
// the topmost item is removed by another process.
//
// The age variable packs the paper's (tag, top) structure into a single
// 64-bit word manipulated with atomic compare-and-swap: the tag occupies the
// high 32 bits and top the low 32 bits. The tag is changed every time the
// top index is reset so that a preempted thief's stale CAS cannot succeed
// against a recycled top index (the ABA problem). The paper adapts the
// "bounded tags" algorithm; with 2^32 tags a wrap-around inside one popTop
// invocation window is unrealizable in practice, so a plain wrapping counter
// suffices (the ABA failure with artificially tiny tag spaces is
// demonstrated in the instruction-level simulator, package sim).
package deque

import (
	"fmt"

	"worksteal/internal/atomicx"
	"worksteal/internal/fault"
)

// Failpoints compiled into the Figure 5 hot paths (internal/fault,
// DESIGN.md §9). Each sits at the instruction boundary where an
// adversarial kernel stall is most interesting; the chaos tests freeze a
// goroutine there and check that every other process keeps completing its
// own operations — the paper's non-blocking property, exercised natively.
var (
	fpPushBottomAfterStore = fault.Register("deque.pushBottom.afterStore",
		"ABP pushBottom: element stored, new bottom not yet published")
	fpPopTopBeforeCAS = fault.Register("deque.popTop.beforeCAS",
		"ABP popTop: age and bottom loaded, CAS not yet issued (the E8 stall window)")
	fpPopBottomBeforeCAS = fault.Register("deque.popBottom.beforeCAS",
		"ABP popBottom: racing thieves for the last item, CAS not yet issued")
)

// DefaultCapacity is the bound used by New.
const DefaultCapacity = 1 << 13

// age packs tag (high 32 bits) and top (low 32 bits).
func packAge(tag, top uint32) uint64       { return uint64(tag)<<32 | uint64(top) }
func unpackAge(a uint64) (tag, top uint32) { return uint32(a >> 32), uint32(a) }

// Deque is the bounded ABP deque holding items of type *T.
// The zero value is not usable; construct with New or NewWithCapacity.
//
// Safety contract ("good set of invocations"): PushBottom and PopBottom must
// be called only by the single owner; PopTop may be called concurrently by
// any number of thieves.
type Deque[T any] struct {
	// age needs full sequential consistency: thieves arbitrate the topmost
	// item with a CAS, and popBottom's store→load Dekker handshake on
	// (bot, age) is the paper's §3.2 correctness argument.
	age atomicx.SCUint64 // (tag, top)
	// Padding separates the thieves' CAS target (age) from the owner's
	// high-frequency store target (bot), avoiding false sharing between
	// the one cache line every thief hammers and the one the owner owns.
	// A full-line pad isolates regardless of the neighbors' sizes, so the
	// abplayout analyzer can guard it structurally instead of checking
	// hand-counted complement arithmetic.
	_ atomicx.CacheLinePad
	// bot is written only by the owner but participates in the same Dekker
	// handshake (store bot, then load age), so its stores stay sc; the
	// owner's own reloads of it are downgradeable (LoadOwner below).
	bot atomicx.SCUint32 // index below the bottom item
	_   atomicx.CacheLinePad
	// deq slots only ever publish a node from one process to another; the
	// surrounding age/bot protocol supplies all cross-slot ordering.
	deq []atomicx.PublishPointer[T]
	// relaxed gates the proof-checked owner-side downgrades (the abporder
	// owner-op proof: every write of bot sits in an //abp:owner function).
	// Set via SetRelaxed before the deque is shared; plumbed from
	// sched.Config.RelaxedAtomics.
	relaxed bool
}

// New returns an empty deque with DefaultCapacity slots.
func New[T any]() *Deque[T] { return NewWithCapacity[T](DefaultCapacity) }

// NewWithCapacity returns an empty deque with room for capacity items.
func NewWithCapacity[T any](capacity int) *Deque[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("deque: capacity %d < 1", capacity))
	}
	if capacity >= 1<<31 {
		panic(fmt.Sprintf("deque: capacity %d does not fit in 31 bits", capacity))
	}
	return &Deque[T]{deq: make([]atomicx.PublishPointer[T], capacity)}
}

// SetRelaxed toggles the proof-gated owner-side atomics downgrades
// (plain reloads of bot on the owner paths). It must be called before the
// deque is shared — typically right after construction — because the flag
// itself is read without synchronization on every hot-path operation.
func (d *Deque[T]) SetRelaxed(relaxed bool) { d.relaxed = relaxed }

// Cap returns the deque's capacity.
func (d *Deque[T]) Cap() int { return len(d.deq) }

// Len returns an instantaneous estimate of the number of items. It is exact
// when called by the owner with no concurrent thieves; under concurrency it
// may be stale but is never negative.
//
// Memory-ordering note for parkers: bot and age are Go atomics, which are
// sequentially consistent, so a PushBottom that is ordered before some
// other atomic operation X is visible to any Len ordered after X. The
// scheduler's park/wake protocol (sched/lifecycle.go) depends on exactly
// this: a worker publishes its parked flag and then calls Len on every
// deque, while a producer pushes and then reads the parked flags —
// whichever interleaving occurs, a freshly pushed task is either seen by
// the parker's Len scan or earns it a wake signal.
//
//abp:nonblocking
func (d *Deque[T]) Len() int {
	bot := d.bot.Load()
	_, top := unpackAge(d.age.Load())
	if bot <= top {
		return 0
	}
	return int(bot - top)
}

// Empty reports whether the deque appears empty (same caveats as Len).
//
//abp:nonblocking
func (d *Deque[T]) Empty() bool { return d.Len() == 0 }

// PushBottom pushes node onto the bottom of the deque (Figure 5,
// pushBottom). It returns false when the deque is full, in which case the
// caller should execute the work inline instead; this graceful degradation
// preserves depth-first semantics in the scheduler. Only the owner may call
// PushBottom.
//
// The bot reload is owner-relaxed: bot is written by no one else, so the
// owner re-reads its own last store (the paper's owner/thief asymmetry —
// Figure 5's pushBottom issues no synchronizing instruction at all).
//
//abp:owner deque owner: the worker this deque belongs to
//abp:nonblocking
func (d *Deque[T]) PushBottom(node *T) bool {
	localBot := d.bot.LoadOwner(d.relaxed) // load localBot <- bot
	if localBot >= uint32(len(d.deq)) {
		return false
	}
	d.deq[localBot].Store(node) // store node -> deq[localBot]
	fault.Point(fpPushBottomAfterStore)
	localBot++
	d.bot.Store(localBot) // store localBot -> bot
	return true
}

// PopTop attempts to steal the topmost item (Figure 5, popTop). It returns
// nil if the deque is empty or if it loses a race with another process
// removing the topmost item (the relaxed semantics). Any process may call
// PopTop.
//
//abp:nonblocking
func (d *Deque[T]) PopTop() *T {
	oldAge := d.age.Load()   // load oldAge <- age
	localBot := d.bot.Load() // load localBot <- bot
	oldTag, oldTop := unpackAge(oldAge)
	if localBot <= oldTop { // deque empty
		return nil
	}
	node := d.deq[oldTop].Load()        // load node <- deq[oldAge.top]
	newAge := packAge(oldTag, oldTop+1) // newAge.top++
	fault.Point(fpPopTopBeforeCAS)
	if d.age.CompareAndSwap(oldAge, newAge) { // cas(age, oldAge, newAge)
		return node
	}
	return nil
}

// PopBottom pops the bottommost item (Figure 5, popBottom). It returns nil
// when the deque is empty. Only the owner may call PopBottom.
//
// The initial bot reload is owner-relaxed (see PushBottom); the bot STORE
// below must remain sequentially consistent — it is the first half of the
// store(bot)→load(age) Dekker handshake against popTop's
// store(age)→load(bot), the ordering §3.2's last-item race depends on.
//
//abp:owner deque owner: the worker this deque belongs to
//abp:nonblocking
func (d *Deque[T]) PopBottom() *T {
	localBot := d.bot.LoadOwner(d.relaxed) // load localBot <- bot
	if localBot == 0 {
		return nil
	}
	localBot--
	d.bot.Store(localBot)          // store localBot -> bot
	node := d.deq[localBot].Load() // load node <- deq[localBot]
	oldAge := d.age.Load()         // load oldAge <- age
	oldTag, oldTop := unpackAge(oldAge)
	if localBot > oldTop { // more than one item remained: uncontended
		return node
	}
	// The deque held at most one item; thieves may be racing for it.
	// Reset bot, and reset age with a fresh tag so stale thief CASes fail.
	d.bot.Store(0)                 // store 0 -> bot
	newAge := packAge(oldTag+1, 0) // newAge = (tag+1, top=0)
	if localBot == oldTop {
		// Exactly one item: race the thieves for it with a CAS.
		fault.Point(fpPopBottomBeforeCAS)
		if d.age.CompareAndSwap(oldAge, newAge) {
			return node
		}
		// A thief won; age is now (oldTag, oldTop+1) and no further thief
		// can CAS (every popTop now observes bot = 0 <= top). Fall through
		// to reset age to the empty state with a fresh tag.
	}
	d.age.Store(newAge) // store newAge -> age
	return nil
}

// Reset empties the deque. It must only be called when no other process can
// access the deque (for example between runs in a pool). The tag is
// preserved and bumped so that any stale reference still fails its CAS.
//
//abp:owner deque owner: reset runs with no concurrent accessors
//abp:nonblocking
func (d *Deque[T]) Reset() {
	tag, _ := unpackAge(d.age.Load())
	d.bot.Store(0)
	d.age.Store(packAge(tag+1, 0))
	for i := range d.deq {
		d.deq[i].Store(nil)
	}
}
