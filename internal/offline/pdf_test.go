package offline

import (
	"math/rand"
	"testing"

	"worksteal/internal/dag"
	"worksteal/internal/workload"
)

func TestOneDFOrderChain(t *testing.T) {
	g := workload.Chain(5)
	order := OneDFOrder(g)
	for i, o := range order {
		if o != i {
			t.Fatalf("chain order[%d] = %d", i, o)
		}
	}
}

func TestOneDFOrderFigure1(t *testing.T) {
	g := dag.Figure1()
	order := OneDFOrder(g)
	// Depth-first child-first execution of Figure 1: x1 x2, then the
	// spawned child x5..x9, then back to the parent x3, x4 (now enabled),
	// x10, x11 — exactly the single-process execution of the scheduler.
	pos := func(k int) int { return order[dag.Figure1NodeIDs()[k-1]] }
	wantSeq := []int{1, 2, 5, 6, 7, 8, 9, 3, 4, 10, 11}
	for i := 1; i < len(wantSeq); i++ {
		if pos(wantSeq[i-1]) >= pos(wantSeq[i]) {
			t.Fatalf("1DF order wrong: x%d (%d) should precede x%d (%d)",
				wantSeq[i-1], pos(wantSeq[i-1]), wantSeq[i], pos(wantSeq[i]))
		}
	}
	// Every index used exactly once.
	seen := make([]bool, len(order))
	for _, o := range order {
		if o < 0 || o >= len(order) || seen[o] {
			t.Fatalf("order not a permutation: %v", order)
		}
		seen[o] = true
	}
}

func TestPDFIsValidGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		for _, p := range []int{1, 2, 4} {
			prefix := make([]int, 4*g.Work())
			for i := range prefix {
				prefix[i] = rng.Intn(p + 1)
			}
			k := Fixed{NumProcs: p, Prefix: prefix}
			e := PDF(g, k, 100*g.Work()+1000)
			if err := e.Validate(k); err != nil {
				t.Fatalf("%s P=%d: %v", spec.Name, p, err)
			}
			if !e.IsGreedy() {
				t.Fatalf("%s P=%d: PDF schedule not greedy", spec.Name, p)
			}
			if err := CheckTheorem1(e); err != nil {
				t.Errorf("%s P=%d: %v", spec.Name, p, err)
			}
			if err := CheckTheorem2(e, p); err != nil {
				t.Errorf("%s P=%d: %v", spec.Name, p, err)
			}
		}
	}
}

func TestPDFMatchesSerialAtP1(t *testing.T) {
	g := workload.FibDag(8)
	k := Dedicated{NumProcs: 1}
	e := PDF(g, k, 10*g.Work())
	if e.Length() != g.Work() {
		t.Fatalf("P=1 PDF length %d != T1 %d", e.Length(), g.Work())
	}
	// The executed sequence is exactly the 1DF order.
	order := OneDFOrder(g)
	for step, nodes := range e.Steps {
		if len(nodes) != 1 || order[nodes[0]] != step {
			t.Fatalf("step %d executed %v (1DF index %d)", step, nodes, order[nodes[0]])
		}
	}
}

// PDF's reason to exist: its ready-set space stays close to the serial
// schedule's, while arbitrary greedy schedules can balloon. Verified on the
// spine workload where breadth-first choices maximize simultaneous readiness.
func TestPDFSpaceBeatsBreadthGreedy(t *testing.T) {
	g := workload.SpawnSpine(24, 4)
	k := Dedicated{NumProcs: 4}
	serial := PDF(g, Dedicated{NumProcs: 1}, 10*g.Work()).MaxReady()
	pdf := PDF(g, k, 10*g.Work()).MaxReady()
	greedy := Greedy(g, k, 10*g.Work()).MaxReady()
	// Blelloch et al.: PDF premature nodes <= P * Tinf; in practice far
	// tighter. Allow S1 + P*small.
	if pdf > serial+4*8 {
		t.Errorf("PDF max ready %d far above serial %d", pdf, serial)
	}
	t.Logf("maxReady: serial=%d pdf=%d lowest-id-greedy=%d", serial, pdf, greedy)
}

func TestMaxReadyComputedOnValidSchedule(t *testing.T) {
	g := dag.Figure1()
	e := Greedy(g, Figure2Kernel(), 100)
	if mr := e.MaxReady(); mr < 1 || mr > g.NumNodes() {
		t.Fatalf("MaxReady = %d", mr)
	}
}
