package workload

import (
	"testing"

	"worksteal/internal/dag"
)

// FuzzGeneratorsAlwaysValid checks that the randomized generators produce
// valid, executable computation dags for arbitrary seeds and sizes.
func FuzzGeneratorsAlwaysValid(f *testing.F) {
	f.Add(int64(1), uint16(100))
	f.Add(int64(-7), uint16(999))
	f.Add(int64(1<<40), uint16(3))
	f.Fuzz(func(t *testing.T, seed int64, szRaw uint16) {
		size := 2 + int(szRaw)%1500
		for _, g := range []*dag.Graph{RandomSP(seed, size), UnbalancedTree(seed, size)} {
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: %v", g.Label(), err)
			}
			s := dag.NewState(g)
			for !s.Done() {
				ready := s.ReadyNodes()
				if len(ready) == 0 {
					t.Fatalf("%s: deadlock", g.Label())
				}
				s.Execute(ready[0])
			}
		}
	})
}
