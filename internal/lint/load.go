package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go standard library
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader loads and type-checks packages using only the standard library:
// `go list -deps -json` resolves build constraints and yields packages in
// dependency order (dependencies strictly before dependents), so a single
// forward pass with go/types and a map-backed importer checks everything —
// no network, no module downloads, no x/tools. Standard-library
// dependencies are checked with IgnoreFuncBodies (only their exported API
// matters); packages under analysis are checked in full.
type Loader struct {
	mu   sync.Mutex
	fset *token.FileSet
	pkgs map[string]*Package
}

// NewLoader returns an empty loader. Loaders cache by import path, so one
// loader may serve several Load calls cheaply.
func NewLoader() *Loader {
	return &Loader{fset: token.NewFileSet(), pkgs: map[string]*Package{}}
}

// Process-wide loader registry for LoaderFor, keyed by absolute directory.
var (
	loadersMu sync.Mutex
	loaders   = map[string]*Loader{}
)

// LoaderFor returns a process-wide shared loader for dir, creating it on
// first use. Every Tool invocation rooted at the same directory — abpvet
// and abprace back to back, or repeated in-process test runs — then shares
// one parse-and-type-check cache instead of re-checking the dependency
// graph per invocation (BenchmarkAbpvetSharedLoader measures the saving).
// The cache trusts the tree not to change underneath it within a process
// lifetime, which holds for CLI runs (one invocation) and test binaries
// (fixtures are static).
func LoaderFor(dir string) *Loader {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return NewLoader() // degrade to uncached rather than fail
	}
	loadersMu.Lock()
	defer loadersMu.Unlock()
	l, ok := loaders[abs]
	if !ok {
		l = NewLoader()
		loaders[abs] = l
	}
	return l
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (for example "./...") relative to dir, type-checks
// the matched packages and every dependency, and returns the matched
// packages sorted by import path.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	// Shared loaders (LoaderFor) may be hit from concurrent tests; the
	// whole Load is one critical section because check mutates the cache.
	l.mu.Lock()
	defer l.mu.Unlock()
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go view of the tree: cgo-transparent packages fall back to
	// their Go implementations, which is all the analyzers need.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var roots []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err != nil {
			break // io.EOF on a well-formed stream
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.check(&lp)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			roots = append(roots, pkg)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	return roots, nil
}

// check parses and type-checks one listed package, reusing the cache. Its
// imports must already be cached, which `go list -deps` dependency order
// guarantees.
func (l *Loader) check(lp *listedPkg) (*Package, error) {
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		p := &Package{ImportPath: "unsafe", Standard: true, Fset: l.fset, Types: types.Unsafe}
		l.pkgs["unsafe"] = p
		return p, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         importerFunc(l.importPkg),
		IgnoreFuncBodies: lp.Standard,
		FakeImportC:      true,
	}
	var softErrs []error
	if lp.Standard {
		// Dependencies only need a usable API surface; collect rather than
		// abort on oddities in library internals.
		conf.Error = func(err error) { softErrs = append(softErrs, err) }
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil && !lp.Standard {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	p := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Standard:   lp.Standard,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[lp.ImportPath] = p
	return p, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("package %q not yet loaded (go list -deps order violated?)", path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
