package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The call graph is the second half of the flow-aware engine: where the CFG
// (cfg.go) orders operations inside one function, the call graph relates
// functions — including the relations PR 2's syntactic walks could not see.
// Every function literal is a first-class node with a lexical parent, every
// edge is labelled with how the callee runs (plain call, go statement,
// defer), and closure captures are resolved through go/types. That is
// exactly the information the ownership analyses need: a `go` edge moves
// the callee to another goroutine (so deque ownership must NOT propagate
// across it), a defer edge stays on the calling goroutine (so it must), and
// a function literal that is never immediately invoked is a value whose
// eventual caller is unknown (so it inherits nothing).

// A funcNode is one function in the call graph: a top-level declaration or
// a function literal.
type funcNode struct {
	decl   *ast.FuncDecl // nil for literals
	lit    *ast.FuncLit  // nil for declarations
	parent *funcNode     // lexically enclosing node; nil for declarations
}

// body returns the node's body, which may be nil (declared externally).
func (n *funcNode) body() *ast.BlockStmt {
	if n.decl != nil {
		return n.decl.Body
	}
	return n.lit.Body
}

// name renders the node for diagnostics: the declaration's name, or the
// enclosing declaration's name with a "function literal in" prefix.
func (n *funcNode) name() string {
	if n.decl != nil {
		return funcName(n.decl)
	}
	for p := n.parent; p != nil; p = p.parent {
		if p.decl != nil {
			return fmt.Sprintf("function literal in %s", funcName(p.decl))
		}
	}
	return "function literal"
}

// A callKind labels how a call edge transfers control.
type callKind uint8

const (
	// callStatic is a plain, synchronous call on the current goroutine.
	callStatic callKind = iota
	// callGo launches the callee on a new goroutine.
	callGo
	// callDefer schedules the callee on the current goroutine at return.
	callDefer
)

func (k callKind) String() string {
	switch k {
	case callGo:
		return "go"
	case callDefer:
		return "defer"
	default:
		return "call"
	}
}

type callEdge struct {
	to   *funcNode
	kind callKind
	// site is the block-level statement or expression performing the call
	// (the *ast.GoStmt / *ast.DeferStmt for go/defer edges, the
	// *ast.CallExpr otherwise), so interprocedural clients can ask the
	// caller's CFG ordering questions about the edge.
	site ast.Node
}

// A callGraph is the package-level call graph: one node per declaration and
// per function literal, with labelled edges for statically resolvable
// calls. Calls through function values, interface methods that do not
// resolve, and cross-package callees produce no edge — the analyzers treat
// absence of an edge conservatively.
type callGraph struct {
	info     *types.Info
	nodes    []*funcNode
	declNode map[*types.Func]*funcNode
	litNode  map[*ast.FuncLit]*funcNode
	edges    map[*funcNode][]callEdge

	captured map[*ast.FuncLit][]*types.Var
}

// newCallGraph builds the call graph of one or more type-checked packages'
// files (the usual client passes one package; the constructor is
// multi-package-capable for module-wide queries).
func newCallGraph(info *types.Info, files ...[]*ast.File) *callGraph {
	g := &callGraph{
		info:     info,
		declNode: map[*types.Func]*funcNode{},
		litNode:  map[*ast.FuncLit]*funcNode{},
		edges:    map[*funcNode][]callEdge{},
		captured: map[*ast.FuncLit][]*types.Var{},
	}
	// Phase 1: register every declaration so forward references resolve.
	var decls []*ast.FuncDecl
	for _, fs := range files {
		for _, fd := range declsOf(fs) {
			node := &funcNode{decl: fd}
			g.nodes = append(g.nodes, node)
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.declNode[fn] = node
			}
			decls = append(decls, fd)
		}
	}
	// Phase 2: walk bodies, creating literal nodes and edges.
	for i, fd := range decls {
		if fd.Body != nil {
			g.walk(g.nodes[i], fd.Body)
		}
	}
	return g
}

// walk scans one node's own body. Nested literals become child nodes and
// are walked once, under themselves.
func (g *callGraph) walk(from *funcNode, n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := g.addLit(x, from)
			g.walk(child, x.Body)
			return false
		case *ast.GoStmt:
			g.handleCall(from, x.Call, callGo, x)
			return false
		case *ast.DeferStmt:
			g.handleCall(from, x.Call, callDefer, x)
			return false
		case *ast.CallExpr:
			g.handleCall(from, x, callStatic, x)
			return false
		}
		return true
	})
}

func (g *callGraph) addLit(lit *ast.FuncLit, parent *funcNode) *funcNode {
	if n, ok := g.litNode[lit]; ok {
		return n
	}
	n := &funcNode{lit: lit, parent: parent}
	g.nodes = append(g.nodes, n)
	g.litNode[lit] = n
	return n
}

func (g *callGraph) handleCall(from *funcNode, call *ast.CallExpr, kind callKind, site ast.Node) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		child := g.addLit(lit, from)
		g.edges[from] = append(g.edges[from], callEdge{to: child, kind: kind, site: site})
		g.walk(child, lit.Body)
	} else {
		if fn := calleeFunc(g.info, call); fn != nil {
			if to, ok := g.declNode[fn]; ok {
				g.edges[from] = append(g.edges[from], callEdge{to: to, kind: kind, site: site})
			}
			// sync.Once.Do invokes its argument synchronously on the
			// calling goroutine (at most once, under the Once's mutual
			// exclusion), so a literal passed to it is a static callee,
			// not an escaping value.
			if isOnceDo(fn) && len(call.Args) == 1 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
					child := g.addLit(lit, from)
					g.edges[from] = append(g.edges[from], callEdge{to: child, kind: callStatic, site: site})
				}
			}
		}
		// The callee expression itself may contain calls or literals
		// (f(x)(y), (func(){...})()-returning chains): walk it.
		g.walk(from, call.Fun)
	}
	for _, arg := range call.Args {
		g.walk(from, arg)
	}
}

// reachable computes the set of nodes reachable from roots along edges
// whose kind satisfies follow.
func (g *callGraph) reachable(roots []*funcNode, follow func(callKind) bool) map[*funcNode]bool {
	seen := map[*funcNode]bool{}
	frontier := append([]*funcNode(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, e := range g.edges[n] {
			if follow(e.kind) && !seen[e.to] {
				seen[e.to] = true
				frontier = append(frontier, e.to)
			}
		}
	}
	return seen
}

// captures returns the variables a function literal captures from enclosing
// scopes: every *types.Var used in the literal's body (including nested
// literals) that is neither a struct field nor declared inside the literal.
func (g *callGraph) captures(lit *ast.FuncLit) []*types.Var {
	if vs, ok := g.captured[lit]; ok {
		return vs
	}
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := g.info.Uses[ident].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	g.captured[lit] = out
	return out
}

// inspectOwn walks only the node's own body, not descending into nested
// function literals (each literal is its own node).
func (n *funcNode) inspectOwn(f func(ast.Node) bool) {
	body := n.body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.lit {
			return false
		}
		return f(x)
	})
}

// ownerRoots returns the declaration nodes carrying the //abp:owner
// directive.
func (g *callGraph) ownerRoots() []*funcNode {
	var roots []*funcNode
	for _, n := range g.nodes {
		if n.decl != nil && hasDirective(n.decl.Doc, "//abp:owner") {
			roots = append(roots, n)
		}
	}
	return roots
}

// ownedNodes is the ownership-propagation rule shared by owneronly and
// ownerescape: starting from //abp:owner declarations, ownership extends
// along static and defer edges (same goroutine) but never along go edges
// (a new goroutine is by definition not the single owner) and never to a
// literal that merely escapes as a value (no edge exists for those).
func (g *callGraph) ownedNodes() map[*funcNode]bool {
	return g.reachable(g.ownerRoots(), func(k callKind) bool { return k != callGo })
}

// selectorFieldName resolves the field name a selector like w.parked (or a
// chain ending in it) denotes, or "" when sel is not a field selection.
func selectorFieldName(info *types.Info, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj().Name()
	}
	return ""
}

// isCASShaped reports whether fn is a compare-and-swap-shaped or
// PushBottom-shaped call: a function whose single boolean result signals
// whether the operation took effect and must therefore be consulted.
func isCASShaped(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	name := fn.Name()
	if name != "PushBottom" && !strings.HasPrefix(name, "CompareAndSwap") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	return res.Len() == 1 && isBool(res.At(0).Type())
}

// isOnceDo reports whether fn is (*sync.Once).Do.
func isOnceDo(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Do" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Once"
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

// enclosingFuncNode returns the innermost funcNode whose body lexically
// contains pos, or nil.
func (g *callGraph) enclosingFuncNode(pos token.Pos) *funcNode {
	var best *funcNode
	bestSize := token.Pos(-1)
	for _, n := range g.nodes {
		body := n.body()
		if body == nil || pos < body.Pos() || pos >= body.End() {
			continue
		}
		size := body.End() - body.Pos()
		if best == nil || size < bestSize {
			best, bestSize = n, size
		}
	}
	return best
}
