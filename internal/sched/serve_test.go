// Tests for the service API (serve.go): Serve/Submit lifecycle, handle
// outcomes, per-submission cancellation and panic isolation, and the
// overload path — the bounded injector's admission contract. The contract
// under test throughout: a Submit either returns an error immediately or
// returns a Handle whose Wait always eventually returns; there is no
// silent drop and no wedged Wait.
package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startServing runs p.Serve on its own goroutine and returns a stop
// function that cancels it and waits for it to return, reporting Serve's
// error. Tests submit only between startServing and stop.
func startServing(t *testing.T, p *Pool) (stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.Serve(ctx)
	}()
	waitFor(t, 10*time.Second, "pool to start serving", p.serving.Load)
	return func() error {
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("Serve did not return after its context was cancelled")
			return nil
		}
	}
}

func TestServeSubmitBasic(t *testing.T) {
	p := New(Config{Workers: 4})
	stop := startServing(t, p)
	var total atomic.Int64
	const subs = 50
	handles := make([]*Handle, 0, subs)
	for i := 0; i < subs; i++ {
		h, err := p.Submit(func(w *Worker) {
			for j := 0; j < 10; j++ {
				w.Spawn(func(*Worker) { total.Add(1) })
			}
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("submission %d: Wait = %v", i, err)
		}
	}
	if got := total.Load(); got != subs*10 {
		t.Fatalf("ran %d of %d spawned tasks", got, subs*10)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v, want context.Canceled", err)
	}
	if got := p.Stats().Submitted; got != subs {
		t.Fatalf("Stats.Submitted = %d, want %d", got, subs)
	}
}

// Submissions work from many goroutines at once — the MPMC half of the
// injector contract — and each Handle resolves independently.
func TestSubmitConcurrentSubmitters(t *testing.T) {
	p := New(Config{Workers: 4})
	stop := startServing(t, p)
	const producers, perProducer = 8, 25
	var total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(producers)
	for g := 0; g < producers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				h, err := p.Submit(func(w *Worker) {
					w.Spawn(func(*Worker) { total.Add(1) })
					total.Add(1)
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if err := h.Wait(); err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != producers*perProducer*2 {
		t.Fatalf("ran %d of %d tasks", got, producers*perProducer*2)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v, want context.Canceled", err)
	}
}

func TestSubmitNotServing(t *testing.T) {
	p := New(Config{Workers: 2})
	if h, err := p.Submit(func(*Worker) {}); !errors.Is(err, ErrNotServing) || h != nil {
		t.Fatalf("Submit before Serve: handle=%v err=%v, want nil handle and ErrNotServing", h, err)
	}
	stop := startServing(t, p)
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
	if h, err := p.Submit(func(*Worker) {}); !errors.Is(err, ErrNotServing) || h != nil {
		t.Fatalf("Submit after Serve returned: handle=%v err=%v, want nil handle and ErrNotServing", h, err)
	}
}

// A pre-cancelled submission context is rejected up front; a cancellation
// that arrives mid-flight aborts that submission — and only it — and its
// Handle reports the context's error.
func TestSubmitContextCancellation(t *testing.T) {
	p := New(Config{Workers: 2})
	stop := startServing(t, p)

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if h, err := p.SubmitContext(pre, func(*Worker) {}); !errors.Is(err, context.Canceled) || h != nil {
		t.Fatalf("pre-cancelled SubmitContext: handle=%v err=%v, want nil handle and context.Canceled", h, err)
	}

	gate := make(chan struct{})
	entered := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	h, err := p.SubmitContext(ctx, func(*Worker) {
		close(entered)
		<-gate
	})
	if err != nil {
		t.Fatalf("SubmitContext: %v", err)
	}
	<-entered // the root is executing, pinned on the gate
	cancel()
	// The Handle resolves to the context error without waiting for the
	// pinned task (a running task cannot be preempted, but the submission's
	// outcome is already decided).
	if werr := h.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", werr)
	}

	// An unrelated submission on the same serving pool is unaffected.
	var ran atomic.Bool
	h2, err := p.Submit(func(*Worker) { ran.Store(true) })
	if err != nil {
		t.Fatalf("Submit after a cancelled sibling: %v", err)
	}
	if err := h2.Wait(); err != nil {
		t.Fatalf("sibling Wait = %v", err)
	}
	if !ran.Load() {
		t.Fatal("sibling submission did not run")
	}

	close(gate)
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// A panic inside one submission surfaces as a PanicError from that
// submission's Handle and leaves the pool serving other submissions.
func TestSubmitPanicIsolation(t *testing.T) {
	p := New(Config{Workers: 4})
	stop := startServing(t, p)
	h, err := p.Submit(func(*Worker) { panic("submission failure") })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	werr := h.Wait()
	var pe PanicError
	if !errors.As(werr, &pe) || pe.Value != "submission failure" {
		t.Fatalf("Wait = %v, want PanicError{submission failure}", werr)
	}
	var count atomic.Int64
	h2, err := p.Submit(func(w *Worker) {
		for i := 0; i < 50; i++ {
			w.Spawn(func(*Worker) { count.Add(1) })
		}
	})
	if err != nil {
		t.Fatalf("Submit after a panicked sibling: %v", err)
	}
	if err := h2.Wait(); err != nil {
		t.Fatalf("Wait after a panicked sibling = %v", err)
	}
	if count.Load() != 50 {
		t.Fatalf("ran %d of 50 tasks after a panicked sibling", count.Load())
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// Stopping the service aborts submissions still in flight: their Handles
// complete with ErrStopped rather than waiting forever.
func TestServeStopAbortsInFlight(t *testing.T) {
	p := New(Config{Workers: 2})
	stop := startServing(t, p)
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	var handles []*Handle
	for i := 0; i < 2; i++ {
		h, err := p.Submit(func(*Worker) {
			started <- struct{}{}
			<-gate
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		handles = append(handles, h)
	}
	<-started
	<-started
	stopErr := make(chan error, 1)
	go func() { stopErr <- stop() }()
	// The Handles must resolve with ErrStopped even though the pinned
	// tasks have not returned yet (Serve is still waiting on its workers).
	for i, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("submission %d: Wait wedged across a service stop", i)
		}
		if err := h.Err(); !errors.Is(err, ErrStopped) {
			t.Fatalf("submission %d: Err = %v, want ErrStopped", i, err)
		}
	}
	close(gate) // release the workers so Serve can shut down
	if err := <-stopErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// The batch API still works after a service session on the same pool, and
// vice versa: Run is one submission of the same engine.
func TestRunAfterServe(t *testing.T) {
	p := New(Config{Workers: 4})
	stop := startServing(t, p)
	h, err := p.Submit(func(*Worker) {})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
	var count atomic.Int64
	p.Run(func(w *Worker) {
		for i := 0; i < 50; i++ {
			w.Spawn(func(*Worker) { count.Add(1) })
		}
	})
	if count.Load() != 50 {
		t.Fatalf("Run after Serve executed %d of 50 tasks", count.Load())
	}
	stop = startServing(t, p)
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("second Serve returned %v", err)
	}
}

// Starting Serve while a Run is in flight (or vice versa) panics with the
// one-engine-at-a-time error instead of corrupting the session.
func TestServeOverlapPanics(t *testing.T) {
	p := New(Config{Workers: 2})
	stop := startServing(t, p)
	defer func() {
		if err := stop(); !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve returned %v", err)
		}
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic from Run while Serve is in flight")
		}
	}()
	p.Run(func(*Worker) {})
}

// plugWorkers submits one gated submission per worker and waits until every
// worker is pinned executing one, so subsequently submitted work stays in
// the injector. Returns the release function.
func plugWorkers(t *testing.T, p *Pool) func() {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{}, len(p.workers))
	handles := make([]*Handle, 0, len(p.workers))
	for range p.workers {
		h, err := p.Submit(func(*Worker) {
			started <- struct{}{}
			<-gate
		})
		if err != nil {
			t.Fatalf("plug Submit: %v", err)
		}
		handles = append(handles, h)
	}
	for range p.workers {
		<-started
	}
	return func() {
		close(gate)
		for _, h := range handles {
			if err := h.Wait(); err != nil {
				t.Fatalf("plug Wait: %v", err)
			}
		}
	}
}

// The overload contract under the default ShedReject policy: a full
// injector rejects with ErrOverloaded and a nil Handle — never a silent
// drop — and every accepted submission still completes (never a wedged
// Wait).
func TestSubmitOverloadReject(t *testing.T) {
	p := New(Config{Workers: 2, InjectorShards: 1, InjectorCapacity: 2})
	stop := startServing(t, p)
	release := plugWorkers(t, p)

	var done atomic.Int64
	accepted := make([]*Handle, 0, 2)
	for i := 0; i < 2; i++ { // fill the single two-slot shard
		h, err := p.Submit(func(*Worker) { done.Add(1) })
		if err != nil {
			t.Fatalf("fill Submit %d: %v", i, err)
		}
		accepted = append(accepted, h)
	}
	h, err := p.Submit(func(*Worker) { done.Add(1) })
	if !errors.Is(err, ErrOverloaded) || h != nil {
		t.Fatalf("overflow Submit: handle=%v err=%v, want nil handle and ErrOverloaded", h, err)
	}
	if got := p.Stats().SubmitsRejected; got != 1 {
		t.Fatalf("Stats.SubmitsRejected = %d, want 1", got)
	}

	release()
	for i, h := range accepted {
		if err := h.Wait(); err != nil {
			t.Fatalf("accepted submission %d: Wait = %v after the overload episode", i, err)
		}
	}
	if got := done.Load(); got != 2 {
		t.Fatalf("ran %d accepted submissions, want 2 (and not the rejected one)", got)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// Under ShedCallerRuns an overflow submission executes synchronously on
// the submitting goroutine — spawns and all, depth-first — and its Handle
// is already resolved when Submit returns.
func TestSubmitOverloadCallerRuns(t *testing.T) {
	p := New(Config{Workers: 2, InjectorShards: 1, InjectorCapacity: 2, Overload: ShedCallerRuns})
	stop := startServing(t, p)
	release := plugWorkers(t, p)

	for i := 0; i < 2; i++ {
		if _, err := p.Submit(func(*Worker) {}); err != nil {
			t.Fatalf("fill Submit %d: %v", i, err)
		}
	}
	var onCaller atomic.Int64
	h, err := p.Submit(func(w *Worker) {
		w.Spawn(func(*Worker) { onCaller.Add(1) })
		onCaller.Add(1)
	})
	if err != nil {
		t.Fatalf("caller-runs Submit: %v", err)
	}
	if h == nil {
		t.Fatal("caller-runs Submit returned a nil Handle")
	}
	// The shed submission ran to completion before Submit returned.
	if got := onCaller.Load(); got != 2 {
		t.Fatalf("caller-runs submission ran %d of its 2 tasks before Submit returned", got)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("caller-runs Handle.Err = %v immediately after Submit", err)
	}
	if got := p.Stats().SubmitsCallerRun; got != 1 {
		t.Fatalf("Stats.SubmitsCallerRun = %d, want 1", got)
	}
	release()
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// Submissions from inside a task running on the pool: a submission may
// seed follow-on submissions, each an independent run record.
func TestSubmitFromTask(t *testing.T) {
	p := New(Config{Workers: 4})
	stop := startServing(t, p)
	var inner atomic.Int64
	innerHandles := make(chan *Handle, 10)
	h, err := p.Submit(func(*Worker) {
		for i := 0; i < 10; i++ {
			ih, err := p.Submit(func(*Worker) { inner.Add(1) })
			if err != nil {
				t.Errorf("nested Submit: %v", err)
				return
			}
			innerHandles <- ih
		}
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("outer Wait: %v", err)
	}
	close(innerHandles)
	for ih := range innerHandles {
		if err := ih.Wait(); err != nil {
			t.Fatalf("inner Wait: %v", err)
		}
	}
	if got := inner.Load(); got != 10 {
		t.Fatalf("ran %d of 10 nested submissions", got)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}
