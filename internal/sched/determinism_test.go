// Regression tests for the round-robin victim-cursor reset (Config.
// RoundRobinVictim): Worker.rr used to survive from one session into the
// next, so a second identically-configured run started its rotation at
// wherever the previous run's steals happened to leave the cursor — the
// "deterministic" ablation was only deterministic for the first run on a
// pool. startSession now zeroes every cursor.
//
// The checks here are white-box on purpose: an end-to-end assertion that
// two runs produce identical Stats.Steals would be flaky, because which
// steal attempts find work depends on OS scheduling even when the victim
// *sequence* is fixed. What the reset guarantees — and what these tests
// pin — is the sequence itself. (The rng is deliberately not reset per
// session: random victim selection models the paper's stochastic analysis,
// and reseeding it each session would only launder scheduling
// nondeterminism into false reproducibility; see startSession's comment.)
package sched

import "testing"

// The cursor observed by the first task of a session is zero, no matter
// what the previous session left in it — for both the batch and the
// service engines. (Workers: 1, so nothing else touches rr between the
// reset and the probe: stealOnce returns before the cursor with n == 1.)
func TestVictimCursorResetAtSessionStart(t *testing.T) {
	p := New(Config{Workers: 1, RoundRobinVictim: true})

	p.workers[0].rr = 999 // a previous session's leftover cursor
	observed := -1
	p.Run(func(w *Worker) { observed = w.rr })
	if observed != 0 {
		t.Fatalf("first task of a Run observed rr = %d, want 0 (cursor not reset at session start)", observed)
	}

	p.workers[0].rr = 999
	stop := startServing(t, p)
	h, err := p.Submit(func(w *Worker) { observed = w.rr })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if observed != 0 {
		t.Fatalf("first task of a Serve session observed rr = %d, want 0", observed)
	}
	if err := stop(); err == nil {
		t.Fatal("Serve returned nil after cancellation")
	}
}

// The victim sequence itself: from a zero cursor the rotation is a fixed,
// reproducible order, a stale cursor shifts its phase, and resetting the
// cursor (what startSession does) restores the original sequence exactly.
// Single-goroutine and white-box: the workers are never started, the test
// drives stealOnce directly and identifies each victim by the task it
// primed into that victim's deque.
func TestRoundRobinVictimSequenceDeterministic(t *testing.T) {
	const perVictim = 3
	p := New(Config{Workers: 4, RoundRobinVictim: true})
	owner := make(map[*Task]int)
	prime := func() {
		for i := 1; i < len(p.workers); i++ {
			for j := 0; j < perVictim; j++ {
				task := &Task{}
				owner[task] = i
				if !p.workers[i].dq.PushBottom(task) {
					t.Fatalf("priming push onto worker %d failed", i)
				}
			}
		}
	}
	record := func() []int {
		var seq []int
		for len(seq) < perVictim*(len(p.workers)-1) {
			if task := p.workers[0].stealOnce(); task != nil {
				seq = append(seq, owner[task])
			}
		}
		return seq
	}
	equal := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	prime()
	fresh := record() // the sequence a zero cursor produces

	p.workers[0].rr = 7 // a stale cursor from a "previous session"
	prime()
	stale := record()
	if equal(fresh, stale) {
		t.Fatalf("test premise broken: a stale cursor produced the fresh sequence %v", fresh)
	}

	p.workers[0].rr = 0 // the startSession reset
	prime()
	if reset := record(); !equal(fresh, reset) {
		t.Fatalf("victim sequence after cursor reset = %v, want the fresh sequence %v", reset, fresh)
	}
}

// End-to-end flavor of the same regression: two identical single-worker
// Serve sessions observe identical cursors task after task. With one
// worker the cursor never moves, so this is really asserting the reset is
// wired into the serve path's startSession too — it would fail with the
// pre-fix engine if any inter-session state leaked into rr.
func TestVictimCursorStableAcrossServeSessions(t *testing.T) {
	p := New(Config{Workers: 1, RoundRobinVictim: true})
	session := func() []int {
		stop := startServing(t, p)
		defer func() {
			if err := stop(); err == nil {
				t.Fatal("Serve returned nil after cancellation")
			}
		}()
		var cursors []int
		for i := 0; i < 5; i++ {
			h, err := p.Submit(func(w *Worker) { cursors = append(cursors, w.rr) })
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if err := h.Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
		}
		return cursors
	}
	first := session()
	p.workers[0].rr = 42 // simulate leakage the reset must erase
	second := session()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cursor diverged between identical sessions: %v vs %v", first, second)
		}
	}
}
