package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"worksteal/internal/lint"
)

// raceDir is the lint fixture replaying the PR-1 Pool.Stats plain-counter
// race; abprace reports exactly one finding there, carrying both
// goroutine provenance chains.
const raceDir = "../../internal/lint/testdata/src/seededrace"

// provenance lists the substrings every rendering of the seeded finding
// must contain: the racing field, the worker goroutine's call chain, and
// the external caller's.
var provenance = []string{
	"possible data race on field steals",
	"goroutine (*Worker).loop",
	"(*Worker).loop -> (*Worker).record",
	"external caller",
	"(*Pool).Stats",
}

// runCLI invokes the command in process and returns its exit status and
// captured streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitCleanIsZero(t *testing.T) {
	// The command's own package launches no goroutines.
	code, stdout, stderr := runCLI(t, ".")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings: %q", stdout)
	}
}

func TestSeededRaceText(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", raceDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	for _, want := range provenance {
		if !strings.Contains(stdout, want) {
			t.Errorf("text output lacks %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stdout, "(abprace)") {
		t.Errorf("finding line does not name its analyzer: %q", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("summary missing from stderr: %q", stderr)
	}
}

func TestSeededRaceJSON(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-C", raceDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Analyzer != "abprace" || f.File != "seededrace.go" {
		t.Errorf("unexpected finding %+v", f)
	}
	for _, want := range provenance {
		if !strings.Contains(f.Message, want) {
			t.Errorf("JSON message lacks %q:\n%s", want, f.Message)
		}
	}
}

func TestSeededRaceSARIF(t *testing.T) {
	code, stdout, _ := runCLI(t, "-sarif", "-", "-C", raceDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif - stdout is not pure SARIF: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("unexpected SARIF shape: %s", stdout)
	}
	if name := log.Runs[0].Tool.Driver.Name; name != "abprace" {
		t.Errorf("SARIF driver name = %q, want abprace", name)
	}
	res := log.Runs[0].Results[0]
	if res.RuleID != "abprace" {
		t.Errorf("ruleId = %q, want abprace", res.RuleID)
	}
	for _, want := range provenance {
		if !strings.Contains(res.Message.Text, want) {
			t.Errorf("SARIF message lacks %q:\n%s", want, res.Message.Text)
		}
	}
}

func TestUnusedIgnoresScopedToRaceDirectives(t *testing.T) {
	// The fixture holds two stale directives: a //abp:race-ignore, which
	// abprace judges (its analyzer ran), and an //abp:ignore mustcheck,
	// which it must not (mustcheck did not run, so staleness is
	// undecidable here — that judgment belongs to abpvet).
	code, stdout, stderr := runCLI(t, "-unused-ignores", "-C", "testdata/unusedignore", ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "//abp:race-ignore") || !strings.Contains(stdout, "suppresses nothing") {
		t.Errorf("stale race directive not reported: %q", stdout)
	}
	if strings.Contains(stdout, "mustcheck") {
		t.Errorf("abprace judged a directive outside its analyzer set: %q", stdout)
	}
}

func TestUnusedIgnoresStillRejectsOnly(t *testing.T) {
	code, _, stderr := runCLI(t, "-only", "abprace", "-unused-ignores", ".")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "cannot be combined with -only") {
		t.Errorf("stderr %q does not explain the flag conflict", stderr)
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	// Recording the seeded race exits 0: refreshing a baseline is an
	// accept-the-world operation, not a failed check.
	code, stdout, stderr := runCLI(t, "-write-baseline", path, "-C", raceDir, ".")
	if code != 0 {
		t.Fatalf("write-baseline run: exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("write-baseline run printed findings: %q", stdout)
	}
	if !strings.Contains(stderr, "wrote baseline with 1 finding(s)") {
		t.Errorf("summary missing from stderr: %q", stderr)
	}

	// The file is the -json Report format carrying the abprace finding.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep lint.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("baseline file does not parse as a Report: %v\n%s", err, data)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "abprace" {
		t.Fatalf("unexpected baseline contents: %+v", rep.Findings)
	}

	// Round trip: feeding the written baseline back suppresses the race.
	code, stdout, stderr = runCLI(t, "-baseline", path, "-C", raceDir, ".")
	if code != 0 {
		t.Fatalf("baselined run: exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined run still printed findings: %q", stdout)
	}
}
