// Command abpvet runs the repository's custom concurrency-contract
// analyzers (package internal/lint) over Go packages, in the manner of a
// golang.org/x/tools/go/analysis multichecker but with zero dependencies
// outside the standard library. It is the historical name for the suite
// and remains as a thin alias; cmd/abplint is the canonical front end and
// the one CI invokes.
//
// Usage:
//
//	go run ./cmd/abpvet [-only owneronly,tagaba] [-json] [-sarif file]
//	                    [-baseline file] [-write-baseline file]
//	                    [-unused-ignores] [-C dir] [packages]
//
// Packages default to ./... . Test files and testdata directories are not
// analyzed (the analyzers guard production invariants; tests intentionally
// abuse them).
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// operational failure (bad flags, load or type-check errors, unwritable
// output). Findings can be suppressed case by case with a justified
// //abp:ignore comment (see package internal/lint); -unused-ignores
// reports directives that no longer suppress anything, -baseline drops
// findings recorded in a previous report, and -write-baseline records the
// current findings as that report.
package main

import (
	"io"
	"os"

	"worksteal/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored for in-process testing: it returns
// the exit status instead of calling os.Exit. The implementation lives in
// lint.Tool so cmd/abprace shares it.
func run(args []string, stdout, stderr io.Writer) int {
	tool := &lint.Tool{Name: "abpvet", Analyzers: lint.All()}
	return tool.Main(args, stdout, stderr)
}
