package sim

import (
	"fmt"
	"math/rand"
)

// Slot is one kernel scheduling decision: process Proc runs for Instr
// instructions this round. The engine clamps Instr into [2C, 3C].
type Slot struct {
	Proc  int
	Instr int
}

// Kernel is the adversary: at each round it decides which processes run and
// for how many instructions. The three adversary classes of Section 4.4
// differ in what they may consult:
//
//   - a benign adversary chooses only the NUMBER of processes (the engine's
//     rng picks which, uniformly);
//   - an oblivious adversary fixes the whole schedule up front (it must not
//     consult the View);
//   - an adaptive adversary may consult the View, which exposes the live
//     scheduler state.
type Kernel interface {
	// P returns the total number of processes.
	P() int
	// PlanRound returns the slots for round r. rng is the engine's seeded
	// source; kernels must use it (and not their own) so runs stay
	// reproducible.
	PlanRound(r int, v *View, rng *rand.Rand) []Slot
}

// allSlots returns slots for every process with the minimum budget.
func allSlots(p int, v *View) []Slot {
	slots := make([]Slot, p)
	for i := range slots {
		slots[i] = Slot{Proc: i, Instr: v.InstrLo()}
	}
	return slots
}

// DedicatedKernel schedules all P processes at every round: the dedicated
// environment of Theorem 9 (P_A = P).
type DedicatedKernel struct{ NumProcs int }

// P returns the number of processes.
func (k DedicatedKernel) P() int { return k.NumProcs }

// PlanRound schedules everyone.
func (k DedicatedKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	return allSlots(k.NumProcs, v)
}

// BenignKernel is the Theorem 10 adversary: it chooses how many processes
// run each round (via Avail), and the engine's rng picks which ones
// uniformly at random.
type BenignKernel struct {
	NumProcs int
	// Avail returns the number of processes to schedule at round r. If
	// nil, a uniformly random count in [1, P] is used.
	Avail func(r int) int
}

// P returns the number of processes.
func (k BenignKernel) P() int { return k.NumProcs }

// PlanRound schedules Avail(r) uniformly random processes.
func (k BenignKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	n := 0
	if k.Avail != nil {
		n = k.Avail(r)
	} else {
		n = 1 + rng.Intn(k.NumProcs)
	}
	if n < 0 {
		n = 0
	}
	if n > k.NumProcs {
		n = k.NumProcs
	}
	perm := rng.Perm(k.NumProcs)[:n]
	slots := make([]Slot, 0, n)
	for _, p := range perm {
		slots = append(slots, Slot{Proc: p, Instr: v.InstrLo() + rng.Intn(v.InstrHi()-v.InstrLo()+1)})
	}
	return slots
}

// ConstBenign returns a benign kernel that schedules exactly avail random
// processes every round, so P_A ~= avail.
func ConstBenign(p, avail int) BenignKernel {
	return BenignKernel{NumProcs: p, Avail: func(int) int { return avail }}
}

// ObliviousKernel commits to a schedule before execution: Schedule(r) lists
// the process ids to run at round r, independent of execution state. The
// Theorem 11 adversary.
type ObliviousKernel struct {
	NumProcs int
	Schedule func(r int) []int
}

// P returns the number of processes.
func (k ObliviousKernel) P() int { return k.NumProcs }

// PlanRound schedules the precommitted set.
func (k ObliviousKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	ids := k.Schedule(r)
	slots := make([]Slot, 0, len(ids))
	for _, p := range ids {
		slots = append(slots, Slot{Proc: p, Instr: v.InstrLo()})
	}
	return slots
}

// NewSeededOblivious returns an oblivious kernel whose round-r set is a
// pseudorandom subset of avail processes derived from seed and r only (so
// it is fixed before execution, unlike BenignKernel whose subsets consume
// the engine's evolving rng state).
func NewSeededOblivious(p, avail int, seed int64) ObliviousKernel {
	return ObliviousKernel{
		NumProcs: p,
		Schedule: func(r int) []int {
			rng := rand.New(rand.NewSource(seed ^ (int64(r)+1)*0x5851F42D4C957F2D))
			return rng.Perm(p)[:avail]
		},
	}
}

// FixedSetKernel always schedules the same subset of processes: the
// simplest oblivious starvation schedule. Without yieldToRandom the
// computation livelocks whenever the excluded processes hold all the work;
// with yieldToRandom the substitution rule eventually forces excluded
// processes in (Theorem 11's mechanism).
type FixedSetKernel struct {
	NumProcs int
	Set      []int
}

// P returns the number of processes.
func (k FixedSetKernel) P() int { return k.NumProcs }

// PlanRound schedules the fixed set.
func (k FixedSetKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	slots := make([]Slot, 0, len(k.Set))
	for _, p := range k.Set {
		slots = append(slots, Slot{Proc: p, Instr: v.InstrLo()})
	}
	return slots
}

// StarveWorkersKernel is an adaptive adversary that schedules only
// processes with no assigned node (thieves), starving every process that
// holds work. Without yieldToAll this prevents all progress; the
// substitution rule of yieldToAll defeats it (Theorem 12's mechanism).
// If every process holds work it schedules the single process with the
// smallest id, to stay minimally live.
type StarveWorkersKernel struct{ NumProcs int }

// P returns the number of processes.
func (k StarveWorkersKernel) P() int { return k.NumProcs }

// PlanRound schedules only apparent thieves.
func (k StarveWorkersKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	var slots []Slot
	for p := 0; p < k.NumProcs; p++ {
		if v.Halted(p) {
			continue
		}
		if !v.HasAssigned(p) && v.DequeSize(p) == 0 {
			slots = append(slots, Slot{Proc: p, Instr: v.InstrLo()})
		}
	}
	if len(slots) == 0 {
		for p := 0; p < k.NumProcs; p++ {
			if !v.Halted(p) {
				return []Slot{{Proc: p, Instr: v.InstrLo()}}
			}
		}
	}
	return slots
}

// PreemptLockHolderKernel is an adaptive adversary that schedules every
// process EXCEPT those currently holding a deque lock. Against the
// lock-based deque it preempts a process the moment it acquires a lock and
// lets every other process spin on it — the pathology non-blocking data
// structures eliminate. Against the ABP deque there are no lock holders, so
// it degenerates to the dedicated kernel.
type PreemptLockHolderKernel struct{ NumProcs int }

// P returns the number of processes.
func (k PreemptLockHolderKernel) P() int { return k.NumProcs }

// PlanRound schedules all non-lock-holders (always at least one process).
func (k PreemptLockHolderKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	holders := make(map[int]bool)
	for p := 0; p < k.NumProcs; p++ {
		if h := v.LockHolder(p); h >= 0 {
			holders[h] = true
		}
	}
	var slots []Slot
	for p := 0; p < k.NumProcs; p++ {
		if !holders[p] && !v.Halted(p) {
			slots = append(slots, Slot{Proc: p, Instr: v.InstrLo()})
		}
	}
	if len(slots) == 0 { // everyone holds a lock or halted: release pressure
		for p := 0; p < k.NumProcs; p++ {
			if !v.Halted(p) {
				return []Slot{{Proc: p, Instr: v.InstrLo()}}
			}
		}
	}
	return slots
}

// PeriodicKernel schedules all P processes at rounds that are multiples of
// Period and nobody in between: the simulator analogue of the Theorem 1
// lower-bound kernel (package offline). Period = 1 is dedicated.
type PeriodicKernel struct {
	NumProcs int
	Period   int
}

// P returns the number of processes.
func (k PeriodicKernel) P() int { return k.NumProcs }

// PlanRound schedules everyone every Period-th round.
func (k PeriodicKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	if k.Period < 1 {
		panic(fmt.Sprintf("sim: PeriodicKernel period %d", k.Period))
	}
	if r%k.Period != 0 {
		return nil
	}
	return allSlots(k.NumProcs, v)
}

// ManualKernel replays an explicit list of rounds, then schedules everyone.
// Used by tests that need precise control.
type ManualKernel struct {
	NumProcs int
	Rounds   [][]Slot
}

// P returns the number of processes.
func (k ManualKernel) P() int { return k.NumProcs }

// PlanRound replays the scripted round, or schedules everyone past the end.
func (k ManualKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	if r < len(k.Rounds) {
		return k.Rounds[r]
	}
	return allSlots(k.NumProcs, v)
}

// CoschedulingKernel models gang scheduling (Ousterhout 1982; Feitelson &
// Rudolph 1995), the related-work alternative the paper's Section 5
// discusses: the whole computation is scheduled simultaneously for OnRounds
// rounds, then completely descheduled for OffRounds rounds while another
// gang owns the machine. Work stealing needs no yields here: whenever
// anything runs, everything runs.
type CoschedulingKernel struct {
	NumProcs  int
	OnRounds  int
	OffRounds int
}

// P returns the number of processes.
func (k CoschedulingKernel) P() int { return k.NumProcs }

// PlanRound schedules the whole gang or nobody.
func (k CoschedulingKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	if k.OnRounds < 1 || k.OffRounds < 0 {
		panic(fmt.Sprintf("sim: bad coscheduling kernel %+v", k))
	}
	if r%(k.OnRounds+k.OffRounds) < k.OnRounds {
		return allSlots(k.NumProcs, v)
	}
	return nil
}

// SpacePartitionKernel models static space partitioning (the other
// Section 5 alternative): a fixed subset of Avail processes runs at every
// round, the rest never run. Unlike the oblivious FixedSetKernel used as a
// starvation adversary, this kernel always includes process zero, modeling
// an allocator that grants the job Avail dedicated processors; the
// remaining P-Avail processes exist but are never serviced, so the
// scheduler must make progress with a statically reduced P_A.
type SpacePartitionKernel struct {
	NumProcs int
	Avail    int
}

// P returns the number of processes.
func (k SpacePartitionKernel) P() int { return k.NumProcs }

// PlanRound schedules processes 0..Avail-1.
func (k SpacePartitionKernel) PlanRound(r int, v *View, rng *rand.Rand) []Slot {
	n := k.Avail
	if n < 1 || n > k.NumProcs {
		panic(fmt.Sprintf("sim: bad space partition %+v", k))
	}
	slots := make([]Slot, 0, n)
	for p := 0; p < n; p++ {
		slots = append(slots, Slot{Proc: p, Instr: v.InstrLo()})
	}
	return slots
}
