// Package casloop is the analysistest fixture for the casloop analyzer:
// CAS retry loops must reload their expected value each attempt.
package casloop

import "sync/atomic"

// staleMethod retries with a value loaded once, outside the loop.
func staleMethod(v *atomic.Int64) {
	old := v.Load()
	for {
		if v.CompareAndSwap(old, old+1) { // want `never reloads expected value "old"`
			return
		}
	}
}

// staleInit loads in the loop init, which runs only once — still stale.
func staleInit(v *atomic.Int64) {
	for old := v.Load(); !v.CompareAndSwap(old, old+1); { // want `never reloads expected value "old"`
	}
}

// staleFunc is the same bug through the function-style API.
func staleFunc(p *int64) {
	old := atomic.LoadInt64(p)
	for !atomic.CompareAndSwapInt64(p, old, old+1) { // want `never reloads expected value "old"`
	}
}

// fresh reloads per attempt: accepted.
func fresh(v *atomic.Int64) {
	for {
		old := v.Load()
		if v.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// freshPost reloads in the post statement, which runs every iteration.
func freshPost(v *atomic.Int64) {
	for old := v.Load(); !v.CompareAndSwap(old, old+1); old = v.Load() {
	}
}

// spin expects a constant; constants cannot go stale.
func spin(flag *atomic.Int32) {
	for !flag.CompareAndSwap(0, 1) {
	}
}

// inline reloads by construction.
func inline(v *atomic.Int64) {
	for !v.CompareAndSwap(v.Load(), 0) {
	}
}

// suppressed shows a justified //abp:ignore: the finding is real but
// explicitly waived, so no diagnostic surfaces.
func suppressed(v *atomic.Int64) bool {
	old := v.Load()
	for i := 0; i < 1; i++ {
		//abp:ignore casloop single-attempt loop: the bound makes staleness harmless
		if v.CompareAndSwap(old, old+1) {
			return true
		}
	}
	return false
}

// bareIgnore lacks a justification, so the directive is inert.
func bareIgnore(v *atomic.Int64) bool {
	old := v.Load()
	for i := 0; i < 1; i++ {
		//abp:ignore casloop
		if v.CompareAndSwap(old, old+1) { // want `never reloads expected value "old"`
			return true
		}
	}
	return false
}

var _ = staleMethod
var _ = staleInit
var _ = staleFunc
var _ = fresh
var _ = freshPost
var _ = spin
var _ = inline
var _ = suppressed
var _ = bareIgnore
