package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"worksteal/internal/sched"
	"worksteal/internal/table"
)

// The elastic experiment (EXPERIMENTS.md E17) is the paper's P_A(t) story
// measured on the native pool: one long-lived Serve session is resized
// through a ladder of fleet sizes — full, half, quarter, single — with the
// same saturating windowed submission stream running against each, and
// throughput is reported per phase. The paper's bound says execution time
// scales with T1/P_A; under a saturating stream that is the claim that
// throughput tracks the granted processor count, so the recorded figure is
// per-worker time (elapsed × P_A / tasks) — a flat line across the ladder
// when the host grants at least maxW real cores. When it grants fewer (a
// 1-core CI box runs every fleet size at serial speed), the ladder
// collapses toward the core count and the snapshot records that shape
// faithfully. A final churn phase resizes randomly mid-stream — the
// adversarial P_A(t) schedule — and is reported but not gated (its timing
// depends on the random walk); the run then exits through Pool.Drain,
// which must complete with every accepted submission intact.
//
// The -check flag gates the ladder phases against a committed snapshot
// (BENCH_elastic.json) with the same calibration-normalized 10% budget as
// the hotpath gate. Because the multi-worker phases' shape depends on the
// host's core count (calibration normalizes instruction speed, not
// parallelism), those rows are gated only when the baseline was recorded
// at the same GOMAXPROCS; the single-worker phase — the whole
// submit/spawn/steal/retire path at serial speed, core-count independent —
// is gated unconditionally.

type elasticPhaseRow struct {
	Phase string `json:"phase"`
	// Workers is P_A during the phase; 0 marks the churn phase, whose
	// fleet size is a random walk.
	Workers     int     `json:"workers"`
	Submissions int64   `json:"submissions"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	// PerWorkerNs is the gated figure: aggregate worker-nanoseconds per
	// task (elapsed * P_A / tasks), the inverse of per-worker throughput.
	PerWorkerNs float64 `json:"per_worker_ns_per_task"`
}

type elasticReport struct {
	Experiment    string            `json:"experiment"`
	GOMAXPROCS    int               `json:"gomaxprocs"`
	MaxWorkers    int               `json:"max_workers"`
	Reps          int               `json:"reps"`
	NodeWork      int               `json:"nodework"`
	CalibrationNs float64           `json:"calibration_ns_per_op"`
	Phases        []elasticPhaseRow `json:"phases"`
	DrainNs       int64             `json:"drain_ns"`
	Resizes       int64             `json:"resizes"`
	Retired       int64             `json:"workers_retired"`
}

// tasksPerSubmission is the fan-out of one benchmark submission: the root
// plus seven spawned children, each spinning nodeWork iterations.
const tasksPerSubmission = 8

// elasticWindow is each submitter's outstanding-submission cap. A window
// of one would make the stream latency-bound (each submitter waits a full
// submit→wake→run→complete round trip, so throughput tracks the submitter
// count, not the fleet). Sixteen outstanding per submitter keeps a backlog
// in front of every fleet size in the ladder — the offered load is
// constant and saturating, so measured throughput is capacity-bound and
// tracking P_A is exactly what the gate verifies.
const elasticWindow = 16

// elasticLoad drives the saturating stream: `submitters` goroutines each
// submit perSubmitter fan-out submissions, never holding more than
// elasticWindow outstanding, and wait out the stragglers. Returns the wall
// time for the whole stream.
func elasticLoad(p *sched.Pool, submitters, perSubmitter, nodeWork int) time.Duration {
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(submitters)
	for s := 0; s < submitters; s++ {
		go func() {
			defer wg.Done()
			<-release
			window := make([]*sched.Handle, 0, elasticWindow)
			for i := 0; i < perSubmitter; i++ {
				for {
					h, err := p.Submit(func(w *sched.Worker) {
						for j := 0; j < tasksPerSubmission-1; j++ {
							w.Spawn(func(*sched.Worker) { stdlibSpin(nodeWork) })
						}
						stdlibSpin(nodeWork)
					})
					if err == nil {
						window = append(window, h)
						break
					}
					runtime.Gosched() // ErrOverloaded: shed and retry
				}
				if len(window) == elasticWindow {
					if err := window[0].Wait(); err != nil {
						panic(err)
					}
					window = window[1:]
				}
			}
			for _, h := range window {
				if err := h.Wait(); err != nil {
					panic(err)
				}
			}
		}()
	}
	start := time.Now()
	close(release)
	wg.Wait()
	return time.Since(start)
}

// elasticPhase drives one saturated phase at the given fleet size and
// returns its best-of-reps row. The submitter count and submission total
// are the same for every phase (they depend on maxW, not pa), so the only
// variable across the ladder is the granted fleet — the paper's P_A.
func elasticPhase(p *sched.Pool, name string, pa, maxW, nodeWork, reps int) elasticPhaseRow {
	if err := p.Resize(pa); err != nil {
		panic(err)
	}
	// Let the fleet settle on the target before timing: grows are
	// near-instant, shrinks complete at worker safe points.
	for p.Stats().ActiveWorkers != int64(pa) {
		time.Sleep(100 * time.Microsecond)
	}
	perSubmitter := 256
	subs := int64(maxW * perSubmitter)
	var bestD time.Duration
	for r := 0; r < reps; r++ {
		if d := elasticLoad(p, maxW, perSubmitter, nodeWork); r == 0 || d < bestD {
			bestD = d
		}
	}
	tasks := subs * tasksPerSubmission
	return elasticPhaseRow{
		Phase:       name,
		Workers:     pa,
		Submissions: subs,
		ElapsedNs:   int64(bestD),
		TasksPerSec: float64(tasks) / bestD.Seconds(),
		PerWorkerNs: float64(bestD) * float64(pa) / float64(tasks),
	}
}

// elasticChurn is the adversarial P_A(t) phase: a background resizer walks
// the fleet randomly across [1, maxW] every few hundred microseconds while
// the same saturating stream runs. Reported, not gated.
func elasticChurn(p *sched.Pool, maxW, nodeWork, reps int) elasticPhaseRow {
	rng := rand.New(rand.NewSource(0xE1A5))
	perSubmitter := 256
	subs := int64(maxW * perSubmitter)
	var bestD time.Duration
	for r := 0; r < reps; r++ {
		stopResizer := make(chan struct{})
		resizerDone := make(chan struct{})
		go func() {
			defer close(resizerDone)
			for {
				select {
				case <-stopResizer:
					return
				default:
				}
				if err := p.Resize(1 + rng.Intn(maxW)); err != nil {
					panic(err)
				}
				//abp:wait-ignore the sleep IS the workload: it paces the adversarial resize schedule, and nothing ever signals the resizer — stopResizer is polled at the top of the loop within one period
				time.Sleep(time.Duration(200+rng.Intn(400)) * time.Microsecond)
			}
		}()
		d := elasticLoad(p, maxW, perSubmitter, nodeWork)
		close(stopResizer)
		<-resizerDone
		if r == 0 || d < bestD {
			bestD = d
		}
	}
	tasks := subs * tasksPerSubmission
	return elasticPhaseRow{
		Phase:       "churn",
		Workers:     0,
		Submissions: subs,
		ElapsedNs:   int64(bestD),
		TasksPerSec: float64(tasks) / bestD.Seconds(),
	}
}

// elasticExperiment runs the resize ladder plus the churn phase on one
// Serve session, exits it through a graceful drain, renders the table,
// writes the snapshot, and optionally gates against a committed baseline.
func elasticExperiment(nodeWork, reps int, outPath, checkPath string) {
	writeOut := true
	if outPath == "" {
		if checkPath != "" {
			writeOut = false
		}
		outPath = "BENCH_elastic.json"
	}
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 4 {
		maxW = 4
	}
	// Ten times the dag experiments' per-node spin: a task must cost far
	// more than its share of the submission plumbing (handle completion,
	// park/wake latency, submitter scheduling) or the stream measures that
	// plumbing instead of fleet capacity and every P_A looks the same.
	nodeWork *= 10
	rep := elasticReport{
		Experiment:    "elastic",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		MaxWorkers:    maxW,
		Reps:          reps,
		NodeWork:      nodeWork,
		CalibrationNs: benchCalibrate(reps),
	}

	p := sched.New(sched.Config{Workers: maxW, MaxWorkers: maxW, ParkThreshold: 2, InjectorCapacity: 1 << 15})
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(context.Background()) }()
	for {
		h, err := p.Submit(func(*sched.Worker) {})
		if err == nil {
			if werr := h.Wait(); werr != nil {
				panic(werr)
			}
			break
		}
		runtime.Gosched()
	}

	quarter := maxW / 4
	if quarter < 1 {
		quarter = 1
	}
	half := maxW / 2
	if half < 1 {
		half = 1
	}
	phases := []struct {
		name string
		pa   int
	}{{"full", maxW}, {"half", half}, {"quarter", quarter}, {"single", 1}}
	tb := table.New(fmt.Sprintf("elastic: saturated-stream throughput vs P_A (max=%d, nodework=%d, best of %d reps)",
		maxW, nodeWork, reps), "phase", "P_A", "submissions", "time", "tasks/s", "ns/task/worker")
	for _, ph := range phases {
		row := elasticPhase(p, ph.name, ph.pa, maxW, nodeWork, reps)
		rep.Phases = append(rep.Phases, row)
		tb.Row(row.Phase, row.Workers, row.Submissions, time.Duration(row.ElapsedNs).Round(time.Microsecond),
			fmt.Sprintf("%.0f", row.TasksPerSec), fmt.Sprintf("%.1f", row.PerWorkerNs))
	}
	churn := elasticChurn(p, maxW, nodeWork, reps)
	rep.Phases = append(rep.Phases, churn)
	tb.Row(churn.Phase, "1..max", churn.Submissions, time.Duration(churn.ElapsedNs).Round(time.Microsecond),
		fmt.Sprintf("%.0f", churn.TasksPerSec), "-")
	tb.Render(os.Stdout)

	// Exit through the graceful path: every accepted submission has already
	// completed (the loop is closed), so the drain must report nil and Serve
	// must return nil.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	dstart := time.Now()
	if err := p.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: elastic drain: %v\n", err)
		os.Exit(1)
	}
	rep.DrainNs = int64(time.Since(dstart))
	if err := <-serveDone; err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: Serve after drain: %v\n", err)
		os.Exit(1)
	}
	s := p.Stats()
	rep.Resizes, rep.Retired = s.Resizes, s.WorkersRetired
	if s.TasksDropped != 0 {
		fmt.Fprintf(os.Stderr, "abpbench: elastic run dropped %d tasks\n", s.TasksDropped)
		os.Exit(1)
	}
	fmt.Printf("drain: %v; resizes=%d workers-retired=%d; per-worker throughput is the gated column\n",
		time.Duration(rep.DrainNs).Round(time.Microsecond), rep.Resizes, rep.Retired)

	if writeOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "abpbench: marshal report: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(outPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "abpbench: write %s: %v\n", outPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if checkPath != "" && !elasticCheck(rep, checkPath) {
		os.Exit(1)
	}
}

// elasticCheck gates the ladder phases' per-worker ns/task against a
// committed snapshot, calibration-normalized exactly like hotpathCheck.
// The churn phase (Workers == 0) is reported, not gated. Missing baseline
// phases are skipped (a new phase is not a regression).
func elasticCheck(cur elasticReport, checkPath string) bool {
	data, err := os.ReadFile(checkPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: read baseline %s: %v\n", checkPath, err)
		os.Exit(2)
	}
	var base elasticReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: parse baseline %s: %v\n", checkPath, err)
		os.Exit(2)
	}
	curCal, baseCal := cur.CalibrationNs, base.CalibrationNs
	if curCal <= 0 || baseCal <= 0 {
		curCal, baseCal = 1, 1
	}
	const budget = 1.10
	ok := true
	baseline := map[string]elasticPhaseRow{}
	for _, row := range base.Phases {
		baseline[row.Phase] = row
	}
	sameShape := cur.GOMAXPROCS == base.GOMAXPROCS
	for _, row := range cur.Phases {
		if row.Workers == 0 {
			continue
		}
		if row.Workers > 1 && !sameShape {
			// Multi-worker phases divide work across real cores; comparing
			// them across hosts with different core counts gates the
			// machine, not the scheduler. The single-worker phase carries
			// the cross-machine gate.
			fmt.Printf("check elastic/%s: skipped (baseline GOMAXPROCS %d != %d)\n",
				row.Phase, base.GOMAXPROCS, cur.GOMAXPROCS)
			continue
		}
		b, found := baseline[row.Phase]
		if !found || b.PerWorkerNs <= 0 || row.PerWorkerNs <= 0 {
			continue
		}
		want := b.PerWorkerNs / baseCal
		ratio := (row.PerWorkerNs / curCal) / want
		verdict := "ok"
		if ratio > budget {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("check elastic/%s per-worker ns/task: %.2f/spin vs baseline %.2f (%.2fx, budget %.2fx): %s\n",
			row.Phase, row.PerWorkerNs/curCal, want, ratio, budget, verdict)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "abpbench: elastic per-worker throughput regressed beyond 10%% of %s\n", checkPath)
	}
	return ok
}
