// Package mustcheck is the analysistest fixture for the mustcheck
// analyzer: the boolean result of a PushBottom/CompareAndSwap-shaped call
// must be consulted — a refused push or failed CAS is an answer, not a
// formality.
package mustcheck

import "sync/atomic"

type deque struct {
	items []*int
	cap   int
}

func (d *deque) PushBottom(v *int) bool {
	if len(d.items) >= d.cap {
		return false
	}
	d.items = append(d.items, v)
	return true
}

// discards covers the three syntactic discard shapes.
func discards(d *deque) {
	d.PushBottom(new(int))       // want `boolean result of d.PushBottom is discarded`
	go d.PushBottom(new(int))    // want `discarded by the go statement`
	defer d.PushBottom(new(int)) // want `discarded by the defer statement`
	_ = d.PushBottom(new(int))   // want `explicitly discarded to _`
}

// deadAssign stores the result but overwrites it before any read: the
// flow-aware case a syntactic checker cannot see.
func deadAssign(d *deque) bool {
	ok := d.PushBottom(new(int)) // want `assigned to "ok" but that value is never consulted`
	ok = false
	return ok
}

// useBeforeRedefine reads the variable only BEFORE the push overwrites it:
// the earlier read satisfies the compiler but not the push's definition.
func useBeforeRedefine(d *deque) {
	ok := false
	println(ok)                 // reads the first definition, not the push's
	ok = d.PushBottom(new(int)) // want `assigned to "ok" but that value is never consulted`
}

// condUse consults the result in the if-statement's condition.
func condUse(d *deque) {
	if ok := d.PushBottom(new(int)); !ok { // accepted: consulted in the condition
		return
	}
}

// laterUse consults the result only after intervening control flow.
func laterUse(d *deque) bool {
	ok := d.PushBottom(new(int)) // accepted: read after the loop
	for i := 0; i < 3; i++ {
	}
	return ok
}

// branchUse consults the result on one branch only: that is still a use.
func branchUse(d *deque, verbose bool) {
	ok := d.PushBottom(new(int)) // accepted: read on the verbose path
	if verbose {
		println(ok)
	}
}

// closureUse hands the result to a closure: a use at an unknown time, which
// conservatively counts.
func closureUse(d *deque) func() bool {
	ok := d.PushBottom(new(int)) // accepted: captured by the returned closure
	return func() bool { return ok }
}

// firstWriter is the classic justified discard: on a lost CAS another
// goroutine already published an equally good value.
func firstWriter(p *atomic.Pointer[int], v *int) {
	//abp:ignore mustcheck first-writer-wins: a lost race means an equivalent value is already published
	p.CompareAndSwap(nil, v) // accepted: justified ignore
}

// flaggedCAS is the same shape without the justification.
func flaggedCAS(p *atomic.Pointer[int], v *int) {
	p.CompareAndSwap(nil, v) // want `boolean result of p.CompareAndSwap is discarded`
}

var (
	_ = discards
	_ = deadAssign
	_ = useBeforeRedefine
	_ = condUse
	_ = laterUse
	_ = branchUse
	_ = closureUse
	_ = firstWriter
	_ = flaggedCAS
)
