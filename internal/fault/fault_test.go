package fault

import (
	"sync"
	"testing"
	"time"
)

func TestDisabledPointIsNoOp(t *testing.T) {
	Reset()
	Point("never.armed") // must not panic, block, or count
	if Hits("never.armed") != 0 {
		t.Fatal("disabled point counted a hit")
	}
}

func TestArmedUnrelatedPointPassesThrough(t *testing.T) {
	Reset()
	defer Reset()
	Enable("some.other.point", Rule{Action: ActionPanic})
	Point("this.one") // armed != 0, but no rule for this name
	if got := Hits("this.one"); got != 0 {
		t.Fatalf("Hits = %d for an unarmed name", got)
	}
}

func TestOneShotPanic(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Rule{Action: ActionPanic, OneShot: true})
	func() {
		defer func() {
			r := recover()
			ip, ok := r.(InjectedPanic)
			if !ok || ip.Point != "p" {
				t.Fatalf("recovered %#v, want InjectedPanic{p}", r)
			}
			if ip.Error() == "" {
				t.Fatal("empty InjectedPanic message")
			}
		}()
		Point("p")
	}()
	Point("p") // one-shot: second hit must not fire
	if got, want := Hits("p"), int64(2); got != want {
		t.Fatalf("Hits = %d, want %d", got, want)
	}
	if got := Fired("p"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestTimesCapsFiring(t *testing.T) {
	Reset()
	defer Reset()
	Enable("t", Rule{Action: ActionYield, Times: 3})
	for i := 0; i < 10; i++ {
		Point("t")
	}
	if got := Fired("t"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestEveryNth(t *testing.T) {
	Reset()
	defer Reset()
	Enable("n", Rule{Action: ActionYield, EveryNth: 4})
	for i := 0; i < 9; i++ {
		Point("n")
	}
	// Hits 1, 5, 9 are eligible.
	if got := Fired("n"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestProbabilityDeterministicPerSeed(t *testing.T) {
	Reset()
	defer Reset()
	run := func(seed int64) int64 {
		Enable("prob", Rule{Action: ActionYield, Prob: 0.3, Seed: seed})
		for i := 0; i < 200; i++ {
			Point("prob")
		}
		defer Disable("prob")
		return Fired("prob")
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed fired %d then %d times", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("p=0.3 fired %d of 200 (degenerate)", a)
	}
	if c := run(43); c == a {
		t.Logf("different seeds fired identically (%d); possible but unusual", c)
	}
}

func TestSuspendAndResume(t *testing.T) {
	Reset()
	defer Reset()
	Enable("s", Rule{Action: ActionSuspend, OneShot: true})
	released := make(chan struct{})
	go func() {
		Point("s")
		close(released)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for Suspended("s") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("goroutine never suspended")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-released:
		t.Fatal("suspended goroutine ran before Resume")
	case <-time.After(20 * time.Millisecond):
	}
	Resume("s")
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("Resume did not release the goroutine")
	}
	if Suspended("s") != 0 {
		t.Fatal("Suspended != 0 after release")
	}
	Point("s") // after Resume, further suspend fires pass through
}

func TestResetReleasesSuspended(t *testing.T) {
	Reset()
	defer Reset()
	Enable("r", Rule{Action: ActionSuspend})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Point("r")
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for Suspended("r") != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("suspended %d of 3", Suspended("r"))
		}
		time.Sleep(time.Millisecond)
	}
	Reset()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Reset did not release suspended goroutines")
	}
}

func TestReEnableReleasesOldSuspensions(t *testing.T) {
	Reset()
	defer Reset()
	Enable("re", Rule{Action: ActionSuspend})
	done := make(chan struct{})
	go func() {
		Point("re")
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for Suspended("re") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("never suspended")
		}
		time.Sleep(time.Millisecond)
	}
	Enable("re", Rule{Action: ActionYield}) // re-arm: must release the old window
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("re-Enable stranded a suspended goroutine")
	}
}

func TestDelayAction(t *testing.T) {
	Reset()
	defer Reset()
	Enable("d", Rule{Action: ActionDelay, Delay: 30 * time.Millisecond, OneShot: true})
	start := time.Now()
	Point("d")
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay action returned after %v", elapsed)
	}
}

func TestEnableValidatesProb(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p > 1")
		}
	}()
	Enable("bad", Rule{Prob: 1.5})
}

func TestRegisterAndCatalog(t *testing.T) {
	name := Register("test.catalog.point", "a test point")
	if name != "test.catalog.point" {
		t.Fatalf("Register returned %q", name)
	}
	for _, p := range Catalog() {
		if p.Name == "test.catalog.point" && p.Desc == "a test point" {
			return
		}
	}
	t.Fatal("registered point missing from Catalog")
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		ActionDelay: "delay", ActionYield: "yield",
		ActionPanic: "panic", ActionSuspend: "suspend", Action(9): "Action(9)",
	} {
		if got := a.String(); got != want {
			t.Fatalf("Action.String() = %q, want %q", got, want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	rs, err := ParseSpec("a.b=suspend:oneshot; c.d=delay:d=250us:p=0.25:seed=9 ;e.f=yield:nth=3:times=2;g.h=panic")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rs))
	}
	if r := rs["a.b"]; r.Action != ActionSuspend || !r.OneShot {
		t.Fatalf("a.b = %+v", r)
	}
	if r := rs["c.d"]; r.Action != ActionDelay || r.Delay != 250*time.Microsecond || r.Prob != 0.25 || r.Seed != 9 {
		t.Fatalf("c.d = %+v", r)
	}
	if r := rs["e.f"]; r.Action != ActionYield || r.EveryNth != 3 || r.Times != 2 {
		t.Fatalf("e.f = %+v", r)
	}
	if r := rs["g.h"]; r.Action != ActionPanic {
		t.Fatalf("g.h = %+v", r)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"noequals",
		"=suspend",
		"a.b=explode",
		"a.b=delay:d=notaduration",
		"a.b=delay:p=2.0",
		"a.b=yield:wat=1",
		"a.b=yield:times=x",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestEnableSpecArmsAll(t *testing.T) {
	Reset()
	defer Reset()
	if err := EnableSpec("x.y=yield;z.w=yield:nth=2"); err != nil {
		t.Fatal(err)
	}
	Point("x.y")
	Point("z.w")
	if Fired("x.y") != 1 || Fired("z.w") != 1 {
		t.Fatalf("fired x.y=%d z.w=%d, want 1 and 1", Fired("x.y"), Fired("z.w"))
	}
	if err := EnableSpec("broken"); err == nil {
		t.Fatal("EnableSpec accepted a broken spec")
	}
}

func TestConcurrentHitsAreSafe(t *testing.T) {
	Reset()
	defer Reset()
	Enable("conc", Rule{Action: ActionYield, Prob: 0.5, EveryNth: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Point("conc")
			}
		}()
	}
	wg.Wait()
	if got := Hits("conc"); got != 8000 {
		t.Fatalf("Hits = %d, want 8000", got)
	}
}
