package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"worksteal/internal/sched"
	"worksteal/internal/table"
)

// The submit experiment probes the service engine (Pool.Serve/Submit) from
// both sides of queueing theory:
//
//   - closed loop: G submitter goroutines each run Submit+Wait back to
//     back, so the number of in-flight submissions is pinned at G and the
//     measurement is the engine's sustainable throughput and per-request
//     sojourn under a fixed concurrency level;
//   - open loop: submissions are offered at a fixed rate regardless of
//     completions, so once the offered rate passes the service rate the
//     bounded injector must shed (ErrOverloaded) rather than let the
//     backlog — and every sojourn behind it — grow without bound. The
//     rejected column is the admission control working as specified.
//
// Results go to stdout as tables and to -out (default BENCH_submit.json)
// as a machine-readable snapshot for tracking across revisions.

type submitClosedRow struct {
	Submitters    int     `json:"submitters"`
	Submissions   int64   `json:"submissions"`
	DurationNs    int64   `json:"duration_ns"`
	ThroughputPS  float64 `json:"throughput_per_sec"`
	MeanSojournNs int64   `json:"mean_sojourn_ns"`
}

type submitOpenRow struct {
	OfferedPS     int     `json:"offered_per_sec"`
	Offered       int64   `json:"offered"`
	Accepted      int64   `json:"accepted"`
	Rejected      int64   `json:"rejected"`
	Completed     int64   `json:"completed"`
	MeanSojournNs int64   `json:"mean_sojourn_ns"`
	AcceptRatio   float64 `json:"accept_ratio"`
}

type submitReport struct {
	Experiment   string            `json:"experiment"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	Workers      int               `json:"workers"`
	TaskSpins    int               `json:"task_spins"`
	SpawnsPerSub int               `json:"spawns_per_submission"`
	Reps         int               `json:"reps"`
	ClosedLoop   []submitClosedRow `json:"closed_loop"`
	OpenLoop     []submitOpenRow   `json:"open_loop"`
}

// submitTask is one submission's work: a root that forks spawnsPerSub
// subtasks of taskSpins spin iterations each, so every submission
// exercises the full path — injector, deque, steal — not just the injector.
func submitTask(taskSpins, spawnsPerSub int) func(*sched.Worker) {
	return func(w *sched.Worker) {
		g := sched.NewGroup()
		for i := 0; i < spawnsPerSub; i++ {
			g.Spawn(w, func(*sched.Worker) { chaosSpin(taskSpins) })
		}
		g.Wait(w)
	}
}

// serveForBench starts p.Serve on a background goroutine and blocks until
// the pool accepts submissions (Submit stops returning ErrNotServing — the
// probe submissions are counted by the caller's warmup). Returns a stop
// function that cancels service and waits for Serve to return.
func serveForBench(p *sched.Pool) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Serve(ctx)
	}()
	for {
		h, err := p.Submit(func(*sched.Worker) {})
		if err == nil {
			_ = h.Wait()
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	return func() {
		cancel()
		<-done
	}
}

// submitClosed measures one closed-loop configuration: G submitters,
// Submit+Wait back to back for the window. Best-throughput rep wins.
func submitClosed(workers, submitters, taskSpins, spawnsPerSub, reps int) submitClosedRow {
	const window = 150 * time.Millisecond
	task := submitTask(taskSpins, spawnsPerSub)
	best := submitClosedRow{Submitters: submitters}
	for r := 0; r < reps; r++ {
		p := sched.New(sched.Config{Workers: workers})
		stop := serveForBench(p)
		var count, sojourn atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(window)
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					t0 := time.Now()
					h, err := p.Submit(task)
					if err != nil {
						// Closed-loop in-flight count is bounded by G, far
						// below the injector capacity; an error here would
						// mean the service died, so just stop this submitter.
						return
					}
					_ = h.Wait()
					sojourn.Add(int64(time.Since(t0)))
					count.Add(1)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		stop()
		n := count.Load()
		row := submitClosedRow{
			Submitters:   submitters,
			Submissions:  n,
			DurationNs:   int64(elapsed),
			ThroughputPS: float64(n) / elapsed.Seconds(),
		}
		if n > 0 {
			row.MeanSojournNs = sojourn.Load() / n
		}
		if r == 0 || row.ThroughputPS > best.ThroughputPS {
			best = row
		}
	}
	return best
}

// submitOpen offers submissions at a fixed rate for the window, never
// waiting for completions while offering, then drains every accepted
// Handle. Pacing is in 1ms batches: sleep-per-submission cannot hit tens
// of thousands per second, a millisecond batch can.
func submitOpen(workers, offeredPS, taskSpins, spawnsPerSub, injectorCap int) submitOpenRow {
	const window = 100 * time.Millisecond
	task := submitTask(taskSpins, spawnsPerSub)
	p := sched.New(sched.Config{Workers: workers, InjectorShards: 1, InjectorCapacity: injectorCap})
	stop := serveForBench(p)

	perMs := offeredPS / 1000
	if perMs < 1 {
		perMs = 1
	}
	var offered, accepted, rejected int64
	var completed, sojourn atomic.Int64
	// One waiter goroutine per accepted submission, so the sojourn is
	// stamped at the moment the Handle resolves, not when a drain loop
	// happens to reach it.
	var waiters sync.WaitGroup
	start := time.Now()
	for tick := 0; ; tick++ {
		batchAt := start.Add(time.Duration(tick) * time.Millisecond)
		if batchAt.Sub(start) >= window {
			break
		}
		if d := time.Until(batchAt); d > 0 {
			time.Sleep(d)
		}
		for i := 0; i < perMs; i++ {
			offered++
			t0 := time.Now()
			h, err := p.Submit(task)
			if err != nil {
				// ErrOverloaded under the default ShedReject policy: the
				// bounded injector shedding exactly as specified.
				rejected++
				continue
			}
			accepted++
			waiters.Add(1)
			go func() {
				defer waiters.Done()
				if h.Wait() == nil {
					sojourn.Add(int64(time.Since(t0)))
					completed.Add(1)
				}
			}()
		}
	}
	waiters.Wait()
	stop()
	row := submitOpenRow{
		OfferedPS: offeredPS,
		Offered:   offered,
		Accepted:  accepted,
		Rejected:  rejected,
		Completed: completed.Load(),
	}
	if n := completed.Load(); n > 0 {
		row.MeanSojournNs = sojourn.Load() / n
	}
	if offered > 0 {
		row.AcceptRatio = float64(accepted) / float64(offered)
	}
	return row
}

// submitExperiment runs both sweeps, renders the tables, and writes the
// JSON snapshot.
func submitExperiment(taskSpins, reps int, outPath string, showStats bool) {
	if outPath == "" {
		outPath = "BENCH_submit.json"
	}
	workers := runtime.GOMAXPROCS(0)
	const spawnsPerSub = 4
	rep := submitReport{
		Experiment:   "submit",
		GOMAXPROCS:   workers,
		Workers:      workers,
		TaskSpins:    taskSpins,
		SpawnsPerSub: spawnsPerSub,
		Reps:         reps,
	}

	ctb := table.New(fmt.Sprintf("closed loop: G submitters, Submit+Wait back to back (workers=%d, %d spawns x %d spins per submission)",
		workers, spawnsPerSub, taskSpins),
		"submitters", "submissions", "throughput/s", "mean sojourn")
	for _, g := range []int{1, 4, 16, 64} {
		row := submitClosed(workers, g, taskSpins, spawnsPerSub, reps)
		rep.ClosedLoop = append(rep.ClosedLoop, row)
		ctb.Row(row.Submitters, row.Submissions, fmt.Sprintf("%.0f", row.ThroughputPS),
			time.Duration(row.MeanSojournNs).Round(time.Microsecond))
	}
	ctb.Render(os.Stdout)

	// Offered rates bracket the closed-loop capacity: the low rates should
	// be absorbed in full, the high ones must shed. Injector capacity is
	// kept small so the overload point arrives inside the 100ms window.
	capacityPS := 0.0
	for _, r := range rep.ClosedLoop {
		if r.ThroughputPS > capacityPS {
			capacityPS = r.ThroughputPS
		}
	}
	rates := []int{
		int(capacityPS * 0.25),
		int(capacityPS * 0.75),
		int(capacityPS * 1.5),
		int(capacityPS * 4),
	}
	otb := table.New("open loop: fixed offered rate, bounded injector (capacity 256, ShedReject)",
		"offered/s", "offered", "accepted", "rejected", "completed", "accept ratio", "mean sojourn")
	for _, r := range rates {
		if r < 1000 {
			r = 1000
		}
		row := submitOpen(workers, r, taskSpins, spawnsPerSub, 256)
		rep.OpenLoop = append(rep.OpenLoop, row)
		otb.Row(row.OfferedPS, row.Offered, row.Accepted, row.Rejected, row.Completed,
			fmt.Sprintf("%.2f", row.AcceptRatio),
			time.Duration(row.MeanSojournNs).Round(time.Microsecond))
	}
	otb.Render(os.Stdout)
	fmt.Println("Closed loop pins in-flight submissions at G (throughput saturates, sojourn")
	fmt.Println("grows ~linearly past the worker count); open loop keeps offering regardless,")
	fmt.Println("so past capacity the bounded injector rejects the excess instead of building")
	fmt.Println("an unbounded backlog — every accepted submission still completes.")

	if showStats {
		// The counters of the last open-loop pool are gone with it; re-run a
		// short closed-loop burst on a fresh pool to show the serve counters.
		p := sched.New(sched.Config{Workers: workers})
		stop := serveForBench(p)
		task := submitTask(taskSpins, spawnsPerSub)
		for i := 0; i < 1000; i++ {
			if h, err := p.Submit(task); err == nil {
				_ = h.Wait()
			}
		}
		stop()
		fmt.Printf("-- stats: closed-loop burst, workers=%d\n%s", workers, p.Stats())
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: marshal report: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: write %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", outPath)
}
