package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "mustcheck", File: "internal/sched/pool.go", Line: 42, Column: 7, Message: "boom"}
	got := f.String()
	want := "internal/sched/pool.go:42:7: boom (mustcheck)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMakeFindingRelativizes(t *testing.T) {
	root := filepath.FromSlash("/work/mod")
	fset := token.NewFileSet()
	tf := fset.AddFile(filepath.Join(root, "pkg", "a.go"), -1, 32)
	tf.SetLinesForContent([]byte("package a\nvar x = 1\n"))
	pos := tf.Pos(14) // inside line 2

	f := MakeFinding("tagaba", fset, pos, "msg", root)
	if f.File != "pkg/a.go" {
		t.Errorf("File = %q, want %q", f.File, "pkg/a.go")
	}
	if f.Line != 2 {
		t.Errorf("Line = %d, want 2", f.Line)
	}
	if f.Analyzer != "tagaba" || f.Message != "msg" {
		t.Errorf("unexpected finding %+v", f)
	}

	// A file outside the root keeps its absolute (slashed) path.
	out := fset.AddFile(filepath.FromSlash("/elsewhere/b.go"), -1, 16)
	out.SetLinesForContent([]byte("package b\n"))
	g := MakeFinding("tagaba", fset, out.Pos(2), "msg", root)
	if g.File != "/elsewhere/b.go" {
		t.Errorf("outside-root File = %q, want %q", g.File, "/elsewhere/b.go")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	in := []Finding{
		{Analyzer: "handshake", File: "a.go", Line: 1, Column: 2, Message: "m1"},
		{Analyzer: "ownerescape", File: "b.go", Line: 3, Column: 4, Message: "m2"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != len(in) {
		t.Fatalf("round-trip lost findings: got %d, want %d", len(rep.Findings), len(in))
	}
	for i := range in {
		if rep.Findings[i] != in[i] {
			t.Errorf("finding %d: got %+v, want %+v", i, rep.Findings[i], in[i])
		}
	}
}

func TestBaselineFilter(t *testing.T) {
	accepted := []Finding{
		{Analyzer: "mustcheck", File: "a.go", Line: 10, Column: 2, Message: "old finding"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, accepted); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	kept := b.Filter([]Finding{
		// Same analyzer+file+message at a shifted line: still baselined.
		{Analyzer: "mustcheck", File: "a.go", Line: 99, Column: 1, Message: "old finding"},
		// New message: survives the filter.
		{Analyzer: "mustcheck", File: "a.go", Line: 11, Column: 2, Message: "new finding"},
		// Same message in another file: survives.
		{Analyzer: "mustcheck", File: "b.go", Line: 10, Column: 2, Message: "old finding"},
	})
	if len(kept) != 2 {
		t.Fatalf("Filter kept %d findings, want 2: %v", len(kept), kept)
	}
	if kept[0].Message != "new finding" || kept[1].File != "b.go" {
		t.Errorf("Filter kept the wrong findings: %v", kept)
	}

	// A nil baseline passes everything through.
	var nb *Baseline
	if got := nb.Filter(accepted); len(got) != 1 {
		t.Errorf("nil baseline filtered findings: %v", got)
	}
}

func TestReadBaselineErrors(t *testing.T) {
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("ReadBaseline on a missing file: want error, got nil")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil {
		t.Error("ReadBaseline on malformed JSON: want error, got nil")
	}
}

func TestWriteSARIFShape(t *testing.T) {
	findings := []Finding{
		{Analyzer: "tagaba", File: "internal/deque/deque.go", Line: 5, Column: 3, Message: "aba"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "abpvet", All(), findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "abpvet" {
		t.Errorf("driver name = %q, want abpvet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(All()))
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "tagaba" || res.Level != "error" || res.Message.Text != "aba" {
		t.Errorf("unexpected result %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/deque/deque.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("unexpected artifact location %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 5 || loc.Region.StartColumn != 3 {
		t.Errorf("unexpected region %+v", loc.Region)
	}
}

func TestUnusedIgnoreFinding(t *testing.T) {
	root := filepath.FromSlash("/work/mod")
	d := &IgnoreDirective{
		File:     filepath.Join(root, "internal", "sched", "pool.go"),
		Line:     7,
		Analyzer: "mustcheck",
	}
	f := UnusedIgnoreFinding(d, root)
	if f.Analyzer != UnusedIgnoreAnalyzer.Name {
		t.Errorf("analyzer = %q, want %q", f.Analyzer, UnusedIgnoreAnalyzer.Name)
	}
	if f.File != "internal/sched/pool.go" || f.Line != 7 {
		t.Errorf("location = %s:%d, want internal/sched/pool.go:7", f.File, f.Line)
	}
	if !strings.Contains(f.Message, "mustcheck") || !strings.Contains(f.Message, "suppresses nothing") {
		t.Errorf("unexpected message %q", f.Message)
	}
}
