package dag

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderChain(t *testing.T) {
	b := NewBuilder()
	root := b.NewThread()
	first, last := b.AddChain(root, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.Root() != first || g.Final() != last {
		t.Fatalf("root/final = %d/%d, want %d/%d", g.Root(), g.Final(), first, last)
	}
	if g.Work() != 5 || g.CriticalPath() != 5 {
		t.Fatalf("work/span = %d/%d, want 5/5", g.Work(), g.CriticalPath())
	}
	if p := g.Parallelism(); p != 1 {
		t.Fatalf("parallelism = %v, want 1", p)
	}
	if g.NumThreads() != 1 {
		t.Fatalf("NumThreads = %d, want 1", g.NumThreads())
	}
	if g.ThreadFirst(0) != first || g.ThreadLast(0) != last || g.ThreadSize(0) != 5 {
		t.Fatalf("thread info wrong: %d %d %d", g.ThreadFirst(0), g.ThreadLast(0), g.ThreadSize(0))
	}
}

func TestBuilderAddChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddChain(0) did not panic")
		}
	}()
	b := NewBuilder()
	tid := b.NewThread()
	b.AddChain(tid, 0)
}

func TestBuildEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestBuildMultipleRoots(t *testing.T) {
	b := NewBuilder()
	t0 := b.NewThread()
	b.AddNode(t0)
	t1 := b.NewThread()
	n1 := b.AddNode(t1)
	last := b.AddNode(t0)
	b.AddSync(n1, last) // gives thread 1 a successor but it still has in-degree 0
	_, err := b.Build()
	if !errors.Is(err, ErrMultipleRoots) {
		t.Fatalf("err = %v, want ErrMultipleRoots", err)
	}
}

func TestBuildMultipleFinals(t *testing.T) {
	b := NewBuilder()
	t0 := b.NewThread()
	n0 := b.AddNode(t0)
	_, _ = b.Spawn(n0) // child thread's node has no successor
	b.AddNode(t0)
	_, err := b.Build()
	if !errors.Is(err, ErrMultipleFinal) {
		t.Fatalf("err = %v, want ErrMultipleFinal", err)
	}
}

func TestValidateOutDegree(t *testing.T) {
	b := NewBuilder()
	t0 := b.NewThread()
	n0 := b.AddNode(t0)
	n1 := b.AddNode(t0)
	_, c1 := b.Spawn(n0)
	_, c2 := b.Spawn(n0) // n0 now has out-degree 3
	join := b.AddNode(t0)
	b.AddSync(c1, join)
	b.AddSync(c2, join)
	_ = n1
	_, err := b.Build()
	if !errors.Is(err, ErrOutDegree) {
		t.Fatalf("err = %v, want ErrOutDegree", err)
	}
}

func TestFigure1Shape(t *testing.T) {
	g := Figure1()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Work() != 11 {
		t.Errorf("work = %d, want 11", g.Work())
	}
	if g.CriticalPath() != 9 {
		t.Errorf("critical path = %d, want 9", g.CriticalPath())
	}
	if g.NumThreads() != 2 {
		t.Errorf("threads = %d, want 2", g.NumThreads())
	}
	ids := Figure1NodeIDs()
	if len(ids) != 11 {
		t.Fatalf("Figure1NodeIDs has %d entries, want 11", len(ids))
	}
	x := func(k int) NodeID { return ids[k-1] }
	if g.Root() != x(1) {
		t.Errorf("root = %d, want x1=%d", g.Root(), x(1))
	}
	if g.Final() != x(11) {
		t.Errorf("final = %d, want x11=%d", g.Final(), x(11))
	}
	// Spawn edge x2 -> x5.
	if !hasEdge(g, x(2), x(5), Spawn) {
		t.Errorf("missing spawn edge x2->x5")
	}
	// Semaphore edge x6 -> x4 and join edge x9 -> x10.
	if !hasEdge(g, x(6), x(4), Sync) {
		t.Errorf("missing sync edge x6->x4")
	}
	if !hasEdge(g, x(9), x(10), Sync) {
		t.Errorf("missing join edge x9->x10")
	}
	// Thread chains.
	if g.Thread(x(3)) != 0 || g.Thread(x(7)) != 1 {
		t.Errorf("thread assignment wrong")
	}
}

func hasEdge(g *Graph, from, to NodeID, kind EdgeKind) bool {
	for _, e := range g.Succs(from) {
		if e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestTopoOrderIsValid(t *testing.T) {
	g := Figure1()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[NodeID]int)
	for i, u := range order {
		pos[u] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topological order", e.From, e.To)
		}
	}
}

func TestStateExecutionFigure1(t *testing.T) {
	g := Figure1()
	s := NewState(g)
	ids := Figure1NodeIDs()
	x := func(k int) NodeID { return ids[k-1] }

	if !s.Ready(x(1)) || s.NumReady() != 1 {
		t.Fatalf("initially only root should be ready")
	}
	en := s.Execute(x(1))
	if len(en) != 1 || en[0] != x(2) {
		t.Fatalf("executing x1 enabled %v, want [x2]", en)
	}
	en = s.Execute(x(2))
	if len(en) != 2 {
		t.Fatalf("executing x2 enabled %v, want two children (x3, x5)", en)
	}
	// x4 must not be ready until x6 executes (semaphore blocks the root).
	s.Execute(x(3))
	if s.Ready(x(4)) {
		t.Fatalf("x4 ready before the semaphore signal x6")
	}
	s.Execute(x(5))
	en = s.Execute(x(6))
	if len(en) != 2 {
		t.Fatalf("x6 should enable x7 and x4, got %v", en)
	}
	if !s.Ready(x(4)) {
		t.Fatalf("x4 should be ready after x6")
	}
	s.Execute(x(4))
	if s.Ready(x(10)) {
		t.Fatalf("x10 ready before the join from x9")
	}
	s.Execute(x(7))
	s.Execute(x(8))
	en = s.Execute(x(9))
	if len(en) != 1 || en[0] != x(10) {
		t.Fatalf("x9 should enable exactly x10 (enable+die), got %v", en)
	}
	s.Execute(x(10))
	s.Execute(x(11))
	if !s.Done() {
		t.Fatalf("execution should be complete")
	}
	// Enabling-tree depths along the designated path.
	if s.Depth(x(1)) != 0 || s.DesignatedParent(x(1)) != None {
		t.Errorf("root depth/parent wrong")
	}
	if s.DesignatedParent(x(10)) != x(9) {
		t.Errorf("designated parent of x10 = %d, want x9", s.DesignatedParent(x(10)))
	}
	if !s.IsEnablingAncestor(x(1), x(11)) {
		t.Errorf("root should be enabling ancestor of final")
	}
	if w := s.Weight(g.CriticalPath(), x(1)); w != 9 {
		t.Errorf("weight(root) = %d, want Tinf = 9", w)
	}
}

func TestExecutePanics(t *testing.T) {
	g := Figure1()
	s := NewState(g)
	s.Execute(g.Root())
	t.Run("twice", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("double execution did not panic")
			}
		}()
		s.Execute(g.Root())
	})
	t.Run("not ready", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("executing unready node did not panic")
			}
		}()
		s.Execute(g.Final())
	})
}

func TestWeightOfUnenabledPanics(t *testing.T) {
	g := Figure1()
	s := NewState(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Weight of un-enabled node did not panic")
		}
	}()
	s.Weight(g.CriticalPath(), g.Final())
}

// randomSeriesParallel builds a random series-parallel-ish dag by repeatedly
// spawning and joining, which is always a valid computation dag.
func randomSeriesParallel(rng *rand.Rand, size int) *Graph {
	b := NewBuilder()
	root := b.NewThread()
	cur := b.AddNode(root)
	type pending struct {
		last NodeID // last node of the spawned child
	}
	var open []pending
	for b.NumNodes() < size {
		switch rng.Intn(3) {
		case 0: // extend
			cur = b.AddNode(root)
		case 1: // spawn a child chain
			if b.nodes[cur].Succs == nil || len(b.nodes[cur].Succs) < 1 {
				_, cfirst := b.Spawn(cur)
				clast := cfirst
				for i := 0; i < rng.Intn(3); i++ {
					clast = b.AddNode(b.nodes[cfirst].Thread)
				}
				open = append(open, pending{last: clast})
				cur = b.AddNode(root)
			}
		case 2: // join one child
			if len(open) > 0 {
				p := open[len(open)-1]
				open = open[:len(open)-1]
				cur = b.AddNode(root)
				b.AddSync(p.last, cur)
			} else {
				cur = b.AddNode(root)
			}
		}
	}
	for _, p := range open {
		cur = b.AddNode(root)
		b.AddSync(p.last, cur)
	}
	// Ensure a single final node.
	b.AddNode(root)
	return b.MustBuild()
}

func TestRandomGraphsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g := randomSeriesParallel(rng, 20+rng.Intn(200))
		if err := g.Validate(); err != nil {
			t.Fatalf("graph %d invalid: %v", i, err)
		}
		if g.CriticalPath() > g.Work() {
			t.Fatalf("graph %d: span %d > work %d", i, g.CriticalPath(), g.Work())
		}
	}
}

// Property: executing any random graph in any ready-respecting order executes
// every node exactly once, and enabling-tree depths never exceed the
// critical path.
func TestQuickExecutionInvariants(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSeriesParallel(rng, 10+int(sz)%150)
		tinf := g.CriticalPath()
		s := NewState(g)
		for !s.Done() {
			ready := s.ReadyNodes()
			if len(ready) != s.NumReady() {
				return false
			}
			u := ready[rng.Intn(len(ready))]
			s.Execute(u)
			if s.Depth(u) >= tinf {
				return false // depth must be < Tinf so weight >= 1
			}
		}
		return s.NumExecuted() == g.Work()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLevels(t *testing.T) {
	g := Figure1()
	levels := g.Levels()
	if len(levels) != g.CriticalPath() {
		t.Fatalf("levels = %d, want Tinf = %d", len(levels), g.CriticalPath())
	}
	total := 0
	for _, l := range levels {
		total += len(l)
	}
	if total != g.Work() {
		t.Fatalf("levels cover %d nodes, want %d", total, g.Work())
	}
	if len(levels[0]) != 1 || levels[0][0] != g.Root() {
		t.Fatalf("level 0 should contain only the root")
	}
}

func TestEdgeKindString(t *testing.T) {
	cases := map[EdgeKind]string{Continuation: "continuation", Spawn: "spawn", Sync: "sync", EdgeKind(9): "EdgeKind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestGraphString(t *testing.T) {
	g := Figure1()
	if got := g.String(); got != "figure1: 11 nodes, 2 threads" {
		t.Errorf("String() = %q", got)
	}
}

func TestWriteDOT(t *testing.T) {
	g := Figure1()
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"figure1\"",
		"cluster_t0", "cluster_t1",
		"x2 -> x5 [style=dashed]", // spawn
		"x6 -> x4 [style=dotted]", // semaphore
		"x1 -> x2 [style=solid]",  // continuation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
