// Larger-scale integration runs, skipped with -short.
package worksteal

import (
	"testing"

	"worksteal/internal/analysis"
	"worksteal/internal/sched"
	"worksteal/internal/sim"
	"worksteal/internal/workload"
)

// TestHighProbabilityTail checks the concentration half of Theorem 9: the
// execution time's tail is light. Across many seeds of the same dedicated
// configuration, the maximum observed time must stay within a small factor
// of the mean (the theorem gives mean + O(lg(1/eps)) throws with
// probability 1-eps, so a heavy tail would falsify it).
func TestHighProbabilityTail(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.FibDag(14)
	const runs = 60
	times := make([]float64, 0, runs)
	sum := 0.0
	for seed := int64(0); seed < runs; seed++ {
		res := sim.NewEngine(sim.Config{Graph: g, P: 8,
			Kernel: sim.DedicatedKernel{NumProcs: 8}, Seed: seed, ShuffleSteps: true}).Run()
		if !res.Completed {
			t.Fatalf("seed %d incomplete", seed)
		}
		times = append(times, float64(res.Steps))
		sum += float64(res.Steps)
	}
	mean := sum / runs
	worst := 0.0
	for _, x := range times {
		if x > worst {
			worst = x
		}
	}
	if worst > 1.5*mean {
		t.Errorf("heavy tail: worst %v > 1.5x mean %v", worst, mean)
	}
}

// TestSoakLargeSim runs a larger simulation across all adversaries.
func TestSoakLargeSim(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.FibDag(18) // T1 = 16717
	const p = 16
	for name, cfg := range map[string]sim.Config{
		"dedicated": {Kernel: sim.DedicatedKernel{NumProcs: p}},
		"benign":    {Kernel: sim.ConstBenign(p, 4)},
		"adaptive":  {Kernel: sim.StarveWorkersKernel{NumProcs: p}, Yield: sim.YieldToAll},
	} {
		cfg.Graph, cfg.P, cfg.Seed = g, p, 99
		res := sim.NewEngine(cfg).Run()
		if !res.Completed || res.NodesExecuted != g.NumNodes() || res.Corruptions != 0 {
			t.Fatalf("%s: %+v", name, res)
		}
	}
}

// TestSoakNativeLargeGraph runs a large dag natively with all deque kinds.
func TestSoakNativeLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.UnbalancedTree(5, 200000)
	for _, kind := range []sched.DequeKind{sched.DequeABP, sched.DequeChaseLev, sched.DequeMutex} {
		res := sched.RunGraph(sched.GraphConfig{Graph: g, Workers: 8, Deque: kind, Seed: 7})
		if res.NodesExecuted != int64(g.NumNodes()) {
			t.Fatalf("deque %d: executed %d of %d", kind, res.NodesExecuted, g.NumNodes())
		}
	}
}

// TestSoakPotentialMonotoneLarge verifies the potential function on a long
// multiprogrammed run.
func TestSoakPotentialMonotoneLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.Grid(48, 80)
	tr := analysis.NewPotentialTracker(g.CriticalPath())
	res := sim.NewEngine(sim.Config{Graph: g, P: 12,
		Kernel: sim.BenignKernel{NumProcs: 12}, Seed: 3, Observer: tr}).Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	st := analysis.AnalyzePhases(tr.Points, 12)
	if !st.NeverIncreased {
		t.Error("potential increased")
	}
	if st.Phases > 0 && st.SuccessRate() < 0.25 {
		t.Errorf("success rate %.2f", st.SuccessRate())
	}
}
