// Package sched is the production side of the reproduction: a work-stealing
// task scheduler for Go built on the paper's non-blocking ABP deque
// (package deque). Each worker is one of the paper's "processes": it owns a
// deque, pops work from the bottom, and when idle yields the processor and
// steals from the top of a uniformly random victim's deque — exactly the
// Figure 3 scheduling loop, with Go's runtime playing the kernel. Unlike
// Figure 3, an idle worker does not spin forever: after repeated failed
// steals it backs off and parks, and Spawn wakes it when stealable work
// appears (see lifecycle.go for the protocol and why it preserves the
// paper's yield semantics).
//
// Three APIs are provided:
//
//   - a task API (Spawn, Fork/Join futures, ParallelFor/Reduce) in the style
//     of the Hood threads library the authors built on this scheduler,
//   - a dag runner (RunGraph) that executes an explicit computation dag with
//     known work and critical-path length, for benchmark experiments that
//     check the paper's T1/P_A + Tinf*P/P_A bound on real hardware, and
//   - a service API (Serve, Submit, Handle — serve.go) that keeps the
//     workers alive across submissions arriving concurrently from any
//     goroutine, with bounded-injector admission control. Run and
//     RunContext are one-submission sessions of the same engine.
//
// For the paper's ablations, the pool can be configured with a mutex-guarded
// deque instead of the non-blocking one, with yields disabled, and with
// parking disabled (the pure spinning loop of Figure 3).
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"worksteal/internal/atomicx"
	"worksteal/internal/deque"
	"worksteal/internal/fault"
)

// Failpoints compiled into the scheduler (internal/fault, DESIGN.md §9).
// sched.loop.beforeSteal fires only for loop-level steals (never for a
// Join helping itself to work), so a chaos run can freeze thieves without
// ever freezing the joiner that must later resume them.
var (
	fpLoopEnter = fault.Register("sched.loop.enter",
		"worker loop: before the handoff check and first pop (crash here strands the root handoff)")
	fpLoopBeforeSteal = fault.Register("sched.loop.beforeSteal",
		"worker loop: idle, about to poll the injector and attempt a steal (loop-level steals only)")
	fpStealBeforePopTop = fault.Register("sched.steal.beforePopTop",
		"stealOnce: victim chosen, PopTop not yet issued (any steal, including Join helps)")
	fpExecBeforeRun = fault.Register("sched.exec.beforeRun",
		"exec: termination accounting armed, task function not yet entered")
	fpParkBeforeSleep = fault.Register("sched.park.beforeSleep",
		"park: parked flag published and re-check passed, not yet blocked on the token channel")
	fpBackoffBeforeSleep = fault.Register("sched.backoff.beforeSleep",
		"backoff: idle flags published and re-check passed, timed nap not yet entered")
)

// DequeKind selects the deque implementation workers use.
type DequeKind uint8

const (
	// DequeABP is the paper's non-blocking deque (the default).
	DequeABP DequeKind = iota
	// DequeMutex is the blocking baseline for ablation benchmarks.
	DequeMutex
	// DequeChaseLev is the unbounded growable successor design (Chase and
	// Lev, SPAA 2005) — the paper's natural extension: no capacity bound,
	// no tag needed. Spawns never fall back to inline execution.
	DequeChaseLev
)

// Config configures a Pool.
type Config struct {
	// Workers is the number of worker goroutines (the paper's P processes).
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// MaxWorkers caps Pool.Resize growth (resize.go): worker structures —
	// deque, rng, park channel — are pre-allocated up to this bound at New
	// time, so a mid-Serve grow only has to start a goroutine. Slots in
	// [Workers, MaxWorkers) begin retired. 0 defaults to Workers (a fixed
	// fleet, exactly the pre-elastic behavior); values below Workers panic.
	MaxWorkers int
	// Deque selects the deque implementation (default DequeABP).
	Deque DequeKind
	// DequeCapacity bounds each worker's deque; when a push finds the deque
	// full the task runs inline, which preserves correctness and depth-first
	// order at the cost of stealable parallelism. Defaults to
	// deque.DefaultCapacity.
	DequeCapacity int
	// InjectorShards is the number of bounded MPMC injector queues external
	// submissions (Pool.Submit) are spread over. More shards cost workers a
	// slightly longer poll scan but cut contention between concurrent
	// submitters. Defaults to max(1, min(8, Workers/4)).
	InjectorShards int
	// InjectorCapacity bounds each injector shard (rounded up to a power of
	// two, minimum 2); a submission finding every shard full is shed per
	// Overload.
	// This is the service mode's admission-control knob. Defaults to 1024.
	InjectorCapacity int
	// Overload selects the shed policy for submissions that find every
	// injector shard full: ShedReject (default) returns ErrOverloaded,
	// ShedCallerRuns executes the submission on the submitting goroutine.
	Overload OverloadPolicy
	// DisableYield removes the runtime.Gosched call between steal attempts
	// (the paper's yield ablation). Only for experiments: under
	// multiprogramming (more workers than GOMAXPROCS) disabling yields lets
	// spinning thieves starve workers that hold all the work.
	DisableYield bool
	// ParkThreshold is the number of consecutive failed steal attempts
	// after which an idle worker starts backing off toward parking
	// (lifecycle.go). 0 means the default, max(8, 2*Workers), enough hot
	// rounds that a random thief has touched most victims before giving up.
	ParkThreshold int
	// DisableParking keeps idle workers in the paper's pure spinning loop —
	// yield and steal forever — instead of backing off and parking. Only
	// for experiments (the idle-overhead ablation): each idle spinning
	// worker burns a full core.
	DisableParking bool
	// Seed seeds victim selection; 0 means a fixed default.
	Seed int64
	// Pin calls runtime.LockOSThread in each worker, approximating the
	// paper's one-process-per-kernel-thread model.
	Pin bool
	// RoundRobinVictim replaces uniformly random victim selection with a
	// deterministic rotation (the design-choice-5 ablation; the paper's
	// analysis requires random victims). The rotation cursors are reset at
	// session start so identical seeded runs see identical victim
	// sequences.
	RoundRobinVictim bool
	// StallTimeout enables the stall watchdog (watchdog.go): a worker
	// goroutine that makes no scheduler-visible progress for this window
	// while unparked is surfaced via OnStall and Stats.StallsDetected
	// instead of hanging silently. 0 disables the watchdog.
	StallTimeout time.Duration
	// OnStall, if non-nil, is called by the watchdog goroutine once per
	// detected stall episode. It must be safe to call concurrently with
	// the run and must not block for long (it delays later detections).
	OnStall func(StallReport)
	// RelaxedAtomics enables the proof-gated hot-path downgrades: owner-side
	// reloads of deque bottom indexes and per-worker counter updates use
	// plain accesses instead of atomics where the abporder analyzer proves
	// every write sits in a single-owner context (//abp:owner). Correctness
	// is unaffected — the Dekker stores, CAS arbitration, and all
	// cross-goroutine publication stay sequentially consistent; only
	// owner-private re-reads and owner-private read-modify-writes relax.
	// The E15 ablation (EXPERIMENTS.md) measures the difference.
	RelaxedAtomics bool
}

// Task is the unit of work handled by the scheduler. Every task belongs to
// exactly one submission (its run record): spawned tasks inherit the
// spawner's, so a worker executing tasks of interleaved submissions always
// charges the right pending counter and observes the right abort.
type Task struct {
	fn  func(*Worker)
	run *run
}

// Pool is a work-stealing scheduler instance. Create one with New, then
// either use the batch API — Run or RunContext, possibly several times in
// sequence — or start the service engine with Serve and feed it with
// Submit from any goroutine (serve.go). A Pool hosts one engine at a time;
// overlapping Run/RunContext/Serve calls panic with a clear error rather
// than corrupting the session state.
type Pool struct {
	cfg           Config
	parkThreshold int
	workers       []*Worker
	inject        []*injector
	// Ordering disciplines (internal/atomicx, checked by abporder): the
	// SC-declared fields either arbitrate (shardRR's consumed Add, running's
	// CAS) or participate in the park/submit handshakes (stopped, serving,
	// idle, and the submission counters are all read or written inside
	// //abp:handshake carrier functions, whose store→load shape needs the
	// full ordering). The Publish-declared counters are blind increments
	// read only by Stats — release/acquire publication suffices.
	//
	// Layout discipline (abplayout, DESIGN.md §12): the three arbitration
	// words below — running's session CAS, shardRR's per-submission Add,
	// wakeRR's per-signal Add, idle's park/signal Dekker reads — each sit
	// on their own cache line so none is invalidated by writes to the
	// others or to the counters; the cold flags and the blindly
	// incremented counters may share lines freely among themselves.
	stopped atomicx.SCBool // session shutdown flag: the loop-exit condition
	serving atomicx.SCBool // a Serve is accepting Submits
	_       atomicx.CacheLinePad
	// draining is the admission gate a Drain closes (drain.go); sc because
	// it is Dekker-paired with Submit's post-push re-check, and CAS'd (one
	// Drain wins per session) — an arbitration word, so its own line.
	draining atomicx.SCBool
	_        atomicx.CacheLinePad
	running  atomicx.SCBool // guards against concurrent Run/RunContext/Serve
	_        atomicx.CacheLinePad
	shardRR  atomicx.SCUint32 // submission shard rotation (injector.go)
	_        atomicx.CacheLinePad
	wakeRR   atomicx.SCUint32 // wake scan rotation (signalWork, lifecycle.go)
	_        atomicx.CacheLinePad
	idle     atomicx.SCInt32 // workers parked or in a backoff nap (lifecycle.go)
	_        atomicx.CacheLinePad
	// fleet is the elastic-fleet size: workers [0, fleet) are the active
	// prefix victim selection draws from (stealOnce). Written rarely — by
	// Resize under resizeMu — and read on every steal attempt, so it gets
	// its own line away from the mutated arbitration words and counters.
	// publish: readers only gate victim ranges on the value; the per-worker
	// state words (CAS'd, sc) carry the retire arbitration.
	fleet      atomicx.Publish32
	_          atomicx.CacheLinePad
	dropped    atomicx.Publish64 // tasks discarded after a panic-aborted submission
	cancelledN atomicx.Publish64 // tasks discarded by a cancelled/stopped submission
	stalls     atomicx.Publish64 // stall episodes surfaced by the watchdog
	resizes    atomicx.Publish64 // Resize calls that changed the fleet target
	retiredN   atomicx.Publish64 // workers that completed retirement (resize.go)
	submitted  atomicx.SCInt64   // submissions accepted onto the injector
	rejected   atomicx.SCInt64   // submissions rejected with ErrOverloaded
	callerRuns atomicx.SCInt64   // submissions shed to the caller (ShedCallerRuns)
	wg         sync.WaitGroup

	// Elastic-fleet control (resize.go): resizeMu serializes Resize calls
	// against each other and against session start/stop; sessionLive tells
	// Resize whether the session's fleet manager exists right now. growCh
	// feeds worker-slot activations to the manager goroutine startSession
	// forks — worker loops are only ever launched from startSession's
	// subtree, which keeps the session fork edge the single publication
	// root for the workers' plain fields. All three are accessed under
	// resizeMu (the manager holds only its own local copies).
	resizeMu    sync.Mutex
	sessionLive bool
	growCh      chan int

	// Active-submission registry: every in-flight run, registered at
	// submission and removed by its finishOnce. The shutdown and
	// engine-failure paths abort the whole set.
	runMu  sync.Mutex
	active map[*run]struct{}

	// Per-session channels, created by startSession before any worker
	// starts (the go statement is the publication edge). quit is closed by
	// endSession to wake parked workers for shutdown; fail is closed by
	// engineFail when a worker loop dies, with failVal readable after.
	quitCh   chan struct{}
	failCh   chan struct{}
	failOnce sync.Once
	failVal  any

	// Graceful-drain plumbing (drain.go), per session like quitCh/failCh.
	// All three fields are written by startSession and read by Drain under
	// runMu (the mutex is the happens-before edge for the external Drain
	// goroutine). drainReq is closed by the winning Drain to bring Serve
	// down; drainIdle is closed — by unregister or by Drain itself — when
	// the active set empties while draining; drainSignaled guards that
	// close.
	drainReq      chan struct{}
	drainIdle     chan struct{}
	drainSignaled bool
}

// Worker is the execution context passed to every task; it identifies the
// worker goroutine running the task and provides the spawning operations.
type Worker struct {
	pool *Pool
	id   int
	dq   deque.Dequer[Task]
	rng  *rand.Rand
	rr   int // round-robin victim cursor; reset each session (determinism)
	// handoff is the root task fallback slot (startSession), consumed by
	// loop; declared plain because every access pair is ordered by the
	// session fork/join edges — for loops the fleet manager forks
	// mid-session, by the composed startSession→manager→loop fork chain
	// the static analyses do not chase (hence the waiver).
	handoff atomicx.PlainPointer[Task] //abp:order-ignore ordered by the composed startSession->fleetManager->loop fork edges; the analyzer does not chase nested fork chains
	run     *run                       // submission of the task currently executing (exec)
	// relaxed mirrors Config.RelaxedAtomics: gates the owner-side counter
	// downgrades (AddOwner below). Written once in New, before any sharing.
	relaxed bool

	parkCh chan struct{} // capacity-1 wake token (lifecycle.go)
	// parked is half of the park/wake Dekker handshake
	// (//abp:handshake store=parked load=anyVisibleWork): sc required.
	// Every producer's signalWork scans every worker's parked flag, so the
	// flag gets its own cache line — neither the cold per-worker wiring
	// above nor the owner-hot counters below may dirty the line the whole
	// pool polls (the abplayout Worker finding; reverting either pad
	// re-flags the live tree).
	_      atomicx.CacheLinePad
	parked atomicx.SCBool
	_      atomicx.CacheLinePad

	// state is the elastic-fleet membership word (resize.go):
	// workerActive / workerRetiring / workerRetired. Every producer's
	// signalWork scans it right next to parked, and Resize and the retiring
	// worker arbitrate retirement on it by CAS (retire vs reactivate), so —
	// like parked — it sits on its own cache line, clear of both the
	// pool-scanned flag above and the owner-hot counters below. sc: the CAS
	// arbitration and the reads inside the signalWork handshake carrier
	// both need full ordering.
	state atomicx.SCInt32
	_     atomicx.CacheLinePad

	// progress ticks on every loop iteration and task completion; the
	// stall watchdog (watchdog.go) reads it to tell a live worker from one
	// frozen mid-operation. Written only by the worker's own goroutine
	// (loop/exec/execOrDrop, all //abp:owner), so the increment relaxes to
	// an owner read-modify-write under RelaxedAtomics; the store half stays
	// atomic so the watchdog's reads are always safe.
	progress atomicx.Publish64

	// Per-worker counters, summed by Pool.Stats. Atomics so Stats is safe
	// to call while the run is in flight. The Publish-declared ones are
	// owner-only blind increments (AddOwner under RelaxedAtomics); the
	// SC-declared ones are updated inside //abp:handshake carrier functions
	// (Spawn, park), which abporder pins to full ordering.
	tasksRun      atomicx.Publish64
	spawns        atomicx.SCInt64
	inlineRuns    atomicx.SCInt64
	steals        atomicx.Publish64
	stealAttempts atomicx.Publish64
	yields        atomicx.Publish64
	parks         atomicx.SCInt64
	wakes         atomicx.SCInt64
	backoffNanos  atomicx.SCInt64
}

// New builds a pool. The zero Config is valid.
func New(cfg Config) *Pool {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", cfg.Workers))
	}
	if cfg.DequeCapacity == 0 {
		cfg.DequeCapacity = deque.DefaultCapacity
	}
	if cfg.DequeCapacity < 1 {
		panic(fmt.Sprintf("sched: deque capacity %d", cfg.DequeCapacity))
	}
	if cfg.ParkThreshold < 0 {
		panic(fmt.Sprintf("sched: park threshold %d", cfg.ParkThreshold))
	}
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = cfg.Workers
	}
	if cfg.MaxWorkers < cfg.Workers {
		panic(fmt.Sprintf("sched: MaxWorkers %d below Workers %d", cfg.MaxWorkers, cfg.Workers))
	}
	if cfg.InjectorShards == 0 {
		cfg.InjectorShards = max(1, min(8, cfg.Workers/4))
	}
	if cfg.InjectorShards < 1 {
		panic(fmt.Sprintf("sched: %d injector shards", cfg.InjectorShards))
	}
	if cfg.InjectorCapacity == 0 {
		cfg.InjectorCapacity = 1024
	}
	if cfg.InjectorCapacity < 1 {
		panic(fmt.Sprintf("sched: injector capacity %d", cfg.InjectorCapacity))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	p := &Pool{cfg: cfg, parkThreshold: cfg.ParkThreshold, active: map[*run]struct{}{}}
	if p.parkThreshold == 0 {
		p.parkThreshold = max(8, 2*cfg.Workers)
	}
	for i := 0; i < cfg.InjectorShards; i++ {
		p.inject = append(p.inject, newInjector(cfg.InjectorCapacity))
	}
	// The whole [0, MaxWorkers) fleet is allocated up front; slots beyond
	// the initial Workers begin retired and cost nothing until a Resize
	// activates them.
	for i := 0; i < cfg.MaxWorkers; i++ {
		var dq deque.Dequer[Task]
		switch cfg.Deque {
		case DequeMutex:
			dq = deque.NewMutexWithCapacity[Task](cfg.DequeCapacity)
		case DequeChaseLev:
			cl := deque.NewChaseLev[Task]()
			cl.SetRelaxed(cfg.RelaxedAtomics)
			dq = cl
		default:
			abp := deque.NewWithCapacity[Task](cfg.DequeCapacity)
			abp.SetRelaxed(cfg.RelaxedAtomics)
			dq = abp
		}
		w := &Worker{
			pool:    p,
			id:      i,
			dq:      dq,
			rng:     rand.New(rand.NewSource(seed + int64(i)*1_000_003)),
			parkCh:  make(chan struct{}, 1),
			relaxed: cfg.RelaxedAtomics,
		}
		if i >= cfg.Workers {
			w.state.Store(workerRetired)
		}
		p.workers = append(p.workers, w)
	}
	p.fleet.Store(int32(cfg.Workers))
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Run executes root on worker 0 and returns once root and every task
// transitively spawned from it have completed.
// If a task panics, the run aborts: remaining workers stop, and Run
// re-panics with the original value (tasks already stolen may still finish;
// tasks still in deques are dropped — and drained before the next Run, so
// they can never leak into it).
func (p *Pool) Run(root func(*Worker)) {
	// context.Background can never cancel, so the only error RunContext
	// can return here is nil.
	_ = p.RunContext(context.Background(), root)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) the run aborts through the same plumbing a task panic
// uses — workers stop after their current task, parked workers and blocked
// Joins wake — and RunContext returns ctx.Err(). Tasks that were spawned
// but never ran are discarded and counted in Stats.TasksCancelled; tasks
// already executing cannot be preempted and run to completion.
//
// A nil error means root and every transitively spawned task completed.
// If a task panics before any cancellation, RunContext re-panics with the
// original value, exactly like Run. The pool remains reusable after either
// outcome.
//
// Since the service refactor (serve.go), Run and RunContext are
// one-submission sessions of the service engine: the same worker loops,
// run records, and abort plumbing serve both APIs, so the batch tests and
// chaos suite exercise the engine Submit feeds.
func (p *Pool) RunContext(ctx context.Context, root func(*Worker)) error {
	if !p.running.CompareAndSwap(false, true) {
		panic("sched: Pool.Run/RunContext called concurrently with a run already in flight on this pool (a Pool serves one run at a time)")
	}
	defer p.running.Store(false)
	r := newRun(p)
	p.register(r)
	if err := ctx.Err(); err != nil {
		// Already cancelled: abort before any worker starts, so the root
		// handoff/push is discarded (and counted) rather than executed.
		r.abortWith(runCancelled, err, nil)
	}
	p.startSession(&Task{fn: root, run: r})

	// Auxiliary goroutines: the context watcher and the stall watchdog.
	// Both exit when the run ends (stopAux) or the run aborts.
	stopAux := make(chan struct{})
	var aux sync.WaitGroup
	if ctx.Done() != nil {
		aux.Add(1)
		go func() {
			defer aux.Done()
			select {
			case <-ctx.Done():
				r.abortWith(runCancelled, ctx.Err(), nil)
			case <-r.finished:
			case <-stopAux:
			}
		}()
	}
	if p.cfg.StallTimeout > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			p.watchdog(stopAux)
		}()
	}

	// The run ends — every task executed, or the submission aborted by a
	// panic, a cancellation, or an engine failure — and the session comes
	// down with it.
	<-r.finished
	p.endSession()
	close(stopAux)
	aux.Wait()

	if r.state.Load() == runCancelled {
		// Quiescent again: every worker has exited (endSession), so the
		// run goroutine may drain what the cancelled run left behind —
		// including a root the abort stranded in its handoff slot.
		p.drainByRun()
		return r.err
	}
	if r.panicVal != nil {
		// A panic-aborted run deliberately leaves its carcass for the
		// next session's begin-drain (startSession), preserving the
		// historical TasksDropped accounting and the lexical ordering the
		// static race analysis of the handoff slot relies on.
		panic(r.panicVal)
	}
	return nil
}

// startSession resets the per-session state, drains everything a previous
// aborted session left behind — deque tasks, injector carcasses, stranded
// handoff roots, stale wake tokens — so stale work can neither execute in
// the new session nor corrupt its accounting, delivers the batch API's
// root (if any), and forks the worker loops. It also resets the
// round-robin victim cursors, so two identical seeded sessions see
// identical victim sequences (the rng deliberately is not reset: random
// victim selection is the paper's stochastic model, and reseeding it would
// only launder scheduling nondeterminism into false reproducibility).
//
// Reset, root delivery, and fork deliberately share one function body: the
// caller holds the running guard and no workers exist yet, so the calling
// goroutine is a legitimate owner for every deque, and every plain write
// here is ordered against the worker goroutines by the lexical fork edge
// of the go statements below — the ordering the static race detector
// checks.
//
// The root, when non-nil, goes to worker 0 while the pool is still
// quiescent — the batch API's fast path, bypassing the injector the way
// the paper hands the root thread to process zero before the loop starts.
// The fresh deque cannot refuse it with the stock deques, but a refusal
// must not be silently dropped (it would strand the submission's pending
// counter at 1): fall back to the direct handoff slot, which worker 0's
// loop consumes before its first pop — the same run-it-anyway guarantee
// Spawn provides via inline execution.
//
//abp:owner quiescent phase: workers have not been started yet
func (p *Pool) startSession(root *Task) {
	p.stopped.Store(false)
	// The session channels — quit/fail and the drain pair — are read by
	// goroutines outside the session's fork edges (Drain most of all), so
	// they are published under runMu, the lock those readers take.
	p.runMu.Lock()
	p.quitCh = make(chan struct{})
	//abp:race-ignore written before the fleet-manager fork below, which forks every mid-session loop: the composed fork edges order this write before any worker read; the analyzer does not chase nested fork chains
	p.failCh = make(chan struct{})
	p.drainReq = make(chan struct{})
	p.drainIdle = make(chan struct{})
	p.drainSignaled = false
	p.runMu.Unlock()
	p.failOnce = sync.Once{}
	//abp:race-ignore written before the fleet-manager fork below, which forks every mid-session loop: the composed fork edges order this write before any worker access; the analyzer does not chase nested fork chains
	p.failVal = nil
	p.draining.Store(false)
	// Sweep carcasses a previous aborted session left behind (including a
	// root stranded in a handoff slot, which must not execute as a ghost
	// of the session that submitted it), accounted per each task's own
	// submission: a panic's leftovers are drops, a cancelled or stopped
	// submission's are cancellations.
	p.drainByRun()
	// Reset the rotation cursors along with the per-worker ones: a restarted
	// Serve must behave like a fresh pool, not inherit the previous
	// session's submission-shard and wake-scan positions (the Serve→Stop→
	// Serve restartability regression pins this).
	p.shardRR.Store(0)
	p.wakeRR.Store(0)
	for _, w := range p.workers {
		//abp:race-ignore written before the fleet-manager fork below, which forks every mid-session loop: the composed fork edges order this write before the owning worker's accesses; the analyzer does not chase nested fork chains
		w.rr = 0
	}
	if root != nil {
		if !p.workers[0].dq.PushBottom(root) {
			p.workers[0].handoff.Set(root)
		}
	}
	// Fork exactly the active prefix, normalizing the state words first: a
	// shrink in a previous session (or between sessions) may have left
	// suffix workers marked retiring without ever completing retirement —
	// their goroutines exited through the stopped flag instead. resizeMu
	// orders this against any concurrent Resize, and sessionLive re-arms
	// Resize's ability to start goroutines.
	p.resizeMu.Lock()
	fleet := int(p.fleet.Load())
	for i, w := range p.workers {
		if i < fleet {
			w.state.Store(workerActive)
		} else {
			w.state.Store(workerRetired)
		}
	}
	p.growCh = make(chan int)
	p.wg.Add(fleet + 1) // +1: the fleet manager holds a slot of its own
	for _, w := range p.workers[:fleet] {
		go w.loop()
	}
	// The fleet manager is the only place a worker loop is ever launched
	// mid-session (Resize feeds it slot indices over growCh). Keeping every
	// launch inside startSession's fork subtree preserves the lexical fork
	// edge that orders this function's plain writes before any worker
	// goroutine — including ones started long after, by a grow.
	go p.fleetManager(p.quitCh, p.growCh)
	p.sessionLive = true
	p.resizeMu.Unlock()
}

// endSession stops the worker loops and waits for them: stopped is the
// loop-exit condition, and the quit close wakes every parked or napping
// worker so none sleeps through shutdown.
func (p *Pool) endSession() {
	// Disarm Resize before waiting: once sessionLive drops, Resize no
	// longer feeds the fleet manager, and the manager itself holds a
	// WaitGroup slot until the quit close below retires it — so its
	// wg.Add(1) per grow can never race a Wait at zero (the classic
	// Add-after-Wait hazard).
	p.resizeMu.Lock()
	p.sessionLive = false
	p.resizeMu.Unlock()
	p.stopped.Store(true)
	close(p.quitCh)
	p.wg.Wait()
}

// drainByRun is the quiescent-phase sweep — run at the end of a cancelled
// session and again at the start of every session: it empties the injector shards,
// the deques, and the handoff slots, accounting every leftover task under
// the counter its submission's abort cause selects — TasksDropped for a
// panic, TasksCancelled for a cancellation or service stop. Leftovers can
// only belong to aborted submissions (a completed one has, by definition
// of its pending counter, no tasks left anywhere).
//
//abp:owner quiescent phase: every worker has exited before the sweep
func (p *Pool) drainByRun() {
	// Re-assert quiescence: every worker loop has exited (endSession ran
	// their deferred wg.Done), so this Wait returns immediately — and it
	// is the lexical join edge that orders the plain handoff writes below
	// against the dead worker goroutines for the static race detector.
	p.wg.Wait()
	account := func(t *Task) {
		if t.run.state.Load() == runPanicked {
			p.dropped.Add(1)
		} else {
			p.cancelledN.Add(1)
		}
	}
	for _, q := range p.inject {
		for {
			t := q.TryPop()
			if t == nil {
				break
			}
			account(t)
		}
	}
	for _, w := range p.workers {
		for {
			t := w.dq.PopBottom()
			if t == nil {
				break
			}
			account(t)
		}
		if t := w.handoff.Get(); t != nil {
			w.handoff.Set(nil)
			account(t)
		}
		select {
		case <-w.parkCh:
		default:
		}
	}
}

// Stats sums the per-worker counters accumulated so far (across runs). It
// is safe to call concurrently with a running Run.
func (p *Pool) Stats() Stats {
	s := Stats{
		TasksDropped:     p.dropped.Load(),
		TasksCancelled:   p.cancelledN.Load(),
		StallsDetected:   p.stalls.Load(),
		Resizes:          p.resizes.Load(),
		WorkersRetired:   p.retiredN.Load(),
		Submitted:        p.submitted.Load(),
		SubmitsRejected:  p.rejected.Load(),
		SubmitsCallerRun: p.callerRuns.Load(),
		InjectorBacklog:  p.injectorBacklog(),
	}
	for _, w := range p.workers {
		if w.state.Load() == workerActive {
			s.ActiveWorkers++
		}
		s.TasksRun += w.tasksRun.Load()
		s.Spawns += w.spawns.Load()
		s.InlineRuns += w.inlineRuns.Load()
		s.Steals += w.steals.Load()
		s.StealAttempts += w.stealAttempts.Load()
		s.Yields += w.yields.Load()
		s.Parks += w.parks.Load()
		s.Wakes += w.wakes.Load()
		s.BackoffNanos += w.backoffNanos.Load()
	}
	return s
}

// injectorBacklog sums the momentary shard occupancy (an estimate, like
// every mid-flight Stats read).
func (p *Pool) injectorBacklog() int64 {
	var n int64
	for _, q := range p.inject {
		n += int64(q.Len())
	}
	return n
}

// stealOnce performs one steal attempt against a victim chosen per the
// configured policy (uniformly random by default, Figure 3 line 16). The
// steal counters are owner-only (this worker's goroutine is their sole
// writer), so their increments relax under RelaxedAtomics.
//
//abp:owner steal counters belong to the stealing worker's own goroutine
//abp:nonblocking
func (w *Worker) stealOnce() *Task {
	// Victims are drawn from the active prefix [0, fleet): a retired slot's
	// deque is empty by the retire protocol, so aiming steals at it would
	// only waste attempts. A worker outside the prefix — retiring, or mid-
	// shrink — steals from all fleet actives; an active worker excludes
	// itself. The read races Resize harmlessly: a stale fleet at worst aims
	// one steal at an emptying (or freshly re-activated) deque.
	n := int(w.pool.fleet.Load())
	pick := n
	if w.id < n {
		pick = n - 1
	}
	if pick == 0 {
		return nil
	}
	var v int
	if w.pool.cfg.RoundRobinVictim {
		w.rr++
		v = w.rr % pick
	} else {
		v = w.rng.Intn(pick)
	}
	if w.id < n && v >= w.id {
		v++
	}
	w.stealAttempts.AddOwner(w.relaxed, 1)
	fault.Point(fpStealBeforePopTop)
	t := w.pool.workers[v].dq.PopTop()
	if t != nil {
		w.steals.AddOwner(w.relaxed, 1)
	}
	return t
}

// execOrDrop runs a task unless its submission has aborted, in which case
// the task is discarded — never executed into a dead submission — and
// accounted under the abort cause's counter. This is the service-mode
// replacement for the old between-runs drain: tasks of interleaved
// submissions share the deques, so staleness is decided per task at pop
// time, not per pool at session boundaries.
//
//abp:owner runs only on the goroutine that owns the worker (its loop, a helping Join on it, or the submitter for the ephemeral caller-runs worker)
func (w *Worker) execOrDrop(t *Task) {
	r := t.run
	if s := r.state.Load(); s != runLive {
		if s == runPanicked {
			w.pool.dropped.Add(1)
		} else {
			w.pool.cancelledN.Add(1)
		}
		w.progress.AddOwner(w.relaxed, 1)
		if r.pending.Add(-1) == 0 {
			r.complete() // no-op: the abort already finished the run
		}
		return
	}
	w.exec(t)
}

// exec runs a task and performs termination accounting against the task's
// submission. A panicking task aborts its submission (and only it); the
// panic value surfaces from Run or from the submission's Handle. The
// worker whose decrement drives the submission's pending counter to zero
// completes it, which closes its finished channel — waking its Handle and,
// for a batch session, the Run goroutine that brings the session down.
//
//abp:owner exec runs only on the goroutine that owns the worker (its loop, or the submitter for the ephemeral caller-runs worker)
func (w *Worker) exec(t *Task) {
	r := t.run
	prev := w.run
	w.run = r
	w.runTask(t, r)
	w.run = prev
	w.tasksRun.AddOwner(w.relaxed, 1)
	w.progress.AddOwner(w.relaxed, 1)
	if r.pending.Add(-1) == 0 {
		r.complete()
	}
}

// runTask invokes the task body under the per-task recover. A panic is
// swallowed here — recorded as the submission's abort cause — so exec's
// termination accounting above always runs and the worker loop survives
// the task.
func (w *Worker) runTask(t *Task, r *run) {
	defer func() {
		if rec := recover(); rec != nil {
			r.abortWith(runPanicked, nil, rec)
		}
	}()
	fault.Point(fpExecBeforeRun)
	t.fn(w)
}

// ID returns the worker's index in [0, Workers).
func (w *Worker) ID() int { return w.id }

// currentRun returns the run record of the task currently executing on
// this worker. Join and Group.Wait read it to watch their own
// submission's abort; like the deque, the field belongs to the goroutine
// running the worker (set and restored only by exec), which is exactly
// the goroutine those helpers document they must be called from.
//
//abp:owner only the goroutine running the worker reads its current run
func (w *Worker) currentRun() *run { return w.run }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Spawn schedules fn to run asynchronously as part of the calling task's
// submission. It pushes the task onto the bottom of the caller's deque,
// where it is available to thieves, and wakes a parked worker if one
// exists; if the deque is full the task runs inline instead (correct, just
// not stealable). The handshake directive makes abpvet verify the producer
// half of the Dekker protocol: the push (PushBottom's internal atomic
// store) must dominate the signalWork scan of the parked flags.
//
//abp:owner tasks execute only on worker goroutines, so the receiver owns w.dq
//abp:handshake store=PushBottom load=signalWork
func (w *Worker) Spawn(fn func(*Worker)) {
	w.spawns.Add(1)
	r := w.run
	r.pending.Add(1)
	t := &Task{fn: fn, run: r}
	if !w.dq.PushBottom(t) {
		w.inlineRuns.Add(1)
		w.exec(t)
		return
	}
	w.pool.signalWork()
}

// tryGetTask pops local work, or failing that makes one steal attempt.
// Used by Future.Join to make progress while waiting.
//
//abp:owner tasks execute only on worker goroutines, so the receiver owns w.dq
func (w *Worker) tryGetTask() *Task {
	if t := w.dq.PopBottom(); t != nil {
		return t
	}
	return w.stealOnce()
}

// anyVisibleWork reports whether any injector shard or deque in the pool
// appears non-empty. A false return together with an incomplete future
// means the future's task is currently running on some worker, so blocking
// is safe. The parking protocol relies on the same property: see park in
// lifecycle.go and the memory-ordering notes on deque.Dequer.Len and
// injector.Len.
func (w *Worker) anyVisibleWork() bool {
	for _, q := range w.pool.inject {
		if q.Len() > 0 {
			return true
		}
	}
	for _, o := range w.pool.workers {
		if o.dq.Len() > 0 {
			return true
		}
	}
	return false
}
