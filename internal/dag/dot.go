package dag

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format, with one subgraph
// cluster per thread (mirroring the shaded regions of the paper's Figure 1),
// solid edges for continuations, dashed for spawns, and dotted for
// synchronization edges. Node labels are the paper's 1-based x_k names.
func (g *Graph) WriteDOT(w io.Writer) error {
	name := g.label
	if name == "" {
		name = "dag"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	for t := 0; t < g.NumThreads(); t++ {
		fmt.Fprintf(w, "  subgraph cluster_t%d {\n    label=\"thread %d\";\n", t, t)
		for i := range g.nodes {
			if g.nodes[i].Thread == ThreadID(t) {
				fmt.Fprintf(w, "    x%d;\n", i+1)
			}
		}
		fmt.Fprintf(w, "  }\n")
	}
	for _, e := range g.Edges() {
		style := "solid"
		switch e.Kind {
		case Spawn:
			style = "dashed"
		case Sync:
			style = "dotted"
		}
		fmt.Fprintf(w, "  x%d -> x%d [style=%s];\n", e.From+1, e.To+1, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
