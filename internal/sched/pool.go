// Package sched is the production side of the reproduction: a work-stealing
// task scheduler for Go built on the paper's non-blocking ABP deque
// (package deque). Each worker is one of the paper's "processes": it owns a
// deque, pops work from the bottom, and when idle yields the processor and
// steals from the top of a uniformly random victim's deque — exactly the
// Figure 3 scheduling loop, with Go's runtime playing the kernel. Unlike
// Figure 3, an idle worker does not spin forever: after repeated failed
// steals it backs off and parks, and Spawn wakes it when stealable work
// appears (see lifecycle.go for the protocol and why it preserves the
// paper's yield semantics).
//
// Two APIs are provided:
//
//   - a task API (Spawn, Fork/Join futures, ParallelFor/Reduce) in the style
//     of the Hood threads library the authors built on this scheduler, and
//   - a dag runner (RunGraph) that executes an explicit computation dag with
//     known work and critical-path length, for benchmark experiments that
//     check the paper's T1/P_A + Tinf*P/P_A bound on real hardware.
//
// For the paper's ablations, the pool can be configured with a mutex-guarded
// deque instead of the non-blocking one, with yields disabled, and with
// parking disabled (the pure spinning loop of Figure 3).
package sched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"worksteal/internal/deque"
)

// DequeKind selects the deque implementation workers use.
type DequeKind uint8

const (
	// DequeABP is the paper's non-blocking deque (the default).
	DequeABP DequeKind = iota
	// DequeMutex is the blocking baseline for ablation benchmarks.
	DequeMutex
	// DequeChaseLev is the unbounded growable successor design (Chase and
	// Lev, SPAA 2005) — the paper's natural extension: no capacity bound,
	// no tag needed. Spawns never fall back to inline execution.
	DequeChaseLev
)

// Config configures a Pool.
type Config struct {
	// Workers is the number of worker goroutines (the paper's P processes).
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// Deque selects the deque implementation (default DequeABP).
	Deque DequeKind
	// DequeCapacity bounds each worker's deque; when a push finds the deque
	// full the task runs inline, which preserves correctness and depth-first
	// order at the cost of stealable parallelism. Defaults to
	// deque.DefaultCapacity.
	DequeCapacity int
	// DisableYield removes the runtime.Gosched call between steal attempts
	// (the paper's yield ablation). Only for experiments: under
	// multiprogramming (more workers than GOMAXPROCS) disabling yields lets
	// spinning thieves starve workers that hold all the work.
	DisableYield bool
	// ParkThreshold is the number of consecutive failed steal attempts
	// after which an idle worker starts backing off toward parking
	// (lifecycle.go). 0 means the default, max(8, 2*Workers), enough hot
	// rounds that a random thief has touched most victims before giving up.
	ParkThreshold int
	// DisableParking keeps idle workers in the paper's pure spinning loop —
	// yield and steal forever — instead of backing off and parking. Only
	// for experiments (the idle-overhead ablation): each idle spinning
	// worker burns a full core.
	DisableParking bool
	// Seed seeds victim selection; 0 means a fixed default.
	Seed int64
	// Pin calls runtime.LockOSThread in each worker, approximating the
	// paper's one-process-per-kernel-thread model.
	Pin bool
	// RoundRobinVictim replaces uniformly random victim selection with a
	// deterministic rotation (the design-choice-5 ablation; the paper's
	// analysis requires random victims).
	RoundRobinVictim bool
}

// Task is the unit of work handled by the scheduler.
type Task struct {
	fn func(*Worker)
}

// Pool is a work-stealing scheduler instance. Create one with New, then use
// Run (possibly several times in sequence). A Pool must not be used by two
// Runs concurrently.
type Pool struct {
	cfg           Config
	parkThreshold int
	workers       []*Worker
	pending       atomic.Int64
	stopped       atomic.Bool
	idle          atomic.Int32 // workers currently parked (lifecycle.go)
	dropped       atomic.Int64 // stale tasks drained between runs
	wg            sync.WaitGroup

	// done is closed by the worker whose task decrement drives pending to
	// zero: the run is over, and the close wakes every parked worker.
	done chan struct{}

	// Panic plumbing: the first panicking task aborts the run; Run re-panics
	// with its value after all workers exit. abort is closed to wake any
	// Join or parked worker that would otherwise wait forever.
	panicOnce sync.Once
	panicVal  any
	abort     chan struct{}
}

// Worker is the execution context passed to every task; it identifies the
// worker goroutine running the task and provides the spawning operations.
type Worker struct {
	pool    *Pool
	id      int
	dq      deque.Dequer[Task]
	rng     *rand.Rand
	rr      int   // round-robin victim cursor
	handoff *Task // root task fallback slot (submitRoot), consumed by loop

	parkCh chan struct{} // capacity-1 wake token (lifecycle.go)
	parked atomic.Bool

	// Per-worker counters, summed by Pool.Stats. Atomics so Stats is safe
	// to call while the run is in flight.
	tasksRun      atomic.Int64
	spawns        atomic.Int64
	inlineRuns    atomic.Int64
	steals        atomic.Int64
	stealAttempts atomic.Int64
	yields        atomic.Int64
	parks         atomic.Int64
	wakes         atomic.Int64
	backoffNanos  atomic.Int64
}

// New builds a pool. The zero Config is valid.
func New(cfg Config) *Pool {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", cfg.Workers))
	}
	if cfg.DequeCapacity == 0 {
		cfg.DequeCapacity = deque.DefaultCapacity
	}
	if cfg.DequeCapacity < 1 {
		panic(fmt.Sprintf("sched: deque capacity %d", cfg.DequeCapacity))
	}
	if cfg.ParkThreshold < 0 {
		panic(fmt.Sprintf("sched: park threshold %d", cfg.ParkThreshold))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	p := &Pool{cfg: cfg, parkThreshold: cfg.ParkThreshold}
	if p.parkThreshold == 0 {
		p.parkThreshold = max(8, 2*cfg.Workers)
	}
	for i := 0; i < cfg.Workers; i++ {
		var dq deque.Dequer[Task]
		switch cfg.Deque {
		case DequeMutex:
			dq = deque.NewMutexWithCapacity[Task](cfg.DequeCapacity)
		case DequeChaseLev:
			dq = deque.NewChaseLev[Task]()
		default:
			dq = deque.NewWithCapacity[Task](cfg.DequeCapacity)
		}
		p.workers = append(p.workers, &Worker{
			pool:   p,
			id:     i,
			dq:     dq,
			rng:    rand.New(rand.NewSource(seed + int64(i)*1_000_003)),
			parkCh: make(chan struct{}, 1),
		})
	}
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Run executes root on worker 0 and returns once root and every task
// transitively spawned from it have completed.
// If a task panics, the run aborts: remaining workers stop, and Run
// re-panics with the original value (tasks already stolen may still finish;
// tasks still in deques are dropped — and drained before the next Run, so
// they can never leak into it).
func (p *Pool) Run(root func(*Worker)) {
	p.stopped.Store(false)
	p.panicOnce = sync.Once{}
	p.panicVal = nil
	p.abort = make(chan struct{})
	p.done = make(chan struct{})
	p.drainDeques()
	p.pending.Store(1)
	p.submitRoot(&Task{fn: root})
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		go w.loop()
	}
	p.wg.Wait()
	if p.panicVal != nil {
		panic(p.panicVal)
	}
}

// drainDeques empties every worker deque of tasks left over from a
// previous panic-aborted run, so a stale task can neither execute in the
// next run nor decrement its pending counter out from under it. It also
// clears stale wake tokens. Between runs no workers are live, so Run's
// goroutine is a legitimate owner for the PopBottom calls.
//
//abp:owner quiescent phase: no workers are running between runs
func (p *Pool) drainDeques() {
	for _, w := range p.workers {
		for w.dq.PopBottom() != nil {
			p.dropped.Add(1)
		}
		select {
		case <-w.parkCh:
		default:
		}
	}
}

// submitRoot hands the root task to worker 0. After drainDeques the deque
// is empty, so PushBottom cannot fail with the stock deques — but a
// refusal must not be silently dropped (it would deadlock wg.Wait with
// pending stuck at 1): fall back to the direct handoff slot, which worker
// 0's loop consumes before its first pop. This is the same run-it-anyway
// guarantee Spawn provides via inline execution.
//
//abp:owner quiescent phase: workers have not been started yet
func (p *Pool) submitRoot(t *Task) {
	if !p.workers[0].dq.PushBottom(t) {
		p.workers[0].handoff = t
	}
}

// recordPanic notes the first task panic and aborts the run.
func (p *Pool) recordPanic(v any) {
	p.panicOnce.Do(func() {
		p.panicVal = v
		p.stopped.Store(true)
		close(p.abort)
	})
}

// Stats sums the per-worker counters accumulated so far (across runs). It
// is safe to call concurrently with a running Run.
func (p *Pool) Stats() Stats {
	s := Stats{TasksDropped: p.dropped.Load()}
	for _, w := range p.workers {
		s.TasksRun += w.tasksRun.Load()
		s.Spawns += w.spawns.Load()
		s.InlineRuns += w.inlineRuns.Load()
		s.Steals += w.steals.Load()
		s.StealAttempts += w.stealAttempts.Load()
		s.Yields += w.yields.Load()
		s.Parks += w.parks.Load()
		s.Wakes += w.wakes.Load()
		s.BackoffNanos += w.backoffNanos.Load()
	}
	return s
}

// stealOnce performs one steal attempt against a victim chosen per the
// configured policy (uniformly random by default, Figure 3 line 16).
//
//abp:nonblocking
func (w *Worker) stealOnce() *Task {
	n := len(w.pool.workers)
	if n == 1 {
		return nil
	}
	var v int
	if w.pool.cfg.RoundRobinVictim {
		w.rr++
		v = w.rr % (n - 1)
	} else {
		v = w.rng.Intn(n - 1)
	}
	if v >= w.id {
		v++
	}
	w.stealAttempts.Add(1)
	t := w.pool.workers[v].dq.PopTop()
	if t != nil {
		w.steals.Add(1)
	}
	return t
}

// exec runs a task and performs termination accounting. A panicking task
// aborts the whole run; the panic value surfaces from Pool.Run. The worker
// whose decrement drives pending to zero ends the run: it sets stopped
// (the loop-exit condition) and closes done, which wakes every parked
// worker for a clean shutdown.
func (w *Worker) exec(t *Task) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
		}
		w.tasksRun.Add(1)
		if w.pool.pending.Add(-1) == 0 {
			w.pool.stopped.Store(true)
			close(w.pool.done)
		}
	}()
	t.fn(w)
}

// ID returns the worker's index in [0, Workers).
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Spawn schedules fn to run asynchronously. It pushes the task onto the
// bottom of the caller's deque, where it is available to thieves, and
// wakes a parked worker if one exists; if the deque is full the task runs
// inline instead (correct, just not stealable). The handshake directive
// makes abpvet verify the producer half of the Dekker protocol: the push
// (PushBottom's internal atomic store) must dominate the signalWork scan of
// the parked flags.
//
//abp:owner tasks execute only on worker goroutines, so the receiver owns w.dq
//abp:handshake store=PushBottom load=signalWork
func (w *Worker) Spawn(fn func(*Worker)) {
	w.spawns.Add(1)
	w.pool.pending.Add(1)
	t := &Task{fn: fn}
	if !w.dq.PushBottom(t) {
		w.inlineRuns.Add(1)
		w.exec(t)
		return
	}
	w.pool.signalWork()
}

// tryGetTask pops local work, or failing that makes one steal attempt.
// Used by Future.Join to make progress while waiting.
//
//abp:owner tasks execute only on worker goroutines, so the receiver owns w.dq
func (w *Worker) tryGetTask() *Task {
	if t := w.dq.PopBottom(); t != nil {
		return t
	}
	return w.stealOnce()
}

// anyVisibleWork reports whether any deque in the pool appears non-empty.
// A false return together with an incomplete future means the future's task
// is currently running on some worker, so blocking is safe. The parking
// protocol relies on the same property: see park in lifecycle.go and the
// memory-ordering note on deque.Dequer.Len.
func (w *Worker) anyVisibleWork() bool {
	for _, o := range w.pool.workers {
		if o.dq.Len() > 0 {
			return true
		}
	}
	return false
}
