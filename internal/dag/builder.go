package dag

import "fmt"

// Builder constructs computation dags incrementally. A typical construction
// mirrors the execution of a multithreaded program: create the root thread,
// append instruction nodes to it, spawn child threads from nodes, and add
// synchronization edges for joins and semaphores.
//
// Builders are not safe for concurrent use.
type Builder struct {
	nodes   []Node
	threads []threadInfo
	label   string
}

// NewBuilder returns an empty Builder. The first call to NewThread creates
// the root thread (thread 0).
func NewBuilder() *Builder {
	return &Builder{}
}

// SetLabel attaches a human-readable name to the graph under construction.
func (b *Builder) SetLabel(label string) { b.label = label }

// NewThread creates a new, empty thread and returns its id. The first
// thread created is the root thread.
func (b *Builder) NewThread() ThreadID {
	t := ThreadID(len(b.threads))
	b.threads = append(b.threads, threadInfo{first: None, last: None})
	return t
}

// AddNode appends a new node to thread t and returns its id. If the thread
// already has nodes, a continuation edge is added from the previous last
// node to the new node.
func (b *Builder) AddNode(t ThreadID) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Thread: t})
	ti := &b.threads[t]
	if ti.first == None {
		ti.first = id
	} else {
		b.addEdge(ti.last, id, Continuation)
	}
	ti.last = id
	ti.size++
	return id
}

// AddChain appends n consecutive nodes to thread t and returns the first and
// last of them. It panics if n < 1.
func (b *Builder) AddChain(t ThreadID, n int) (first, last NodeID) {
	if n < 1 {
		panic("dag: AddChain requires n >= 1")
	}
	first = b.AddNode(t)
	last = first
	for i := 1; i < n; i++ {
		last = b.AddNode(t)
	}
	return first, last
}

// Spawn creates a new thread whose first node is enabled by node from, and
// returns the new thread's id together with its first node. The spawn edge
// from -> first is added immediately, so the spawning node must already
// exist and must have out-degree at most one.
func (b *Builder) Spawn(from NodeID) (ThreadID, NodeID) {
	t := b.NewThread()
	first := b.AddNode(t)
	b.addEdge(from, first, Spawn)
	return t, first
}

// AddSync adds a synchronization edge from -> to, meaning node to cannot
// execute until node from has executed. Use it for joins (last node of a
// child thread to a node of the parent) and semaphore-style signalling.
func (b *Builder) AddSync(from, to NodeID) {
	b.addEdge(from, to, Sync)
}

func (b *Builder) addEdge(from, to NodeID, kind EdgeKind) {
	if from == to {
		panic(fmt.Sprintf("dag: self edge on node %d", from))
	}
	e := Edge{From: from, To: to, Kind: kind}
	b.nodes[from].Succs = append(b.nodes[from].Succs, e)
	b.nodes[to].Preds = append(b.nodes[to].Preds, e)
}

// NumNodes reports how many nodes have been added so far.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// Build finalizes the graph and validates it. The Builder must not be used
// after a successful Build.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{nodes: b.nodes, threads: b.threads, label: b.label}
	if len(b.nodes) == 0 {
		return nil, ErrEmpty
	}
	g.root = None
	g.final = None
	for i := range g.nodes {
		if len(g.nodes[i].Preds) == 0 {
			if g.root != None {
				return nil, fmt.Errorf("%w: nodes %d and %d", ErrMultipleRoots, g.root, i)
			}
			g.root = NodeID(i)
		}
		if len(g.nodes[i].Succs) == 0 {
			if g.final != None {
				return nil, fmt.Errorf("%w: nodes %d and %d", ErrMultipleFinal, g.final, i)
			}
			g.final = NodeID(i)
		}
	}
	if g.root == None {
		return nil, ErrMultipleRoots
	}
	if g.final == None {
		return nil, ErrMultipleFinal
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build but panics on error; intended for generators whose
// output is correct by construction, and for tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
