package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// abporder is the memory-ordering necessity analyzer: for every atomic
// variable in a package it classifies the minimal ordering discipline the
// code's happens-before structure actually requires — plain (no concurrent
// conflicting access survives the proof), publish (a release/acquire pair
// suffices), or sc (the variable participates in a CAS arbitration or a
// Dekker store→load handshake, the two shapes the paper's §3.2/Figure 5
// proof leans on) — and cross-checks that classification against the
// discipline the declaration states (the atomicx wrapper types; raw
// sync/atomic counts as an undeclared sc). It reuses abprace's machinery
// wholesale: goroutine-context inference, field-sensitive access
// collection, and the happens-before fact extractors.
//
// The two directions are deliberately asymmetric:
//
//   - Downgrades (over-synchronization findings) must be PROOFS, so they
//     run under adversarial assumptions: the external root is treated as
//     self-concurrent (concurrentAdversarial — a plain-safety argument
//     resting on "callers serialize" is not a license to strip the
//     synchronization those callers may rely on), the variable's own
//     release/acquire edges are excluded (using an atomic to prove itself
//     unnecessary is circular), trusted-handshake suppression is excluded
//     (handshake accesses are the opposite of plain-safe), and any
//     cross-variable store→load sequence (the Dekker shape, detected
//     generously) blocks an sc→publish demotion.
//   - Upgrades (under-synchronization findings) fire only on hard
//     evidence: an arbitration RMW (CompareAndSwap/Swap anywhere, or an
//     Add whose result is consumed — a blind counter increment is
//     commutative and needs no ordering decision) or participation in a
//     declared //abp:handshake protocol.
//
// Per-variable classification is skipped entirely when any collected
// access of the variable sits in a function with no inferred goroutine
// context (an escaping literal with no static invocation edge): such a
// function is a potential hidden writer the pair analysis cannot see.
//
// Findings are suppressed with a justified //abp:order-ignore comment on
// or above the flagged line. abporder inherits abprace's deliberate
// over-approximations (DESIGN.md §11 lists them against §8).

// AbpOrder reports atomic variables whose declared ordering discipline is
// stronger than the proven requirement (over-synchronized) or weaker than
// the evidence demands (under-synchronized), plus loop-invariant atomic
// loads and unproven owner-accessor call sites.
var AbpOrder = &Analyzer{
	Name: "abporder",
	Doc:  "classifies the minimal memory-ordering discipline (plain/publish/sc) each atomic variable needs and reports declaration-vs-necessity mismatches, loop-invariant atomic loads, and unproven atomicx owner-accessor sites",
	Run:  runAbpOrder,
}

// An orderDecl is one atomic variable declaration in scope.
type orderDecl struct {
	pos  token.Pos
	disc string // "sc", "publish", "plain" (atomicx) or "raw" (sync/atomic)
	typ  string // rendered type name for messages
}

type orderAnalysis struct {
	*raceAnalysis
	declared map[*types.Var]*orderDecl
	// hsFns holds the handshake-involved functions: carriers of an
	// //abp:handshake directive and functions named by a store=/load=
	// operand of one. Atomic accesses inside them are sc-justified — the
	// declared protocol is audited by the handshake analyzer.
	hsFns map[*funcNode]bool
	// rmwConsumed marks variables with an atomic Add whose result is
	// consumed: "pending.Add(-1) == 0" is an arbitration (exactly one
	// caller observes zero and acts), unlike a blind counter increment.
	rmwConsumed map[*types.Var]bool
	// dekker marks variables whose atomic store can be followed, in the
	// same function, by an atomic load of a different variable: the
	// store→load fence shape that only sequential consistency provides.
	dekker map[*types.Var]bool
}

func runAbpOrder(pass *Pass) error {
	o := &orderAnalysis{
		raceAnalysis: newRaceAnalysis(pass),
		declared:     map[*types.Var]*orderDecl{},
		hsFns:        map[*funcNode]bool{},
		rmwConsumed:  map[*types.Var]bool{},
		dekker:       map[*types.Var]bool{},
	}
	// Unlike abprace, collect over every function including context-less
	// ones: hidden writers must be visible to the no-writer and owner
	// proofs, and the mention-guard needs to know they exist.
	for _, n := range o.graph.nodes {
		o.collect(n)
	}
	o.canonicalize()
	o.findDecls()
	o.findHandshakeFns()
	o.findConsumedRMWs()
	o.findDekkerStores()
	o.checkVars()
	o.checkSites()
	return nil
}

// canonicalize re-keys the collected accesses by types.Var.Origin. In a
// generic type the same field surfaces as distinct instantiation
// variables at different use sites; left split, each partition of the
// accesses can look safely ordered when the union is not.
func (o *orderAnalysis) canonicalize() {
	merged := map[*types.Var][]*raceAccess{}
	for v, accs := range o.accesses {
		merged[v.Origin()] = append(merged[v.Origin()], accs...)
	}
	o.accesses = merged
}

// --- scope discovery ---

// declDiscipline classifies a declared type as an ordering discipline,
// unwrapping one level of slice/array (a field []atomicx.SCPointer[T]
// declares its elements' discipline).
func declDiscipline(t types.Type) (disc, name string, ok bool) {
	switch u := t.(type) {
	case *types.Slice:
		t = u.Elem()
	case *types.Array:
		t = u.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg().Path() == "sync/atomic" {
		return "raw", "atomic." + obj.Name(), true
	}
	if obj.Pkg().Name() == "atomicx" {
		switch {
		case strings.HasPrefix(obj.Name(), "SC"):
			return "sc", "atomicx." + obj.Name(), true
		case strings.HasPrefix(obj.Name(), "Publish"):
			return "publish", "atomicx." + obj.Name(), true
		case strings.HasPrefix(obj.Name(), "Plain"):
			return "plain", "atomicx." + obj.Name(), true
		}
	}
	return "", "", false
}

// findDecls indexes every struct field and package-level variable whose
// declared type is a sync/atomic or atomicx wrapper.
func (o *orderAnalysis) findDecls() {
	info := o.pass.TypesInfo
	record := func(name *ast.Ident) {
		v, ok := info.Defs[name].(*types.Var)
		if !ok || v == nil {
			return
		}
		if disc, typ, ok := declDiscipline(v.Type()); ok {
			o.declared[v] = &orderDecl{pos: name.Pos(), disc: disc, typ: typ}
		}
	}
	for _, f := range o.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				for _, field := range x.Fields.List {
					for _, name := range field.Names {
						record(name)
					}
				}
			case *ast.FuncDecl:
				return false // package-level vars and type decls only
			}
			return true
		})
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						record(name)
					}
				}
			}
		}
	}
}

// findHandshakeFns marks directive carriers and the functions their
// store=/load= operands name.
func (o *orderAnalysis) findHandshakeFns() {
	names := map[string]bool{}
	for _, n := range o.graph.nodes {
		if n.decl == nil {
			continue
		}
		if hasDirective(n.decl.Doc, "//abp:handshake") {
			o.hsFns[n] = true
		}
		dirs, _ := parseHandshakeDirectives(n.decl.Doc)
		for _, d := range dirs {
			names[d.store] = true
			names[d.load] = true
		}
	}
	for _, n := range o.graph.nodes {
		if n.decl != nil && names[n.decl.Name.Name] {
			o.hsFns[n] = true
		}
	}
}

// findConsumedRMWs marks variables with an atomic Add whose result is
// used. Calls hanging directly off an ExprStmt (or as a go/defer call)
// discard their result; anything else consumes it.
func (o *orderAnalysis) findConsumedRMWs() {
	info := o.pass.TypesInfo
	for _, f := range o.pass.Files {
		discarded := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if c, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
					discarded[c] = true
				}
			case *ast.GoStmt:
				discarded[x.Call] = true
			case *ast.DeferStmt:
				discarded[x.Call] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || discarded[call] {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || !strings.HasPrefix(callee.Name(), "Add") {
				return true
			}
			var v *types.Var
			switch {
			case isAtomicMethod(callee):
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					v = leafVar(info, elemBase(ast.Unparen(sel.X)))
				}
			case isAtomicFunc(callee) && len(call.Args) > 0:
				if ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
					v = leafVar(info, elemBase(ast.Unparen(ue.X)))
				}
			}
			if v != nil {
				o.rmwConsumed[v.Origin()] = true
			}
			return true
		})
	}
}

// findDekkerStores marks every variable atomically stored at a point from
// which an atomic load of a DIFFERENT variable is reachable in the same
// function: the store→load sequence whose ordering is exactly what
// sequential consistency adds over release/acquire. The test is
// deliberately generous (any cross-variable sequence, no symmetry
// requirement) because it only ever BLOCKS a demotion — the park/steal
// handshakes span function and package boundaries the per-function fact
// extractor cannot follow, and missing one would demote a load-bearing
// fence.
func (o *orderAnalysis) findDekkerStores() {
	for fn, facts := range o.facts {
		cfg := o.cfg(fn)
		for _, rel := range facts.atomicW {
			if rel.node == nil || rel.v == nil {
				continue
			}
			for _, acq := range facts.atomicR {
				if acq.v == nil || acq.v.Origin() == rel.v.Origin() || acq.node == nil {
					continue
				}
				if rel.node == acq.node || cfg.canReach(rel.node, acq.node) {
					o.dekker[rel.v.Origin()] = true
					break
				}
			}
		}
	}
}

// --- per-variable classification ---

func (o *orderAnalysis) checkVars() {
	vars := make([]*types.Var, 0, len(o.accesses))
	for v := range o.accesses {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })

	for _, v := range vars {
		accs := o.accesses[v]
		sort.SliceStable(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })

		decl := o.declared[v]
		hasAtomic := false
		for _, acc := range accs {
			if acc.atomic {
				hasAtomic = true
				break
			}
		}
		if decl == nil {
			if !hasAtomic {
				continue // a plain variable: abprace's territory
			}
			// Function-style atomics on a raw integer field: an
			// undeclared sc discipline, checkable all the same.
			decl = &orderDecl{pos: v.Pos(), disc: "raw", typ: types.TypeString(v.Type(), func(p *types.Package) string { return p.Name() })}
		}
		if v.Pkg() != o.pass.Pkg {
			continue // another package's declaration is its own analyzer run's job
		}

		desc := accs[0].desc
		scEvidence := o.scEvidence(v, accs)

		// Under-synchronization: hard evidence the declaration is too
		// weak. Hidden writers only add requirements, so this check
		// needs no mention-guard.
		if (decl.disc == "publish" || decl.disc == "plain") && scEvidence != "" {
			o.pass.Reportf(decl.pos,
				"%s declares %s ordering (%s) but %s: sc discipline is required (suppress with //abp:order-ignore <justification>)",
				desc, decl.disc, decl.typ, scEvidence)
			continue
		}
		if decl.disc == "plain" {
			o.checkPlainDecl(v, decl, desc, accs)
			continue
		}

		// Downgrade proofs from here on: skip any variable with an
		// access in a context-less function (a potential hidden writer
		// the pair analysis cannot see) or visible outside the package.
		if v.Exported() || o.mentionGuarded(accs) {
			continue
		}
		if o.plainProven(accs) && scEvidence == "" && !o.dekker[v] {
			if decl.disc == "raw" {
				o.pass.Reportf(decl.pos,
					"%s is accessed through sync/atomic but every conflicting access pair is ordered by happens-before edges even under adversarial caller concurrency: plain access suffices (suppress with //abp:order-ignore <justification>)",
					desc)
			} else {
				o.pass.Reportf(decl.pos,
					"%s declares %s ordering (%s) but every conflicting access pair is ordered by happens-before edges even under adversarial caller concurrency: plain discipline suffices (suppress with //abp:order-ignore <justification>)",
					desc, decl.disc, decl.typ)
			}
			continue
		}
		if decl.disc == "sc" && scEvidence == "" && !o.dekker[v] {
			o.pass.Reportf(decl.pos,
				"%s declares sc ordering (%s) but participates in no CAS arbitration, consumed-result RMW, store→load sequence, or declared handshake: publish (release/acquire) discipline suffices (suppress with //abp:order-ignore <justification>)",
				desc, decl.typ)
		}
	}
}

// scEvidence returns a human-readable reason the variable needs sc
// discipline, or "" when no hard evidence exists.
func (o *orderAnalysis) scEvidence(v *types.Var, accs []*raceAccess) string {
	for _, acc := range accs {
		if strings.HasPrefix(acc.op, "CompareAndSwap") || strings.HasPrefix(acc.op, "Swap") {
			return fmt.Sprintf("is arbitrated by %s", acc.op)
		}
	}
	if o.rmwConsumed[v] {
		return "an atomic Add's result is consumed (an arbitration, not a blind increment)"
	}
	for _, acc := range accs {
		if o.hsFns[acc.fn] {
			return fmt.Sprintf("participates in the //abp:handshake protocol through %s", acc.fn.name())
		}
	}
	return ""
}

// mentionGuarded reports whether any access of the variable sits in a
// function with no inferred goroutine context.
func (o *orderAnalysis) mentionGuarded(accs []*raceAccess) bool {
	for _, acc := range accs {
		if len(o.gs.ctx[acc.fn]) == 0 {
			return true
		}
	}
	return false
}

// plainProven reports whether EVERY conflicting access pair (at least one
// side writing — atomicity of the ops themselves is what is on trial, so
// atomic-atomic pairs are not exempt) is ordered under the adversarial
// rules: external self-concurrency, no credit for the trusted-handshake
// suppression, and no credit for atomic release/acquire edges.
func (o *orderAnalysis) plainProven(accs []*raceAccess) bool {
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			x, y := accs[i], accs[j]
			if !x.write && !y.write {
				continue
			}
			for _, rx := range o.gs.ctx[x.fn] {
				for _, ry := range o.gs.ctx[y.fn] {
					if !rx.concurrentAdversarial(ry) {
						continue
					}
					if !o.plainSuppressed(x, y, rx, ry) {
						return false
					}
				}
			}
		}
	}
	return true
}

// plainSuppressed is raceAnalysis.suppressed restricted to the facts a
// plain access may rely on: owner discipline, sync.Once, locksets, and
// the fork/join/channel edges — NOT the trusted-handshake waiver (those
// accesses are the opposite of plain-safe) and NOT atomic release/acquire
// pairing (circular when the atomics themselves are on trial).
func (o *orderAnalysis) plainSuppressed(x, y *raceAccess, rx, ry *gRoot) bool {
	// Owner discipline serializes accesses only while there is a SINGLE
	// owner instance. A go root that may run as several concurrent copies
	// (launched in a loop) makes "owned" mean "owned by one of N workers",
	// which orders nothing on receiver-shared state — so a multi go-root
	// forfeits the owner suppression. The external root keeps it: the
	// owner contract is exactly the documented serialization external
	// callers sign up for, and the owneronly analyzer audits it.
	ownerTrust := func(r *gRoot) bool { return r.external || !r.multi }
	if x.recvDirect && y.recvDirect && o.owned[x.fn] && o.owned[y.fn] &&
		ownerTrust(rx) && ownerTrust(ry) {
		return true
	}
	if x.onceVar != nil && x.onceVar == y.onceVar {
		return true
	}
	if o.lockExcluded(x, y) {
		return true
	}
	return o.plainOrdered(x, rx, y, ry) || o.plainOrdered(y, ry, x, rx)
}

func (o *orderAnalysis) plainOrdered(x *raceAccess, rx *gRoot, y *raceAccess, ry *gRoot) bool {
	if !ry.external && rx != ry && o.beforeLaunch(x, ry) {
		return true
	}
	if !rx.external && rx != ry && o.afterJoin(y, rx) {
		return true
	}
	return o.pairedVia(x, y, o.factsOf(x.fn).sends, o.factsOf(y.fn).recvs)
}

// checkPlainDecl verifies a declared-plain variable the way abprace
// verifies a raw field: under the standard concurrency model with the
// full suppression set. A surviving conflicting pair means plain was the
// wrong declaration.
func (o *orderAnalysis) checkPlainDecl(v *types.Var, decl *orderDecl, desc string, accs []*raceAccess) {
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			x, y := accs[i], accs[j]
			if !x.write && !y.write {
				continue
			}
			for _, rx := range o.gs.ctx[x.fn] {
				for _, ry := range o.gs.ctx[y.fn] {
					if !rx.concurrent(ry) {
						continue
					}
					if o.suppressed(x, y, rx, ry) {
						continue
					}
					o.pass.Reportf(decl.pos,
						"%s declares plain ordering (%s) but has concurrent conflicting accesses with no happens-before edge (%s in %s vs %s in %s): publish or sc discipline is required (suppress with //abp:order-ignore <justification>)",
						desc, decl.typ, x.kind(), x.fn.name(), y.kind(), y.fn.name())
					return
				}
			}
		}
	}
}

// --- per-site checks ---

func (o *orderAnalysis) checkSites() {
	type site struct {
		acc *raceAccess
		v   *types.Var
	}
	var sites []site
	for v, accs := range o.accesses {
		for _, acc := range accs {
			sites = append(sites, site{acc, v})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].acc.pos < sites[j].acc.pos })

	for _, s := range sites {
		acc, v := s.acc, s.v
		if acc.ownerOp {
			o.checkOwnerOp(v, acc)
			continue
		}
		// Loop-invariant atomic load: an atomic Load inside a CFG cycle
		// of a variable nothing in the package ever writes (hidden
		// writers included — context-less functions were collected). The
		// load's value cannot change across iterations; hoist it.
		if acc.atomic && !acc.write && strings.HasPrefix(acc.op, "Load") &&
			v.Pkg() == o.pass.Pkg && !v.Exported() &&
			o.onCycle(acc) && !o.anyWrite(v) {
			o.pass.Reportf(acc.pos,
				"loop-invariant atomic load of %s: nothing in the package writes it, so the load can be hoisted out of the loop (suppress with //abp:order-ignore <justification>)",
				acc.desc)
		}
	}
}

// checkOwnerOp verifies the single-writer proof at one LoadOwner/AddOwner
// call site: the access must be receiver-direct inside an audited
// //abp:owner context, and every write of the variable anywhere in the
// package must itself be in an owner context (constructors included —
// a write need not be receiver-direct, but it must be owned).
func (o *orderAnalysis) checkOwnerOp(v *types.Var, acc *raceAccess) {
	reason := ""
	switch {
	case !acc.recvDirect:
		reason = "the access is not receiver-direct"
	case !o.owned[acc.fn]:
		reason = fmt.Sprintf("%s is not an //abp:owner context", acc.fn.name())
	default:
		for _, w := range o.accesses[v] {
			if w.write && !o.owned[w.fn] {
				reason = fmt.Sprintf("%s writes the variable outside any //abp:owner context", w.fn.name())
				break
			}
		}
		if reason == "" && v.Exported() {
			reason = "the variable is exported, so writers outside the package are possible"
		}
	}
	if reason == "" {
		return
	}
	o.pass.Reportf(acc.pos,
		"unproven owner accessor %s on %s: %s — the relaxed plain read is sound only under the single-writer owner contract (suppress with //abp:order-ignore <justification>)",
		acc.op, acc.desc, reason)
}

// onCycle reports whether the access's CFG block lies on a cycle.
func (o *orderAnalysis) onCycle(acc *raceAccess) bool {
	if acc.node == nil {
		return false
	}
	cfg := o.cfg(acc.fn)
	blk, ok := cfg.nodeBlock[acc.node]
	if !ok {
		return false
	}
	return cfg.reachability()[blk.index][blk.index]
}

func (o *orderAnalysis) anyWrite(v *types.Var) bool {
	for _, acc := range o.accesses[v] {
		if acc.write {
			return true
		}
	}
	return false
}
