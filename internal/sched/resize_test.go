// Tests for the elastic fleet (resize.go) and graceful drain (drain.go):
// the contract under test is the issue's — a Resize never loses, drops, or
// double-runs a submission, retired workers are invisible to wake and
// steal, and a Drain completes every accepted handle without ErrStopped on
// the happy path.
package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestResizeInvalidArgs(t *testing.T) {
	p := New(Config{Workers: 2, MaxWorkers: 4})
	if err := p.Resize(0); err == nil {
		t.Fatal("Resize(0) succeeded; want an error")
	}
	if err := p.Resize(5); err == nil {
		t.Fatal("Resize(5) on MaxWorkers=4 succeeded; want an error")
	}
	if err := p.Resize(4); err != nil {
		t.Fatalf("Resize(4) on MaxWorkers=4: %v", err)
	}
}

func TestNewRejectsMaxWorkersBelowWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Workers:4, MaxWorkers:2) did not panic")
		}
	}()
	New(Config{Workers: 4, MaxWorkers: 2})
}

// A resize between sessions takes effect at the next session: the fleet
// target is pool state, not session state.
func TestResizeIdlePool(t *testing.T) {
	p := New(Config{Workers: 2, MaxWorkers: 8})
	if err := p.Resize(8); err != nil {
		t.Fatalf("idle Resize: %v", err)
	}
	var ran atomic.Int64
	p.Run(func(w *Worker) {
		for i := 0; i < 64; i++ {
			w.Spawn(func(*Worker) { ran.Add(1) })
		}
	})
	if got := ran.Load(); got != 64 {
		t.Fatalf("ran %d of 64 tasks after an idle grow", got)
	}
	if got := p.Stats().ActiveWorkers; got != 8 {
		t.Fatalf("ActiveWorkers = %d after Run on a fleet resized to 8", got)
	}
	if err := p.Resize(1); err != nil {
		t.Fatalf("idle shrink: %v", err)
	}
	ran.Store(0)
	p.Run(func(w *Worker) {
		for i := 0; i < 16; i++ {
			w.Spawn(func(*Worker) { ran.Add(1) })
		}
	})
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d of 16 tasks on the shrunken fleet", got)
	}
	if got := p.Stats().ActiveWorkers; got != 1 {
		t.Fatalf("ActiveWorkers = %d after shrinking to 1", got)
	}
}

// Growing mid-Serve starts real worker goroutines: the widened fleet must
// both execute work and show up in the stats.
func TestResizeGrowMidServe(t *testing.T) {
	p := New(Config{Workers: 2, MaxWorkers: 8, ParkThreshold: 2})
	stop := startServing(t, p)
	if err := p.Resize(8); err != nil {
		t.Fatalf("Resize(8): %v", err)
	}
	waitFor(t, 10*time.Second, "grown fleet to report active", func() bool {
		return p.Stats().ActiveWorkers == 8
	})
	var ran atomic.Int64
	const subs = 40
	for i := 0; i < subs; i++ {
		h, err := p.Submit(func(w *Worker) {
			for j := 0; j < 8; j++ {
				w.Spawn(func(*Worker) { chaosSpin(50); ran.Add(1) })
			}
			ran.Add(1)
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if err := h.Wait(); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	if got := ran.Load(); got != subs*9 {
		t.Fatalf("ran %d of %d tasks on the grown fleet", got, subs*9)
	}
	if got := p.Stats().Resizes; got != 1 {
		t.Fatalf("Stats.Resizes = %d, want 1", got)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// Shrinking mid-Serve retires the suffix at safe points — every
// in-flight and subsequent submission still completes, nothing is
// dropped, and the retired workers leave the active count.
func TestResizeShrinkMidServe(t *testing.T) {
	p := New(Config{Workers: 8, ParkThreshold: 2})
	stop := startServing(t, p)
	var ran atomic.Int64
	const subs = 40
	handles := make([]*Handle, 0, subs)
	for i := 0; i < subs; i++ {
		h, err := p.Submit(func(w *Worker) {
			for j := 0; j < 8; j++ {
				w.Spawn(func(*Worker) { chaosSpin(200); ran.Add(1) })
			}
			ran.Add(1)
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		handles = append(handles, h)
		if i == subs/2 {
			if err := p.Resize(1); err != nil {
				t.Fatalf("Resize(1): %v", err)
			}
		}
	}
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("submission %d: Wait = %v across the shrink", i, err)
		}
	}
	if got := ran.Load(); got != subs*9 {
		t.Fatalf("ran %d of %d tasks across the shrink", got, subs*9)
	}
	waitFor(t, 10*time.Second, "suffix workers to retire", func() bool {
		s := p.Stats()
		return s.ActiveWorkers == 1 && s.WorkersRetired == 7
	})
	if got := p.Stats().TasksDropped; got != 0 {
		t.Fatalf("%d tasks dropped during a clean shrink", got)
	}
	// The shrunken fleet still serves.
	h, err := p.Submit(func(*Worker) { ran.Add(1) })
	if err != nil {
		t.Fatalf("post-shrink Submit: %v", err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("post-shrink Wait: %v", err)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// A shrink immediately regrown reactivates workers mid-retirement (the
// retiring→active CAS path): run it many times so both the reactivation
// and the fresh-goroutine path get exercised, and assert no work is ever
// lost and the fleet lands on the final target.
func TestResizeShrinkGrowRace(t *testing.T) {
	p := New(Config{Workers: 4, MaxWorkers: 8, ParkThreshold: 2})
	stop := startServing(t, p)
	var ran atomic.Int64
	var want int64
	for round := 0; round < 50; round++ {
		h, err := p.Submit(func(w *Worker) {
			for j := 0; j < 4; j++ {
				w.Spawn(func(*Worker) { ran.Add(1) })
			}
			ran.Add(1)
		})
		if err != nil {
			t.Fatalf("round %d: Submit: %v", round, err)
		}
		want += 5
		if err := p.Resize(1); err != nil {
			t.Fatalf("round %d: shrink: %v", round, err)
		}
		if err := p.Resize(8); err != nil {
			t.Fatalf("round %d: grow: %v", round, err)
		}
		if err := h.Wait(); err != nil {
			t.Fatalf("round %d: Wait: %v", round, err)
		}
	}
	if got := ran.Load(); got != want {
		t.Fatalf("ran %d of %d tasks across the shrink/grow churn", got, want)
	}
	waitFor(t, 10*time.Second, "fleet to settle on the final target", func() bool {
		return p.Stats().ActiveWorkers == 8
	})
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// The happy-path drain contract: every handle accepted before Drain
// completes with nil (never ErrStopped), Submit during the drain reports
// ErrDraining, Serve returns nil, and the pool serves again afterwards.
func TestDrainHappyPath(t *testing.T) {
	p := New(Config{Workers: 4, ParkThreshold: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(ctx) }()
	waitFor(t, 10*time.Second, "pool to start serving", p.serving.Load)

	gate := make(chan struct{})
	var ran atomic.Int64
	const subs = 20
	handles := make([]*Handle, 0, subs)
	for i := 0; i < subs; i++ {
		h, err := p.Submit(func(w *Worker) {
			<-gate
			for j := 0; j < 4; j++ {
				w.Spawn(func(*Worker) { ran.Add(1) })
			}
			ran.Add(1)
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- p.Drain(context.Background()) }()
	// The drain must close admission before the accepted set finishes.
	waitFor(t, 10*time.Second, "admission to close", func() bool {
		_, err := p.Submit(func(*Worker) {})
		return errors.Is(err, ErrDraining)
	})
	close(gate) // let the accepted submissions run

	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v on the happy path", err)
	}
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("accepted submission %d: Wait = %v after a graceful drain (want nil)", i, err)
		}
	}
	if got := ran.Load(); got != subs*5 {
		t.Fatalf("ran %d of %d tasks through the drain", got, subs*5)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after a graceful drain, want nil", err)
	}

	// The pool is reusable: a second Serve accepts and completes work.
	stop := startServing(t, p)
	h, err := p.Submit(func(*Worker) {})
	if err != nil {
		t.Fatalf("Submit after drain+restart: %v", err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait after drain+restart: %v", err)
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("restarted Serve returned %v", err)
	}
}

// The bounded-drain fallback: when the drain deadline expires with
// submissions still in flight, Drain reports the ctx error and the
// stragglers complete with ErrStopped instead of wedging.
func TestDrainDeadlineFallback(t *testing.T) {
	p := New(Config{Workers: 2, ParkThreshold: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(ctx) }()
	waitFor(t, 10*time.Second, "pool to start serving", p.serving.Load)

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	h, err := p.Submit(func(*Worker) {
		started <- struct{}{}
		<-gate
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started // the task is executing: the drain cannot complete until gate opens

	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	if err := p.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v with a wedged submission, want DeadlineExceeded", err)
	}
	// The straggler was aborted by the teardown sweep; its task is still
	// blocked, so release it so the worker (and Serve) can exit.
	if err := h.Wait(); !errors.Is(err, ErrStopped) {
		t.Fatalf("straggler Wait = %v after a deadline drain, want ErrStopped", err)
	}
	close(gate)
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after a deadline drain, want nil", err)
	}
}

func TestDrainNotServing(t *testing.T) {
	p := New(Config{Workers: 2})
	if err := p.Drain(context.Background()); !errors.Is(err, ErrNotServing) {
		t.Fatalf("Drain on an idle pool = %v, want ErrNotServing", err)
	}
}

// One Drain wins per session; a concurrent second Drain reports
// ErrDraining rather than interfering.
func TestDrainConcurrentLoses(t *testing.T) {
	p := New(Config{Workers: 2, ParkThreshold: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(ctx) }()
	waitFor(t, 10*time.Second, "pool to start serving", p.serving.Load)

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	if _, err := p.Submit(func(*Worker) { started <- struct{}{}; <-gate }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	first := make(chan error, 1)
	go func() { first <- p.Drain(context.Background()) }()
	waitFor(t, 10*time.Second, "first drain to close admission", func() bool {
		return p.draining.Load()
	})
	if err := p.Drain(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("second Drain = %v, want ErrDraining", err)
	}
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("first Drain = %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
}

// The satellite-1 regression: a Serve→stop→Serve cycle must behave like a
// fresh pool. The second session's rotation cursors start from zero (the
// white-box half) and submissions complete exactly as in the first (the
// behavioral half).
func TestServeStopServeRestart(t *testing.T) {
	p := New(Config{Workers: 4, ParkThreshold: 2, RoundRobinVictim: true})
	for session := 0; session < 3; session++ {
		stop := startServing(t, p)
		if got := p.shardRR.Load(); got != 0 {
			t.Fatalf("session %d: shardRR = %d at session start, want 0", session, got)
		}
		if got := p.wakeRR.Load(); got != 0 {
			t.Fatalf("session %d: wakeRR = %d at session start, want 0", session, got)
		}
		var ran atomic.Int64
		for i := 0; i < 20; i++ {
			h, err := p.Submit(func(w *Worker) {
				for j := 0; j < 4; j++ {
					w.Spawn(func(*Worker) { ran.Add(1) })
				}
				ran.Add(1)
			})
			if err != nil {
				t.Fatalf("session %d: Submit %d: %v", session, i, err)
			}
			if err := h.Wait(); err != nil {
				t.Fatalf("session %d: Wait %d: %v", session, i, err)
			}
		}
		if got := ran.Load(); got != 100 {
			t.Fatalf("session %d: ran %d of 100 tasks", session, got)
		}
		if err := stop(); !errors.Is(err, context.Canceled) {
			t.Fatalf("session %d: Serve returned %v", session, err)
		}
	}
}
