package atomicx

import (
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
)

// TestSCUint32 exercises every SCUint32 operation, LoadOwner on both the
// atomic and the relaxed path.
func TestSCUint32(t *testing.T) {
	var x SCUint32
	x.Store(7)
	if got := x.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	if got := x.Add(3); got != 10 {
		t.Fatalf("Add = %d, want 10", got)
	}
	if !x.CompareAndSwap(10, 11) || x.CompareAndSwap(10, 12) {
		t.Fatal("CompareAndSwap: success/failure arms inverted")
	}
	for _, relaxed := range []bool{false, true} {
		if got := x.LoadOwner(relaxed); got != 11 {
			t.Fatalf("LoadOwner(%v) = %d, want 11", relaxed, got)
		}
	}
}

func TestSCUint64(t *testing.T) {
	var x SCUint64
	x.Store(1 << 40)
	if got := x.Add(2); got != 1<<40+2 {
		t.Fatalf("Add = %d", got)
	}
	if !x.CompareAndSwap(1<<40+2, 5) || x.Load() != 5 {
		t.Fatal("CompareAndSwap/Load mismatch")
	}
	for _, relaxed := range []bool{false, true} {
		if got := x.LoadOwner(relaxed); got != 5 {
			t.Fatalf("LoadOwner(%v) = %d, want 5", relaxed, got)
		}
	}
}

func TestSCInt32(t *testing.T) {
	var x SCInt32
	x.Store(-4)
	if got := x.Add(1); got != -3 {
		t.Fatalf("Add = %d, want -3", got)
	}
	if !x.CompareAndSwap(-3, 9) || x.Load() != 9 {
		t.Fatal("CompareAndSwap/Load mismatch")
	}
}

func TestSCInt64(t *testing.T) {
	var x SCInt64
	x.Store(1)
	if got := x.Add(-2); got != -1 {
		t.Fatalf("Add = %d, want -1", got)
	}
	if !x.CompareAndSwap(-1, 6) || x.Load() != 6 {
		t.Fatal("CompareAndSwap/Load mismatch")
	}
	for _, relaxed := range []bool{false, true} {
		if got := x.LoadOwner(relaxed); got != 6 {
			t.Fatalf("LoadOwner(%v) = %d, want 6", relaxed, got)
		}
	}
}

func TestSCBool(t *testing.T) {
	var x SCBool
	if x.Load() {
		t.Fatal("zero value not false")
	}
	x.Store(true)
	if !x.Load() {
		t.Fatal("Store(true) not observed")
	}
	if !x.CompareAndSwap(true, false) || x.Load() {
		t.Fatal("CompareAndSwap(true,false) failed")
	}
	if x.CompareAndSwap(true, true) {
		t.Fatal("CompareAndSwap succeeded with wrong old value")
	}
}

func TestSCPointer(t *testing.T) {
	var x SCPointer[int]
	if x.Load() != nil {
		t.Fatal("zero value not nil")
	}
	a, b := new(int), new(int)
	x.Store(a)
	if got := x.Swap(b); got != a {
		t.Fatal("Swap did not return previous value")
	}
	if !x.CompareAndSwap(b, a) || x.CompareAndSwap(b, a) {
		t.Fatal("CompareAndSwap: success/failure arms inverted")
	}
	for _, relaxed := range []bool{false, true} {
		if got := x.LoadOwner(relaxed); got != a {
			t.Fatalf("LoadOwner(%v) != stored pointer", relaxed)
		}
	}
}

func TestPublish32(t *testing.T) {
	var x Publish32
	x.Store(42)
	if got := x.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestPublish64(t *testing.T) {
	var x Publish64
	x.Store(5)
	if got := x.Add(2); got != 7 {
		t.Fatalf("Add = %d, want 7", got)
	}
	x.AddOwner(false, 1)
	x.AddOwner(true, 1)
	if got := x.Load(); got != 9 {
		t.Fatalf("after AddOwner both paths: Load = %d, want 9", got)
	}
	for _, relaxed := range []bool{false, true} {
		if got := x.LoadOwner(relaxed); got != 9 {
			t.Fatalf("LoadOwner(%v) = %d, want 9", relaxed, got)
		}
	}
}

func TestPublishUint64(t *testing.T) {
	var x PublishUint64
	x.Store(1 << 50)
	if got := x.Load(); got != 1<<50 {
		t.Fatalf("Load = %d", got)
	}
}

func TestPublishBool(t *testing.T) {
	var x PublishBool
	x.Store(true)
	if !x.Load() {
		t.Fatal("Store(true) not observed")
	}
	x.Store(false)
	if x.Load() {
		t.Fatal("Store(false) not observed")
	}
}

func TestPublishPointer(t *testing.T) {
	var x PublishPointer[string]
	s := "hello"
	x.Store(&s)
	if got := x.Load(); got != &s {
		t.Fatal("Load != stored pointer")
	}
	for _, relaxed := range []bool{false, true} {
		if got := x.LoadOwner(relaxed); got != &s {
			t.Fatalf("LoadOwner(%v) != stored pointer", relaxed)
		}
	}
}

func TestPlainPointer(t *testing.T) {
	var x PlainPointer[int]
	if x.Get() != nil {
		t.Fatal("zero value not nil")
	}
	v := new(int)
	x.Set(v)
	if x.Get() != v {
		t.Fatal("Get != Set value")
	}
}

// TestOwnerOpsRaceClean is the race-detector shape of every relaxed owner
// op in the scheduler: one owner goroutine doing relaxed LoadOwner/AddOwner
// while observers use the full atomic loads. Under -race this asserts the
// central soundness claim — the owner's plain read of its own last store
// does not race concurrent atomic readers, because the only writes are the
// owner's own atomic stores.
func TestOwnerOpsRaceClean(t *testing.T) {
	var (
		counter Publish64
		idx     SCUint64
		slot    SCPointer[int]
		ring    PublishPointer[int]
	)
	slot.Store(new(int))
	ring.Store(new(int))

	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the owner
		defer wg.Done()
		for i := 0; i < iters; i++ {
			counter.AddOwner(true, 1)
			_ = counter.LoadOwner(true)
			idx.Store(idx.LoadOwner(true) + 1)
			_ = slot.LoadOwner(true)
			_ = ring.LoadOwner(true)
		}
	}()
	go func() { // a concurrent observer: atomic reads only
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = counter.Load()
			_ = idx.Load()
			_ = slot.Load()
			_ = ring.Load()
		}
	}()
	wg.Wait()
	if got := counter.Load(); got != iters {
		t.Fatalf("owner counter = %d, want %d", got, iters)
	}
	if got := idx.Load(); got != iters {
		t.Fatalf("owner index = %d, want %d", got, iters)
	}
}

// TestZeroOverheadInlining shells out to the compiler with -gcflags=-m and
// asserts every non-generic method is inlinable, so declaring a discipline
// through atomicx costs nothing over raw sync/atomic. Generic methods are
// excluded: the compiler reports their inlinability per instantiation at
// use sites, not when compiling the defining package.
func TestZeroOverheadInlining(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping compiler invocation in -short mode")
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = "."
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}
	diag := string(out)
	methods := []string{
		"(*SCUint32).Load", "(*SCUint32).Store", "(*SCUint32).Add",
		"(*SCUint32).CompareAndSwap", "(*SCUint32).LoadOwner",
		"(*SCUint64).Load", "(*SCUint64).Store", "(*SCUint64).Add",
		"(*SCUint64).CompareAndSwap", "(*SCUint64).LoadOwner",
		"(*SCInt32).Load", "(*SCInt32).Store", "(*SCInt32).Add",
		"(*SCInt32).CompareAndSwap",
		"(*SCInt64).Load", "(*SCInt64).Store", "(*SCInt64).Add",
		"(*SCInt64).CompareAndSwap", "(*SCInt64).LoadOwner",
		"(*SCBool).Load", "(*SCBool).Store", "(*SCBool).CompareAndSwap",
		"b32",
		"(*Publish32).Load", "(*Publish32).Store",
		"(*Publish64).Load", "(*Publish64).Store", "(*Publish64).Add",
		"(*Publish64).AddOwner", "(*Publish64).LoadOwner",
		"(*PublishUint64).Load", "(*PublishUint64).Store",
		"(*PublishBool).Load", "(*PublishBool).Store",
	}
	for _, m := range methods {
		if !strings.Contains(diag, "can inline "+m) {
			t.Errorf("method %s is not reported inlinable", m)
		}
	}
}
