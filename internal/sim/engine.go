package sim

import (
	"fmt"
	"math/rand"

	"worksteal/internal/dag"
)

// YieldKind selects the yield discipline used between steal attempts.
type YieldKind uint8

const (
	// YieldNone performs no yield system call (line 15 removed); sufficient
	// against the benign adversary (Theorem 10).
	YieldNone YieldKind = iota
	// YieldToRandom yields to a uniformly random other process: the kernel
	// cannot schedule the yielder again until that process has been
	// scheduled; sufficient against the oblivious adversary (Theorem 11).
	YieldToRandom
	// YieldToAll yields to every other process: the kernel cannot schedule
	// the yielder again until every other process has been scheduled;
	// sufficient against the adaptive adversary (Theorem 12).
	YieldToAll
)

func (y YieldKind) String() string {
	switch y {
	case YieldNone:
		return "none"
	case YieldToRandom:
		return "yieldToRandom"
	case YieldToAll:
		return "yieldToAll"
	default:
		return fmt.Sprintf("YieldKind(%d)", uint8(y))
	}
}

// DequeKind selects the deque implementation processes use.
type DequeKind uint8

const (
	// DequeABP is the paper's non-blocking deque (Figure 5).
	DequeABP DequeKind = iota
	// DequeLocked is the blocking baseline: one spinlock per deque.
	DequeLocked
)

func (d DequeKind) String() string {
	if d == DequeLocked {
		return "locked"
	}
	return "abp"
}

// VictimPolicy selects how thieves choose their victims.
type VictimPolicy uint8

const (
	// VictimRandom picks victims uniformly at random (the paper's choice;
	// the analysis depends on it through the balls-and-bins argument).
	VictimRandom VictimPolicy = iota
	// VictimRoundRobin cycles deterministically through the other
	// processes: the ablation for design choice 5 in DESIGN.md. Correct,
	// but the analysis's ball-toss argument no longer applies.
	VictimRoundRobin
)

func (v VictimPolicy) String() string {
	if v == VictimRoundRobin {
		return "roundRobin"
	}
	return "random"
}

// SpawnPolicy selects which of two enabled children becomes the new
// assigned node (Section 3.1 notes the bounds hold for either choice).
type SpawnPolicy uint8

const (
	// RunChild assigns the target of the non-continuation enabling edge
	// (the freshly spawned or newly awakened thread) and pushes the
	// continuation; this is the depth-first order used by Cilk and lazy
	// task creation.
	RunChild SpawnPolicy = iota
	// RunParent assigns the continuation and pushes the other child.
	RunParent
)

func (s SpawnPolicy) String() string {
	if s == RunParent {
		return "runParent"
	}
	return "runChild"
}

// MilestoneC is the measured bound on instructions between consecutive
// milestones of a process running the ABP scheduling loop (checkDone +
// popBottom's at most 7 instructions + checkDone + yield + popTop's at most
// 4 instructions is the longest milestone-free stretch, at 13; one spare).
// Rounds give each scheduled process between 2C and 3C instructions.
const MilestoneC = 14

// Config describes one simulation run.
type Config struct {
	Graph  *dag.Graph
	P      int
	Kernel Kernel
	Yield  YieldKind
	Deque  DequeKind
	// TagBits is the effective tag width of the ABP deques: 32 (default
	// via NewEngine) is realistic; 0 disables the tag and exposes the ABA
	// failure.
	TagBits int
	Policy  SpawnPolicy
	// Victim selects the victim-selection policy (default VictimRandom).
	Victim VictimPolicy
	Seed   int64
	// MaxRounds aborts runs that make no progress (starvation adversaries
	// without the required yield); 0 means a generous default.
	MaxRounds int
	// InstrLo and InstrHi bound the per-round instruction budget; defaults
	// are 2*MilestoneC and 3*MilestoneC.
	InstrLo, InstrHi int
	// ShuffleSteps randomizes the within-step order in which scheduled
	// processes execute their instruction (the kernel's "arbitrary manner").
	ShuffleSteps bool
	// Observer, if non-nil, is invoked at every round boundary and after
	// every instruction.
	Observer Observer
}

// Observer receives engine callbacks for analysis instrumentation.
type Observer interface {
	// OnRoundStart is called before each round executes, with the round
	// number about to run.
	OnRoundStart(e *Engine, round int)
	// OnInstruction is called after every instruction, identifying the
	// process that executed it.
	OnInstruction(e *Engine, proc int)
}

// Result reports the outcome and statistics of a run.
type Result struct {
	// Completed is false when MaxRounds elapsed before the final node
	// executed (the starvation outcome).
	Completed bool
	// Rounds and Steps measure execution time: Steps is the number of
	// kernel steps (the paper's time unit), Rounds the number of rounds.
	Rounds int
	Steps  int
	// ProcInstr is the total number of instructions executed, i.e. the sum
	// over steps of the number of processes scheduled at that step.
	ProcInstr int64
	// PA is the processor average over the execution: ProcInstr / Steps.
	PA float64
	// NodesExecuted counts executed dag nodes (equals T1 on completion).
	NodesExecuted int
	StealAttempts int
	Steals        int
	Throws        int
	Yields        int
	// Substitutions counts kernel choices overridden by yield constraints.
	Substitutions int
	// CASFailures counts failed CAS instructions across all ABP deques.
	CASFailures int
	// SpinSteps counts instructions burned spinning on deque locks.
	SpinSteps int
	// Corruptions counts nodes observed executed twice; nonzero only when
	// the tag is artificially narrowed (the ABA demonstration).
	Corruptions int
	// MaxMilestoneGap is the largest observed instruction gap between
	// consecutive milestones of any process (empirically <= MilestoneC for
	// the ABP deque).
	MaxMilestoneGap int
	// NodesPerProc is the work distribution: how many nodes each process
	// executed.
	NodesPerProc []int
}

// Engine runs one simulation.
type Engine struct {
	cfg    Config
	g      *dag.Graph
	state  *dag.State
	procs  []*process
	kernel Kernel
	rng    *rand.Rand
	view   *View

	done         bool
	doneAtStep   int
	doneAtInstr  int64
	doneInstrSet bool
	doneAtRound  int
	curRound     int
	lastExec     dag.NodeID // most recently executed node (for observers)

	// owed[p] is the set of processes that must be scheduled before p may
	// be scheduled again, per the yield discipline.
	owed []map[int]bool
	// yieldRng drives victim selection and yield targets.
	steps         int
	procInstr     int64
	substitutions int
	corruptions   int
}

// NewEngine validates cfg, applies defaults, and builds an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Graph == nil {
		panic("sim: Config.Graph is nil")
	}
	if cfg.P < 1 {
		panic(fmt.Sprintf("sim: P = %d", cfg.P))
	}
	if cfg.Kernel == nil {
		panic("sim: Config.Kernel is nil")
	}
	if cfg.Kernel.P() != cfg.P {
		panic(fmt.Sprintf("sim: kernel P %d != config P %d", cfg.Kernel.P(), cfg.P))
	}
	if cfg.TagBits == 0 {
		// Note: an explicit ABA demonstration passes TagBits = -1.
		cfg.TagBits = 32
	}
	if cfg.TagBits == -1 {
		cfg.TagBits = 0
	}
	if cfg.InstrLo == 0 {
		cfg.InstrLo = 2 * MilestoneC
	}
	if cfg.InstrHi == 0 {
		cfg.InstrHi = 3 * MilestoneC
	}
	if cfg.InstrLo < 1 || cfg.InstrHi < cfg.InstrLo {
		panic(fmt.Sprintf("sim: bad instruction budget [%d,%d]", cfg.InstrLo, cfg.InstrHi))
	}
	if cfg.MaxRounds == 0 {
		// Generous default: enough rounds for the whole computation to run
		// serially several times over, scaled by P so tiny graphs with many
		// processes still fit.
		cfg.MaxRounds = 100*cfg.Graph.NumNodes() + 1000*cfg.P + 10000
	}
	e := &Engine{
		cfg:    cfg,
		g:      cfg.Graph,
		state:  dag.NewState(cfg.Graph),
		kernel: cfg.Kernel,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		owed:   make([]map[int]bool, cfg.P),
	}
	e.view = &View{e: e}
	cap := cfg.Graph.NumNodes() + 1
	for i := 0; i < cfg.P; i++ {
		var d dequeOps
		if cfg.Deque == DequeLocked {
			d = newLockDeque(cap)
		} else {
			d = newABPDeque(cap, cfg.TagBits)
		}
		e.procs = append(e.procs, &process{id: i, deque: d, assigned: dag.None, next: dag.None})
	}
	// The root node is assigned to process zero (Figure 3, lines 1-3).
	e.procs[0].assigned = cfg.Graph.Root()
	return e
}

// drainRounds bounds how many rounds the engine keeps simulating after the
// final node executes, so the remaining processes can observe the
// computationDone flag and halt (Figure 3's loop exit). Kernels that never
// schedule some process would otherwise keep the drain alive forever.
const drainRounds = 8

// Run executes the simulation until the final node executes (plus a short
// drain during which the other processes observe the done flag and halt) or
// until MaxRounds elapse, and returns the statistics. All time-like
// statistics (Steps, ProcInstr, PA) are measured at the moment the final
// node executed, as in the paper's bounds.
//
//abp:owner the single-threaded engine goroutine owns every simulated deque
func (e *Engine) Run() Result {
	slots := make([]Slot, 0, e.cfg.P)
	order := make([]int, 0, e.cfg.P)
	doneRound := -1
	for round := 0; round < e.cfg.MaxRounds; round++ {
		if e.allHalted() {
			break
		}
		if e.done {
			if doneRound == -1 {
				doneRound = round
			}
			if round-doneRound >= drainRounds {
				break
			}
		}
		e.curRound = round
		if e.cfg.Observer != nil {
			e.cfg.Observer.OnRoundStart(e, round)
		}
		slots = e.planRound(round, slots[:0])
		if len(slots) == 0 {
			// The kernel scheduled nobody: a round's worth of wall-clock
			// steps passes with no instructions executed.
			e.steps += e.cfg.InstrLo
			continue
		}
		for i := range slots {
			e.procs[slots[i].Proc].msRound = 0
		}
		// Interleave: at each step every scheduled process with remaining
		// budget executes one instruction, in ascending or shuffled order.
		remaining := len(slots)
		for remaining > 0 {
			e.steps++
			order = order[:0]
			for i := range slots {
				if slots[i].Instr > 0 {
					order = append(order, i)
				}
			}
			if e.cfg.ShuffleSteps {
				e.rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
			}
			for _, i := range order {
				p := e.procs[slots[i].Proc]
				if p.phase == phHalted {
					slots[i].Instr = 0
					remaining--
					continue
				}
				p.step(e)
				e.procInstr++
				if e.cfg.Observer != nil {
					e.cfg.Observer.OnInstruction(e, p.id)
				}
				slots[i].Instr--
				if slots[i].Instr == 0 || p.phase == phHalted {
					slots[i].Instr = 0
					remaining--
				}
			}
			if e.done && !e.doneInstrSet {
				e.doneAtInstr = e.procInstr
				e.doneInstrSet = true
			}
		}
	}
	return e.result()
}

// allHalted reports whether every process has observed termination.
func (e *Engine) allHalted() bool {
	for _, p := range e.procs {
		if p.phase != phHalted {
			return false
		}
	}
	return true
}

func (e *Engine) result() Result {
	r := Result{
		Completed:     e.done,
		Rounds:        e.doneAtRound,
		Steps:         e.steps,
		ProcInstr:     e.procInstr,
		NodesExecuted: e.state.NumExecuted(),
		Substitutions: e.substitutions,
		Corruptions:   e.corruptions,
	}
	if e.done {
		// Time-like measurements stop the moment the final node executed;
		// the drain (processes observing the flag and halting) is excluded.
		r.Steps = e.doneAtStep
		r.ProcInstr = e.doneAtInstr
	} else {
		r.Rounds = e.curRound + 1
	}
	if r.Steps > 0 {
		r.PA = float64(r.ProcInstr) / float64(r.Steps)
	}
	r.NodesPerProc = make([]int, len(e.procs))
	for i, p := range e.procs {
		r.NodesPerProc[i] = p.nodesExecuted
		r.StealAttempts += p.stealAttempts
		r.Steals += p.steals
		r.Throws += p.throws
		r.Yields += p.yields
		if p.maxMilestoneGap > r.MaxMilestoneGap {
			r.MaxMilestoneGap = p.maxMilestoneGap
		}
		switch d := p.deque.(type) {
		case *abpDeque:
			r.CASFailures += d.casFailures
		case *lockDeque:
			r.SpinSteps += d.spinSteps
		}
	}
	return r
}

// planRound obtains the kernel's choices for the round, sanitizes them, and
// applies yield constraints.
func (e *Engine) planRound(round int, slots []Slot) []Slot {
	raw := e.kernel.PlanRound(round, e.view, e.rng)
	seen := make(map[int]bool, len(raw))
	for _, s := range raw {
		if s.Proc < 0 || s.Proc >= e.cfg.P || seen[s.Proc] {
			continue // ignore malformed kernel output
		}
		if e.procs[s.Proc].phase == phHalted {
			continue
		}
		if s.Instr < e.cfg.InstrLo {
			s.Instr = e.cfg.InstrLo
		}
		if s.Instr > e.cfg.InstrHi {
			s.Instr = e.cfg.InstrHi
		}
		seen[s.Proc] = true
		slots = append(slots, s)
	}
	slots = e.enforceYields(slots)
	// End-of-round bookkeeping happens up front: every process scheduled
	// this round satisfies pending constraints of other processes.
	for i := range slots {
		q := slots[i].Proc
		for p := range e.owed {
			delete(e.owed[p], q)
		}
	}
	return slots
}

// enforceYields replaces illegally scheduled processes with processes they
// owe a slot to, mirroring the paper's "we schedule process q in place of
// p". The number of scheduled processes never changes.
func (e *Engine) enforceYields(slots []Slot) []Slot {
	if e.cfg.Yield == YieldNone {
		return slots
	}
	inRound := make(map[int]bool, len(slots))
	for _, s := range slots {
		inRound[s.Proc] = true
	}
	out := slots[:0]
	for _, s := range slots {
		// A constraint is satisfied by processes scheduled at any round in
		// (yield, now], including processes co-scheduled in THIS round, so
		// owed processes that are already in the round don't block s.Proc.
		sub := -1
		for q := 0; q < e.cfg.P; q++ {
			if e.owed[s.Proc][q] && !inRound[q] && e.procs[q].phase != phHalted {
				sub = q
				break
			}
		}
		if sub == -1 {
			// No unmet owed process: s.Proc is legally scheduled.
			out = append(out, s)
			continue
		}
		// Substitute the lowest-id unmet owed process for s.Proc, exactly
		// as in the paper: "we schedule process q in place of p".
		e.substitutions++
		inRound[sub] = true
		delete(inRound, s.Proc)
		out = append(out, Slot{Proc: sub, Instr: s.Instr})
	}
	return out
}

// applyYield records the constraint created by process p's yield call.
func (e *Engine) applyYield(p *process) {
	switch e.cfg.Yield {
	case YieldNone:
		return
	case YieldToRandom:
		q := e.randomOther(p.id)
		if q >= 0 {
			e.owed[p.id] = map[int]bool{q: true}
		}
	case YieldToAll:
		owed := make(map[int]bool, e.cfg.P-1)
		for q := 0; q < e.cfg.P; q++ {
			if q != p.id && e.procs[q].phase != phHalted {
				owed[q] = true
			}
		}
		e.owed[p.id] = owed
	}
	p.yields++
}

// randomOther returns a uniformly random non-halted process other than p,
// or -1 if none exists.
func (e *Engine) randomOther(p int) int {
	alive := 0
	for q := 0; q < e.cfg.P; q++ {
		if q != p && e.procs[q].phase != phHalted {
			alive++
		}
	}
	if alive == 0 {
		return -1
	}
	k := e.rng.Intn(alive)
	for q := 0; q < e.cfg.P; q++ {
		if q != p && e.procs[q].phase != phHalted {
			if k == 0 {
				return q
			}
			k--
		}
	}
	return -1
}

// pickVictim picks the next victim for a thief per the configured policy
// (Figure 3 line 16 uses the random policy). Halted processes remain valid
// victims: their deques are simply empty. With P = 1 the process targets
// its own (empty) deque, which always fails; a one-process computation
// never reaches this state with work outstanding.
func (e *Engine) pickVictim(p *process) int {
	if e.cfg.P == 1 {
		return p.id
	}
	if e.cfg.Victim == VictimRoundRobin {
		p.rrVictim++
		v := p.rrVictim % (e.cfg.P - 1)
		if v >= p.id {
			v++
		}
		return v
	}
	v := e.rng.Intn(e.cfg.P - 1)
	if v >= p.id {
		v++
	}
	return v
}

// executeNode executes node u on behalf of process p and returns the
// enabled children. A node observed already executed indicates deque
// corruption (only possible with a narrowed tag); it is counted and skipped.
func (e *Engine) executeNode(p *process, u dag.NodeID) []dag.NodeID {
	if e.state.Executed(u) {
		e.corruptions++
		return nil
	}
	enabled := e.state.Execute(u)
	e.lastExec = u
	p.nodesExecuted++
	if u == e.g.Final() {
		e.done = true
		e.doneAtStep = e.steps
		e.doneAtRound = e.curRound + 1
		// doneAtInstr is set when the current step completes, so that the
		// instructions of processes co-scheduled at this step all count
		// (the paper's P_A sums every process scheduled at a step).
	}
	return enabled
}

// chooseChild applies the spawn policy to two enabled children of node u,
// returning (keep, push): keep becomes the assigned node, push goes to the
// bottom of the deque.
func (e *Engine) chooseChild(u dag.NodeID, c0, c1 dag.NodeID) (keep, push dag.NodeID) {
	k0 := enablingKind(e.g, u, c0)
	k1 := enablingKind(e.g, u, c1)
	// Identify the "child" (non-continuation target) when unambiguous.
	childIdx := -1
	if k0 != dag.Continuation && k1 == dag.Continuation {
		childIdx = 0
	} else if k1 != dag.Continuation && k0 == dag.Continuation {
		childIdx = 1
	}
	if childIdx == -1 {
		// Ambiguous (both continuations cannot happen; both non-continuation
		// is possible for exotic dags): fall back to enabling order.
		childIdx = 0
	}
	child, other := c0, c1
	if childIdx == 1 {
		child, other = c1, c0
	}
	if e.cfg.Policy == RunChild {
		return child, other
	}
	return other, child
}

// enablingKind returns the kind of the edge u -> v.
func enablingKind(g *dag.Graph, u, v dag.NodeID) dag.EdgeKind {
	for _, edge := range g.Succs(u) {
		if edge.To == v {
			return edge.Kind
		}
	}
	panic(fmt.Sprintf("sim: no edge %d -> %d", u, v))
}

// onHalt removes a halted process from every yield-constraint set so no
// live process waits forever on a dead one.
func (e *Engine) onHalt(p *process) {
	for q := range e.owed {
		delete(e.owed[q], p.id)
	}
}
