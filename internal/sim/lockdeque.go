package sim

import "worksteal/internal/dag"

// lockDeque is the blocking baseline for the E8 ablation: every method
// acquires a test-and-set spinlock, mutates a plain stack, and releases.
// In a dedicated environment it behaves like any deque, but if the kernel
// preempts a process while it holds the lock, every other process that
// touches this deque spins fruitlessly — the failure mode the paper's
// non-blocking implementation exists to avoid ("if the kernel preempts a
// process, it does not hinder other processes, for example by holding
// locks").
type lockDeque struct {
	items  []dag.NodeID
	locked bool
	holder int // process id holding the lock; -1 when free
	// spinSteps counts instructions burned waiting for the lock.
	spinSteps int
}

func newLockDeque(capacity int) *lockDeque {
	return &lockDeque{items: make([]dag.NodeID, 0, capacity), holder: -1}
}

func (d *lockDeque) lockHolder() int {
	if d.locked {
		return d.holder
	}
	return -1
}

func (d *lockDeque) size() int { return len(d.items) }

// snapshot returns bottom..top order; items[0] is the top of the deque.
func (d *lockDeque) snapshot() []dag.NodeID {
	out := make([]dag.NodeID, 0, len(d.items))
	for i := len(d.items); i > 0; i-- {
		out = append(out, d.items[i-1])
	}
	return out
}

// lockedOp is a three-phase locked operation: acquire (spinning one
// instruction per failed attempt), body, release.
type lockedOp struct {
	d     *lockDeque
	owner int
	pc    int // 0: acquiring, 1: body, 2: release
	kind  int // 0 push, 1 popBottom, 2 popTop
	node  dag.NodeID
	res   dag.NodeID
}

func (d *lockDeque) startPushBottom(caller int, node dag.NodeID) op {
	return &lockedOp{d: d, kind: 0, node: node, res: dag.None, owner: caller}
}

func (d *lockDeque) startPopBottom(caller int) op {
	return &lockedOp{d: d, kind: 1, res: dag.None, owner: caller}
}

func (d *lockDeque) startPopTop(caller int) op {
	return &lockedOp{d: d, kind: 2, res: dag.None, owner: caller}
}

// step is only ever driven from (*process).step on the single-threaded
// engine goroutine, which is the one owner of every simulated deque.
//
//abp:owner driven only by the single-threaded engine via (*process).step
func (o *lockedOp) step() bool {
	switch o.pc {
	case 0: // test-and-set; spin (one instruction per attempt)
		if o.d.locked {
			o.d.spinSteps++
			return false // stay at pc 0: spinning
		}
		o.d.locked = true
		o.d.holder = o.owner
		o.pc++
		return false
	case 1: // operation body (one instruction, under the lock)
		switch o.kind {
		case 0:
			o.d.items = append(o.d.items, o.node)
		case 1:
			if n := len(o.d.items); n > 0 {
				o.res = o.d.items[n-1]
				o.d.items = o.d.items[:n-1]
			}
		case 2:
			if len(o.d.items) > 0 {
				o.res = o.d.items[0]
				o.d.items = o.d.items[1:]
			}
		}
		o.pc++
		return false
	case 2: // release
		o.d.locked = false
		o.d.holder = -1
		o.pc++
		return true
	}
	panic("sim: locked op stepped after completion")
}

func (o *lockedOp) result() dag.NodeID { return o.res }
