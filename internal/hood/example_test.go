package hood_test

import (
	"fmt"

	"worksteal/internal/hood"
	"worksteal/internal/sched"
)

// A producer thread signals a semaphore that a consumer thread waits on:
// the paper's Block and Enable transitions as a program.
func Example() {
	sem := hood.NewSemaphore(0)
	pool := sched.New(sched.Config{Workers: 1})

	hood.Run(pool, func(w *sched.Worker) hood.Action {
		return hood.Spawn(
			// Consumer: blocks until the producer signals.
			func(w *sched.Worker) hood.Action {
				return hood.Wait(sem, func(w *sched.Worker) hood.Action {
					fmt.Println("consumed")
					return hood.Die()
				})
			},
			// Producer.
			func(w *sched.Worker) hood.Action {
				fmt.Println("produced")
				sem.Signal(w)
				return hood.Die()
			},
		)
	})
	// Output:
	// produced
	// consumed
}
