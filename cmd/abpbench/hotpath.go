package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"worksteal/internal/deque"
	"worksteal/internal/sched"
	"worksteal/internal/table"
	"worksteal/internal/workload"
)

// The hotpath experiment is the measurement half of the abporder analyzer:
// it times the deque owner operations (PushBottom/PopBottom, the paper's
// Figure 5 fast path) and the thief's PopTop CAS with sequentially
// consistent atomics versus the proof-gated RelaxedAtomics downgrades, and
// then runs a full spawn-tree graph under both modes so the microbenchmark
// delta can be read against end-to-end effect. Go's sync/atomic is always
// sequentially consistent, so the only instruction-level difference is the
// handful of owner loads and owner counter RMWs demoted to plain accesses;
// the expected delta is small and that smallness is itself the result.
//
// The -check flag turns the run into a regression gate: push/pop ns/op is
// compared against a previously written snapshot (BENCH_hotpath.json) and
// the process exits 1 if any (deque, mode) pair slowed by more than 10%.

type hotpathOpRow struct {
	Deque     string  `json:"deque"` // abp | chaselev
	Mode      string  `json:"mode"`  // seqcst | relaxed
	PushPopNs float64 `json:"pushpop_ns_per_op"`
	StealNs   float64 `json:"steal_ns_per_op"`
}

type hotpathGraphRow struct {
	Deque       string  `json:"deque"`
	Mode        string  `json:"mode"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	Steals      int64   `json:"steals"`
	TasksPerSec float64 `json:"tasks_per_sec"`
}

type hotpathReport struct {
	Experiment string `json:"experiment"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Reps       int    `json:"reps"`
	// CalibrationNs is the ns/op of a fixed serial spin measured in the
	// same run: the regression gate compares push/pop ns normalized by it,
	// so a snapshot from one machine remains a usable baseline on another
	// (and uniform container slowdowns cancel out).
	CalibrationNs float64           `json:"calibration_ns_per_op"`
	Ops           []hotpathOpRow    `json:"ops"`
	Graph         []hotpathGraphRow `json:"graph"`
}

// benchCalibrate times a fixed xorshift spin: a machine-speed yardstick
// with the same in-core, no-memory-traffic profile as the deque fast path.
func benchCalibrate(reps int) float64 {
	const iters = 1 << 22
	best := 0.0
	for r := 0; r < reps; r++ {
		x := uint64(2463534242)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		ns := float64(time.Since(start)) / float64(iters)
		if x == 0 { // defeat dead-code elimination
			panic("xorshift reached zero")
		}
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// ownerDeque is the owner-side surface shared by both lock-free deques.
type ownerDeque interface {
	PushBottom(*int) bool
	PopBottom() *int
	PopTop() *int
}

func newHotpathDeque(kind string, relaxed bool) ownerDeque {
	switch kind {
	case "abp":
		d := deque.NewWithCapacity[int](1 << 10)
		d.SetRelaxed(relaxed)
		return d
	case "chaselev":
		d := deque.NewChaseLev[int]()
		d.SetRelaxed(relaxed)
		return d
	}
	panic("unknown deque kind " + kind)
}

// benchPushPop times the owner's uncontended push/pop cycle in batches of
// 64 so both the push store->load and the pop store(bot)->load(age) Dekker
// handshake run against a non-empty deque. Best of reps wins.
//
//abp:owner the benchmark goroutine is the deque's only accessor
func benchPushPop(kind string, relaxed bool, reps int) float64 {
	const batch = 64
	const iters = 1 << 14 // 64 * 16384 = ~1M pushes and ~1M pops per rep
	node := new(int)
	best := 0.0
	for r := 0; r < reps; r++ {
		d := newHotpathDeque(kind, relaxed)
		start := time.Now()
		for i := 0; i < iters; i++ {
			for j := 0; j < batch; j++ {
				if !d.PushBottom(node) {
					panic("hotpath: push refused below capacity")
				}
			}
			for j := 0; j < batch; j++ {
				if d.PopBottom() == nil {
					panic("hotpath: owner pop lost a node")
				}
			}
		}
		ns := float64(time.Since(start)) / float64(2*batch*iters)
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// benchSteal times the thief's PopTop CAS against a pre-filled deque. The
// steal path is deliberately untouched by RelaxedAtomics (the top/age CAS
// is the arbitration the paper's Figure 5 depends on), so this column
// doubles as a control: seqcst and relaxed should coincide.
//
//abp:owner the benchmark goroutine fills the deque it then steals from
func benchSteal(kind string, relaxed bool, reps int) float64 {
	const n = 1 << 10
	node := new(int)
	best := 0.0
	for r := 0; r < reps; r++ {
		var total time.Duration
		const rounds = 1 << 10
		for i := 0; i < rounds; i++ {
			// Fresh deque per round: the ABP array is not circular, so a
			// fully stolen deque cannot be refilled from the bottom. The
			// allocation and the refill stay outside the timed section.
			d := newHotpathDeque(kind, relaxed)
			for j := 0; j < n; j++ {
				if !d.PushBottom(node) {
					panic("hotpath: push refused below capacity")
				}
			}
			start := time.Now()
			for j := 0; j < n; j++ {
				if d.PopTop() == nil {
					panic("hotpath: steal lost a node")
				}
			}
			total += time.Since(start)
		}
		ns := float64(total) / float64(n*rounds)
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// hotpathGraph runs the end-to-end spawn tree under one (deque, mode)
// configuration and reports best-of-reps wall time.
func hotpathGraph(kindName string, kind sched.DequeKind, relaxed bool, nodeWork, reps int) hotpathGraphRow {
	g := workload.FibDag(18)
	res := bestGraphRun(sched.GraphConfig{
		Graph:          g,
		Workers:        runtime.GOMAXPROCS(0),
		NodeWork:       nodeWork,
		Deque:          kind,
		RelaxedAtomics: relaxed,
	}, reps)
	mode := "seqcst"
	if relaxed {
		mode = "relaxed"
	}
	return hotpathGraphRow{
		Deque:       kindName,
		Mode:        mode,
		ElapsedNs:   int64(res.Elapsed),
		Steals:      res.Steals,
		TasksPerSec: float64(g.Work()) / res.Elapsed.Seconds(),
	}
}

// hotpathExperiment measures every (deque, mode) pair, renders the tables,
// writes the JSON snapshot, and — when checkPath names a previous snapshot
// — enforces the 10% push/pop regression gate against it.
func hotpathExperiment(nodeWork, reps int, outPath, checkPath string) {
	// In gate mode (-check without an explicit -out) the committed snapshot
	// is the baseline being compared against, so it must not be rewritten
	// by the same run that judges it.
	writeOut := true
	if outPath == "" {
		if checkPath != "" {
			writeOut = false
		}
		outPath = "BENCH_hotpath.json"
	}
	rep := hotpathReport{
		Experiment:    "hotpath",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Reps:          reps,
		CalibrationNs: benchCalibrate(reps),
	}

	otb := table.New(fmt.Sprintf("deque hot path (single-threaded, best of %d reps)", reps),
		"deque", "mode", "push+pop ns/op", "steal ns/op")
	for _, kind := range []string{"abp", "chaselev"} {
		for _, relaxed := range []bool{false, true} {
			mode := "seqcst"
			if relaxed {
				mode = "relaxed"
			}
			row := hotpathOpRow{
				Deque:     kind,
				Mode:      mode,
				PushPopNs: benchPushPop(kind, relaxed, reps),
				StealNs:   benchSteal(kind, relaxed, reps),
			}
			rep.Ops = append(rep.Ops, row)
			otb.Row(kind, mode, fmt.Sprintf("%.2f", row.PushPopNs), fmt.Sprintf("%.2f", row.StealNs))
		}
	}
	otb.Render(os.Stdout)

	gtb := table.New(fmt.Sprintf("end to end: fib(18) spawn tree (workers=%d, nodework=%d)",
		runtime.GOMAXPROCS(0), nodeWork),
		"deque", "mode", "time", "steals", "tasks/s")
	for _, k := range []struct {
		name string
		kind sched.DequeKind
	}{{"abp", sched.DequeABP}, {"chaselev", sched.DequeChaseLev}} {
		for _, relaxed := range []bool{false, true} {
			row := hotpathGraph(k.name, k.kind, relaxed, nodeWork, reps)
			rep.Graph = append(rep.Graph, row)
			gtb.Row(row.Deque, row.Mode, time.Duration(row.ElapsedNs).Round(time.Microsecond),
				row.Steals, fmt.Sprintf("%.0f", row.TasksPerSec))
		}
	}
	gtb.Render(os.Stdout)
	fmt.Println("Go's sync/atomic is sequentially consistent, so RelaxedAtomics only demotes")
	fmt.Println("the statically proven owner-side loads and counter RMWs to plain accesses;")
	fmt.Println("steal ns/op is a control column (the top/age CAS is never relaxed).")

	if writeOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "abpbench: marshal report: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(outPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "abpbench: write %s: %v\n", outPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", outPath)
	}

	if checkPath != "" && !hotpathCheck(rep, checkPath) {
		os.Exit(1)
	}
}

// hotpathCheck compares the fresh push/pop measurements against a committed
// snapshot and reports pairs that slowed by more than the 10% budget. Both
// sides are normalized by their own run's calibration spin, so the
// comparison survives a change of machine; a snapshot without calibration
// falls back to raw ns. Missing baseline pairs are skipped (new
// configurations are not regressions).
func hotpathCheck(cur hotpathReport, checkPath string) bool {
	data, err := os.ReadFile(checkPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: read baseline %s: %v\n", checkPath, err)
		os.Exit(2)
	}
	var base hotpathReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: parse baseline %s: %v\n", checkPath, err)
		os.Exit(2)
	}
	curCal, baseCal := cur.CalibrationNs, base.CalibrationNs
	if curCal <= 0 || baseCal <= 0 {
		curCal, baseCal = 1, 1
	}
	baseline := map[string]float64{}
	for _, row := range base.Ops {
		baseline[row.Deque+"/"+row.Mode] = row.PushPopNs / baseCal
	}
	const budget = 1.10
	ok := true
	for _, row := range cur.Ops {
		want, found := baseline[row.Deque+"/"+row.Mode]
		if !found || want <= 0 {
			continue
		}
		ratio := (row.PushPopNs / curCal) / want
		verdict := "ok"
		if ratio > budget {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("check %s/%s: push+pop %.2f/spin vs baseline %.2f (%.2fx, budget %.2fx): %s\n",
			row.Deque, row.Mode, row.PushPopNs/curCal, want, ratio, budget, verdict)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "abpbench: hot-path push/pop regressed beyond 10%% of %s\n", checkPath)
	}
	return ok
}
