// Pool-as-a-service: the long-lived Serve/Submit engine.
//
// PRs 1–5 hardened a batch engine: Run(root) started the workers, ran one
// root to completion behind a barrier, and shut them down. This file turns
// the same workers into a persistent service. Serve(ctx) starts the
// scheduling loops once and keeps them alive across submissions; Submit
// may be called from any goroutine and enqueues a new root onto the
// bounded injector shards (injector.go), which workers poll between local
// pops and steals. Each submission carries its own run record — pending
// counter, abort cause, completion future — so cancellation, panic
// isolation, the stall watchdog, and the chaos failpoints all apply per
// submission instead of per batch. Run and RunContext are reimplemented on
// top of the same session machinery (pool.go), so the entire pre-existing
// test, chaos, and bench surface exercises this engine.
//
// The deviation from the paper's single-root model is bounded and
// documented in DESIGN.md §10: every submission is the root of its own
// fully-strict intra-task DAG executed through the deques, so the
// structural lemma and the steal-bound analysis hold per submission; only
// the arrival of roots is new, and it enters through queues (not deques)
// the paper's deque invariants never speak about.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"worksteal/internal/atomicx"
)

// Errors returned by Submit and Handle.Wait.
var (
	// ErrOverloaded reports that every injector shard was full at
	// submission time and Config.Overload is ShedReject: the submission
	// was not enqueued and will never run. Rejection is the backpressure
	// signal — a rejected submission is never silently dropped into a
	// wedged Handle, it simply has no Handle.
	ErrOverloaded = errors.New("sched: injector full: submission rejected")
	// ErrNotServing reports a Submit on a pool with no Serve in flight.
	ErrNotServing = errors.New("sched: pool is not serving (start Pool.Serve first)")
	// ErrStopped is the abort cause for submissions still in flight when
	// Serve's context is cancelled: their Handles complete with this
	// error rather than waiting forever.
	ErrStopped = errors.New("sched: pool stopped serving before the submission completed")
)

// PanicError wraps the panic value of a task that panicked inside a
// submission, surfaced from Handle.Wait. A service caller observes the
// failure as an error; only the batch Run/RunContext API re-panics.
type PanicError struct{ Value any }

func (e PanicError) Error() string { return fmt.Sprintf("sched: task panicked: %v", e.Value) }

// OverloadPolicy selects what Submit does when every injector shard is
// full.
type OverloadPolicy uint8

const (
	// ShedReject (the default) makes Submit return ErrOverloaded.
	ShedReject OverloadPolicy = iota
	// ShedCallerRuns executes the submission synchronously on the calling
	// goroutine (depth-first, spawns run inline) — the classic
	// caller-runs backpressure: the submitter pays for its own work, which
	// throttles the arrival rate without dropping anything.
	ShedCallerRuns
)

// Run states, stored in run.state. The state is the atomic gate workers
// read before executing a popped task (execOrDrop): anything other than
// runLive means the submission aborted and the task must be discarded, and
// the state value selects the counter the discard is accounted under
// (runPanicked → Stats.TasksDropped, runCancelled → Stats.TasksCancelled,
// matching the batch API's historical accounting).
const (
	runLive int32 = iota
	runPanicked
	runCancelled
)

// run is the per-submission record: everything that used to live on Pool
// for the one batch run now lives here, one instance per Submit (and one
// per Run/RunContext call). Tasks carry a pointer to their run, so a
// worker executing tasks of interleaved submissions always charges the
// right pending counter and observes the right abort.
type run struct {
	pool *Pool
	// pending counts the root plus every transitively spawned task not
	// yet executed or discarded; the decrement that reaches zero
	// completes the submission. sc: the decrement's result is consumed —
	// exactly one decrementer observes zero, an arbitration.
	pending atomicx.SCInt64
	// state gates execution (see the constants above). It is written
	// inside finishOnce before the abort channel closes, so a worker that
	// observes an aborted state can rely on err/panicVal being set.
	// Publication ordering suffices: readers only gate on the value, no
	// store→load shape involves it.
	state atomicx.Publish32
	// finishOnce arbitrates the submission's single outcome: completion
	// (pending hit zero) or abort (task panic, cancellation, engine
	// failure) — first caller wins, exactly like the old Pool.abortOnce.
	finishOnce sync.Once
	err        error
	panicVal   any
	// abort is closed only when the submission aborts; it unwinds
	// blocked Joins and Group.Waits of this submission (future.go).
	abort chan struct{}
	// finished is closed when the submission ends either way; it is what
	// Handle.Wait and the Run session controller block on.
	finished chan struct{}
	// stopWatch holds the cancel function of a SubmitContext submission's
	// context.AfterFunc watcher; empty otherwise. Stored before the run is
	// published to workers and called inside finishOnce; atomic because
	// the submitter's store races the worker that pops, completes, and
	// finishes the submission in the same instant. sc because the store
	// sits inside the SubmitContext handshake carrier, whose store→load
	// protocol abporder pins to full ordering.
	stopWatch atomicx.SCPointer[func() bool]
}

func newRun(p *Pool) *run {
	r := &run{pool: p, abort: make(chan struct{}), finished: make(chan struct{})}
	r.pending.Store(1) // the root
	return r
}

// complete ends the submission successfully. Called by the worker whose
// pending decrement reached zero; a lost race against an abort is a no-op.
func (r *run) complete() {
	r.finishOnce.Do(func() {
		if f := r.stopWatch.Load(); f != nil {
			(*f)()
		}
		r.pool.unregister(r)
		close(r.finished)
	})
}

// abortWith ends the submission with an abort cause. Whichever of panic,
// cancellation, or engine failure arrives first wins; later calls are
// no-ops, preserving the original cause (the batch API's panic-beats-
// cancel priority falls out of call order, exactly as before).
func (r *run) abortWith(state int32, err error, panicVal any) {
	r.finishOnce.Do(func() {
		if f := r.stopWatch.Load(); f != nil {
			(*f)()
		}
		r.err = err
		r.panicVal = panicVal
		r.state.Store(state)
		r.pool.unregister(r)
		close(r.abort)
		close(r.finished)
	})
}

// Handle is the completion future of one submission.
type Handle struct{ r *run }

// Done returns a channel closed when the submission has ended — every
// task executed, or the submission aborted.
func (h *Handle) Done() <-chan struct{} { return h.r.finished }

// Wait blocks until the submission ends and reports its outcome: nil when
// the root and every transitively spawned task completed; a PanicError
// wrapping the original value if a task panicked; the submission
// context's error if it was cancelled; ErrStopped if the pool stopped
// serving first. Wait is safe to call from any goroutine, repeatedly.
func (h *Handle) Wait() error {
	// The finished-channel receive orders the outcome reads below after
	// the finisher's writes.
	<-h.r.finished
	if v := h.r.panicVal; v != nil {
		return PanicError{Value: v}
	}
	return h.r.err
}

// Err returns the submission outcome without blocking: nil until Done,
// then exactly what Wait reports.
func (h *Handle) Err() error {
	select {
	case <-h.r.finished:
		if v := h.r.panicVal; v != nil {
			return PanicError{Value: v}
		}
		return h.r.err
	default:
		return nil
	}
}

// Serve starts the workers and serves submissions until ctx is cancelled.
// It blocks for the duration of service: callers run it on its own
// goroutine and submit from others. On cancellation, submissions still in
// flight are aborted with ErrStopped (their Handles complete; tasks
// already executing finish, tasks never started are discarded and counted
// in Stats.TasksCancelled), the workers shut down, and Serve returns
// ctx.Err(). After a completed Pool.Drain (drain.go) Serve instead
// returns nil — the graceful shutdown — and the pool may Serve again.
// If a worker loop itself fails (a panic outside any task,
// e.g. an injected fault), every in-flight submission aborts with the
// panic value and Serve re-panics with it, mirroring Run.
//
// A Pool runs one engine at a time: starting Serve while another Serve,
// Run, or RunContext is in flight panics, exactly like overlapping Runs.
func (p *Pool) Serve(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !p.running.CompareAndSwap(false, true) {
		panic("sched: Pool.Serve called concurrently with a run or serve already in flight on this pool (a Pool hosts one engine at a time)")
	}
	defer p.running.Store(false)
	p.startSession(nil)
	// This session's drain-request channel (drain.go), read under the same
	// lock startSession published it under.
	p.runMu.Lock()
	drainReq := p.drainReq
	p.runMu.Unlock()

	stopAux := make(chan struct{})
	var aux sync.WaitGroup
	if p.cfg.StallTimeout > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			p.watchdog(stopAux)
		}()
	}

	// Open for business only after the workers exist; Submit checks this
	// flag before enqueueing.
	p.serving.Store(true)

	var failVal any
	drained := false
	select {
	case <-ctx.Done():
	case <-drainReq:
		// A completed Drain (drain.go): admission is already closed and —
		// unless the drain's deadline expired first — every accepted
		// submission has completed, so the abort sweep below is a no-op on
		// the happy path and exactly the ErrStopped fallback on expiry.
		drained = true
	case <-p.failCh:
		// A worker loop died. failVal is safe to read after the channel
		// close (engineFail writes it first).
		failVal = p.failVal
	}
	p.serving.Store(false)

	// Abort whatever is still in flight. On engine failure engineFail
	// already aborted the registered runs; this sweep also catches
	// submissions that raced the serving flag. First abort wins, so a
	// panic cause recorded earlier is preserved.
	if failVal != nil {
		p.abortAll(runPanicked, nil, failVal)
	} else {
		p.abortAll(runCancelled, ErrStopped, nil)
	}
	p.endSession()
	close(stopAux)
	aux.Wait()
	// Quiescent: every worker has exited, so draining the deques, the
	// injector shards, and the handoff slots is owner-safe. Leftover
	// tasks all belong to aborted submissions; account them by cause.
	p.drainByRun()
	if failVal != nil {
		panic(failVal)
	}
	if drained {
		return nil
	}
	return ctx.Err()
}

// Submit enqueues fn as the root of a new submission and returns its
// Handle. It is callable from any goroutine, including from tasks already
// running on the pool. The returned Handle is nil exactly when the error
// is non-nil: ErrNotServing if no Serve is in flight, ErrOverloaded if
// every injector shard is full under the default ShedReject policy.
func (p *Pool) Submit(fn func(*Worker)) (*Handle, error) {
	return p.SubmitContext(context.Background(), fn)
}

// SubmitContext is Submit with per-submission cancellation: when ctx is
// cancelled, this submission — and only this one — aborts through the
// same plumbing RunContext uses, and its Handle.Wait returns ctx.Err().
// Tasks of the submission already executing finish; tasks not yet started
// are discarded and counted in Stats.TasksCancelled.
//
// The handshake directive makes abpvet verify the producer half of the
// injector's Dekker wake protocol end to end: the enqueue (pushInjector's
// reservation CAS, visible to a parking worker's Len re-scan from that
// instant) must dominate the signalWork scan of the parked flags. The
// consumer half is park's existing store=parked load=anyVisibleWork
// contract, whose re-scan now covers the injector shards.
//
//abp:handshake store=pushInjector load=signalWork
func (p *Pool) SubmitContext(ctx context.Context, fn func(*Worker)) (*Handle, error) {
	if !p.serving.Load() {
		return nil, ErrNotServing
	}
	if p.draining.Load() {
		return nil, ErrDraining
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := newRun(p)
	t := &Task{fn: fn, run: r}
	// Arm the cancellation watcher before the task is published: a
	// worker may pop and complete the submission the instant the push
	// lands, and r's fields must be quiescent by then.
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			r.abortWith(runCancelled, ctx.Err(), nil)
		})
		r.stopWatch.Store(&stop)
	}
	p.register(r)
	if !p.pushInjector(t) {
		// Every shard full: shed.
		if p.cfg.Overload == ShedCallerRuns {
			p.callerRuns.Add(1)
			p.runOnCaller(t)
			return &Handle{r: r}, nil
		}
		r.abortWith(runCancelled, ErrOverloaded, nil)
		p.rejected.Add(1)
		return nil, ErrOverloaded
	}
	p.submitted.Add(1)
	p.signalWork()
	if p.draining.Load() {
		// A Drain closed admission between the gate above and the push.
		// Its registry snapshot may or may not have seen this run, so the
		// submission must not stand: abort it and report a rejection —
		// never an accepted handle a drain then fails. (If the re-check
		// instead finds no drain, the sc flag order guarantees the drain's
		// snapshot runs after our register and waits for us; see drain.go.)
		// The task carcass is discarded, and counted, at pop or drain time.
		r.abortWith(runCancelled, ErrDraining, nil)
		p.submitted.Add(-1)
		p.rejected.Add(1)
		return nil, ErrDraining
	}
	if !p.serving.Load() {
		// The pool stopped serving between the check above and the push:
		// the shutdown sweep may have missed this run. Abort it so its
		// Handle can never wedge; the task carcass is discarded (and
		// counted) when a later session pops or drains it.
		r.abortWith(runCancelled, ErrStopped, nil)
	}
	return &Handle{r: r}, nil
}

// runOnCaller executes a shed submission synchronously on the submitting
// goroutine: an ephemeral worker whose deque refuses every push makes all
// spawns run inline, so the whole submission executes depth-first to
// completion before Submit returns (its Handle is already Done). The
// ephemeral worker is not in Pool.workers: nothing steals from it and its
// per-task counters are not folded into Stats — Stats.SubmitsCallerRun
// counts the shed submissions themselves.
func (p *Pool) runOnCaller(t *Task) {
	w := &Worker{
		pool: p,
		id:   len(p.workers), // out of the victim range; never steals, never stolen from
		dq:   refuseDeque{},
	}
	w.exec(t)
}

// refuseDeque is the caller-runs worker's deque: capacity zero, so every
// Spawn takes the inline-execution fallback.
type refuseDeque struct{}

func (refuseDeque) PushBottom(*Task) bool { return false }
func (refuseDeque) PopBottom() *Task      { return nil }
func (refuseDeque) PopTop() *Task         { return nil }
func (refuseDeque) Len() int              { return 0 }

// register adds a run to the active set the shutdown/failure paths abort.
func (p *Pool) register(r *run) {
	p.runMu.Lock()
	p.active[r] = struct{}{}
	p.runMu.Unlock()
}

// unregister removes a finished run. Called from finishOnce only. The
// completion that empties the registry while a drain is waiting closes
// the session's drainIdle channel (drain.go), exactly once.
func (p *Pool) unregister(r *run) {
	p.runMu.Lock()
	delete(p.active, r)
	if len(p.active) == 0 && p.draining.Load() && !p.drainSignaled {
		p.drainSignaled = true
		close(p.drainIdle)
	}
	p.runMu.Unlock()
}

// abortAll aborts every registered run with the given cause. The active
// set is snapshotted first so abortWith's unregister does not mutate the
// map mid-iteration.
func (p *Pool) abortAll(state int32, err error, panicVal any) {
	p.runMu.Lock()
	rs := make([]*run, 0, len(p.active))
	for r := range p.active {
		rs = append(rs, r)
	}
	p.runMu.Unlock()
	for _, r := range rs {
		r.abortWith(state, err, panicVal)
	}
}

// engineFail records a worker-loop panic — a failure of the engine, not of
// any one task — aborts every in-flight submission with it, and wakes the
// session controller (Run's waiter or Serve's select). First failure wins.
func (p *Pool) engineFail(v any) {
	p.failOnce.Do(func() {
		p.failVal = v
		close(p.failCh)
	})
	p.abortAll(runPanicked, nil, v)
}
