package apps

import (
	"fmt"
	"sync/atomic"

	"worksteal/internal/atomicx"
	"worksteal/internal/sched"
)

// The paper's opening example of a multiprogrammed workload is "a parallel
// design verifier [executing] concurrently with other serial and parallel
// applications". This file provides that verifier: a parallel DPLL SAT
// solver whose speculative search tree is exactly the kind of irregular,
// unpredictable computation work stealing was built for. Both branches of a
// decision are explored in parallel (up to a depth), and the first branch
// to find a model publishes it and lets the rest of the search wind down.

// CNF is a formula in conjunctive normal form. Literals are non-zero
// integers: +v is variable v, -v its negation, with 1 <= v <= NumVars.
type CNF struct {
	NumVars int
	Clauses [][]int
}

// Validate checks literal ranges and clause sanity.
func (f CNF) Validate() error {
	if f.NumVars < 0 {
		return fmt.Errorf("apps: negative variable count")
	}
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("apps: clause %d is empty (trivially unsatisfiable)", i)
		}
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if v == 0 || v > f.NumVars {
				return fmt.Errorf("apps: clause %d has out-of-range literal %d", i, lit)
			}
		}
	}
	return nil
}

// Eval reports whether the assignment satisfies the formula.
// assignment[v-1] is the value of variable v.
func (f CNF) Eval(assignment []bool) bool {
	if len(assignment) < f.NumVars {
		return false
	}
	for _, c := range f.Clauses {
		ok := false
		for _, lit := range c {
			v := lit
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if assignment[v-1] != neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// value of a variable in the partial assignment: 0 unassigned, 1 true,
// 2 false.
type satState struct {
	assign []uint8
}

func (s *satState) clone() *satState {
	ns := &satState{assign: make([]uint8, len(s.assign))}
	copy(ns.assign, s.assign)
	return ns
}

// litValue returns 1 if the literal is true, 2 if false, 0 if unassigned.
func (s *satState) litValue(lit int) uint8 {
	v := lit
	neg := false
	if v < 0 {
		v, neg = -v, true
	}
	a := s.assign[v-1]
	if a == 0 {
		return 0
	}
	if neg {
		return 3 - a
	}
	return a
}

// satSolver holds the shared search state.
type satSolver struct {
	f CNF
	// found is CAS'd once (the winning model) but polled by every branch
	// at every node; nodes is incremented by every branch at every node.
	// Unpadded they share a line, so each nodes.Add would invalidate the
	// found line every solver goroutine is polling — the textbook false
	// sharing abplayout flags (DESIGN.md §12).
	found atomic.Pointer[[]bool]
	_     atomicx.CacheLinePad
	nodes atomic.Int64
}

// SolveSAT searches for a satisfying assignment of f with parallel DPLL,
// spawning both branches of each decision down to spawnDepth. It returns
// the model and true, or nil and false if the formula is unsatisfiable.
// Must be called from a task on the pool.
func SolveSAT(w *sched.Worker, f CNF, spawnDepth int) ([]bool, bool) {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	s := &satSolver{f: f}
	st := &satState{assign: make([]uint8, f.NumVars)}
	s.dpll(w, st, spawnDepth)
	if m := s.found.Load(); m != nil {
		return *m, true
	}
	return nil, false
}

// SearchNodes reports the number of DPLL nodes explored by the last solve
// on this solver; exposed for tests via SolveSATStats.
func SolveSATStats(w *sched.Worker, f CNF, spawnDepth int) (model []bool, ok bool, nodes int64) {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	s := &satSolver{f: f}
	st := &satState{assign: make([]uint8, f.NumVars)}
	s.dpll(w, st, spawnDepth)
	if m := s.found.Load(); m != nil {
		return *m, true, s.nodes.Load()
	}
	return nil, false, s.nodes.Load()
}

// propagate performs unit propagation; it returns false on conflict.
func (s *satSolver) propagate(st *satState) bool {
	for changed := true; changed; {
		changed = false
		for _, c := range s.f.Clauses {
			unassigned := 0
			var unit int
			sat := false
			for _, lit := range c {
				switch st.litValue(lit) {
				case 1:
					sat = true
				case 0:
					unassigned++
					unit = lit
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch unassigned {
			case 0:
				return false // conflict: clause fully falsified
			case 1:
				v := unit
				val := uint8(1)
				if v < 0 {
					v, val = -v, 2
				}
				st.assign[v-1] = val
				changed = true
			}
		}
	}
	return true
}

// dpll explores the subtree rooted at st.
func (s *satSolver) dpll(w *sched.Worker, st *satState, depth int) {
	if s.found.Load() != nil {
		return // another branch already found a model
	}
	s.nodes.Add(1)
	if !s.propagate(st) {
		return
	}
	// Pick the first unassigned variable.
	branch := -1
	for i, a := range st.assign {
		if a == 0 {
			branch = i
			break
		}
	}
	if branch == -1 {
		// Complete assignment that survived propagation: a model.
		model := make([]bool, s.f.NumVars)
		for i, a := range st.assign {
			model[i] = a == 1
		}
		// First-writer-wins: a lost CAS means another worker already
		// published a model, which is just as good an answer.
		//abp:ignore mustcheck first-writer-wins race; any published model suffices
		s.found.CompareAndSwap(nil, &model)
		return
	}
	// Branch on the variable, cloning the state for the second polarity
	// (propagation mixes decisions with implications, so cloning before the
	// branch is the simple correct undo; states are NumVars bytes).
	alt := st.clone()
	alt.assign[branch] = 2
	st.assign[branch] = 1
	if depth > 0 {
		// Speculative parallel branching: fork the false branch, descend
		// into the true branch, then join.
		fut := sched.Fork(w, func(w2 *sched.Worker) struct{} {
			s.dpll(w2, alt, depth-1)
			return struct{}{}
		})
		s.dpll(w, st, depth-1)
		fut.Join(w)
		return
	}
	s.dpll(w, st, 0)
	if s.found.Load() == nil {
		s.dpll(w, alt, 0)
	}
}
