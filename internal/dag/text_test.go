package dag

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTripFigure1(t *testing.T) {
	g := Figure1()
	var sb strings.Builder
	if err := g.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadText: %v\ninput:\n%s", err, sb.String())
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumThreads() != b.NumThreads() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	if a.Label() != b.Label() {
		t.Errorf("labels differ: %q vs %q", a.Label(), b.Label())
	}
	if a.Root() != b.Root() || a.Final() != b.Final() {
		t.Errorf("root/final differ")
	}
	if a.Work() != b.Work() || a.CriticalPath() != b.CriticalPath() {
		t.Errorf("metrics differ: %d/%d vs %d/%d", a.Work(), a.CriticalPath(), b.Work(), b.CriticalPath())
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	have := map[Edge]bool{}
	for _, e := range be {
		have[e] = true
	}
	for _, e := range ae {
		if !have[e] {
			t.Fatalf("edge %v missing after round trip", e)
		}
	}
}

func TestTextRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		g := randomSeriesParallel(rng, 20+rng.Intn(200))
		var sb strings.Builder
		if err := g.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertGraphsEqual(t, g, g2)
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "not-a-dag v9\n",
		"missing label":   "worksteal-dag v1\nnodes 1 threads 1\n",
		"bad counts":      "worksteal-dag v1\nlabel x\nnodes -3 threads 0\n",
		"sparse ids":      "worksteal-dag v1\nlabel x\nnodes 2 threads 1\nnode 0 0\nnode 5 0\nend\n",
		"bad thread":      "worksteal-dag v1\nlabel x\nnodes 1 threads 1\nnode 0 9\nend\n",
		"bad edge":        "worksteal-dag v1\nlabel x\nnodes 2 threads 1\nnode 0 0\nnode 1 0\nedge 0 9 sync\nend\n",
		"bad edge kind":   "worksteal-dag v1\nlabel x\nnodes 2 threads 1\nnode 0 0\nnode 1 0\nedge 0 1 continuation\nend\n",
		"truncated":       "worksteal-dag v1\nlabel x\nnodes 2 threads 1\nnode 0 0\n",
		"invalid (cycle)": "worksteal-dag v1\nlabel x\nnodes 2 threads 2\nnode 0 0\nnode 1 1\nedge 0 1 spawn\nedge 1 0 sync\nend\n",
	}
	for name, input := range cases {
		if _, err := ReadText(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	input := `worksteal-dag v1
# a comment
label demo

nodes 2 threads 1
node 0 0
node 1 0
end
`
	g, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.Label() != "demo" {
		t.Fatalf("parsed %v", g)
	}
}

// FuzzReadText throws arbitrary bytes at the parser (no panics allowed) and
// round-trips anything it accepts.
func FuzzReadText(f *testing.F) {
	var sb strings.Builder
	Figure1().WriteText(&sb)
	f.Add(sb.String())
	f.Add("worksteal-dag v1\nlabel x\nnodes 1 threads 1\nnode 0 0\nend\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid graph: %v", err)
		}
		var out strings.Builder
		if err := g.WriteText(&out); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadText(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		assertGraphsEqual(t, g, g2)
	})
}
