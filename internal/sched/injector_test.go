// Unit tests for the bounded MPMC injector shard (injector.go): FIFO
// order, the full/empty boundary conditions, lap wrap-around, and
// exactly-once delivery under concurrent producers and consumers.
package sched

import (
	"sync"
	"testing"
)

func TestInjectorFIFO(t *testing.T) {
	q := newInjector(8)
	tasks := make([]*Task, 5)
	for i := range tasks {
		tasks[i] = &Task{}
		if !q.TryPush(tasks[i]) {
			t.Fatalf("TryPush %d failed on a non-full ring", i)
		}
	}
	if got := q.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	for i := range tasks {
		if got := q.TryPop(); got != tasks[i] {
			t.Fatalf("TryPop %d = %p, want %p (FIFO order)", i, got, tasks[i])
		}
	}
	if got := q.TryPop(); got != nil {
		t.Fatalf("TryPop on empty = %p, want nil", got)
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
}

func TestInjectorFullRejects(t *testing.T) {
	q := newInjector(4)
	for i := 0; i < 4; i++ {
		if !q.TryPush(&Task{}) {
			t.Fatalf("TryPush %d failed below capacity", i)
		}
	}
	if q.TryPush(&Task{}) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	if q.TryPop() == nil {
		t.Fatal("TryPop failed on a full ring")
	}
	// One slot freed: admission resumes.
	if !q.TryPush(&Task{}) {
		t.Fatal("TryPush failed after a pop freed a slot")
	}
}

// The capacity rounds up to a power of two; the bound the caller gets is
// at least what was asked for.
func TestInjectorCapacityRounding(t *testing.T) {
	q := newInjector(3)
	if got := len(q.cells); got != 4 {
		t.Fatalf("newInjector(3) allocated %d cells, want 4", got)
	}
	if q.mask != 3 {
		t.Fatalf("mask = %d, want 3", q.mask)
	}
	// Minimum capacity is 2: a 1-cell Vyukov ring cannot distinguish
	// "full" from "free on the next lap" (see newInjector's comment), so a
	// second push would overwrite the unconsumed task instead of
	// reporting full.
	q = newInjector(1)
	if got := len(q.cells); got != 2 {
		t.Fatalf("newInjector(1) allocated %d cells, want 2 (the Vyukov minimum)", got)
	}
	for i := 0; i < 2; i++ {
		if !q.TryPush(&Task{}) {
			t.Fatalf("TryPush %d failed below the rounded capacity", i)
		}
	}
	if q.TryPush(&Task{}) {
		t.Fatal("TryPush overwrote a full minimum-capacity ring")
	}
}

// Push/pop far more items than the capacity through a tiny ring, so every
// cell cycles through many laps and the seq arithmetic is exercised past
// the first wrap.
func TestInjectorWrapAround(t *testing.T) {
	q := newInjector(2)
	tasks := make([]*Task, 1000)
	for i := range tasks {
		tasks[i] = &Task{}
	}
	next := 0
	for i := range tasks {
		if !q.TryPush(tasks[i]) {
			t.Fatalf("TryPush %d failed", i)
		}
		if i%2 == 1 { // drain in pairs to force both cells through laps
			for j := 0; j < 2; j++ {
				got := q.TryPop()
				if got != tasks[next] {
					t.Fatalf("TryPop = %p, want tasks[%d]=%p", got, next, tasks[next])
				}
				next++
			}
		}
	}
	if got := q.TryPop(); got != nil {
		t.Fatalf("ring not empty after balanced push/pop: %p", got)
	}
}

// Exactly-once delivery under contention: many producers push distinct
// tasks while many consumers drain; every task comes out exactly once.
func TestInjectorConcurrent(t *testing.T) {
	const producers, perProducer, consumers = 4, 500, 4
	q := newInjector(64)
	seen := make(chan *Task, producers*perProducer)

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func() {
			defer wg.Done()
			for {
				if task := q.TryPop(); task != nil {
					seen <- task
					continue
				}
				select {
				case <-done:
					// Producers finished; one last sweep for stragglers.
					for task := q.TryPop(); task != nil; task = q.TryPop() {
						seen <- task
					}
					return
				default:
				}
			}
		}()
	}

	var pwg sync.WaitGroup
	pwg.Add(producers)
	for p := 0; p < producers; p++ {
		go func() {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				task := &Task{}
				for !q.TryPush(task) {
					// Full: consumers are behind; retry.
				}
			}
		}()
	}
	pwg.Wait()
	close(done)
	wg.Wait()
	close(seen)

	got := make(map[*Task]int)
	for task := range seen {
		got[task]++
	}
	if len(got) != producers*perProducer {
		t.Fatalf("delivered %d distinct tasks, want %d", len(got), producers*perProducer)
	}
	for task, n := range got {
		if n != 1 {
			t.Fatalf("task %p delivered %d times", task, n)
		}
	}
}
