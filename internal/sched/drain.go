// Graceful drain: stop accepting, finish everything accepted, then stop
// the fleet (DESIGN.md §14).
//
// Serve's context cancellation is an abort: every in-flight submission
// completes with ErrStopped and its unexecuted tasks are discarded. A
// production service wants the other shutdown too — the load balancer
// stops sending, accepted requests finish, then the fleet comes down.
// Pool.Drain(ctx) is that path, a three-step state machine:
//
//  1. Close admission: the draining flag flips (CAS — one Drain wins per
//     session) and Submit starts returning ErrDraining.
//  2. Wait for the accepted set to empty: the active-run registry shrinks
//     as submissions complete; the unregister that empties it while
//     draining closes drainIdle. ctx bounds the wait — on expiry Drain
//     proceeds immediately and the leftover submissions meet step 3's
//     abort sweep instead, completing with ErrStopped exactly as a
//     cancelled Serve would leave them.
//  3. Stop the fleet: closing drainReq wakes Serve's select; Serve runs
//     its normal teardown (the abort sweep is a no-op on the happy path —
//     the set is already empty) and returns nil, distinguishing a
//     completed drain from a cancellation. The pool is reusable: the next
//     Serve resets the drain state like every other session field.
//
// The no-lost-submission argument is a Dekker pairing over the SC draining
// flag and the runMu-guarded registry. Submit orders gate-load(draining) →
// register → push → re-load(draining); Drain orders store(draining) →
// read(registry). If Submit's re-load still sees no drain, the store
// hadn't happened, so Drain's registry read is after this run's register
// and waits for it. If the re-load sees the drain, Submit can't know
// whether Drain's snapshot caught the run, so it self-aborts and reports
// ErrDraining — the submission counts as rejected, never as an accepted
// handle that later fails. Either way, every Submit that returned a
// handle and nil error before Drain began is completed, not aborted.
package sched

import (
	"context"
	"errors"
)

// ErrDraining reports a Submit on a pool whose Drain is in flight (or a
// second concurrent Drain): admission is closed, the submission was not
// enqueued and will never run.
var ErrDraining = errors.New("sched: pool is draining: submission rejected")

// Drain gracefully stops the serving session: admission closes first
// (Submit returns ErrDraining), every submission accepted before the drain
// runs to completion, and then the fleet stops — Serve returns nil. The
// wait for completion is bounded by ctx: on expiry Drain stops the fleet
// anyway and the submissions still in flight abort with ErrStopped (their
// Handles complete either way), exactly the sweep a cancelled Serve runs.
// Drain returns nil if everything accepted completed, ctx.Err() on a
// deadline fallback, ErrNotServing when no Serve is up, and ErrDraining if
// it lost the race to a concurrent Drain. It returns once the fleet stop
// is signalled; join the Serve goroutine itself to observe full teardown,
// after which the pool is reusable (Serve restarts cleanly).
func (p *Pool) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !p.serving.Load() {
		return ErrNotServing
	}
	if !p.draining.CompareAndSwap(false, true) {
		return ErrDraining
	}
	// Admission is closed. Snapshot this session's channels and settle the
	// already-idle case under the registry lock: if nothing is in flight,
	// the drain is trivially complete — and because the flag was stored
	// before this look, any submission the look misses will see the flag
	// on its post-push re-check and self-reject (the package comment's
	// Dekker pairing).
	p.runMu.Lock()
	req, idle, quit := p.drainReq, p.drainIdle, p.quitCh
	if len(p.active) == 0 && !p.drainSignaled {
		p.drainSignaled = true
		close(idle)
	}
	p.runMu.Unlock()

	var err error
	select {
	case <-idle:
		// Every accepted submission completed.
	case <-ctx.Done():
		// Deadline: fall back to the abort sweep — Serve's teardown below
		// completes the stragglers with ErrStopped.
		err = ctx.Err()
	}
	close(req)
	// Wait for the session to acknowledge (endSession closes quit as the
	// workers are told to stop); the fleet stop is then underway.
	<-quit
	return err
}
