package analysis

import (
	"testing"

	"worksteal/internal/dag"
	"worksteal/internal/sim"
	"worksteal/internal/workload"
)

// TestThrowPhaseSurvey logs throw and phase statistics across the workload
// spectrum; it asserts the Lemma 8 invariants hold on every row.
func TestThrowPhaseSurvey(t *testing.T) {
	cases := []struct {
		name string
		g    *dag.Graph
		p    int
	}{
		{"fib16", workload.FibDag(16), 8},
		{"fib16", workload.FibDag(16), 16},
		{"grid", workload.Grid(20, 30), 8},
		{"strands", workload.Strands(10, 21), 8},
		{"spine", workload.SpawnSpine(16, 40), 8},
		{"chain", workload.Chain(500), 8},
	}
	for _, c := range cases {
		tr := NewPotentialTracker(c.g.CriticalPath())
		res := sim.NewEngine(sim.Config{
			Graph: c.g, P: c.p, Kernel: sim.DedicatedKernel{NumProcs: c.p},
			Seed: 23, Observer: tr,
		}).Run()
		if !res.Completed {
			t.Fatalf("%s: incomplete", c.name)
		}
		st := AnalyzePhases(tr.Points, c.p)
		if !st.NeverIncreased {
			t.Errorf("%s: potential increased", c.name)
		}
		if st.Phases > 0 && st.SuccessRate() < 0.25 {
			t.Errorf("%s: success rate %.2f < 0.25", c.name, st.SuccessRate())
		}
		t.Logf("%s P=%d T1=%d Tinf=%d throws=%d rounds=%d phases=%d rate=%.2f meanDrop=%.2f",
			c.name, c.p, c.g.Work(), c.g.CriticalPath(), res.Throws, res.Rounds, st.Phases, st.SuccessRate(), st.MeanLogDrop)
	}
}
