package sched

import (
	"runtime"

	"worksteal/internal/atomicx"
)

// poolAbortedError is the panic value Join raises when the submission was
// aborted — by another of its tasks panicking, by a context cancellation,
// or by the pool stopping — while this future can no longer complete.
// cause holds the original panic value or the cancellation error.
type poolAbortedError struct{ cause any }

func (e poolAbortedError) Error() string { return "sched: pool run aborted" }

// Future is the result of a Fork: a value that becomes available when the
// forked task completes. Join retrieves it, executing other tasks while it
// waits (the "work-first" help protocol), so waiting never wastes a worker.
type Future[T any] struct {
	result T
	// done is a one-way completion publication (the forked task stores, the
	// joiner loads); release/acquire covers the result handoff.
	done atomicx.PublishBool
	ch   chan struct{}
}

// Fork spawns fn and returns a Future for its result. The spawned task goes
// to the bottom of the caller's deque (or runs inline if the deque is
// full), so in the common un-stolen case Join pops it right back and runs
// it on the same worker — the depth-first execution order the paper notes
// is "often used" (lazy task creation).
func Fork[T any](w *Worker, fn func(*Worker) T) *Future[T] {
	f := &Future[T]{ch: make(chan struct{})}
	w.Spawn(func(inner *Worker) {
		f.result = fn(inner)
		f.done.Store(true)
		close(f.ch)
	})
	return f
}

// Join returns the future's result, helping to run other tasks until it is
// available. It must be called from a task running on the pool (pass the
// current worker). When no runnable work is visible anywhere, Join blocks
// on the future's channel rather than spinning — the same
// park-instead-of-spin discipline as the worker loop (lifecycle.go) — and
// is woken by the forked task's completion or, if the joiner's submission
// aborts (another of its tasks panicked, its context was cancelled, the
// pool stopped), by the submission's abort channel, in which case it
// panics with poolAbortedError so the abort also unwinds joiners that
// could otherwise wait forever. The abort check also runs between helped
// tasks: a joiner with a deep backlog unwinds at the next task boundary
// instead of draining the backlog first (the worker loop makes the same
// between-tasks check). In serve mode a helped task may belong to a
// different submission — execOrDrop charges and aborts per the helped
// task's own run, and exec restores the joiner's run afterwards.
func (f *Future[T]) Join(w *Worker) T {
	r := w.currentRun()
	for !f.done.Load() {
		select {
		case <-r.abort:
			if !f.done.Load() {
				// The abort-channel receive orders the cause reads after
				// the aborter's writes: panicVal for a task panic, err for
				// a cancellation or service stop.
				cause := any(r.panicVal)
				if cause == nil {
					cause = r.err
				}
				panic(poolAbortedError{cause: cause})
			}
		default:
		}
		if t := w.tryGetTask(); t != nil {
			w.execOrDrop(t)
			continue
		}
		// No runnable work found. If some deque still appears non-empty a
		// retry may find it; otherwise the forked task (or an ancestor it
		// waits on) is running on another worker and blocking is safe and
		// cheap.
		if w.anyVisibleWork() {
			runtime.Gosched()
			continue
		}
		select {
		case <-f.ch:
		case <-r.abort:
			if !f.done.Load() {
				cause := any(r.panicVal)
				if cause == nil {
					cause = r.err
				}
				panic(poolAbortedError{cause: cause})
			}
		default:
			runtime.Gosched()
			if f.done.Load() || w.anyVisibleWork() {
				continue
			}
			select {
			case <-f.ch:
			case <-r.abort:
				if !f.done.Load() {
					cause := any(r.panicVal)
					if cause == nil {
						cause = r.err
					}
					panic(poolAbortedError{cause: cause})
				}
			}
		}
	}
	return f.result
}

// Done reports whether the result is available without blocking.
func (f *Future[T]) Done() bool { return f.done.Load() }

// Join2 forks fa and runs fb inline, then joins: the classic binary
// fork-join (for example fib(n-1) in parallel with fib(n-2)).
func Join2[A, B any](w *Worker, fa func(*Worker) A, fb func(*Worker) B) (A, B) {
	fut := Fork(w, fa)
	b := fb(w)
	a := fut.Join(w)
	return a, b
}
