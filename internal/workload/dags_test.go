package workload

import (
	"testing"
	"testing/quick"

	"worksteal/internal/dag"
)

func TestChainMetrics(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		g := Chain(n)
		if err := g.Validate(); err != nil {
			t.Fatalf("Chain(%d): %v", n, err)
		}
		if g.Work() != n || g.CriticalPath() != n {
			t.Errorf("Chain(%d): work=%d span=%d", n, g.Work(), g.CriticalPath())
		}
	}
}

func TestChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Chain(0) did not panic")
		}
	}()
	Chain(0)
}

func TestSpawnSpineMetrics(t *testing.T) {
	cases := []struct{ n, childLen int }{{1, 1}, {2, 5}, {8, 3}, {16, 100}, {5, 1}}
	for _, c := range cases {
		g := SpawnSpine(c.n, c.childLen)
		if err := g.Validate(); err != nil {
			t.Fatalf("SpawnSpine(%d,%d): %v", c.n, c.childLen, err)
		}
		wantWork := 2*c.n + c.n*c.childLen
		if g.Work() != wantWork {
			t.Errorf("SpawnSpine(%d,%d): work=%d, want %d", c.n, c.childLen, g.Work(), wantWork)
		}
		wantSpan := 2 * c.n
		if s := c.n + c.childLen + 1; s > wantSpan {
			wantSpan = s
		}
		if g.CriticalPath() != wantSpan {
			t.Errorf("SpawnSpine(%d,%d): span=%d, want %d", c.n, c.childLen, g.CriticalPath(), wantSpan)
		}
		if g.NumThreads() != c.n+1 {
			t.Errorf("SpawnSpine(%d,%d): threads=%d, want %d", c.n, c.childLen, g.NumThreads(), c.n+1)
		}
	}
}

// fibCallCounts returns (total calls, leaf calls) of naive fib(n).
func fibCallCounts(n int) (calls, leaves int) {
	if n < 2 {
		return 1, 1
	}
	c1, l1 := fibCallCounts(n - 1)
	c2, l2 := fibCallCounts(n - 2)
	return c1 + c2 + 1, l1 + l2
}

func TestFibDagMetrics(t *testing.T) {
	for n := 0; n <= 14; n++ {
		g := FibDag(n)
		if err := g.Validate(); err != nil {
			t.Fatalf("FibDag(%d): %v", n, err)
		}
		calls, leaves := fibCallCounts(n)
		wantWork := 3*(calls-leaves) + leaves
		if g.Work() != wantWork {
			t.Errorf("FibDag(%d): work=%d, want %d", n, g.Work(), wantWork)
		}
		if g.NumThreads() != calls {
			t.Errorf("FibDag(%d): threads=%d, want %d", n, g.NumThreads(), calls)
		}
		// Span recurrence: span(k) = max(span(k-1)+2, span(k-2)+3) with
		// span(0) = span(1) = 1, which solves to span(k) = 2k for k >= 2.
		wantSpan := 1
		if n >= 2 {
			wantSpan = 2 * n
		}
		if g.CriticalPath() != wantSpan {
			t.Errorf("FibDag(%d): span=%d, want %d", n, g.CriticalPath(), wantSpan)
		}
	}
}

func TestFibParallelismGrows(t *testing.T) {
	p10 := FibDag(10).Parallelism()
	p14 := FibDag(14).Parallelism()
	if p14 <= p10 {
		t.Errorf("parallelism should grow: fib(10)=%v fib(14)=%v", p10, p14)
	}
	if p14 < 5 {
		t.Errorf("fib(14) parallelism %v suspiciously low", p14)
	}
}

func TestGridMetrics(t *testing.T) {
	cases := []struct{ rows, cols int }{{1, 2}, {2, 2}, {4, 7}, {10, 10}}
	for _, c := range cases {
		g := Grid(c.rows, c.cols)
		if err := g.Validate(); err != nil {
			t.Fatalf("Grid(%d,%d): %v", c.rows, c.cols, err)
		}
		if g.Work() != c.rows*c.cols {
			t.Errorf("Grid(%d,%d): work=%d", c.rows, c.cols, g.Work())
		}
		if g.CriticalPath() != c.rows+c.cols-1 {
			t.Errorf("Grid(%d,%d): span=%d, want %d", c.rows, c.cols, g.CriticalPath(), c.rows+c.cols-1)
		}
		if g.NumThreads() != c.rows {
			t.Errorf("Grid(%d,%d): threads=%d", c.rows, c.cols, g.NumThreads())
		}
	}
}

func TestStrandsValid(t *testing.T) {
	for _, c := range []struct{ k, l int }{{1, 3}, {2, 4}, {5, 9}, {8, 20}} {
		g := Strands(c.k, c.l)
		if err := g.Validate(); err != nil {
			t.Fatalf("Strands(%d,%d): %v", c.k, c.l, err)
		}
		if g.Work() != 2*c.k+c.k*c.l {
			t.Errorf("Strands(%d,%d): work=%d, want %d", c.k, c.l, g.Work(), 2*c.k+c.k*c.l)
		}
		if g.NumThreads() != c.k+1 {
			t.Errorf("Strands(%d,%d): threads=%d", c.k, c.l, g.NumThreads())
		}
	}
}

func TestRandomSPDeterministic(t *testing.T) {
	g1 := RandomSP(123, 500)
	g2 := RandomSP(123, 500)
	if g1.NumNodes() != g2.NumNodes() || g1.NumThreads() != g2.NumThreads() {
		t.Fatalf("RandomSP not deterministic: %v vs %v", g1, g2)
	}
	if g1.CriticalPath() != g2.CriticalPath() {
		t.Fatalf("RandomSP spans differ: %d vs %d", g1.CriticalPath(), g2.CriticalPath())
	}
}

func TestQuickRandomSPAlwaysValid(t *testing.T) {
	prop := func(seed int64, szRaw uint16) bool {
		size := 10 + int(szRaw)%2000
		g := RandomSP(seed, size)
		if g.Validate() != nil {
			return false
		}
		// Budget accounting must keep the size near the target (the final
		// padding node and chain rounding add only O(1) slack per step).
		return g.NumNodes() >= size/2 && g.CriticalPath() <= g.Work()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogsValid(t *testing.T) {
	for _, cat := range [][]Spec{Catalog(), SmallCatalog()} {
		for _, spec := range cat {
			g := spec.Build()
			if err := g.Validate(); err != nil {
				t.Errorf("%s: %v", spec.Name, err)
			}
			if g.Label() == "" {
				t.Errorf("%s: missing label", spec.Name)
			}
		}
	}
}

// Every generated dag must be executable to completion in a greedy
// left-to-right order (sanity for downstream schedulers).
func TestAllWorkloadsExecutable(t *testing.T) {
	for _, spec := range SmallCatalog() {
		g := spec.Build()
		s := dag.NewState(g)
		for !s.Done() {
			ready := s.ReadyNodes()
			if len(ready) == 0 {
				t.Fatalf("%s: deadlock with %d/%d executed", spec.Name, s.NumExecuted(), g.Work())
			}
			for _, u := range ready {
				s.Execute(u)
			}
		}
	}
}

func TestTreeSumMetrics(t *testing.T) {
	for d := 0; d <= 8; d++ {
		g := TreeSum(d)
		if err := g.Validate(); err != nil {
			t.Fatalf("TreeSum(%d): %v", d, err)
		}
		internal := 1<<d - 1
		leaves := 1 << d
		if want := 3*internal + leaves; g.Work() != want {
			t.Errorf("TreeSum(%d): work %d, want %d", d, g.Work(), want)
		}
		if want := 3*d + 1; g.CriticalPath() != want {
			t.Errorf("TreeSum(%d): span %d, want %d", d, g.CriticalPath(), want)
		}
		if g.NumThreads() != internal+leaves {
			t.Errorf("TreeSum(%d): threads %d, want %d", d, g.NumThreads(), internal+leaves)
		}
	}
}

func TestTreeSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TreeSum(-1)
}

func TestUnbalancedTree(t *testing.T) {
	for _, size := range []int{1, 6, 7, 50, 2000} {
		g := UnbalancedTree(3, size)
		if err := g.Validate(); err != nil {
			t.Fatalf("UnbalancedTree(%d): %v", size, err)
		}
		// Budget accounting is not exact but close: the body consumes at
		// most its budget and at least half of it.
		if g.Work() > size || g.Work() < size/2 {
			t.Errorf("UnbalancedTree(%d): work %d out of range", size, g.Work())
		}
	}
	// Deterministic per seed, different across seeds.
	a, b2 := UnbalancedTree(9, 1000), UnbalancedTree(9, 1000)
	if a.Work() != b2.Work() || a.CriticalPath() != b2.CriticalPath() {
		t.Error("UnbalancedTree not deterministic")
	}
	c := UnbalancedTree(10, 1000)
	if a.Work() == c.Work() && a.CriticalPath() == c.CriticalPath() && a.NumThreads() == c.NumThreads() {
		t.Error("UnbalancedTree identical across seeds (suspicious)")
	}
}

func TestQuickUnbalancedTreeValid(t *testing.T) {
	prop := func(seed int64, szRaw uint16) bool {
		size := 1 + int(szRaw)%3000
		g := UnbalancedTree(seed, size)
		return g.Validate() == nil && g.Work() <= size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnbalancedTreeIsUnbalanced(t *testing.T) {
	// The span should be far above the balanced-tree span for the same
	// work on at least some seeds (skewness check).
	skewedSeen := false
	for seed := int64(0); seed < 10; seed++ {
		g := UnbalancedTree(seed, 3000)
		balancedSpan := 3*11 + 1 // TreeSum(11) has work ~ 2^12*2
		if g.CriticalPath() > 3*balancedSpan {
			skewedSeen = true
		}
	}
	if !skewedSeen {
		t.Error("no seed produced a strongly skewed tree")
	}
}
