package analysis

import (
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"worksteal/internal/dag"
	"worksteal/internal/offline"
	"worksteal/internal/sim"
	"worksteal/internal/workload"
)

func TestLogAdd(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{math.Log(1), math.Log(1), math.Log(2)},
		{math.Log(3), math.Log(9), math.Log(12)},
		{math.Inf(-1), math.Log(5), math.Log(5)},
		{math.Log(5), math.Inf(-1), math.Log(5)},
	}
	for _, c := range cases {
		if got := logAdd(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("logAdd(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQuickLogAddCommutes(t *testing.T) {
	prop := func(x, y uint16) bool {
		a, b := float64(x)/100, float64(y)/100
		return math.Abs(logAdd(a, b)-logAdd(b, a)) < 1e-9 && logAdd(a, b) >= math.Max(a, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInitialLogPotential(t *testing.T) {
	// Phi_0 = 3^(2*Tinf-1): for Tinf = 3, Phi_0 = 3^5 = 243.
	if got := InitialLogPotential(3); math.Abs(got-math.Log(243)) > 1e-12 {
		t.Fatalf("InitialLogPotential(3) = %v, want log(243)", got)
	}
}

// The tracked potential must start at 3^(2Tinf-1), never increase, and end
// near zero (empty), across kernels and workloads.
func TestPotentialNeverIncreases(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		tinf := g.CriticalPath()
		tr := NewPotentialTracker(tinf)
		res := sim.NewEngine(sim.Config{
			Graph: g, P: 4, Kernel: sim.BenignKernel{NumProcs: 4},
			Seed: 17, Observer: tr,
		}).Run()
		if !res.Completed {
			t.Fatalf("%s: incomplete", spec.Name)
		}
		if len(tr.Points) == 0 {
			t.Fatalf("%s: no samples", spec.Name)
		}
		first := tr.Points[0].LogPhi
		if math.Abs(first-InitialLogPotential(tinf)) > 1e-9 {
			t.Errorf("%s: initial logPhi = %v, want %v", spec.Name, first, InitialLogPotential(tinf))
		}
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].LogPhi > tr.Points[i-1].LogPhi+1e-9 {
				t.Fatalf("%s: potential increased at round %d: %v -> %v",
					spec.Name, tr.Points[i].Round, tr.Points[i-1].LogPhi, tr.Points[i].LogPhi)
			}
		}
	}
}

// Lemma 8 empirically: phases with >= P throws succeed (drop Phi by >= 1/4)
// with frequency comfortably above the proven 1/4.
func TestLemma8PhaseDrops(t *testing.T) {
	const p = 8
	graphs := []*dag.Graph{
		workload.Chain(1000), // throw-heavy: parallelism 1
		workload.Grid(20, 30),
		workload.SpawnSpine(16, 40),
		workload.FibDag(16),
	}
	totalPhases, totalSuccess := 0, 0
	for _, g := range graphs {
		tr := NewPotentialTracker(g.CriticalPath())
		res := sim.NewEngine(sim.Config{
			Graph: g, P: p, Kernel: sim.DedicatedKernel{NumProcs: p},
			Seed: 23, Observer: tr,
		}).Run()
		if !res.Completed {
			t.Fatalf("%s: incomplete", g.Label())
		}
		stats := AnalyzePhases(tr.Points, p)
		if !stats.NeverIncreased {
			t.Errorf("%s: potential increased during execution", g.Label())
		}
		if stats.Phases > 0 && stats.MeanLogDrop <= 0 {
			t.Errorf("%s: mean log drop %v not positive", g.Label(), stats.MeanLogDrop)
		}
		totalPhases += stats.Phases
		totalSuccess += stats.Successful
	}
	if totalPhases < 10 {
		t.Fatalf("only %d phases across all workloads; need more steal pressure", totalPhases)
	}
	if rate := float64(totalSuccess) / float64(totalPhases); rate < 0.25 {
		t.Errorf("phase success rate %.2f below the Lemma 8 bound 0.25 (phases=%d)", rate, totalPhases)
	}
}

func TestAnalyzePhasesEdgeCases(t *testing.T) {
	if s := AnalyzePhases(nil, 4); s.Phases != 0 || !s.NeverIncreased {
		t.Errorf("empty trace: %+v", s)
	}
	// A trace with an increase is flagged.
	pts := []PhasePoint{{0, 0, 10}, {1, 5, 11}, {2, 10, 3}}
	s := AnalyzePhases(pts, 4)
	if s.NeverIncreased {
		t.Error("increase not flagged")
	}
	if s.Phases != 2 {
		t.Errorf("phases = %d, want 2", s.Phases)
	}
	// First phase rises 10 -> 11 (failure); second drops 11 -> 3 (success).
	if s.Successful != 1 {
		t.Errorf("successful = %d, want 1", s.Successful)
	}
}

// The structural lemma holds at every instruction of every run.
func TestStructuralLemmaHolds(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		for _, p := range []int{2, 5} {
			g := spec.Build()
			chk := NewStructuralChecker(g.CriticalPath())
			res := sim.NewEngine(sim.Config{
				Graph: g, P: p, Kernel: sim.BenignKernel{NumProcs: p},
				Seed: 31, ShuffleSteps: true, Observer: chk,
			}).Run()
			if !res.Completed {
				t.Fatalf("%s P=%d: incomplete", spec.Name, p)
			}
			if chk.Checks == 0 {
				t.Fatalf("%s P=%d: checker never ran", spec.Name, p)
			}
			if !chk.Ok() {
				t.Fatalf("%s P=%d: structural lemma violated:\n%v", spec.Name, p, chk.Violations)
			}
		}
	}
}

// Run the structural checker under the starvation-heavy adaptive adversary
// and spawn-order ablation too: the lemma is invariant to those choices.
func TestStructuralLemmaUnderAdversaryAndPolicy(t *testing.T) {
	g := workload.Strands(5, 9)
	for _, pol := range []sim.SpawnPolicy{sim.RunChild, sim.RunParent} {
		chk := NewStructuralChecker(g.CriticalPath())
		res := sim.NewEngine(sim.Config{
			Graph: g, P: 4, Kernel: sim.StarveWorkersKernel{NumProcs: 4},
			Yield: sim.YieldToAll, Policy: pol, Seed: 5, Observer: chk,
		}).Run()
		if !res.Completed {
			t.Fatalf("policy %v: incomplete", pol)
		}
		if !chk.Ok() {
			t.Fatalf("policy %v: violations: %v", pol, chk.Violations)
		}
	}
}

// Balls and weighted bins: the Monte Carlo estimate respects Lemma 7's
// lower bound for several weight profiles and beta values.
func TestLemma7MonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	profiles := map[string]func(n int) []float64{
		"uniform": func(n int) []float64 {
			w := make([]float64, n)
			for i := range w {
				w[i] = 1
			}
			return w
		},
		"single": func(n int) []float64 {
			w := make([]float64, n)
			w[0] = 100
			return w
		},
		"geometric": func(n int) []float64 {
			w := make([]float64, n)
			x := 1.0
			for i := range w {
				w[i] = x
				x /= 2
			}
			return w
		},
	}
	for name, mk := range profiles {
		for _, n := range []int{4, 16, 64} {
			for _, beta := range []float64{0.25, 0.5} {
				got := BallsInBinsEstimate(mk(n), beta, 4000, rng)
				bound := Lemma7Bound(beta)
				// Allow 3-sigma Monte Carlo slack below the bound.
				slack := 3 * math.Sqrt(bound*(1-bound)/4000)
				if got < bound-slack {
					t.Errorf("%s n=%d beta=%.2f: estimate %.3f below bound %.3f", name, n, beta, got, bound)
				}
			}
		}
	}
}

func TestLemma7BoundValues(t *testing.T) {
	// beta = 1/2: bound = 1 - 2/e ~ 0.2642.
	if got := Lemma7Bound(0.5); math.Abs(got-(1-2/math.E)) > 1e-12 {
		t.Errorf("Lemma7Bound(0.5) = %v", got)
	}
	if Lemma7Bound(0) <= Lemma7Bound(0.5) {
		t.Error("bound should decrease in beta")
	}
}

func TestBallsInBinsEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := BallsInBinsTrial(nil, rng); got != 0 {
		t.Errorf("empty trial = %v", got)
	}
	if got := BallsInBinsEstimate([]float64{0, 0}, 0.5, 10, rng); got != 1 {
		t.Errorf("zero-weight estimate = %v, want 1", got)
	}
}

func TestFitBound(t *testing.T) {
	// Synthesize runs obeying T = (2*T1 + 3*Tinf*P)/PA exactly.
	var pts []RunPoint
	for _, p := range []int{1, 2, 4, 8} {
		for _, tinf := range []int{10, 50} {
			t1 := tinf * 37
			pa := float64(p)
			steps := (2*float64(t1) + 3*float64(tinf)*float64(p)) / pa
			pts = append(pts, RunPoint{T1: t1, Tinf: tinf, P: p, Steps: int(steps), PA: pa})
		}
	}
	fit, err := FitBound(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.C1-2) > 0.05 || math.Abs(fit.Cinf-3) > 0.5 {
		t.Errorf("fit = %+v, want C1~2, Cinf~3", fit)
	}
	if fit.MaxRatio > 1.05 {
		t.Errorf("MaxRatio = %v", fit.MaxRatio)
	}
	if r := BoundRatio(pts[0], fit.C1, fit.Cinf); r > 1.1 {
		t.Errorf("BoundRatio = %v", r)
	}
}

func TestFitBoundErrors(t *testing.T) {
	if _, err := FitBound(nil); err == nil {
		t.Error("no error on empty input")
	}
	// Collinear design: T1 proportional to Tinf*P in every run.
	pts := []RunPoint{
		{T1: 10, Tinf: 5, P: 2, Steps: 100, PA: 2},
		{T1: 20, Tinf: 10, P: 2, Steps: 200, PA: 2},
	}
	if _, err := FitBound(pts); err == nil {
		t.Error("no error on degenerate design")
	}
}

// End-to-end E7-style: fit the constants over a dedicated-kernel grid and
// confirm the fitted model explains the measurements tightly.
func TestFitOverSimGrid(t *testing.T) {
	var pts []RunPoint
	for _, spec := range []workload.Spec{
		{Name: "fib", Build: func() *dag.Graph { return workload.FibDag(12) }},
		{Name: "grid", Build: func() *dag.Graph { return workload.Grid(12, 20) }},
		{Name: "chain", Build: func() *dag.Graph { return workload.Chain(400) }},
	} {
		g := spec.Build()
		for _, p := range []int{1, 2, 4, 8} {
			res := sim.NewEngine(sim.Config{
				Graph: g, P: p, Kernel: sim.DedicatedKernel{NumProcs: p}, Seed: 7,
			}).Run()
			if !res.Completed {
				t.Fatalf("%s P=%d incomplete", spec.Name, p)
			}
			pts = append(pts, RunPoint{T1: g.Work(), Tinf: g.CriticalPath(), P: p,
				Steps: res.Steps, PA: res.PA})
		}
	}
	fit, err := FitBound(pts)
	if err != nil {
		t.Fatal(err)
	}
	// The scheduling loop costs a handful of instructions per node, so C1
	// is a small constant; Cinf covers steal latency per critical-path
	// node. Both must be modest for the bound to be meaningful.
	if fit.C1 <= 0 || fit.C1 > 20 {
		t.Errorf("C1 = %v out of the plausible range", fit.C1)
	}
	if fit.Cinf > 40*sim.MilestoneC {
		t.Errorf("Cinf = %v implausibly large", fit.Cinf)
	}
	if fit.MeanAbs > 0.6 {
		t.Errorf("mean relative error %.2f too large for the fitted bound", fit.MeanAbs)
	}
}

func TestRoundCSV(t *testing.T) {
	g := workload.FibDag(8)
	var sb strings.Builder
	csv := NewRoundCSV(&sb, g.CriticalPath())
	res := sim.NewEngine(sim.Config{Graph: g, P: 3,
		Kernel: sim.DedicatedKernel{NumProcs: 3}, Seed: 2, Observer: csv}).Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if csv.Err() != nil {
		t.Fatalf("csv error: %v", csv.Err())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "round,steps,throws,logPhi" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != res.Rounds+1 {
		t.Fatalf("%d data lines, want %d", len(lines)-1, res.Rounds)
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != 3 {
			t.Fatalf("malformed line %q", line)
		}
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestRoundCSVWriteError(t *testing.T) {
	g := workload.Chain(30)
	csv := NewRoundCSV(&failingWriter{}, g.CriticalPath())
	sim.NewEngine(sim.Config{Graph: g, P: 2,
		Kernel: sim.DedicatedKernel{NumProcs: 2}, Seed: 2, Observer: csv}).Run()
	if csv.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

func TestScheduleRecorder(t *testing.T) {
	g := dag.Figure1()
	rec := NewScheduleRecorder(10000)
	res := sim.NewEngine(sim.Config{Graph: g, P: 3,
		Kernel: sim.DedicatedKernel{NumProcs: 3}, Seed: 4, Observer: rec}).Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if rec.Executions() != g.NumNodes() {
		t.Fatalf("recorded %d executions, want %d", rec.Executions(), g.NumNodes())
	}
	var sb strings.Builder
	rec.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "x1@p0") {
		t.Errorf("root execution by process 0 missing:\n%s", out)
	}
	if !strings.Contains(out, "x11@") {
		t.Errorf("final node execution missing:\n%s", out)
	}
}

func TestScheduleRecorderTruncates(t *testing.T) {
	g := workload.Chain(100)
	rec := NewScheduleRecorder(5)
	sim.NewEngine(sim.Config{Graph: g, P: 1,
		Kernel: sim.DedicatedKernel{NumProcs: 1}, Seed: 4, Observer: rec}).Run()
	var sb strings.Builder
	rec.Render(&sb)
	if !strings.Contains(sb.String(), "more steps") {
		t.Errorf("truncation marker missing:\n%s", sb.String())
	}
}

// The schedule extracted from a live simulation must be a valid execution
// schedule in the formal Section 2 sense, and must satisfy Theorem 1's
// universal lower bound.
func TestScheduleExtractorBridge(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		x := NewScheduleExtractor()
		res := sim.NewEngine(sim.Config{Graph: g, P: 4,
			Kernel: sim.BenignKernel{NumProcs: 4}, Seed: 77, Observer: x}).Run()
		if !res.Completed {
			t.Fatalf("%s: incomplete", spec.Name)
		}
		k, e := x.Extract(g)
		if err := e.Validate(k); err != nil {
			t.Fatalf("%s: extracted schedule invalid: %v", spec.Name, err)
		}
		if e.Length() != res.Steps {
			t.Errorf("%s: extracted length %d != measured steps %d", spec.Name, e.Length(), res.Steps)
		}
		if err := offline.CheckTheorem1(e); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		// PA agreement between the engine and the formal object.
		if pa := e.ProcessorAverage(); math.Abs(pa-res.PA) > 1e-9 {
			t.Errorf("%s: extracted PA %v != measured %v", spec.Name, pa, res.PA)
		}
		// The on-line schedule is usually NOT greedy (steal latency), which
		// is the gap Theorems 9-12 close; just confirm the checker runs.
		_ = e.IsGreedy()
	}
}

// Lemma 6 (Top-Heavy Deques) holds at every instruction of every run.
func TestLemma6TopHeavyDeques(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		chk := NewTopHeavyChecker(g.CriticalPath())
		res := sim.NewEngine(sim.Config{Graph: g, P: 5,
			Kernel: sim.BenignKernel{NumProcs: 5}, Seed: 19,
			ShuffleSteps: true, Observer: chk}).Run()
		if !res.Completed {
			t.Fatalf("%s: incomplete", spec.Name)
		}
		if !chk.Ok() {
			t.Fatalf("%s: Lemma 6 violated:\n%v", spec.Name, chk.Violations)
		}
	}
}

// Lemma 5 empirically: execution time is O(T1/P_A + S/P_A) where S is the
// number of throws — equivalently steps*P_A <= c1*T1 + c2*S*C + slack. We
// verify with generous constants across kernels (the proof's token argument
// gives roughly one token per 2C steps per scheduled process, each charged
// to work or to a throw).
func TestLemma5ThrowAccounting(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		for _, k := range []sim.Kernel{
			sim.DedicatedKernel{NumProcs: 6},
			sim.ConstBenign(6, 2),
		} {
			res := sim.NewEngine(sim.Config{Graph: g, P: 6, Kernel: k, Seed: 29}).Run()
			if !res.Completed {
				t.Fatalf("%s: incomplete", spec.Name)
			}
			tokens := float64(res.ProcInstr)
			// Each node costs at most ~13 instructions of work-side overhead
			// (execute + push/pop around it), and each throw accounts for at
			// most 3C instructions of thieving.
			bound := 13.0*float64(g.Work()) + 3.0*float64(sim.MilestoneC)*float64(res.Throws+6)
			if tokens > bound {
				t.Errorf("%s/%T: %v instructions exceed Lemma 5 bound %v (throws=%d)",
					spec.Name, k, tokens, bound, res.Throws)
			}
		}
	}
}

// Cross-validation: with one process, the simulator's execution order is
// exactly the serial depth-first (1DF) order the offline PDF scheduler
// derives, since both implement the same Figure 3 loop.
func TestSimSerialMatchesOneDF(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		rec := NewScheduleRecorder(1 << 20)
		res := sim.NewEngine(sim.Config{Graph: g, P: 1,
			Kernel: sim.DedicatedKernel{NumProcs: 1}, Seed: 1,
			Policy: sim.RunChild, Observer: rec}).Run()
		if !res.Completed {
			t.Fatalf("%s: incomplete", spec.Name)
		}
		order := offline.OneDFOrder(g)
		// Flatten the recorded executions in step order.
		var got []dag.NodeID
		for s := 1; s <= 1<<20 && len(got) < g.NumNodes(); s++ {
			for _, ev := range rec.rows[s] {
				got = append(got, ev.node)
			}
		}
		if len(got) != g.NumNodes() {
			t.Fatalf("%s: recorded %d executions", spec.Name, len(got))
		}
		for i, u := range got {
			if order[u] != i {
				t.Fatalf("%s: execution %d was node %d with 1DF index %d", spec.Name, i, u, order[u])
			}
		}
	}
}

func TestGantt(t *testing.T) {
	g := workload.FibDag(10)
	gantt := NewGantt(40)
	res := sim.NewEngine(sim.Config{Graph: g, P: 4,
		Kernel: sim.ConstBenign(4, 2), Seed: 21, Observer: gantt}).Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	var sb strings.Builder
	gantt.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p3") {
		t.Fatalf("missing process rows:\n%s", out)
	}
	if !strings.Contains(out, "W") {
		t.Fatalf("nobody ever worked:\n%s", out)
	}
	if !strings.Contains(out, " ") {
		t.Fatalf("a 2-of-4 benign kernel must leave unscheduled gaps:\n%s", out)
	}
}

// White-box: the structural checker must actually fire on states that
// violate the lemma (here fabricated by hand).
func TestStructuralCheckerDetectsViolations(t *testing.T) {
	g := dag.Figure1()
	st := dag.NewState(g)
	ids := dag.Figure1NodeIDs()
	x := func(k int) dag.NodeID { return ids[k-1] }
	// Execute x1, x2 so that x3 (weight Tinf-2) and x5 (weight Tinf-2) are
	// enabled... actually execute deeper to get distinct weights:
	st.Execute(x(1))
	st.Execute(x(2)) // enables x3 and x5
	st.Execute(x(5)) // enables x6
	// Fabricate a deque with weights INCREASING toward the bottom (x6 is
	// deeper than x3): bottom..top = [x3, x6] violates Corollary 4 because
	// w(x6) < w(x3) going up.
	chk := NewStructuralChecker(g.CriticalPath())
	bad := sim.ProcSnapshot{Assigned: dag.None,
		Deque: []dag.NodeID{x(3), x(6)}, Stable: true}
	chk.Checks++
	chkProcForTest(chk, st, bad)
	if chk.Ok() {
		t.Fatal("checker accepted a weight inversion")
	}
}

// chkProcForTest exposes the per-process check to white-box tests.
func chkProcForTest(c *StructuralChecker, st *dag.State, ps sim.ProcSnapshot) {
	c.checkProc(st, 0, ps)
}
