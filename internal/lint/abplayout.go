// abplayout is the cache-layout/false-sharing analyzer: the measurement
// counterpart of the hand-written padding in the deques, the injector and
// the scheduler. The paper's performance argument (Section 3.2 and the
// Figure 5 fast path) rests on a handful of hot shared words — the
// (tag, top) age word thieves CAS, the owner's bot, the injector
// positions, the parked flags every producer scans — staying off the
// cache lines other parties write. abplayout computes each declared
// struct's concrete layout with go/types Sizes (under both the amd64 and
// arm64 gc models), classifies every atomic field's writer role by
// reusing the abprace/abporder access collection, and reports:
//
//	(a) false sharing — an arbitration-hot field (CAS/Swap target or a
//	    declared-handshake word) sharing a 64-byte line with any other
//	    atomically accessed field;
//	(b) stale or miscounted padding — a blank `_ [N]byte` pad smaller
//	    than a cache line that fails to line-align the field after it
//	    (full-line pads, atomicx.CacheLinePad included, always isolate
//	    and are never flagged);
//	(c) element packing — a slice or array of a contention-hot struct
//	    whose element size is not a multiple of the line size, so
//	    elements written by different parties share lines;
//	(d) an arbitration-hot word (or aggregate of them) straddling a
//	    line boundary, splitting one CAS target across two lines.
//
// Findings are waived with a justified //abp:layout-ignore directive on
// or above the flagged line. DESIGN.md §12 maps each check to the paper
// claim it guards and records the deliberate over-approximations.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var AbpLayout = &Analyzer{
	Name: "abplayout",
	Doc:  "computes concrete struct layouts (amd64 and arm64 Sizes) and flags false sharing between arbitration-hot and other atomic fields, miscounted pads, contention-hot element packing, and line-straddling CAS words",
	Run:  runAbpLayout,
}

// layoutModels are the two concrete size models every layout is checked
// under. Both are 64-bit gc layouts today, so they usually agree — the
// point of carrying both is that a divergence (a future model, a field
// whose size differs) is caught rather than assumed away.
var layoutModels = []struct {
	arch  string
	sizes types.Sizes
}{
	{"amd64", types.SizesFor("gc", "amd64")},
	{"arm64", types.SizesFor("gc", "arm64")},
}

// cacheLineSize mirrors atomicx.CacheLineSize; the lint package cannot
// import atomicx (fixtures load without it), so the constant is pinned
// here and cross-checked by the layout pin tests.
const cacheLineSize = 64

// Field writer roles, ordered by severity. The two arbitration roles are
// the "write-hot by a crowd" ones whose line no one else may dirty.
const (
	roleCold      = ""              // no atomic discipline, or never accessed
	roleReadMost  = "read-mostly"   // atomic reads only
	roleOwnerHot  = "owner-hot"     // every write receiver-direct in an //abp:owner context
	roleSharedHot = "shared-write"  // atomic writes from unowned contexts
	roleHandshake = "handshake-hot" // named by an //abp:handshake directive's protocol
	roleCASHot    = "cas-hot"       // CompareAndSwap/Swap target
)

func arbitrationRole(role string) bool {
	return role == roleCASHot || role == roleHandshake
}

type layoutAnalysis struct {
	*raceAnalysis
	roles map[*types.Var]string
}

func runAbpLayout(pass *Pass) error {
	l := &layoutAnalysis{
		raceAnalysis: newRaceAnalysis(pass),
		roles:        map[*types.Var]string{},
	}
	// Collect over every function, context-less ones included: a hidden
	// writer must still make its field's line hot (same reasoning as
	// abporder's collection).
	for _, n := range l.graph.nodes {
		l.collect(n)
	}
	// Canonicalize by Origin so a generic struct's accesses, collected on
	// instantiation variables, land on the declaration's field objects.
	merged := map[*types.Var][]*raceAccess{}
	for v, accs := range l.accesses {
		merged[v.Origin()] = append(merged[v.Origin()], accs...)
	}
	l.accesses = merged
	l.classifyRoles()
	l.checkStructs()
	return nil
}

// classifyRoles assigns each atomically declared field a writer role from
// its collected accesses and the package's handshake directives.
func (l *layoutAnalysis) classifyRoles() {
	// Handshake protocol names: store=/load= operands either name a
	// function (its body's atomic writes/reads are the protocol's words)
	// or, when no function in the package matches, a field the carrier
	// itself accesses (store=parked names Worker.parked).
	storeFns := map[*funcNode]bool{}
	loadFns := map[*funcNode]bool{}
	type carrierOperand struct {
		carrier *funcNode
		field   string
	}
	var fieldOperands []carrierOperand
	fnByName := map[string][]*funcNode{}
	for _, n := range l.graph.nodes {
		if n.decl != nil {
			fnByName[n.decl.Name.Name] = append(fnByName[n.decl.Name.Name], n)
		}
	}
	for _, n := range l.graph.nodes {
		if n.decl == nil {
			continue
		}
		dirs, _ := parseHandshakeDirectives(n.decl.Doc)
		for _, d := range dirs {
			for i, operand := range []string{d.store, d.load} {
				if targets := fnByName[operand]; len(targets) > 0 {
					for _, t := range targets {
						if i == 0 {
							storeFns[t] = true
						} else {
							loadFns[t] = true
						}
					}
				} else {
					fieldOperands = append(fieldOperands, carrierOperand{carrier: n, field: operand})
				}
			}
		}
	}

	for v, accs := range l.accesses {
		disc, _, ok := declDiscipline(v.Type())
		if !ok || disc == "plain" {
			// Plain-declared fields assert "no concurrent access" (audited
			// by abporder); undeclared fields have no atomic contract.
			// Either way they are layout-cold.
			continue
		}
		var cas, handshake, write, read, sharedWrite bool
		for _, acc := range accs {
			if !acc.atomic {
				continue
			}
			if strings.HasPrefix(acc.op, "CompareAndSwap") || strings.HasPrefix(acc.op, "Swap") {
				cas = true
			}
			if acc.write {
				write = true
				if storeFns[acc.fn] || !(l.owned[acc.fn] && acc.recvDirect) {
					// A write inside a store= function is part of the
					// declared protocol even when owner-performed.
					if storeFns[acc.fn] {
						handshake = true
					} else {
						sharedWrite = true
					}
				}
			} else {
				read = true
				if loadFns[acc.fn] {
					handshake = true
				}
			}
			for _, fo := range fieldOperands {
				if acc.fn == fo.carrier && v.Name() == fo.field {
					handshake = true
				}
			}
		}
		switch {
		case cas:
			l.roles[v] = roleCASHot
		case handshake:
			l.roles[v] = roleHandshake
		case write && sharedWrite:
			l.roles[v] = roleSharedHot
		case write:
			l.roles[v] = roleOwnerHot
		case read:
			l.roles[v] = roleReadMost
		}
	}
}

// roleOf returns the field's writer role (roleCold when unclassified).
func (l *layoutAnalysis) roleOf(v *types.Var) string { return l.roles[v.Origin()] }

// layoutField is one struct field under one size model.
type layoutField struct {
	v    *types.Var
	off  int64
	size int64
	// pad marks a blank field (any type): declared padding, exempt from
	// the role checks and subject to the isolation check instead.
	pad bool
}

// checkStructs walks every named struct declaration and applies the four
// layout checks under each size model, deduplicating findings that both
// models agree on.
func (l *layoutAnalysis) checkStructs() {
	info := l.pass.TypesInfo

	type finding struct {
		pos    token.Pos
		msg    string
		models []string
	}
	findings := map[string]*finding{}
	add := func(key string, pos token.Pos, arch, msg string) {
		f := findings[key]
		if f == nil {
			f = &finding{pos: pos, msg: msg}
			findings[key] = f
		}
		for _, m := range f.models {
			if m == arch {
				return
			}
		}
		f.models = append(f.models, arch)
	}

	for _, file := range l.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := info.Defs[ts.Name].(*types.TypeName)
			if !ok || obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok || st.NumFields() == 0 {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				if !sizeComputable(st.Field(i).Type(), 0) {
					return true // generic payload field: layout undefined
				}
			}
			sname := ts.Name.Name
			for _, model := range layoutModels {
				fields := structLayout(st, model.sizes)
				l.checkFalseSharing(sname, fields, model.arch, add)
				l.checkPads(sname, fields, model.arch, add)
				l.checkElementPacking(sname, fields, model.sizes, model.arch, add)
				l.checkStraddle(sname, fields, model.arch, add)
			}
			return true
		})
	}

	ordered := make([]*finding, 0, len(findings))
	for _, f := range findings {
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].pos != ordered[j].pos {
			return ordered[i].pos < ordered[j].pos
		}
		return ordered[i].msg < ordered[j].msg
	})
	for _, f := range ordered {
		sort.Strings(f.models)
		l.pass.Reportf(f.pos, "%s [%s]", f.msg, strings.Join(f.models, ","))
	}
}

// structLayout computes field offsets and sizes under one model.
func structLayout(st *types.Struct, sizes types.Sizes) []layoutField {
	vars := make([]*types.Var, st.NumFields())
	for i := range vars {
		vars[i] = st.Field(i)
	}
	offs := sizes.Offsetsof(vars)
	out := make([]layoutField, len(vars))
	for i, v := range vars {
		out[i] = layoutField{
			v:    v,
			off:  offs[i],
			size: sizes.Sizeof(v.Type()),
			pad:  v.Name() == "_",
		}
	}
	return out
}

func lineOf(off int64) int64 { return off / cacheLineSize }

// linesOverlap reports whether two fields touch a common cache line.
func linesOverlap(a, b layoutField) bool {
	if a.size == 0 || b.size == 0 {
		return false
	}
	return lineOf(a.off) <= lineOf(b.off+b.size-1) && lineOf(b.off) <= lineOf(a.off+a.size-1)
}

// checkFalseSharing flags pairs of fields on a common line where one side
// arbitrates (CAS/Swap or handshake word) and the other carries any
// atomic traffic at all: every write to the partner invalidates the line
// the arbitration's contenders are spinning on (and an arbitration write
// invalidates the partner's readers). Owner-vs-owner and blind-counter
// clusters are tolerated — co-written statistics sharing a line is the
// idiom, not the bug (DESIGN.md §12 records the over-approximation).
func (l *layoutAnalysis) checkFalseSharing(sname string, fields []layoutField, arch string, add func(string, token.Pos, string, string)) {
	for j := 1; j < len(fields); j++ {
		fj := fields[j]
		if fj.pad {
			continue
		}
		rj := l.roleOf(fj.v)
		for i := 0; i < j; i++ {
			fi := fields[i]
			if fi.pad || !linesOverlap(fi, fj) {
				continue
			}
			ri := l.roleOf(fi.v)
			if ri == roleCold || rj == roleCold {
				continue
			}
			if !arbitrationRole(ri) && !arbitrationRole(rj) {
				continue
			}
			key := fmt.Sprintf("fs:%s.%s/%s", sname, fi.v.Name(), fj.v.Name())
			msg := fmt.Sprintf("false sharing in %s: %s (%s) and %s (%s) share cache line %d; separate them with atomicx.CacheLinePad or waive with //abp:layout-ignore",
				sname, fi.v.Name(), ri, fj.v.Name(), rj, lineOf(fj.off))
			add(key, fj.v.Pos(), arch, msg)
		}
	}
}

// checkPads verifies that every blank pad narrower than a cache line
// still line-aligns the field that follows it. A pad of a full line or
// more (atomicx.CacheLinePad, `_ [64]byte`) always isolates its
// neighbors — the flanking fields end up a full line apart no matter
// their sizes — so only the hand-counted complements need auditing.
func (l *layoutAnalysis) checkPads(sname string, fields []layoutField, arch string, add func(string, token.Pos, string, string)) {
	for i, f := range fields {
		if !f.pad || f.size == 0 || f.size >= cacheLineSize || i+1 >= len(fields) {
			continue
		}
		next := fields[i+1]
		if next.off%cacheLineSize == 0 {
			continue
		}
		key := fmt.Sprintf("pad:%s/%d", sname, i)
		msg := fmt.Sprintf("miscounted pad in %s: the %d-byte pad leaves %s at offset %d, not line-aligned; use atomicx.CacheLinePad, which isolates regardless of neighbor sizes",
			sname, f.size, next.v.Name(), next.off)
		add(key, f.v.Pos(), arch, msg)
	}
}

// checkElementPacking flags slices/arrays whose element type is a
// contention-hot struct (one with an arbitration-hot or written atomic
// field) packing more than one element per line: neighbors written by
// different parties then share lines no pad inside the struct can fix.
// Slices of single atomic wrappers (a []atomicx.SCInt32 of join counters)
// are exempt — a wrapper field is the deliberate dense-array idiom and
// carries its own declared discipline.
func (l *layoutAnalysis) checkElementPacking(sname string, fields []layoutField, sizes types.Sizes, arch string, add func(string, token.Pos, string, string)) {
	for _, f := range fields {
		if f.pad {
			continue
		}
		var elem types.Type
		switch u := f.v.Type().Underlying().(type) {
		case *types.Slice:
			elem = u.Elem()
		case *types.Array:
			elem = u.Elem()
		default:
			continue
		}
		if _, _, isWrapper := declDiscipline(elem); isWrapper {
			continue
		}
		named, ok := elem.(*types.Named)
		if !ok {
			continue
		}
		est, ok := named.Underlying().(*types.Struct)
		if !ok || !sizeComputable(est, 0) {
			continue
		}
		hot := false
		for i := 0; i < est.NumFields(); i++ {
			switch l.roleOf(est.Field(i)) {
			case roleCASHot, roleHandshake, roleSharedHot, roleOwnerHot:
				hot = true
			}
		}
		if !hot {
			continue
		}
		esize := sizes.Sizeof(elem)
		if esize <= 0 || esize%cacheLineSize == 0 {
			continue
		}
		key := fmt.Sprintf("pack:%s.%s", sname, f.v.Name())
		msg := fmt.Sprintf("element packing in %s: %d-byte %s elements of %s pack %d per cache line, so neighbors written by different parties false-share; pad the element to a line multiple or waive with //abp:layout-ignore",
			sname, esize, named.Obj().Name(), f.v.Name(), max64(1, cacheLineSize/esize))
		add(key, f.v.Pos(), arch, msg)
	}
}

// checkStraddle flags arbitration-hot words (or aggregates of them, like
// a [2]SCUint64 CAS'd per element) crossing a line boundary: the one CAS
// target the paper's argument prices at a single line then costs two.
func (l *layoutAnalysis) checkStraddle(sname string, fields []layoutField, arch string, add func(string, token.Pos, string, string)) {
	for _, f := range fields {
		if f.pad || f.size == 0 || !arbitrationRole(l.roleOf(f.v)) {
			continue
		}
		if f.off%cacheLineSize+f.size <= cacheLineSize {
			continue
		}
		key := fmt.Sprintf("straddle:%s.%s", sname, f.v.Name())
		msg := fmt.Sprintf("hot CAS word %s of %s straddles cache lines %d and %d (offset %d, size %d); align or pad it onto one line",
			f.v.Name(), sname, lineOf(f.off), lineOf(f.off+f.size-1), f.off, f.size)
		add(key, f.v.Pos(), arch, msg)
	}
}

// sizeComputable reports whether a type's size is defined without knowing
// type arguments: a bare type parameter (or an aggregate containing one)
// has no layout, and structs containing one are skipped entirely. One
// level of pointer/slice/map/chan/func/interface indirection over a type
// parameter is size-known (a pointer is a word regardless of pointee).
func sizeComputable(t types.Type, depth int) bool {
	if depth > 64 {
		return false
	}
	if _, isTP := t.(*types.TypeParam); isTP {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.TypeParam:
		return false
	case *types.Array:
		return sizeComputable(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !sizeComputable(u.Field(i).Type(), depth+1) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
