// Elastic fleet: runtime resize with safe-point retirement (DESIGN.md §14).
//
// The paper's whole premise is that the kernel grows and shrinks the
// granted processor set P_A at will while the scheduler stays live and
// loses nothing. The batch pool reproduced the deques and yields of that
// model but ran a fixed fleet; this file makes P itself a runtime value.
// Pool.Resize(n) retargets the fleet to n workers within the pre-allocated
// [1, MaxWorkers] capacity:
//
//   - Grow starts worker goroutines for retired slots mid-session. The
//     slot's structures (deque, rng, park channel) already exist from New,
//     so growing is one state store plus a go statement per slot.
//   - Shrink marks suffix workers retiring and wakes them. A retiring
//     worker retires itself at a safe point — the top of its loop, never
//     mid-task: it drains its own deque into the injector (running tasks
//     inline if every shard is full, so nothing is ever lost), then
//     publishes workerRetired by CAS and exits.
//
// The retire/reactivate race is settled by that CAS: a Resize that grows
// the fleet back while a worker is still mid-retirement CASes
// retiring→active, the worker's own retiring→retired CAS then fails, and
// the worker simply resumes its loop — no blocking wait anywhere, on
// either side. Only after a successful retiring→retired CAS does Resize
// start a fresh goroutine for the slot; the SC state word orders the dying
// goroutine's plain-field writes (rng, rr) before the new goroutine's
// reads.
//
// Retired workers are invisible to the rest of the machine: signalWork
// skips their state word in the wake scan (a wake token delivered to a
// worker that retires without taking the work would be a lost wakeup — the
// retiring worker's final signalWork hands the baton on instead), victim
// selection draws only from the active prefix [0, fleet), and the stall
// watchdog exempts them like parked workers. Worker 0 never retires
// (fleet >= 1 always), which keeps the batch API's root handoff target and
// the session's WaitGroup floor intact.
package sched

import (
	"fmt"

	"worksteal/internal/fault"
)

// Failpoints in the retire protocol (the kernel-adversary chaos windows).
var (
	fpResizeBeforeRetire = fault.Register("sched.resize.beforeRetire",
		"retire: the worker observed its retiring mark at the loop safe point, deque drain not yet begun")
	fpResizeBeforeHandoff = fault.Register("sched.resize.beforeHandoff",
		"retire: a task popped off the retiring deque, injector handoff not yet offered (the task is invisible here)")
)

// Worker fleet-membership states (Worker.state). Transitions:
// active→retiring (Resize shrink), retiring→retired (the worker's own
// retire CAS), retiring→active (Resize grow reactivating mid-retirement),
// retired→active (Resize grow; plus a fresh goroutine while a session is
// live). workerActive is the zero value so New's workers start active.
const (
	workerActive int32 = iota
	workerRetiring
	workerRetired
)

// Resize retargets the fleet to n active workers, within [1, MaxWorkers].
// It may be called at any time from any goroutine: mid-Serve (workers
// start and retire live), mid-Run, or between sessions (the target takes
// effect at the next startSession). Shrinking never discards work — a
// retiring worker first drains its deque back into the injector — and
// never interrupts a running task: workers notice the mark at their loop
// safe point. Resize returns immediately after retargeting; retirement
// completes asynchronously (Stats.WorkersRetired counts completions,
// Stats.ActiveWorkers the momentary fleet).
func (p *Pool) Resize(n int) error {
	if n < 1 || n > len(p.workers) {
		return fmt.Errorf("sched: Resize(%d): fleet size must be in [1, %d] (Config.MaxWorkers)", n, len(p.workers))
	}
	p.resizeMu.Lock()
	defer p.resizeMu.Unlock()
	cur := int(p.fleet.Load())
	if n == cur {
		return nil
	}
	p.resizes.Add(1)
	if n < cur {
		// Shrink: mark the suffix retiring before narrowing the victim
		// range, then wake each marked worker so a parked one notices
		// promptly. The token send is non-blocking (capacity-1 channel):
		// an already-pending token wakes the worker just as well.
		for i := n; i < cur; i++ {
			w := p.workers[i]
			if w.state.CompareAndSwap(workerActive, workerRetiring) {
				select {
				case w.parkCh <- struct{}{}:
				default:
				}
			}
		}
		p.fleet.Store(int32(n))
		return nil
	}
	// Grow: widen the victim range first (a steal aimed at a still-empty
	// slot just fails), then bring each suffix slot back.
	p.fleet.Store(int32(n))
	for i := cur; i < n; i++ {
		w := p.workers[i]
		if w.state.CompareAndSwap(workerRetiring, workerActive) {
			// Still mid-retirement: reactivated in place. The live
			// goroutine's own retiring→retired CAS now fails and it resumes
			// looping — no second goroutine, no wait on either side.
			continue
		}
		// Fully retired (or was never started this session): the slot has
		// no goroutine, so hand the slot index to the session's fleet
		// manager to start one. The failed CAS above read the retired state
		// — the edge that orders the dead goroutine's plain-field writes
		// before the new goroutine's reads. The send cannot block
		// indefinitely: sessionLive is true under resizeMu, so endSession
		// (which takes resizeMu to clear it before closing quit) has not
		// begun, and the manager is still in its receive loop.
		w.state.Store(workerActive)
		if p.sessionLive {
			p.growCh <- i
		}
	}
	return nil
}

// fleetManager is the session goroutine that launches worker loops for
// mid-session grows. It exists so that every `go w.loop()` in the package
// sits inside startSession's fork subtree: the plain per-worker fields
// startSession writes (rr, handoff, the session channels) are ordered
// before any worker goroutine by the lexical fork edges alone, no matter
// when a grow later starts the worker. The manager holds its own WaitGroup
// slot (startSession adds it), so its wg.Add(1) per launch always runs
// with a non-zero counter, never racing endSession's Wait.
func (p *Pool) fleetManager(quit <-chan struct{}, grow <-chan int) {
	defer p.wg.Done()
	for {
		select {
		case i := <-grow:
			p.wg.Add(1)
			go p.workers[i].loop()
		case <-quit:
			return
		}
	}
}

// retire is the shrink safe point, entered from the worker loop when the
// state word reads retiring. The worker re-publishes every task its deque
// still holds through the injector so the remaining fleet picks the work
// up; a full injector falls back to executing the task inline right here,
// so shrinking can never lose or drop a submission's task. (The handoff
// slot needs no sweep: only worker 0 receives root handoffs, and worker 0
// never retires — fleet >= 1 always.) It reports whether retirement
// completed (the loop returns) or a concurrent grow reactivated the
// worker (the loop continues).
//
//abp:owner the retiring worker's goroutine is still its deque's only owner
func (w *Worker) retire() bool {
	p := w.pool
	fault.Point(fpResizeBeforeRetire)
	for {
		t := w.dq.PopBottom()
		if t == nil {
			break
		}
		fault.Point(fpResizeBeforeHandoff)
		if w.republish(t) {
			continue
		}
		// Every shard full: run the task here instead of losing it. The
		// task may Spawn (refilling this deque), which is why the drain is
		// a loop and not a single sweep.
		w.execOrDrop(t)
	}
	if !w.state.CompareAndSwap(workerRetiring, workerRetired) {
		// A grow reactivated this worker mid-retirement.
		return false
	}
	p.retiredN.Add(1)
	// Hand the wake baton on. This worker may have consumed (or caused a
	// producer's signalWork to skip past) a wake token meant for real work
	// — its own re-published tasks included — so one extra signal here
	// keeps the no-lost-wakeup invariant; a spurious signal is harmless.
	p.signalWork()
	return true
}

// republish hands one drained task back through the injector, running the
// producer side of the park/wake Dekker handshake: the push must be
// visible before the wake scan reads parked flags, the same contract
// Submit and Spawn honor. Reports whether the injector accepted the task.
//
//abp:handshake store=pushInjector load=signalWork
func (w *Worker) republish(t *Task) bool {
	if !w.pool.pushInjector(t) {
		return false
	}
	w.pool.signalWork()
	return true
}
