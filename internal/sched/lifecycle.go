// Worker lifecycle: backoff and parking for idle workers.
//
// The paper's Figure 3 loop spins forever — pop, yield, steal — because in
// its model the kernel already charges a spinning thief's steal attempts
// against the schedule's bound; burning the processor is the analysis's
// problem, not the program's. On a live machine it is very much the
// program's problem: every idle worker pins a full core at 100%. This file
// adds the standard remedy, the one Go's own runtime (findRunnable ->
// stopm/wakep) and ForkJoinPool use atop the same ABP-style deques: after
// parkThreshold consecutive failed steal attempts a worker backs off with
// exponentially growing naps, then parks on a per-worker token channel.
// Spawn and Submit wake one idle worker whenever they make new work
// available.
//
// Both idle phases — the timed backoff naps and the final park — block in
// the same place (park) and are equally interruptible: the worker counts
// itself idle, publishes its parked flag, re-checks for work, and only then
// sleeps, selecting on its wake token. Before this was unified, a worker
// napping in backoff was invisible to signalWork (not parked, idle at 0),
// so a submission arriving mid-nap silently waited out the remaining sleep
// — up to ~127µs of per-request wake latency in serve mode, the satellite
// bug this file's history fixed.
//
// Lost-wakeup freedom is the usual Dekker argument over Go's sequentially
// consistent atomics: a producer publishes work (an atomic store inside the
// deque's PushBottom, or the injector's reservation CAS) and then reads the
// parked flags; an idle worker publishes its parked flag and then re-scans
// every injector shard and deque. Whichever order the two interleave in,
// one side must observe the other, so work published while a worker is
// going to sleep either earns that worker a wake token or is seen by its
// pre-block recheck. Spurious wake tokens are harmless (the worker scans,
// finds nothing, and goes back to sleep); only lost ones would be fatal.
// The argument is indifferent to whether the sleep is timed: a nap that
// can only be cut short errs on the side of waking, never of sleeping.
//
// Termination needs no flag-spinning either: the session teardown
// (Pool.endSession) closes the session's quit channel, waking every
// parked or napping worker at once so the pool shuts down cleanly — the
// stopped flag is only the loop-exit condition, never a spin target.
//
// The paper's yield discipline is preserved where it matters: in the hot
// phase (below the threshold) a thief still calls runtime.Gosched between
// steal attempts, exactly Figure 3's yield-then-steal round. Parking only
// ever happens when every injector shard and deque is observably empty,
// i.e. when the steal the paper would have made was guaranteed to fail
// anyway.
package sched

import (
	"runtime"
	"time"

	"worksteal/internal/fault"
)

const (
	// backoffSteps naps of backoffBase<<step precede parking
	// (1us..64us, ~127us total): work arriving shortly after a worker
	// goes idle is picked up with microsecond latency, while longer
	// idle gaps cost one park/wake round trip.
	backoffSteps = 7
	backoffBase  = time.Microsecond

	// injectorPollPeriod is how often (in loop iterations) a busy worker
	// checks the injector shards ahead of its local deque, bounding how
	// long a deep local backlog can starve external submissions — the Go
	// runtime's schedule()-checks-the-global-queue-every-61-ticks idiom,
	// prime for the same reason (avoids resonance with task-tree shapes).
	injectorPollPeriod = 61
)

// loop is the Figure 3 scheduling loop — pop the bottom of the local
// deque; when empty, yield and steal from the top of a random victim —
// extended with the injector polls that feed external submissions in and
// wrapped in the backoff/parking lifecycle described above.
//
//abp:owner the worker goroutine is its deque's single owner for the run
func (w *Worker) loop() {
	defer w.pool.wg.Done()
	defer w.recoverLoopPanic()
	if w.pool.cfg.Pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	fault.Point(fpLoopEnter)
	// Root fallback from startSession. execOrDrop keeps an aborted session's
	// root (e.g. a pre-cancelled RunContext) from executing into a dead
	// run: it is discarded and counted instead.
	//abp:race-ignore startSession writes handoff before forking the fleet manager, and the manager forks every mid-session loop: the composed fork edges (Go MM transitivity) order the write before this read; the analyzer does not chase nested fork chains
	if t := w.handoff.Get(); t != nil {
		w.handoff.Set(nil)
		w.execOrDrop(t)
	}
	fails := 0
	ticks := 0
	for !w.pool.stopped.Load() {
		// The shrink safe point (resize.go): a worker marked retiring
		// re-publishes its deque through the injector and exits — unless a
		// concurrent grow reactivated it, in which case retire reports
		// false and the loop carries on. Checked every iteration, so a
		// retiring worker never parks without first noticing the mark.
		if w.state.Load() == workerRetiring && w.retire() {
			return
		}
		w.progress.AddOwner(w.relaxed, 1)
		ticks++
		var t *Task
		if ticks%injectorPollPeriod == 0 {
			// Fairness poll: with a non-empty local deque the injector
			// would otherwise only be drained by idle workers.
			t = w.pollInjector()
		}
		if t == nil {
			t = w.dq.PopBottom()
		}
		if t == nil {
			if !w.pool.cfg.DisableYield {
				w.yields.AddOwner(w.relaxed, 1)
				runtime.Gosched()
			}
			fault.Point(fpLoopBeforeSteal)
			// Idle: drain submissions ahead of stealing — an injected root
			// is the oldest work in the system — then try one victim.
			if t = w.pollInjector(); t == nil {
				t = w.stealOnce()
			}
		}
		if t != nil {
			fails = 0
			w.execOrDrop(t)
			continue
		}
		fails++
		if w.idleWait(fails) {
			fails = 0 // woken by a work signal: restart the hot phase
		}
	}
}

// recoverLoopPanic is the recover-and-terminate path for a panic raised by
// the loop machinery itself — outside exec's per-task recover, e.g. an
// injected fault.Point panic between tasks. Without it such a panic would
// escape the worker goroutine and crash the process (and, were it somehow
// swallowed, strand pending counters above zero and wedge every waiter).
// Instead it is treated as an engine failure: every in-flight submission
// aborts with the panic value (waking parked workers, blocked Joins, and
// Handle waiters), and the session controller — Run's waiter or Serve's
// select — re-panics with the original value after the workers drain.
func (w *Worker) recoverLoopPanic() {
	if r := recover(); r != nil {
		w.pool.engineFail(r)
	}
}

// idleWait escalates an idle worker through the lifecycle: hot spinning
// below parkThreshold, then exponentially growing interruptible naps, then
// parking outright. It reports whether the worker was woken by a work
// signal (the caller restarts the hot phase); a nap that merely timed out
// returns false so the escalation continues.
func (w *Worker) idleWait(fails int) bool {
	p := w.pool
	if p.cfg.DisableParking {
		return false
	}
	step := fails - p.parkThreshold
	if step < 0 {
		return false
	}
	if step < backoffSteps {
		return w.park(backoffBase << step)
	}
	return w.park(0)
}

// park blocks the worker — for at most d if d > 0 (a backoff nap), else
// until signalled — and reports whether it was woken by a work signal. Both
// variants run the full Dekker protocol with signalWork: publish the idle
// count and the parked flag, then re-check for work, and only then sleep on
// the wake token. The handshake directive makes abpvet verify that
// ordering: the parked store must dominate the anyVisibleWork re-scan, and
// every access to the flag must be atomic. The session quit channel
// (closed by endSession) bounds every sleep at shutdown.
//
//abp:handshake store=parked load=anyVisibleWork
func (w *Worker) park(d time.Duration) bool {
	p := w.pool
	p.idle.Add(1)
	w.parked.Store(true)
	if p.stopped.Load() || w.anyVisibleWork() {
		w.parked.Store(false)
		p.idle.Add(-1)
		return false
	}
	woke := false
	if d > 0 {
		// The backoff-visibility chaos window: idle count and parked flag
		// are published and the re-check passed, but the nap has not
		// begun. A submission arriving now must find this worker
		// signallable (the satellite-1 regression test freezes here).
		fault.Point(fpBackoffBeforeSleep)
		start := time.Now()
		timer := time.NewTimer(d)
		select {
		case <-w.parkCh:
			w.wakes.Add(1)
			woke = true
		case <-timer.C:
		// Session shutdown: don't sleep out the nap.
		//abp:race-ignore quitCh is written in startSession before the fleet manager fork, and every mid-session loop is forked by the manager: the composed fork edges order the write before this read; the analyzer does not chase nested fork chains
		case <-p.quitCh:
		}
		timer.Stop()
		w.backoffNanos.Add(int64(time.Since(start)))
	} else {
		w.parks.Add(1)
		// The window the abort/park chaos test targets: parked is
		// published and the re-check passed, but the worker is not yet
		// blocked. A suspension here models preemption between those two
		// instructions; a shutdown arriving meanwhile must still wake the
		// worker.
		fault.Point(fpParkBeforeSleep)
		select {
		case <-w.parkCh:
			w.wakes.Add(1)
			woke = true
		case <-p.quitCh: // session shutdown (run ended, Serve stopping, or abort)
		}
	}
	w.parked.Store(false)
	p.idle.Add(-1)
	return woke
}

// signalWork wakes one idle worker — parked or napping in backoff — if any.
// The caller must already have made the new work visible (pushed it onto a
// deque or reserved an injector cell); see the Dekker argument in the file
// comment. The token channel has capacity one, so a signal to a worker
// with a pending token is absorbed rather than lost: the send sits in a
// select with default and can never block the producer.
//
// The scan starts at a rotating cursor rather than index zero: a fixed
// start always wakes the lowest-indexed parked worker, so under a trickle
// of submissions worker 0 absorbs every wake while the rest of the fleet
// sleeps cold (stale deque affinity, cold stacks). Rotating spreads wakes
// across the fleet; the cursor is a plain consumed Add like shardRR's,
// with no fairness guarantee needed beyond breaking the fixed bias.
//
//abp:nonblocking
func (p *Pool) signalWork() {
	if p.idle.Load() == 0 {
		return
	}
	n := len(p.workers)
	start := int(p.wakeRR.Add(1)-1) % n
	for i := 0; i < n; i++ {
		w := p.workers[(start+i)%n]
		// Only active workers are wake targets: a token delivered to a
		// parked-but-retiring worker could be consumed by a wake that ends
		// in retirement rather than work — a lost wakeup for the rest of
		// the (still-parked) fleet. Retiring workers are woken by Resize
		// itself, and a completed retire passes any absorbed signal on
		// (retire's final signalWork in resize.go).
		if w.state.Load() == workerActive && w.parked.Load() {
			select {
			case w.parkCh <- struct{}{}:
			default:
			}
			return
		}
	}
}
