// Package abplayout exercises the cache-layout analyzer: false sharing
// between an arbitration-hot word and its line neighbors, miscounted
// complement pads, contention-hot element packing, line-straddling CAS
// aggregates, the //abp:layout-ignore waiver, and the accepted shapes
// (correct pads, owner-only clusters, generic structs).
package abplayout

import "sync/atomic"

// A thief-CAS'd head sharing its line with a counter every caller
// increments: the counter's writes invalidate the line the CAS
// contenders spin on.
type lockFree struct {
	head  atomic.Uint64
	count atomic.Int64 // want `false sharing in lockFree: head \(cas-hot\) and count \(shared-write\) share cache line 0`
}

func (q *lockFree) take() bool {
	q.count.Add(1)
	h := q.head.Load()
	return q.head.CompareAndSwap(h, h+1)
}

// The same shape with a correctly counted complement pad: count starts at
// offset 64, so the pad still isolates and nothing is flagged.
type padded struct {
	head  atomic.Uint64
	_     [56]byte
	count atomic.Int64
}

func (q *padded) take() bool {
	q.count.Add(1)
	h := q.head.Load()
	return q.head.CompareAndSwap(h, h+1)
}

// A full-line blank pad isolates no matter where it lands: head and count
// end up a whole line apart even though count is not line-aligned.
type isolated struct {
	head  atomic.Uint64
	_     [64]byte
	count atomic.Int64
}

func (q *isolated) take() bool {
	q.count.Add(1)
	h := q.head.Load()
	return q.head.CompareAndSwap(h, h+1)
}

// The sharing is deliberate here and waived: a justified
// //abp:layout-ignore on the line above the flagged field suppresses it.
type waived struct {
	head atomic.Uint64
	//abp:layout-ignore head and tail are co-written in one ordered sequence by the winning caller
	tail atomic.Int64
}

func (q *waived) take() bool {
	q.tail.Add(1)
	h := q.head.Load()
	return q.head.CompareAndSwap(h, h+1)
}

// A pad whose arithmetic went stale: 40 bytes leaves tail at offset 48,
// which fails to line-align it and keeps it on the line the CAS'd head
// owns.
type stale struct {
	head atomic.Uint64
	_    [40]byte      // want `miscounted pad in stale: the 40-byte pad leaves tail at offset 48`
	tail atomic.Uint64 // want `false sharing in stale: head \(cas-hot\) and tail \(read-mostly\) share cache line 0`
}

func (q *stale) take() uint64 {
	h := q.head.Load()
	if q.head.CompareAndSwap(h, h+1) {
		return q.tail.Load()
	}
	return 0
}

// Sixteen-byte MPMC cells pack four per line: a producer publishing cell
// i and a consumer releasing cell i-1 dirty the same line.
type cell struct {
	seq atomic.Uint64
	val atomic.Pointer[int]
}

type ring struct {
	mask  uint64
	cells []cell // want `element packing in ring: 16-byte cell elements of cells pack 4 per cache line`
}

func (r *ring) push(i uint64, v *int) {
	r.cells[i&r.mask].val.Store(v)
	r.cells[i&r.mask].seq.Store(i + 1)
}

func (r *ring) pop(i uint64) *int {
	if r.cells[i&r.mask].seq.Load() != i+1 {
		return nil
	}
	return r.cells[i&r.mask].val.Load()
}

// A CAS-hot aggregate starting at offset 56 straddles the line boundary:
// one arbitration word priced at a single line costs two.
type striped struct {
	hdr   [56]byte
	locks [2]atomic.Uint64 // want `hot CAS word locks of striped straddles cache lines 0 and 1`
}

func (s *striped) lock(i int) bool { return s.locks[i].CompareAndSwap(0, 1) }

// A declared Dekker handshake marks its words arbitration-hot even
// without a CAS: the stored flag is the protocol's publish side, and the
// blind counter next to it dirties the line every peer polls.
type dekker struct {
	flag atomic.Uint64
	done atomic.Int64 // want `false sharing in dekker: flag \(handshake-hot\) and done \(shared-write\) share cache line 0`
}

// publish stores the flag, then re-checks the peer (Dekker order).
//
//abp:handshake store=flag load=peerReady
func (d *dekker) publish(peer *dekker) bool {
	d.flag.Store(1)
	return peer.peerReady()
}

func (d *dekker) peerReady() bool { return d.flag.Load() != 0 }

func (d *dekker) finish() { d.done.Add(1) }

// Owner-only counters sharing a line is the idiom, not the bug: both
// fields are written receiver-direct inside an audited owner context, so
// no cross-party invalidation exists to flag.
type stats struct {
	a atomic.Int64
	b atomic.Int64
}

// bump runs on the owning goroutine only.
//
//abp:owner the loop goroutine is the sole writer of its stats
func (w *stats) bump() {
	w.a.Add(1)
	w.b.Add(1)
}

// A generic struct with a bare type-parameter field has no concrete
// layout; the analyzer skips it rather than guess.
type box[T any] struct {
	val  T
	mark atomic.Uint64
}

func fill[T any](b *box[T], v T) {
	if b.mark.CompareAndSwap(0, 1) {
		b.val = v
	}
}
