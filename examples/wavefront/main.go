// Wavefront: a real dynamic-programming computation (Levenshtein edit
// distance) expressed directly as a computation dag and executed by the
// Figure 3 scheduler. The grid dag's edges are exactly the DP data
// dependencies, so this is the paper's model applied verbatim to a real
// problem: nodes are instructions (cell updates), threads are rows, spawn
// edges start rows, and sync edges are the column dependencies.
//
// Run with:
//
//	go run ./examples/wavefront -workers 4
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"worksteal/internal/dag"
	"worksteal/internal/sched"
	"worksteal/internal/workload"
)

func editDistanceSerial(a, b string) int {
	rows, cols := len(a)+1, len(b)+1
	dp := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			switch {
			case i == 0:
				dp[j] = j
			case j == 0:
				dp[i*cols] = i
			default:
				cost := 1
				if a[i-1] == b[j-1] {
					cost = 0
				}
				m := dp[(i-1)*cols+j] + 1 // deletion
				if v := dp[i*cols+j-1] + 1; v < m {
					m = v // insertion
				}
				if v := dp[(i-1)*cols+j-1] + cost; v < m {
					m = v // substitution
				}
				dp[i*cols+j] = m
			}
		}
	}
	return dp[rows*cols-1]
}

func main() {
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	size := flag.Int("n", 600, "string length")
	flag.Parse()

	a := strings.Repeat("kitten sitting on a mitten ", *size/27+1)[:*size]
	b := strings.Repeat("sitting kitten with a smitten ", *size/30+1)[:*size]

	start := time.Now()
	want := editDistanceSerial(a, b)
	serial := time.Since(start)

	rows, cols := len(a)+1, len(b)+1
	g := workload.Grid(rows, cols)
	dp := make([]int32, rows*cols)
	start = time.Now()
	res := sched.RunGraph(sched.GraphConfig{
		Graph:   g,
		Workers: *workers,
		// Each dag node computes one DP cell; the grid dag's edges are the
		// exact dependencies, so reads of neighbouring cells are ordered by
		// the scheduler (happens-before via the enabling counters).
		NodeFunc: func(u dag.NodeID) {
			i, j := int(u)/cols, int(u)%cols
			switch {
			case i == 0:
				dp[u] = int32(j)
			case j == 0:
				dp[u] = int32(i)
			default:
				cost := int32(1)
				if a[i-1] == b[j-1] {
					cost = 0
				}
				m := dp[(i-1)*cols+j] + 1
				if v := dp[i*cols+j-1] + 1; v < m {
					m = v
				}
				if v := dp[(i-1)*cols+j-1] + cost; v < m {
					m = v
				}
				dp[u] = m
			}
		},
	})
	parallel := time.Since(start)

	got := int(dp[rows*cols-1])
	if got != want {
		panic(fmt.Sprintf("edit distance mismatch: %d != %d", got, want))
	}
	fmt.Printf("edit distance of two %d-char strings: %d\n", *size, got)
	fmt.Printf("dag: T1=%d cells, Tinf=%d (wavefront depth), parallelism %.1f\n",
		g.Work(), g.CriticalPath(), g.Parallelism())
	fmt.Printf("serial   %v\n", serial)
	fmt.Printf("parallel %v (%d steals, %d nodes)\n", parallel, res.Steals, res.NodesExecuted)
}
