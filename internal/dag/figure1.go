package dag

// Figure1 reconstructs the example computation dag of Figure 1 of the paper:
// two threads, a spawn edge, a semaphore-style synchronization edge, and a
// join edge.
//
//	root thread:  x1 -> x2 -> x3 -> x4 -> x10 -> x11
//	child thread: x5 -> x6 -> x7 -> x8 -> x9
//	spawn edge:   x2 -> x5   (x2 spawns the child thread)
//	sync edge:    x6 -> x4   (x4 is the P/wait, x6 the V/signal of a semaphore)
//	join edge:    x9 -> x10  (the child joins the root)
//
// The scenarios discussed in Section 3.1 of the paper all arise here: a
// process executing the root thread blocks at x4 if x6 has not executed yet
// (Block); executing x6 enables the previously blocked root thread (Enable);
// executing x2 spawns the child (Spawn); and executing x9 enables x10 and
// dies simultaneously (Enable+Die: the join).
//
// The dag has work T1 = 11, critical-path length Tinf = 9 (the path
// x1 x2 x5 x6 x7 x8 x9 x10 x11) and parallelism T1/Tinf = 11/9.
//
// Figure1 uses zero-based NodeIDs, so the paper's x_k is NodeID k-1.
func Figure1() *Graph {
	b := NewBuilder()
	b.SetLabel("figure1")
	root := b.NewThread()
	x1 := b.AddNode(root)
	x2 := b.AddNode(root)
	_ = b.AddNode(root) // x3
	x4 := b.AddNode(root)

	child := b.NewThread()
	x5 := b.AddNode(child)
	b.addEdge(x2, x5, Spawn)
	x6 := b.AddNode(child)
	b.AddChain(child, 2) // x7, x8
	x9 := b.AddNode(child)

	x10 := b.AddNode(root)
	_ = b.AddNode(root) // x11

	b.AddSync(x6, x4)  // semaphore: x4 waits for x6's signal
	b.AddSync(x9, x10) // join: child's last node enables the root's x10

	_ = x1
	return b.MustBuild()
}

// Figure1NodeIDs returns the NodeIDs of the paper's x1..x11 in order, as a
// convenience for tests and the figure regenerator.
func Figure1NodeIDs() []NodeID {
	// Construction order above: x1 x2 x3 x4 | x5 x6 x7 x8 x9 | x10 x11.
	return []NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}
