package apps

import (
	"fmt"
	"math/rand"
	"testing"

	"worksteal/internal/sched"
)

// pigeonhole returns the (unsatisfiable for holes < pigeons) pigeonhole
// formula PHP(pigeons, holes): every pigeon in some hole, no two pigeons in
// one hole.
func pigeonhole(pigeons, holes int) CNF {
	va := func(p, h int) int { return p*holes + h + 1 }
	var clauses [][]int
	for p := 0; p < pigeons; p++ {
		var c []int
		for h := 0; h < holes; h++ {
			c = append(c, va(p, h))
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, []int{-va(p1, h), -va(p2, h)})
			}
		}
	}
	return CNF{NumVars: pigeons * holes, Clauses: clauses}
}

// random3SAT generates a random 3-SAT instance.
func random3SAT(rng *rand.Rand, vars, clauses int) CNF {
	f := CNF{NumVars: vars}
	for i := 0; i < clauses; i++ {
		c := make([]int, 3)
		for j := range c {
			v := 1 + rng.Intn(vars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// serialSAT is an independent brute-force reference for small instances.
func serialSAT(f CNF) bool {
	assign := make([]bool, f.NumVars)
	var try func(v int) bool
	try = func(v int) bool {
		if v == f.NumVars {
			return f.Eval(assign)
		}
		assign[v] = true
		if try(v + 1) {
			return true
		}
		assign[v] = false
		return try(v + 1)
	}
	return try(0)
}

func solveOn(t *testing.T, f CNF, workers, depth int) ([]bool, bool) {
	t.Helper()
	var model []bool
	var ok bool
	sched.New(sched.Config{Workers: workers}).Run(func(w *sched.Worker) {
		model, ok = SolveSAT(w, f, depth)
	})
	if ok && !f.Eval(model) {
		t.Fatalf("returned model does not satisfy the formula")
	}
	return model, ok
}

func TestSATTrivial(t *testing.T) {
	sat := CNF{NumVars: 2, Clauses: [][]int{{1, 2}, {-1, 2}}}
	if _, ok := solveOn(t, sat, 2, 4); !ok {
		t.Fatal("satisfiable formula reported UNSAT")
	}
	unsat := CNF{NumVars: 1, Clauses: [][]int{{1}, {-1}}}
	if _, ok := solveOn(t, unsat, 2, 4); ok {
		t.Fatal("unsatisfiable formula reported SAT")
	}
}

func TestSATPigeonhole(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if _, ok := solveOn(t, pigeonhole(4, 3), workers, 6); ok {
			t.Fatalf("workers=%d: PHP(4,3) reported SAT", workers)
		}
		if _, ok := solveOn(t, pigeonhole(3, 3), workers, 6); !ok {
			t.Fatalf("workers=%d: PHP(3,3) reported UNSAT", workers)
		}
	}
}

func TestSATMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 40; trial++ {
		vars := 4 + rng.Intn(8)
		f := random3SAT(rng, vars, 2+rng.Intn(5*vars))
		want := serialSAT(f)
		for _, depth := range []int{0, 4} {
			_, got := solveOn(t, f, 4, depth)
			if got != want {
				t.Fatalf("trial %d depth %d: solver says %v, brute force says %v\nformula: %+v",
					trial, depth, got, want, f)
			}
		}
	}
}

func TestSATEarlyTermination(t *testing.T) {
	// A formula with a huge number of models: the parallel search should
	// stop after the first one rather than exploring the whole tree.
	f := CNF{NumVars: 20}
	f.Clauses = append(f.Clauses, []int{1, 2})
	var nodes int64
	sched.New(sched.Config{Workers: 4}).Run(func(w *sched.Worker) {
		_, ok, n := SolveSATStats(w, f, 6)
		if !ok {
			t.Error("UNSAT on a near-trivial formula")
		}
		nodes = n
	})
	if nodes > 1<<12 {
		t.Fatalf("explored %d nodes; early termination failed", nodes)
	}
}

func TestSATUnitPropagationDrivesChains(t *testing.T) {
	// x1, x1->x2, x2->x3, ..., forces all true by propagation alone.
	const n = 30
	f := CNF{NumVars: n, Clauses: [][]int{{1}}}
	for i := 1; i < n; i++ {
		f.Clauses = append(f.Clauses, []int{-i, i + 1})
	}
	var nodes int64
	sched.New(sched.Config{Workers: 2}).Run(func(w *sched.Worker) {
		model, ok, nn := SolveSATStats(w, f, 4)
		nodes = nn
		if !ok {
			t.Error("UNSAT")
			return
		}
		for i, v := range model {
			if !v {
				t.Errorf("variable %d false; propagation should force true", i+1)
			}
		}
	})
	if nodes != 1 {
		t.Fatalf("explored %d nodes; the chain should resolve by propagation at the root", nodes)
	}
}

func TestCNFValidate(t *testing.T) {
	cases := map[string]CNF{
		"negative vars": {NumVars: -1},
		"empty clause":  {NumVars: 2, Clauses: [][]int{{}}},
		"zero literal":  {NumVars: 2, Clauses: [][]int{{0}}},
		"out of range":  {NumVars: 2, Clauses: [][]int{{3}}},
	}
	for name, f := range cases {
		if f.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := CNF{NumVars: 2, Clauses: [][]int{{1, -2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
}

func TestCNFEval(t *testing.T) {
	f := CNF{NumVars: 2, Clauses: [][]int{{1, -2}}}
	if !f.Eval([]bool{true, true}) || !f.Eval([]bool{false, false}) {
		t.Error("satisfying assignments rejected")
	}
	if f.Eval([]bool{false, true}) {
		t.Error("falsifying assignment accepted")
	}
	if f.Eval([]bool{true}) {
		t.Error("short assignment accepted")
	}
}

func BenchmarkSATPigeonhole(b *testing.B) {
	f := pigeonhole(6, 5)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := sched.New(sched.Config{Workers: workers})
			for i := 0; i < b.N; i++ {
				p.Run(func(w *sched.Worker) {
					if _, ok := SolveSAT(w, f, 8); ok {
						b.Fatal("PHP(6,5) reported SAT")
					}
				})
			}
		})
	}
}
