// Package atomicmix is the analysistest fixture for the atomicmix
// analyzer: raw fields used with function-style atomics are flagged, mixed
// atomic/plain access is flagged, and wrapper types plus purely plain
// fields are accepted.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64 // raw int manipulated with function-style atomics
	mixed int64 // atomics in flagged(), plain access too
	flag  int32
	ok    atomic.Int64 // wrapper type: the standard the analyzer steers to
	plain int64        // never touched atomically
}

func flagged(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)     // want `field hits is manipulated with atomic.AddInt64`
	atomic.StoreInt32(&c.flag, 1)   // want `field flag is manipulated with atomic.StoreInt32`
	n := atomic.LoadInt64(&c.mixed) // want `field mixed is manipulated with atomic.LoadInt64`
	c.mixed = n + 1                 // want `plain access to field mixed`
	return n
}

func accepted(c *counters) int64 {
	c.ok.Add(1) // wrapper type: atomic by construction, never flagged
	c.plain++   // plain field accessed only plainly: fine
	if c.plain > 3 {
		c.plain = 0
	}
	return c.ok.Load()
}

var _ = flagged
var _ = accepted
