package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"worksteal/internal/lint"
)

// The exhaustive flag/format matrix lives in cmd/abpvet's tests — the two
// commands share lint.Tool, so abplint's tests pin only what is specific
// to it: the name on its diagnostics, the full-suite -list, and that the
// newest analyzer classes really flow through this front end.

// runCLI invokes the command in process and returns its exit status and
// captured streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitCleanIsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, ".")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings: %q", stdout)
	}
}

func TestListNamesAllTwelve(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	all := lint.All()
	if len(all) != 12 {
		t.Fatalf("suite has %d analyzers, want 12", len(all))
	}
	for _, a := range all {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

func TestErrorsCarryOwnName(t *testing.T) {
	code, _, stderr := runCLI(t, "./no/such/dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "abplint:") {
		t.Errorf("operational error not attributed to abplint: %q", stderr)
	}
}

// TestLivenessFindingsFlowThrough runs the full suite over the seeded
// liveness fixture: the abpwait findings must surface through this front
// end with their analyzer name attached, alongside the rest of the suite.
func TestLivenessFindingsFlowThrough(t *testing.T) {
	const seededWaitDir = "../../internal/lint/testdata/src/seededwait"
	code, stdout, _ := runCLI(t, "-json", "-C", seededWaitDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s", code, stdout)
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	waitFindings := 0
	for _, f := range rep.Findings {
		if f.Analyzer == "abpwait" {
			waitFindings++
		}
	}
	if waitFindings < 2 {
		t.Fatalf("abpwait findings = %d, want >= 2 (naked wait and missed signal): %+v",
			waitFindings, rep.Findings)
	}
}
