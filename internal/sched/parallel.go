package sched

// ParallelFor executes body(i) for every i in [lo, hi), splitting the range
// recursively until pieces are at most grain wide. Splitting forks the right
// half and descends into the left, so un-stolen execution is a plain
// left-to-right loop.
func ParallelFor(w *Worker, lo, hi, grain int, body func(i int)) {
	if grain < 1 {
		grain = 1
	}
	for hi-lo > grain {
		mid, end := lo+(hi-lo)/2, hi // copies: the closure must not see hi's mutation below
		right := Fork(w, func(inner *Worker) struct{} {
			ParallelFor(inner, mid, end, grain, body)
			return struct{}{}
		})
		hi = mid
		defer right.Join(w)
	}
	for i := lo; i < hi; i++ {
		body(i)
	}
}

// Reduce computes combine over leaf(i) for i in [lo, hi) with a parallel
// divide-and-conquer tree. combine must be associative; leaves are combined
// left to right.
func Reduce[T any](w *Worker, lo, hi, grain int, leaf func(i int) T, combine func(a, b T) T) T {
	if grain < 1 {
		grain = 1
	}
	if hi <= lo {
		var zero T
		return zero
	}
	if hi-lo <= grain {
		acc := leaf(lo)
		for i := lo + 1; i < hi; i++ {
			acc = combine(acc, leaf(i))
		}
		return acc
	}
	mid := lo + (hi-lo)/2
	right := Fork(w, func(inner *Worker) T {
		return Reduce(inner, mid, hi, grain, leaf, combine)
	})
	left := Reduce(w, lo, mid, grain, leaf, combine)
	return combine(left, right.Join(w))
}

// Map fills out[i] = fn(i) for i in [0, len(out)) in parallel.
func Map[T any](w *Worker, out []T, grain int, fn func(i int) T) {
	ParallelFor(w, 0, len(out), grain, func(i int) { out[i] = fn(i) })
}
