module worksteal

go 1.22
