// Package fault is a zero-dependency failpoint framework for the chaos
// experiments: named injection points compiled into the hot paths of the
// ABP/Chase-Lev deques and the scheduler's worker lifecycle, where a test
// (or cmd/abpbench -experiment chaos) can arm delays, yields, panics, or
// indefinite suspensions.
//
// The point of the exercise is the paper's central systems claim (§1, §3.2,
// §6): the deque is *non-blocking*, so a process stalled by the kernel at
// any instruction — even between loading age and issuing the CAS inside
// popTop — cannot prevent any other process from completing its own
// operation. The instruction-level simulator (package sim) proves this in a
// synchronous model; the fault layer is the instrument that demonstrates it
// dynamically on the native pool, by freezing a real goroutine at a real
// instruction boundary and watching the others finish the computation
// (internal/sched's chaos tests, DESIGN.md §9, the native mirror of
// experiment E8).
//
// # Fast path
//
// A disabled failpoint must be free enough to leave compiled into
// production hot paths. Point's fast path is a single atomic load of a
// package-level counter of armed rules: when zero (the steady state) it
// returns immediately, with no map lookup, no allocation, and no lock. The
// overhead gate in overhead_test.go (run by CI's chaos job) asserts this
// stays in the low-nanosecond range; the deque microbenchmarks
// (BenchmarkDequePushPopBottom) bound the end-to-end effect.
//
// # Armed semantics
//
// Arming a point deliberately suspends the non-blocking property — that is
// the experiment, not a bug: an armed Point may sleep, panic, or block
// until Resume. The abpvet nonblocking analyzer therefore permits exactly
// the Point call (the disabled fast path) inside //abp:nonblocking
// functions and flags every other use of this package there.
//
// Trigger decisions are made under the registry lock with a rand.Rand
// seeded from Rule.Seed, so given the same sequence of hits a rule fires
// deterministically. (The interleaving of *which* goroutine hits a point
// when remains up to the Go scheduler — determinism is per hit sequence,
// matching the paper's any-adversary stance.)
package fault

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Action selects what an armed point does when its trigger fires.
type Action uint8

const (
	// ActionDelay sleeps for Rule.Delay, modeling a preemption that ends.
	ActionDelay Action = iota
	// ActionYield calls runtime.Gosched, the smallest possible stall.
	ActionYield
	// ActionPanic panics with an InjectedPanic, for crash-path testing.
	ActionPanic
	// ActionSuspend blocks the goroutine until Resume (or Reset) releases
	// it — the adversarial kernel that stops a process indefinitely.
	ActionSuspend
)

// String returns the spec-syntax name of the action.
func (a Action) String() string {
	switch a {
	case ActionDelay:
		return "delay"
	case ActionYield:
		return "yield"
	case ActionPanic:
		return "panic"
	case ActionSuspend:
		return "suspend"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// InjectedPanic is the value ActionPanic panics with, so tests and recover
// paths can distinguish injected crashes from real ones.
type InjectedPanic struct{ Point string }

func (e InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic at %s", e.Point)
}

// Rule arms one injection point. The zero trigger fields mean "fire on
// every hit"; OneShot, Times, EveryNth and Prob restrict that:
//
//   - OneShot is shorthand for Times=1.
//   - Times > 0 fires only the first Times eligible hits.
//   - EveryNth > 0 makes only every nth hit eligible (1st, n+1th, ...).
//   - Prob in (0,1] makes each hit eligible with that probability, drawn
//     from a rand.Rand seeded with Seed (deterministic per hit sequence).
//
// EveryNth and Prob compose (both must pass); Times then caps the total.
type Rule struct {
	Action Action
	// Delay is the sleep for ActionDelay (default 100µs).
	Delay time.Duration
	// Triggers; see the struct comment.
	OneShot  bool
	Times    int
	EveryNth int
	Prob     float64
	// Seed seeds the probability draw; 0 means a fixed default.
	Seed int64
}

// rule is the armed state behind one point name.
type rule struct {
	cfg       Rule
	hits      int64
	fired     int64
	rng       *rand.Rand
	suspended int
	resume    chan struct{} // closed by Resume/Reset; receive = released
	resumed   bool
}

var (
	// armed counts armed rules. Point's disabled fast path is one atomic
	// load of this counter; everything else lives behind mu.
	armed atomic.Int32

	mu      sync.Mutex
	rules   = map[string]*rule{}
	catalog = map[string]string{} // point name -> description (Register)
)

// Point is an injection site. Instrumented code calls it with a constant
// name; when no rule is armed anywhere it is a single atomic load and a
// predicted branch. When a rule armed for name fires, Point performs the
// rule's action — which may sleep, panic, or block until Resume.
//
//abp:nonblocking
func Point(name string) {
	if armed.Load() == 0 {
		return
	}
	slowPoint(name)
}

// slowPoint is the armed path: consult the registry, decide the trigger,
// perform the action.
func slowPoint(name string) {
	mu.Lock()
	r := rules[name]
	if r == nil {
		mu.Unlock()
		return
	}
	r.hits++
	if !r.eligible() {
		mu.Unlock()
		return
	}
	r.fired++
	cfg := r.cfg
	switch cfg.Action {
	case ActionSuspend:
		r.suspended++
		resume := r.resume
		mu.Unlock()
		<-resume
		mu.Lock()
		r.suspended--
		mu.Unlock()
		return
	}
	mu.Unlock()
	switch cfg.Action {
	case ActionDelay:
		d := cfg.Delay
		if d == 0 {
			d = 100 * time.Microsecond
		}
		time.Sleep(d)
	case ActionYield:
		runtime.Gosched()
	case ActionPanic:
		panic(InjectedPanic{Point: name})
	}
}

// eligible applies the trigger to the current hit. Caller holds mu.
func (r *rule) eligible() bool {
	times := r.cfg.Times
	if r.cfg.OneShot && times == 0 {
		times = 1
	}
	if times > 0 && r.fired >= int64(times) {
		return false
	}
	if n := r.cfg.EveryNth; n > 0 && (r.hits-1)%int64(n) != 0 {
		return false
	}
	if p := r.cfg.Prob; p > 0 && r.rng.Float64() >= p {
		return false
	}
	return true
}

// Enable arms name with r, replacing any existing rule (and releasing any
// goroutines suspended under the old one, so re-arming cannot strand them).
func Enable(name string, r Rule) {
	if r.Prob < 0 || r.Prob > 1 {
		panic(fmt.Sprintf("fault: probability %v out of [0,1]", r.Prob))
	}
	seed := r.Seed
	if seed == 0 {
		seed = 0xFA17
	}
	mu.Lock()
	defer mu.Unlock()
	if old := rules[name]; old != nil {
		old.release()
	} else {
		armed.Add(1)
	}
	rules[name] = &rule{
		cfg:    r,
		rng:    rand.New(rand.NewSource(seed)),
		resume: make(chan struct{}),
	}
}

// Disable disarms name, releasing any goroutines suspended there. Unknown
// names are a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if r := rules[name]; r != nil {
		r.release()
		delete(rules, name)
		armed.Add(-1)
	}
}

// Resume releases every goroutine currently (and subsequently) suspended
// at name. The rule stays armed but further suspend fires pass through
// immediately; re-arm with Enable for a fresh suspension window.
func Resume(name string) {
	mu.Lock()
	defer mu.Unlock()
	if r := rules[name]; r != nil {
		r.release()
	}
}

// release closes the resume channel once. Caller holds mu.
func (r *rule) release() {
	if !r.resumed {
		r.resumed = true
		close(r.resume)
	}
}

// Reset disarms every point and releases every suspended goroutine. Tests
// arm points and defer Reset so a failing assertion cannot strand a
// suspended worker (and with it the whole pool) into the next test.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name, r := range rules {
		r.release()
		delete(rules, name)
	}
	armed.Store(0)
}

// Suspended reports how many goroutines are currently blocked at name.
// Chaos tests poll it to know the adversary has actually frozen its victim
// before asserting that everyone else still makes progress.
func Suspended(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if r := rules[name]; r != nil {
		return r.suspended
	}
	return 0
}

// Hits reports how many times an armed name has been reached (disabled
// points count nothing — the fast path is deliberately blind).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if r := rules[name]; r != nil {
		return r.hits
	}
	return 0
}

// Fired reports how many times name's trigger has fired.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if r := rules[name]; r != nil {
		return r.fired
	}
	return 0
}

// Register records a compiled-in point in the catalog and returns its name,
// so instrumented packages declare their points as
//
//	var fpPopTopBeforeCAS = fault.Register("deque.popTop.beforeCAS", "...")
//
// and the catalog doubles as the authoritative point inventory
// (cmd/abpbench -experiment chaos prints it; DESIGN.md §9 documents it).
func Register(name, desc string) string {
	mu.Lock()
	defer mu.Unlock()
	catalog[name] = desc
	return name
}

// A PointInfo describes one registered injection point.
type PointInfo struct {
	Name string
	Desc string
}

// Catalog returns every registered point, sorted by name.
func Catalog() []PointInfo {
	mu.Lock()
	defer mu.Unlock()
	out := make([]PointInfo, 0, len(catalog))
	for name, desc := range catalog {
		out = append(out, PointInfo{Name: name, Desc: desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
