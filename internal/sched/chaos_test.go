// Chaos tests: the dynamic counterpart of the paper's non-blocking claim
// (§1, §3.2, §6) and of the simulator's adversary experiment (E8). Each
// test arms a failpoint (internal/fault) compiled into a hot path, freezes
// or crashes a real worker goroutine at a real instruction boundary, and
// asserts the property the paper promises: no stalled process can prevent
// the others from finishing. The mutex-deque control test shows the same
// adversary *does* wedge a blocking implementation, so the suite would
// catch a regression that quietly reintroduced blocking.
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"worksteal/internal/fault"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes, failing the test (after a fault.Reset so no worker stays
// stranded) on timeout.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			fault.Reset()
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(time.Millisecond)
	}
}

var chaosSink atomic.Uint64

// chaosSpin burns a little CPU so benchmark tasks are not pure counter
// increments.
func chaosSpin(n int) {
	x := uint64(2463534242)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	chaosSink.Store(x)
}

// The headline chaos test: suspend a thief between loading age and issuing
// the CAS inside popTop — the exact window the paper's adversary argument
// targets — and assert every task still completes while the thief stays
// frozen. Runs against both non-blocking deques.
func TestChaosSuspendedThiefMidPopTop(t *testing.T) {
	cases := []struct {
		name  string
		kind  DequeKind
		point string // registered in internal/deque
	}{
		{"ABP", DequeABP, "deque.popTop.beforeCAS"},
		{"ChaseLev", DequeChaseLev, "chaselev.popTop.beforeCAS"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer fault.Reset()
			fault.Enable(tc.point, fault.Rule{Action: fault.ActionSuspend, OneShot: true})
			const tasks = 2000
			p := New(Config{Workers: 4, Deque: tc.kind})
			var count atomic.Int64
			done := make(chan struct{})
			go func() {
				defer close(done)
				p.Run(func(w *Worker) {
					g := NewGroup()
					for i := 0; i < tasks; i++ {
						g.Spawn(w, func(*Worker) {
							chaosSpin(100)
							count.Add(1)
						})
					}
					// Don't help until the trap has sprung: with the root
					// refusing to pop, the idle workers must steal from its
					// full deque, and the first popTop that sees an item
					// freezes. (Without this gate the root can drain all
					// 2000 trivial tasks before the thief goroutines are
					// even scheduled, and no steal ever hits the point.)
					for fault.Fired(tc.point) == 0 {
						time.Sleep(100 * time.Microsecond)
					}
					g.Wait(w)
				})
			}()
			// The claim under test: with one worker frozen mid-popTop, the
			// remaining workers drain all the work. Both facts must hold at
			// once — the victim suspended AND every task executed.
			waitFor(t, 20*time.Second, "all tasks done while a thief is frozen mid-popTop", func() bool {
				return fault.Suspended(tc.point) == 1 && count.Load() == tasks
			})
			// Only now release the thief so the run can terminate (wg.Wait
			// needs every worker goroutine to exit).
			fault.Resume(tc.point)
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("run did not terminate after resuming the frozen thief")
			}
			if count.Load() != tasks {
				t.Fatalf("ran %d of %d tasks", count.Load(), tasks)
			}
		})
	}
}

// The falsifying control: the same adversary against the mutex deque. A
// thief suspended inside PopTop holds the victim's lock, so the victim's
// own pushes and pops wedge behind it — progress provably freezes until
// the thief is resumed. This is what the non-blocking deques are for; if
// this test ever starts passing the progress check, the control is broken.
func TestChaosMutexDequeControlStalls(t *testing.T) {
	defer fault.Reset()
	const pt = "mutexdeque.popTop.locked" // registered in internal/deque
	fault.Enable(pt, fault.Rule{Action: fault.ActionSuspend, OneShot: true})
	const tasks = 500
	p := New(Config{Workers: 2, Deque: DequeMutex})
	var count atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(func(w *Worker) {
			// Produce nothing until the thief is frozen inside PopTop —
			// while it holds this worker's deque mutex. (Fired, not
			// Suspended: the suspension may already be over if the test's
			// Resume won a race, and Fired stays up.)
			for fault.Fired(pt) == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			g := NewGroup()
			for i := 0; i < tasks; i++ {
				g.Spawn(w, func(*Worker) { count.Add(1) })
			}
			g.Wait(w)
		})
	}()
	waitFor(t, 10*time.Second, "thief suspended inside the locked PopTop", func() bool {
		return fault.Suspended(pt) == 1
	})
	time.Sleep(100 * time.Millisecond) // let the producer run into the held lock
	c1 := count.Load()
	time.Sleep(250 * time.Millisecond)
	c2 := count.Load()
	if c1 != c2 || c2 == tasks {
		t.Fatalf("mutex-deque pool made progress (%d -> %d of %d) with a thief frozen holding the lock; the blocking control no longer blocks", c1, c2, tasks)
	}
	fault.Resume(pt)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not complete after resuming the lock-holding thief")
	}
	if count.Load() != tasks {
		t.Fatalf("ran %d of %d tasks after resume", count.Load(), tasks)
	}
}

// A panic raised by the loop machinery itself — outside exec's per-task
// recover — must abort the run cleanly (recoverLoopPanic), not crash the
// process or strand wg.Wait, and the pool must stay usable.
func TestChaosLoopPanicTerminatesRun(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fpLoopBeforeSteal, fault.Rule{Action: fault.ActionPanic, OneShot: true})
	p := New(Config{Workers: 4})
	var recovered any
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recovered = recover() }()
		// Root sleeps so the idle workers reach their steal attempts and
		// one of them trips the injected panic between tasks.
		p.Run(func(*Worker) { time.Sleep(20 * time.Millisecond) })
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after an injected worker-loop panic")
	}
	ip, ok := recovered.(fault.InjectedPanic)
	if !ok || ip.Point != fpLoopBeforeSteal {
		t.Fatalf("recovered %v, want InjectedPanic at %s", recovered, fpLoopBeforeSteal)
	}
	var count atomic.Int64
	p.Run(func(w *Worker) {
		for i := 0; i < 50; i++ {
			w.Spawn(func(*Worker) { count.Add(1) })
		}
	})
	if count.Load() != 50 {
		t.Fatalf("pool ran %d of 50 tasks after a loop-panic abort", count.Load())
	}
}

// Regression test for the drain bug: an abort that fires before worker 0
// consumes the root handoff slot used to leave the stale root there, and
// the next Run would execute it as a ghost. drainDeques must clear the
// handoff and count it in TasksDropped.
func TestPoolReuseAfterAbortDropsStaleHandoff(t *testing.T) {
	defer fault.Reset()
	p := New(Config{Workers: 1})
	p.workers[0].dq = &rejectFirstPush{Dequer: p.workers[0].dq}
	// Crash the worker loop at entry — after submitRoot parked the refused
	// root in the handoff slot, before the loop consumes it.
	fault.Enable(fpLoopEnter, fault.Rule{Action: fault.ActionPanic, OneShot: true})
	var stale atomic.Int64
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Run(func(*Worker) { stale.Add(1) })
	}()
	if ip, ok := recovered.(fault.InjectedPanic); !ok || ip.Point != fpLoopEnter {
		t.Fatalf("recovered %v, want InjectedPanic at %s", recovered, fpLoopEnter)
	}
	if p.workers[0].handoff.Get() == nil {
		t.Fatal("test premise broken: the aborted run did not strand a root in the handoff slot")
	}
	dropped0 := p.Stats().TasksDropped
	var count atomic.Int64
	p.Run(func(w *Worker) {
		for i := 0; i < 50; i++ {
			w.Spawn(func(*Worker) { count.Add(1) })
		}
	})
	if got := stale.Load(); got != 0 {
		t.Fatalf("stale root from the aborted run executed %d times in the next run", got)
	}
	if count.Load() != 50 {
		t.Fatalf("second run executed %d of 50 tasks", count.Load())
	}
	if got := p.Stats().TasksDropped - dropped0; got != 1 {
		t.Fatalf("TasksDropped grew by %d across the reuse, want 1 (the stranded handoff)", got)
	}
}

// The lifecycle race between recordPanic's abort and a worker entering
// park: the worker has published its parked flag and passed the re-check
// but has not yet blocked on its token channel when the abort closes. The
// abort must still wake it (park's select covers the abort channel), or
// wg.Wait would hang forever.
func TestAbortWakesWorkerSuspendedEnteringPark(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fpParkBeforeSleep, fault.Rule{Action: fault.ActionSuspend, OneShot: true})
	p := New(Config{Workers: 2})
	var recovered any
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recovered = recover() }()
		p.Run(func(*Worker) {
			// Keep the root busy until the idle worker is frozen in the
			// instruction window between its pre-block re-check and its
			// select, then abort the run under it.
			for fault.Suspended(fpParkBeforeSleep) == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			panic("park-abort race")
		})
	}()
	// Wait until both halves of the race are in place: the worker frozen
	// short of its select, and the abort already published.
	waitFor(t, 10*time.Second, "worker frozen entering park and run aborted", func() bool {
		return fault.Suspended(fpParkBeforeSleep) == 1 && p.stopped.Load()
	})
	fault.Resume(fpParkBeforeSleep)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung: the abort was lost on a worker suspended entering park")
	}
	if recovered != "park-abort race" {
		t.Fatalf("recovered %v, want the root panic value", recovered)
	}
}

// The watchdog must surface a worker frozen mid-task (here: suspended just
// before entering the task function) via OnStall and Stats.StallsDetected,
// while exempting the healthy parked worker.
func TestWatchdogSurfacesStalledWorker(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fpExecBeforeRun, fault.Rule{Action: fault.ActionSuspend, OneShot: true})
	reports := make(chan StallReport, 16)
	const window = 25 * time.Millisecond
	p := New(Config{Workers: 2, StallTimeout: window, OnStall: func(r StallReport) {
		select {
		case reports <- r:
		default:
		}
	}})
	var count atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(func(*Worker) { count.Add(1) })
	}()
	var rep StallReport
	select {
	case rep = <-reports:
	case <-time.After(10 * time.Second):
		fault.Reset()
		t.Fatal("watchdog never reported the frozen worker")
	}
	if rep.Worker < 0 || rep.Worker >= 2 {
		t.Fatalf("stall report names worker %d of a 2-worker pool", rep.Worker)
	}
	if rep.Stalled < window {
		t.Fatalf("reported stall of %v, want at least the %v window", rep.Stalled, window)
	}
	fault.Resume(fpExecBeforeRun)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not complete after resuming the stalled worker")
	}
	if count.Load() != 1 {
		t.Fatal("root never ran after resume")
	}
	if p.Stats().StallsDetected == 0 {
		t.Fatal("Stats.StallsDetected is zero after a reported stall")
	}
}

// Randomized chaos soak: every registered point armed with low-probability
// delays and yields (never suspend or panic — the run must finish unaided),
// a fork-join workload on both non-blocking deques, result checked exactly.
// Run with -race in CI; ABP_CHAOS_SOAK=<rounds> extends it for the nightly
// job.
func TestChaosRandomSoak(t *testing.T) {
	defer fault.Reset()
	rounds := 2
	if env := os.Getenv("ABP_CHAOS_SOAK"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("ABP_CHAOS_SOAK=%q: want a positive round count", env)
		}
		rounds = n
	}
	want := fibSerial(20)
	for _, kind := range []struct {
		name string
		k    DequeKind
	}{{"ABP", DequeABP}, {"ChaseLev", DequeChaseLev}} {
		t.Run(kind.name, func(t *testing.T) {
			for r := 0; r < rounds; r++ {
				for i, pt := range fault.Catalog() {
					rule := fault.Rule{Action: fault.ActionYield, Prob: 0.05, Seed: int64(1000*r + i + 1)}
					if i%2 == 0 {
						rule = fault.Rule{Action: fault.ActionDelay, Prob: 0.02, Delay: 50 * time.Microsecond, Seed: int64(2000*r + i + 1)}
					}
					fault.Enable(pt.Name, rule)
				}
				p := New(Config{Workers: 4, Deque: kind.k, Seed: int64(r + 1)})
				var got int
				p.Run(func(w *Worker) { got = fibPar(w, 20, 5) })
				fault.Reset()
				if got != want {
					t.Fatalf("round %d: fib(20) = %d under chaos, want %d", r, got, want)
				}
			}
		})
	}
}

// The injector's version of the suspended-thief adversary: freeze a worker
// at the instruction boundary inside TryPop before its dequeue CAS — the
// poller holds no cell there, by construction — and assert the service
// keeps draining submissions through the other workers while it stays
// frozen. The companion to TestChaosSuspendedThiefMidPopTop for the queue
// submissions enter through.
func TestChaosSuspendedThiefMidInjectorPoll(t *testing.T) {
	defer fault.Reset()
	p := New(Config{Workers: 4, InjectorShards: 1})
	stop := startServing(t, p)
	// Arm the point only now: Serve's own startSession sweeps the injector
	// shards through the same TryPop, and freezing the Serve goroutine
	// there would be a different (and broken) experiment.
	fault.Enable(fpInjectorBeforePop, fault.Rule{Action: fault.ActionSuspend, OneShot: true})
	waitFor(t, 10*time.Second, "a worker frozen entering the injector poll", func() bool {
		return fault.Suspended(fpInjectorBeforePop) == 1
	})

	const subs = 200
	var count atomic.Int64
	handles := make([]*Handle, 0, subs)
	for i := 0; i < subs; i++ {
		h, err := p.Submit(func(w *Worker) {
			g := NewGroup()
			for j := 0; j < 5; j++ {
				g.Spawn(w, func(*Worker) {
					chaosSpin(100)
					count.Add(1)
				})
			}
			g.Wait(w)
		})
		if err != nil {
			t.Fatalf("Submit %d with a frozen poller: %v", i, err)
		}
		handles = append(handles, h)
	}
	// The claim under test: every submission completes while the poller is
	// still frozen mid-TryPop on the single shard they all flow through.
	waitFor(t, 20*time.Second, "all submissions done while a poller is frozen mid-TryPop", func() bool {
		if fault.Suspended(fpInjectorBeforePop) != 1 {
			return false
		}
		for _, h := range handles {
			if h.Err() == nil {
				select {
				case <-h.Done():
				default:
					return false
				}
			}
		}
		return true
	})
	for i, h := range handles {
		if err := h.Err(); err != nil {
			t.Fatalf("submission %d failed under the frozen poller: %v", i, err)
		}
	}
	if got := count.Load(); got != subs*5 {
		t.Fatalf("ran %d of %d tasks with a poller frozen", got, subs*5)
	}
	fault.Resume(fpInjectorBeforePop)
	if err := stop(); err == nil {
		t.Fatal("Serve returned nil after cancellation")
	}
}

// Regression test for the backoff-visibility bug (satellite fix in
// lifecycle.go): a worker napping in the exponential-backoff phase used to
// be invisible to signalWork — not counted idle, parked flag never set —
// so a submission arriving mid-nap waited out the rest of the sleep
// instead of being picked up immediately. The unified park path publishes
// the idle count and parked flag for naps too; this test freezes the
// worker in the nap window (flags published, sleep not begun) and proves a
// Submit finds it signallable and its wake token cuts the nap short.
func TestChaosBackoffNapVisibleToSignal(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fpBackoffBeforeSleep, fault.Rule{Action: fault.ActionSuspend, OneShot: true})
	p := New(Config{Workers: 1})
	stop := startServing(t, p)
	// The lone worker finds nothing, burns through the hot phase, and
	// freezes entering its first backoff nap.
	waitFor(t, 10*time.Second, "worker frozen entering its backoff nap", func() bool {
		return fault.Suspended(fpBackoffBeforeSleep) == 1
	})
	// The fix under test: mid-backoff the worker is visible to producers —
	// counted idle and flying its parked flag — exactly like a fully
	// parked one.
	if got := p.idle.Load(); got < 1 {
		t.Fatalf("idle count = %d with a worker in the backoff window, want >= 1", got)
	}
	if !p.workers[0].parked.Load() {
		t.Fatal("parked flag down in the backoff window: the napping worker is invisible to signalWork")
	}

	wakes0 := p.Stats().Wakes
	var ran atomic.Bool
	h, err := p.Submit(func(*Worker) { ran.Store(true) })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// signalWork saw the flag and deposited a wake token; once resumed,
	// the worker's select takes the token branch instead of sleeping out
	// the nap, and the submission runs.
	fault.Resume(fpBackoffBeforeSleep)
	if werr := h.Wait(); werr != nil {
		t.Fatalf("Wait: %v", werr)
	}
	if !ran.Load() {
		t.Fatal("submission never ran")
	}
	if got := p.Stats().Wakes; got <= wakes0 {
		t.Fatalf("Stats.Wakes = %d, want > %d: the nap was slept out rather than cut short by the wake token", got, wakes0)
	}
	if err := stop(); err == nil {
		t.Fatal("Serve returned nil after cancellation")
	}
}

// BenchmarkChaosSuspendedWorkers sweeps throughput against the number of
// worker goroutines frozen at the loop-level steal point: the quantitative
// form of the non-blocking claim (k frozen workers cost at most their k
// processors, they never wedge the rest). frozen=7 of 8 leaves the root
// worker computing everything alone via Group.Wait's help loop.
func BenchmarkChaosSuspendedWorkers(b *testing.B) {
	defer fault.Reset()
	const workers = 8
	const tasks = 2000
	for _, frozen := range []int{0, 1, 2, 4, 7} {
		b.Run(fmt.Sprintf("frozen=%d", frozen), func(b *testing.B) {
			p := New(Config{Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if frozen > 0 {
					fault.Enable(fpLoopBeforeSteal, fault.Rule{Action: fault.ActionSuspend, Times: frozen})
				}
				var count atomic.Int64
				p.Run(func(w *Worker) {
					g := NewGroup()
					for j := 0; j < tasks; j++ {
						g.Spawn(w, func(*Worker) {
							chaosSpin(200)
							count.Add(1)
						})
					}
					g.Wait(w)
					// All tasks are done; release the frozen thieves so the
					// run can terminate. (sched.loop.beforeSteal fires only
					// for loop-level steals, so this helping root can never
					// have frozen itself.)
					fault.Resume(fpLoopBeforeSteal)
				})
				if count.Load() != tasks {
					b.Fatalf("ran %d of %d tasks with %d workers frozen", count.Load(), tasks, frozen)
				}
				fault.Disable(fpLoopBeforeSteal)
			}
			b.ReportMetric(tasks, "tasks/op")
		})
	}
}

// The watchdog must treat a retiring worker like a parked one: a worker
// frozen by the kernel adversary at the retire safe point is not a stall
// of the serving fleet. The test suspends a worker mid-retirement for
// several full watchdog windows and asserts OnStall never fires.
func TestWatchdogExemptsRetiringWorker(t *testing.T) {
	defer fault.Reset()
	var stalls atomic.Int64
	p := New(Config{Workers: 2, ParkThreshold: 2, StallTimeout: 40 * time.Millisecond,
		OnStall: func(StallReport) { stalls.Add(1) }})
	stop := startServing(t, p)
	fault.Enable("sched.resize.beforeRetire", fault.Rule{Action: fault.ActionSuspend, OneShot: true})
	if err := p.Resize(1); err != nil {
		t.Fatalf("Resize(1): %v", err)
	}
	waitFor(t, 10*time.Second, "the retiring worker to freeze at the safe point", func() bool {
		return fault.Suspended("sched.resize.beforeRetire") == 1
	})
	// Several full windows with the worker motionless mid-retire. Worker 0
	// is parked (exempt); the frozen worker must be exempt too.
	time.Sleep(200 * time.Millisecond)
	if got := stalls.Load(); got != 0 {
		t.Fatalf("OnStall fired %d times for a worker suspended at the retire safe point", got)
	}
	fault.Resume("sched.resize.beforeRetire")
	waitFor(t, 10*time.Second, "retirement to complete after resume", func() bool {
		return p.Stats().WorkersRetired == 1
	})
	if err := stop(); err == nil {
		t.Fatal("Serve returned nil after cancellation")
	}
}

// TestChaosKernelAdversary is the issue's headline property: an
// adversarial kernel that suspends workers at scheduler instruction
// boundaries AND grows/shrinks the granted processor set at random —
// exactly the paper's P_A(t) model made hostile — while an open stream of
// submissions flows in. Every submission must complete exactly once (its
// private counter reads exactly root+3), no Handle may wedge, and nothing
// may be dropped. Runs against both non-blocking deques.
func TestChaosKernelAdversary(t *testing.T) {
	points := []string{
		"sched.resize.beforeRetire",
		"sched.resize.beforeHandoff",
		"sched.loop.beforeSteal",
		"sched.park.beforeSleep",
	}
	for _, tc := range []struct {
		name string
		kind DequeKind
	}{
		{"ABP", DequeABP},
		{"ChaseLev", DequeChaseLev},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer fault.Reset()
			const (
				maxW       = 8
				submitters = 3
				perSub     = 400
			)
			p := New(Config{Workers: maxW / 2, MaxWorkers: maxW, ParkThreshold: 2, Deque: tc.kind})
			stop := startServing(t, p)

			// The adversary: a random walk over fleet sizes interleaved with
			// bounded suspensions at the retire and idle safe points. Every
			// armed window is resumed and disarmed before the next, so the
			// adversary is hostile but finite — the paper's kernel, which may
			// do anything except stop the clock forever.
			advStop := make(chan struct{})
			advDone := make(chan struct{})
			go func() {
				defer close(advDone)
				rng := rand.New(rand.NewSource(0xADBE))
				for i := 0; ; i++ {
					select {
					case <-advStop:
						return
					default:
					}
					if err := p.Resize(1 + rng.Intn(maxW)); err != nil {
						t.Errorf("adversary Resize: %v", err)
						return
					}
					pt := points[rng.Intn(len(points))]
					fault.Enable(pt, fault.Rule{Action: fault.ActionSuspend, Times: 1 + rng.Intn(2)})
					time.Sleep(time.Duration(200+rng.Intn(1800)) * time.Microsecond)
					fault.Resume(pt)
					fault.Disable(pt)
				}
			}()

			var completed atomic.Int64
			var wg sync.WaitGroup
			wg.Add(submitters)
			for s := 0; s < submitters; s++ {
				go func(s int) {
					defer wg.Done()
					for i := 0; i < perSub; i++ {
						var n atomic.Int64
						h, err := p.SubmitWithRetry(context.Background(), func(w *Worker) {
							for j := 0; j < 3; j++ {
								w.Spawn(func(*Worker) { chaosSpin(50); n.Add(1) })
							}
							n.Add(1)
						}, RetryPolicy{MaxAttempts: 50, Seed: int64(s + 1)})
						if err != nil {
							t.Errorf("submitter %d: submission %d: %v", s, i, err)
							return
						}
						if err := h.Wait(); err != nil {
							t.Errorf("submitter %d: submission %d: Wait = %v", s, i, err)
							return
						}
						if got := n.Load(); got != 4 {
							t.Errorf("submitter %d: submission %d ran %d of its 4 tasks (lost or doubled work)", s, i, got)
							return
						}
						completed.Add(1)
					}
				}(s)
			}

			// A wedged Handle.Wait shows up here as the global timeout.
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				fault.Reset()
				t.Fatalf("wedged: only %d of %d submissions completed under the kernel adversary",
					completed.Load(), submitters*perSub)
			}
			close(advStop)
			<-advDone
			fault.Reset()

			if got := completed.Load(); got != submitters*perSub {
				t.Fatalf("completed %d of %d submissions", got, submitters*perSub)
			}
			s := p.Stats()
			if s.TasksDropped != 0 {
				t.Fatalf("%d tasks dropped under the adversary", s.TasksDropped)
			}
			if s.Resizes == 0 || s.WorkersRetired == 0 {
				t.Fatalf("the adversary never actually exercised the elastic fleet: resizes=%d retired=%d",
					s.Resizes, s.WorkersRetired)
			}
			if err := stop(); err == nil {
				t.Fatal("Serve returned nil after cancellation")
			}
		})
	}
}
