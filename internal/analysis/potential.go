// Package analysis implements the paper's analysis machinery as executable
// checks: the potential function of Section 4.2, phase decomposition and the
// Lemma 8 potential-drop statistic, a Monte Carlo estimator for the Balls
// and Weighted Bins lemma (Lemma 7), a live checker for the structural lemma
// (Lemma 3 / Corollary 4), and least-squares fitting of the measured
// execution time against the T1/P_A + Tinf*P/P_A bound.
package analysis

import (
	"fmt"
	"io"
	"math"

	"worksteal/internal/dag"
	"worksteal/internal/sim"
)

// ln3 is the natural log of 3, the base of the potential function.
var ln3 = math.Log(3)

// logAdd returns log(exp(a) + exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogPotential computes the natural log of the potential Phi at the instant
// captured by the snapshot: each ready node u contributes 3^(2w(u)-1) if it
// has assigned status and 3^(2w(u)) otherwise, where w(u) = Tinf - depth(u)
// in the enabling tree.
//
// Ready nodes that are neither some process's assigned node nor inside a
// deque snapshot are in flight inside a deque operation (enabled but not
// yet pushed, or popped but not yet assigned); they are counted with deque
// status, so that the measured potential is non-increasing at instruction
// granularity: it drops when the execution of an assigned node enables its
// children, and again when an in-flight or deque node acquires assigned
// status, never rising in between. Returns -Inf when no node is ready (the
// final potential, Phi = 0).
func LogPotential(st *dag.State, tinf int, snap []sim.ProcSnapshot) float64 {
	assignedStatus := make(map[dag.NodeID]bool)
	for _, ps := range snap {
		if ps.Assigned != dag.None {
			assignedStatus[ps.Assigned] = true
		}
	}
	logPhi := math.Inf(-1)
	for _, u := range st.ReadyNodes() {
		w := st.Weight(tinf, u)
		exp := 2 * w // deque or in-flight status: 3^(2w)
		if assignedStatus[u] {
			exp = 2*w - 1 // assigned status: 3^(2w-1)
		}
		logPhi = logAdd(logPhi, float64(exp)*ln3)
	}
	return logPhi
}

// InitialLogPotential returns log of Phi_0 = 3^(2*Tinf - 1), the potential
// before the first instruction (only the root is ready, with assigned
// status and weight Tinf).
func InitialLogPotential(tinf int) float64 {
	return float64(2*tinf-1) * ln3
}

// PhasePoint is one per-round sample recorded by PotentialTracker.
type PhasePoint struct {
	Round  int
	Throws int     // cumulative throws at the start of the round
	LogPhi float64 // log potential at the start of the round
}

// PotentialTracker is a sim.Observer that samples the potential and the
// cumulative throw count at every round boundary.
type PotentialTracker struct {
	Points []PhasePoint
	tinf   int
}

// NewPotentialTracker returns a tracker for a computation with the given
// critical-path length.
func NewPotentialTracker(tinf int) *PotentialTracker {
	return &PotentialTracker{tinf: tinf}
}

// OnRoundStart samples potential and throws.
func (t *PotentialTracker) OnRoundStart(e *sim.Engine, round int) {
	t.Points = append(t.Points, PhasePoint{
		Round:  round,
		Throws: e.ThrowsSoFar(),
		LogPhi: LogPotential(e.State(), t.tinf, e.Snapshot()),
	})
}

// OnInstruction is a no-op; the tracker samples at round granularity.
func (t *PotentialTracker) OnInstruction(e *sim.Engine, proc int) {}

// PhaseStats summarizes the Lemma 8 behaviour of a traced run.
type PhaseStats struct {
	// Phases is the number of complete phases (intervals containing at
	// least minThrows throws).
	Phases int
	// Successful counts phases whose potential dropped by at least 1/4
	// (Phi_end <= 3/4 Phi_begin), the event Lemma 8 bounds below.
	Successful int
	// NeverIncreased reports that the potential was non-increasing across
	// all sampled rounds (a theorem of Section 4.2, not just likely).
	NeverIncreased bool
	// MeanLogDrop is the average of log(Phi_begin) - log(Phi_end) over
	// phases.
	MeanLogDrop float64
}

// SuccessRate returns Successful/Phases, or 0 with no phases.
func (s PhaseStats) SuccessRate() float64 {
	if s.Phases == 0 {
		return 0
	}
	return float64(s.Successful) / float64(s.Phases)
}

// AnalyzePhases decomposes the trace into phases of at least minThrows
// throws (the paper uses P) and measures the potential drop across each.
func AnalyzePhases(points []PhasePoint, minThrows int) PhaseStats {
	stats := PhaseStats{NeverIncreased: true}
	if len(points) == 0 {
		return stats
	}
	const eps = 1e-9
	for i := 1; i < len(points); i++ {
		if points[i].LogPhi > points[i-1].LogPhi+eps {
			stats.NeverIncreased = false
		}
	}
	start := 0
	logDropSum := 0.0
	for i := 1; i < len(points); i++ {
		if points[i].Throws-points[start].Throws >= minThrows {
			drop := points[start].LogPhi - points[i].LogPhi
			stats.Phases++
			logDropSum += drop
			// Success: Phi_end <= (3/4) Phi_begin.
			if drop >= math.Log(4.0/3.0)-eps {
				stats.Successful++
			}
			start = i
		}
	}
	if stats.Phases > 0 {
		stats.MeanLogDrop = logDropSum / float64(stats.Phases)
	}
	return stats
}

// RoundCSV is a sim.Observer that streams one CSV row per round:
// round,steps,throws,logPhi. Useful for plotting potential decay and throw
// accumulation outside Go (cmd/abpsim -csv).
type RoundCSV struct {
	W    io.Writer
	tinf int
	err  error
}

// NewRoundCSV returns a CSV observer; it writes the header immediately.
func NewRoundCSV(w io.Writer, tinf int) *RoundCSV {
	c := &RoundCSV{W: w, tinf: tinf}
	_, c.err = fmt.Fprintln(w, "round,steps,throws,logPhi")
	return c
}

// OnRoundStart writes one row.
func (c *RoundCSV) OnRoundStart(e *sim.Engine, round int) {
	if c.err != nil {
		return
	}
	logPhi := LogPotential(e.State(), c.tinf, e.Snapshot())
	_, c.err = fmt.Fprintf(c.W, "%d,%d,%d,%.6f\n", round, e.StepsSoFar(), e.ThrowsSoFar(), logPhi)
}

// OnInstruction is a no-op.
func (c *RoundCSV) OnInstruction(e *sim.Engine, proc int) {}

// Err reports the first write error, if any.
func (c *RoundCSV) Err() error { return c.err }

// SpaceTracker is a sim.Observer that measures the scheduler's space: the
// total number of ready nodes held across all deques and assigned slots,
// sampled at round boundaries. For fully strict computations, Blumofe and
// Leiserson's analysis (the paper's reference [8]) bounds the work
// stealer's space by S1 * P, where S1 is the serial (P = 1) maximum;
// experiment E14 checks that bound empirically.
type SpaceTracker struct {
	Max int
}

// OnRoundStart samples the current space.
func (s *SpaceTracker) OnRoundStart(e *sim.Engine, round int) {
	total := 0
	for _, ps := range e.Snapshot() {
		total += len(ps.Deque)
		if ps.Assigned != dag.None {
			total++
		}
	}
	if total > s.Max {
		s.Max = total
	}
}

// OnInstruction is a no-op; space is sampled per round.
func (s *SpaceTracker) OnInstruction(e *sim.Engine, proc int) {}
