//go:build !race

package fault

// raceEnabled reports whether the race detector is compiled in; the
// overhead gate skips itself under -race (see TestDisabledPointOverheadGate).
const raceEnabled = false
