// Package nonblocking is the analysistest fixture for the nonblocking
// analyzer: annotated functions must not block; the non-blocking
// select-with-default idiom and unannotated functions are accepted.
package nonblocking

import (
	"sync"
	"sync/atomic"
	"time"

	"worksteal/internal/fault"
)

// trySignal is the idiomatic non-blocking wake-up: accepted in full.
//
//abp:nonblocking
func trySignal(ch chan struct{}, n *atomic.Int64) {
	n.Add(1)
	select {
	case ch <- struct{}{}: // accepted: a select with default cannot block
	default:
	}
}

// blocker violates every rule the analyzer knows.
//
//abp:nonblocking
func blocker(mu *sync.Mutex, wg *sync.WaitGroup, ch chan int) int {
	mu.Lock()                    // want `sync.Lock in //abp:nonblocking function blocker`
	defer mu.Unlock()            // want `sync.Unlock in //abp:nonblocking function blocker`
	wg.Wait()                    // want `sync.Wait in //abp:nonblocking function blocker`
	time.Sleep(time.Millisecond) // want `time.Sleep in //abp:nonblocking function blocker`
	ch <- 1                      // want `channel send in //abp:nonblocking function blocker`
	v := <-ch                    // want `channel receive in //abp:nonblocking function blocker`
	select {                     // want `select without default in //abp:nonblocking function blocker`
	case v = <-ch:
	}
	for range ch { // want `range over channel in //abp:nonblocking function blocker`
	}
	return v
}

// closures count: the operation is lexically inside the annotated function.
//
//abp:nonblocking
func viaClosure(ch chan int) func() {
	return func() {
		ch <- 1 // want `channel send in //abp:nonblocking function viaClosure`
	}
}

// instrumented shows the permitted failpoint idiom: a disabled fault.Point
// is a single atomic load, so hot paths may carry it without voiding the
// annotation.
//
//abp:nonblocking
func instrumented(n *atomic.Int64) {
	fault.Point("fixture.instrumented.hot") // accepted: the disabled fast path
	n.Add(1)
}

// armsFaults calls into the fault registry proper, which takes the registry
// lock (and, when armed, may sleep or suspend): everything but Point is
// flagged.
//
//abp:nonblocking
func armsFaults() {
	fault.Enable("fixture.point", fault.Rule{Action: fault.ActionYield}) // want `fault.Enable in //abp:nonblocking function armsFaults`
	fault.Point("fixture.point")
	_ = fault.Suspended("fixture.point") // want `fault.Suspended in //abp:nonblocking function armsFaults`
	fault.Resume("fixture.point")        // want `fault.Resume in //abp:nonblocking function armsFaults`
	fault.Reset()                        // want `fault.Reset in //abp:nonblocking function armsFaults`
}

// unannotated functions may block freely.
func unannotated(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	<-ch
}

var _ = trySignal
var _ = blocker
var _ = viaClosure
var _ = unannotated
var _ = instrumented
var _ = armsFaults
