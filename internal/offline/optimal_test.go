package offline

import (
	"math/rand"
	"testing"

	"worksteal/internal/dag"
	"worksteal/internal/workload"
)

func TestOptimalChainDedicated(t *testing.T) {
	g := workload.Chain(6)
	k := Dedicated{NumProcs: 3}
	opt, ok := OptimalLength(g, k, 50)
	if !ok || opt != 6 {
		t.Fatalf("optimal = %d (ok=%v), want 6 (a chain is inherently serial)", opt, ok)
	}
}

func TestOptimalFigure1(t *testing.T) {
	g := dag.Figure1()
	// With unlimited processors the optimum is the critical path.
	opt, ok := OptimalLength(g, Dedicated{NumProcs: 11}, 60)
	if !ok || opt != g.CriticalPath() {
		t.Fatalf("optimal = %d (ok=%v), want Tinf = %d", opt, ok, g.CriticalPath())
	}
	// Under the Figure 2 kernel, the greedy schedule of length 10 is in
	// fact optimal.
	opt, ok = OptimalLength(g, Figure2Kernel(), 60)
	if !ok || opt != 10 {
		t.Fatalf("optimal under Figure 2 kernel = %d (ok=%v), want 10", opt, ok)
	}
}

func TestOptimalInfeasible(t *testing.T) {
	g := workload.Chain(5)
	k := Fixed{NumProcs: 1, Prefix: make([]int, 100)} // all-zero prefix
	if _, ok := OptimalLength(g, k, 20); ok {
		t.Fatal("schedule reported feasible under an all-idle kernel")
	}
}

func TestOptimalPanicsOnLargeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on oversized graph")
		}
	}()
	OptimalLength(workload.Chain(30), Dedicated{NumProcs: 2}, 100)
}

// The paper's (unproven) assertion: for any kernel schedule, some greedy
// execution schedule is optimal. Verified exhaustively on random small
// instances against random kernels.
func TestSomeGreedyScheduleIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	builders := []func() *dag.Graph{
		func() *dag.Graph { return dag.Figure1() },
		func() *dag.Graph { return workload.Chain(2 + rng.Intn(10)) },
		func() *dag.Graph { return workload.SpawnSpine(1+rng.Intn(3), 1+rng.Intn(3)) },
		func() *dag.Graph { return workload.FibDag(3 + rng.Intn(3)) },
		func() *dag.Graph { return workload.Grid(2+rng.Intn(2), 2+rng.Intn(3)) },
		func() *dag.Graph { return workload.RandomSP(rng.Int63(), 6+rng.Intn(8)) },
	}
	checked := 0
	for trial := 0; trial < 60; trial++ {
		g := builders[trial%len(builders)]()
		if g.NumNodes() > maxOptimalNodes {
			continue
		}
		p := 1 + rng.Intn(3)
		prefix := make([]int, 2*g.NumNodes()+8)
		for i := range prefix {
			prefix[i] = rng.Intn(p + 1)
		}
		k := Fixed{NumProcs: p, Prefix: prefix}
		maxSteps := 4*g.NumNodes() + len(prefix)
		opt, okO := OptimalLength(g, k, maxSteps)
		grd, okG := BestGreedyLength(g, k, maxSteps)
		if okO != okG {
			t.Fatalf("trial %d (%s, P=%d): feasibility mismatch opt=%v greedy=%v", trial, g.Label(), p, okO, okG)
		}
		if !okO {
			continue
		}
		if grd != opt {
			t.Fatalf("trial %d (%s, P=%d): best greedy %d != optimal %d", trial, g.Label(), p, grd, opt)
		}
		// The deterministic lowest-id greedy scheduler is a greedy schedule,
		// so it can be no better than the best greedy and no better than
		// optimal.
		e := Greedy(g, k, 100*maxSteps)
		if e.Length() < opt {
			t.Fatalf("trial %d: greedy heuristic %d beat the optimum %d", trial, e.Length(), opt)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// Executing more nodes per step never hurts: optimal with the empty and
// partial subsets allowed equals optimal over maximal subsets, which is
// exactly what TestSomeGreedyScheduleIsOptimal checks; here we additionally
// confirm monotonicity in the kernel: adding processors never lengthens the
// optimum.
func TestOptimalMonotoneInProcessors(t *testing.T) {
	g := workload.FibDag(4) // 11 nodes
	prev := 1 << 30
	for p := 1; p <= 4; p++ {
		opt, ok := OptimalLength(g, Dedicated{NumProcs: p}, 60)
		if !ok {
			t.Fatalf("P=%d infeasible", p)
		}
		if opt > prev {
			t.Fatalf("optimum grew from %d to %d when adding a processor", prev, opt)
		}
		prev = opt
	}
	if prev != g.CriticalPath() {
		t.Fatalf("with enough processors the optimum should reach Tinf: %d vs %d", prev, g.CriticalPath())
	}
}

// Greedy schedules are within a factor of two of optimal on dedicated
// kernels (the paper's Section 2 remark): length <= T1/P + Tinf <= 2*OPT,
// since OPT >= max(T1/P, Tinf).
func TestGreedyWithinTwiceOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		g := workload.RandomSP(rng.Int63(), 8+rng.Intn(9))
		if g.NumNodes() > maxOptimalNodes {
			continue
		}
		p := 1 + rng.Intn(4)
		k := Dedicated{NumProcs: p}
		opt, ok := OptimalLength(g, k, 10*g.NumNodes())
		if !ok {
			t.Fatalf("trial %d infeasible", trial)
		}
		e := Greedy(g, k, 100*g.NumNodes())
		if e.Length() > 2*opt {
			t.Fatalf("trial %d (%s, P=%d): greedy %d > 2*optimal %d", trial, g.Label(), p, e.Length(), opt)
		}
	}
}

// Even the unluckiest greedy schedule satisfies Theorem 2 — and sits within
// a factor of two of optimal on dedicated kernels.
func TestWorstGreedyStillMeetsTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 20; trial++ {
		g := workload.RandomSP(rng.Int63(), 8+rng.Intn(8))
		if g.NumNodes() > maxOptimalNodes {
			continue
		}
		p := 1 + rng.Intn(3)
		k := Dedicated{NumProcs: p}
		worst, okW := WorstGreedyLength(g, k, 10*g.NumNodes())
		opt, okO := OptimalLength(g, k, 10*g.NumNodes())
		if !okW || !okO {
			t.Fatalf("trial %d infeasible", trial)
		}
		// Theorem 2 with P_A = P: worst <= T1/P + Tinf.
		if bound := g.Work()/p + g.CriticalPath() + 1; worst > bound {
			t.Fatalf("trial %d: worst greedy %d > T1/P+Tinf = %d", trial, worst, bound)
		}
		if worst > 2*opt {
			t.Fatalf("trial %d: worst greedy %d > 2*optimal %d", trial, worst, opt)
		}
		if worst < opt {
			t.Fatalf("trial %d: worst %d below optimal %d (search bug)", trial, worst, opt)
		}
	}
}
