// Sort: the application-kernel suite (parallel quicksort, adaptive
// quadrature, prime counting) from internal/apps, run end to end with
// verification — the style of application study the Hood papers report.
//
// Run with:
//
//	go run ./examples/sort -n 2000000 -workers 4
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"worksteal/internal/apps"
	"worksteal/internal/sched"
)

func main() {
	n := flag.Int("n", 2_000_000, "elements to sort")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()

	pool := sched.New(sched.Config{Workers: *workers})
	rng := rand.New(rand.NewSource(42))

	// Parallel quicksort vs the standard library.
	data := make([]int, *n)
	for i := range data {
		data[i] = rng.Int()
	}
	ref := append([]int(nil), data...)
	start := time.Now()
	sort.Ints(ref)
	serial := time.Since(start)

	start = time.Now()
	pool.Run(func(w *sched.Worker) { apps.Quicksort(w, data, 2048) })
	parallel := time.Since(start)
	for i := range data {
		if data[i] != ref[i] {
			panic("sort mismatch")
		}
	}
	fmt.Printf("quicksort %d ints: stdlib %v, parallel %v on %d workers (ratio %.2f)\n",
		*n, serial, parallel, pool.Workers(), float64(serial)/float64(parallel))

	// Adaptive quadrature.
	var integral float64
	start = time.Now()
	pool.Run(func(w *sched.Worker) {
		integral = apps.Integrate(w, func(x float64) float64 {
			return math.Sin(1/x) * x // wildly oscillatory near 0
		}, 0.02, 2, 1e-10)
	})
	fmt.Printf("adaptive quadrature: %.12f in %v\n", integral, time.Since(start))

	// Prime counting.
	var primes int
	start = time.Now()
	pool.Run(func(w *sched.Worker) { primes = apps.CountPrimes(w, 2, 300_000, 512) })
	fmt.Printf("primes below 300000: %d in %v\n", primes, time.Since(start))

	s := pool.Stats()
	fmt.Printf("pool totals: %d tasks, %d steals / %d attempts\n",
		s.TasksRun, s.Steals, s.StealAttempts)
}
