// Package owneronly is the analysistest fixture for the owneronly
// analyzer: PushBottom/PopBottom references must sit in a function that is
// annotated //abp:owner or statically reachable from one.
package owneronly

type deque struct{ items []*int }

func (d *deque) PushBottom(v *int) bool {
	d.items = append(d.items, v)
	return true
}

func (d *deque) PopBottom() *int {
	if len(d.items) == 0 {
		return nil
	}
	v := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return v
}

// run is the worker loop: it owns d for the lifetime of the run.
//
//abp:owner
func run(d *deque) {
	for d.PopBottom() != nil { // accepted: annotated owner root
	}
	helper(d)
}

// helper inherits the owner context: it is statically reachable from run.
func helper(d *deque) {
	d.PushBottom(new(int)) // accepted: reachable from an //abp:owner root
}

// rogue is reachable from no owner root; both references are violations.
func rogue(d *deque) {
	d.PushBottom(new(int)) // want `PushBottom called outside an owner context`
	pop := d.PopBottom     // want `PopBottom called outside an owner context`
	pop()
}

// spawner shows that ownership does NOT cross a go statement: the spawned
// callee and the spawned closure run on a different goroutine, so their
// owner-only operations are violations even though spawner is annotated.
//
//abp:owner
func spawner(d *deque) {
	go sidekick(d)
	go func() {
		d.PushBottom(new(int)) // want `PushBottom called outside an owner context`
	}()
}

// sidekick is only ever launched with go, never called: not owned.
func sidekick(d *deque) {
	for d.PopBottom() != nil { // want `PopBottom called outside an owner context`
	}
}

// inline shows the two literal shapes that DO inherit ownership — an
// immediately invoked closure and a deferred closure both run on the
// owner's goroutine — and the one that does not: a literal bound to a
// variable escapes as a value, and a call through that variable cannot be
// resolved statically, so the literal is conservatively unowned.
//
//abp:owner
func inline(d *deque) {
	func() {
		d.PushBottom(new(int)) // accepted: invoked in place on the owner goroutine
	}()
	defer func() {
		d.PopBottom() // accepted: defer runs on the owner goroutine
	}()
	fn := func() {
		d.PushBottom(new(int)) // want `PushBottom called outside an owner context`
	}
	fn()
}

var _ = run
var _ = rogue
var _ = spawner
var _ = inline
