// Command abplint is the canonical front end for the repository's
// concurrency-contract analyzer suite (package internal/lint): all twelve
// analyzers — the syntactic contract checks, the flow-aware owner/CAS
// analyses, the whole-package race detector, and the memory-ordering,
// cache-layout, and liveness analyzers — in one run, in the manner of a
// golang.org/x/tools/go/analysis multichecker but with zero dependencies
// outside the standard library. cmd/abpvet (the historical name for the
// same suite) and cmd/abprace (the race detector alone) remain as thin
// aliases over the same engine; CI runs abplint.
//
// Usage:
//
//	go run ./cmd/abplint [-only abpwait,abprace] [-list] [-json]
//	                     [-sarif file] [-baseline file]
//	                     [-write-baseline file] [-unused-ignores]
//	                     [-C dir] [packages]
//
// Packages default to ./... . Test files and testdata directories are not
// analyzed (the analyzers guard production invariants; tests intentionally
// abuse them).
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// operational failure (bad flags, load or type-check errors, unwritable
// output). Findings can be suppressed case by case with a justified
// directive — //abp:ignore for the suite, or the analyzer-specific
// //abp:race-ignore, //abp:order-ignore, //abp:layout-ignore, and
// //abp:wait-ignore forms (see package internal/lint); -unused-ignores
// reports directives that no longer suppress anything, -baseline drops
// findings recorded in a previous report, and -write-baseline records the
// current findings as that report.
package main

import (
	"io"
	"os"

	"worksteal/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored for in-process testing: it returns
// the exit status instead of calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	tool := &lint.Tool{Name: "abplint", Analyzers: lint.All()}
	return tool.Main(args, stdout, stderr)
}
