// Package tagaba is the analysistest fixture for the tagaba analyzer:
// every CAS that resets top to 0 must install a tag that is (1) an
// increment and (2) built from a freshly loaded value — Figure 5's ABA
// guard.
package tagaba

import "sync/atomic"

const tagShift = 32

const tagMask = (uint64(1) << tagShift) - 1

func packAge(tag, top uint64) uint64 { return tag<<tagShift | top }

func unpackAge(a uint64) (tag, top uint64) { return a >> tagShift, a & tagMask }

type deque struct {
	age atomic.Uint64
}

// goodReset mirrors Figure 5 popBottom: load, unpack, increment, reset.
func goodReset(d *deque) {
	oldAge := d.age.Load()
	oldTag, _ := unpackAge(oldAge)
	newAge := packAge(oldTag+1, 0) // accepted: incremented, freshly unpacked
	if d.age.CompareAndSwap(oldAge, newAge) {
		return
	}
}

// goodMasked wraps the incremented tag, as a finite-width tag must.
func goodMasked(d *deque) {
	oldAge := d.age.Load()
	oldTag, _ := unpackAge(oldAge)
	if d.age.CompareAndSwap(oldAge, packAge((oldTag+1)&tagMask, 0)) { // accepted: masked increment
		return
	}
}

// goodAdvance is the popTop shape: top advances rather than resets, so no
// tag increment is required.
func goodAdvance(d *deque) {
	oldAge := d.age.Load()
	oldTag, oldTop := unpackAge(oldAge)
	if d.age.CompareAndSwap(oldAge, packAge(oldTag, oldTop+1)) { // accepted: not a reset
		return
	}
}

// noIncrement resets top but reuses the old tag verbatim: a thief that
// loaded the age word before the reset can still CAS successfully.
func noIncrement(d *deque) {
	oldAge := d.age.Load()
	oldTag, _ := unpackAge(oldAge)
	newAge := packAge(oldTag, 0) // want `resets top to 0 without incrementing the tag`
	if d.age.CompareAndSwap(oldAge, newAge) {
		return
	}
}

// staleParam builds the reset from a caller-supplied tag.
func staleParam(d *deque, oldTag uint64) {
	oldAge := d.age.Load()
	newAge := packAge(oldTag+1, 0) // want `is a parameter, not freshly loaded`
	if d.age.CompareAndSwap(oldAge, newAge) {
		return
	}
}

// constTag hardcodes the tag base.
func constTag(d *deque) {
	oldAge := d.age.Load()
	if d.age.CompareAndSwap(oldAge, packAge(7+1, 0)) { // want `builds its tag from the constant`
		return
	}
}

// staleLocal derives the tag from a local that was never loaded.
func staleLocal(d *deque) {
	tag := uint64(7)
	oldAge := d.age.Load()
	newAge := packAge(tag+1, 0) // want `not derived from a Load or unpack on every path`
	if d.age.CompareAndSwap(oldAge, newAge) {
		return
	}
}

type age struct {
	tag uint32
	top uint32
}

// structReset exercises the composite-literal build form (the simulator's
// Age struct shape): incremented from a freshly loaded snapshot.
func structReset(cur *atomic.Pointer[age]) {
	old := cur.Load()
	next := &age{tag: old.tag + 1, top: 0} // accepted: incremented from a fresh load
	if cur.CompareAndSwap(old, next) {
		return
	}
}

// structNoIncrement is the same shape without the increment.
func structNoIncrement(cur *atomic.Pointer[age]) {
	old := cur.Load()
	next := &age{tag: old.tag, top: 0} // want `resets top to 0 without incrementing the tag`
	if cur.CompareAndSwap(old, next) {
		return
	}
}

// suppressed is a boot-time reset justified with an ignore directive.
func suppressed(d *deque, bootTag uint64) {
	oldAge := d.age.Load()
	//abp:ignore tagaba boot-time reset before any thief can exist
	newAge := packAge(bootTag+1, 0) // accepted: justified ignore
	if d.age.CompareAndSwap(oldAge, newAge) {
		return
	}
}

var (
	_ = goodReset
	_ = goodMasked
	_ = goodAdvance
	_ = noIncrement
	_ = staleParam
	_ = constTag
	_ = staleLocal
	_ = structReset
	_ = structNoIncrement
	_ = suppressed
)
