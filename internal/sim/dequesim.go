// Package sim is an instruction-level simulator of the paper's model of
// multiprogrammed execution (Section 2) running the non-blocking work
// stealer (Section 3, Figures 3 and 5).
//
// Each of the P processes is a state machine that executes the scheduling
// loop one shared-memory instruction at a time. The kernel — an adversary —
// schedules processes in rounds: at each round it picks a subset of the
// processes and an instruction budget between 2C and 3C for each, and the
// engine interleaves their instructions step by step. Because the engine is
// single-threaded, each instruction is atomic by construction, which is
// exactly the paper's synchronous model ("the effect of step i is equivalent
// to some serial execution of the p_i instructions").
//
// The simulator supports the paper's yield primitives (yieldToRandom,
// yieldToAll) as scheduling constraints on the kernel, the four adversary
// classes (dedicated, benign, oblivious, adaptive), an ablation with a
// lock-based deque, and an injectable tag width that reproduces the ABA
// failure the tag field exists to prevent.
package sim

import (
	"fmt"

	"worksteal/internal/dag"
)

// Age is the paper's age structure: a tag and the top index, packed into a
// single word in a real implementation (see package deque); the simulator
// keeps the fields separate and compares them structurally, which is
// equivalent.
type Age struct {
	Tag uint32
	Top uint32
}

// op is a multi-instruction deque operation in flight. Each call to step
// executes exactly one instruction; step reports true when the invocation
// has completed, after which result is valid.
type op interface {
	step() bool
	result() dag.NodeID
}

// dequeOps abstracts the two deque implementations the simulator can run:
// the paper's non-blocking ABP deque and a lock-based deque for the E8
// ablation.
type dequeOps interface {
	// caller identifies the process performing the operation, so that the
	// lock-based variant can record its lock holder.
	startPushBottom(caller int, node dag.NodeID) op
	startPopBottom(caller int) op
	startPopTop(caller int) op
	// snapshot returns the current contents from bottom to top (the paper's
	// x1..xk ordering in Lemma 3). Only meaningful when the owner has no
	// operation in flight.
	snapshot() []dag.NodeID
	// size estimates the number of items (bot - top, clamped at 0).
	size() int
	// lockHolder returns the id of the process holding the deque's lock,
	// or -1 (always -1 for the non-blocking deque).
	lockHolder() int
}

// abpDeque is the simulator's ABP deque. tagMask limits the effective tag
// width: ^uint32(0) is the realistic 32-bit tag, 0 disables the tag
// entirely (demonstrating the ABA failure the tag prevents).
type abpDeque struct {
	age     Age
	bot     uint32
	deq     []dag.NodeID
	tagMask uint32
	// casFailures counts failed CAS instructions, for the contention stats.
	casFailures int
}

func newABPDeque(capacity int, tagBits int) *abpDeque {
	if tagBits < 0 || tagBits > 32 {
		panic(fmt.Sprintf("sim: tagBits %d out of range", tagBits))
	}
	var mask uint32
	if tagBits == 32 {
		mask = ^uint32(0)
	} else {
		mask = (uint32(1) << tagBits) - 1
	}
	return &abpDeque{deq: make([]dag.NodeID, capacity), tagMask: mask}
}

func (d *abpDeque) lockHolder() int { return -1 }

func (d *abpDeque) size() int {
	if d.bot <= d.age.Top {
		return 0
	}
	return int(d.bot - d.age.Top)
}

func (d *abpDeque) snapshot() []dag.NodeID {
	if d.bot <= d.age.Top {
		return nil
	}
	out := make([]dag.NodeID, 0, d.bot-d.age.Top)
	for i := d.bot; i > d.age.Top; i-- {
		out = append(out, d.deq[i-1])
	}
	return out
}

// pushBottomOp implements Figure 5 pushBottom: three instructions.
type pushBottomOp struct {
	d        *abpDeque
	node     dag.NodeID
	pc       int
	localBot uint32
}

func (d *abpDeque) startPushBottom(_ int, node dag.NodeID) op {
	return &pushBottomOp{d: d, node: node}
}

func (o *pushBottomOp) step() bool {
	switch o.pc {
	case 0: // load localBot <- bot
		o.localBot = o.d.bot
		o.pc++
		return false
	case 1: // store node -> deq[localBot]
		o.d.deq[o.localBot] = o.node
		o.pc++
		return false
	case 2: // store localBot+1 -> bot
		o.d.bot = o.localBot + 1
		o.pc++
		return true
	}
	panic("sim: pushBottom stepped after completion")
}

func (o *pushBottomOp) result() dag.NodeID { return dag.None }

// popTopOp implements Figure 5 popTop: two instructions when the deque is
// observed empty, four otherwise (load age, load bot, load node, cas).
type popTopOp struct {
	d      *abpDeque
	pc     int
	oldAge Age
	node   dag.NodeID
	res    dag.NodeID
}

func (d *abpDeque) startPopTop(_ int) op {
	return &popTopOp{d: d, res: dag.None}
}

func (o *popTopOp) step() bool {
	switch o.pc {
	case 0: // load oldAge <- age
		o.oldAge = o.d.age
		o.pc++
		return false
	case 1: // load localBot <- bot; if localBot <= oldAge.top return NIL
		if o.d.bot <= o.oldAge.Top {
			o.res = dag.None
			o.pc = 4
			return true
		}
		o.pc++
		return false
	case 2: // load node <- deq[oldAge.top]
		o.node = o.d.deq[o.oldAge.Top]
		o.pc++
		return false
	case 3: // cas(age, oldAge, newAge)
		newAge := Age{Tag: o.oldAge.Tag, Top: o.oldAge.Top + 1}
		if o.d.age == o.oldAge {
			o.d.age = newAge
			o.res = o.node
		} else {
			o.d.casFailures++
			o.res = dag.None
		}
		o.pc++
		return true
	}
	panic("sim: popTop stepped after completion")
}

func (o *popTopOp) result() dag.NodeID { return o.res }

// popBottomOp implements Figure 5 popBottom: between one and seven
// instructions depending on the path taken.
type popBottomOp struct {
	d        *abpDeque
	pc       int
	localBot uint32
	node     dag.NodeID
	oldAge   Age
	newAge   Age
	res      dag.NodeID
}

func (d *abpDeque) startPopBottom(_ int) op {
	return &popBottomOp{d: d, res: dag.None}
}

func (o *popBottomOp) step() bool {
	switch o.pc {
	case 0: // load localBot <- bot; if 0 return NIL
		o.localBot = o.d.bot
		if o.localBot == 0 {
			o.res = dag.None
			o.pc = 7
			return true
		}
		o.localBot--
		o.pc++
		return false
	case 1: // store localBot -> bot
		o.d.bot = o.localBot
		o.pc++
		return false
	case 2: // load node <- deq[localBot]
		o.node = o.d.deq[o.localBot]
		o.pc++
		return false
	case 3: // load oldAge <- age; if localBot > oldAge.top return node
		o.oldAge = o.d.age
		if o.localBot > o.oldAge.Top {
			o.res = o.node
			o.pc = 7
			return true
		}
		o.pc++
		return false
	case 4: // store 0 -> bot
		o.d.bot = 0
		o.newAge = Age{Tag: (o.oldAge.Tag + 1) & o.d.tagMask, Top: 0}
		o.pc++
		return false
	case 5: // if localBot == oldAge.top: cas(age, oldAge, newAge)
		if o.localBot == o.oldAge.Top {
			if o.d.age == o.oldAge {
				o.d.age = o.newAge
				o.res = o.node
				o.pc = 7
				return true
			}
			o.d.casFailures++
		}
		o.pc++
		return false
	case 6: // store newAge -> age; return NIL
		o.d.age = o.newAge
		o.res = dag.None
		o.pc++
		return true
	}
	panic("sim: popBottom stepped after completion")
}

func (o *popBottomOp) result() dag.NodeID { return o.res }
