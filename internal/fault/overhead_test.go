package fault

import (
	"testing"
)

// BenchmarkPointDisabled is the number that justifies compiling failpoints
// into the deque hot paths: the disabled fast path is one atomic load.
func BenchmarkPointDisabled(b *testing.B) {
	Reset()
	for i := 0; i < b.N; i++ {
		Point("bench.disabled")
	}
}

// BenchmarkPointArmedOtherPoint measures the slow path taken when some
// unrelated point is armed (registry lookup miss under the lock).
func BenchmarkPointArmedOtherPoint(b *testing.B) {
	Reset()
	Enable("bench.other", Rule{Action: ActionYield, Times: 0, EveryNth: 1 << 30})
	defer Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Point("bench.disabled")
	}
}

// TestDisabledPointOverheadGate is the CI gate for the zero-overhead-when-
// disabled claim (DESIGN.md §9): the disabled fast path must stay within
// the noise of BenchmarkDequePushPopBottom's seed numbers. An atomic load
// plus a predicted branch is ~1-2ns on any supported hardware; the bound
// is set an order of magnitude above that so the gate catches structural
// regressions (a map lookup, an allocation, a lock on the fast path)
// without flaking on loaded CI runners. Skipped under -race, whose
// instrumentation taxes every atomic by design.
func TestDisabledPointOverheadGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates atomic loads; gate runs in the no-race chaos job")
	}
	Reset()
	const boundNs = 25.0
	// A fixed inner batch keeps the measurement meaningful even when the
	// test binary runs with -benchtime=1x (testing.Benchmark honors the
	// external flag, and a single timed call is all timer overhead).
	const batch = 1 << 20
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					Point("gate.disabled")
				}
			}
		})
		ns := float64(res.T.Nanoseconds()) / float64(res.N) / batch
		if attempt == 0 || ns < best {
			best = ns
		}
		if best <= boundNs {
			return
		}
	}
	t.Fatalf("disabled fault.Point costs %.1fns/op (bound %.0fns): the fast path regressed", best, boundNs)
}
