package analysis

import (
	"worksteal/internal/dag"
	"worksteal/internal/offline"
	"worksteal/internal/sim"
)

// ScheduleExtractor is a sim.Observer that converts a live simulation into
// the formal objects of Section 2: a kernel schedule (how many processes
// executed an instruction at each step) and an execution schedule (which
// nodes executed at each step). The result can be validated with the
// offline package's checkers, closing the loop between the executable
// scheduler and the paper's model: Theorem 1's universal lower bound must
// hold on every extracted schedule.
//
// Note the extracted schedule is generally NOT greedy — the work stealer is
// an on-line scheduler that spends steps on deque operations and failed
// steals — which is exactly why the paper needs Sections 3 and 4 rather
// than Theorem 2.
type ScheduleExtractor struct {
	perStep  map[int]*stepInfo
	maxStep  int
	prevExec int
}

type stepInfo struct {
	procs map[int]bool
	nodes []dag.NodeID
}

// NewScheduleExtractor returns an empty extractor.
func NewScheduleExtractor() *ScheduleExtractor {
	return &ScheduleExtractor{perStep: map[int]*stepInfo{}}
}

// OnRoundStart is a no-op.
func (x *ScheduleExtractor) OnRoundStart(e *sim.Engine, round int) {}

// OnInstruction attributes the instruction (and any node execution) to the
// current step.
func (x *ScheduleExtractor) OnInstruction(e *sim.Engine, proc int) {
	step := e.StepsSoFar()
	si := x.perStep[step]
	if si == nil {
		si = &stepInfo{procs: map[int]bool{}}
		x.perStep[step] = si
	}
	si.procs[proc] = true
	if step > x.maxStep {
		x.maxStep = step
	}
	if n := e.State().NumExecuted(); n != x.prevExec {
		x.prevExec = n
		si.nodes = append(si.nodes, e.LastExecuted())
	}
}

// Extract returns the kernel schedule prefix (p_i per step) and the
// execution schedule, truncated at the step where the final node executed
// (the engine's drain phase — processes observing the done flag and halting
// — contributes no node executions and is not part of the schedule). Steps
// are 1-based in the engine; the returned slices are 0-based.
func (x *ScheduleExtractor) Extract(g *dag.Graph) (offline.Fixed, *offline.ExecSchedule) {
	// Drop trailing steps with no node executions.
	for x.maxStep > 0 {
		si := x.perStep[x.maxStep]
		if si != nil && len(si.nodes) > 0 {
			break
		}
		x.maxStep--
	}
	prefix := make([]int, x.maxStep)
	e := &offline.ExecSchedule{Graph: g}
	maxProcs := 0
	for s := 1; s <= x.maxStep; s++ {
		si := x.perStep[s]
		var nodes []dag.NodeID
		p := 0
		if si != nil {
			p = len(si.procs)
			nodes = si.nodes
		}
		prefix[s-1] = p
		if p > maxProcs {
			maxProcs = p
		}
		e.Steps = append(e.Steps, nodes)
		e.Procs = append(e.Procs, p)
	}
	return offline.Fixed{NumProcs: maxProcs, Prefix: prefix}, e
}
