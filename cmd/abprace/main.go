// Command abprace runs only the whole-package static happens-before race
// detector (analyzer abprace of package internal/lint) over Go packages —
// the focused front end for the most expensive analyzer in the suite.
// The whole suite at once is cmd/abplint.
//
// Usage:
//
//	go run ./cmd/abprace [-json] [-sarif file] [-baseline file]
//	                     [-write-baseline file] [-unused-ignores]
//	                     [-C dir] [packages]
//
// Packages default to ./... . Exit status: 0 when clean, 1 when findings
// were reported, 2 on operational failure. Findings can be suppressed case
// by case with a justified //abp:race-ignore comment; -unused-ignores
// reports //abp:race-ignore directives that no longer suppress anything
// (directives addressed to other analyzers are left to abpvet, which runs
// them); -baseline drops findings recorded in a previous -json report and
// -write-baseline records the current findings as that report.
package main

import (
	"io"
	"os"

	"worksteal/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run returns the exit status instead of calling os.Exit, for in-process
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	tool := &lint.Tool{Name: "abprace", Analyzers: []*lint.Analyzer{lint.AbpRace}}
	return tool.Main(args, stdout, stderr)
}
