// Verifier: the paper's opening example — "a parallel design verifier may
// execute concurrently with other serial and parallel applications" — as a
// real program: a parallel DPLL SAT solver (internal/apps) running on the
// work-stealing pool, optionally while background load competes for the
// processor (the multiprogrammed mix of the paper's introduction).
//
// Run with:
//
//	go run ./examples/verifier -pigeons 7 -holes 6 -background 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"worksteal/internal/apps"
	"worksteal/internal/sched"
)

func pigeonhole(pigeons, holes int) apps.CNF {
	v := func(p, h int) int { return p*holes + h + 1 }
	var clauses [][]int
	for p := 0; p < pigeons; p++ {
		var c []int
		for h := 0; h < holes; h++ {
			c = append(c, v(p, h))
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, []int{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return apps.CNF{NumVars: pigeons * holes, Clauses: clauses}
}

func main() {
	pigeons := flag.Int("pigeons", 7, "pigeons in the unsatisfiable core")
	holes := flag.Int("holes", 6, "holes (pigeons-1 for UNSAT)")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	background := flag.Int("background", 0, "competing background spinner goroutines")
	flag.Parse()

	// The multiprogrammed mix: other 'applications' compete for processors.
	stop := make(chan struct{})
	for i := 0; i < *background; i++ {
		go func() {
			x := uint64(1)
			for {
				select {
				case <-stop:
					return
				default:
					x ^= x << 13
					runtime.Gosched()
				}
			}
		}()
	}
	defer close(stop)

	pool := sched.New(sched.Config{Workers: *workers})

	// An unsatisfiable verification condition: the whole search tree must
	// be refuted (no early out), the hardest case.
	f := pigeonhole(*pigeons, *holes)
	fmt.Printf("verifying PHP(%d,%d): %d variables, %d clauses, %d background tasks\n",
		*pigeons, *holes, f.NumVars, len(f.Clauses), *background)
	start := time.Now()
	var ok bool
	pool.Run(func(w *sched.Worker) { _, ok = apps.SolveSAT(w, f, 10) })
	fmt.Printf("result: satisfiable=%v (expected false) in %v\n", ok, time.Since(start))
	if ok {
		panic("pigeonhole principle disproved; please collect your Fields Medal")
	}

	// A satisfiable instance: speculative parallel search with early out.
	rng := rand.New(rand.NewSource(11))
	sat := apps.CNF{NumVars: 60}
	for i := 0; i < 140; i++ {
		c := make([]int, 3)
		for j := range c {
			v := 1 + rng.Intn(sat.NumVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		sat.Clauses = append(sat.Clauses, c)
	}
	start = time.Now()
	var model []bool
	pool.Run(func(w *sched.Worker) { model, ok = apps.SolveSAT(w, sat, 10) })
	fmt.Printf("random 3-SAT (60 vars, 140 clauses): satisfiable=%v in %v\n", ok, time.Since(start))
	if ok && !sat.Eval(model) {
		panic("solver returned a bogus model")
	}

	s := pool.Stats()
	fmt.Printf("pool totals: %d tasks, %d steals / %d attempts\n",
		s.TasksRun, s.Steals, s.StealAttempts)
}
