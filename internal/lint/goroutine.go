package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// Goroutine-context inference: the layer abprace adds on top of the call
// graph. Where ownedNodes answers "which functions run in the audited
// owner context", this pass answers the more general question "which
// goroutine ROOTS can be executing a given function" — the prerequisite
// for any cross-goroutine ordering argument. A root is either
//
//   - the target of a `go` statement (one root per statically resolved
//     target, covering every launch site of that target), or
//   - the synthetic EXTERNAL root: exported functions, main, and init are
//     callable from outside the package, so everything they reach
//     statically runs on whatever goroutine the external caller supplies.
//
// Context propagates along static and defer edges (same goroutine) and
// stops at go edges (the callee starts a new root). A function literal
// that only escapes as a value has no invocation edge and therefore NO
// context: its eventual caller is unknown, and the analyzer deliberately
// stays silent about it rather than invent one (documented in DESIGN.md
// as an under-approximation).

// A gLaunch is one `go` statement starting a root, with the function it
// appears in.
type gLaunch struct {
	fn   *funcNode
	stmt *ast.GoStmt
}

// A gRoot is one goroutine context.
type gRoot struct {
	fn       *funcNode // entry function of the goroutine; nil for external
	external bool
	sites    []gLaunch // every `go` statement launching this root
	// multi marks roots that may run as two or more concurrent instances:
	// two launch sites, or a launch site on a CFG cycle.
	multi bool
	// entries are the propagation seeds; parent records the BFS tree so
	// diagnostics can print how a root reaches a function.
	entries []*funcNode
	parent  map[*funcNode]*funcNode
}

// name renders the root for diagnostics.
func (r *gRoot) name() string {
	if r.external {
		return "external caller"
	}
	return "goroutine " + r.fn.name()
}

// launchedIn names the functions containing the root's go statements.
func (r *gRoot) launchedIn() string {
	seen := map[string]bool{}
	var names []string
	for _, l := range r.sites {
		n := l.fn.name()
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	return strings.Join(names, ", ")
}

// chain renders the call path by which this root reaches n, from the
// root's entry down to n.
func (r *gRoot) chain(n *funcNode) string {
	var parts []string
	for cur := n; cur != nil; cur = r.parent[cur] {
		parts = append(parts, cur.name())
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " -> ")
}

// concurrent reports whether an access on root r can run concurrently
// with an access on root o. Distinct roots are always concurrent. A go
// root is self-concurrent when it may have two live instances. The
// external root is never self-concurrent: the package's documented usage
// contracts serialize external calls — the one assumption the analyzer
// takes on faith (DESIGN.md §8).
func (r *gRoot) concurrent(o *gRoot) bool {
	if r != o {
		return true
	}
	return !r.external && r.multi
}

// concurrentAdversarial is concurrent with the external-serialization
// assumption dropped: the external root is treated as racing itself.
// abprace keeps the assumption because it reports races — dropping it
// would flood every exported entry point with findings. abporder must
// drop it when PROVING an atomic unnecessary: "no concurrent access"
// established only by assuming callers serialize is not a license to
// remove the synchronization those callers may in fact be relying on.
func (r *gRoot) concurrentAdversarial(o *gRoot) bool {
	if r != o {
		return true
	}
	return r.external || r.multi
}

// A goroutineSet is the result of inference: the roots, and for each
// function the roots that can be executing it.
type goroutineSet struct {
	roots []*gRoot
	ctx   map[*funcNode][]*gRoot
}

// inferGoroutines computes goroutine contexts over a call graph. cfgOf
// supplies (cached) CFGs for launch-site multiplicity queries.
func inferGoroutines(g *callGraph, cfgOf func(*funcNode) *funcCFG) *goroutineSet {
	s := &goroutineSet{ctx: map[*funcNode][]*gRoot{}}

	ext := &gRoot{external: true}
	for _, n := range g.nodes {
		if n.decl == nil {
			continue
		}
		name := n.decl.Name.Name
		if ast.IsExported(name) || name == "main" || name == "init" {
			ext.entries = append(ext.entries, n)
		}
	}
	s.roots = append(s.roots, ext)

	// One root per statically resolved go target, in deterministic node
	// order, accumulating every launch site.
	byTarget := map[*funcNode]*gRoot{}
	for _, from := range g.nodes {
		for _, e := range g.edges[from] {
			if e.kind != callGo {
				continue
			}
			stmt, _ := e.site.(*ast.GoStmt)
			r := byTarget[e.to]
			if r == nil {
				r = &gRoot{fn: e.to, entries: []*funcNode{e.to}}
				byTarget[e.to] = r
				s.roots = append(s.roots, r)
			}
			r.sites = append(r.sites, gLaunch{fn: from, stmt: stmt})
		}
	}
	for _, r := range s.roots[1:] {
		r.multi = len(r.sites) > 1
		for _, l := range r.sites {
			if l.stmt == nil {
				continue
			}
			cfg := cfgOf(l.fn)
			if blk, ok := cfg.nodeBlock[l.stmt]; ok && cfg.reachability()[blk.index][blk.index] {
				r.multi = true // launched on a loop
			}
		}
	}

	for _, r := range s.roots {
		s.propagate(g, r)
	}
	return s
}

// propagate runs BFS from the root's entries along non-go edges,
// recording the first-discovery parent for provenance chains.
func (s *goroutineSet) propagate(g *callGraph, r *gRoot) {
	r.parent = map[*funcNode]*funcNode{}
	seen := map[*funcNode]bool{}
	var queue []*funcNode
	for _, e := range r.entries {
		if !seen[e] {
			seen[e] = true
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		s.ctx[n] = append(s.ctx[n], r)
		for _, e := range g.edges[n] {
			if e.kind == callGo || seen[e.to] {
				continue
			}
			seen[e.to] = true
			r.parent[e.to] = n
			queue = append(queue, e.to)
		}
	}
}

// sharedNodes returns, in deterministic order, the functions reachable
// from at least one root (callers iterate this instead of the ctx map).
func (s *goroutineSet) sharedNodes(g *callGraph) []*funcNode {
	var out []*funcNode
	for _, n := range g.nodes {
		if len(s.ctx[n]) > 0 {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].body() != nil && out[j].body() != nil && out[i].body().Pos() < out[j].body().Pos()
	})
	return out
}
