package analysis

import (
	"fmt"
	"io"
	"strings"

	"worksteal/internal/dag"
	"worksteal/internal/sim"
)

// ScheduleRecorder is a sim.Observer that reconstructs the execution
// schedule in the style of the paper's Figure 2(b): for each kernel step,
// which nodes were executed and by which processes. Only the first MaxSteps
// steps are kept (traces are for eyeballs, not bulk analysis — use RoundCSV
// for that).
type ScheduleRecorder struct {
	MaxSteps int
	// rows[s] lists (proc, node) executions observed at step s.
	rows     map[int][]execEvent
	prevExec int
	maxStep  int
}

type execEvent struct {
	proc int
	node dag.NodeID
}

// NewScheduleRecorder keeps the first maxSteps steps of the schedule.
func NewScheduleRecorder(maxSteps int) *ScheduleRecorder {
	return &ScheduleRecorder{MaxSteps: maxSteps, rows: map[int][]execEvent{}}
}

// OnRoundStart is a no-op.
func (r *ScheduleRecorder) OnRoundStart(e *sim.Engine, round int) {}

// OnInstruction detects node executions by watching the executed count.
func (r *ScheduleRecorder) OnInstruction(e *sim.Engine, proc int) {
	n := e.State().NumExecuted()
	if n == r.prevExec {
		return
	}
	r.prevExec = n
	step := e.StepsSoFar()
	if step > r.maxStep {
		r.maxStep = step
	}
	if step <= r.MaxSteps {
		r.rows[step] = append(r.rows[step], execEvent{proc: proc, node: e.LastExecuted()})
	}
}

// Render renders the recorded schedule, one row per step with the nodes
// executed (x_k naming, 1-based) annotated with the executing process.
func (r *ScheduleRecorder) Render(w io.Writer) {
	fmt.Fprintln(w, "step | node executions (node@process)")
	limit := r.maxStep
	if limit > r.MaxSteps {
		limit = r.MaxSteps
	}
	for s := 1; s <= limit; s++ {
		var sb strings.Builder
		for _, ev := range r.rows[s] {
			fmt.Fprintf(&sb, " x%d@p%d", ev.node+1, ev.proc)
		}
		fmt.Fprintf(w, "%4d |%s\n", s, sb.String())
	}
	if r.maxStep > r.MaxSteps {
		fmt.Fprintf(w, "... (%d more steps)\n", r.maxStep-r.MaxSteps)
	}
}

// Executions returns the total number of recorded node executions.
func (r *ScheduleRecorder) Executions() int {
	n := 0
	for _, evs := range r.rows {
		n += len(evs)
	}
	return n
}
