package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Tool is one command-line front end over the analyzer suite. The whole
// CLI (flag parsing, loading, running, emitting, exit status) lives here in
// the library so cmd/abpvet and cmd/abprace are one-line wrappers and tests
// drive the commands in-process.
type Tool struct {
	// Name prefixes diagnostics and names the SARIF driver.
	Name string
	// Analyzers is the suite this tool runs by default. It also scopes
	// -unused-ignores: only directives addressed to one of these analyzers
	// can be judged stale by this tool — a directive for an analyzer that
	// did not run might well suppress one of its findings.
	Analyzers []*Analyzer
}

// Main is the whole command, factored for in-process testing: it returns
// the exit status (0 clean, 1 findings, 2 operational failure) instead of
// calling os.Exit.
func (t *Tool) Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(t.Name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "write findings to stdout as a JSON report (the -baseline input format)")
	sarifPath := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this `file` (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "drop findings recorded in this baseline `file` (a previous -json report)")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this `file` as a baseline and exit 0")
	unusedIgnores := fs.Bool("unused-ignores", false, "also report stale ignore directives addressed to this tool's analyzers (incompatible with -only)")
	dir := fs.String("C", ".", "load packages as if launched from `dir`")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [flags] [packages]\n\n", t.Name)
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range t.Analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := t.Analyzers
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *writeBaseline != "" && *baselinePath != "" {
		fmt.Fprintf(stderr, "%s: -write-baseline refreshes a baseline from scratch and cannot be combined with -baseline\n", t.Name)
		return 2
	}
	if *only != "" {
		if *unusedIgnores {
			fmt.Fprintf(stderr, "%s: -unused-ignores judges staleness against the tool's whole analyzer set and cannot be combined with -only\n", t.Name)
			return 2
		}
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "%s: unknown analyzer %q\n", t.Name, name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := LoaderFor(root).Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
		return 2
	}

	// ran scopes -unused-ignores: a directive addressed to an analyzer
	// outside this tool's suite is not judged (it may suppress a finding
	// the tool never computed).
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.Standard {
			continue
		}
		ignores := CollectIgnores(pkg)
		for _, a := range analyzers {
			diags, err := RunWith(a, pkg, ignores)
			if err != nil {
				fmt.Fprintf(stderr, "%s: %s: %v\n", t.Name, pkg.ImportPath, err)
				return 2
			}
			for _, d := range diags {
				findings = append(findings, MakeFinding(a.Name, pkg.Fset, d.Pos, d.Message, root))
			}
		}
		if *unusedIgnores {
			for _, d := range ignores.Unused() {
				if !ran[d.Analyzer] {
					continue
				}
				findings = append(findings, UnusedIgnoreFinding(d, root))
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
			return 2
		}
		if err := WriteJSON(f, findings); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
			return 2
		}
		fmt.Fprintf(stderr, "%s: wrote baseline with %d finding(s) to %s\n", t.Name, len(findings), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		baseline, err := ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
			return 2
		}
		findings = baseline.Filter(findings)
	}

	if *jsonOut {
		if err := WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
			return 2
		}
	}
	if *sarifPath != "" {
		rules := analyzers
		if *unusedIgnores {
			rules = append(append([]*Analyzer(nil), rules...), UnusedIgnoreAnalyzer)
		}
		if err := t.writeSARIFTo(*sarifPath, stdout, rules, findings); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", t.Name, err)
			return 2
		}
	}
	if !*jsonOut && *sarifPath != "-" {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(stderr, "%s: %d finding(s)\n", t.Name, len(findings))
		return 1
	}
	return 0
}

// writeSARIFTo writes the SARIF log to path, with "-" meaning stdout.
func (t *Tool) writeSARIFTo(path string, stdout io.Writer, rules []*Analyzer, findings []Finding) error {
	if path == "-" {
		return WriteSARIF(stdout, t.Name, rules, findings)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSARIF(f, t.Name, rules, findings); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
