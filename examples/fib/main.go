// Fib: the canonical fork-join workload (the same shape as workload.FibDag,
// which the paper's analysis is exercised on), computed with real work on
// the native pool and compared against the serial version.
//
// Run with:
//
//	go run ./examples/fib -n 30 -cutoff 14 -workers 4
package main

import (
	"flag"
	"fmt"
	"time"

	"worksteal/internal/sched"
)

func fibSerial(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

// fibPar forks fib(n-1) while computing fib(n-2) inline, joining at the
// end: node a spawns, node b recurses, node c joins, exactly the three-node
// thread body of workload.FibDag.
func fibPar(w *sched.Worker, n, cutoff int) uint64 {
	if n < cutoff {
		return fibSerial(n)
	}
	a, b := sched.Join2(w,
		func(w2 *sched.Worker) uint64 { return fibPar(w2, n-1, cutoff) },
		func(w2 *sched.Worker) uint64 { return fibPar(w2, n-2, cutoff) })
	return a + b
}

func main() {
	n := flag.Int("n", 30, "fibonacci index")
	cutoff := flag.Int("cutoff", 14, "serial cutoff")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()

	start := time.Now()
	want := fibSerial(*n)
	serial := time.Since(start)

	pool := sched.New(sched.Config{Workers: *workers})
	var got uint64
	start = time.Now()
	pool.Run(func(w *sched.Worker) { got = fibPar(w, *n, *cutoff) })
	parallel := time.Since(start)

	if got != want {
		panic(fmt.Sprintf("fib mismatch: %d != %d", got, want))
	}
	s := pool.Stats()
	fmt.Printf("fib(%d) = %d\n", *n, got)
	fmt.Printf("serial   %v\n", serial)
	fmt.Printf("parallel %v on %d workers (speedup %.2f)\n",
		parallel, pool.Workers(), float64(serial)/float64(parallel))
	fmt.Printf("%d tasks, %d steals / %d attempts\n", s.TasksRun, s.Steals, s.StealAttempts)
	fmt.Printf("idle lifecycle: %d parks, %d wakes, %v backing off\n",
		s.Parks, s.Wakes, time.Duration(s.BackoffNanos).Round(time.Microsecond))
}
