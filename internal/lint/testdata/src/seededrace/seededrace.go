// Package seededrace replays, in miniature, the plain-counter Pool.Stats
// race PR 1 fixed in internal/sched: worker goroutines bump per-worker
// counters through a call chain while the external Stats reader sums them
// with no ordering whatsoever. abprace must catch this class mechanically,
// and must print both goroutine provenance chains — the worker loop's and
// the external caller's — so the report names the two racing parties.
package seededrace

// A Pool owns a set of workers, each running loop on its own goroutine.
type Pool struct {
	workers []*Worker
}

// A Worker counts its steal attempts — in a plain int, the PR 1 bug.
type Worker struct {
	steals int
}

// New starts n workers.
func New(n int) *Pool {
	p := &Pool{}
	for i := 0; i < n; i++ {
		w := &Worker{}
		p.workers = append(p.workers, w)
		go w.loop()
	}
	return p
}

// Stats sums the counters while the workers still run: the racing read.
func (p *Pool) Stats() int {
	total := 0
	for _, w := range p.workers {
		total += w.steals // want `possible data race on field steals`
	}
	return total
}

// loop is the worker body; record is a separate hop so the provenance
// chain the analyzer prints is more than a single frame.
func (w *Worker) loop() {
	for {
		w.record()
	}
}

func (w *Worker) record() {
	w.steals++
}
