package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// FuzzLayoutClassifier feeds arbitrary type declarations to abplayout's
// layout computation and asserts its contract: structLayout never panics
// on a struct whose fields are all sizeComputable, the result is
// deterministic, offsets are nondecreasing with each field placed after
// the previous one ends, both size models (amd64 and arm64 — both 64-bit
// gc layouts) agree on every span, and a full-line blank pad really
// isolates — fields on opposite sides of a >=64-byte pad never share a
// cache line. The declarations are typechecked hermetically, with the
// same harness FuzzOrderClassifier uses.
func FuzzLayoutClassifier(f *testing.F) {
	seeds := []string{
		"type S struct {\n\ta uint64\n\t_ [56]byte\n\tb uint64\n}",
		"type P struct {\n\ta uint64\n\t_ [64]byte\n\tb uint64\n}",
		"type T struct {\n\ta byte\n\tb uint64\n\tc [3]int32\n}",
		"type Inner struct{ x, y uint32 }\ntype Outer struct {\n\th Inner\n\tcells [7]Inner\n}",
		"type Z struct{}\ntype W struct {\n\tz Z\n\ta uint64\n\tzz [0]uint64\n\tb uint32\n}",
		"type G[T any] struct {\n\tval T\n\tmark uint64\n}",
		"type Str struct {\n\ts string\n\tv []uint64\n\tm map[int]int\n\tfn func()\n\tc chan int\n\ti interface{ M() }\n}",
		"type Big struct {\n\ta [129]byte\n\tb uint64\n\t_ [40]byte\n\tc complex128\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		src := "package layoutfuzz\n\n" + body
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil || len(file.Imports) > 0 {
			// Not valid Go, or needs an importer this hermetic harness
			// does not wire up.
			return
		}
		conf := types.Config{Error: func(error) {}}
		pkg, _ := conf.Check("worksteal/fuzz/layout", fset, []*ast.File{file}, nil)
		if pkg == nil {
			return
		}

		scope := pkg.Scope()
		for _, objName := range scope.Names() {
			obj, isType := scope.Lookup(objName).(*types.TypeName)
			if !isType {
				continue
			}
			st, isStruct := obj.Type().Underlying().(*types.Struct)
			if !isStruct {
				continue
			}
			computable := true
			for i := 0; i < st.NumFields(); i++ {
				if !sizeComputable(st.Field(i).Type(), 0) {
					computable = false
					break
				}
			}
			if !computable {
				continue // the analyzer skips these structs; so does the fuzz
			}

			var spans [][]layoutField
			for _, model := range layoutModels {
				fields := structLayout(st, model.sizes) // must not panic
				again := structLayout(st, model.sizes)
				if len(fields) != st.NumFields() || len(again) != len(fields) {
					t.Fatalf("%s/%s: %d fields laid out as %d/%d spans",
						objName, model.arch, st.NumFields(), len(fields), len(again))
				}
				end := int64(0)
				for i, fld := range fields {
					if again[i].off != fld.off || again[i].size != fld.size || again[i].pad != fld.pad {
						t.Fatalf("%s/%s field %d: nondeterministic layout (%d,%d,%v) then (%d,%d,%v)",
							objName, model.arch, i, fld.off, fld.size, fld.pad,
							again[i].off, again[i].size, again[i].pad)
					}
					if fld.size < 0 {
						t.Fatalf("%s/%s field %d: negative size %d", objName, model.arch, i, fld.size)
					}
					if fld.off < end {
						t.Fatalf("%s/%s field %d: offset %d overlaps previous end %d",
							objName, model.arch, i, fld.off, end)
					}
					end = fld.off + fld.size
					if (fld.v.Name() == "_") != fld.pad {
						t.Fatalf("%s/%s field %d: pad flag %v for name %q",
							objName, model.arch, i, fld.pad, fld.v.Name())
					}
				}
				spans = append(spans, fields)
			}
			// Both models are 64-bit gc layouts: identical spans expected,
			// and a divergence is exactly what checkStructs' per-model loop
			// exists to catch — so the fuzz pins it too.
			for i := range spans[0] {
				a, b := spans[0][i], spans[1][i]
				if a.off != b.off || a.size != b.size {
					t.Fatalf("%s field %d: models disagree, amd64 (%d,%d) vs arm64 (%d,%d)",
						objName, i, a.off, a.size, b.off, b.size)
				}
			}
			// A full-line blank pad always isolates: no field before it may
			// share a cache line with any field after it.
			for _, fields := range spans {
				for p, pad := range fields {
					if !pad.pad || pad.size < cacheLineSize {
						continue
					}
					for i := 0; i < p; i++ {
						for j := p + 1; j < len(fields); j++ {
							if fields[i].size == 0 || fields[j].size == 0 {
								continue
							}
							if linesOverlap(fields[i], fields[j]) {
								t.Fatalf("%s: fields %d and %d share a line across the %d-byte pad at field %d",
									objName, i, j, pad.size, p)
							}
						}
					}
				}
			}
		}
	})
}
