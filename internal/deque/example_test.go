package deque_test

import (
	"fmt"

	"worksteal/internal/deque"
)

// The owner pushes and pops at the bottom; thieves steal from the top.
func ExampleDeque() {
	d := deque.NewWithCapacity[string](8)
	a, b, c := "oldest", "middle", "newest"
	d.PushBottom(&a)
	d.PushBottom(&b)
	d.PushBottom(&c)

	fmt.Println(*d.PopTop())    // a thief takes the oldest work
	fmt.Println(*d.PopBottom()) // the owner takes the newest
	fmt.Println(d.Len())
	// Output:
	// oldest
	// newest
	// 1
}

// The Chase-Lev variant grows without bound and needs no tag.
func ExampleChaseLev() {
	d := deque.NewChaseLev[int]()
	vals := make([]int, 1000)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i]) // never fails
	}
	fmt.Println(d.Len(), *d.PopTop(), *d.PopBottom())
	// Output: 1000 0 999
}
