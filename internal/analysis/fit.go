package analysis

import (
	"fmt"
	"math"
)

// RunPoint is one measured execution used for bound fitting: a run of a
// computation with work T1 and critical path Tinf on P processes, finishing
// in Steps kernel steps with processor average PA.
type RunPoint struct {
	T1    int
	Tinf  int
	P     int
	Steps int
	PA    float64
}

// FitResult holds the least-squares constants of the paper's bound
//
//	T ~= C1 * T1/P_A + Cinf * Tinf * P/P_A
//
// fitted over a set of runs, together with goodness-of-fit measures. The
// Hood studies report C1 and Cinf close to 1 when T is measured in units of
// work (here: instructions are the unit, and the scheduling loop spends a
// small constant number of instructions per node, so C1 reflects that
// constant rather than exactly 1).
type FitResult struct {
	C1       float64
	Cinf     float64
	MaxRatio float64 // max over runs of measured / fitted
	MeanAbs  float64 // mean |measured - fitted| / measured
}

// FitBound computes the non-negative least-squares fit of
// Steps*PA = C1*T1 + Cinf*Tinf*P, which is the bound multiplied through by
// P_A. It returns an error if the system is degenerate.
func FitBound(points []RunPoint) (FitResult, error) {
	if len(points) < 2 {
		return FitResult{}, fmt.Errorf("analysis: need at least 2 runs, have %d", len(points))
	}
	// Least squares for y = c1*a + cinf*b with a=T1, b=Tinf*P, y=Steps*PA.
	var saa, sab, sbb, say, sby float64
	for _, pt := range points {
		a := float64(pt.T1)
		b := float64(pt.Tinf) * float64(pt.P)
		y := float64(pt.Steps) * pt.PA
		saa += a * a
		sab += a * b
		sbb += b * b
		say += a * y
		sby += b * y
	}
	det := saa*sbb - sab*sab
	if math.Abs(det) < 1e-12 {
		return FitResult{}, fmt.Errorf("analysis: degenerate design matrix (runs do not vary T1 and Tinf*P independently)")
	}
	c1 := (say*sbb - sby*sab) / det
	cinf := (sby*saa - say*sab) / det
	// Clamp tiny negatives from collinearity; refit one-dimensionally.
	if c1 < 0 {
		c1 = 0
		cinf = sby / sbb
	}
	if cinf < 0 {
		cinf = 0
		c1 = say / saa
	}
	res := FitResult{C1: c1, Cinf: cinf}
	for _, pt := range points {
		fitted := (c1*float64(pt.T1) + cinf*float64(pt.Tinf)*float64(pt.P)) / pt.PA
		if fitted <= 0 {
			continue
		}
		ratio := float64(pt.Steps) / fitted
		if ratio > res.MaxRatio {
			res.MaxRatio = ratio
		}
		res.MeanAbs += math.Abs(float64(pt.Steps)-fitted) / float64(pt.Steps)
	}
	res.MeanAbs /= float64(len(points))
	return res, nil
}

// BoundRatio returns measured time divided by the bound value
// (c1*T1 + cinf*Tinf*P)/PA for one run: values at or below 1 mean the run
// met the bound with the given constants.
func BoundRatio(pt RunPoint, c1, cinf float64) float64 {
	bound := (c1*float64(pt.T1) + cinf*float64(pt.Tinf)*float64(pt.P)) / pt.PA
	return float64(pt.Steps) / bound
}
