package lint

import "testing"

// BenchmarkAbpvet times the full analyzer suite over the repository's own
// packages — the flow engine's real workload — so regressions in CFG,
// call-graph, or goroutine-inference cost show up in the perf trajectory
// alongside the scheduler benchmarks. Loading and type-checking happen
// once outside the timer: the subject is analysis, not `go list`.
func BenchmarkAbpvet(b *testing.B) {
	pkgs, err := NewLoader().Load("../..", "./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			if pkg.Standard {
				continue
			}
			ignores := CollectIgnores(pkg)
			for _, a := range All() {
				if _, err := RunWith(a, pkg, ignores); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAbpvetColdLoader is the per-invocation cost without the shared
// cache: every iteration parses and type-checks the whole dependency graph
// from scratch, the way each Tool run did before LoaderFor.
func BenchmarkAbpvetColdLoader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewLoader().Load("../..", "./..."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbpvetSharedLoader is the same full-tree load through the
// process-wide LoaderFor cache — the abpvet-then-abprace (or repeated
// in-process test) scenario: after the first iteration only the `go list`
// subprocess remains; parse and type-check are cache hits.
func BenchmarkAbpvetSharedLoader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := LoaderFor("../..").Load("../..", "./..."); err != nil {
			b.Fatal(err)
		}
	}
}
