package apps

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"worksteal/internal/sched"
)

func runOn(workers int, fn func(w *sched.Worker)) {
	sched.New(sched.Config{Workers: workers}).Run(fn)
}

func TestQuicksortCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 10, 1000, 50000} {
		for _, workers := range []int{1, 4} {
			data := make([]int, n)
			for i := range data {
				data[i] = rng.Intn(1000)
			}
			want := append([]int(nil), data...)
			sort.Ints(want)
			runOn(workers, func(w *sched.Worker) { Quicksort(w, data, 32) })
			for i := range data {
				if data[i] != want[i] {
					t.Fatalf("n=%d workers=%d: mismatch at %d", n, workers, i)
				}
			}
		}
	}
}

func TestQuicksortAdversarialInputs(t *testing.T) {
	cases := map[string]func(n int) []int{
		"sorted": func(n int) []int {
			d := make([]int, n)
			for i := range d {
				d[i] = i
			}
			return d
		},
		"reversed": func(n int) []int {
			d := make([]int, n)
			for i := range d {
				d[i] = n - i
			}
			return d
		},
		"equal": func(n int) []int {
			d := make([]int, n)
			for i := range d {
				d[i] = 7
			}
			return d
		},
		"sawtooth": func(n int) []int {
			d := make([]int, n)
			for i := range d {
				d[i] = i % 5
			}
			return d
		},
	}
	for name, mk := range cases {
		data := mk(5000)
		want := append([]int(nil), data...)
		sort.Ints(want)
		runOn(4, func(w *sched.Worker) { Quicksort(w, data, 16) })
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("%s: mismatch at %d", name, i)
			}
		}
	}
}

func TestQuickQuicksortMatchesSort(t *testing.T) {
	pool := sched.New(sched.Config{Workers: 4})
	prop := func(vals []int16, grain uint8) bool {
		data := make([]int, len(vals))
		for i, v := range vals {
			data[i] = int(v)
		}
		want := append([]int(nil), data...)
		sort.Ints(want)
		pool.Run(func(w *sched.Worker) { Quicksort(w, data, int(grain)) })
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegratePolynomial(t *testing.T) {
	// Integral of 3x^2 over [0, 2] = 8, exactly representable by Simpson.
	var got float64
	runOn(4, func(w *sched.Worker) {
		got = Integrate(w, func(x float64) float64 { return 3 * x * x }, 0, 2, 1e-10)
	})
	if math.Abs(got-8) > 1e-9 {
		t.Fatalf("integral = %v, want 8", got)
	}
}

func TestIntegrateOscillatory(t *testing.T) {
	// Integral of sin over [0, pi] = 2; the adaptive recursion refines the
	// curvature unevenly, producing an irregular dag.
	var got float64
	runOn(4, func(w *sched.Worker) {
		got = Integrate(w, math.Sin, 0, math.Pi, 1e-9)
	})
	if math.Abs(got-2) > 1e-7 {
		t.Fatalf("integral = %v, want 2", got)
	}
}

func TestIntegrateSharpPeak(t *testing.T) {
	// A narrow Gaussian: adaptive quadrature must refine near the peak.
	f := func(x float64) float64 { return math.Exp(-x * x * 400) }
	var got float64
	runOn(4, func(w *sched.Worker) { got = Integrate(w, f, -1, 1, 1e-9) })
	want := math.Sqrt(math.Pi) / 20 // erf(20) ~ 1
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("integral = %v, want %v", got, want)
	}
}

func TestIntegrateDeterministicAcrossWorkers(t *testing.T) {
	// Summation order is fixed by the recursion tree, not the schedule, so
	// the result is bit-identical at any worker count.
	results := make([]float64, 0, 3)
	for _, workers := range []int{1, 2, 7} {
		var got float64
		runOn(workers, func(w *sched.Worker) {
			got = Integrate(w, func(x float64) float64 { return math.Sin(x*x) + x }, 0, 3, 1e-8)
		})
		results = append(results, got)
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("results differ across worker counts: %v", results)
	}
}

func TestCountPrimes(t *testing.T) {
	var got int
	runOn(4, func(w *sched.Worker) { got = CountPrimes(w, 0, 10000, 128) })
	if got != 1229 { // pi(10^4)
		t.Fatalf("primes below 10000 = %d, want 1229", got)
	}
}

func TestCountPrimesEdges(t *testing.T) {
	var a, b, c int
	runOn(2, func(w *sched.Worker) {
		a = CountPrimes(w, 0, 0, 8)
		b = CountPrimes(w, 0, 3, 8)
		c = CountPrimes(w, 10, 11, 8)
	})
	if a != 0 || b != 1 || c != 0 {
		t.Fatalf("edge counts = %d %d %d", a, b, c)
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 97: true}
	for n := -3; n < 100; n++ {
		want := primes[n]
		if !want && n >= 2 {
			want = true
			for d := 2; d*d <= n; d++ {
				if n%d == 0 {
					want = false
					break
				}
			}
		}
		if got := isPrime(n); got != want {
			t.Fatalf("isPrime(%d) = %v", n, got)
		}
	}
}

func TestPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(50)
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(20)
		}
		p := partition(data)
		for i := 0; i < p; i++ {
			if data[i] > data[p] {
				t.Fatalf("left element %d > pivot %d", data[i], data[p])
			}
		}
		for i := p + 1; i < n; i++ {
			if data[i] < data[p] {
				t.Fatalf("right element %d < pivot %d", data[i], data[p])
			}
		}
	}
}
