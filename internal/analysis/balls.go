package analysis

import "math/rand"

// BallsInBinsTrial throws len(weights) balls independently and uniformly at
// random into len(weights) bins and returns the total weight of the bins
// that received at least one ball.
func BallsInBinsTrial(weights []float64, rng *rand.Rand) float64 {
	n := len(weights)
	if n == 0 {
		return 0
	}
	hit := make([]bool, n)
	for i := 0; i < n; i++ {
		hit[rng.Intn(n)] = true
	}
	x := 0.0
	for i, h := range hit {
		if h {
			x += weights[i]
		}
	}
	return x
}

// BallsInBinsEstimate estimates Pr[X >= beta*W] over trials Monte Carlo
// runs, where X is the hit weight of BallsInBinsTrial and W the total
// weight. Lemma 7 lower-bounds this probability by 1 - 1/((1-beta)e).
func BallsInBinsEstimate(weights []float64, beta float64, trials int, rng *rand.Rand) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return 1
	}
	succ := 0
	for t := 0; t < trials; t++ {
		if BallsInBinsTrial(weights, rng) >= beta*total {
			succ++
		}
	}
	return float64(succ) / float64(trials)
}

// Lemma7Bound returns the paper's lower bound 1 - 1/((1-beta)e) on
// Pr[X >= beta*W].
func Lemma7Bound(beta float64) float64 {
	const e = 2.718281828459045
	return 1 - 1/((1-beta)*e)
}
