// Command abpvet runs the repository's custom concurrency-contract
// analyzers (package internal/lint) over Go packages, in the manner of a
// golang.org/x/tools/go/analysis multichecker but with zero dependencies
// outside the standard library.
//
// Usage:
//
//	go run ./cmd/abpvet [-only owneronly,tagaba] [-json] [-sarif file]
//	                    [-baseline file] [-unused-ignores] [-C dir] [packages]
//
// Packages default to ./... . Test files and testdata directories are not
// analyzed (the analyzers guard production invariants; tests intentionally
// abuse them).
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// operational failure (bad flags, load or type-check errors, unwritable
// output). Findings can be suppressed case by case with a justified
// //abp:ignore comment (see package internal/lint); -unused-ignores
// reports directives that no longer suppress anything, and -baseline
// drops findings recorded in a previous -json report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"worksteal/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored for in-process testing: it returns
// the exit status instead of calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("abpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "write findings to stdout as a JSON report (the -baseline input format)")
	sarifPath := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this `file` (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "drop findings recorded in this baseline `file` (a previous -json report)")
	unusedIgnores := fs.Bool("unused-ignores", false, "also report stale //abp:ignore directives (needs the full suite: incompatible with -only)")
	dir := fs.String("C", ".", "load packages as if launched from `dir`")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: abpvet [flags] [packages]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		if *unusedIgnores {
			fmt.Fprintf(stderr, "abpvet: -unused-ignores needs the full suite and cannot be combined with -only\n")
			return 2
		}
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "abpvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "abpvet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.NewLoader().Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "abpvet: %v\n", err)
		return 2
	}

	var findings []lint.Finding
	for _, pkg := range pkgs {
		if pkg.Standard {
			continue
		}
		ignores := lint.CollectIgnores(pkg)
		for _, a := range analyzers {
			diags, err := lint.RunWith(a, pkg, ignores)
			if err != nil {
				fmt.Fprintf(stderr, "abpvet: %s: %v\n", pkg.ImportPath, err)
				return 2
			}
			for _, d := range diags {
				findings = append(findings, lint.MakeFinding(a.Name, pkg.Fset, d.Pos, d.Message, root))
			}
		}
		if *unusedIgnores {
			for _, d := range ignores.Unused() {
				findings = append(findings, lint.UnusedIgnoreFinding(d, root))
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})

	if *baselinePath != "" {
		baseline, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "abpvet: %v\n", err)
			return 2
		}
		findings = baseline.Filter(findings)
	}

	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "abpvet: %v\n", err)
			return 2
		}
	}
	if *sarifPath != "" {
		rules := analyzers
		if *unusedIgnores {
			rules = append(append([]*lint.Analyzer(nil), rules...), lint.UnusedIgnoreAnalyzer)
		}
		if err := writeSARIFTo(*sarifPath, stdout, rules, findings); err != nil {
			fmt.Fprintf(stderr, "abpvet: %v\n", err)
			return 2
		}
	}
	if !*jsonOut && *sarifPath != "-" {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(stderr, "abpvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// writeSARIFTo writes the SARIF log to path, with "-" meaning stdout.
func writeSARIFTo(path string, stdout io.Writer, rules []*lint.Analyzer, findings []lint.Finding) error {
	if path == "-" {
		return lint.WriteSARIF(stdout, rules, findings)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lint.WriteSARIF(f, rules, findings); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
