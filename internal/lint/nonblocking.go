package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NonBlocking machine-checks the paper's central implementation claim: the
// Figure 5 deque operations (and the scheduler's inner steal path) never
// block, so a process stalled mid-operation cannot prevent any other
// process from completing its own (the non-blocking property of Section
// 3.2, and the premise behind synchronization-overhead bounds à la Rito &
// Paulino). Functions carrying the //abp:nonblocking directive must not
// contain, directly or in lexically nested closures:
//
//   - sync mutex/waitgroup/cond operations (Lock, RLock, Unlock, RUnlock,
//     Wait) — even Unlock, because a non-blocking operation has no business
//     touching a lock at all;
//   - channel sends, receives, or range-over-channel;
//   - select statements without a default case (a select WITH default never
//     blocks, and its immediate communication clauses are exempt — this is
//     the idiomatic non-blocking try-send used by the wake protocol);
//   - time.Sleep;
//   - any call into the fault-injection registry (worksteal/internal/fault)
//     other than fault.Point. A disabled fault.Point is a single atomic
//     load, cheap and non-blocking by construction, so instrumenting a hot
//     path does not void its annotation; every other function in that
//     package takes the registry lock (or, when armed, sleeps, panics, or
//     suspends) and has no business inside a non-blocking operation. The
//     fault package itself is exempt — Point's armed slow path is the
//     documented, deliberate suspension of the property.
//
// The check is not transitive: a call to an unannotated helper is not
// inspected. Annotate the helper too — the directive doubles as the audit
// trail for which functions the claim covers.
var NonBlocking = &Analyzer{
	Name: "nonblocking",
	Doc:  "forbids blocking operations (mutexes, channel ops, bare select, time.Sleep, non-Point fault calls) inside //abp:nonblocking functions",
	Run:  runNonBlocking,
}

// faultPkgPath is the failpoint framework; fault.Point is the one call from
// it permitted inside //abp:nonblocking functions.
const faultPkgPath = "worksteal/internal/fault"

var blockingSyncMethods = map[string]bool{
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true, "Wait": true,
}

func runNonBlocking(pass *Pass) error {
	for _, fd := range declsOf(pass.Files) {
		if fd.Body == nil || !hasDirective(fd.Doc, "//abp:nonblocking") {
			continue
		}
		name := funcName(fd)
		var check func(n ast.Node) bool
		check = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in //abp:nonblocking function %s", name)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in //abp:nonblocking function %s", name)
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.Types[n.X].Type; t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel in //abp:nonblocking function %s", name)
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, clause := range n.Body.List {
					if clause.(*ast.CommClause).Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					pass.Reportf(n.Pos(), "select without default in //abp:nonblocking function %s", name)
				}
				// The communication clauses of a select with default cannot
				// block (and a select without one was flagged wholesale);
				// clause bodies are checked either way.
				for _, clause := range n.Body.List {
					for _, stmt := range clause.(*ast.CommClause).Body {
						ast.Inspect(stmt, check)
					}
				}
				return false // clauses handled above
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig := fn.Type().(*types.Signature)
				switch {
				case fn.Pkg().Path() == "time" && sig.Recv() == nil && fn.Name() == "Sleep":
					pass.Reportf(n.Pos(), "time.Sleep in //abp:nonblocking function %s", name)
				case fn.Pkg().Path() == "sync" && sig.Recv() != nil && blockingSyncMethods[fn.Name()]:
					pass.Reportf(n.Pos(), "sync.%s in //abp:nonblocking function %s", fn.Name(), name)
				case fn.Pkg().Path() == faultPkgPath && pass.Pkg.Path() != faultPkgPath &&
					!(sig.Recv() == nil && fn.Name() == "Point"):
					pass.Reportf(n.Pos(), "fault.%s in //abp:nonblocking function %s (only fault.Point is permitted: its disabled fast path is one atomic load)", fn.Name(), name)
				}
			}
			return true
		}
		ast.Inspect(fd.Body, check)
	}
	return nil
}
