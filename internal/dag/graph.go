// Package dag models multithreaded computations as directed acyclic graphs,
// following Section 1 of Arora, Blumofe and Plaxton, "Thread Scheduling for
// Multiprogrammed Multiprocessors" (SPAA 1998).
//
// Each node represents a single instruction and edges represent ordering
// constraints. The nodes of a thread are linked by continuation edges that
// form a chain corresponding to the thread's dynamic instruction order. A
// spawn edge runs from the spawning node of a parent thread to the first
// node of the child thread, and a synchronization edge runs from a node that
// must execute first (for example a semaphore V operation, or the last node
// of a joining thread) to the node it enables.
//
// As in the paper, every node has out-degree at most two, and a well-formed
// graph has exactly one root node (in-degree zero, the first node of the
// root thread) and one final node (out-degree zero).
package dag

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within a Graph. IDs are dense: a Graph with n
// nodes uses IDs 0..n-1.
type NodeID int32

// None is the sentinel for "no node", used for optional parent and
// assigned-node slots throughout the repository.
const None NodeID = -1

// ThreadID identifies a thread within a Graph. Thread 0 is the root thread.
type ThreadID int32

// EdgeKind distinguishes the three edge categories of the paper's model.
type EdgeKind uint8

const (
	// Continuation edges link consecutive nodes of one thread.
	Continuation EdgeKind = iota
	// Spawn edges link a spawning node to the first node of a child thread.
	Spawn
	// Sync edges represent cross-thread synchronization (joins, semaphores).
	Sync
)

func (k EdgeKind) String() string {
	switch k {
	case Continuation:
		return "continuation"
	case Spawn:
		return "spawn"
	case Sync:
		return "sync"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is a directed edge From -> To with a kind.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
}

// Node holds the static structure of a single dag node.
type Node struct {
	ID     NodeID
	Thread ThreadID
	// Succs lists outgoing edges in insertion order. len(Succs) <= 2 in a
	// valid computation. The order carries no semantics: when executing a
	// node enables two children, the scheduler may keep either one (the
	// paper's bounds hold for both choices).
	Succs []Edge
	// Preds lists incoming edges. The model places no bound on in-degree,
	// although a well-formed computation built by Builder has at most two.
	Preds []Edge
}

// Graph is an immutable computation dag. Construct one with a Builder, or
// with one of the generators in package workload.
type Graph struct {
	nodes   []Node
	threads []threadInfo
	root    NodeID
	final   NodeID
	// label is an optional human-readable name used in reports.
	label string
}

type threadInfo struct {
	first, last NodeID
	size        int
}

// NumNodes returns the number of nodes, which equals the work T1 of the
// computation since each node is a single instruction.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumThreads returns the number of threads.
func (g *Graph) NumThreads() int { return len(g.threads) }

// Root returns the root node: the unique node with in-degree zero.
func (g *Graph) Root() NodeID { return g.root }

// Final returns the final node: the unique node with out-degree zero.
func (g *Graph) Final() NodeID { return g.final }

// Label returns the graph's human-readable name, or "" if unset.
func (g *Graph) Label() string { return g.label }

// Node returns the node with the given id. The returned pointer aliases the
// graph's storage and must not be mutated.
func (g *Graph) Node(id NodeID) *Node {
	return &g.nodes[id]
}

// Thread returns the id of the thread containing node id.
func (g *Graph) Thread(id NodeID) ThreadID { return g.nodes[id].Thread }

// ThreadFirst returns the first node of thread t.
func (g *Graph) ThreadFirst(t ThreadID) NodeID { return g.threads[t].first }

// ThreadLast returns the last node of thread t.
func (g *Graph) ThreadLast(t ThreadID) NodeID { return g.threads[t].last }

// ThreadSize returns the number of nodes in thread t.
func (g *Graph) ThreadSize(t ThreadID) int { return g.threads[t].size }

// Succs returns the outgoing edges of node id. The slice aliases graph
// storage and must not be mutated.
func (g *Graph) Succs(id NodeID) []Edge { return g.nodes[id].Succs }

// Preds returns the incoming edges of node id. The slice aliases graph
// storage and must not be mutated.
func (g *Graph) Preds(id NodeID) []Edge { return g.nodes[id].Preds }

// InDegree returns the number of incoming edges of node id.
func (g *Graph) InDegree(id NodeID) int { return len(g.nodes[id].Preds) }

// OutDegree returns the number of outgoing edges of node id.
func (g *Graph) OutDegree(id NodeID) int { return len(g.nodes[id].Succs) }

// Validation errors returned by Validate and Builder.Build.
var (
	ErrEmpty         = errors.New("dag: graph has no nodes")
	ErrOutDegree     = errors.New("dag: node out-degree exceeds 2")
	ErrMultipleRoots = errors.New("dag: graph must have exactly one root node")
	ErrMultipleFinal = errors.New("dag: graph must have exactly one final node")
	ErrRootThread    = errors.New("dag: root node must be first node of root thread")
	ErrCycle         = errors.New("dag: graph contains a cycle")
	ErrEdgeOrder     = errors.New("dag: sync edge points backwards within a thread")
)

// Validate checks the structural assumptions of the paper: non-empty,
// out-degree at most two, exactly one root and one final node, the root is
// the first node of thread zero, and acyclicity. It returns nil when the
// graph is a well-formed multithreaded computation.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return ErrEmpty
	}
	roots, finals := 0, 0
	for i := range g.nodes {
		n := &g.nodes[i]
		if len(n.Succs) > 2 {
			return fmt.Errorf("%w: node %d has out-degree %d", ErrOutDegree, n.ID, len(n.Succs))
		}
		if len(n.Preds) == 0 {
			roots++
			if n.ID != g.root {
				return fmt.Errorf("%w: node %d has in-degree 0 but root is %d", ErrMultipleRoots, n.ID, g.root)
			}
		}
		if len(n.Succs) == 0 {
			finals++
			if n.ID != g.final {
				return fmt.Errorf("%w: node %d has out-degree 0 but final is %d", ErrMultipleFinal, n.ID, g.final)
			}
		}
	}
	if roots != 1 {
		return fmt.Errorf("%w: found %d", ErrMultipleRoots, roots)
	}
	if finals != 1 {
		return fmt.Errorf("%w: found %d", ErrMultipleFinal, finals)
	}
	if g.nodes[g.root].Thread != 0 || g.threads[0].first != g.root {
		return ErrRootThread
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the node ids in a topological order, or ErrCycle if the
// graph has a cycle. The order is deterministic: among ready nodes the
// smallest id comes first.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int32, n)
	for i := range g.nodes {
		indeg[i] = int32(len(g.nodes[i].Preds))
	}
	// A simple FIFO queue yields a deterministic order because nodes are
	// enqueued in increasing discovery order.
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.nodes[u].Succs {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Edges returns all edges of the graph in a deterministic order (by source
// id, then by position in the source's successor list).
func (g *Graph) Edges() []Edge {
	var edges []Edge
	for i := range g.nodes {
		edges = append(edges, g.nodes[i].Succs...)
	}
	return edges
}

// String returns a compact description such as "fib(10): 177 nodes, 19 threads".
func (g *Graph) String() string {
	name := g.label
	if name == "" {
		name = "dag"
	}
	return fmt.Sprintf("%s: %d nodes, %d threads", name, len(g.nodes), len(g.threads))
}
