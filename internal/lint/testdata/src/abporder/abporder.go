// Package abporder exercises the memory-ordering necessity analyzer: raw
// and atomicx-declared variables whose every conflicting access pair is
// ordered even under adversarial caller concurrency are reported as
// over-synchronized, sc declarations with no arbitration or handshake
// evidence are demoted to publish, publish/plain declarations with hard
// sc evidence are reported as under-synchronized, loop-invariant atomic
// loads of never-written variables are flagged at the load site, owner
// accessors outside a proven single-writer context are rejected — while
// the paper's two load-bearing shapes (CAS arbitration and the Dekker
// store→load handshake, §3.2/Figure 5) are accepted as sc, and the
// //abp:order-ignore escape hatch suppresses.
package abporder

import (
	"sync"
	"sync/atomic"

	"worksteal/internal/atomicx"
)

// --- flagged: raw atomic fully ordered by a mutex — plain suffices ---

type lockedCounter struct {
	mu sync.Mutex
	n  atomic.Int64 // want `plain access suffices`
}

// Incr bumps the counter under the lock that every access already holds.
func (c *lockedCounter) Incr() {
	c.mu.Lock()
	c.n.Add(1)
	c.mu.Unlock()
}

// Get reads the counter under the same lock.
func (c *lockedCounter) Get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n.Load()
}

// --- flagged: declared sc, fully ordered by a mutex — plain suffices ---

type overDeclared struct {
	mu sync.Mutex
	v  atomicx.SCInt64 // want `plain discipline suffices`
}

// Set stores under the lock.
func (o *overDeclared) Set(v int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.v.Store(v)
}

// Value loads under the lock.
func (o *overDeclared) Value() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.v.Load()
}

// --- flagged: declared sc but only ever a one-way publication ---

type box struct {
	ready atomicx.SCUint32 // want `publish \(release/acquire\) discipline suffices`
	data  int
}

// Publish writes the payload and raises the flag: a release store.
func (b *box) Publish(v int) {
	b.data = v
	b.ready.Store(1)
}

// Consume checks the flag before reading the payload: an acquire load.
// Neither side ever follows its store with a load of another variable, so
// nothing here needs the store→load ordering sc adds over release/acquire.
func (b *box) Consume() (int, bool) {
	if b.ready.Load() == 1 {
		return b.data, true
	}
	return 0, false
}

// --- accepted: the Dekker store→load handshake requires sc ---

type dekkerPair struct {
	mine   atomicx.SCUint32
	theirs atomicx.SCUint32
}

// Announce raises this side's flag and then checks the other side's: the
// store→load sequence whose ordering only sequential consistency
// guarantees (the shape behind the paper's bot/age reasoning).
func (d *dekkerPair) Announce() bool {
	d.mine.Store(1)
	return d.theirs.Load() == 0
}

// AnnounceTheirs is the symmetric half.
func (d *dekkerPair) AnnounceTheirs() bool {
	d.theirs.Store(1)
	return d.mine.Load() == 0
}

// --- accepted: CAS arbitration requires sc ---

type claimable struct {
	claimed atomicx.SCUint32
}

// TryClaim arbitrates ownership with a compare-and-swap.
func (c *claimable) TryClaim() bool { return c.claimed.CompareAndSwap(0, 1) }

// --- flagged: declared publish but an Add result is consumed ---

type refCount struct {
	pending atomicx.Publish64 // want `sc discipline is required`
}

// Release decrements and acts on the result: exactly one caller observes
// zero, an arbitration a blind counter increment never performs.
func (r *refCount) Release() bool {
	return r.pending.Add(-1) == 0
}

// --- flagged: declared publish but part of a declared handshake ---

type parker struct {
	parked atomicx.Publish32 // want `sc discipline is required`
}

// Park publishes the parked flag; the protocol's other side re-checks
// emptiness, so the pair needs the full store→load ordering.
//
//abp:handshake store=Park load=Scan
func (p *parker) Park() { p.parked.Store(1) }

// Scan observes parked workers.
func (p *parker) Scan() int32 { return p.parked.Load() }

// --- flagged: declared plain but concurrently accessed with no ordering ---

type leaky struct {
	slot atomicx.PlainPointer[int] // want `publish or sc discipline is required`
}

// Run launches the filler and reads the slot with nothing ordering the two.
func (l *leaky) Run() *int {
	go l.fill()
	return l.slot.Get()
}

func (l *leaky) fill() { l.slot.Set(new(int)) }

// --- accepted: declared plain, ordered by a channel handoff ---

type handoff struct {
	slot atomicx.PlainPointer[int]
	ch   chan struct{}
}

// Start launches the producer and blocks on the channel before reading:
// the send/receive pair carries the happens-before edge plain access needs.
func (h *handoff) Start(v *int) *int {
	go h.produce(v)
	<-h.ch
	return h.slot.Get()
}

func (h *handoff) produce(v *int) {
	h.slot.Set(v)
	h.ch <- struct{}{}
}

// --- suppressed: a justified //abp:order-ignore silences the finding ---

type waived struct {
	mu sync.Mutex
	n  atomic.Int64 //abp:order-ignore fixture: demonstrates the justified escape hatch
}

// Bump would earn n a plain-suffices finding just like lockedCounter.n,
// but the directive on the declaration line waives it.
func (w *waived) Bump() {
	w.mu.Lock()
	w.n.Add(1)
	w.mu.Unlock()
}

// Read loads under the same lock.
func (w *waived) Read() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n.Load()
}

// --- flagged: loop-invariant atomic load of a never-written variable ---

type spinner struct {
	limit atomic.Int64 // want `plain access suffices`
}

// Spin reloads limit every iteration although nothing in the package ever
// writes it; the load is loop-invariant and should be hoisted.
func (s *spinner) Spin(n int) int64 {
	var sum int64
	for i := 0; i < n; i++ {
		sum += s.limit.Load() // want `loop-invariant atomic load`
	}
	return sum
}

// --- owner accessors: proven inside //abp:owner, rejected outside ---

type ownerBox struct {
	pos atomicx.SCUint32
}

// Bump reads the cursor with the relaxed owner accessor — sound here
// because every write of pos sits in an owner context — and advances it
// with a CAS (the arbitration that keeps pos at sc).
//
//abp:owner the box's single mutating goroutine
func (b *ownerBox) Bump() uint32 {
	cur := b.pos.LoadOwner(true)
	if !b.pos.CompareAndSwap(cur, cur+1) {
		return 0
	}
	return cur
}

// Peek uses the owner accessor from plain shared code.
func (b *ownerBox) Peek() uint32 {
	return b.pos.LoadOwner(true) // want `unproven owner accessor`
}

// --- flagged: a read-only package variable behind function-style atomics ---

var tuning atomic.Int64 // want `plain access suffices`

// Tuning reads a knob that nothing in the package ever writes.
func Tuning() int64 { return tuning.Load() }
