// Command abpsim runs one instruction-level simulation of the non-blocking
// work stealer under a chosen kernel adversary and yield discipline, and
// prints the measured statistics against the paper's bound.
//
// Examples:
//
//	abpsim -workload fib -n 16 -p 8 -kernel dedicated
//	abpsim -workload chain -n 500 -p 8 -kernel adaptive -yield all
//	abpsim -workload grid -p 4 -kernel benign -avail 2 -potential
//	abpsim -workload fib -p 4 -kernel lockholder -deque locked
package main

import (
	"flag"
	"fmt"
	"os"

	"worksteal/internal/analysis"
	"worksteal/internal/dag"
	"worksteal/internal/sim"
	"worksteal/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "fib", "workload: chain|spine|fib|grid|strands|randomSP|figure1")
		n         = flag.Int("n", 14, "workload size parameter")
		p         = flag.Int("p", 4, "number of processes P")
		kernel    = flag.String("kernel", "dedicated", "kernel adversary: dedicated|benign|oblivious|adaptive|lockholder|periodic|fixedset")
		avail     = flag.Int("avail", 2, "processors' worth of service for benign/oblivious kernels")
		period    = flag.Int("period", 4, "period for the periodic kernel")
		yield     = flag.String("yield", "none", "yield discipline: none|random|all")
		deq       = flag.String("deque", "abp", "deque implementation: abp|locked")
		policy    = flag.String("policy", "child", "spawn policy: child|parent")
		seed      = flag.Int64("seed", 1, "random seed")
		maxRounds = flag.Int("maxrounds", 0, "round limit (0 = generous default)")
		tagBits   = flag.Int("tagbits", 32, "deque tag width in bits (0 demonstrates the ABA failure)")
		potential = flag.Bool("potential", false, "track the potential function and report phase statistics")
		check     = flag.Bool("check", false, "verify the structural lemma at every instruction")
		csvPath   = flag.String("csv", "", "write a per-round CSV trace (round,steps,throws,logPhi) to this file")
		traceN    = flag.Int("trace", 0, "print a Figure 2(b)-style execution schedule for the first N steps")
		ganttN    = flag.Int("gantt", 0, "print an ASCII per-process activity chart for the first N rounds")
		dagFile   = flag.String("dagfile", "", "load the computation dag from this file (worksteal-dag v1 format) instead of -workload")
		dumpDag   = flag.String("dumpdag", "", "write the selected dag to this file in worksteal-dag v1 format and exit")
		dumpDot   = flag.String("dot", "", "write the selected dag to this file in Graphviz DOT format and exit")
	)
	flag.Parse()

	var g *dag.Graph
	if *dagFile != "" {
		f, err := os.Open(*dagFile)
		if err != nil {
			fatalf("dagfile: %v", err)
		}
		g, err = dag.ReadText(f)
		f.Close()
		if err != nil {
			fatalf("dagfile: %v", err)
		}
	} else {
		g = buildWorkload(*wl, *n)
	}
	if *dumpDag != "" || *dumpDot != "" {
		if *dumpDag != "" {
			f, err := os.Create(*dumpDag)
			if err != nil {
				fatalf("dumpdag: %v", err)
			}
			if err := g.WriteText(f); err != nil {
				fatalf("dumpdag: %v", err)
			}
			f.Close()
		}
		if *dumpDot != "" {
			f, err := os.Create(*dumpDot)
			if err != nil {
				fatalf("dot: %v", err)
			}
			if err := g.WriteDOT(f); err != nil {
				fatalf("dot: %v", err)
			}
			f.Close()
		}
		fmt.Printf("wrote %s (T1=%d, Tinf=%d)"+"\n", g.Label(), g.Work(), g.CriticalPath())
		return
	}
	cfg := sim.Config{
		Graph:     g,
		P:         *p,
		Seed:      *seed,
		MaxRounds: *maxRounds,
	}
	if *tagBits == 0 {
		cfg.TagBits = -1
	} else {
		cfg.TagBits = *tagBits
	}

	switch *kernel {
	case "dedicated":
		cfg.Kernel = sim.DedicatedKernel{NumProcs: *p}
	case "benign":
		cfg.Kernel = sim.ConstBenign(*p, *avail)
	case "oblivious":
		cfg.Kernel = sim.NewSeededOblivious(*p, *avail, *seed)
	case "adaptive":
		cfg.Kernel = sim.StarveWorkersKernel{NumProcs: *p}
	case "lockholder":
		cfg.Kernel = sim.PreemptLockHolderKernel{NumProcs: *p}
	case "periodic":
		cfg.Kernel = sim.PeriodicKernel{NumProcs: *p, Period: *period}
	case "fixedset":
		set := make([]int, 0, *p-1)
		for i := 1; i < *p; i++ {
			set = append(set, i)
		}
		cfg.Kernel = sim.FixedSetKernel{NumProcs: *p, Set: set}
	default:
		fatalf("unknown kernel %q", *kernel)
	}

	switch *yield {
	case "none":
		cfg.Yield = sim.YieldNone
	case "random":
		cfg.Yield = sim.YieldToRandom
	case "all":
		cfg.Yield = sim.YieldToAll
	default:
		fatalf("unknown yield %q", *yield)
	}

	switch *deq {
	case "abp":
		cfg.Deque = sim.DequeABP
	case "locked":
		cfg.Deque = sim.DequeLocked
	default:
		fatalf("unknown deque %q", *deq)
	}

	switch *policy {
	case "child":
		cfg.Policy = sim.RunChild
	case "parent":
		cfg.Policy = sim.RunParent
	default:
		fatalf("unknown policy %q", *policy)
	}

	var tracker *analysis.PotentialTracker
	var checker *analysis.StructuralChecker
	var csv *analysis.RoundCSV
	var rec *analysis.ScheduleRecorder
	var gantt *analysis.Gantt
	observers := 0
	if *traceN > 0 {
		rec = analysis.NewScheduleRecorder(*traceN)
		cfg.Observer = rec
		observers++
	}
	if *ganttN > 0 {
		gantt = analysis.NewGantt(*ganttN)
		cfg.Observer = gantt
		observers++
	}
	if *potential {
		tracker = analysis.NewPotentialTracker(g.CriticalPath())
		cfg.Observer = tracker
		observers++
	}
	if *check {
		checker = analysis.NewStructuralChecker(g.CriticalPath())
		cfg.Observer = checker
		observers++
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("csv: %v", err)
		}
		defer f.Close()
		csv = analysis.NewRoundCSV(f, g.CriticalPath())
		cfg.Observer = csv
		observers++
	}
	if observers > 1 {
		fatalf("-potential, -check, -csv, -trace and -gantt are mutually exclusive (one observer per run)")
	}

	res := sim.NewEngine(cfg).Run()

	fmt.Printf("workload     %s (T1=%d, Tinf=%d, parallelism %.2f)\n",
		g.Label(), g.Work(), g.CriticalPath(), g.Parallelism())
	fmt.Printf("config       P=%d kernel=%s yield=%s deque=%s policy=%s seed=%d\n",
		*p, *kernel, cfg.Yield, cfg.Deque, cfg.Policy, *seed)
	fmt.Printf("completed    %v\n", res.Completed)
	fmt.Printf("rounds       %d\n", res.Rounds)
	fmt.Printf("steps (time) %d\n", res.Steps)
	fmt.Printf("instructions %d\n", res.ProcInstr)
	fmt.Printf("P_A          %.3f\n", res.PA)
	fmt.Printf("nodes        %d\n", res.NodesExecuted)
	fmt.Printf("steals       %d ok / %d attempts, %d throws\n", res.Steals, res.StealAttempts, res.Throws)
	fmt.Printf("yields       %d (%d substitutions)\n", res.Yields, res.Substitutions)
	fmt.Printf("cas failures %d, lock spin steps %d, corruptions %d\n",
		res.CASFailures, res.SpinSteps, res.Corruptions)
	if res.Completed && res.PA > 0 {
		bound := (float64(g.Work()) + float64(g.CriticalPath()**p)) / res.PA
		fmt.Printf("bound shape  steps / ((T1 + Tinf*P)/P_A) = %.3f\n", float64(res.Steps)/bound)
	}
	if tracker != nil {
		st := analysis.AnalyzePhases(tracker.Points, *p)
		fmt.Printf("potential    %d phases, success rate %.2f, mean log-drop %.2f, monotone %v\n",
			st.Phases, st.SuccessRate(), st.MeanLogDrop, st.NeverIncreased)
	}
	if checker != nil {
		fmt.Printf("structural   %d states checked, %d violations\n", checker.Checks, len(checker.Violations))
		for _, v := range checker.Violations {
			fmt.Println("  VIOLATION:", v)
		}
	}
	if csv != nil && csv.Err() != nil {
		fatalf("csv: %v", csv.Err())
	}
	if rec != nil {
		rec.Render(os.Stdout)
	}
	if gantt != nil {
		gantt.Render(os.Stdout)
	}
	if !res.Completed {
		os.Exit(1)
	}
}

func buildWorkload(name string, n int) *dag.Graph {
	switch name {
	case "chain":
		return workload.Chain(n)
	case "spine":
		return workload.SpawnSpine(n, 4*n)
	case "fib":
		return workload.FibDag(n)
	case "grid":
		return workload.Grid(n, 2*n)
	case "strands":
		return workload.Strands(n, 2*n+1)
	case "randomSP":
		return workload.RandomSP(int64(n), 200*n)
	case "figure1":
		return dag.Figure1()
	default:
		fatalf("unknown workload %q", name)
		return nil
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "abpsim: "+format+"\n", args...)
	os.Exit(2)
}
