// Package hood is a user-level threads layer over the work-stealing pool,
// modeled on the Hood C++ threads library in which the paper's scheduler
// shipped [Blumofe & Papadopoulos 1999]. It exposes the paper's thread
// model directly: a thread is a chain of instruction segments separated by
// synchronization actions, and every transition of Section 3.1 — Die,
// Block, Enable, Spawn — maps onto the scheduler exactly as in the paper:
//
//   - Die: the segment returns Die(); the worker pops its next task from
//     the bottom of its deque.
//   - Spawn: the segment returns Spawn(child, next); one ready thread is
//     pushed on the deque bottom and the other becomes the assigned thread.
//   - Block: the segment returns Wait(sem, next); if the semaphore has no
//     units, the continuation parks on the semaphore's wait list and the
//     worker pops new work — the thread costs nothing while blocked.
//   - Enable: Signal(sem) hands a unit to a parked continuation, making
//     that thread ready and pushing it onto the signaller's deque.
//
// Because Go cannot migrate goroutine stacks between schedulers, threads
// are written in continuation-passing style: each Segment runs to its next
// synchronization action and says what happens next. This is the same
// compromise the paper's own analysis makes when it "ignores threads" and
// treats the deques as holding ready nodes.
package hood

import (
	"sync"

	"worksteal/internal/sched"
)

// Segment is one run of thread instructions between synchronization
// actions. It receives the worker executing it and returns the thread's
// next action.
type Segment func(w *sched.Worker) Action

type actionKind uint8

const (
	actDie actionKind = iota
	actContinue
	actSpawn
	actWait
)

// Action is what a thread does at the end of a segment. Construct one with
// Die, Continue, Spawn or Wait.
type Action struct {
	kind    actionKind
	next    Segment
	child   Segment
	sem     *Semaphore
	barrier *Barrier
}

// Die ends the thread (the Die transition).
func Die() Action { return Action{kind: actDie} }

// Continue proceeds to the next segment of the same thread with no
// synchronization (the "enables 1 child" case: the worker keeps executing).
func Continue(next Segment) Action { return Action{kind: actContinue, next: next} }

// Spawn creates a child thread and continues this thread (the Spawn
// transition): the parent's continuation is pushed onto the deque bottom
// and the child runs first, the depth-first order the paper notes is
// common. Passing next = nil spawns and dies.
func Spawn(child, next Segment) Action { return Action{kind: actSpawn, child: child, next: next} }

// Wait performs a P operation on sem before next runs (the Block
// transition when no unit is available, otherwise a plain continue).
func Wait(sem *Semaphore, next Segment) Action { return Action{kind: actWait, sem: sem, next: next} }

// Run executes a root thread on the pool and returns when every thread has
// died or blocked. Threads still parked on semaphores when Run returns are
// deadlocked; inspect them with Semaphore.Waiters.
func Run(p *sched.Pool, root Segment) {
	p.Run(func(w *sched.Worker) { step(w, root) })
}

// step drives one thread until it dies, blocks, or hands itself to the
// scheduler.
func step(w *sched.Worker, seg Segment) {
	for seg != nil {
		act := seg(w)
		switch act.kind {
		case actDie:
			return
		case actContinue:
			seg = act.next
		case actSpawn:
			// Push the parent continuation, run the child: when un-stolen,
			// execution is the serial depth-first order.
			if act.next != nil {
				next := act.next
				w.Spawn(func(w2 *sched.Worker) { step(w2, next) })
			}
			seg = act.child
		case actWait:
			next := act.next
			if act.barrier != nil {
				release, last := act.barrier.arriveOrPark(next)
				if !last {
					return // parked until the last arrival
				}
				for _, cont := range release {
					c := cont
					w.Spawn(func(w2 *sched.Worker) { step(w2, c) })
				}
				seg = next
				continue
			}
			if act.sem.acquireOrPark(next) {
				seg = next // a unit was available: no blocking
			} else {
				return // parked: the thread costs nothing while blocked
			}
		}
	}
}

// Semaphore is a counting semaphore in the sense of the paper's Figure 1
// example (Dijkstra's P and V): node x4 is the P, node x6 the V. Blocked
// threads park their continuations here; V hands a unit to the oldest
// parked continuation and reschedules it (the Enable transition).
type Semaphore struct {
	mu      sync.Mutex
	units   int
	waiters []Segment
}

// NewSemaphore returns a semaphore with the given initial value.
func NewSemaphore(initial int) *Semaphore {
	if initial < 0 {
		panic("hood: negative semaphore value")
	}
	return &Semaphore{units: initial}
}

// acquireOrPark consumes a unit if available; otherwise it parks cont and
// reports false.
func (s *Semaphore) acquireOrPark(cont Segment) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.units > 0 {
		s.units--
		return true
	}
	s.waiters = append(s.waiters, cont)
	return false
}

// Signal is the V operation: if a thread is parked, its continuation is
// enabled and pushed onto the signalling worker's deque; otherwise a unit
// accumulates.
func (s *Semaphore) Signal(w *sched.Worker) {
	s.mu.Lock()
	var cont Segment
	if len(s.waiters) > 0 {
		cont = s.waiters[0]
		s.waiters = s.waiters[1:]
	} else {
		s.units++
	}
	s.mu.Unlock()
	if cont != nil {
		w.Spawn(func(w2 *sched.Worker) { step(w2, cont) })
	}
}

// Waiters returns the number of threads currently parked (deadlocked
// threads if Run has returned).
func (s *Semaphore) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Units returns the semaphore's current value.
func (s *Semaphore) Units() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.units
}

// Join makes one thread wait for n others: the classic join of Figure 1
// (edge x9 -> x10), expressed as a semaphore the joining thread P's once
// per child and each child V's when it dies.
type Join struct {
	sem *Semaphore
	n   int
}

// NewJoin returns a join barrier for n children.
func NewJoin(n int) *Join {
	if n < 0 {
		panic("hood: negative join count")
	}
	return &Join{sem: NewSemaphore(0), n: n}
}

// Done signals one child's completion.
func (j *Join) Done(w *sched.Worker) { j.sem.Signal(w) }

// Wait returns an Action that proceeds to next once all n children have
// called Done. It consumes the units one at a time, blocking between them
// when children are still running.
func (j *Join) Wait(next Segment) Action {
	return waitN(j.sem, j.n, next)
}

// waitN chains n P operations before next.
func waitN(sem *Semaphore, n int, next Segment) Action {
	if n == 0 {
		return Continue(next)
	}
	return Wait(sem, func(w *sched.Worker) Action {
		return waitN(sem, n-1, next)
	})
}

// Barrier is a single-use rendezvous for n threads: each thread Arrives
// with its continuation, and all n continuations become ready together when
// the last one arrives. Built from the same Enable mechanics as Semaphore:
// the last arrival enables everyone (each enablement is a deque push).
type Barrier struct {
	mu      sync.Mutex
	needed  int
	arrived []Segment
}

// NewBarrier returns a barrier for n threads.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("hood: barrier needs n >= 1")
	}
	return &Barrier{needed: n}
}

// Arrive returns an Action that parks the thread until all n threads have
// arrived; the last arrival releases everyone and continues immediately.
func (b *Barrier) Arrive(next Segment) Action {
	return Action{kind: actWait, sem: nil, next: next, child: nil, barrier: b}
}

// arriveOrPark parks cont unless it is the last arrival, in which case it
// returns the continuations to release.
func (b *Barrier) arriveOrPark(cont Segment) (release []Segment, last bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.arrived)+1 == b.needed {
		release = b.arrived
		b.arrived = nil
		return release, true
	}
	b.arrived = append(b.arrived, cont)
	return nil, false
}

// Waiting returns how many threads are parked at the barrier.
func (b *Barrier) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.arrived)
}
