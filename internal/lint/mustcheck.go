package lint

import (
	"go/ast"
	"go/types"
)

// MustCheck guards against the exact bug class PR 1 fixed in submitRoot: a
// PushBottom on the Figure 5 deque is a REQUEST, not a guarantee — it
// returns false when the bounded array is full (and a CompareAndSwap
// returns false when a concurrent thief won the race). Discarding that
// boolean silently drops a task or retries nothing, which in the pool
// manifested as a deadlocked Pool.Run waiting on work that was never
// enqueued. The analyzer therefore requires the single boolean result of
// every CAS-shaped call (PushBottom, or any CompareAndSwap* returning one
// bool — see isCASShaped) to be consulted.
//
// Three discard shapes are flagged syntactically: a bare expression
// statement, a go/defer of the call, and an assignment to the blank
// identifier. The fourth is flow-aware: `ok := d.PushBottom(t)` followed by
// code that never reads THAT definition of ok on any path. Reaching
// definitions over the function CFG (cfg.go) decide liveness, so a use in
// one branch, a use after a loop, or a capture by a closure all count,
// while a variable that is only overwritten does not.
var MustCheck = &Analyzer{
	Name: "mustcheck",
	Doc:  "requires the boolean result of PushBottom/CompareAndSwap-shaped calls to be consulted",
	Run:  runMustCheck,
}

func runMustCheck(pass *Pass) error {
	for _, fd := range declsOf(pass.Files) {
		if fd.Body == nil {
			continue
		}
		parents := parentMap(fd.Body)
		checkMustCheckBody(pass, fd.Body, funcParams(pass.TypesInfo, fd.Type, fd.Recv), parents)
		// Function literals get their own CFG: their bodies are separate
		// functions with separate flow.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkMustCheckBody(pass, lit.Body, funcParams(pass.TypesInfo, lit.Type, nil), parents)
			}
			return true
		})
	}
	return nil
}

// checkMustCheckBody analyzes one function body (declaration or literal),
// skipping calls that belong to nested literals — those are analyzed with
// their own body's CFG.
func checkMustCheckBody(pass *Pass, body *ast.BlockStmt, params []*types.Var, parents map[ast.Node]ast.Node) {
	var cfg *funcCFG // built lazily: most bodies have no CAS-shaped calls
	var reach *reachInfo
	flow := func() (*funcCFG, *reachInfo) {
		if cfg == nil {
			cfg = buildCFG(body)
			reach = cfg.reachingDefs(pass.TypesInfo, params)
		}
		return cfg, reach
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if !isCASShaped(fn) {
			return true
		}
		what := exprString(call.Fun)
		switch p := enclosingNonParen(parents, call).(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"boolean result of %s is discarded: a refused push or failed CAS must be handled, not dropped (the PR-1 submitRoot deadlock class)", what)
		case *ast.GoStmt:
			pass.Reportf(call.Pos(),
				"boolean result of %s is discarded by the go statement: the new goroutine cannot report a refused push or failed CAS", what)
		case *ast.DeferStmt:
			pass.Reportf(call.Pos(),
				"boolean result of %s is discarded by the defer statement: a refused push or failed CAS at function exit goes unhandled", what)
		case *ast.AssignStmt:
			lhs := assignTargetFor(p, call)
			if lhs == nil {
				return true
			}
			ident, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				return true // stored into a field/element: consulted elsewhere
			}
			if ident.Name == "_" {
				pass.Reportf(call.Pos(),
					"boolean result of %s is explicitly discarded to _: handle the refusal or justify it with //abp:ignore mustcheck", what)
				return true
			}
			v := varOfIdent(pass.TypesInfo, ident)
			if v == nil {
				return true
			}
			g, r := flow()
			defNode := g.blockNodeAt(p.Pos())
			if defNode == nil {
				return true // assignment not in this body's CFG: be quiet
			}
			if !definitionReachesUse(pass.TypesInfo, g, r, body, defNode, v) {
				pass.Reportf(call.Pos(),
					"boolean result of %s is assigned to %q but that value is never consulted on any path: a refused push or failed CAS goes unhandled", what, ident.Name)
			}
		}
		return true
	})
}

// definitionReachesUse reports whether the definition of v performed at
// defNode can reach at least one read of v. Reads inside nested function
// literals count (the closure may run while the definition is live); writes
// (assignment targets, inc/dec operands) do not.
func definitionReachesUse(info *types.Info, g *funcCFG, r *reachInfo, body *ast.BlockStmt, defNode ast.Node, v *types.Var) bool {
	writes := writeTargets(body)
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if writes[ident] || info.Uses[ident] != v {
			return true
		}
		useNode := g.blockNodeAt(ident.Pos())
		if useNode == nil {
			used = true // outside the CFG: conservatively treat as used
			return false
		}
		for _, d := range r.defsReaching(useNode, v) {
			if d.node == defNode {
				used = true
				return false
			}
		}
		return true
	})
	return used
}

// writeTargets collects identifiers that appear as assignment LHS or
// inc/dec operands — occurrences that write v rather than read it.
func writeTargets(body *ast.BlockStmt) map[*ast.Ident]bool {
	writes := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				writes[id] = true
			}
		}
		return true
	})
	return writes
}

// assignTargetFor returns the LHS expression the call's result lands in,
// for the 1:1 assignment form. Tuple-from-call does not apply: CAS-shaped
// functions have exactly one result.
func assignTargetFor(as *ast.AssignStmt, call *ast.CallExpr) ast.Expr {
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call && i < len(as.Lhs) {
			return as.Lhs[i]
		}
	}
	return nil
}

// parentMap records the syntactic parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingNonParen walks up past parenthesized expressions.
func enclosingNonParen(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = parents[pe]
	}
}

// varOfIdent resolves an identifier to the variable it denotes, through
// either a definition (`:=`) or a use (`=`).
func varOfIdent(info *types.Info, ident *ast.Ident) *types.Var {
	if v, ok := info.Defs[ident].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[ident].(*types.Var)
	return v
}
