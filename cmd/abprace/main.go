// Command abprace runs only the whole-package static happens-before race
// detector (analyzer abprace of package internal/lint) over Go packages —
// the focused front end for the most expensive analyzer in the suite.
//
// Usage:
//
//	go run ./cmd/abprace [-json] [-sarif file] [-baseline file]
//	                     [-write-baseline file] [-C dir] [packages]
//
// Packages default to ./... . Exit status: 0 when clean, 1 when findings
// were reported, 2 on operational failure. Findings can be suppressed case
// by case with a justified //abp:race-ignore comment; stale-directive
// detection (-unused-ignores) needs the full suite and lives in abpvet.
package main

import (
	"io"
	"os"

	"worksteal/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run returns the exit status instead of calling os.Exit, for in-process
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	tool := &lint.Tool{Name: "abprace", Analyzers: []*lint.Analyzer{lint.AbpRace}}
	return tool.Main(args, stdout, stderr)
}
