// Larger-scale integration runs, skipped with -short.
package worksteal

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"worksteal/internal/analysis"
	"worksteal/internal/sched"
	"worksteal/internal/sim"
	"worksteal/internal/workload"
)

// TestHighProbabilityTail checks the concentration half of Theorem 9: the
// execution time's tail is light. Across many seeds of the same dedicated
// configuration, the maximum observed time must stay within a small factor
// of the mean (the theorem gives mean + O(lg(1/eps)) throws with
// probability 1-eps, so a heavy tail would falsify it).
func TestHighProbabilityTail(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.FibDag(14)
	const runs = 60
	times := make([]float64, 0, runs)
	sum := 0.0
	for seed := int64(0); seed < runs; seed++ {
		res := sim.NewEngine(sim.Config{Graph: g, P: 8,
			Kernel: sim.DedicatedKernel{NumProcs: 8}, Seed: seed, ShuffleSteps: true}).Run()
		if !res.Completed {
			t.Fatalf("seed %d incomplete", seed)
		}
		times = append(times, float64(res.Steps))
		sum += float64(res.Steps)
	}
	mean := sum / runs
	worst := 0.0
	for _, x := range times {
		if x > worst {
			worst = x
		}
	}
	if worst > 1.5*mean {
		t.Errorf("heavy tail: worst %v > 1.5x mean %v", worst, mean)
	}
}

// TestSoakLargeSim runs a larger simulation across all adversaries.
func TestSoakLargeSim(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.FibDag(18) // T1 = 16717
	const p = 16
	for name, cfg := range map[string]sim.Config{
		"dedicated": {Kernel: sim.DedicatedKernel{NumProcs: p}},
		"benign":    {Kernel: sim.ConstBenign(p, 4)},
		"adaptive":  {Kernel: sim.StarveWorkersKernel{NumProcs: p}, Yield: sim.YieldToAll},
	} {
		cfg.Graph, cfg.P, cfg.Seed = g, p, 99
		res := sim.NewEngine(cfg).Run()
		if !res.Completed || res.NodesExecuted != g.NumNodes() || res.Corruptions != 0 {
			t.Fatalf("%s: %+v", name, res)
		}
	}
}

// TestSoakNativeLargeGraph runs a large dag natively with all deque kinds.
func TestSoakNativeLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.UnbalancedTree(5, 200000)
	for _, kind := range []sched.DequeKind{sched.DequeABP, sched.DequeChaseLev, sched.DequeMutex} {
		res := sched.RunGraph(sched.GraphConfig{Graph: g, Workers: 8, Deque: kind, Seed: 7})
		if res.NodesExecuted != int64(g.NumNodes()) {
			t.Fatalf("deque %d: executed %d of %d", kind, res.NodesExecuted, g.NumNodes())
		}
	}
}

// TestSoakServeParkWakeChurn drives a long-lived Serve session through
// many burst/idle cycles: each idle gap is long enough for the whole
// fleet to back off and park, so every burst must win the park/wake
// Dekker handshake again from a cold start. This is the liveness property
// abpwait checks statically — no submission may be lost to a parked or
// napping fleet — exercised dynamically a few hundred times in one
// session. Every handle completing is the whole assertion; the stats
// checks only confirm the test really parked and woke workers rather
// than catching the fleet hot.
func TestSoakServeParkWakeChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		workers = 8
		rounds  = 300
		burst   = 32
	)
	p := sched.New(sched.Config{Workers: workers, ParkThreshold: 2})
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(ctx) }()

	// Serve accepts Submits only once its session is up; from outside the
	// package that readiness is observable exactly as ErrNotServing
	// turning into acceptance.
	waitReady := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			h, err := p.Submit(func(*sched.Worker) {})
			if err == nil {
				if werr := h.Wait(); werr != nil {
					t.Fatalf("readiness probe: %v", werr)
				}
				return
			}
			if err != sched.ErrNotServing || time.Now().After(deadline) {
				t.Fatalf("pool never became ready: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitReady()

	var ran atomic.Int64
	handles := make([]*sched.Handle, 0, burst)
	for round := 0; round < rounds; round++ {
		handles = handles[:0]
		for i := 0; i < burst; i++ {
			h, err := p.Submit(func(w *sched.Worker) {
				// A little fan-out so the burst spreads across the fleet
				// and the non-submitting workers have something to steal.
				for j := 0; j < 4; j++ {
					w.Spawn(func(*sched.Worker) { ran.Add(1) })
				}
				ran.Add(1)
			})
			if err != nil {
				t.Fatalf("round %d: Submit: %v", round, err)
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if err := h.Wait(); err != nil {
				t.Fatalf("round %d: Wait: %v", round, err)
			}
		}
		if round%3 == 0 {
			// Longer than the full backoff ladder: the fleet ends the gap
			// parked, and the next burst starts from a cold handshake.
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()
	if err := <-serveErr; err == nil {
		t.Fatal("Serve returned nil after cancellation")
	}

	if got, want := ran.Load(), int64(rounds*burst*5); got != want {
		t.Fatalf("ran %d of %d tasks across the churn", got, want)
	}
	s := p.Stats()
	if s.Parks == 0 || s.Wakes == 0 {
		t.Fatalf("parks=%d wakes=%d: the fleet never actually churned through park/wake", s.Parks, s.Wakes)
	}
	if s.TasksDropped != 0 {
		t.Fatalf("%d tasks dropped during a clean churn run", s.TasksDropped)
	}
}

// TestSoakResizeChurn hammers the elastic fleet through the public API:
// hundreds of random Resize calls across the whole [1, MaxWorkers] range
// while concurrent submitters keep an open stream of fan-out submissions
// flowing. Every handle completing with nil — and a final Drain reporting
// a clean, ErrStopped-free shutdown — is the whole assertion; the stats
// checks confirm the churn really retired and restarted workers rather
// than idling at one size.
func TestSoakResizeChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	maxW := 2 * runtime.GOMAXPROCS(0)
	if maxW < 4 {
		maxW = 4
	}
	const (
		rounds     = 300
		submitters = 2
		perRound   = 8
	)
	p := sched.New(sched.Config{Workers: maxW / 2, MaxWorkers: maxW, ParkThreshold: 2})
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if h, err := p.Submit(func(*sched.Worker) {}); err == nil {
			if werr := h.Wait(); werr != nil {
				t.Fatalf("readiness probe: %v", werr)
			}
			break
		} else if err != sched.ErrNotServing || time.Now().After(deadline) {
			t.Fatalf("pool never became ready: %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	rng := rand.New(rand.NewSource(42))
	var ran atomic.Int64
	for round := 0; round < rounds; round++ {
		if err := p.Resize(1 + rng.Intn(maxW)); err != nil {
			t.Fatalf("round %d: Resize: %v", round, err)
		}
		var wg sync.WaitGroup
		wg.Add(submitters)
		for s := 0; s < submitters; s++ {
			go func(round, s int) {
				defer wg.Done()
				for i := 0; i < perRound; i++ {
					h, err := p.SubmitWithRetry(context.Background(), func(w *sched.Worker) {
						for j := 0; j < 4; j++ {
							w.Spawn(func(*sched.Worker) { ran.Add(1) })
						}
						ran.Add(1)
					}, sched.RetryPolicy{MaxAttempts: 50})
					if err != nil {
						t.Errorf("round %d submitter %d: %v", round, s, err)
						return
					}
					if err := h.Wait(); err != nil {
						t.Errorf("round %d submitter %d: Wait: %v", round, s, err)
						return
					}
				}
			}(round, s)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := p.Drain(dctx); err != nil {
		t.Fatalf("final Drain = %v after the churn", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after a graceful drain, want nil", err)
	}
	want := int64(rounds * submitters * perRound * 5)
	if got := ran.Load(); got != want {
		t.Fatalf("ran %d of %d tasks across the resize churn", got, want)
	}
	s := p.Stats()
	if s.TasksDropped != 0 {
		t.Fatalf("%d tasks dropped during a clean churn", s.TasksDropped)
	}
	if s.Resizes < rounds/2 || s.WorkersRetired == 0 {
		t.Fatalf("the churn never really exercised the fleet: resizes=%d retired=%d", s.Resizes, s.WorkersRetired)
	}

	// The pool remains usable after the drain: one more short session.
	go func() { serveErr <- p.Serve(context.Background()) }()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if h, err := p.Submit(func(*sched.Worker) {}); err == nil {
			if werr := h.Wait(); werr != nil {
				t.Fatalf("post-drain probe: %v", werr)
			}
			break
		} else if err != sched.ErrNotServing || time.Now().After(deadline) {
			t.Fatalf("pool never served again after drain: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain = %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("second Serve returned %v, want nil", err)
	}
}

// TestSoakPotentialMonotoneLarge verifies the potential function on a long
// multiprogrammed run.
func TestSoakPotentialMonotoneLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := workload.Grid(48, 80)
	tr := analysis.NewPotentialTracker(g.CriticalPath())
	res := sim.NewEngine(sim.Config{Graph: g, P: 12,
		Kernel: sim.BenignKernel{NumProcs: 12}, Seed: 3, Observer: tr}).Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	st := analysis.AnalyzePhases(tr.Points, 12)
	if !st.NeverIncreased {
		t.Error("potential increased")
	}
	if st.Phases > 0 && st.SuccessRate() < 0.25 {
		t.Errorf("success rate %.2f", st.SuccessRate())
	}
}
