package lint

import "testing"

func TestAtomicMix(t *testing.T)   { runAnalyzerTest(t, AtomicMix, "atomicmix") }
func TestOwnerOnly(t *testing.T)   { runAnalyzerTest(t, OwnerOnly, "owneronly") }
func TestNonBlocking(t *testing.T) { runAnalyzerTest(t, NonBlocking, "nonblocking") }
func TestCASLoop(t *testing.T)     { runAnalyzerTest(t, CASLoop, "casloop") }

// TestSuiteCleanOnOwnPackage dogfoods the loader and the full suite on the
// lint package itself: zero findings expected.
func TestSuiteCleanOnOwnPackage(t *testing.T) {
	pkgs, err := NewLoader().Load(".", ".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			diags, err := Run(a, pkg)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, pkg.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}
