package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkFunc parses and type-checks src (a complete import-free file) and
// returns the named function plus the machinery the flow engine needs.
func checkFunc(t *testing.T, src, name string) (*types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow_fixture.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return info, fd
		}
	}
	t.Fatalf("function %s not found in fixture", name)
	return nil, nil
}

// nthAssign returns the i-th assignment statement of fd in source order.
func nthAssign(t *testing.T, fd *ast.FuncDecl, i int) *ast.AssignStmt {
	t.Helper()
	var all []*ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			all = append(all, a)
		}
		return true
	})
	if i >= len(all) {
		t.Fatalf("fixture has %d assignments, need index %d", len(all), i)
	}
	return all[i]
}

func firstReturn(t *testing.T, fd *ast.FuncDecl) *ast.ReturnStmt {
	t.Helper()
	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && ret == nil {
			ret = r
		}
		return true
	})
	if ret == nil {
		t.Fatal("fixture has no return statement")
	}
	return ret
}

// lookupVar resolves a local variable of fd by name via Defs.
func lookupVar(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	var v *types.Var
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if obj, ok := info.Defs[id].(*types.Var); ok && v == nil {
				v = obj
			}
		}
		return true
	})
	if v == nil {
		t.Fatalf("variable %s not found in %s", name, fd.Name.Name)
	}
	return v
}

func TestCFGDominance(t *testing.T) {
	const src = `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	x = 3
	return x
}`
	_, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)

	init := nthAssign(t, fd, 0)   // x := 1
	branch := nthAssign(t, fd, 1) // x = 2 (then-branch)
	join := nthAssign(t, fd, 2)   // x = 3 (after the if)
	ret := firstReturn(t, fd)

	if !cfg.dominates(init, branch) {
		t.Error("x := 1 should dominate the then-branch assignment")
	}
	if !cfg.dominates(init, join) || !cfg.dominates(init, ret) {
		t.Error("x := 1 should dominate everything after it")
	}
	if cfg.dominates(branch, join) {
		t.Error("the then-branch assignment must not dominate the join: the else path skips it")
	}
	if cfg.dominates(join, init) {
		t.Error("dominance must respect source order within reachable flow")
	}
	if cfg.dominates(join, join) {
		t.Error("same-block dominance is strict: a node does not dominate itself")
	}
}

func TestCFGDominanceAcrossLoop(t *testing.T) {
	const src = `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`
	_, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)

	init := nthAssign(t, fd, 0) // s := 0
	body := nthAssign(t, fd, 2) // s = s + i
	ret := firstReturn(t, fd)

	if !cfg.dominates(init, body) || !cfg.dominates(init, ret) {
		t.Error("the pre-loop definition should dominate the body and the exit")
	}
	if cfg.dominates(body, ret) {
		t.Error("the loop body must not dominate the exit: zero-iteration loops skip it")
	}
}

func TestBlockNodeAt(t *testing.T) {
	const src = `package p
func f(c bool) int {
	x := 1
	return x
}`
	_, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)

	ret := firstReturn(t, fd)
	// The position of the returned expression resolves to the innermost
	// block node containing it: the return statement itself.
	if got := cfg.blockNodeAt(ret.Results[0].Pos()); got != ast.Node(ret) {
		t.Errorf("blockNodeAt(return operand) = %T, want the ReturnStmt", got)
	}
}

func TestReachingDefsKill(t *testing.T) {
	const src = `package p
func f() int {
	x := 1
	x = 2
	return x
}`
	info, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)
	reach := cfg.reachingDefs(info, funcParams(info, fd.Type, fd.Recv))

	x := lookupVar(t, info, fd, "x")
	redef := nthAssign(t, fd, 1)
	defs := reach.defsReaching(firstReturn(t, fd), x)
	if len(defs) != 1 {
		t.Fatalf("after an unconditional redefinition, %d defs reach the return, want 1", len(defs))
	}
	if defs[0].node != ast.Node(redef) {
		t.Errorf("the surviving definition is %v, want the redefinition x = 2", defs[0].node)
	}
}

func TestReachingDefsMerge(t *testing.T) {
	const src = `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`
	info, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)
	reach := cfg.reachingDefs(info, funcParams(info, fd.Type, fd.Recv))

	x := lookupVar(t, info, fd, "x")
	defs := reach.defsReaching(firstReturn(t, fd), x)
	if len(defs) != 2 {
		t.Fatalf("a conditional redefinition must merge at the join: got %d defs, want 2", len(defs))
	}
}

func TestReachingDefsLoopBackEdge(t *testing.T) {
	const src = `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`
	info, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)
	reach := cfg.reachingDefs(info, funcParams(info, fd.Type, fd.Recv))

	s := lookupVar(t, info, fd, "s")
	defs := reach.defsReaching(firstReturn(t, fd), s)
	if len(defs) != 2 {
		t.Fatalf("both the init and the loop-carried definition must reach the return: got %d defs, want 2", len(defs))
	}
}

func TestReachingDefsParam(t *testing.T) {
	const src = `package p
func f(c bool) bool {
	return c
}`
	info, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)
	params := funcParams(info, fd.Type, fd.Recv)
	reach := cfg.reachingDefs(info, params)

	if len(params) != 1 {
		t.Fatalf("funcParams returned %d vars, want 1", len(params))
	}
	defs := reach.defsReaching(firstReturn(t, fd), params[0])
	if len(defs) != 1 {
		t.Fatalf("the parameter's entry definition must reach the return: got %d defs", len(defs))
	}
	if defs[0].node != nil {
		t.Errorf("a parameter's entry definition has no defining node, got %T", defs[0].node)
	}
}

func TestReachingDefsAddressTakenIsWeak(t *testing.T) {
	const src = `package p
func g(*int) {}
func f() int {
	x := 1
	g(&x)
	return x
}`
	info, fd := checkFunc(t, src, "f")
	cfg := buildCFG(fd.Body)
	reach := cfg.reachingDefs(info, funcParams(info, fd.Type, fd.Recv))

	x := lookupVar(t, info, fd, "x")
	defs := reach.defsReaching(firstReturn(t, fd), x)
	// Taking &x is a weak definition: it generates (g may write through the
	// pointer) without killing, so the original x := 1 still reaches too.
	var weak, strong bool
	for _, d := range defs {
		if d.weak {
			weak = true
		} else {
			strong = true
		}
	}
	if !weak || !strong {
		t.Errorf("want both the weak &x definition and the surviving strong x := 1; got %d defs (weak=%v strong=%v)",
			len(defs), weak, strong)
	}
}
