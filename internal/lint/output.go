package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file is abpvet's machine-readable output layer: a position-resolved
// Finding record, a JSON report (which doubles as the -baseline file
// format), and a minimal SARIF 2.1.0 emitter for code-scanning upload. The
// emitters live in the library, not the command, so tests can round-trip
// them without spawning processes.

// A Finding is one diagnostic resolved to a concrete location. File is
// slash-separated and relative to the module root when the position falls
// under it, so reports are stable across checkouts.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// String renders the finding in the classic vet line format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Column, f.Message, f.Analyzer)
}

// MakeFinding resolves a diagnostic position against fset, relativizing the
// file path to root (when non-empty and containing the file).
func MakeFinding(analyzer string, fset *token.FileSet, pos token.Pos, message, root string) Finding {
	p := fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     relPath(root, p.Filename),
		Line:     p.Line,
		Column:   p.Column,
		Message:  message,
	}
}

func relPath(root, file string) string {
	if root != "" {
		if r, err := filepath.Rel(root, file); err == nil && r != ".." && !strings.HasPrefix(r, ".."+string(filepath.Separator)) {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(file)
}

// A Report is the JSON document -json emits and -baseline consumes.
type Report struct {
	Findings []Finding `json:"findings"`
}

// WriteJSON writes the findings as an indented JSON Report.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Findings: findings})
}

// --- Baseline ---

// A baselineKey identifies a finding across runs. Line and column are
// deliberately excluded: unrelated edits shift them, and a baseline that
// churns on every edit gets deleted, not maintained.
type baselineKey struct {
	analyzer, file, message string
}

// A Baseline is a set of previously accepted findings, read from a file in
// the -json Report format. Findings matching the baseline are dropped from
// output and do not affect the exit status.
type Baseline struct {
	keys map[baselineKey]bool
}

// ReadBaseline loads a baseline file written by -json.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	b := &Baseline{keys: map[baselineKey]bool{}}
	for _, f := range rep.Findings {
		b.keys[baselineKey{f.Analyzer, f.File, f.Message}] = true
	}
	return b, nil
}

// Filter returns the findings not covered by the baseline.
func (b *Baseline) Filter(findings []Finding) []Finding {
	if b == nil {
		return findings
	}
	var kept []Finding
	for _, f := range findings {
		if !b.keys[baselineKey{f.Analyzer, f.File, f.Message}] {
			kept = append(kept, f)
		}
	}
	return kept
}

// --- SARIF ---

// The sarif* types model the minimal slice of SARIF 2.1.0 that GitHub code
// scanning consumes: one run, one rule per analyzer, one result per
// finding with a single physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log under the given tool
// name. analyzers supplies the rule catalog (every analyzer that ran, found
// something or not, plus the synthetic unused-ignore rule when the caller
// includes it).
func WriteSARIF(w io.Writer, tool string, analyzers []*Analyzer, findings []Finding) error {
	driver := sarifDriver{
		Name:  tool,
		Rules: make([]sarifRule, 0, len(analyzers)),
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// UnusedIgnoreAnalyzer is the synthetic rule under which stale //abp:ignore
// directives are reported by abpvet -unused-ignores. It is not part of
// All(): it has no Run of its own — the evidence comes from running the
// real suite and seeing which directives suppressed nothing.
var UnusedIgnoreAnalyzer = &Analyzer{
	Name: "unused-ignore",
	Doc:  "reports //abp:ignore directives that no longer suppress any finding",
}

// UnusedIgnoreFinding converts a stale directive into a Finding under the
// unused-ignore rule.
func UnusedIgnoreFinding(d *IgnoreDirective, root string) Finding {
	form := d.Form
	if form == "" {
		form = "//abp:ignore " + d.Analyzer
	}
	return Finding{
		Analyzer: UnusedIgnoreAnalyzer.Name,
		File:     relPath(root, d.File),
		Line:     d.Line,
		Column:   1,
		Message: fmt.Sprintf("%s suppresses nothing: delete the stale directive before it hides a future regression",
			form),
	}
}
