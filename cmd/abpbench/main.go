// Command abpbench runs the native (real goroutine) work-stealing pool
// experiments: speedup curves on dag workloads, the multiprogramming
// emulation (more workers than GOMAXPROCS), and the deque/yield ablations
// on real hardware. It complements the instruction-level simulator
// (cmd/abpsim), which is where the paper's adversaries live.
//
// Examples:
//
//	abpbench -experiment speedup
//	abpbench -experiment multiprogram
//	abpbench -experiment ablation
//	abpbench -experiment tasks -stats
//	abpbench -experiment idle
//	abpbench -experiment chaos
//	abpbench -experiment chaos -faults 'deque.popTop.beforeCAS=delay:p=0.01:d=200us'
//	abpbench -experiment submit -out BENCH_submit.json
//	abpbench -experiment hotpath
//	abpbench -experiment hotpath -check BENCH_hotpath.json
//	abpbench -experiment elastic
//	abpbench -experiment elastic -check BENCH_elastic.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"worksteal/internal/dag"
	"worksteal/internal/sched"
	"worksteal/internal/table"
	"worksteal/internal/workload"
)

func main() {
	var (
		exp      = flag.String("experiment", "speedup", "speedup|multiprogram|ablation|tasks|contention|idle|chaos|submit|hotpath|elastic")
		nodeWork = flag.Int("nodework", 2000, "synthetic work per dag node (spin iterations)")
		reps     = flag.Int("reps", 3, "repetitions per configuration (best time kept)")
		stats    = flag.Bool("stats", false, "print the scheduler counter table (parks, wakes, backoff, ...) after pool experiments")
		faults   = flag.String("faults", "", "fault spec to arm for -experiment chaos (default: the ABP_FAULTS environment variable)")
		out      = flag.String("out", "", "JSON snapshot path (default BENCH_<experiment>.json) for -experiment submit|hotpath|elastic")
		check    = flag.String("check", "", "baseline BENCH_<experiment>.json to gate -experiment hotpath|elastic against (exit 1 on a >10% regression)")
	)
	flag.Parse()

	switch *exp {
	case "speedup":
		speedup(*nodeWork, *reps)
	case "multiprogram":
		multiprogram(*nodeWork, *reps)
	case "ablation":
		ablation(*nodeWork, *reps)
	case "tasks":
		tasks(*reps, *stats)
	case "contention":
		contention(*nodeWork, *reps)
	case "idle":
		idleOverhead(*reps)
	case "chaos":
		chaos(*reps, *faults, *stats)
	case "submit":
		submitExperiment(*nodeWork, *reps, *out, *stats)
	case "hotpath":
		hotpathExperiment(*nodeWork, *reps, *out, *check)
	case "elastic":
		elasticExperiment(*nodeWork, *reps, *out, *check)
	default:
		fmt.Fprintf(os.Stderr, "abpbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func bestGraphRun(cfg sched.GraphConfig, reps int) sched.GraphResult {
	var best sched.GraphResult
	for i := 0; i < reps; i++ {
		cfg.Seed = int64(i + 1)
		res := sched.RunGraph(cfg)
		if i == 0 || res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best
}

// speedup measures native dag execution time versus worker count.
func speedup(nodeWork, reps int) {
	tb := table.New(fmt.Sprintf("native speedup (GOMAXPROCS=%d, nodework=%d)", runtime.GOMAXPROCS(0), nodeWork),
		"workload", "T1", "Tinf", "workers", "time", "speedup", "steals")
	for _, spec := range []workload.Spec{
		{Name: "fib", Build: func() *dag.Graph { return workload.FibDag(18) }},
		{Name: "spine", Build: func() *dag.Graph { return workload.SpawnSpine(64, 256) }},
		{Name: "grid", Build: func() *dag.Graph { return workload.Grid(64, 128) }},
		{Name: "chain", Build: func() *dag.Graph { return workload.Chain(4000) }},
	} {
		g := spec.Build()
		var base time.Duration
		for _, w := range []int{1, 2, 4, 8} {
			res := bestGraphRun(sched.GraphConfig{Graph: g, Workers: w, NodeWork: nodeWork}, reps)
			if w == 1 {
				base = res.Elapsed
			}
			tb.Row(spec.Name, g.Work(), g.CriticalPath(), w, res.Elapsed.Round(time.Microsecond),
				float64(base)/float64(res.Elapsed), res.Steals)
		}
	}
	tb.Render(os.Stdout)
}

// multiprogram emulates a multiprogrammed environment on the native pool:
// P workers share GOMAXPROCS < P processors (the Go runtime plays the
// kernel), so P_A ~= GOMAXPROCS while P grows.
func multiprogram(nodeWork, reps int) {
	avail := 2
	prev := runtime.GOMAXPROCS(avail)
	defer runtime.GOMAXPROCS(prev)

	g := workload.FibDag(18)
	tb := table.New(fmt.Sprintf("multiprogramming emulation (GOMAXPROCS=%d, T1=%d, Tinf=%d)", avail, g.Work(), g.CriticalPath()),
		"workers P", "time", "vs P=2", "steals", "yields")
	var base time.Duration
	for _, w := range []int{2, 4, 8, 16} {
		res := bestGraphRun(sched.GraphConfig{Graph: g, Workers: w, NodeWork: nodeWork}, reps)
		if w == 2 {
			base = res.Elapsed
		}
		tb.Row(w, res.Elapsed.Round(time.Microsecond), float64(res.Elapsed)/float64(base),
			res.Steals, res.Yields)
	}
	tb.Render(os.Stdout)
	fmt.Println("The paper's bound predicts time ~ T1/P_A + Tinf*P/P_A: with P_A pinned at")
	fmt.Println("GOMAXPROCS, growing P should cost only the (small) Tinf*P/P_A term.")
}

// ablation compares the ABP deque against the mutex deque and yields
// against no yields, under multiprogramming pressure (P > GOMAXPROCS).
func ablation(nodeWork, reps int) {
	avail := 2
	prev := runtime.GOMAXPROCS(avail)
	defer runtime.GOMAXPROCS(prev)

	g := workload.FibDag(17)
	const workers = 16
	tb := table.New(fmt.Sprintf("native ablations (P=%d workers on GOMAXPROCS=%d)", workers, avail),
		"config", "time", "vs full", "steals", "yields")
	full := bestGraphRun(sched.GraphConfig{Graph: g, Workers: workers, NodeWork: nodeWork}, reps)
	tb.Row("ABP + yield", full.Elapsed.Round(time.Microsecond), 1.0, full.Steals, full.Yields)
	mutex := bestGraphRun(sched.GraphConfig{Graph: g, Workers: workers, NodeWork: nodeWork,
		Deque: sched.DequeMutex}, reps)
	tb.Row("mutex deque", mutex.Elapsed.Round(time.Microsecond),
		float64(mutex.Elapsed)/float64(full.Elapsed), mutex.Steals, mutex.Yields)
	noYield := bestGraphRun(sched.GraphConfig{Graph: g, Workers: workers, NodeWork: nodeWork,
		DisableYield: true}, reps)
	tb.Row("no yield", noYield.Elapsed.Round(time.Microsecond),
		float64(noYield.Elapsed)/float64(full.Elapsed), noYield.Steals, noYield.Yields)
	tb.Render(os.Stdout)
	fmt.Println("Note: Go's runtime preempts goroutines asynchronously, so the no-yield")
	fmt.Println("degradation is bounded here, unlike on the paper's 1998 kernels where it")
	fmt.Println("meant unbounded starvation (see the simulator ablation, cmd/figures E8).")
}

// tasks exercises the task-parallel API (Fork/Join, ParallelFor, Reduce).
func tasks(reps int, showStats bool) {
	tb := table.New(fmt.Sprintf("task API benchmarks (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		"benchmark", "workers", "time", "speedup")
	type job struct {
		name string
		run  func(p *sched.Pool)
	}
	jobs := []job{
		{"fib(28) cutoff 12", func(p *sched.Pool) {
			p.Run(func(w *sched.Worker) { _ = fibPar(w, 28, 12) })
		}},
		{"reduce 4M ints", func(p *sched.Pool) {
			p.Run(func(w *sched.Worker) {
				_ = sched.Reduce(w, 0, 1<<22, 1<<12,
					func(i int) int64 { return int64(i) },
					func(a, b int64) int64 { return a + b })
			})
		}},
	}
	for _, j := range jobs {
		var base time.Duration
		for _, workers := range []int{1, 2, 4, 8} {
			p := sched.New(sched.Config{Workers: workers})
			var best time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				j.run(p)
				if d := time.Since(start); r == 0 || d < best {
					best = d
				}
			}
			if workers == 1 {
				base = best
			}
			tb.Row(j.name, workers, best.Round(time.Microsecond), float64(base)/float64(best))
			if showStats {
				fmt.Printf("-- stats: %s, workers=%d\n%s", j.name, workers, p.Stats())
			}
		}
	}
	tb.Render(os.Stdout)
}

// idleOverhead measures what idle workers cost while one long serial task
// holds the pool: with the parking lifecycle (the default) each idle
// worker makes a handful of steal attempts, backs off, and parks — near
// zero CPU — while the paper's pure spinning loop (DisableParking) burns
// every idle core for the full duration. Steal attempts and yields are
// the CPU-burn proxies.
func idleOverhead(reps int) {
	tb := table.New(fmt.Sprintf("idle overhead: 100ms serial task on an 8-worker pool (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		"config", "steal attempts", "yields", "parks", "wakes", "backoff")
	for _, m := range []struct {
		name    string
		disable bool
	}{
		{"parking (default)", false},
		{"spinning (DisableParking)", true},
	} {
		p := sched.New(sched.Config{Workers: 8, DisableParking: m.disable})
		for r := 0; r < reps; r++ {
			p.Run(func(w *sched.Worker) { time.Sleep(100 * time.Millisecond) })
		}
		s := p.Stats()
		tb.Row(m.name, s.StealAttempts, s.Yields, s.Parks, s.Wakes,
			time.Duration(s.BackoffNanos).Round(time.Microsecond))
	}
	tb.Render(os.Stdout)
	fmt.Println("A spinning idle worker attempts steals millions of times per second (one")
	fmt.Println("core each at 100%); a parked worker stops after ~threshold attempts.")
}

// contention reproduces the paper's motivating scenario natively: the
// parallel computation shares the machine with other applications, here
// modeled by background spinner goroutines competing for the same
// processors (the Go runtime is the kernel deciding who runs). The paper's
// bound predicts graceful degradation proportional to the lost P_A.
func contention(nodeWork, reps int) {
	g := workload.FibDag(17)
	const workers = 4
	tb := table.New(fmt.Sprintf("background contention (workers=%d, GOMAXPROCS=%d)", workers, runtime.GOMAXPROCS(0)),
		"background load", "time", "vs idle", "steals")
	var base time.Duration
	for _, spinners := range []int{0, 1, 2, 4, 8} {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < spinners; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				x := uint64(1)
				for {
					select {
					case <-stop:
						return
					default:
						x ^= x << 13
						x ^= x >> 7
						runtime.Gosched()
					}
				}
			}()
		}
		res := bestGraphRun(sched.GraphConfig{Graph: g, Workers: workers, NodeWork: nodeWork}, reps)
		close(stop)
		wg.Wait()
		if spinners == 0 {
			base = res.Elapsed
		}
		tb.Row(spinners, res.Elapsed.Round(time.Microsecond),
			float64(res.Elapsed)/float64(base), res.Steals)
	}
	tb.Render(os.Stdout)
	fmt.Println("Spinners steal processor time the way the paper's 'mix of serial and")
	fmt.Println("parallel applications' does; the slowdown should track the lost P_A share.")
}

func fibPar(w *sched.Worker, n, cutoff int) int {
	if n < cutoff {
		return fibSerial(n)
	}
	a, b := sched.Join2(w,
		func(w2 *sched.Worker) int { return fibPar(w2, n-1, cutoff) },
		func(w2 *sched.Worker) int { return fibPar(w2, n-2, cutoff) })
	return a + b
}

func fibSerial(n int) int {
	if n < 2 {
		return n
	}
	return fibSerial(n-1) + fibSerial(n-2)
}
