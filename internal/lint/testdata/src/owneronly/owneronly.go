// Package owneronly is the analysistest fixture for the owneronly
// analyzer: PushBottom/PopBottom references must sit in a function that is
// annotated //abp:owner or statically reachable from one.
package owneronly

type deque struct{ items []*int }

func (d *deque) PushBottom(v *int) bool {
	d.items = append(d.items, v)
	return true
}

func (d *deque) PopBottom() *int {
	if len(d.items) == 0 {
		return nil
	}
	v := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return v
}

// run is the worker loop: it owns d for the lifetime of the run.
//
//abp:owner
func run(d *deque) {
	for d.PopBottom() != nil { // accepted: annotated owner root
	}
	helper(d)
}

// helper inherits the owner context: it is statically reachable from run.
func helper(d *deque) {
	d.PushBottom(new(int)) // accepted: reachable from an //abp:owner root
}

// rogue is reachable from no owner root; both references are violations.
func rogue(d *deque) {
	d.PushBottom(new(int)) // want `PushBottom called outside an owner context`
	pop := d.PopBottom     // want `PopBottom called outside an owner context`
	pop()
}

var _ = run
var _ = rogue
