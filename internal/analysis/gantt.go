package analysis

import (
	"fmt"
	"io"

	"worksteal/internal/dag"
	"worksteal/internal/sim"
)

// Gantt is a sim.Observer that renders an ASCII activity timeline: one row
// per process, one column per round, showing what each process was doing
// when the round started:
//
//	W  working (has an assigned node)
//	s  thieving (yield/steal phase)
//	d  operating on its own deque (push or popBottom in flight)
//	.  not yet distinguishable / between phases
//	x  halted
//	(space) the process executed no instruction since the previous sample
//
// Reading the chart makes adversaries visible at a glance: a starvation
// kernel shows columns where only 's' rows advance; yieldToAll shows the
// starved 'W' row reappearing every few columns.
type Gantt struct {
	MaxRounds int
	rows      [][]byte
	lastInstr []int64
	instr     []int64
	rounds    int
}

// NewGantt keeps the first maxRounds columns.
func NewGantt(maxRounds int) *Gantt {
	return &Gantt{MaxRounds: maxRounds}
}

// OnInstruction counts per-process instructions to detect idle processes.
func (g *Gantt) OnInstruction(e *sim.Engine, proc int) {
	if g.instr == nil {
		g.instr = make([]int64, e.P())
	}
	g.instr[proc]++
}

// OnRoundStart samples each process's phase.
func (g *Gantt) OnRoundStart(e *sim.Engine, round int) {
	if g.rows == nil {
		g.rows = make([][]byte, e.P())
		g.lastInstr = make([]int64, e.P())
		g.instr = make([]int64, e.P())
	}
	g.rounds++
	if round >= g.MaxRounds {
		return
	}
	for pid, ps := range e.Snapshot() {
		var c byte
		switch {
		case ps.Halted:
			c = 'x'
		case g.instr[pid] == g.lastInstr[pid] && round > 0:
			c = ' ' // not scheduled since last sample
		case ps.Assigned != dag.None:
			c = 'W'
		case ps.Phase == "yield" || ps.Phase == "steal":
			c = 's'
		case ps.Phase == "popBottom" || ps.Phase == "push":
			c = 'd'
		default:
			c = '.'
		}
		g.rows[pid] = append(g.rows[pid], c)
		g.lastInstr[pid] = g.instr[pid]
	}
}

// Render writes the chart.
func (g *Gantt) Render(w io.Writer) {
	fmt.Fprintln(w, "activity by round (W work, s steal, d deque op, ' ' unscheduled, x halted):")
	for pid, row := range g.rows {
		fmt.Fprintf(w, "p%-3d |%s|\n", pid, string(row))
	}
	if g.rounds > g.MaxRounds {
		fmt.Fprintf(w, "(%d more rounds not shown)\n", g.rounds-g.MaxRounds)
	}
}
