package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"worksteal/internal/lint"
)

// seededDir is the lint fixture that reintroduces the PR-1 discarded
// PushBottom; the full suite reports exactly one mustcheck finding there.
const seededDir = "../../internal/lint/testdata/src/seeded"

// runCLI invokes the command in process and returns its exit status and
// captured streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitCleanIsZero(t *testing.T) {
	// The command's own package carries no contract violations.
	code, stdout, stderr := runCLI(t, ".")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings: %q", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", seededDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "PushBottom is discarded") {
		t.Errorf("finding line missing from stdout: %q", stdout)
	}
	if !strings.Contains(stdout, "(mustcheck)") {
		t.Errorf("finding line does not name its analyzer: %q", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("summary missing from stderr: %q", stderr)
	}
}

func TestExitOperationalErrorIsTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown analyzer", []string{"-only", "nosuch", "."}, "unknown analyzer"},
		{"unused-ignores with -only", []string{"-only", "mustcheck", "-unused-ignores", "."}, "cannot be combined with -only"},
		{"bad flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"load failure", []string{"./no/such/dir"}, "abpvet:"},
		{"missing baseline", []string{"-baseline", filepath.Join(t.TempDir(), "absent.json"), "."}, "abpvet:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr %q does not contain %q", stderr, tc.want)
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-C", seededDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Analyzer != "mustcheck" || f.File != "seeded.go" {
		t.Errorf("unexpected finding %+v", f)
	}
}

func TestSARIFToFileAndStdout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "abpvet.sarif")
	code, stdout, _ := runCLI(t, "-sarif", path, "-C", seededDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	// Text findings still go to stdout when SARIF targets a file.
	if !strings.Contains(stdout, "(mustcheck)") {
		t.Errorf("text findings suppressed despite -sarif targeting a file: %q", stdout)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF file does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Errorf("unexpected SARIF shape: %s", data)
	}
	if log.Runs[0].Results[0].RuleID != "mustcheck" {
		t.Errorf("ruleId = %q, want mustcheck", log.Runs[0].Results[0].RuleID)
	}

	// With -sarif -, the log goes to stdout and replaces the text lines.
	code, stdout, _ = runCLI(t, "-sarif", "-", "-C", seededDir, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif - stdout is not pure SARIF: %v\n%s", err, stdout)
	}
}

func TestBaselineSuppressesKnownFindings(t *testing.T) {
	// First run records the findings; the second, given that record as a
	// baseline, exits clean.
	_, stdout, _ := runCLI(t, "-json", "-C", seededDir, ".")
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCLI(t, "-baseline", path, "-C", seededDir, ".")
	if code != 0 {
		t.Fatalf("baselined run: exit = %d, want 0; stderr: %s", code, stderr)
	}
	if out != "" {
		t.Errorf("baselined run still printed findings: %q", out)
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	// Recording exits 0 even though findings exist: refreshing a baseline
	// is an accept-the-world operation, not a failed check.
	code, stdout, stderr := runCLI(t, "-write-baseline", path, "-C", seededDir, ".")
	if code != 0 {
		t.Fatalf("write-baseline run: exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("write-baseline run printed findings: %q", stdout)
	}
	if !strings.Contains(stderr, "wrote baseline with 1 finding(s)") {
		t.Errorf("summary missing from stderr: %q", stderr)
	}

	// The file is the -json Report format with the expected finding.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep lint.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("baseline file does not parse as a Report: %v\n%s", err, data)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "mustcheck" {
		t.Fatalf("unexpected baseline contents: %+v", rep.Findings)
	}

	// Round trip: feeding the written baseline back suppresses everything.
	code, stdout, stderr = runCLI(t, "-baseline", path, "-C", seededDir, ".")
	if code != 0 {
		t.Fatalf("baselined run: exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined run still printed findings: %q", stdout)
	}
}

func TestWriteBaselineIncompatibleWithBaseline(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t,
		"-write-baseline", filepath.Join(dir, "new.json"),
		"-baseline", filepath.Join(dir, "old.json"), ".")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "cannot be combined with -baseline") {
		t.Errorf("stderr %q does not explain the flag conflict", stderr)
	}
}

func TestUnusedIgnoresFlagsStaleDirective(t *testing.T) {
	code, stdout, _ := runCLI(t, "-unused-ignores", "-C", "testdata/unusedignore", ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s", code, stdout)
	}
	if !strings.Contains(stdout, "suppresses nothing") || !strings.Contains(stdout, "(unused-ignore)") {
		t.Errorf("stale directive not reported: %q", stdout)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}
