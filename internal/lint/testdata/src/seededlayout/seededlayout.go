// Package seededlayout pins the abplayout analyzer's non-vacuity on the
// layout bug this repository actually shipped: before PR 8, the
// Chase-Lev deque declared the thief-CAS'd top directly against the
// owner-stored bottom and the ring pointer, so every owner push/pop
// invalidated the one cache line all thieves contend on (and every
// thief CAS invalidated the owner's line back). This package is that
// pre-PR struct in miniature; if the analyzer ever stops flagging it,
// the live padding in internal/deque/chaselev.go is no longer guarded.
package seededlayout

import "sync/atomic"

type chaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64         // want `false sharing in chaseLev: top \(cas-hot\) and bottom \(owner-hot\) share cache line 0`
	array  atomic.Pointer[ring] // want `false sharing in chaseLev: top \(cas-hot\) and array \(owner-hot\) share cache line 0`
}

type ring struct {
	mask int64
	buf  []atomic.Pointer[int]
}

// pushBottom is the owner's push: store the element, publish the new
// bottom (and, when full, a grown ring).
//
//abp:owner pushBottom/popBottom are owner-only (paper §3.2)
func (d *chaseLev) pushBottom(v *int) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.array.Load()
	if b-t > r.mask {
		bigger := &ring{mask: 2*r.mask + 1, buf: make([]atomic.Pointer[int], 2*(r.mask+1))}
		for i := t; i < b; i++ {
			bigger.buf[i&bigger.mask].Store(r.buf[i&r.mask].Load())
		}
		d.array.Store(bigger)
		r = bigger
	}
	r.buf[b&r.mask].Store(v)
	d.bottom.Store(b + 1)
}

func (d *chaseLev) popTop() *int {
	t := d.top.Load()
	b := d.bottom.Load()
	if b <= t {
		return nil
	}
	r := d.array.Load()
	v := r.buf[t&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return v
}
