// Package workload provides computation-dag generators with known work and
// critical-path length, plus native task workloads for the work-stealing
// pool. The dag generators cover the regimes that matter for the paper's
// bounds: serial (parallelism 1), maximally parallel, recursive fork-join
// (fully strict, Cilk-like), and non-fully-strict dags with semaphore-style
// synchronization edges (the generalization the paper makes over Blumofe and
// Leiserson's earlier fully-strict analysis).
package workload

import (
	"fmt"
	"math/rand"

	"worksteal/internal/dag"
)

// Chain returns a serial chain of n nodes: T1 = n, Tinf = n, parallelism 1.
// Work stealing can use only one process productively; the bound degenerates
// to O(T1/P_A + Tinf P/P_A) = O(n P/P_A).
func Chain(n int) *dag.Graph {
	if n < 1 {
		panic("workload: Chain requires n >= 1")
	}
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("chain(%d)", n))
	t := b.NewThread()
	b.AddChain(t, n)
	return b.MustBuild()
}

// SpawnSpine returns a dag in which the root thread spawns n independent
// child chains of childLen nodes each and then joins them in order:
//
//	T1 = 2n + n*childLen
//	Tinf = max(2n, n + childLen + 1)
//
// With childLen >> n the parallelism approaches n, making this the standard
// "embarrassingly parallel with a serial spine" workload.
func SpawnSpine(n, childLen int) *dag.Graph {
	if n < 1 || childLen < 1 {
		panic("workload: SpawnSpine requires n, childLen >= 1")
	}
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("spine(%d,%d)", n, childLen))
	root := b.NewThread()
	spawnNodes := make([]dag.NodeID, n)
	for i := 0; i < n; i++ {
		spawnNodes[i] = b.AddNode(root)
	}
	childLast := make([]dag.NodeID, n)
	for i := 0; i < n; i++ {
		ct, first := b.Spawn(spawnNodes[i])
		last := first
		for j := 1; j < childLen; j++ {
			last = b.AddNode(ct)
		}
		childLast[i] = last
	}
	for i := 0; i < n; i++ {
		join := b.AddNode(root)
		b.AddSync(childLast[i], join)
	}
	return b.MustBuild()
}

// FibDag returns the computation dag of the naive parallel Fibonacci
// program, the canonical fully strict fork-join workload:
//
//	fib(k) for k >= 2: node a spawns fib(k-1), node b spawns fib(k-2),
//	node c joins both children; fib(0) and fib(1) are single-node threads.
//
// Every internal call contributes 3 nodes and every leaf 1 node, so with
// calls(n) total calls and leaves(n) leaf calls, T1 = 3(calls - leaves) +
// leaves. The critical path grows linearly in n while the work grows
// exponentially, so parallelism grows exponentially.
func FibDag(n int) *dag.Graph {
	if n < 0 {
		panic("workload: FibDag requires n >= 0")
	}
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("fib(%d)", n))
	root := b.NewThread()
	first := b.AddNode(root)
	fibBody(b, root, first, n)
	return b.MustBuild()
}

// fibBody treats first as the already-appended first node of a fib(k) body
// in thread t, appends the rest of the body, and returns its last node.
func fibBody(b *dag.Builder, t dag.ThreadID, first dag.NodeID, k int) dag.NodeID {
	if k < 2 {
		return first // fib(0) and fib(1) are single-node threads
	}
	// first is node a: it spawns fib(k-1).
	ct1, cfirst1 := b.Spawn(first)
	last1 := fibBody(b, ct1, cfirst1, k-1)
	// Node b spawns fib(k-2).
	bb := b.AddNode(t)
	ct2, cfirst2 := b.Spawn(bb)
	last2 := fibBody(b, ct2, cfirst2, k-2)
	// Node c joins both children.
	c := b.AddNode(t)
	b.AddSync(last1, c)
	b.AddSync(last2, c)
	return c
}

// Grid returns a rows x cols wavefront dag: each row is a thread, node
// (i, j) has a continuation edge to (i, j+1) and a synchronization edge to
// (i+1, j). Row i+1 is spawned from node (i, 0). This is the non-fully-strict
// pipeline pattern of stencil computations:
//
//	T1 = rows*cols, Tinf = rows + cols - 1.
func Grid(rows, cols int) *dag.Graph {
	if rows < 1 || cols < 2 {
		panic("workload: Grid requires rows >= 1, cols >= 2")
	}
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("grid(%dx%d)", rows, cols))
	nodes := make([][]dag.NodeID, rows)
	t := b.NewThread()
	nodes[0] = make([]dag.NodeID, cols)
	for j := 0; j < cols; j++ {
		nodes[0][j] = b.AddNode(t)
	}
	for i := 1; i < rows; i++ {
		ti, first := b.Spawn(nodes[i-1][0])
		nodes[i] = make([]dag.NodeID, cols)
		nodes[i][0] = first
		for j := 1; j < cols; j++ {
			nodes[i][j] = b.AddNode(ti)
			b.AddSync(nodes[i-1][j], nodes[i][j])
		}
	}
	return b.MustBuild()
}

// Strands returns a Figure-1-style dag scaled up: k sibling threads hanging
// off a root spine, where consecutive siblings synchronize through
// semaphore-style edges midway (thread i's middle node signals thread i+1's
// middle node). It exercises Block/Enable transitions heavily.
func Strands(k, length int) *dag.Graph {
	if k < 1 || length < 3 {
		panic("workload: Strands requires k >= 1, length >= 3")
	}
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("strands(%d,%d)", k, length))
	root := b.NewThread()
	mids := make([]dag.NodeID, k)
	lasts := make([]dag.NodeID, k)
	for i := 0; i < k; i++ {
		s := b.AddNode(root)
		ct, first := b.Spawn(s)
		mid := first
		for j := 1; j < length; j++ {
			n := b.AddNode(ct)
			if j == length/2 {
				mid = n
			}
			lasts[i] = n
		}
		mids[i] = mid
		if i > 0 {
			// Thread i's progress past its midpoint waits for thread i-1's
			// midpoint signal: a cross-thread semaphore edge.
			b.AddSync(mids[i-1], mids[i])
		}
	}
	for i := 0; i < k; i++ {
		join := b.AddNode(root)
		b.AddSync(lasts[i], join)
	}
	return b.MustBuild()
}

// RandomSP returns a random series-parallel computation of roughly
// targetSize nodes, generated by a random recursive spawn/join program. The
// result is always a valid computation dag. The same seed yields the same
// graph.
func RandomSP(seed int64, targetSize int) *dag.Graph {
	if targetSize < 2 {
		panic("workload: RandomSP requires targetSize >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("randomSP(seed=%d,n=%d)", seed, targetSize))
	root := b.NewThread()
	b.AddNode(root)
	var grow func(t dag.ThreadID, budget int) dag.NodeID
	grow = func(t dag.ThreadID, budget int) dag.NodeID {
		last := dag.None
		for budget > 0 {
			switch rng.Intn(4) {
			case 0, 1: // straight-line work
				n := 1 + rng.Intn(3)
				if n > budget {
					n = budget
				}
				_, last = b.AddChain(t, n)
				budget -= n
			default: // spawn a child, recurse, then join
				if budget < 4 {
					_, last = b.AddChain(t, budget)
					budget = 0
					break
				}
				s := b.AddNode(t)
				budget--
				ct, cfirst := b.Spawn(s)
				sub := 1 + rng.Intn(budget/2+1)
				clast := cfirst
				if sub > 1 {
					clast = grow(ct, sub-1)
				}
				budget -= sub
				j := b.AddNode(t)
				budget--
				b.AddSync(clast, j)
				last = j
			}
		}
		if last == dag.None {
			last = b.AddNode(t)
		}
		return last
	}
	grow(root, targetSize-2)
	b.AddNode(root) // single final node
	return b.MustBuild()
}

// TreeSum returns the computation dag of a balanced binary fork-join
// reduction of depth d (for example summing a perfect binary tree): every
// internal call spawns two children and joins them, exactly like FibDag but
// with balanced recursion:
//
//	T1 = 3*(2^d - 1) + 2^d, Tinf = 3d + 1.
func TreeSum(depth int) *dag.Graph {
	if depth < 0 || depth > 24 {
		panic("workload: TreeSum depth out of range")
	}
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("treesum(%d)", depth))
	root := b.NewThread()
	first := b.AddNode(root)
	treeBody(b, root, first, depth)
	return b.MustBuild()
}

func treeBody(b *dag.Builder, t dag.ThreadID, first dag.NodeID, depth int) dag.NodeID {
	if depth == 0 {
		return first
	}
	ct1, cfirst1 := b.Spawn(first)
	last1 := treeBody(b, ct1, cfirst1, depth-1)
	bb := b.AddNode(t)
	ct2, cfirst2 := b.Spawn(bb)
	last2 := treeBody(b, ct2, cfirst2, depth-1)
	c := b.AddNode(t)
	b.AddSync(last1, c)
	b.AddSync(last2, c)
	return c
}

// UnbalancedTree returns a randomly skewed binary fork-join tree of roughly
// the given size, in the spirit of the Unbalanced Tree Search benchmark:
// subtree sizes are drawn from a heavily skewed distribution, so naive
// static partitioning fails while work stealing's dynamic balancing
// shines. The same seed yields the same graph.
func UnbalancedTree(seed int64, size int) *dag.Graph {
	if size < 1 {
		panic("workload: UnbalancedTree requires size >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder()
	b.SetLabel(fmt.Sprintf("uts(seed=%d,n=%d)", seed, size))
	root := b.NewThread()
	first := b.AddNode(root)
	unbalancedBody(b, rng, root, first, size)
	return b.MustBuild()
}

// unbalancedBody builds a fork-join body of ~budget nodes whose first node
// already exists, returning the last node.
func unbalancedBody(b *dag.Builder, rng *rand.Rand, t dag.ThreadID, first dag.NodeID, budget int) dag.NodeID {
	if budget < 7 { // too small to split: a serial chain
		if budget > 1 {
			_, last := b.AddChain(t, budget-1)
			return last
		}
		return first
	}
	// Skewed split: cube a uniform variate so one side is usually tiny.
	frac := rng.Float64()
	frac = frac * frac * frac
	rest := budget - 3 // the a, b, c nodes of this body
	nL := 1 + int(frac*float64(rest-2))
	nR := rest - nL
	if nR < 1 {
		nR = 1
		nL = rest - 1
	}
	ct1, cfirst1 := b.Spawn(first)
	last1 := unbalancedBody(b, rng, ct1, cfirst1, nL)
	bb := b.AddNode(t)
	ct2, cfirst2 := b.Spawn(bb)
	last2 := unbalancedBody(b, rng, ct2, cfirst2, nR)
	c := b.AddNode(t)
	b.AddSync(last1, c)
	b.AddSync(last2, c)
	return c
}
