// Tests for SubmitWithRetry (retry.go) against a genuinely saturated
// injector: a single two-slot shard whose only worker is plugged, so
// ErrOverloaded is real backpressure, not a simulation.
package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

// saturate plugs the one-worker pool and fills its single injector shard;
// the returned release unplugs the worker so the backlog drains.
func saturate(t *testing.T, p *Pool) (handles []*Handle, release func()) {
	t.Helper()
	release = plugWorkers(t, p)
	for i := 0; i < 2; i++ {
		h, err := p.Submit(func(*Worker) {})
		if err != nil {
			t.Fatalf("fill Submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	if _, err := p.Submit(func(*Worker) {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("probe Submit = %v, want ErrOverloaded (the shard is not saturated)", err)
	}
	return handles, release
}

// The retry loop outlasts a transient overload: the injector is full when
// the call starts and drains while it is backing off.
func TestSubmitWithRetryOutlastsOverload(t *testing.T) {
	p := New(Config{Workers: 1, InjectorShards: 1, InjectorCapacity: 2})
	stop := startServing(t, p)
	fills, release := saturate(t, p)

	res := make(chan error, 1)
	ran := make(chan struct{})
	go func() {
		h, err := p.SubmitWithRetry(context.Background(), func(*Worker) { close(ran) },
			RetryPolicy{MaxAttempts: 200, BaseDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond})
		if err == nil {
			err = h.Wait()
		}
		res <- err
	}()
	// Give the retrier time to be genuinely mid-backoff before the drain.
	time.Sleep(5 * time.Millisecond)
	release()
	if err := <-res; err != nil {
		t.Fatalf("SubmitWithRetry = %v across a transient overload", err)
	}
	<-ran
	for i, h := range fills {
		if err := h.Wait(); err != nil {
			t.Fatalf("fill submission %d: %v", i, err)
		}
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// A persistent overload exhausts the attempt budget and surfaces
// ErrOverloaded — the caller's signal that backpressure is not transient.
func TestSubmitWithRetryExhaustsAttempts(t *testing.T) {
	p := New(Config{Workers: 1, InjectorShards: 1, InjectorCapacity: 2})
	stop := startServing(t, p)
	fills, release := saturate(t, p)

	start := time.Now()
	h, err := p.SubmitWithRetry(context.Background(), func(*Worker) {},
		RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})
	if !errors.Is(err, ErrOverloaded) || h != nil {
		t.Fatalf("SubmitWithRetry under persistent overload: handle=%v err=%v, want nil handle and ErrOverloaded", h, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("3 bounded attempts took %v", elapsed)
	}
	release()
	for _, h := range fills {
		if err := h.Wait(); err != nil {
			t.Fatalf("fill Wait: %v", err)
		}
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// Cancellation cuts a backoff short: the call returns the ctx error
// promptly instead of sleeping out its schedule, and the submission never
// runs.
func TestSubmitWithRetryCancelledMidBackoff(t *testing.T) {
	p := New(Config{Workers: 1, InjectorShards: 1, InjectorCapacity: 2})
	stop := startServing(t, p)
	fills, release := saturate(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		// A backoff schedule far longer than the test: only cancellation
		// can end this call early.
		_, err := p.SubmitWithRetry(ctx, func(*Worker) { t.Error("cancelled submission ran") },
			RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second})
		res <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("SubmitWithRetry = %v after cancellation mid-backoff, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitWithRetry slept through its cancellation")
	}
	release()
	for _, h := range fills {
		if err := h.Wait(); err != nil {
			t.Fatalf("fill Wait: %v", err)
		}
	}
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// Non-overload errors are terminal on the first attempt — retrying
// ErrNotServing or ErrDraining would just burn the schedule.
func TestSubmitWithRetryNoRetryOnTerminalErrors(t *testing.T) {
	p := New(Config{Workers: 1})
	start := time.Now()
	if _, err := p.SubmitWithRetry(context.Background(), func(*Worker) {},
		RetryPolicy{MaxAttempts: 100, BaseDelay: time.Second, MaxDelay: time.Second}); !errors.Is(err, ErrNotServing) {
		t.Fatalf("SubmitWithRetry on an idle pool = %v, want ErrNotServing", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("terminal error took %v: it was retried", elapsed)
	}
}
