package sim

import (
	"testing"

	"worksteal/internal/dag"
)

// runOp steps an operation to completion and returns its result.
func runOp(t *testing.T, o op) dag.NodeID {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if o.step() {
			return o.result()
		}
	}
	t.Fatal("op did not complete in 1000 steps")
	return dag.None
}

func TestABPDequeSequential(t *testing.T) {
	d := newABPDeque(16, 32)
	if got := runOp(t, d.startPopBottom(0)); got != dag.None {
		t.Fatalf("popBottom on empty = %v", got)
	}
	if got := runOp(t, d.startPopTop(1)); got != dag.None {
		t.Fatalf("popTop on empty = %v", got)
	}
	for i := dag.NodeID(1); i <= 5; i++ {
		runOp(t, d.startPushBottom(0, i))
	}
	if d.size() != 5 {
		t.Fatalf("size = %d", d.size())
	}
	snap := d.snapshot()
	want := []dag.NodeID{5, 4, 3, 2, 1} // bottom to top
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", snap, want)
		}
	}
	if got := runOp(t, d.startPopTop(1)); got != 1 {
		t.Fatalf("popTop = %v, want 1", got)
	}
	if got := runOp(t, d.startPopBottom(0)); got != 5 {
		t.Fatalf("popBottom = %v, want 5", got)
	}
	if d.size() != 3 {
		t.Fatalf("size = %d, want 3", d.size())
	}
	// Drain from the bottom through the reset path.
	for want := dag.NodeID(4); want >= 2; want-- {
		if got := runOp(t, d.startPopBottom(0)); got != want {
			t.Fatalf("popBottom = %v, want %v", got, want)
		}
	}
	if got := runOp(t, d.startPopBottom(0)); got != dag.None {
		t.Fatalf("popBottom on drained deque = %v", got)
	}
	if d.bot != 0 || d.age.Top != 0 {
		t.Fatalf("indices not reset: bot=%d top=%d", d.bot, d.age.Top)
	}
	if d.age.Tag == 0 {
		t.Fatal("tag not bumped across empty resets")
	}
}

// TestABPLastItemRace interleaves popBottom and popTop on a one-item deque:
// the thief's CAS lands first, the owner's CAS must fail, and the owner must
// then reset age with a fresh tag.
func TestABPLastItemRace(t *testing.T) {
	d := newABPDeque(8, 32)
	runOp(t, d.startPushBottom(0, 7))

	thief := d.startPopTop(1)
	// Thief: load age (0,0), load bot (=1), load node.
	for i := 0; i < 3; i++ {
		if thief.step() {
			t.Fatal("thief completed early")
		}
	}
	owner := d.startPopBottom(0)
	// Owner: load bot (1); store bot=0... up to just before its CAS.
	for i := 0; i < 5; i++ {
		if owner.step() {
			t.Fatal("owner completed early")
		}
	}
	// Thief's CAS: wins the race.
	if !thief.step() {
		t.Fatal("thief should complete at its CAS")
	}
	if got := thief.result(); got != 7 {
		t.Fatalf("thief result = %v, want 7", got)
	}
	// Owner: CAS fails (one more step), then stores the reset age.
	done := owner.step()
	if !done {
		done = owner.step()
	}
	if !done {
		t.Fatal("owner did not complete after failed CAS + store")
	}
	if got := owner.result(); got != dag.None {
		t.Fatalf("owner result = %v, want NIL", got)
	}
	if d.casFailures != 1 {
		t.Fatalf("casFailures = %d, want 1", d.casFailures)
	}
	if d.age != (Age{Tag: 1, Top: 0}) || d.bot != 0 {
		t.Fatalf("deque not reset: age=%+v bot=%d", d.age, d.bot)
	}
	// The deque must be fully usable afterwards.
	runOp(t, d.startPushBottom(0, 9))
	if got := runOp(t, d.startPopTop(2)); got != 9 {
		t.Fatalf("post-race popTop = %v, want 9", got)
	}
}

// TestABPOwnerWinsLastItemRace is the mirror image: the owner's CAS lands
// first and the suspended thief's CAS must fail.
func TestABPOwnerWinsLastItemRace(t *testing.T) {
	d := newABPDeque(8, 32)
	runOp(t, d.startPushBottom(0, 7))

	thief := d.startPopTop(1)
	for i := 0; i < 3; i++ {
		thief.step()
	}
	// Owner runs its whole popBottom: CAS succeeds.
	if got := runOp(t, d.startPopBottom(0)); got != 7 {
		t.Fatalf("owner result = %v, want 7", got)
	}
	if !thief.step() {
		t.Fatal("thief should complete at its CAS")
	}
	if got := thief.result(); got != dag.None {
		t.Fatalf("thief result = %v, want NIL (owner won)", got)
	}
	if d.casFailures != 1 {
		t.Fatalf("casFailures = %d, want 1", d.casFailures)
	}
}

// TestABADemonstration reproduces the exact scenario of Section 3.3: a thief
// is preempted after reading the top node but before its CAS; the owner
// empties the deque and pushes fresh work, restoring the same top index.
// With the tag the stale CAS fails; without the tag (tagBits = 0) the stale
// CAS succeeds and the thief walks off with a node that was already taken.
func TestABADemonstration(t *testing.T) {
	run := func(tagBits int) (thiefGot dag.NodeID, d *abpDeque) {
		d = newABPDeque(8, tagBits)
		runOp(t, d.startPushBottom(0, 1)) // node A

		thief := d.startPopTop(1)
		for i := 0; i < 3; i++ { // load age, load bot, load node A; suspend
			if thief.step() {
				t.Fatal("thief completed early")
			}
		}
		// Owner takes A (deque goes empty, top resets), then pushes B.
		if got := runOp(t, d.startPopBottom(0)); got != 1 {
			t.Fatalf("owner popBottom = %v, want node A", got)
		}
		runOp(t, d.startPushBottom(0, 2)) // node B at the same index

		// Thief resumes with its stale CAS.
		if !thief.step() {
			t.Fatal("thief should complete at its CAS")
		}
		return thief.result(), d
	}

	t.Run("with tag", func(t *testing.T) {
		got, d := run(32)
		if got != dag.None {
			t.Fatalf("stale CAS returned %v; the tag should have made it fail", got)
		}
		// Node B is still stealable.
		if b := runOp(t, d.startPopTop(2)); b != 2 {
			t.Fatalf("node B = %v, want 2", b)
		}
	})
	t.Run("without tag (ABA)", func(t *testing.T) {
		got, d := run(0)
		if got != 1 {
			t.Fatalf("expected the ABA failure to hand the thief stale node A, got %v", got)
		}
		// And node B has been lost: top passed over it.
		if b := runOp(t, d.startPopTop(2)); b != dag.None {
			t.Fatalf("expected node B to be lost to the ABA race, got %v", b)
		}
	})
}

func TestNewABPDequePanicsOnBadTagBits(t *testing.T) {
	for _, bits := range []int{-1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tagBits=%d did not panic", bits)
				}
			}()
			newABPDeque(8, bits)
		}()
	}
}

func TestLockDequeSequential(t *testing.T) {
	d := newLockDeque(8)
	if got := runOp(t, d.startPopBottom(0)); got != dag.None {
		t.Fatalf("popBottom empty = %v", got)
	}
	for i := dag.NodeID(1); i <= 3; i++ {
		runOp(t, d.startPushBottom(0, i))
	}
	if got := runOp(t, d.startPopTop(1)); got != 1 {
		t.Fatalf("popTop = %v", got)
	}
	if got := runOp(t, d.startPopBottom(0)); got != 3 {
		t.Fatalf("popBottom = %v", got)
	}
	snap := d.snapshot()
	if len(snap) != 1 || snap[0] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if d.lockHolder() != -1 {
		t.Fatalf("lock held after ops: %d", d.lockHolder())
	}
}

// TestLockDequeBlocksWhenHolderPreempted shows the blocking pathology: with
// the lock held by a suspended process, every other operation spins forever.
func TestLockDequeBlocksWhenHolderPreempted(t *testing.T) {
	d := newLockDeque(8)
	runOp(t, d.startPushBottom(0, 1))
	owner := d.startPopBottom(0)
	owner.step() // acquires the lock, then is "preempted"
	if d.lockHolder() != 0 {
		t.Fatalf("lockHolder = %d, want 0", d.lockHolder())
	}
	thief := d.startPopTop(1)
	for i := 0; i < 100; i++ {
		if thief.step() {
			t.Fatal("thief completed while lock held")
		}
	}
	if d.spinSteps != 100 {
		t.Fatalf("spinSteps = %d, want 100", d.spinSteps)
	}
	// Resume the owner; the thief then proceeds (and finds it empty).
	for !owner.step() {
	}
	if got := owner.result(); got != 1 {
		t.Fatalf("owner = %v", got)
	}
	if got := runOpCont(t, thief); got != dag.None {
		t.Fatalf("thief = %v, want NIL", got)
	}
}

// runOpCont finishes an already-started op.
func runOpCont(t *testing.T, o op) dag.NodeID {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if o.step() {
			return o.result()
		}
	}
	t.Fatal("op did not complete")
	return dag.None
}

func TestOpsPanicWhenSteppedAfterCompletion(t *testing.T) {
	d := newABPDeque(4, 32)
	push := d.startPushBottom(0, 1)
	for !push.step() {
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stepping a completed op did not panic")
		}
	}()
	push.step()
}
