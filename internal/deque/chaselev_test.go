package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestChaseLevSequentialSemantics(t *testing.T) {
	testSequentialSemantics(t, func() Dequer[int] { return NewChaseLev[int]() })
}

func TestChaseLevEmpty(t *testing.T) {
	d := NewChaseLev[int]()
	if d.PopBottom() != nil || d.PopTop() != nil || d.Len() != 0 {
		t.Fatal("empty deque misbehaved")
	}
	// Pop on empty repeatedly must not corrupt indices.
	for i := 0; i < 5; i++ {
		if d.PopBottom() != nil {
			t.Fatal("phantom item")
		}
	}
	v := 42
	d.PushBottom(&v)
	if got := d.PopBottom(); got == nil || *got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestChaseLevGrowth(t *testing.T) {
	d := NewChaseLev[int]()
	const n = 10000 // far beyond the 64-slot initial ring
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		vals[i] = i
		if !d.PushBottom(&vals[i]) {
			t.Fatal("unbounded push failed")
		}
	}
	if d.Len() != n {
		t.Fatalf("Len = %d", d.Len())
	}
	// Order preserved across growth: bottom pops LIFO, top pops FIFO.
	if got := d.PopTop(); got == nil || *got != 0 {
		t.Fatalf("PopTop = %v, want 0", got)
	}
	if got := d.PopBottom(); got == nil || *got != n-1 {
		t.Fatalf("PopBottom = %v, want %d", got, n-1)
	}
	for i := n - 2; i >= 1; i-- {
		if got := d.PopBottom(); got == nil || *got != i {
			t.Fatalf("PopBottom = %v, want %d", got, i)
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("deque should be empty")
	}
}

func TestChaseLevGrowthMidStream(t *testing.T) {
	// Interleave pushes and pops so growth happens with top > 0 (the copy
	// must use absolute indices).
	d := NewChaseLev[int]()
	vals := make([]int, 4096)
	next := 0
	popped := 0
	for round := 0; round < 64; round++ {
		for i := 0; i < 60; i++ {
			vals[next] = next
			d.PushBottom(&vals[next])
			next++
		}
		for i := 0; i < 30; i++ {
			if got := d.PopTop(); got != nil {
				popped++
			}
		}
	}
	// Drain and verify each remaining item appears exactly once.
	seen := make(map[int]bool)
	for {
		got := d.PopBottom()
		if got == nil {
			break
		}
		if seen[*got] {
			t.Fatalf("item %d twice", *got)
		}
		seen[*got] = true
	}
	if popped+len(seen) != next {
		t.Fatalf("accounted %d of %d items", popped+len(seen), next)
	}
}

func TestChaseLevOwnerThiefRace(t *testing.T) {
	testOwnerThiefRace(t, func() Dequer[uint64] { return NewChaseLev[uint64]() }, 4)
}

func TestChaseLevConcurrentGrowth(t *testing.T) {
	// Thieves hammer PopTop while the owner pushes enough to grow several
	// times; every item must be taken exactly once.
	d := NewChaseLev[uint64]()
	const items = 50000
	vals := make([]uint64, items)
	taken := make([]atomic.Uint32, items)
	var stolen atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v := d.PopTop(); v != nil {
					if taken[*v].Add(1) != 1 {
						t.Errorf("item %d stolen twice", *v)
						return
					}
					stolen.Add(1)
				}
				select {
				case <-stop:
					if d.Len() == 0 {
						return
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		vals[i] = uint64(i)
		d.PushBottom(&vals[i])
	}
	// Owner drains its share from the bottom.
	owned := int64(0)
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		if taken[*v].Add(1) != 1 {
			t.Fatalf("item %d taken twice (owner)", *v)
		}
		owned++
	}
	close(stop)
	wg.Wait()
	// Thieves may still have drained the rest; check totals.
	if got := owned + stolen.Load(); got != items {
		t.Fatalf("accounted %d of %d", got, items)
	}
}

func BenchmarkChaseLevPushPop(b *testing.B) {
	d := NewChaseLev[int]()
	v := 1
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		if d.PopBottom() == nil {
			b.Fatal("lost item")
		}
	}
}
