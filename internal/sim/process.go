package sim

import (
	"fmt"

	"worksteal/internal/dag"
)

// phase identifies where a process is in the Figure 3 scheduling loop.
type phase uint8

const (
	// phCheckDone: about to test the computationDone flag (loop head).
	phCheckDone phase = iota
	// phExecute: about to execute the assigned node (line 6).
	phExecute
	// phPopBottom: a popBottom invocation is in flight (line 8).
	phPopBottom
	// phPush: a pushBottom invocation is in flight (line 12).
	phPush
	// phYield: about to yield and pick a victim (lines 15-16).
	phYield
	// phSteal: a popTop invocation on the victim is in flight (line 17).
	phSteal
	// phHalted: the process observed computationDone and stopped.
	phHalted
)

func (ph phase) String() string {
	switch ph {
	case phCheckDone:
		return "checkDone"
	case phExecute:
		return "execute"
	case phPopBottom:
		return "popBottom"
	case phPush:
		return "push"
	case phYield:
		return "yield"
	case phSteal:
		return "steal"
	case phHalted:
		return "halted"
	default:
		return fmt.Sprintf("phase(%d)", uint8(ph))
	}
}

// process is one of the P processes executing the scheduling loop.
type process struct {
	id       int
	deque    dequeOps
	assigned dag.NodeID
	phase    phase
	cur      op         // in-flight deque operation, when phase is phPopBottom/phPush/phSteal
	next     dag.NodeID // node to assign once the in-flight push completes
	victim   int        // victim of the in-flight steal
	rrVictim int        // round-robin victim cursor (VictimRoundRobin)

	// Per-round milestone count (reset when the process is scheduled in a
	// new round); used for the throw definition.
	msRound int

	// Milestone spacing measurement: the paper's constant C is the largest
	// number of consecutive instructions a process can execute without a
	// milestone; we measure it.
	instrSinceMilestone int
	maxMilestoneGap     int

	// Statistics.
	instr         int64
	nodesExecuted int
	stealAttempts int
	steals        int
	throws        int
	yields        int
}

// step executes exactly one instruction of the process. The engine calls it
// only for scheduled, non-halted processes. The engine is single-threaded,
// so its goroutine is the single owner of every simulated deque; the
// directive puts the simulator's deque traffic under abpvet's
// ownerescape/owneronly audit.
//
//abp:owner the single-threaded engine goroutine owns every simulated deque
func (p *process) step(e *Engine) {
	p.instr++
	p.instrSinceMilestone++
	milestone := false
	stealCompleted := false

	switch p.phase {
	case phCheckDone:
		// One instruction: load the computationDone flag.
		if e.done {
			p.phase = phHalted
			e.onHalt(p)
			break
		}
		if p.assigned != dag.None {
			p.phase = phExecute
		} else {
			p.phase = phYield
		}

	case phExecute:
		// One instruction: execute the assigned node. Enabled children are
		// bookkeeping on the dag, performed atomically with the execution
		// (the paper linearizes the execution and the update of the
		// assigned node together).
		milestone = true
		u := p.assigned
		p.assigned = dag.None
		enabled := e.executeNode(p, u)
		switch len(enabled) {
		case 0: // thread died or blocked: pop a new assigned node
			p.cur = p.deque.startPopBottom(p.id)
			p.phase = phPopBottom
		case 1: // no synchronization: continue with the child
			p.assigned = enabled[0]
			p.phase = phCheckDone
		case 2: // enable or spawn: push one child, keep the other
			keep, push := e.chooseChild(u, enabled[0], enabled[1])
			p.next = keep
			p.cur = p.deque.startPushBottom(p.id, push)
			p.phase = phPush
		default:
			panic(fmt.Sprintf("sim: node %d enabled %d children", u, len(enabled)))
		}

	case phPopBottom:
		if p.cur.step() {
			p.assigned = p.cur.result()
			p.cur = nil
			p.phase = phCheckDone
		}

	case phPush:
		if p.cur.step() {
			p.assigned = p.next
			p.next = dag.None
			p.cur = nil
			p.phase = phCheckDone
		}

	case phYield:
		// One instruction: the yield system call (line 15) plus the local
		// random victim selection (line 16). With YieldNone this is just
		// the victim selection.
		e.applyYield(p)
		p.victim = e.pickVictim(p)
		p.cur = e.procs[p.victim].deque.startPopTop(p.id)
		p.phase = phSteal

	case phSteal:
		if p.cur.step() {
			// The completion of a popTop invocation is a milestone.
			milestone = true
			stealCompleted = true
			p.stealAttempts++
			if res := p.cur.result(); res != dag.None {
				p.steals++
				p.assigned = res
			}
			p.cur = nil
			p.phase = phCheckDone
		}

	case phHalted:
		panic("sim: halted process stepped")
	}

	if milestone {
		if p.instrSinceMilestone > p.maxMilestoneGap {
			p.maxMilestoneGap = p.instrSinceMilestone
		}
		p.instrSinceMilestone = 0
		p.msRound++
		if stealCompleted && p.msRound == 2 {
			// A steal attempt completing at the process's second milestone
			// in a round is a throw (Section 4.1).
			p.throws++
		}
	}
}

// busyWithDeque reports whether the process has a deque operation in flight
// on its own deque, making the deque's snapshot transiently inconsistent.
func (p *process) busyWithDeque() bool {
	return p.phase == phPopBottom || p.phase == phPush
}
