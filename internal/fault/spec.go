package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// EnvVar is the environment variable cmd/abpbench consults for a fault
// spec, so chaos configurations can be injected into a binary without
// touching its flags (e.g. ABP_FAULTS='deque.popTop.beforeCAS=delay:d=50us:p=0.1').
const EnvVar = "ABP_FAULTS"

// ParseSpec parses a textual fault specification into rules. The grammar:
//
//	spec   := rule (';' rule)*
//	rule   := point '=' action (':' opt)*
//	action := "delay" | "yield" | "panic" | "suspend"
//	opt    := "oneshot" | "times=N" | "nth=N" | "p=F" | "seed=N" | "d=DUR"
//
// For example:
//
//	deque.popTop.beforeCAS=suspend:oneshot
//	sched.loop.beforeSteal=delay:d=200us:p=0.05:seed=7;sched.park.beforeSleep=yield:nth=3
//
// Point names are not validated against the catalog: a spec may name a
// point compiled into a build the parser has never seen. Use Catalog to
// list the points this binary actually contains.
func ParseSpec(spec string) (map[string]Rule, error) {
	out := map[string]Rule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: bad clause %q: want point=action[:opt...]", clause)
		}
		parts := strings.Split(rest, ":")
		var r Rule
		switch strings.TrimSpace(parts[0]) {
		case "delay":
			r.Action = ActionDelay
		case "yield":
			r.Action = ActionYield
		case "panic":
			r.Action = ActionPanic
		case "suspend":
			r.Action = ActionSuspend
		default:
			return nil, fmt.Errorf("fault: %s: unknown action %q", name, parts[0])
		}
		for _, opt := range parts[1:] {
			opt = strings.TrimSpace(opt)
			key, val, _ := strings.Cut(opt, "=")
			var err error
			switch key {
			case "oneshot":
				r.OneShot = true
			case "times":
				r.Times, err = strconv.Atoi(val)
			case "nth":
				r.EveryNth, err = strconv.Atoi(val)
			case "p":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1) {
					err = fmt.Errorf("probability %v out of [0,1]", r.Prob)
				}
			case "seed":
				r.Seed, err = strconv.ParseInt(val, 10, 64)
			case "d":
				r.Delay, err = time.ParseDuration(val)
			default:
				err = fmt.Errorf("unknown option %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: %s: option %q: %v", name, opt, err)
			}
		}
		out[name] = r
	}
	return out, nil
}

// EnableSpec parses spec and arms every rule in it. On a parse error
// nothing is armed.
func EnableSpec(spec string) error {
	rs, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	for name, r := range rs {
		Enable(name, r)
	}
	return nil
}
