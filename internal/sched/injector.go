// External submission injector: the bounded MPMC queues that carry root
// tasks from client goroutines into the worker loops.
//
// The paper's model has a single root task handed to process zero before
// the scheduling loop starts; everything else enters the system through an
// owner's pushBottom. A long-lived service pool (Pool.Serve) breaks that
// assumption: submissions arrive concurrently from arbitrary goroutines
// that own no deque. The standard remedy — the one the Go runtime
// (globrunqget polled from findRunnable) and Tokio's global injector queue
// use atop the same work-stealing deques — is a small set of shared MPMC
// queues that workers poll between local pops and steals. Each intra-task
// DAG still executes through the deques, so the paper's structural lemma
// and steal-bound analysis apply per submission (DESIGN.md §10).
//
// The queue is the classic bounded MPMC ring of per-cell sequence numbers
// (Vyukov's design, also the shape of Go's runtime.poolDequeue): cell i
// carries a sequence word that encodes which lap of the ring it is on, so
// producers and consumers coordinate with one CAS each on their own index
// and never lock. Like the ABP deque's relaxed semantics, TryPop may
// return nil while a producer is between reserving a cell (the CAS on enq)
// and publishing it (the seq store): the queue appears momentarily
// non-empty-but-unpoppable. Len counts reserved cells, so the parking
// protocol's visibility argument errs on the safe side — a worker deciding
// whether to sleep sees the submission from the moment of reservation, not
// publication (see the Dekker note on Pool.SubmitContext).
//
// Capacity is the admission-control bound: a full ring makes TryPush
// return false and Submit reject with ErrOverloaded (or shed to the
// caller, Config.Overload) instead of queueing unboundedly.
package sched

import (
	"fmt"

	"worksteal/internal/atomicx"
	"worksteal/internal/fault"
)

// Failpoints in the injector hot paths (internal/fault, DESIGN.md §9).
// Both sit before the reservation CAS, where a frozen goroutine holds no
// cell and therefore — per the chaos tests — cannot wedge anyone else.
var (
	fpInjectorBeforePush = fault.Register("sched.injector.beforePush",
		"injector TryPush: entered, reservation CAS not yet issued (submitter holds nothing)")
	fpInjectorBeforePop = fault.Register("sched.injector.beforePop",
		"injector TryPop: entered, dequeue CAS not yet issued (the frozen-poller chaos window)")
)

// injectorCell is one ring slot. seq is the lap-encoded coordination word:
// seq == pos means the cell is free for the producer reserving position
// pos; seq == pos+1 means it holds the value for the consumer at pos; the
// consumer releases it for the next lap with seq = pos+capacity. The task
// pointer itself is atomic so every cross-goroutine access in the package
// is a sync/atomic operation (the abpvet atomicmix contract), though the
// seq protocol alone already orders it.
// Both fields are publication-only (release/acquire): the cross-queue
// Dekker visibility the parking protocol needs rides the sc reservation
// CAS on enq, not the cell words.
// The trailing pad sizes the cell to exactly one cache line: unpadded,
// four 16-byte cells pack per line and a producer publishing cell i
// collides with the consumer releasing a neighbor. The E16 ablation
// (EXPERIMENTS.md) measured the packed layout ~35% slower on contended
// submit, so the 4x ring footprint is bought deliberately.
type injectorCell struct {
	seq atomicx.PublishUint64
	t   atomicx.PublishPointer[Task]
	_   [atomicx.CacheLineSize - 16]byte
}

// injector is one bounded MPMC shard. enq and deq are the producer and
// consumer positions; they sit on separate cache lines so a submission
// burst and a draining worker do not false-share.
// enq and deq are CAS-arbitrated between producers/consumers and carry
// the parking protocol's visibility (Len's loads), so they stay sc.
type injector struct {
	enq atomicx.SCUint64
	_   atomicx.CacheLinePad
	deq atomicx.SCUint64
	_   atomicx.CacheLinePad
	// mask is capacity-1; the capacity is rounded up to a power of two so
	// position-to-slot mapping is a single AND.
	mask uint64
	// cells are line-sized (see injectorCell): element packing resolved
	// by padding after the E16 measurement, not waived.
	cells []injectorCell
}

// newInjector returns an empty shard with at least the requested capacity
// (rounded up to a power of two, minimum 2). The floor is load-bearing:
// the full test below is seq < pos, i.e. the producer one lap ahead sees
// last lap's not-yet-consumed seq, which requires positions p and p+n to
// map to the same cell with different seq expectations — with a single
// cell, p+1's free test (seq == pos) is indistinguishable from p's
// published state and a push would overwrite the unconsumed task.
func newInjector(capacity int) *injector {
	if capacity < 1 {
		panic(fmt.Sprintf("sched: injector capacity %d < 1", capacity))
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	q := &injector{mask: uint64(n - 1), cells: make([]injectorCell, n)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// TryPush enqueues t, returning false if the ring is full (the admission
// bound). It never blocks and never waits on another process: the only
// loop is a CAS-retry on the producer index, each failure of which means
// another producer or consumer completed an operation.
//
//abp:nonblocking
func (q *injector) TryPush(t *Task) bool {
	fault.Point(fpInjectorBeforePush)
	pos := q.enq.Load()
	for {
		i := pos & q.mask
		seq := q.cells[i].seq.Load()
		switch {
		case seq == pos:
			// The cell is free on our lap: reserve it, then publish. The
			// seq store is the publication a consumer's TryPop waits for.
			if q.enq.CompareAndSwap(pos, pos+1) {
				q.cells[i].t.Store(t)
				q.cells[i].seq.Store(pos + 1)
				return true
			}
			pos = q.enq.Load()
		case seq < pos:
			// The cell still holds last lap's value: the ring is full.
			return false
		default:
			// A racing producer advanced enq past our snapshot: reload.
			pos = q.enq.Load()
		}
	}
}

// TryPop dequeues one task, returning nil if the shard is empty — or, per
// the relaxed semantics shared with deque.PopTop, if the next cell is
// reserved but not yet published by a mid-flight producer (the task is
// still visible to Len, so no parking decision can miss it).
//
//abp:nonblocking
func (q *injector) TryPop() *Task {
	fault.Point(fpInjectorBeforePop)
	pos := q.deq.Load()
	for {
		i := pos & q.mask
		seq := q.cells[i].seq.Load()
		switch {
		case seq == pos+1:
			// Published and ours to claim.
			if q.deq.CompareAndSwap(pos, pos+1) {
				t := q.cells[i].t.Load()
				q.cells[i].t.Store(nil)
				// Release the cell for the producer one lap ahead.
				q.cells[i].seq.Store(pos + q.mask + 1)
				return t
			}
			pos = q.deq.Load()
		case seq < pos+1:
			// Empty, or reserved-not-yet-published: report nothing rather
			// than wait on the stalled producer.
			return nil
		default:
			pos = q.deq.Load()
		}
	}
}

// Len estimates the number of submissions in the shard, counting reserved
// cells whose publication is still in flight. Like deque.Dequer.Len it is
// read with atomic loads so the parking protocol's pre-block re-scan
// (Worker.anyVisibleWork) gets sequentially consistent visibility of any
// reservation that precedes a parked-flag read.
func (q *injector) Len() int {
	e, d := q.enq.Load(), q.deq.Load()
	if e <= d {
		return 0
	}
	return int(e - d)
}

// pushInjector offers t to the injector shards, starting at a rotating
// shard so concurrent submitters spread across them, and trying every
// shard before giving up. A false return means every shard is full: the
// pool is overloaded and the caller applies the shed policy.
//
//abp:nonblocking
func (p *Pool) pushInjector(t *Task) bool {
	n := len(p.inject)
	start := int(p.shardRR.Add(1)-1) % n
	for i := 0; i < n; i++ {
		if p.inject[(start+i)%n].TryPush(t) {
			return true
		}
	}
	return false
}

// pollInjector is the worker-side drain: scan every shard once, starting
// at a per-worker home shard so workers do not all hammer shard 0.
//
//abp:nonblocking
func (w *Worker) pollInjector() *Task {
	p := w.pool
	n := len(p.inject)
	start := w.id % n
	for i := 0; i < n; i++ {
		if t := p.inject[(start+i)%n].TryPop(); t != nil {
			return t
		}
	}
	return nil
}
