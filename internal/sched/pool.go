// Package sched is the production side of the reproduction: a work-stealing
// task scheduler for Go built on the paper's non-blocking ABP deque
// (package deque). Each worker is one of the paper's "processes": it owns a
// deque, pops work from the bottom, and when idle yields the processor and
// steals from the top of a uniformly random victim's deque — exactly the
// Figure 3 scheduling loop, with Go's runtime playing the kernel. Unlike
// Figure 3, an idle worker does not spin forever: after repeated failed
// steals it backs off and parks, and Spawn wakes it when stealable work
// appears (see lifecycle.go for the protocol and why it preserves the
// paper's yield semantics).
//
// Two APIs are provided:
//
//   - a task API (Spawn, Fork/Join futures, ParallelFor/Reduce) in the style
//     of the Hood threads library the authors built on this scheduler, and
//   - a dag runner (RunGraph) that executes an explicit computation dag with
//     known work and critical-path length, for benchmark experiments that
//     check the paper's T1/P_A + Tinf*P/P_A bound on real hardware.
//
// For the paper's ablations, the pool can be configured with a mutex-guarded
// deque instead of the non-blocking one, with yields disabled, and with
// parking disabled (the pure spinning loop of Figure 3).
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"worksteal/internal/deque"
	"worksteal/internal/fault"
)

// Failpoints compiled into the scheduler (internal/fault, DESIGN.md §9).
// sched.loop.beforeSteal fires only for loop-level steals (never for a
// Join helping itself to work), so a chaos run can freeze thieves without
// ever freezing the joiner that must later resume them.
var (
	fpLoopEnter = fault.Register("sched.loop.enter",
		"worker loop: before the handoff check and first pop (crash here strands the root handoff)")
	fpLoopBeforeSteal = fault.Register("sched.loop.beforeSteal",
		"worker loop: idle, about to attempt a steal (loop-level steals only)")
	fpStealBeforePopTop = fault.Register("sched.steal.beforePopTop",
		"stealOnce: victim chosen, PopTop not yet issued (any steal, including Join helps)")
	fpExecBeforeRun = fault.Register("sched.exec.beforeRun",
		"exec: termination accounting armed, task function not yet entered")
	fpParkBeforeSleep = fault.Register("sched.park.beforeSleep",
		"park: parked flag published and re-check passed, not yet blocked on the token channel")
)

// DequeKind selects the deque implementation workers use.
type DequeKind uint8

const (
	// DequeABP is the paper's non-blocking deque (the default).
	DequeABP DequeKind = iota
	// DequeMutex is the blocking baseline for ablation benchmarks.
	DequeMutex
	// DequeChaseLev is the unbounded growable successor design (Chase and
	// Lev, SPAA 2005) — the paper's natural extension: no capacity bound,
	// no tag needed. Spawns never fall back to inline execution.
	DequeChaseLev
)

// Config configures a Pool.
type Config struct {
	// Workers is the number of worker goroutines (the paper's P processes).
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// Deque selects the deque implementation (default DequeABP).
	Deque DequeKind
	// DequeCapacity bounds each worker's deque; when a push finds the deque
	// full the task runs inline, which preserves correctness and depth-first
	// order at the cost of stealable parallelism. Defaults to
	// deque.DefaultCapacity.
	DequeCapacity int
	// DisableYield removes the runtime.Gosched call between steal attempts
	// (the paper's yield ablation). Only for experiments: under
	// multiprogramming (more workers than GOMAXPROCS) disabling yields lets
	// spinning thieves starve workers that hold all the work.
	DisableYield bool
	// ParkThreshold is the number of consecutive failed steal attempts
	// after which an idle worker starts backing off toward parking
	// (lifecycle.go). 0 means the default, max(8, 2*Workers), enough hot
	// rounds that a random thief has touched most victims before giving up.
	ParkThreshold int
	// DisableParking keeps idle workers in the paper's pure spinning loop —
	// yield and steal forever — instead of backing off and parking. Only
	// for experiments (the idle-overhead ablation): each idle spinning
	// worker burns a full core.
	DisableParking bool
	// Seed seeds victim selection; 0 means a fixed default.
	Seed int64
	// Pin calls runtime.LockOSThread in each worker, approximating the
	// paper's one-process-per-kernel-thread model.
	Pin bool
	// RoundRobinVictim replaces uniformly random victim selection with a
	// deterministic rotation (the design-choice-5 ablation; the paper's
	// analysis requires random victims).
	RoundRobinVictim bool
	// StallTimeout enables the stall watchdog (watchdog.go): a worker
	// goroutine that makes no scheduler-visible progress for this window
	// while unparked is surfaced via OnStall and Stats.StallsDetected
	// instead of hanging silently. 0 disables the watchdog.
	StallTimeout time.Duration
	// OnStall, if non-nil, is called by the watchdog goroutine once per
	// detected stall episode. It must be safe to call concurrently with
	// the run and must not block for long (it delays later detections).
	OnStall func(StallReport)
}

// Task is the unit of work handled by the scheduler.
type Task struct {
	fn func(*Worker)
}

// Pool is a work-stealing scheduler instance. Create one with New, then use
// Run or RunContext (possibly several times in sequence). A Pool must not
// be used by two runs concurrently; doing so panics with a clear error
// rather than corrupting the pending counter.
type Pool struct {
	cfg           Config
	parkThreshold int
	workers       []*Worker
	pending       atomic.Int64
	stopped       atomic.Bool
	running       atomic.Bool  // guards against concurrent Run/RunContext
	idle          atomic.Int32 // workers currently parked (lifecycle.go)
	dropped       atomic.Int64 // stale tasks drained between runs
	cancelledN    atomic.Int64 // tasks dropped by a cancelled RunContext
	stalls        atomic.Int64 // stall episodes surfaced by the watchdog
	wg            sync.WaitGroup

	// done is closed by the worker whose task decrement drives pending to
	// zero: the run is over, and the close wakes every parked worker.
	done chan struct{}

	// Abort plumbing, shared by the two ways a run ends early: the first
	// panicking task (recordPanic) or a context cancellation (cancelRun).
	// Whichever happens first wins abortOnce, sets stopped, and closes
	// abort — which wakes any Join or parked worker that would otherwise
	// wait forever. Run re-panics panicVal; RunContext returns cancelErr.
	abortOnce sync.Once
	panicVal  any
	cancelErr error
	abort     chan struct{}
}

// Worker is the execution context passed to every task; it identifies the
// worker goroutine running the task and provides the spawning operations.
type Worker struct {
	pool    *Pool
	id      int
	dq      deque.Dequer[Task]
	rng     *rand.Rand
	rr      int   // round-robin victim cursor
	handoff *Task // root task fallback slot (submitRoot), consumed by loop

	parkCh chan struct{} // capacity-1 wake token (lifecycle.go)
	parked atomic.Bool

	// progress ticks on every loop iteration and task completion; the
	// stall watchdog (watchdog.go) reads it to tell a live worker from one
	// frozen mid-operation.
	progress atomic.Int64

	// Per-worker counters, summed by Pool.Stats. Atomics so Stats is safe
	// to call while the run is in flight.
	tasksRun      atomic.Int64
	spawns        atomic.Int64
	inlineRuns    atomic.Int64
	steals        atomic.Int64
	stealAttempts atomic.Int64
	yields        atomic.Int64
	parks         atomic.Int64
	wakes         atomic.Int64
	backoffNanos  atomic.Int64
}

// New builds a pool. The zero Config is valid.
func New(cfg Config) *Pool {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", cfg.Workers))
	}
	if cfg.DequeCapacity == 0 {
		cfg.DequeCapacity = deque.DefaultCapacity
	}
	if cfg.DequeCapacity < 1 {
		panic(fmt.Sprintf("sched: deque capacity %d", cfg.DequeCapacity))
	}
	if cfg.ParkThreshold < 0 {
		panic(fmt.Sprintf("sched: park threshold %d", cfg.ParkThreshold))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	p := &Pool{cfg: cfg, parkThreshold: cfg.ParkThreshold}
	if p.parkThreshold == 0 {
		p.parkThreshold = max(8, 2*cfg.Workers)
	}
	for i := 0; i < cfg.Workers; i++ {
		var dq deque.Dequer[Task]
		switch cfg.Deque {
		case DequeMutex:
			dq = deque.NewMutexWithCapacity[Task](cfg.DequeCapacity)
		case DequeChaseLev:
			dq = deque.NewChaseLev[Task]()
		default:
			dq = deque.NewWithCapacity[Task](cfg.DequeCapacity)
		}
		p.workers = append(p.workers, &Worker{
			pool:   p,
			id:     i,
			dq:     dq,
			rng:    rand.New(rand.NewSource(seed + int64(i)*1_000_003)),
			parkCh: make(chan struct{}, 1),
		})
	}
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Run executes root on worker 0 and returns once root and every task
// transitively spawned from it have completed.
// If a task panics, the run aborts: remaining workers stop, and Run
// re-panics with the original value (tasks already stolen may still finish;
// tasks still in deques are dropped — and drained before the next Run, so
// they can never leak into it).
func (p *Pool) Run(root func(*Worker)) {
	// context.Background can never cancel, so the only error RunContext
	// can return here is nil.
	_ = p.RunContext(context.Background(), root)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) the run aborts through the same plumbing a task panic
// uses — workers stop after their current task, parked workers and blocked
// Joins wake — and RunContext returns ctx.Err(). Tasks that were spawned
// but never ran are discarded and counted in Stats.TasksCancelled; tasks
// already executing cannot be preempted and run to completion.
//
// A nil error means root and every transitively spawned task completed.
// If a task panics before any cancellation, RunContext re-panics with the
// original value, exactly like Run. The pool remains reusable after either
// outcome.
func (p *Pool) RunContext(ctx context.Context, root func(*Worker)) error {
	if !p.running.CompareAndSwap(false, true) {
		panic("sched: Pool.Run/RunContext called concurrently with a run already in flight on this pool (a Pool serves one run at a time)")
	}
	defer p.running.Store(false)
	p.stopped.Store(false)
	p.abortOnce = sync.Once{}
	p.panicVal = nil
	p.cancelErr = nil
	p.abort = make(chan struct{})
	p.done = make(chan struct{})
	p.drainDeques()
	// A root stranded in a handoff slot by an aborted run must be dropped
	// here, not executed as a ghost of the previous run. Cleared inline
	// (before the forks below) rather than in drain so the ordering against
	// the worker goroutines is a lexical fork edge.
	for _, w := range p.workers {
		if w.handoff != nil {
			w.handoff = nil
			p.dropped.Add(1)
		}
	}
	p.pending.Store(1)
	p.submitRoot(&Task{fn: root})
	if err := ctx.Err(); err != nil {
		// Already cancelled: abort before any worker starts, so the root
		// handoff/push is dropped (and counted) rather than executed.
		p.cancelRun(err)
	}
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		go w.loop()
	}

	// Auxiliary goroutines: the context watcher and the stall watchdog.
	// Both exit when the run ends (stopAux) or the run aborts.
	stopAux := make(chan struct{})
	var aux sync.WaitGroup
	if ctx.Done() != nil {
		aux.Add(1)
		go func() {
			defer aux.Done()
			select {
			case <-ctx.Done():
				p.cancelRun(ctx.Err())
			case <-p.done:
			case <-p.abort:
			case <-stopAux:
			}
		}()
	}
	if p.cfg.StallTimeout > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			p.watchdog(stopAux)
		}()
	}

	p.wg.Wait()
	close(stopAux)
	aux.Wait()

	if p.cancelErr != nil {
		// Quiescent again: every worker has exited (wg.Wait above), so the
		// run goroutine may drain what the cancelled run left behind —
		// including a root the abort stranded in its handoff slot.
		p.drain(&p.cancelledN)
		for _, w := range p.workers {
			if w.handoff != nil {
				w.handoff = nil
				p.cancelledN.Add(1)
			}
		}
		return p.cancelErr
	}
	if p.panicVal != nil {
		panic(p.panicVal)
	}
	return nil
}

// drainDeques empties every worker's deque of tasks left over from a
// previous aborted run, so a stale task can neither execute in the next
// run nor decrement its pending counter out from under it, and clears
// stale wake tokens. RunContext pairs it with the inline handoff-slot
// sweep (same hazard, different storage).
func (p *Pool) drainDeques() { p.drain(&p.dropped) }

// drain empties every deque into the given counter and clears stale wake
// tokens. Callers run only in quiescent phases — before a run's workers
// start, or after wg.Wait of a cancelled run — so the calling goroutine is
// a legitimate owner for the PopBottom calls. The handoff slots are
// cleared separately, inline in RunContext (see clearHandoffs there): the
// plain handoff field needs its ordering against the worker goroutines to
// be lexically visible to the static race detector.
//
//abp:owner quiescent phase: no workers are running between runs
func (p *Pool) drain(counter *atomic.Int64) {
	for _, w := range p.workers {
		for w.dq.PopBottom() != nil {
			counter.Add(1)
		}
		select {
		case <-w.parkCh:
		default:
		}
	}
}

// submitRoot hands the root task to worker 0. After drainDeques the deque
// is empty, so PushBottom cannot fail with the stock deques — but a
// refusal must not be silently dropped (it would deadlock wg.Wait with
// pending stuck at 1): fall back to the direct handoff slot, which worker
// 0's loop consumes before its first pop. This is the same run-it-anyway
// guarantee Spawn provides via inline execution.
//
//abp:owner quiescent phase: workers have not been started yet
func (p *Pool) submitRoot(t *Task) {
	if !p.workers[0].dq.PushBottom(t) {
		p.workers[0].handoff = t
	}
}

// recordPanic notes the first task (or worker-loop) panic and aborts the
// run. If a cancellation already aborted it, the panic is dropped — the
// cancellation is what the caller observes.
func (p *Pool) recordPanic(v any) {
	p.abortOnce.Do(func() {
		p.panicVal = v
		p.stopped.Store(true)
		close(p.abort)
	})
}

// cancelRun aborts the run because its context was cancelled. First abort
// wins: a panic recorded earlier keeps priority and still re-panics from
// RunContext.
func (p *Pool) cancelRun(err error) {
	p.abortOnce.Do(func() {
		p.cancelErr = err
		p.stopped.Store(true)
		close(p.abort)
	})
}

// Stats sums the per-worker counters accumulated so far (across runs). It
// is safe to call concurrently with a running Run.
func (p *Pool) Stats() Stats {
	s := Stats{
		TasksDropped:   p.dropped.Load(),
		TasksCancelled: p.cancelledN.Load(),
		StallsDetected: p.stalls.Load(),
	}
	for _, w := range p.workers {
		s.TasksRun += w.tasksRun.Load()
		s.Spawns += w.spawns.Load()
		s.InlineRuns += w.inlineRuns.Load()
		s.Steals += w.steals.Load()
		s.StealAttempts += w.stealAttempts.Load()
		s.Yields += w.yields.Load()
		s.Parks += w.parks.Load()
		s.Wakes += w.wakes.Load()
		s.BackoffNanos += w.backoffNanos.Load()
	}
	return s
}

// stealOnce performs one steal attempt against a victim chosen per the
// configured policy (uniformly random by default, Figure 3 line 16).
//
//abp:nonblocking
func (w *Worker) stealOnce() *Task {
	n := len(w.pool.workers)
	if n == 1 {
		return nil
	}
	var v int
	if w.pool.cfg.RoundRobinVictim {
		w.rr++
		v = w.rr % (n - 1)
	} else {
		v = w.rng.Intn(n - 1)
	}
	if v >= w.id {
		v++
	}
	w.stealAttempts.Add(1)
	fault.Point(fpStealBeforePopTop)
	t := w.pool.workers[v].dq.PopTop()
	if t != nil {
		w.steals.Add(1)
	}
	return t
}

// exec runs a task and performs termination accounting. A panicking task
// aborts the whole run; the panic value surfaces from Pool.Run. The worker
// whose decrement drives pending to zero ends the run: it sets stopped
// (the loop-exit condition) and closes done, which wakes every parked
// worker for a clean shutdown.
func (w *Worker) exec(t *Task) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
		}
		w.tasksRun.Add(1)
		w.progress.Add(1)
		if w.pool.pending.Add(-1) == 0 {
			w.pool.stopped.Store(true)
			close(w.pool.done)
		}
	}()
	fault.Point(fpExecBeforeRun)
	t.fn(w)
}

// ID returns the worker's index in [0, Workers).
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Spawn schedules fn to run asynchronously. It pushes the task onto the
// bottom of the caller's deque, where it is available to thieves, and
// wakes a parked worker if one exists; if the deque is full the task runs
// inline instead (correct, just not stealable). The handshake directive
// makes abpvet verify the producer half of the Dekker protocol: the push
// (PushBottom's internal atomic store) must dominate the signalWork scan of
// the parked flags.
//
//abp:owner tasks execute only on worker goroutines, so the receiver owns w.dq
//abp:handshake store=PushBottom load=signalWork
func (w *Worker) Spawn(fn func(*Worker)) {
	w.spawns.Add(1)
	w.pool.pending.Add(1)
	t := &Task{fn: fn}
	if !w.dq.PushBottom(t) {
		w.inlineRuns.Add(1)
		w.exec(t)
		return
	}
	w.pool.signalWork()
}

// tryGetTask pops local work, or failing that makes one steal attempt.
// Used by Future.Join to make progress while waiting.
//
//abp:owner tasks execute only on worker goroutines, so the receiver owns w.dq
func (w *Worker) tryGetTask() *Task {
	if t := w.dq.PopBottom(); t != nil {
		return t
	}
	return w.stealOnce()
}

// anyVisibleWork reports whether any deque in the pool appears non-empty.
// A false return together with an incomplete future means the future's task
// is currently running on some worker, so blocking is safe. The parking
// protocol relies on the same property: see park in lifecycle.go and the
// memory-ordering note on deque.Dequer.Len.
func (w *Worker) anyVisibleWork() bool {
	for _, o := range w.pool.workers {
		if o.dq.Len() > 0 {
			return true
		}
	}
	return false
}
