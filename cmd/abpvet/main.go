// Command abpvet runs the repository's custom concurrency-contract
// analyzers (package internal/lint) over Go packages, in the manner of a
// golang.org/x/tools/go/analysis multichecker but with zero dependencies
// outside the standard library.
//
// Usage:
//
//	go run ./cmd/abpvet [-only atomicmix,casloop] [packages]
//
// Packages default to ./... . Test files and testdata directories are not
// analyzed (the analyzers guard production invariants; tests intentionally
// abuse them). Exit status is 1 if any diagnostic is reported, 2 on
// operational failure. Findings can be suppressed case by case with a
// justified //abp:ignore comment; see package internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"worksteal/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: abpvet [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "abpvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.NewLoader().Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abpvet: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		if pkg.Standard {
			continue
		}
		for _, a := range analyzers {
			diags, err := lint.Run(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "abpvet: %s: %v\n", pkg.ImportPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "abpvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
