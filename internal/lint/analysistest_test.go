package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runAnalyzerTest loads the fixture package testdata/src/<fixture>, runs
// one analyzer over it, and checks the findings against the fixture's
// expectation comments, in the manner of x/tools' analysistest:
//
//	d.PopBottom() // want `outside an owner context`
//
// Each backquoted or double-quoted string after "// want" is a regexp that
// must match the message of a distinct diagnostic reported on that line;
// diagnostics not matched by any want, and wants not matched by any
// diagnostic, fail the test. Lines with no want comment assert the absence
// of findings, so every fixture doubles as accepted-case coverage.
func runAnalyzerTest(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkgs, err := NewLoader().Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	pkg := pkgs[0]
	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[key][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range wantPatternRE.FindAllString(text, -1) {
					pat := q
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else if unq, err := strconv.Unquote(q); err == nil {
						pat = unq
					} else {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
				if len(wants[k]) == 0 {
					t.Fatalf("%s: want comment with no pattern: %s", pos, c.Text)
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants[key{pos.Filename, pos.Line}] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no %s diagnostic matching %q", k.file, k.line, a.Name, w.re)
			}
		}
	}
}

// wantPatternRE matches one backquoted or double-quoted want pattern.
var wantPatternRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)
