// Package seeded reintroduces, in miniature, the exact bug PR 1 fixed in
// sched.(*Pool).submitRoot: the root task's PushBottom result was
// discarded, so a full deque silently dropped the root and Pool.Run
// deadlocked on a pending count that could never reach zero. The fixture
// asserts that mustcheck now catches that bug class mechanically.
package seeded

type task struct{ fn func() }

type deque struct {
	items []*task
	cap   int
}

func (d *deque) PushBottom(t *task) bool {
	if len(d.items) >= d.cap {
		return false
	}
	d.items = append(d.items, t)
	return true
}

func (d *deque) PopBottom() *task {
	if len(d.items) == 0 {
		return nil
	}
	t := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return t
}

type worker struct{ dq *deque }

type pool struct{ workers []*worker }

// submitRoot is the pre-PR-1 code shape, verbatim: the push's boolean
// vanishes, so a refusal drops the root task on the floor.
//
//abp:owner quiescent phase: workers have not been started yet
func (p *pool) submitRoot(t *task) {
	p.workers[0].dq.PushBottom(t) // want `PushBottom is discarded.*submitRoot deadlock class`
}

var _ = (*pool).submitRoot
