// Package apps contains parallel application kernels built on the
// work-stealing pool, in the spirit of the application studies run on Hood
// [Blumofe & Papadopoulos]: divide-and-conquer algorithms whose recursion
// trees are exactly the fork-join dags the paper's analysis covers.
package apps

import (
	"math"

	"worksteal/internal/sched"
)

// Quicksort sorts data in place with parallel recursive partitioning:
// subarrays larger than grain fork their left half. The recursion tree is
// input-dependent and unbalanced — a workload where randomized stealing's
// load balancing matters.
func Quicksort(w *sched.Worker, data []int, grain int) {
	if grain < 8 {
		grain = 8
	}
	quicksort(w, data, grain)
}

func quicksort(w *sched.Worker, data []int, grain int) {
	for len(data) > grain {
		p := partition(data)
		left, right := data[:p], data[p+1:]
		// Fork the smaller side, descend into the larger: bounds stack
		// depth at O(log n) per worker.
		if len(left) > len(right) {
			left, right = right, left
		}
		l := left
		f := sched.Fork(w, func(w2 *sched.Worker) struct{} {
			quicksort(w2, l, grain)
			return struct{}{}
		})
		data = right
		defer f.Join(w)
	}
	insertionSort(data)
}

// partition uses a median-of-three pivot and returns its final index.
func partition(data []int) int {
	n := len(data)
	mid := n / 2
	if data[0] > data[mid] {
		data[0], data[mid] = data[mid], data[0]
	}
	if data[0] > data[n-1] {
		data[0], data[n-1] = data[n-1], data[0]
	}
	if data[mid] > data[n-1] {
		data[mid], data[n-1] = data[n-1], data[mid]
	}
	pivot := data[mid]
	data[mid], data[n-2] = data[n-2], data[mid]
	i := 0
	for j := 1; j < n-2; j++ {
		if data[j] < pivot {
			i++
			if i != j {
				data[i], data[j] = data[j], data[i]
			}
		}
	}
	data[i+1], data[n-2] = data[n-2], data[i+1]
	return i + 1
}

func insertionSort(data []int) {
	for i := 1; i < len(data); i++ {
		v := data[i]
		j := i - 1
		for j >= 0 && data[j] > v {
			data[j+1] = data[j]
			j--
		}
		data[j+1] = v
	}
}

// Integrate computes the definite integral of f over [a, b] by parallel
// adaptive quadrature (Simpson's rule with recursive refinement). The
// recursion adapts to f's curvature, so the dag shape is unknown a priori —
// the situation the paper's on-line scheduling model addresses.
func Integrate(w *sched.Worker, f func(float64) float64, a, b, eps float64) float64 {
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	return adapt(w, f, a, b, fa, fb, fm, simpson(a, b, fa, fm, fb), eps, 24)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adapt(w *sched.Worker, f func(float64) float64, a, b, fa, fb, fm, whole, eps float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*eps {
		return left + right + (left+right-whole)/15
	}
	if depth <= 18 {
		// Deep refinements are cheap; stop forking to keep grain sensible.
		return adapt(w, f, a, m, fa, fm, flm, left, eps/2, depth-1) +
			adapt(w, f, m, b, fm, fb, frm, right, eps/2, depth-1)
	}
	r, l := sched.Join2(w,
		func(w2 *sched.Worker) float64 {
			return adapt(w2, f, m, b, fm, fb, frm, right, eps/2, depth-1)
		},
		func(w2 *sched.Worker) float64 {
			return adapt(w2, f, a, m, fa, fm, flm, left, eps/2, depth-1)
		})
	return l + r
}

// CountPrimes counts primes in [lo, hi) with a parallel reduction over
// trial division — the embarrassingly parallel end of the spectrum.
func CountPrimes(w *sched.Worker, lo, hi, grain int) int {
	return sched.Reduce(w, lo, hi, grain,
		func(i int) int {
			if isPrime(i) {
				return 1
			}
			return 0
		},
		func(a, b int) int { return a + b })
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}
