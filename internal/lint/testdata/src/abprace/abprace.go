// Package abprace exercises the happens-before race detector: plain
// counters touched from two goroutine contexts are flagged, while every
// ordering the analyzer understands — channel handoff, WaitGroup join,
// mutex lockset, atomic access, atomic release/acquire publication — is
// accepted, and the //abp:race-ignore escape hatch suppresses.
package abprace

import (
	"sync"
	"sync/atomic"
)

// --- flagged: no ordering between the sampler goroutine and the caller ---

type racer struct {
	hits int
}

// Count launches a sampler and then reads the counter with no ordering.
func Count(r *racer) int {
	go r.sample()
	return r.hits // want `possible data race on field hits`
}

func (r *racer) sample() {
	r.hits++
}

// --- flagged: two instances of the same goroutine, no mutual exclusion ---

type meter struct {
	ticks int
}

func (m *meter) tick() {
	m.ticks++ // want `possible data race on field ticks`
}

// Race2 launches the same method twice; the instances race each other.
func Race2(m *meter) {
	go m.tick()
	go m.tick()
}

// --- accepted: channel handoff orders the write before the read ---

type result struct {
	sum int
}

// Compute fills the result on a worker and synchronizes on the channel.
func Compute() int {
	res := &result{}
	done := make(chan struct{})
	go func() {
		res.sum = 42
		close(done)
	}()
	<-done
	return res.sum
}

// --- accepted: WaitGroup join orders the write before the read ---

type tally struct {
	n int
}

// Sum runs one worker under a WaitGroup and reads the tally after Wait.
func Sum() int {
	t := &tally{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.n = 7
	}()
	wg.Wait()
	return t.n
}

// --- accepted: a mutex covers every touch of the counter ---

type locked struct {
	mu sync.Mutex
	n  int
}

func (l *locked) Bump() {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

func (l *locked) Get() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Spawn hammers the locked counter from an extra goroutine.
func Spawn(l *locked) {
	go l.Bump()
}

// --- accepted: both sides use sync/atomic ---

type acounter struct {
	n atomic.Int64
}

func (c *acounter) Inc() { c.n.Add(1) }

func (c *acounter) Read() int64 { return c.n.Load() }

// SpawnAtomic hammers the atomic counter from an extra goroutine.
func SpawnAtomic(c *acounter) {
	go c.Inc()
}

// --- accepted: atomic release/acquire publication ---

type box struct {
	ready atomic.Bool
	val   int
}

// Publish writes val and then releases it via the ready flag.
func Publish(b *box) {
	go func() {
		b.val = 99
		b.ready.Store(true)
	}()
}

// Consume acquires the ready flag before reading val.
func Consume(b *box) int {
	if !b.ready.Load() {
		return 0
	}
	return b.val
}

// --- suppressed: a justified //abp:race-ignore silences the finding ---

type sloppy struct {
	n int
}

func (s *sloppy) bump() {
	s.n++ //abp:race-ignore fixture: demonstrates the justified escape hatch
}

// SpawnSloppy races bump against itself and the read below; the directive
// on the access line suppresses the report.
func SpawnSloppy(s *sloppy) int {
	go s.bump()
	go s.bump()
	return s.n
}
