package deque

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// This file checks linearizability of the native ABP deque implementation
// under the paper's relaxed semantics (Section 3.2) by recording small
// concurrent histories with real goroutines and then searching for a valid
// linearization:
//
//   - every operation takes effect atomically between its invocation and
//     response;
//   - pushBottom/popBottom/non-NIL popTop follow the sequential deque
//     semantics;
//   - a popTop may return NIL (without an empty linearization point) only
//     if some successful removal overlapped it — the relaxed rule "the
//     topmost item is removed by another process during the invocation".

const (
	opPush = iota
	opPopBottom
	opPopTop
)

type histOp struct {
	kind      int
	val       int // pushed value, or result (-1 for NIL)
	inv, resp int64
}

func (h histOp) String() string {
	names := []string{"push", "popBottom", "popTop"}
	return fmt.Sprintf("%s(%d)@[%d,%d]", names[h.kind], h.val, h.inv, h.resp)
}

// recordHistory runs a small random concurrent burst against a fresh deque
// built by mk and returns the recorded operations.
func recordHistory(rng *rand.Rand, mk func() Dequer[int], ownerOps, thiefCount, thiefOps int) []histOp {
	d := mk()
	var clock atomic.Int64
	var mu sync.Mutex
	var history []histOp
	record := func(op histOp) {
		mu.Lock()
		history = append(history, op)
		mu.Unlock()
	}

	vals := make([]int, 64)
	for i := range vals {
		vals[i] = i
	}
	plan := make([]int, ownerOps) // owner op kinds, fixed up front
	for i := range plan {
		if rng.Intn(2) == 0 {
			plan[i] = opPush
		} else {
			plan[i] = opPopBottom
		}
	}

	var start, wg sync.WaitGroup
	start.Add(1)
	next := 0
	wg.Add(1)
	go func() { // owner
		defer wg.Done()
		start.Wait()
		for _, kind := range plan {
			switch kind {
			case opPush:
				v := next
				next++
				inv := clock.Add(1)
				d.PushBottom(&vals[v])
				resp := clock.Add(1)
				record(histOp{kind: opPush, val: v, inv: inv, resp: resp})
			case opPopBottom:
				inv := clock.Add(1)
				got := d.PopBottom()
				resp := clock.Add(1)
				v := -1
				if got != nil {
					v = *got
				}
				record(histOp{kind: opPopBottom, val: v, inv: inv, resp: resp})
			}
		}
	}()
	for tIdx := 0; tIdx < thiefCount; tIdx++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			for i := 0; i < thiefOps; i++ {
				inv := clock.Add(1)
				got := d.PopTop()
				resp := clock.Add(1)
				v := -1
				if got != nil {
					v = *got
				}
				record(histOp{kind: opPopTop, val: v, inv: inv, resp: resp})
			}
		}()
	}
	start.Done()
	wg.Wait()
	return history
}

// linearizable searches for a valid linearization of the history under the
// relaxed semantics.
func linearizable(history []histOp) bool {
	n := len(history)
	if n > 20 {
		panic("history too long for search")
	}
	// Precompute which NIL popTops are excused by an overlapping successful
	// removal (relaxed semantics); un-excused NIL popTops must linearize at
	// an empty-deque point.
	excused := make([]bool, n)
	for i, op := range history {
		if op.kind == opPopTop && op.val == -1 {
			for j, other := range history {
				if j == i {
					continue
				}
				removal := (other.kind == opPopTop || other.kind == opPopBottom) && other.val != -1
				overlaps := other.inv < op.resp && op.inv < other.resp
				if removal && overlaps {
					excused[i] = true
					break
				}
			}
		}
	}

	used := make([]bool, n)
	var state []int // deque model; state[0] is the top
	seen := map[string]bool{}

	var dfs func(done int) bool
	dfs = func(done int) bool {
		if done == n {
			return true
		}
		key := stateKey(used, state)
		if seen[key] {
			return false
		}
		seen[key] = true
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Real-time order: i may linearize next only if no unused op
			// finished before i was invoked.
			minimal := true
			for j := 0; j < n; j++ {
				if !used[j] && j != i && history[j].resp < history[i].inv {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			op := history[i]
			switch op.kind {
			case opPush:
				state = append(state, op.val)
				used[i] = true
				if dfs(done + 1) {
					return true
				}
				used[i] = false
				state = state[:len(state)-1]
			case opPopBottom:
				if op.val == -1 {
					if len(state) == 0 {
						used[i] = true
						if dfs(done + 1) {
							return true
						}
						used[i] = false
					}
				} else if len(state) > 0 && state[len(state)-1] == op.val {
					saved := state[len(state)-1]
					state = state[:len(state)-1]
					used[i] = true
					if dfs(done + 1) {
						return true
					}
					used[i] = false
					state = append(state, saved)
				}
			case opPopTop:
				if op.val == -1 {
					if len(state) == 0 || excused[i] {
						// Excused NIL popTops are no-ops at any point.
						used[i] = true
						if dfs(done + 1) {
							return true
						}
						used[i] = false
					}
				} else if len(state) > 0 && state[0] == op.val {
					saved := state[0]
					state = state[1:]
					used[i] = true
					if dfs(done + 1) {
						return true
					}
					used[i] = false
					state = append([]int{saved}, state...)
				}
			}
		}
		return false
	}
	return dfs(0)
}

func stateKey(used []bool, state []int) string {
	return fmt.Sprintf("%v|%v", used, state)
}

// testRandomHistories drives the checker over many small live histories of
// one deque implementation. Both the ABP deque and Chase-Lev promise the
// same relaxed semantics (Chase-Lev needs no tag because top never
// rewinds), so both must pass the identical oracle.
func testRandomHistories(t *testing.T, mk func() Dequer[int]) {
	rng := rand.New(rand.NewSource(2024))
	histories := 0
	for trial := 0; trial < 300; trial++ {
		h := recordHistory(rng, mk, 4+rng.Intn(3), 1+rng.Intn(2), 1+rng.Intn(3))
		if len(h) > 12 {
			continue
		}
		histories++
		if !linearizable(h) {
			t.Fatalf("trial %d: history not linearizable under relaxed semantics:\n%v", trial, h)
		}
	}
	if histories < 100 {
		t.Fatalf("only %d histories checked", histories)
	}
}

func TestLinearizabilityRandomHistories(t *testing.T) {
	testRandomHistories(t, func() Dequer[int] { return NewWithCapacity[int](64) })
}

func TestLinearizabilityRandomHistoriesChaseLev(t *testing.T) {
	testRandomHistories(t, func() Dequer[int] { return NewChaseLev[int]() })
}

func TestLinearizabilityRandomHistoriesMutex(t *testing.T) {
	testRandomHistories(t, func() Dequer[int] { return NewMutexWithCapacity[int](64) })
}

// The checker itself must reject genuinely broken histories.
func TestLinearizabilityCheckerRejectsBadHistories(t *testing.T) {
	cases := map[string][]histOp{
		"pop before push": {
			{kind: opPopBottom, val: 5, inv: 1, resp: 2},
			{kind: opPush, val: 5, inv: 3, resp: 4},
		},
		"duplicate take": {
			{kind: opPush, val: 1, inv: 1, resp: 2},
			{kind: opPopTop, val: 1, inv: 3, resp: 4},
			{kind: opPopBottom, val: 1, inv: 5, resp: 6},
		},
		"wrong LIFO order": {
			{kind: opPush, val: 1, inv: 1, resp: 2},
			{kind: opPush, val: 2, inv: 3, resp: 4},
			{kind: opPopBottom, val: 1, inv: 5, resp: 6},
			{kind: opPopBottom, val: 2, inv: 7, resp: 8},
		},
		"unexcused NIL popTop": {
			{kind: opPush, val: 1, inv: 1, resp: 2},
			{kind: opPopTop, val: -1, inv: 3, resp: 4}, // nothing overlaps it
			{kind: opPopTop, val: 1, inv: 5, resp: 6},
		},
	}
	for name, h := range cases {
		if linearizable(h) {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Sanity: sequential histories are accepted.
func TestLinearizabilityCheckerAcceptsGoodHistories(t *testing.T) {
	cases := map[string][]histOp{
		"simple": {
			{kind: opPush, val: 1, inv: 1, resp: 2},
			{kind: opPush, val: 2, inv: 3, resp: 4},
			{kind: opPopTop, val: 1, inv: 5, resp: 6},
			{kind: opPopBottom, val: 2, inv: 7, resp: 8},
		},
		"empty NILs": {
			{kind: opPopTop, val: -1, inv: 1, resp: 2},
			{kind: opPopBottom, val: -1, inv: 3, resp: 4},
		},
		"excused NIL under contention": {
			{kind: opPush, val: 1, inv: 1, resp: 2},
			{kind: opPush, val: 2, inv: 3, resp: 4},
			// Two overlapping popTops: one succeeds, one NILs out, even
			// though item 2 is still there.
			{kind: opPopTop, val: 1, inv: 5, resp: 8},
			{kind: opPopTop, val: -1, inv: 6, resp: 9},
		},
		"concurrent overlap reorder": {
			// push and popTop overlap: the pop may see the push's value.
			{kind: opPush, val: 1, inv: 1, resp: 5},
			{kind: opPopTop, val: 1, inv: 2, resp: 6},
		},
	}
	for name, h := range cases {
		if !linearizable(h) {
			t.Errorf("%s: rejected", name)
		}
	}
}
