// Matmul: divide-and-conquer matrix multiplication, the classic
// bandwidth-heavy fork-join workload (and one of the original Cilk/Hood
// demo applications). The recursion splits the output into quadrants,
// forking three and descending into the fourth; leaves do a blocked serial
// multiply.
//
// Run with:
//
//	go run ./examples/matmul -n 256 -leaf 64 -workers 4
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"time"

	"worksteal/internal/sched"
)

// matrix is a square matrix view: a base slice with stride, so quadrant
// views share the backing storage.
type matrix struct {
	data   []float64
	stride int
	n      int
}

func newMatrix(n int) matrix {
	return matrix{data: make([]float64, n*n), stride: n, n: n}
}

func (m matrix) at(i, j int) float64     { return m.data[i*m.stride+j] }
func (m matrix) set(i, j int, v float64) { m.data[i*m.stride+j] = v }
func (m matrix) add(i, j int, v float64) { m.data[i*m.stride+j] += v }

// quad returns the (qi, qj) quadrant view (qi, qj in {0, 1}).
func (m matrix) quad(qi, qj int) matrix {
	h := m.n / 2
	return matrix{data: m.data[qi*h*m.stride+qj*h:], stride: m.stride, n: h}
}

// mulSerial computes c += a*b with a blocked loop.
func mulSerial(c, a, b matrix) {
	n := c.n
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.at(i, k)
			for j := 0; j < n; j++ {
				c.add(i, j, aik*b.at(k, j))
			}
		}
	}
}

// mulPar computes c += a*b by quadrant recursion: the four quadrants of c
// can be computed in parallel; within each, the two rank-halving products
// must be serial (they accumulate into the same quadrant).
func mulPar(w *sched.Worker, c, a, b matrix, leaf int) {
	if c.n <= leaf {
		mulSerial(c, a, b)
		return
	}
	var futs [3]*sched.Future[struct{}]
	idx := 0
	for qi := 0; qi < 2; qi++ {
		for qj := 0; qj < 2; qj++ {
			ci, cj := qi, qj
			task := func(w2 *sched.Worker) struct{} {
				cq := c.quad(ci, cj)
				mulPar(w2, cq, a.quad(ci, 0), b.quad(0, cj), leaf)
				mulPar(w2, cq, a.quad(ci, 1), b.quad(1, cj), leaf)
				return struct{}{}
			}
			if qi == 1 && qj == 1 {
				task(w) // run the last quadrant inline
			} else {
				futs[idx] = sched.Fork(w, task)
				idx++
			}
		}
	}
	for _, f := range futs {
		f.Join(w)
	}
}

func main() {
	n := flag.Int("n", 256, "matrix dimension (power of two)")
	leaf := flag.Int("leaf", 64, "serial leaf size")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()
	if *n&(*n-1) != 0 || *n < 2 {
		panic("n must be a power of two >= 2")
	}

	rng := rand.New(rand.NewSource(1))
	a, b := newMatrix(*n), newMatrix(*n)
	for i := range a.data {
		a.data[i] = rng.Float64()
		b.data[i] = rng.Float64()
	}

	want := newMatrix(*n)
	start := time.Now()
	mulSerial(want, a, b)
	serialTime := time.Since(start)

	got := newMatrix(*n)
	pool := sched.New(sched.Config{Workers: *workers})
	start = time.Now()
	pool.Run(func(w *sched.Worker) { mulPar(w, got, a, b, *leaf) })
	parTime := time.Since(start)

	var maxErr float64
	for i := range got.data {
		if e := math.Abs(got.data[i] - want.data[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-9 {
		panic(fmt.Sprintf("matmul mismatch: max error %g", maxErr))
	}
	s := pool.Stats()
	fmt.Printf("%dx%d matmul verified (max error %.2g)\n", *n, *n, maxErr)
	fmt.Printf("serial   %v\n", serialTime)
	fmt.Printf("parallel %v on %d workers (speedup %.2f)\n",
		parTime, pool.Workers(), float64(serialTime)/float64(parTime))
	fmt.Printf("%d tasks, %d steals / %d attempts\n", s.TasksRun, s.Steals, s.StealAttempts)
}
