package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Handshake machine-checks the store→load order the parking protocol's
// Dekker argument depends on (DESIGN.md §7, sched/lifecycle.go): a parker
// must PUBLISH its parked flag before it CHECKS for work, and a producer
// must PUSH its work before it CHECKS for parked workers. If either side
// reorders its two steps — or performs one of them with a plain,
// non-atomic access — the "whichever interleaving occurs, one side observes
// the other" case analysis collapses and a wakeup can be lost forever.
//
// The contract is declared per function with
//
//	//abp:handshake store=<name> load=<name>
//
// where each <name> matches, inside the annotated function's body:
//
//   - a sync/atomic operation on a struct field with that name, via wrapper
//     method (w.parked.Store(true), p.idle.Load()) or function-style call
//     (atomic.StoreUint32(&s.f, 1)); or
//   - a call to a function or method with that name (PushBottom,
//     anyVisibleWork, signalWork, ...), for sides whose memory operation is
//     delegated to an audited callee.
//
// The analyzer builds the function's control-flow graph (cfg.go) and
// reports: a declared store or load that matches nothing; a load that is
// not dominated by a store (some path checks before publishing); and any
// plain, non-atomic read or write of a named field inside the region (a
// single plain access voids sequential consistency). Operations inside
// nested function literals run at unknown times and neither satisfy nor
// violate the ordering; annotate the literal's own context instead.
var Handshake = &Analyzer{
	Name: "handshake",
	Doc:  "enforces store-before-load (Dekker) ordering and all-atomic access inside //abp:handshake functions",
	Run:  runHandshake,
}

// handshakeDirective is one parsed store=/load= pair.
type handshakeDirective struct {
	store, load string
}

func runHandshake(pass *Pass) error {
	for _, fd := range declsOf(pass.Files) {
		if fd.Body == nil {
			continue
		}
		dirs, malformed := parseHandshakeDirectives(fd.Doc)
		for _, bad := range malformed {
			pass.Reportf(fd.Pos(),
				"malformed //abp:handshake directive %q: want //abp:handshake store=<name> load=<name>", bad)
		}
		if len(dirs) == 0 {
			continue
		}
		cfg := buildCFG(fd.Body)
		name := funcName(fd)
		for _, dir := range dirs {
			stores := findHandshakeOps(pass, cfg, dir.store, true)
			loads := findHandshakeOps(pass, cfg, dir.load, false)
			if len(stores) == 0 {
				pass.Reportf(fd.Pos(),
					"//abp:handshake store=%s matches no store or call in %s: the publish side of the handshake is missing", dir.store, name)
			}
			if len(loads) == 0 {
				pass.Reportf(fd.Pos(),
					"//abp:handshake load=%s matches no load or call in %s: the check side of the handshake is missing", dir.load, name)
			}
			for _, op := range append(append([]handshakeOp(nil), stores...), loads...) {
				if op.plain {
					pass.Reportf(op.pos,
						"plain (non-atomic) access to handshake variable %s in %s: every access must be a seq-cst sync/atomic operation for the Dekker argument to hold", op.name, name)
				}
			}
			if len(stores) == 0 {
				continue
			}
			for _, l := range loads {
				if !storeDominatesLoad(cfg, stores, l) {
					pass.Reportf(l.pos,
						"handshake load of %s is not dominated by the store of %s in %s: on some path the check runs before the publish, so a concurrent peer can be missed (Dekker order, DESIGN.md §7)",
						dir.load, dir.store, name)
				}
			}
		}
	}
	return nil
}

// A handshakeOp is one matched operation: the block node it lives in (for
// dominance queries), its exact position, and whether it was a plain
// non-atomic access.
type handshakeOp struct {
	node  ast.Node // enclosing CFG block node
	pos   token.Pos
	name  string
	plain bool
}

func storeDominatesLoad(cfg *funcCFG, stores []handshakeOp, l handshakeOp) bool {
	for _, s := range stores {
		if s.node == l.node {
			if s.pos < l.pos {
				return true
			}
			continue
		}
		if cfg.dominates(s.node, l.node) {
			return true
		}
	}
	return false
}

// findHandshakeOps scans every CFG block node for operations matching name.
// isStore selects the write-side operation set (Store/Swap/Add/Or/And/
// CompareAndSwap and plain assignments) versus the read side (Load and
// plain reads). Calls to functions named name match either side.
func findHandshakeOps(pass *Pass, cfg *funcCFG, name string, isStore bool) []handshakeOp {
	var ops []handshakeOp
	for _, blk := range cfg.blocks {
		for _, node := range blk.nodes {
			// consumed marks selectors that are operands of a matched atomic
			// operation, so the plain-access scan below does not re-flag them.
			consumed := map[ast.Node]bool{}
			inspectSkippingFuncLits(node, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				switch {
				case isAtomicMethod(fn) && atomicOpMatchesSide(fn.Name(), isStore):
					// w.parked.Store(true): the receiver selector names the field.
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					recv := ast.Unparen(sel.X)
					if fieldName(pass.TypesInfo, recv) == name {
						consumed[recv] = true
						ops = append(ops, handshakeOp{node: node, pos: call.Pos(), name: name})
					}
				case isAtomicFunc(fn) && atomicOpMatchesSide(fn.Name(), isStore) && len(call.Args) > 0:
					// atomic.StoreUint32(&s.f, 1): arg 0 names the field.
					if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
						target := ast.Unparen(addr.X)
						if fieldName(pass.TypesInfo, target) == name {
							consumed[target] = true
							ops = append(ops, handshakeOp{node: node, pos: call.Pos(), name: name})
						}
					}
				case fn.Name() == name:
					// Delegated operation: a call to a function of that name.
					ops = append(ops, handshakeOp{node: node, pos: call.Pos(), name: name})
				}
				return true
			})
			// Plain accesses to a field with the declared name: writes when
			// isStore, reads otherwise. They count as operations (so the
			// ordering is still checked) but are flagged as non-atomic.
			inspectSkippingFuncLits(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if !isStore {
						return true
					}
					for _, lhs := range n.Lhs {
						target := ast.Unparen(lhs)
						if fieldName(pass.TypesInfo, target) == name {
							ops = append(ops, handshakeOp{node: node, pos: lhs.Pos(), name: name, plain: true})
						}
					}
				case *ast.SelectorExpr:
					if isStore || consumed[n] {
						return true
					}
					if isAssignTarget(node, n) {
						return true
					}
					if s, ok := pass.TypesInfo.Selections[n]; ok && s.Kind() == types.FieldVal && n.Sel.Name == name {
						// Not a receiver of an atomic call (consumed) and not a
						// write target: a plain read.
						if !isAtomicOperand(pass.TypesInfo, node, n) {
							ops = append(ops, handshakeOp{node: node, pos: n.Pos(), name: name, plain: true})
						}
					}
				}
				return true
			})
		}
	}
	return ops
}

// atomicOpMatchesSide reports whether the sync/atomic operation opName
// belongs to the store side (anything that writes) or the load side.
func atomicOpMatchesSide(opName string, isStore bool) bool {
	isWrite := false
	for _, p := range []string{"Store", "Swap", "Add", "And", "Or", "CompareAndSwap"} {
		if strings.HasPrefix(opName, p) {
			isWrite = true
			break
		}
	}
	if isStore {
		return isWrite
	}
	return strings.HasPrefix(opName, "Load")
}

// fieldName resolves the name a field-selecting expression denotes: x.f
// yields "f"; a bare identifier yields its name only when it denotes a
// variable (handshake fields are normally struct fields, but package-level
// shared variables work the same way).
func fieldName(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj().Name()
		}
		// Package-qualified identifier (pkg.Var): still a variable name.
		if _, ok := info.Uses[e.Sel].(*types.Var); ok {
			return e.Sel.Name
		}
	case *ast.Ident:
		if _, ok := info.Uses[e].(*types.Var); ok {
			return e.Name
		}
	}
	return ""
}

// isAssignTarget reports whether sel is an assignment LHS within root.
func isAssignTarget(root ast.Node, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ast.Unparen(lhs) == sel {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isAtomicOperand reports whether sel appears as the receiver of a wrapper
// atomic method call or the &-operand of a function-style atomic call
// anywhere under root — those accesses are atomic, not plain.
func isAtomicOperand(info *types.Info, root ast.Node, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := calleeFunc(info, call)
		switch {
		case isAtomicMethod(fn):
			if recv, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && ast.Unparen(recv.X) == sel {
				found = true
			}
		case isAtomicFunc(fn) && len(call.Args) > 0:
			if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND && ast.Unparen(addr.X) == sel {
				found = true
			}
		}
		return !found
	})
	return found
}

// inspectSkippingFuncLits walks n without descending into function
// literals: their bodies execute at unknown times relative to the region.
func inspectSkippingFuncLits(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return f(x)
	})
}

// parseHandshakeDirectives extracts well-formed store=/load= pairs from a
// doc comment and returns the raw text of malformed ones.
func parseHandshakeDirectives(doc *ast.CommentGroup) (dirs []handshakeDirective, malformed []string) {
	if doc == nil {
		return nil, nil
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//abp:handshake")
		if !ok {
			continue
		}
		var d handshakeDirective
		ok = true
		fields := strings.Fields(rest)
		for _, f := range fields {
			switch {
			case strings.HasPrefix(f, "store="):
				d.store = strings.TrimPrefix(f, "store=")
			case strings.HasPrefix(f, "load="):
				d.load = strings.TrimPrefix(f, "load=")
			default:
				ok = false
			}
		}
		if !ok || d.store == "" || d.load == "" || len(fields) != 2 {
			malformed = append(malformed, strings.TrimSpace(c.Text))
			continue
		}
		dirs = append(dirs, d)
	}
	return dirs, malformed
}
