package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"worksteal/internal/dag"
	"worksteal/internal/workload"
)

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res := NewEngine(cfg).Run()
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	if res.NodesExecuted != cfg.Graph.NumNodes() {
		t.Fatalf("executed %d nodes, want %d", res.NodesExecuted, cfg.Graph.NumNodes())
	}
	if res.Corruptions != 0 {
		t.Fatalf("corruptions: %d", res.Corruptions)
	}
	return res
}

func TestDedicatedCompletesAllWorkloads(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		for _, p := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("%s/P=%d", spec.Name, p), func(t *testing.T) {
				g := spec.Build()
				res := mustRun(t, Config{
					Graph: g, P: p, Kernel: DedicatedKernel{NumProcs: p}, Seed: 1,
				})
				if res.MaxMilestoneGap > MilestoneC {
					t.Errorf("milestone gap %d exceeds C=%d", res.MaxMilestoneGap, MilestoneC)
				}
				if res.Throws > res.StealAttempts {
					t.Errorf("throws %d > steal attempts %d", res.Throws, res.StealAttempts)
				}
				if res.Steals > res.StealAttempts {
					t.Errorf("steals %d > attempts %d", res.Steals, res.StealAttempts)
				}
				if p == 1 && res.StealAttempts != 0 {
					t.Errorf("P=1 made %d steal attempts", res.StealAttempts)
				}
			})
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := workload.FibDag(10)
	cfg := Config{Graph: g, P: 4, Kernel: BenignKernel{NumProcs: 4}, Seed: 42,
		Yield: YieldToRandom, ShuffleSteps: true}
	r1 := NewEngine(cfg).Run()
	r2 := NewEngine(cfg).Run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1, r2)
	}
	cfg.Seed = 43
	r3 := NewEngine(cfg).Run()
	if reflect.DeepEqual(r1, r3) {
		t.Fatalf("different seeds gave identical results (suspicious): %+v", r1)
	}
}

func TestAllKernelYieldCombinations(t *testing.T) {
	g := workload.FibDag(9)
	const p = 4
	kernels := map[string]Kernel{
		"dedicated":   DedicatedKernel{NumProcs: p},
		"benign":      BenignKernel{NumProcs: p},
		"benignConst": ConstBenign(p, 2),
		"oblivious":   NewSeededOblivious(p, 2, 7),
		"periodic":    PeriodicKernel{NumProcs: p, Period: 3},
	}
	for name, k := range kernels {
		for _, y := range []YieldKind{YieldNone, YieldToRandom, YieldToAll} {
			t.Run(fmt.Sprintf("%s/%s", name, y), func(t *testing.T) {
				mustRun(t, Config{Graph: g, P: p, Kernel: k, Yield: y, Seed: 5})
			})
		}
	}
}

func TestSpawnPolicies(t *testing.T) {
	g := workload.FibDag(10)
	for _, pol := range []SpawnPolicy{RunChild, RunParent} {
		res := mustRun(t, Config{Graph: g, P: 3, Kernel: DedicatedKernel{NumProcs: 3},
			Policy: pol, Seed: 2})
		if res.NodesExecuted != g.NumNodes() {
			t.Errorf("policy %v executed %d nodes", pol, res.NodesExecuted)
		}
	}
}

func TestShuffledInterleaving(t *testing.T) {
	g := workload.Grid(8, 10)
	mustRun(t, Config{Graph: g, P: 5, Kernel: DedicatedKernel{NumProcs: 5},
		ShuffleSteps: true, Seed: 9})
}

// Figure 1's dag exercises spawn, block, enable, and enable+die transitions.
func TestFigure1Execution(t *testing.T) {
	g := dag.Figure1()
	for p := 1; p <= 4; p++ {
		res := mustRun(t, Config{Graph: g, P: p, Kernel: DedicatedKernel{NumProcs: p}, Seed: int64(p)})
		if res.NodesExecuted != 11 {
			t.Fatalf("P=%d: executed %d", p, res.NodesExecuted)
		}
	}
}

// Theorem 9 shape: with a dedicated kernel, measured time (in instructions
// per process) tracks T1/P + O(Tinf), with a modest constant for the
// per-node scheduling overhead.
func TestDedicatedSpeedupShape(t *testing.T) {
	g := workload.FibDag(14) // work 1973, span 28, parallelism ~70
	t1 := g.Work()
	tinf := g.CriticalPath()
	prev := -1
	for _, p := range []int{1, 2, 4, 8} {
		res := mustRun(t, Config{Graph: g, P: p, Kernel: DedicatedKernel{NumProcs: p}, Seed: 3})
		// Steps is the paper's time T. The bound: T <= c1*T1/P + c2*Tinf
		// with c1 covering per-node loop overhead (about 4 instructions per
		// node plus deque work) and c2 covering throws per phase.
		bound := 12.0*float64(t1)/float64(p) + 30.0*float64(tinf)*float64(MilestoneC)
		if float64(res.Steps) > bound {
			t.Errorf("P=%d: steps %d exceeds generous bound %.0f", p, res.Steps, bound)
		}
		if prev > 0 && res.Steps > prev*12/10 {
			t.Errorf("P=%d: steps %d grew vs previous %d; expected speedup", p, res.Steps, prev)
		}
		prev = res.Steps
	}
}

// Starvation: an oblivious kernel that never schedules process 0 (which
// holds the root) makes no progress without yields, and completes with
// yieldToRandom thanks to the substitution rule.
func TestObliviousStarvationNeedsYieldToRandom(t *testing.T) {
	g := workload.Chain(40)
	const p = 4
	k := FixedSetKernel{NumProcs: p, Set: []int{1, 2, 3}}

	res := NewEngine(Config{Graph: g, P: p, Kernel: k, Yield: YieldNone,
		Seed: 1, MaxRounds: 3000}).Run()
	if res.Completed {
		t.Fatalf("starvation schedule completed without yields: %+v", res)
	}
	if res.NodesExecuted != 0 {
		t.Fatalf("starved run executed %d nodes, want 0", res.NodesExecuted)
	}

	res = NewEngine(Config{Graph: g, P: p, Kernel: k, Yield: YieldToRandom,
		Seed: 1, MaxRounds: 200000}).Run()
	if !res.Completed {
		t.Fatalf("yieldToRandom did not defeat the oblivious starvation kernel: %+v", res)
	}
	if res.Substitutions == 0 {
		t.Fatal("expected yield substitutions to have occurred")
	}
}

// Starvation: the adaptive StarveWorkers kernel defeats yieldToRandom on
// long runs only with vanishing probability, but yieldToAll defeats it
// deterministically.
func TestAdaptiveStarvationNeedsYieldToAll(t *testing.T) {
	g := workload.Chain(40)
	const p = 4
	k := StarveWorkersKernel{NumProcs: p}

	res := NewEngine(Config{Graph: g, P: p, Kernel: k, Yield: YieldNone,
		Seed: 1, MaxRounds: 3000}).Run()
	if res.Completed {
		t.Fatalf("adaptive starvation completed without yields: %+v", res)
	}
	// The kernel schedules the process with the smallest id when everyone
	// looks busy, so the very first node may execute; progress still stalls.
	if res.NodesExecuted > 2 {
		t.Fatalf("starved run executed %d nodes", res.NodesExecuted)
	}

	res = NewEngine(Config{Graph: g, P: p, Kernel: k, Yield: YieldToAll,
		Seed: 1, MaxRounds: 200000}).Run()
	if !res.Completed {
		t.Fatalf("yieldToAll did not defeat the adaptive starvation kernel: %+v", res)
	}
}

// The lock-based deque completes fine on a dedicated kernel but collapses
// under an adversary that preempts lock holders; the ABP deque shrugs the
// same adversary off. This is the paper's "non-blocking data structures are
// essential" claim in its purest form.
func TestLockedDequeAblation(t *testing.T) {
	g := workload.FibDag(9)
	const p = 4

	res := mustRun(t, Config{Graph: g, P: p, Kernel: DedicatedKernel{NumProcs: p},
		Deque: DequeLocked, Seed: 1})
	if res.NodesExecuted != g.NumNodes() {
		t.Fatal("locked deque failed on dedicated kernel")
	}

	adv := PreemptLockHolderKernel{NumProcs: p}
	resABP := mustRun(t, Config{Graph: g, P: p, Kernel: adv, Seed: 1})
	if resABP.SpinSteps != 0 {
		t.Fatalf("ABP deques have no locks, spinSteps = %d", resABP.SpinSteps)
	}

	resLocked := NewEngine(Config{Graph: g, P: p, Kernel: adv, Deque: DequeLocked,
		Seed: 1, MaxRounds: 4000}).Run()
	if resLocked.Completed {
		t.Fatalf("preempt-lock-holder adversary failed to stall the locked deque: %+v", resLocked)
	}
	if resLocked.SpinSteps == 0 {
		t.Fatal("expected lock spinning under the adversary")
	}
}

// With the tag disabled, heavy contention on tiny deques eventually
// triggers the ABA corruption; with the tag it never does.
func TestEngineABATagProtection(t *testing.T) {
	g := workload.Grid(20, 4) // small deques, constant enable/steal churn
	corrupted := false
	for seed := int64(0); seed < 30; seed++ {
		res := NewEngine(Config{Graph: g, P: 8, Kernel: BenignKernel{NumProcs: 8},
			TagBits: -1, Seed: seed, ShuffleSteps: true, MaxRounds: 200000}).Run()
		if res.Corruptions > 0 {
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Log("no ABA corruption triggered in 30 seeds (the window is narrow); deterministic op-level demo covers it")
	}
	// The realistic tag must never corrupt.
	for seed := int64(0); seed < 10; seed++ {
		res := mustRun(t, Config{Graph: g, P: 8, Kernel: BenignKernel{NumProcs: 8},
			Seed: seed, ShuffleSteps: true})
		if res.Corruptions != 0 {
			t.Fatalf("tagged deque corrupted at seed %d", seed)
		}
	}
}

func TestThrowsBehaveSanely(t *testing.T) {
	g := workload.SpawnSpine(8, 20)
	res := mustRun(t, Config{Graph: g, P: 6, Kernel: DedicatedKernel{NumProcs: 6}, Seed: 4})
	if res.Throws == 0 {
		t.Error("expected some throws with 6 processes on a small dag")
	}
	if res.Throws > res.StealAttempts {
		t.Errorf("throws %d > attempts %d", res.Throws, res.StealAttempts)
	}
	// At most one throw per process per round.
	if res.Throws > res.Rounds*6 {
		t.Errorf("throws %d exceed rounds*P = %d", res.Throws, res.Rounds*6)
	}
}

func TestPAMeasurement(t *testing.T) {
	g := workload.FibDag(10)
	// Dedicated: every step has all P processes executing, so PA = P
	// (modulo the final partial step and early-halting processes).
	res := mustRun(t, Config{Graph: g, P: 4, Kernel: DedicatedKernel{NumProcs: 4}, Seed: 8})
	if res.PA < 3.5 || res.PA > 4.0 {
		t.Errorf("dedicated PA = %v, want about 4", res.PA)
	}
	// Constant-2 benign kernel: PA about 2.
	res = mustRun(t, Config{Graph: g, P: 4, Kernel: ConstBenign(4, 2), Seed: 8})
	if res.PA < 1.5 || res.PA > 2.2 {
		t.Errorf("benign-2 PA = %v, want about 2", res.PA)
	}
}

func TestManualKernel(t *testing.T) {
	g := workload.Chain(10)
	k := ManualKernel{NumProcs: 2, Rounds: [][]Slot{
		{{Proc: 1, Instr: 28}}, // round 0: only the thief
		{},                     // round 1: nobody
		{{Proc: 0, Instr: 28}, {Proc: 1, Instr: 28}},
	}}
	res := mustRun(t, Config{Graph: g, P: 2, Kernel: k, Seed: 1})
	if !res.Completed {
		t.Fatal("manual kernel run incomplete")
	}
}

func TestConfigValidation(t *testing.T) {
	g := workload.Chain(3)
	cases := []Config{
		{},               // nil graph
		{Graph: g},       // P = 0
		{Graph: g, P: 2}, // nil kernel
		{Graph: g, P: 2, Kernel: DedicatedKernel{NumProcs: 3}},                         // P mismatch
		{Graph: g, P: 2, Kernel: DedicatedKernel{NumProcs: 2}, InstrLo: 5, InstrHi: 3}, // bad budget
		{Graph: g, P: 2, Kernel: DedicatedKernel{NumProcs: 2}, TagBits: 40},            // bad tag
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewEngine(cfg)
		}()
	}
}

func TestKernelOutputSanitized(t *testing.T) {
	g := workload.Chain(20)
	// A malformed kernel: out-of-range ids, duplicates, absurd budgets.
	k := ObliviousKernel{NumProcs: 2, Schedule: func(r int) []int {
		return []int{-1, 0, 0, 1, 5}
	}}
	res := mustRun(t, Config{Graph: g, P: 2, Kernel: k, Seed: 1})
	if !res.Completed {
		t.Fatal("sanitized run incomplete")
	}
}

// Work stealing distributes execution: with enough parallelism and a
// dedicated kernel, more than one process executes nodes.
func TestWorkIsActuallyStolen(t *testing.T) {
	g := workload.FibDag(12)
	res := NewEngine(Config{Graph: g, P: 4, Kernel: DedicatedKernel{NumProcs: 4}, Seed: 6}).Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.Steals == 0 {
		t.Fatal("no successful steals on a parallel dag with 4 processes")
	}
	active, total := 0, 0
	for _, n := range res.NodesPerProc {
		if n > 0 {
			active++
		}
		total += n
	}
	if active < 2 {
		t.Fatalf("only %d process(es) executed nodes: %v", active, res.NodesPerProc)
	}
	if total != res.NodesExecuted {
		t.Fatalf("per-proc sum %d != total %d", total, res.NodesExecuted)
	}
}

// Observer callbacks fire and see consistent state.
type countingObserver struct {
	rounds, instrs int
	lastRound      int
}

func (o *countingObserver) OnRoundStart(e *Engine, round int) {
	o.rounds++
	o.lastRound = round
	snap := e.Snapshot()
	if len(snap) == 0 {
		panic("empty snapshot")
	}
}

func (o *countingObserver) OnInstruction(e *Engine, proc int) { o.instrs++ }

func TestObserverCallbacks(t *testing.T) {
	g := workload.FibDag(8)
	obs := &countingObserver{}
	res := mustRun(t, Config{Graph: g, P: 3, Kernel: DedicatedKernel{NumProcs: 3},
		Seed: 2, Observer: obs})
	// The observer also sees the drain (processes observing the done flag
	// and halting), which the Result's time-like counters exclude.
	if obs.rounds < res.Rounds {
		t.Errorf("observer saw %d rounds, result says %d", obs.rounds, res.Rounds)
	}
	if int64(obs.instrs) < res.ProcInstr {
		t.Errorf("observer saw %d instructions, result says %d", obs.instrs, res.ProcInstr)
	}
	if int64(obs.instrs) > res.ProcInstr+int64(8*3*MilestoneC*3) {
		t.Errorf("drain consumed implausibly many instructions: %d vs %d", obs.instrs, res.ProcInstr)
	}
}

// Property-ish: random configurations all complete and execute each node
// exactly once (the dag.State panics on double execution, so completion
// plus count is a full check).
func TestRandomConfigsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		spec := workload.SmallCatalog()[rng.Intn(len(workload.SmallCatalog()))]
		g := spec.Build()
		p := 1 + rng.Intn(8)
		var k Kernel
		switch rng.Intn(3) {
		case 0:
			k = DedicatedKernel{NumProcs: p}
		case 1:
			k = BenignKernel{NumProcs: p}
		default:
			k = NewSeededOblivious(p, 1+rng.Intn(p), rng.Int63())
		}
		y := YieldKind(rng.Intn(3))
		if _, oblivious := k.(ObliviousKernel); oblivious && y == YieldNone {
			y = YieldToRandom // oblivious subsets can starve without yields
		}
		cfg := Config{Graph: g, P: p, Kernel: k, Yield: y, Seed: rng.Int63(),
			ShuffleSteps: rng.Intn(2) == 0, Policy: SpawnPolicy(rng.Intn(2)),
			MaxRounds: 2_000_000}
		res := NewEngine(cfg).Run()
		if !res.Completed {
			t.Fatalf("trial %d (%s, P=%d, %T, %v) incomplete: %+v", trial, spec.Name, p, k, y, res)
		}
		if res.NodesExecuted != g.NumNodes() || res.Corruptions != 0 {
			t.Fatalf("trial %d: nodes %d/%d corruptions %d", trial, res.NodesExecuted, g.NumNodes(), res.Corruptions)
		}
	}
}

func TestStringers(t *testing.T) {
	if YieldToAll.String() != "yieldToAll" || YieldNone.String() != "none" || YieldToRandom.String() != "yieldToRandom" {
		t.Error("YieldKind strings wrong")
	}
	if DequeABP.String() != "abp" || DequeLocked.String() != "locked" {
		t.Error("DequeKind strings wrong")
	}
	if RunChild.String() != "runChild" || RunParent.String() != "runParent" {
		t.Error("SpawnPolicy strings wrong")
	}
	if phSteal.String() != "steal" || phase(99).String() == "" {
		t.Error("phase strings wrong")
	}
}

func TestVictimRoundRobin(t *testing.T) {
	g := workload.FibDag(10)
	res := mustRun(t, Config{Graph: g, P: 4, Kernel: DedicatedKernel{NumProcs: 4},
		Victim: VictimRoundRobin, Seed: 3})
	if res.NodesExecuted != g.NumNodes() {
		t.Fatal("round-robin victims failed to complete")
	}
	if VictimRoundRobin.String() != "roundRobin" || VictimRandom.String() != "random" {
		t.Error("VictimPolicy strings wrong")
	}
}

func TestCoschedulingKernel(t *testing.T) {
	g := workload.FibDag(10)
	const p = 4
	k := CoschedulingKernel{NumProcs: p, OnRounds: 2, OffRounds: 3}
	res := mustRun(t, Config{Graph: g, P: p, Kernel: k, Seed: 5})
	// Gang scheduling wastes the off rounds: time inflated by about
	// (on+off)/on versus dedicated, and PA is diluted accordingly.
	ded := mustRun(t, Config{Graph: g, P: p, Kernel: DedicatedKernel{NumProcs: p}, Seed: 5})
	if res.Steps <= ded.Steps {
		t.Errorf("coscheduling (%d steps) should be slower than dedicated (%d)", res.Steps, ded.Steps)
	}
	if res.PA >= ded.PA {
		t.Errorf("coscheduling PA %v should be below dedicated %v", res.PA, ded.PA)
	}
}

func TestCoschedulingPanicsOnBadConfig(t *testing.T) {
	g := workload.Chain(5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine(Config{Graph: g, P: 2,
		Kernel: CoschedulingKernel{NumProcs: 2, OnRounds: 0, OffRounds: 1}, Seed: 1}).Run()
}

func TestSpacePartitionKernel(t *testing.T) {
	g := workload.FibDag(11)
	const p = 8
	// Only 2 of 8 processes are ever serviced; process 0 is among them, so
	// no yields are needed (static space partitioning is benign).
	k := SpacePartitionKernel{NumProcs: p, Avail: 2}
	res := mustRun(t, Config{Graph: g, P: p, Kernel: k, Seed: 6})
	if res.PA > 2.01 {
		t.Errorf("PA = %v with a 2-process partition", res.PA)
	}
	// The other six processes never execute anything.
	if res.NodesExecuted != g.NumNodes() {
		t.Fatal("incomplete")
	}
}

func TestSpacePartitionPanics(t *testing.T) {
	g := workload.Chain(5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine(Config{Graph: g, P: 2,
		Kernel: SpacePartitionKernel{NumProcs: 2, Avail: 0}, Seed: 1}).Run()
}

// Yield enforcement substitutes processes but never changes how many run:
// the scheduled count each round equals the kernel's (sanitized) request.
func TestYieldsPreserveScheduledCount(t *testing.T) {
	g := workload.Chain(200)
	const p = 6
	e := NewEngine(Config{Graph: g, P: p, Kernel: FixedSetKernel{NumProcs: p, Set: []int{1, 2, 3}},
		Yield: YieldToAll, Seed: 9, MaxRounds: 100000})
	for round := 0; !e.done && round < 100000; round++ {
		slots := e.planRound(round, nil)
		alive := 0
		for _, pr := range e.procs {
			if pr.phase != phHalted {
				alive++
			}
		}
		want := 3
		if alive < want {
			want = alive
		}
		if len(slots) != want && alive > 0 {
			t.Fatalf("round %d: %d slots, want %d (yields must not change the count)", round, len(slots), want)
		}
		// Execute the round minimally: run each slot's budget.
		for _, sl := range slots {
			e.procs[sl.Proc].msRound = 0
		}
		for _, sl := range slots {
			for i := 0; i < sl.Instr && e.procs[sl.Proc].phase != phHalted && !e.done; i++ {
				e.procs[sl.Proc].step(e)
				e.procInstr++
			}
		}
		e.steps += e.cfg.InstrLo
	}
	if !e.done {
		t.Fatal("manual round loop did not complete the chain")
	}
}

// Budget clamping: kernels asking for absurd budgets get [2C, 3C].
func TestBudgetClamping(t *testing.T) {
	g := workload.Chain(10)
	k := ObliviousKernel{NumProcs: 2, Schedule: func(r int) []int { return []int{0, 1} }}
	e := NewEngine(Config{Graph: g, P: 2, Kernel: k, Seed: 1})
	slots := e.planRound(0, nil)
	for _, s := range slots {
		if s.Instr < e.cfg.InstrLo || s.Instr > e.cfg.InstrHi {
			t.Fatalf("budget %d outside [%d,%d]", s.Instr, e.cfg.InstrLo, e.cfg.InstrHi)
		}
	}
}

// View accessors agree with engine state.
func TestViewAccessors(t *testing.T) {
	g := workload.FibDag(8)
	var sawThief, sawLockInfo bool
	obs := observerFunc(func(e *Engine, proc int) {
		v := e.view
		if v.P() != 3 {
			t.Fatal("P mismatch")
		}
		for p := 0; p < 3; p++ {
			if v.IsThief(p) {
				sawThief = true
			}
			if v.LockHolder(p) == -1 {
				sawLockInfo = true
			}
			_ = v.DequeSize(p)
			_ = v.HasAssigned(p)
		}
		if v.InstrLo() != 2*MilestoneC || v.InstrHi() != 3*MilestoneC {
			t.Fatal("instruction bounds wrong")
		}
	})
	res := NewEngine(Config{Graph: g, P: 3, Kernel: DedicatedKernel{NumProcs: 3},
		Seed: 3, Observer: obs}).Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if !sawThief || !sawLockInfo {
		t.Error("view accessors never observed expected states")
	}
}

// observerFunc adapts a function to the Observer interface.
type observerFunc func(e *Engine, proc int)

func (f observerFunc) OnRoundStart(e *Engine, round int) {}
func (f observerFunc) OnInstruction(e *Engine, proc int) { f(e, proc) }
