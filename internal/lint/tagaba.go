package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TagABA mechanizes the ABA argument of paper Figure 5: the age word packs
// (tag, top), and every CAS that RESETS top — PopBottom emptying the deque,
// the queue-empty reset path — must simultaneously install an incremented
// tag. If top returns to an old value with the tag unchanged, a thief that
// loaded the age word before the reset can still CAS successfully and
// "steal" an entry that was already popped: the classic ABA. The increment
// makes every recycled top index distinguishable; TR-99-11's unbounded tag
// (practically, a 32-bit wrap) is what lets the linearizability proof treat
// each age value as unique.
//
// The analyzer finds every sync/atomic CompareAndSwap (wrapper method or
// function form) whose new value is an age build that resets top to the
// constant 0 — a call to a pack-style helper (any function whose name
// contains "pack") with a constant-0 top argument, or a composite literal
// with Tag/Top fields and Top: 0. The new value is resolved through
// reaching definitions (cfg.go), so `newAge := packAge(...); CAS(old,
// newAge)` is seen through. For every such reset it requires:
//
//  1. the tag operand is an increment (base + constant, optionally
//     &-masked for wraparound), and
//  2. the incremented base is FRESH: every reaching definition of it in
//     this function derives from a Load or unpack-style call. A base that
//     is a parameter, a package-level variable, or a constant re-arms the
//     ABA window with a possibly stale tag.
//
// Bases that are not plain identifiers (field reads, call results) are
// accepted: the analyzer checks local staleness, not cross-function
// provenance.
var TagABA = &Analyzer{
	Name: "tagaba",
	Doc:  "requires every top-resetting CAS to install a freshly loaded, incremented tag (Figure 5 ABA guard)",
	Run:  runTagABA,
}

func runTagABA(pass *Pass) error {
	for _, fd := range declsOf(pass.Files) {
		if fd.Body == nil {
			continue
		}
		var cfg *funcCFG
		var reach *reachInfo
		flow := func() (*funcCFG, *reachInfo) {
			if cfg == nil {
				cfg = buildCFG(fd.Body)
				reach = cfg.reachingDefs(pass.TypesInfo, funcParams(pass.TypesInfo, fd.Type, fd.Recv))
			}
			return cfg, reach
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			newExpr := casNewValue(pass.TypesInfo, call)
			if newExpr == nil {
				return true
			}
			g, r := flow()
			casNode := g.blockNodeAt(call.Pos())
			if casNode == nil {
				return true // inside a nested literal: out of this CFG's scope
			}
			for _, cand := range resolveBuilds(pass.TypesInfo, g, r, newExpr, casNode) {
				checkAgeBuild(pass, g, r, cand)
			}
			return true
		})
	}
	return nil
}

// ageBuild is one resolved construction of a CAS new-value: the expression,
// its tag and top operands, and the block node it is evaluated in.
type ageBuild struct {
	expr     ast.Expr
	tag, top ast.Expr
	at       ast.Node
}

// casNewValue returns the new-value operand of a sync/atomic CompareAndSwap
// call, or nil when call is not one: wrapper form x.CompareAndSwap(old,
// new) or function form atomic.CompareAndSwapT(&addr, old, new).
func casNewValue(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := calleeFunc(info, call)
	if fn == nil || !strings.HasPrefix(fn.Name(), "CompareAndSwap") {
		return nil
	}
	switch {
	case isAtomicMethod(fn) && len(call.Args) == 2:
		return call.Args[1]
	case isAtomicFunc(fn) && len(call.Args) == 3:
		return call.Args[2]
	}
	return nil
}

// resolveBuilds resolves the CAS new-value expression to the age-build
// expressions that may flow into it: the expression itself, or — when it is
// a plain identifier — the right-hand sides of its reaching definitions.
func resolveBuilds(info *types.Info, g *funcCFG, r *reachInfo, e ast.Expr, casNode ast.Node) []ageBuild {
	e = ast.Unparen(e)
	if b, ok := asAgeBuild(info, e); ok {
		b.at = casNode
		return []ageBuild{b}
	}
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v := varOfIdent(info, ident)
	if v == nil {
		return nil
	}
	var out []ageBuild
	for _, d := range r.defsReaching(casNode, v) {
		if d.node == nil {
			continue // entry definition: a parameter carries no visible build
		}
		for _, rhs := range defRHS(d.node, v, info) {
			if b, ok := asAgeBuild(info, ast.Unparen(rhs)); ok {
				b.at = d.node
				out = append(out, b)
			}
		}
	}
	return out
}

// defRHS extracts the expressions assigned to v by the definition node: the
// matching RHS of a 1:1 assignment or value spec.
func defRHS(node ast.Node, v *types.Var, info *types.Info) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && varOfIdent(info, id) == v {
					out = append(out, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				if varOfIdent(info, name) == v {
					out = append(out, n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// asAgeBuild recognizes an age-word construction: packAge-style call
// (tag, top) or a Tag/Top composite literal, possibly behind &.
func asAgeBuild(info *types.Info, e ast.Expr) (ageBuild, bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(info, e)
		if fn != nil && strings.Contains(strings.ToLower(fn.Name()), "pack") && len(e.Args) >= 2 {
			return ageBuild{expr: e, tag: e.Args[0], top: e.Args[1]}, true
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return asAgeBuild(info, ast.Unparen(e.X))
		}
	case *ast.CompositeLit:
		var b ageBuild
		b.expr = e
		for _, el := range e.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch strings.ToLower(key.Name) {
			case "tag":
				b.tag = kv.Value
			case "top":
				b.top = kv.Value
			}
		}
		if b.tag != nil && b.top != nil {
			return b, true
		}
	}
	return ageBuild{}, false
}

// checkAgeBuild applies the two Figure 5 requirements to one top-resetting
// age build. Builds whose top operand is not the constant 0 are not resets
// (PopTop advances top; only resets recycle indexes) and are skipped.
func checkAgeBuild(pass *Pass, g *funcCFG, r *reachInfo, b ageBuild) {
	if !isConstZero(pass.TypesInfo, b.top) {
		return
	}
	base, ok := incrementBase(b.tag)
	if !ok {
		pass.Reportf(b.tag.Pos(),
			"CAS resets top to 0 without incrementing the tag (%s): a thief holding the old age word can succeed against the recycled top index (ABA; Figure 5 bumps the tag on every reset)",
			exprString(b.tag))
		return
	}
	base = ast.Unparen(base)
	if tv, ok := pass.TypesInfo.Types[base]; ok && tv.Value != nil {
		pass.Reportf(b.tag.Pos(),
			"top-resetting CAS builds its tag from the constant %s, not a freshly loaded tag: reused constants re-arm the ABA window Figure 5's increment closes", tv.Value)
		return
	}
	ident, ok := base.(*ast.Ident)
	if !ok {
		return // field read or call result: local staleness not decidable, accept
	}
	v := varOfIdent(pass.TypesInfo, ident)
	if v == nil {
		return
	}
	defs := r.defsReaching(b.at, v)
	if len(defs) == 0 {
		pass.Reportf(ident.Pos(),
			"tag base %q of the top-resetting CAS has no definition in this function (package-level or shadowed state): the tag must be freshly loaded before the reset (Figure 5 ABA guard)", ident.Name)
		return
	}
	for _, d := range defs {
		if d.node == nil {
			pass.Reportf(ident.Pos(),
				"tag base %q of the top-resetting CAS is a parameter, not freshly loaded in this function: a stale caller-supplied tag re-arms the ABA window (Figure 5 ABA guard)", ident.Name)
			return
		}
		if !derivesFromLoad(pass.TypesInfo, d.node) {
			pass.Reportf(ident.Pos(),
				"tag base %q of the top-resetting CAS is not derived from a Load or unpack on every path: a stale tag re-arms the ABA window (Figure 5 ABA guard)", ident.Name)
			return
		}
	}
}

// incrementBase recognizes tag-increment shapes: base + c, c + base, and a
// masked wraparound (base + c) & m or (base + c) % m, returning base.
func incrementBase(e ast.Expr) (ast.Expr, bool) {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return nil, false
	}
	switch bin.Op {
	case token.ADD:
		// One operand must be a non-zero constant literal; the other is the base.
		if isIntLiteral(bin.Y) {
			return bin.X, true
		}
		if isIntLiteral(bin.X) {
			return bin.Y, true
		}
	case token.AND, token.REM:
		// Masked form: the increment is inside either operand.
		if base, ok := incrementBase(bin.X); ok {
			return base, true
		}
		return incrementBase(bin.Y)
	}
	return nil, false
}

func isIntLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && (lit.Kind == token.INT)
}

// derivesFromLoad reports whether the definition statement obtains its
// value from an atomic/load-style source: a call whose name is or starts
// with "Load", or contains "unpack" (the age-word decoder).
func derivesFromLoad(info *types.Info, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return !found
		}
		name := strings.ToLower(fn.Name())
		if strings.HasPrefix(name, "load") || strings.Contains(name, "unpack") {
			found = true
		}
		return !found
	})
	return found
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	val, ok := constant.Int64Val(tv.Value)
	return ok && val == 0
}
